// Event-runtime experiment: what does dropping the global round barrier
// buy? The pipelined engine releases timestep t on each node's *local*
// clock reading t * interval, so when the release interval is shorter than
// one timestep's completion time, successive timesteps overlap in flight
// (block-computation pipelining) and total completion time approaches
// interval-bound instead of latency-bound. Part one sweeps the release
// interval at several per-hop latencies and reports pipelined completion
// time against the round-barrier schedule (the same engine with an
// effectively infinite interval — timestep t+1 waits for t to retire).
// Part two holds the schedule fixed and sweeps clock drift, reporting the
// pre-start mailbox traffic and completion-time cost of unsynchronized
// crystals. Results land in BENCH_event.json with the transport/drift
// metadata block (bench::TransportConfigJson).

#include <fstream>
#include <string>
#include <vector>

#include "event/clock.h"
#include "event/event_runtime.h"
#include "event/transport.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace m2m;
  const int threads = bench::ApplyParallelismFlags(argc, argv);
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 6;
  spec.sources_per_destination = 6;
  spec.seed = 5100;
  Workload workload = GenerateWorkload(topology, spec);
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  RuntimeNetwork fleet(compiled, workload.functions);
  event::EventNetwork engine(fleet);

  constexpr int kTimesteps = 8;
  std::vector<std::vector<double>> readings;
  for (int t = 0; t < kTimesteps; ++t) {
    readings.push_back(ReadingGenerator(topology.node_count(),
                                        5200 + static_cast<uint64_t>(t))
                           .values());
  }

  auto run = [&](int64_t hop_latency, int64_t interval,
                 const event::DriftOptions& drift) {
    event::SimChannelTransport::Options transport_options;
    transport_options.base_hop_latency_ticks = hop_latency;
    event::SimChannelTransport transport(nullptr, transport_options);
    event::EventNetwork::PipelineOptions options;
    options.timestep_interval_ticks = interval;
    if (drift.max_skew_ppm != 0 || drift.max_offset_ticks != 0) {
      options.clocks =
          event::BuildDriftClocks(topology.node_count(), drift);
    }
    return engine.RunPipelined(readings, transport, options);
  };
  // The round-barrier schedule as a special case of the same engine: an
  // interval past any timestep's completion time serializes the pipeline.
  constexpr int64_t kBarrierInterval = 1 << 20;

  std::ofstream json("BENCH_event.json");
  json << "{\n  \"experiment\": \"event_pipelining\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"setup\": \"GDI topology, 6 destinations x 6 sources, "
       << kTimesteps << " timesteps, clean simulated-channel transport\",\n"
       << "  \"rows\": [\n";
  bool first_row = true;

  // Part 1: pipelined vs round-barrier completion time over the
  // (hop latency, release interval) grid, synchronized clocks.
  Table pipeline({"hop_latency", "interval", "barrier_ticks",
                  "pipelined_ticks", "speedup", "max_in_flight",
                  "per_step_ticks"});
  for (int64_t hop_latency : {1, 2, 4}) {
    const event::EventNetwork::PipelineResult barrier =
        run(hop_latency, kBarrierInterval, {});
    const int64_t per_step =
        barrier.timesteps.front().retire_tick -
        barrier.timesteps.front().start_tick;
    // Barrier completion re-based to a back-to-back schedule (the run
    // itself spaces rounds kBarrierInterval apart).
    int64_t barrier_ticks = 0;
    for (const auto& step : barrier.timesteps) {
      barrier_ticks += step.retire_tick - step.start_tick;
    }
    for (int64_t interval : {4, 8, 16, 32, 64}) {
      const event::EventNetwork::PipelineResult pipelined =
          run(hop_latency, interval, {});
      const double speedup =
          pipelined.final_tick == 0
              ? 0.0
              : static_cast<double>(barrier_ticks) /
                    static_cast<double>(pipelined.final_tick);
      pipeline.AddRow({std::to_string(hop_latency), std::to_string(interval),
                       std::to_string(barrier_ticks),
                       std::to_string(pipelined.final_tick),
                       Table::Num(speedup),
                       std::to_string(pipelined.max_in_flight),
                       std::to_string(per_step)});

      event::SimChannelTransport::Options meta_options;
      meta_options.base_hop_latency_ticks = hop_latency;
      event::SimChannelTransport meta_transport(nullptr, meta_options);
      if (!first_row) json << ",\n";
      first_row = false;
      json << "    {\"sweep\": \"interval\", "
           << bench::TransportConfigJson(meta_transport, {}, interval)
           << ", \"barrier_ticks\": " << barrier_ticks
           << ", \"pipelined_ticks\": " << pipelined.final_tick
           << ", \"speedup\": " << Table::Num(speedup)
           << ", \"max_in_flight\": " << pipelined.max_in_flight << "}";
    }
  }
  bench::EmitTable(
      "event_pipelining",
      "pipelined completion time vs round-barrier schedule; barrier_ticks "
      "= back-to-back per-timestep times under the same transport",
      pipeline);

  // Part 2: drift sweep at a fixed aggressive pipeline. Skew is per-node in
  // [-max, +max] ppm; offsets model boot-time phase error.
  Table drift_table({"max_skew_ppm", "max_offset", "pipelined_ticks",
                     "max_in_flight", "buffered_prestart", "duplicates"});
  for (int32_t skew : {0, 1000, 50000, 200000}) {
    event::DriftOptions drift;
    drift.max_skew_ppm = skew;
    drift.max_offset_ticks = skew == 0 ? 0 : 8;
    drift.seed = 5300;
    const event::EventNetwork::PipelineResult result = run(2, 8, drift);
    int64_t buffered = 0;
    int64_t duplicates = 0;
    for (const auto& step : result.timesteps) {
      buffered += step.buffered_prestart;
      duplicates += step.duplicates;
    }
    drift_table.AddRow({std::to_string(skew),
                        std::to_string(drift.max_offset_ticks),
                        std::to_string(result.final_tick),
                        std::to_string(result.max_in_flight),
                        std::to_string(buffered),
                        std::to_string(duplicates)});

    event::SimChannelTransport::Options meta_options;
    meta_options.base_hop_latency_ticks = 2;
    event::SimChannelTransport meta_transport(nullptr, meta_options);
    json << ",\n    {\"sweep\": \"drift\", "
         << bench::TransportConfigJson(meta_transport, drift, 8)
         << ", \"pipelined_ticks\": " << result.final_tick
         << ", \"max_in_flight\": " << result.max_in_flight
         << ", \"buffered_prestart\": " << buffered << "}";
  }
  bench::EmitTable(
      "event_drift",
      "hop latency 2, release interval 8; per-node skew/offset drawn from "
      "the seeded drift regime; buffered_prestart counts deliveries that "
      "beat the recipient's local round start",
      drift_table);

  json << "\n  ]\n}\n";
  return 0;
}
