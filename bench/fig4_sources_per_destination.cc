// Figure 4: varying the size of the aggregation functions (sources per
// destination, 5..40). GDI network, 20% of nodes as destinations,
// dispersion d = 0.9; average round energy for the four algorithms.

#include "harness.h"

int main() {
  using namespace m2m;
  Topology topology = MakeGreatDuckIslandLike();
  Table table({"sources_per_destination", "optimal_mJ", "multicast_mJ",
               "aggregation_mJ", "flood_mJ"});
  for (int sources = 5; sources <= 40; sources += 5) {
    WorkloadSpec spec;
    spec.destination_count = topology.node_count() / 5;  // 20%.
    spec.sources_per_destination = sources;
    spec.dispersion = 0.9;
    spec.max_hops = 4;
    spec.kind = AggregateKind::kWeightedAverage;
    spec.seed = 2000 + sources;
    Workload workload = GenerateWorkload(topology, spec);
    bench::AlgorithmEnergies energies =
        bench::MeasureAlgorithms(topology, workload, /*include_flood=*/true);
    table.AddRow({std::to_string(sources), Table::Num(energies.optimal_mj),
                  Table::Num(energies.multicast_mj),
                  Table::Num(energies.aggregation_mj),
                  Table::Num(energies.flood_mj)});
  }
  bench::EmitTable(
      "Figure 4 — varying the number of sources per function",
      "GDI-like 68-node network, 20% of nodes as destinations, dispersion "
      "d=0.9, weighted average",
      table);
  return 0;
}
