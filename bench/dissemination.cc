// Plan dissemination cost (paper section 3): node tables are computed
// out-of-network and shipped in. Corollary 1 makes *updates* cheap — after
// a localized workload change only the affected nodes' images differ. This
// bench reports install-from-scratch vs incremental update costs for a
// series of single-source changes.

#include <memory>

#include "harness.h"

int main() {
  using namespace m2m;
  Topology topology = MakeGreatDuckIslandLike();
  PathSystem paths(topology);
  NodeId base = PickBaseStation(topology);

  WorkloadSpec spec;
  spec.destination_count = 14;
  spec.sources_per_destination = 20;
  spec.dispersion = 0.9;
  spec.seed = 8000;
  Workload workload = GenerateWorkload(topology, spec);
  auto forest = std::make_shared<const MulticastForest>(paths,
                                                        workload.tasks);
  GlobalPlan plan = BuildPlan(forest, workload.functions, {});
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);

  DisseminationCost install = ComputeFullDissemination(
      compiled, workload.functions, paths, base, EnergyModel{});

  Table table({"change", "nodes_updated", "state_bytes", "packets",
               "energy_mJ", "pct_of_full_install"});
  table.AddRow({"full install", std::to_string(install.nodes_updated),
                std::to_string(install.state_bytes),
                std::to_string(install.packets),
                Table::Num(install.energy_mj), "100.00"});

  Rng rng(8001);
  for (int step = 0; step < 6; ++step) {
    const Task& task = workload.tasks[rng.UniformInt(workload.tasks.size())];
    NodeId d = task.destination;
    Workload updated = workload;
    std::string description;
    if (step % 2 == 0) {
      NodeId victim = task.sources[rng.UniformInt(task.sources.size())];
      updated = WithSourceRemoved(workload, victim, d);
      description = "remove source " + std::to_string(victim) + " of " +
                    std::to_string(d);
    } else {
      NodeId fresh = kInvalidNode;
      for (NodeId n = 0; n < topology.node_count(); ++n) {
        if (n != d && std::find(task.sources.begin(), task.sources.end(),
                                n) == task.sources.end()) {
          fresh = n;
          break;
        }
      }
      updated = WithSourceAdded(workload, fresh, d, 1.0);
      description = "add source " + std::to_string(fresh) + " to " +
                    std::to_string(d);
    }
    auto updated_forest =
        std::make_shared<const MulticastForest>(paths, updated.tasks);
    GlobalPlan updated_plan =
        UpdatePlan(plan, updated_forest, updated.functions);
    CompiledPlan updated_compiled =
        CompiledPlan::Compile(updated_plan, updated.functions);
    DisseminationCost incremental = ComputeIncrementalDissemination(
        compiled, workload.functions, updated_compiled, updated.functions,
        paths, base, EnergyModel{});
    table.AddRow(
        {description, std::to_string(incremental.nodes_updated),
         std::to_string(incremental.state_bytes),
         std::to_string(incremental.packets),
         Table::Num(incremental.energy_mj),
         Table::Num(100.0 * incremental.energy_mj / install.energy_mj)});
    // Chain the changes so each step diffs against the previous plan.
    workload = std::move(updated);
    forest = updated_forest;
    plan = updated_plan;
    compiled = updated_compiled;
  }
  m2m::bench::EmitTable(
      "Plan dissemination — full install vs incremental updates",
      "GDI-like 68-node network, 14 destinations x 20 sources; images "
      "shipped from the base station in 64-byte packets",
      table);
  return 0;
}
