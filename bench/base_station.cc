// In-network vs out-of-network control (paper section 1's argument for
// many-to-many aggregation). In-network control keeps traffic inside each
// destination's neighborhood, so its cost scales with the workload; routing
// everything through a base station pays round trips whose length grows
// with network size and funnels all traffic through the nodes around the
// base — the bottleneck that depletes first. We sweep density-matched
// networks from 50 to 250 nodes with neighborhood-local workloads and
// report totals and hotspots for both approaches.

#include "harness.h"

namespace {

using namespace m2m;

double MaxOf(const std::vector<double>& values) {
  double best = 0.0;
  for (double v : values) best = std::max(best, v);
  return best;
}

}  // namespace

int main() {
  std::vector<Topology> series =
      MakeScalingSeries({50, 100, 150, 200, 250}, /*seed=*/19);
  Table table({"network_nodes", "innetwork_mJ", "basestation_mJ",
               "innetwork_hotspot_mJ", "basestation_hotspot_mJ",
               "innetwork_latency_hops", "basestation_latency_hops"});
  for (size_t i = 0; i < series.size(); ++i) {
    const Topology& topology = series[i];
    PathSystem paths(topology);
    NodeId base = PickBaseStation(topology);
    WorkloadSpec spec;
    spec.destination_count = topology.node_count() / 4;  // 25%.
    spec.sources_per_destination = 20;
    spec.dispersion = 0.9;  // Neighborhood-local control inputs.
    spec.kind = AggregateKind::kWeightedAverage;
    spec.seed = 7000 + i;
    Workload workload = GenerateWorkload(topology, spec);

    System system(topology, workload);
    ReadingGenerator readings(topology.node_count(), 17);
    RoundResult in_network =
        system.MakeExecutor().RunRound(readings.values());
    BaseStationRoundResult bs = SimulateBaseStationRound(
        topology, paths, workload, base, EnergyModel{});

    // Control-loop latency in hops per (source, destination) pair: the
    // in-network path goes straight from source to destination; the
    // out-of-network path detours through the base station.
    double in_latency = 0.0;
    double bs_latency = 0.0;
    int64_t pairs = 0;
    for (const Task& task : workload.tasks) {
      for (NodeId s : task.sources) {
        in_latency += paths.HopDistance(s, task.destination);
        bs_latency += paths.HopDistance(s, base) +
                      paths.HopDistance(base, task.destination);
        ++pairs;
      }
    }
    table.AddRow(
        {std::to_string(topology.node_count()),
         Table::Num(in_network.energy_mj), Table::Num(bs.energy_mj),
         Table::Num(MaxOf(in_network.node_energy_mj)),
         Table::Num(MaxOf(bs.node_energy_mj)),
         Table::Num(in_latency / static_cast<double>(pairs), 1),
         Table::Num(bs_latency / static_cast<double>(pairs), 1)});
  }
  m2m::bench::EmitTable(
      "In-network vs base-station (out-of-network) control",
      "Density-matched 50-250 node networks, 25% destinations x 20 local "
      "sources (d=0.9); base station at the deployment corner; hotspot = "
      "hottest single node's round energy",
      table);
  return 0;
}
