// Run-to-run variance report: the figure benches print single deterministic
// runs; this harness re-draws the workload (and readings) across ten seeds
// per configuration and reports mean +/- stddev for each algorithm, showing
// the figure shapes are stable properties of the distribution rather than
// artifacts of one draw.

#include "common/stats.h"
#include "harness.h"

int main() {
  using namespace m2m;
  Topology topology = MakeGreatDuckIslandLike();
  Table table({"pct_destinations", "optimal_mJ(mean+-sd)",
               "multicast_mJ(mean+-sd)", "aggregation_mJ(mean+-sd)",
               "optimal_saving_pct(mean)"});
  for (int pct : {20, 50, 80}) {
    RunningStat optimal;
    RunningStat multicast;
    RunningStat aggregation;
    RunningStat saving;
    for (uint64_t seed = 0; seed < 10; ++seed) {
      WorkloadSpec spec;
      spec.destination_count =
          std::max(1, topology.node_count() * pct / 100);
      spec.sources_per_destination = 20;
      spec.dispersion = 0.9;
      spec.seed = 9000 + pct * 100 + seed;
      Workload workload = GenerateWorkload(topology, spec);
      bench::AlgorithmEnergies energies = bench::MeasureAlgorithms(
          topology, workload, /*include_flood=*/false);
      optimal.Add(energies.optimal_mj);
      multicast.Add(energies.multicast_mj);
      aggregation.Add(energies.aggregation_mj);
      double best_baseline =
          std::min(energies.multicast_mj, energies.aggregation_mj);
      saving.Add(100.0 * (best_baseline - energies.optimal_mj) /
                 best_baseline);
    }
    auto cell = [](const RunningStat& stat) {
      return Table::Num(stat.mean()) + " +- " + Table::Num(stat.stddev());
    };
    table.AddRow({std::to_string(pct), cell(optimal), cell(multicast),
                  cell(aggregation), Table::Num(saving.mean(), 1)});
  }
  m2m::bench::EmitTable(
      "Variance report — figure 3 points across 10 workload draws",
      "GDI-like 68-node network, 20 sources/destination, d=0.9; saving vs "
      "the better baseline per draw",
      table);
  return 0;
}
