#ifndef M2M_BENCH_HARNESS_H_
#define M2M_BENCH_HARNESS_H_

#include <cstdint>
#include <string>

#include "common/table.h"
#include "core/m2m.h"
#include "event/clock.h"
#include "event/transport.h"
#include "obs/metrics.h"

namespace m2m::bench {

/// Per-algorithm average round energy for one (topology, workload) pair.
/// A full-recomputation round's cost is determined by the plan alone (every
/// unit is transmitted), so a single verified round suffices.
struct AlgorithmEnergies {
  double optimal_mj = 0.0;
  double multicast_mj = 0.0;
  double aggregation_mj = 0.0;
  double flood_mj = 0.0;
};

/// Runs the three plan-based algorithms (sharing one path system and
/// multicast forest) plus flood, all with end-to-end verification of the
/// computed aggregates.
AlgorithmEnergies MeasureAlgorithms(const Topology& topology,
                                    const Workload& workload,
                                    bool include_flood);

/// Emits the table to stdout in both aligned-text and CSV form, labeled with
/// the experiment id so EXPERIMENTS.md can reference the output verbatim.
void EmitTable(const std::string& experiment_id, const std::string& setup,
               const Table& table);

/// Honors a `--metrics-json=<path>` flag: when present, writes the
/// registry's `m2m.metrics.v1` snapshot to the path and returns true.
/// Without the flag (or with an unwritable path) nothing is written.
bool MaybeWriteMetricsJson(int argc, const char* const argv[],
                           const obs::MetricsRegistry& registry);

/// Honors `--threads N` (and optional `--shards M`): configures the global
/// thread-pool execution core for the run and returns the applied thread
/// count (1 = serial, the default). Benches record the returned value in
/// their emitted JSON so every BENCH_*.json states the parallelism it ran
/// under — results themselves are thread-invariant by construction
/// (tests/parallel_determinism_test.cc).
int ApplyParallelismFlags(int argc, const char* const argv[]);

/// Renders the event-runtime configuration of a bench run as a JSON object
/// fragment: the transport's self-description plus the drift regime and
/// release interval. Benches embed it in their emitted JSON the same way
/// they record the `threads` field from ApplyParallelismFlags, so every
/// BENCH_*.json states the transport it ran over.
std::string TransportConfigJson(const event::Transport& transport,
                                const event::DriftOptions& drift,
                                int64_t timestep_interval_ticks);

}  // namespace m2m::bench

#endif  // M2M_BENCH_HARNESS_H_
