// Aggregation-aware routing (the Figure 5 discussion's future-work
// question): funneling routes onto a backbone tree lengthens paths but
// multiplies sharing, which is what in-network aggregation feeds on. Sweep
// the dispersion factor and compare default hop-count routing against
// backbone-biased routing under the optimal plan.

#include <memory>

#include "harness.h"

#include "routing/backbone.h"

namespace {

using namespace m2m;

struct RoutingNumbers {
  double round_mj = 0.0;
  int64_t forest_edges = 0;
  int64_t physical_hops = 0;
};

RoutingNumbers Measure(const Topology& topology, const Workload& workload,
                       const PathSystem::LinkCostFn& cost) {
  PathSystem paths(topology, 0x5eed, cost);
  auto forest =
      std::make_shared<const MulticastForest>(paths, workload.tasks);
  GlobalPlan plan = BuildPlan(forest, workload.functions, {});
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                        workload.functions, EnergyModel{});
  ReadingGenerator readings(topology.node_count(), 43);
  RoutingNumbers numbers;
  numbers.round_mj = executor.RunRound(readings.values()).energy_mj;
  numbers.forest_edges = static_cast<int64_t>(forest->edges().size());
  numbers.physical_hops = forest->TotalPhysicalHops();
  return numbers;
}

}  // namespace

int main() {
  Topology topology = MakeGreatDuckIslandLike();
  NodeId center = PickCenterNode(topology);
  PathSystem::LinkCostFn backbone =
      BackboneBiasedCost(topology, center, 1.6);

  Table table({"dispersion_d", "default_mJ", "backbone_mJ", "saving_pct",
               "default_edges", "backbone_edges"});
  for (int step = 0; step <= 10; step += 2) {
    double d = step / 10.0;
    WorkloadSpec spec;
    spec.destination_count = topology.node_count() / 5;
    spec.sources_per_destination = 20;
    spec.dispersion = d;
    spec.max_hops = 4;
    spec.kind = AggregateKind::kWeightedAverage;
    spec.seed = 9100 + step;
    Workload workload = GenerateWorkload(topology, spec);
    RoutingNumbers plain = Measure(topology, workload, nullptr);
    RoutingNumbers biased = Measure(topology, workload, backbone);
    table.AddRow({Table::Num(d, 1), Table::Num(plain.round_mj),
                  Table::Num(biased.round_mj),
                  Table::Num(100.0 * (plain.round_mj - biased.round_mj) /
                                 plain.round_mj,
                             1),
                  std::to_string(plain.forest_edges),
                  std::to_string(biased.forest_edges)});
  }
  m2m::bench::EmitTable(
      "Aggregation-aware routing — backbone bias vs hop-count routing",
      "GDI-like 68-node network, 20% destinations x 20 sources, optimal "
      "plans; backbone = BFS tree at the 1-median, off-tree penalty 1.6",
      table);
  return 0;
}
