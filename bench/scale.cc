// Scale sweep for the parallel execution core: threads x network size, up
// to a density-matched 100k-node topology (same average degree as the
// 68-node GDI baseline, paper Figure 6 construction). Per cell it times
// full plan construction (per-edge min-cover solves fan out across the
// pool) and >= 1k executed rounds (region-sharded), and cross-checks that
// every thread count produced byte-identical plan bytes and round energy —
// the bench-side echo of tests/parallel_determinism_test.cc. Results land
// in BENCH_scale.json together with the host CPU count, since measured
// speedup is bounded by the cores actually available.
//
// Flags: --max-nodes (default 100000), --rounds (default 1000, applied at
// every size), --threads (extra pool width appended to the {1,2,4,8}
// sweep).

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/thread_pool.h"
#include "harness.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace m2m;
  FlagParser flags(argc, argv);
  const int max_nodes = static_cast<int>(
      flags.GetInt("max-nodes", 100000, "largest network size in the sweep"));
  const int rounds = static_cast<int>(
      flags.GetInt("rounds", 1000, "executed rounds per (size, threads) cell"));
  const int extra_threads = static_cast<int>(flags.GetInt(
      "threads", 0, "extra thread count appended to the {1,2,4,8} sweep"));

  std::vector<int> sizes;
  for (int size : {1000, 10000, max_nodes}) {
    if (size <= max_nodes && (sizes.empty() || size > sizes.back())) {
      sizes.push_back(size);
    }
  }
  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (extra_threads > 0 &&
      std::find(thread_counts.begin(), thread_counts.end(), extra_threads) ==
          thread_counts.end()) {
    thread_counts.push_back(extra_threads);
  }
  const unsigned host_cpus = std::thread::hardware_concurrency();

  std::vector<Topology> series = MakeScalingSeries(sizes, /*seed=*/77);

  std::ofstream json("BENCH_scale.json");
  json << "{\n  \"experiment\": \"scale\",\n"
       << "  \"setup\": \"density-matched uniform networks (GDI average "
          "degree); plan construction + executed rounds per thread count; "
          "identical_results asserts byte-equal plan size and bit-equal "
          "round energy across the sweep\",\n"
       << "  \"host_cpus\": " << host_cpus << ",\n  \"rounds\": " << rounds
       << ",\n  \"thread_counts\": [";
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    json << (i ? ", " : "") << thread_counts[i];
  }
  json << "],\n  \"rows\": [\n";

  Table table({"nodes", "links", "forest_edges", "threads", "plan_ms",
               "exec_ms", "rounds_per_s", "plan_speedup"});
  for (size_t si = 0; si < series.size(); ++si) {
    const Topology& topology = series[si];
    const int n = topology.node_count();
    const bool large = n >= 50000;
    WorkloadSpec spec;
    spec.destination_count = large ? 64 : 32;
    spec.sources_per_destination = large ? 10 : 8;
    spec.selection = SourceSelection::kUniform;
    spec.kind = AggregateKind::kWeightedAverage;
    spec.seed = 7700 + si;
    Workload workload = GenerateWorkload(topology, spec);

    // Shared across thread counts: the forest (and its cached path
    // columns), so each cell times exactly the per-edge cover solves plus
    // plan assembly, and the compiled plan the executor runs.
    PathSystem paths(topology);
    auto forest =
        std::make_shared<const MulticastForest>(paths, workload.tasks);

    struct Cell {
      int threads = 0;
      double plan_ms = 0.0;
      double exec_ms = 0.0;
      int64_t plan_bytes = 0;
      double round_energy_mj = 0.0;
    };
    std::vector<Cell> cells;
    ReadingGenerator readings(n, /*seed=*/17);
    for (int threads : thread_counts) {
      ScopedParallelism parallelism(threads);
      Cell cell;
      cell.threads = threads;

      Clock::time_point start = Clock::now();
      GlobalPlan plan = BuildPlan(forest, workload.functions, {});
      cell.plan_ms = MsSince(start);
      cell.plan_bytes = plan.TotalPayloadBytes();

      CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
      PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                            workload.functions, EnergyModel{});
      start = Clock::now();
      for (int r = 0; r < rounds; ++r) {
        cell.round_energy_mj = executor.RunRound(readings.values()).energy_mj;
      }
      cell.exec_ms = MsSince(start);
      cells.push_back(cell);
    }

    bool identical = true;
    for (const Cell& cell : cells) {
      identical = identical && cell.plan_bytes == cells[0].plan_bytes &&
                  cell.round_energy_mj == cells[0].round_energy_mj;
    }
    const double serial_plan_ms = cells[0].plan_ms;

    json << (si ? ",\n" : "") << "    {\"nodes\": " << n
         << ", \"links\": " << topology.link_count()
         << ", \"destinations\": " << spec.destination_count
         << ", \"sources_per_destination\": " << spec.sources_per_destination
         << ", \"forest_edges\": " << forest->edges().size()
         << ", \"identical_results\": " << (identical ? "true" : "false")
         << ",\n     \"per_thread\": [";
    for (size_t ci = 0; ci < cells.size(); ++ci) {
      const Cell& cell = cells[ci];
      const double speedup =
          cell.plan_ms > 0.0 ? serial_plan_ms / cell.plan_ms : 0.0;
      json << (ci ? ",\n                    " : "") << "{\"threads\": "
           << cell.threads << ", \"plan_ms\": " << Table::Num(cell.plan_ms)
           << ", \"exec_ms\": " << Table::Num(cell.exec_ms)
           << ", \"rounds_per_s\": "
           << Table::Num(rounds / (cell.exec_ms / 1000.0))
           << ", \"plan_speedup\": " << Table::Num(speedup) << "}";
      table.AddRow({std::to_string(n), std::to_string(topology.link_count()),
                    std::to_string(forest->edges().size()),
                    std::to_string(cell.threads), Table::Num(cell.plan_ms),
                    Table::Num(cell.exec_ms),
                    Table::Num(rounds / (cell.exec_ms / 1000.0)),
                    Table::Num(speedup)});
    }
    json << "]}";
  }
  json << "\n  ]\n}\n";

  bench::EmitTable(
      "Scale — threads x network size",
      "Density-matched networks to " + std::to_string(sizes.back()) +
          " nodes; " + std::to_string(rounds) +
          " rounds per cell; host_cpus=" + std::to_string(host_cpus),
      table);
  return 0;
}
