// Broadcast / selective-listening ablation (paper section 3 and footnote
// 1): raw values that a node forwards onto several outgoing edges can go
// out once as a local broadcast. The paper predicts this "would further
// increase the advantage of the other algorithms over flood"; here we
// quantify it for optimal and multicast across the Figure 3 sweep.

#include "harness.h"

int main() {
  using namespace m2m;
  Topology topology = MakeGreatDuckIslandLike();
  Table table({"pct_destinations", "optimal_mJ", "optimal_bcast_mJ",
               "optimal_saving_pct", "multicast_mJ", "multicast_bcast_mJ",
               "multicast_saving_pct"});
  for (int pct = 20; pct <= 100; pct += 20) {
    WorkloadSpec spec;
    spec.destination_count = std::max(1, topology.node_count() * pct / 100);
    spec.sources_per_destination = 20;
    spec.dispersion = 0.9;
    spec.seed = 8300 + pct;
    Workload workload = GenerateWorkload(topology, spec);
    ReadingGenerator readings(topology.node_count(), 29);

    auto measure = [&](PlanStrategy strategy, bool broadcast) {
      SystemOptions options;
      options.planner.strategy = strategy;
      System system(topology, workload, options);
      TransmissionOptions tx;
      tx.use_broadcast = broadcast;
      return system.MakeExecutor().RunRound(readings.values(), tx).energy_mj;
    };
    double opt = measure(PlanStrategy::kOptimal, false);
    double opt_b = measure(PlanStrategy::kOptimal, true);
    double mc = measure(PlanStrategy::kMulticastOnly, false);
    double mc_b = measure(PlanStrategy::kMulticastOnly, true);
    table.AddRow({std::to_string(pct), Table::Num(opt), Table::Num(opt_b),
                  Table::Num(100.0 * (opt - opt_b) / opt, 1),
                  Table::Num(mc), Table::Num(mc_b),
                  Table::Num(100.0 * (mc - mc_b) / mc, 1)});
  }
  m2m::bench::EmitTable(
      "Broadcast ablation — shared raw values sent once with selective "
      "listening",
      "GDI-like 68-node network, 20 sources/destination, d=0.9",
      table);
  return 0;
}
