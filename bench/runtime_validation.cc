// Distributed-runtime validation: nodes constructed purely from their
// serialized table images, exchanging encoded packets, must reproduce the
// analytic executor's aggregates. This bench reports the byte-accurate
// costs of the real encoding (varint tags + f32 fields) next to the
// analytic model's fixed unit sizes, plus the per-node state image sizes a
// mote would hold.

#include "harness.h"

int main() {
  using namespace m2m;
  Topology topology = MakeGreatDuckIslandLike();
  Table table({"destinations", "sources", "analytic_payload_B",
               "encoded_payload_B", "analytic_mJ", "runtime_mJ",
               "image_bytes_total", "max_image_B"});
  for (auto [destinations, sources] :
       {std::pair{7, 6}, {14, 12}, {20, 20}, {34, 20}}) {
    WorkloadSpec spec;
    spec.destination_count = destinations;
    spec.sources_per_destination = sources;
    spec.dispersion = 0.9;
    spec.seed = 8500 + destinations;
    Workload workload = GenerateWorkload(topology, spec);
    System system(topology, workload);
    ReadingGenerator readings(topology.node_count(), 35);

    RoundResult analytic =
        system.MakeExecutor().RunRound(readings.values());
    RuntimeNetwork network(system.compiled(), workload.functions);
    RuntimeNetwork::Result distributed =
        network.RunRound(readings.values());

    size_t max_image = 0;
    for (const auto& image :
         EncodeAllNodeStates(system.compiled(), workload.functions)) {
      max_image = std::max(max_image, image.size());
    }
    table.AddRow({std::to_string(destinations), std::to_string(sources),
                  std::to_string(analytic.payload_bytes),
                  std::to_string(distributed.payload_bytes),
                  Table::Num(analytic.energy_mj),
                  Table::Num(distributed.energy_mj),
                  std::to_string(network.installed_image_bytes()),
                  std::to_string(max_image)});
  }
  m2m::bench::EmitTable(
      "Distributed runtime — encoded packets vs the analytic model",
      "GDI-like 68-node network, optimal plans; runtime values verified "
      "equal to direct evaluation; image = serialized per-node tables",
      table);
  return 0;
}
