// Query-churn experiment: what does runtime workload churn cost? Sweeps the
// arrival rate (scheduled admissions per churn window, with proportional
// retirements and source mutations) and, per rate, drives the query
// lifecycle manager under two capacity profiles: open (only the Theorem 3
// state bound) and tight (TDMA slots and per-node energy pinned just above
// the initial plan's draw). Reports, per committed delta, the Corollary 1
// replan locality (edges re-optimized vs reused), the dissemination bytes
// the delta ships (full images + 5-byte epoch bumps), and the typed
// admission-rejection rate. Results also land in BENCH_churn.json.

#include <algorithm>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"
#include "lifecycle/admission.h"
#include "lifecycle/churn_schedule.h"
#include "lifecycle/lifecycle.h"
#include "plan/tdma.h"
#include "sim/base_station.h"

int main(int argc, char** argv) {
  using namespace m2m;
  const int threads = bench::ApplyParallelismFlags(argc, argv);
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 5;
  spec.sources_per_destination = 5;
  spec.seed = 6100;
  Workload initial = GenerateWorkload(topology, spec);
  NodeId base = PickBaseStation(topology);

  // Tight limits are pinned to the INITIAL plan's draw: growth past the
  // deployment's current TDMA round length or hottest node is rejected.
  QueryLifecycleManager baseline(topology, initial, base);
  const TdmaSchedule baseline_tdma =
      BuildTdmaSchedule(baseline.compiled(), topology);
  const std::vector<double> baseline_mj = PerNodeRoundEnergyMj(
      baseline.compiled(), baseline.workload().functions, EnergyModel{});
  const double baseline_peak_mj =
      *std::max_element(baseline_mj.begin(), baseline_mj.end());

  obs::MetricsRegistry metrics;
  std::ofstream json("BENCH_churn.json");
  json << "{\n  \"experiment\": \"churn\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"setup\": \"GDI topology, 5 destinations x 5 sources seed "
          "workload; ChurnSchedule arrival-rate sweep; open limits = "
          "Theorem 3 only, tight limits = initial TDMA slots + 5% node "
          "energy headroom\",\n"
       << "  \"baseline\": {\"tdma_slots\": " << baseline_tdma.slot_count
       << ", \"peak_node_mj\": " << baseline_peak_mj << "},\n"
       << "  \"rows\": [\n";

  Table table({"rate", "limits", "events", "admitted", "rejected",
               "reject_pct", "edges_reopt_avg", "reuse_pct",
               "delta_bytes_avg", "images", "bumps"});
  const std::vector<int> rates = {1, 2, 4, 8};
  bool first_row = true;
  for (int rate : rates) {
    ChurnScheduleOptions churn_options;
    churn_options.rounds = 4 * rate + 2;
    churn_options.admissions = rate;
    churn_options.retirements = rate / 2;
    churn_options.source_adds = rate;
    churn_options.source_removes = rate / 2;
    churn_options.seed = 6200 + static_cast<uint64_t>(rate);
    ChurnSchedule schedule =
        ChurnSchedule::Generate(topology, initial, {base}, churn_options);

    for (const bool tight : {false, true}) {
      LifecycleOptions options;
      if (tight) {
        options.limits.max_tdma_slots = baseline_tdma.slot_count;
        options.limits.max_node_energy_mj = baseline_peak_mj * 1.05;
      }
      QueryLifecycleManager manager(topology, initial, base, options);
      manager.set_metrics(&metrics);

      int admitted = 0, rejected = 0;
      int64_t edges_reoptimized = 0, edges_total = 0, delta_bytes = 0;
      int images = 0, bumps = 0;
      for (const ChurnEvent& event : schedule.events()) {
        MutationResult result = ApplyChurnEvent(manager, event);
        if (!result.decision.admitted) {
          ++rejected;
          continue;
        }
        ++admitted;
        edges_reoptimized += result.replan.edges_reoptimized;
        edges_total += result.replan.edges_total;
        delta_bytes += result.delta_state_bytes;
        images += result.images_shipped;
        bumps += result.bumps_shipped;
      }

      const int events = static_cast<int>(schedule.events().size());
      const double reject_pct =
          events == 0 ? 0.0 : 100.0 * rejected / events;
      const double reopt_avg =
          admitted == 0 ? 0.0
                        : static_cast<double>(edges_reoptimized) / admitted;
      const double reuse_pct =
          edges_total == 0
              ? 0.0
              : 100.0 *
                    static_cast<double>(edges_total - edges_reoptimized) /
                    static_cast<double>(edges_total);
      const double bytes_avg =
          admitted == 0 ? 0.0
                        : static_cast<double>(delta_bytes) / admitted;
      const std::string limits_name = tight ? "tight" : "open";
      table.AddRow({std::to_string(rate), limits_name,
                    std::to_string(events), std::to_string(admitted),
                    std::to_string(rejected), Table::Num(reject_pct, 1),
                    Table::Num(reopt_avg, 1), Table::Num(reuse_pct, 1),
                    Table::Num(bytes_avg, 1), std::to_string(images),
                    std::to_string(bumps)});
      json << (first_row ? "" : ",\n") << "    {\"rate\": " << rate
           << ", \"limits\": \"" << limits_name
           << "\", \"events\": " << events << ", \"admitted\": " << admitted
           << ", \"rejected\": " << rejected
           << ", \"edges_reoptimized\": " << edges_reoptimized
           << ", \"edges_total\": " << edges_total
           << ", \"delta_state_bytes\": " << delta_bytes
           << ", \"images\": " << images << ", \"bumps\": " << bumps << "}";
      first_row = false;
    }
  }
  json << "\n  ],\n  \"totals\": {\n"
       << "    \"admissions\": " << metrics.Total("qlm.admissions")
       << ",\n    \"rejections\": " << metrics.Total("qlm.rejections")
       << ",\n    \"rejections_tdma\": "
       << metrics.Total("qlm.rejections.tdma_capacity")
       << ",\n    \"rejections_energy\": "
       << metrics.Total("qlm.rejections.energy_budget")
       << ",\n    \"rejections_state_bound\": "
       << metrics.Total("qlm.rejections.state_bound")
       << ",\n    \"replan_edges_reused\": "
       << metrics.Total("qlm.replan_edges_reused")
       << ",\n    \"replan_edges_reoptimized\": "
       << metrics.Total("qlm.replan_edges_reoptimized")
       << ",\n    \"delta_state_bytes\": "
       << metrics.Total("qlm.delta_state_bytes") << "\n  }\n}\n";

  bench::MaybeWriteMetricsJson(argc, argv, metrics);
  bench::EmitTable(
      "churn_arrival_rate",
      "GDI topology; arrival-rate sweep of scheduled query churn through "
      "the lifecycle manager; open vs tight capacity; replan locality, "
      "dissemination delta bytes, typed rejection rate; JSON copy in "
      "BENCH_churn.json",
      table);
  return 0;
}
