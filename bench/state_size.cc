// Theorem 3 validation: the in-network state required by the optimal plan
// is O(min{sum |T_s|, sum |A_d|}). For a sweep of workload sizes, print the
// measured table entries against the bound and the baselines' state.

#include "harness.h"

namespace {

using namespace m2m;

int64_t TotalState(const Topology& topology, const Workload& workload,
                   PlanStrategy strategy, StateTotals* totals_out) {
  PathSystem paths(topology);
  auto forest =
      std::make_shared<const MulticastForest>(paths, workload.tasks);
  PlannerOptions options;
  options.strategy = strategy;
  GlobalPlan plan = BuildPlan(forest, workload.functions, options);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  StateTotals totals = compiled.ComputeStateTotals();
  if (totals_out != nullptr) *totals_out = totals;
  return totals.total();
}

}  // namespace

int main() {
  Topology topology = MakeGreatDuckIslandLike();
  Table table({"destinations", "sources_each", "optimal_state",
               "multicast_state", "aggregation_state", "sum_Ts", "sum_Ad",
               "bound_min", "optimal/bound"});
  for (auto [destinations, sources] :
       {std::pair{7, 10}, {14, 20}, {27, 20}, {41, 25}, {68, 20}}) {
    WorkloadSpec spec;
    spec.destination_count = destinations;
    spec.sources_per_destination = sources;
    spec.dispersion = 0.9;
    spec.seed = 6000 + destinations;
    Workload workload = GenerateWorkload(topology, spec);
    StateTotals totals;
    int64_t optimal =
        TotalState(topology, workload, PlanStrategy::kOptimal, &totals);
    int64_t multicast = TotalState(topology, workload,
                                   PlanStrategy::kMulticastOnly, nullptr);
    int64_t aggregation = TotalState(
        topology, workload, PlanStrategy::kAggregationOnly, nullptr);
    int64_t bound = std::min(totals.sum_multicast_tree_sizes,
                             totals.sum_aggregation_tree_sizes);
    table.AddRow({std::to_string(destinations), std::to_string(sources),
                  std::to_string(optimal), std::to_string(multicast),
                  std::to_string(aggregation),
                  std::to_string(totals.sum_multicast_tree_sizes),
                  std::to_string(totals.sum_aggregation_tree_sizes),
                  std::to_string(bound),
                  Table::Num(static_cast<double>(optimal) / bound, 2)});
  }
  m2m::bench::EmitTable(
      "Theorem 3 — in-network state vs tree-size bound",
      "GDI-like 68-node network, dispersion d=0.9; state = total table "
      "entries across all nodes",
      table);
  return 0;
}
