// Precision-vs-energy trade-off of threshold suppression (paper section 3:
// aggregation functions "continuously maintained (up to desired precision)
// using a variant of temporal suppression"). Readings drift every round;
// a source transmits only when it moved more than epsilon from its last
// transmitted value. We report energy, observed worst error, and the
// analytic error bound per epsilon.

#include "harness.h"

int main() {
  using namespace m2m;
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 14;
  spec.sources_per_destination = 20;
  spec.dispersion = 0.9;
  spec.kind = AggregateKind::kWeightedAverage;
  spec.seed = 8400;
  Workload workload = GenerateWorkload(topology, spec);
  System system(topology, workload);

  // Reference: exact suppression (epsilon = 0 still suppresses genuinely
  // unchanged readings; here every reading drifts every round).
  Table table({"epsilon", "energy_mJ_per_round", "pct_of_exact",
               "max_observed_error", "worst_error_bound"});
  const int rounds = 20;
  double exact_energy = -1.0;
  for (double epsilon : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    PlanExecutor executor = system.MakeExecutor();
    ReadingGenerator readings(topology.node_count(), 33, /*step_stddev=*/1.5);
    executor.InitializeState(readings.values());
    double energy = 0.0;
    double max_error = 0.0;
    for (int r = 0; r < rounds; ++r) {
      readings.Advance(1.0);  // Every reading drifts a little each round.
      RoundResult round = executor.RunThresholdSuppressedRound(
          readings.values(), epsilon, OverridePolicy::kConservative);
      energy += round.energy_mj;
      max_error = std::max(max_error, round.max_abs_error);
    }
    energy /= rounds;
    if (exact_energy < 0.0) exact_energy = energy;
    double bound = 0.0;
    for (const Task& task : workload.tasks) {
      bound = std::max(bound,
                       workload.functions.Get(task.destination)
                           .SuppressionErrorBound(epsilon));
    }
    table.AddRow({Table::Num(epsilon, 1), Table::Num(energy),
                  Table::Num(100.0 * energy / exact_energy, 1),
                  Table::Num(max_error, 3), Table::Num(bound, 3)});
  }
  m2m::bench::EmitTable(
      "Threshold suppression — precision vs energy",
      "GDI-like 68-node network, 14 destinations x 20 sources, weighted "
      "average; every reading drifts N(0, 1.5) per round; 20 rounds",
      table);
  return 0;
}
