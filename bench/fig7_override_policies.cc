// Figure 7: override policies under temporal suppression. For change
// probabilities 0..0.3, we run the optimal plan with suppression under the
// three override policies and report the percent improvement in energy over
// the default-plan suppression (the plan decisions "given by full
// recomputation", executed without runtime override). Averaged over 10
// timesteps in 3 random networks, 30% of nodes as destinations with 25
// sources each (paper section 4, "Suppression and Override").

#include "harness.h"

namespace {

using namespace m2m;

struct PolicyTotals {
  double none = 0.0;
  double conservative = 0.0;
  double medium = 0.0;
  double aggressive = 0.0;
};

PolicyTotals MeasureNetwork(const Topology& topology,
                            const Workload& workload, double change_prob,
                            uint64_t seed) {
  PathSystem paths(topology);
  auto forest =
      std::make_shared<const MulticastForest>(paths, workload.tasks);
  GlobalPlan plan = BuildPlan(forest, workload.functions, {});
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  auto shared = std::make_shared<CompiledPlan>(compiled);

  PolicyTotals totals;
  auto run = [&](OverridePolicy policy) {
    PlanExecutor executor(shared, workload.functions, EnergyModel{});
    ReadingGenerator readings(topology.node_count(), seed);
    executor.InitializeState(readings.values());
    double total = 0.0;
    for (int round = 0; round < 10; ++round) {
      std::vector<bool> changed = readings.Advance(change_prob);
      total += executor
                   .RunSuppressedRound(readings.values(), changed, policy)
                   .energy_mj;
    }
    return total;
  };
  totals.none = run(OverridePolicy::kNone);
  totals.conservative = run(OverridePolicy::kConservative);
  totals.medium = run(OverridePolicy::kMedium);
  totals.aggressive = run(OverridePolicy::kAggressive);
  return totals;
}

}  // namespace

int main() {
  Table table({"change_probability", "aggressive_pct", "medium_pct",
               "conservative_pct"});
  for (int step = 0; step <= 6; ++step) {
    double p = 0.05 * step;
    PolicyTotals grand;
    for (uint64_t net = 0; net < 3; ++net) {
      Topology topology = MakeUniformRandom(
          68, Area{106.0, 203.0}, kDefaultRadioRangeM, 900 + net);
      WorkloadSpec spec;
      spec.destination_count = topology.node_count() * 3 / 10;  // 30%.
      spec.sources_per_destination = 25;
      spec.dispersion = 0.9;
      spec.kind = AggregateKind::kWeightedAverage;
      spec.seed = 5000 + net;
      Workload workload = GenerateWorkload(topology, spec);
      PolicyTotals totals =
          MeasureNetwork(topology, workload, p, 7000 + net);
      grand.none += totals.none;
      grand.conservative += totals.conservative;
      grand.medium += totals.medium;
      grand.aggressive += totals.aggressive;
    }
    auto improvement = [&](double policy_total) {
      if (grand.none <= 0.0) return 0.0;  // p = 0: nothing transmitted.
      return 100.0 * (grand.none - policy_total) / grand.none;
    };
    table.AddRow({Table::Num(p, 2), Table::Num(improvement(grand.aggressive)),
                  Table::Num(improvement(grand.medium)),
                  Table::Num(improvement(grand.conservative))});
  }
  m2m::bench::EmitTable(
      "Figure 7 — override policies under temporal suppression",
      "3 random 68-node networks, 30% destinations with 25 sources each, 10 "
      "timesteps; % energy improvement over default-plan suppression",
      table);
  return 0;
}
