#include "harness.h"

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/flags.h"
#include "common/thread_pool.h"

namespace m2m::bench {

namespace {

double PlanEnergy(std::shared_ptr<const MulticastForest> forest,
                  const Workload& workload, PlanStrategy strategy,
                  int node_count) {
  PlannerOptions options;
  options.strategy = strategy;
  GlobalPlan plan = BuildPlan(forest, workload.functions, options);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                        workload.functions, EnergyModel{});
  ReadingGenerator readings(node_count, /*seed=*/17);
  return executor.RunRound(readings.values()).energy_mj;
}

}  // namespace

AlgorithmEnergies MeasureAlgorithms(const Topology& topology,
                                    const Workload& workload,
                                    bool include_flood) {
  PathSystem paths(topology);
  auto forest =
      std::make_shared<const MulticastForest>(paths, workload.tasks);
  AlgorithmEnergies result;
  result.optimal_mj = PlanEnergy(forest, workload, PlanStrategy::kOptimal,
                                 topology.node_count());
  result.multicast_mj = PlanEnergy(
      forest, workload, PlanStrategy::kMulticastOnly, topology.node_count());
  result.aggregation_mj =
      PlanEnergy(forest, workload, PlanStrategy::kAggregationOnly,
                 topology.node_count());
  if (include_flood) {
    result.flood_mj =
        SimulateFloodRound(topology, workload.DistinctSources(),
                           EnergyModel{})
            .energy_mj;
  }
  return result;
}

void EmitTable(const std::string& experiment_id, const std::string& setup,
               const Table& table) {
  std::cout << "== " << experiment_id << " ==\n" << setup << "\n\n";
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  std::cout << std::endl;
}

bool MaybeWriteMetricsJson(int argc, const char* const argv[],
                           const obs::MetricsRegistry& registry) {
  FlagParser flags(argc, argv);
  const std::string path = flags.GetString(
      "metrics-json", "",
      "write an m2m.metrics.v1 snapshot of the run's metrics to this path");
  if (path.empty()) return false;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot open --metrics-json path " << path << "\n";
    return false;
  }
  out << registry.ToJson() << "\n";
  std::cout << "metrics snapshot written to " << path << std::endl;
  return true;
}

int ApplyParallelismFlags(int argc, const char* const argv[]) {
  FlagParser flags(argc, argv);
  const int threads = static_cast<int>(flags.GetInt(
      "threads", 1, "worker threads for planning and round execution"));
  const int shards = static_cast<int>(flags.GetInt(
      "shards", 0, "work partitions per parallel region (0 = threads)"));
  SetGlobalParallelism(threads, shards);
  return GlobalThreadCount();
}

std::string TransportConfigJson(const event::Transport& transport,
                                const event::DriftOptions& drift,
                                int64_t timestep_interval_ticks) {
  std::ostringstream out;
  out << "\"transport\": " << transport.Describe() << ", \"drift\": {"
      << "\"max_skew_ppm\": " << drift.max_skew_ppm
      << ", \"max_offset_ticks\": " << drift.max_offset_ticks
      << ", \"seed\": " << drift.seed
      << "}, \"timestep_interval_ticks\": " << timestep_interval_ticks;
  return out.str();
}

}  // namespace m2m::bench
