// Milestone ablation (paper section 3, "Flexibility Trade-Off in Routing
// using Milestones"): sweeping the milestone stability threshold from
// "every node" to "endpoints only", measure (a) the plan's failure-free
// round energy (more milestones = more aggregation opportunities) and (b)
// delivery completeness under sampled transient link failures (fewer
// pinned hops = more routing flexibility).

#include "harness.h"

namespace {

using namespace m2m;

struct MilestoneNumbers {
  int milestones = 0;
  double round_mj = 0.0;
  double delivery_pct = 0.0;
  double contribution_pct = 0.0;
  double failure_round_mj = 0.0;
};

MilestoneNumbers Measure(const Topology& topology, const Workload& workload,
                         const LinkStabilityModel& stability,
                         std::optional<MilestoneSelector> selector,
                         bool backup_relay = false) {
  SystemOptions options;
  options.milestones = selector;
  System system(topology, workload, options);
  MilestoneNumbers numbers;
  numbers.milestones = selector.has_value()
                           ? selector->milestone_count()
                           : topology.node_count();
  ReadingGenerator readings(topology.node_count(), 21);
  numbers.round_mj =
      system.MakeExecutor().RunRound(readings.values()).energy_mj;

  RedundancyOptions redundancy;
  redundancy.backup_relay = backup_relay;
  Rng rng(22);
  int64_t complete = 0;
  int64_t total = 0;
  int64_t contributions = 0;
  int64_t contributions_total = 0;
  double energy = 0.0;
  const int rounds = 40;
  for (int round = 0; round < rounds; ++round) {
    LinkOutcome links = LinkOutcome::Sample(topology, stability, rng);
    FailureRoundResult result = RunRoundWithFailures(
        system.compiled(), workload.functions, topology, links,
        EnergyModel{}, redundancy);
    complete += result.destinations_complete;
    total += result.destinations_total;
    contributions += result.contributions_delivered;
    contributions_total += result.contributions_total;
    energy += result.energy_mj;
  }
  numbers.delivery_pct = 100.0 * complete / total;
  numbers.contribution_pct = 100.0 * contributions / contributions_total;
  numbers.failure_round_mj = energy / rounds;
  return numbers;
}

}  // namespace

int main() {
  Topology topology = MakeGreatDuckIslandLike();
  LinkStabilityModel stability(topology, 31);
  WorkloadSpec spec;
  spec.destination_count = 14;
  spec.sources_per_destination = 15;
  spec.dispersion = 0.9;
  spec.seed = 6200;
  Workload workload = GenerateWorkload(topology, spec);

  Table table({"policy", "milestones", "round_mJ", "delivery_pct",
               "contribution_pct", "failure_round_mJ"});
  auto add_row = [&](const std::string& name,
                     std::optional<MilestoneSelector> selector,
                     bool backup_relay = false) {
    MilestoneNumbers numbers = Measure(topology, workload, stability,
                                       std::move(selector), backup_relay);
    table.AddRow({name, std::to_string(numbers.milestones),
                  Table::Num(numbers.round_mj),
                  Table::Num(numbers.delivery_pct, 1),
                  Table::Num(numbers.contribution_pct, 1),
                  Table::Num(numbers.failure_round_mj)});
  };
  add_row("all_nodes", std::nullopt);
  add_row("all_nodes+backup_relay", std::nullopt, /*backup_relay=*/true);
  for (double threshold : {0.80, 0.84, 0.87, 0.90}) {
    add_row("stability>=" + Table::Num(threshold, 2),
            MilestoneSelector::StabilityThreshold(topology, stability,
                                                  threshold));
  }
  add_row("endpoints_only",
          MilestoneSelector::EndpointsOnly(topology.node_count()));

  m2m::bench::EmitTable(
      "Milestone ablation — aggregation opportunity vs routing flexibility",
      "GDI-like 68-node network, 14 destinations x 15 sources; 40 "
      "failure-sampled rounds per policy",
      table);
  return 0;
}
