// Stability-aware routing ablation (paper section 3: routes should adapt
// "if stability of certain routes have changed significantly"). Sweeping
// the instability penalty in the link cost, measure route length, mean link
// stability along routes, failure-free round energy, and delivery
// completeness under sampled transient failures.

#include <memory>

#include "harness.h"

int main() {
  using namespace m2m;
  Topology topology = MakeGreatDuckIslandLike();
  LinkStabilityModel stability(topology, 51);
  WorkloadSpec spec;
  spec.destination_count = 14;
  spec.sources_per_destination = 15;
  spec.dispersion = 0.9;
  spec.seed = 8600;
  Workload workload = GenerateWorkload(topology, spec);

  Table table({"penalty", "mean_route_hops", "mean_link_stability",
               "round_mJ", "delivery_pct"});
  for (double penalty : {0.0, 1.0, 2.0, 4.0, 8.0}) {
    PathSystem paths(topology, 0x5eed,
                     penalty == 0.0
                         ? PathSystem::LinkCostFn(nullptr)
                         : StabilityAwareLinkCost(stability, penalty));
    auto forest =
        std::make_shared<const MulticastForest>(paths, workload.tasks);
    GlobalPlan plan = BuildPlan(forest, workload.functions, {});
    CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
    PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                          workload.functions, EnergyModel{});
    ReadingGenerator readings(topology.node_count(), 37);
    double round_mj = executor.RunRound(readings.values()).energy_mj;

    // Route statistics over all (source, destination) pairs.
    double hop_total = 0.0;
    double stability_total = 0.0;
    int64_t pair_count = 0;
    int64_t link_count = 0;
    for (const Task& task : workload.tasks) {
      for (NodeId s : task.sources) {
        if (s == task.destination) continue;
        std::vector<NodeId> path = paths.Path(s, task.destination);
        hop_total += static_cast<double>(path.size()) - 1;
        ++pair_count;
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          stability_total += stability.stability(path[i], path[i + 1]);
          ++link_count;
        }
      }
    }

    // Delivery under sampled link failures (plans are hop-pinned here, so
    // stability-aware routes pay off directly).
    Rng rng(38);
    int64_t complete = 0;
    int64_t total = 0;
    for (int round = 0; round < 40; ++round) {
      LinkOutcome links = LinkOutcome::Sample(topology, stability, rng);
      FailureRoundResult result = RunRoundWithFailures(
          compiled, workload.functions, topology, links, EnergyModel{});
      complete += result.contributions_delivered;
      total += result.contributions_total;
    }
    table.AddRow({Table::Num(penalty, 1),
                  Table::Num(hop_total / pair_count, 2),
                  Table::Num(stability_total / link_count, 3),
                  Table::Num(round_mj), Table::Num(100.0 * complete / total,
                                                   1)});
  }
  m2m::bench::EmitTable(
      "Stability-aware routing — trading hops for dependable links",
      "GDI-like 68-node network, 14 destinations x 15 sources; link cost = "
      "1 + penalty * (1 - stability); 40 failure-sampled rounds",
      table);
  return 0;
}
