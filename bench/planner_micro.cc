// Microbenchmarks for the optimizer itself: single-edge vertex-cover
// solves, full plan construction, incremental update vs rebuild, path
// system and compilation costs. The *_Threads variants sweep the
// thread-pool width (Arg = worker threads) over the same fixture;
// `--threads N` additionally sets the pool width for every other
// benchmark (default 1 = serial).

#include <memory>

#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "harness.h"

namespace {

using namespace m2m;

// Synthetic single-edge instance: u sources x v destinations, ~40% density.
BipartiteInstance SyntheticInstance(int u, int v, uint64_t seed) {
  Rng rng(seed);
  BipartiteInstance instance;
  for (int i = 0; i < u; ++i) {
    instance.sources.push_back(
        CoverVertex{i, PerturbedWeight(kRawUnitBytes, i, false, seed)});
  }
  for (int j = 0; j < v; ++j) {
    instance.destinations.push_back(
        CoverVertex{1000 + j, PerturbedWeight(8, 1000 + j, true, seed)});
  }
  for (int i = 0; i < u; ++i) {
    for (int j = 0; j < v; ++j) {
      if (rng.Bernoulli(0.4)) instance.edges.emplace_back(i, j);
    }
  }
  if (instance.edges.empty()) instance.edges.emplace_back(0, 0);
  return instance;
}

void BM_SingleEdgeCover(benchmark::State& state) {
  BipartiteInstance instance =
      SyntheticInstance(state.range(0), state.range(0), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveMinWeightVertexCover(instance));
  }
}
BENCHMARK(BM_SingleEdgeCover)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

struct PlanFixture {
  PlanFixture() : topology(MakeGreatDuckIslandLike()), paths(topology) {
    WorkloadSpec spec;
    spec.destination_count = 14;
    spec.sources_per_destination = 20;
    spec.dispersion = 0.9;
    spec.seed = 42;
    workload = GenerateWorkload(topology, spec);
    forest = std::make_shared<const MulticastForest>(paths, workload.tasks);
  }
  Topology topology;
  PathSystem paths;
  Workload workload;
  std::shared_ptr<const MulticastForest> forest;
};

PlanFixture& Fixture() {
  static PlanFixture* fixture = new PlanFixture();
  return *fixture;
}

void BM_PathSystemConstruction(benchmark::State& state) {
  Topology topology = MakeGreatDuckIslandLike();
  for (auto _ : state) {
    PathSystem paths(topology);
    benchmark::DoNotOptimize(paths.HopDistance(0, 1));
  }
}
BENCHMARK(BM_PathSystemConstruction);

void BM_MulticastForestConstruction(benchmark::State& state) {
  PlanFixture& fx = Fixture();
  for (auto _ : state) {
    MulticastForest forest(fx.paths, fx.workload.tasks);
    benchmark::DoNotOptimize(forest.edges().size());
  }
}
BENCHMARK(BM_MulticastForestConstruction);

void BM_BuildFullPlan(benchmark::State& state) {
  PlanFixture& fx = Fixture();
  for (auto _ : state) {
    GlobalPlan plan = BuildPlan(fx.forest, fx.workload.functions, {});
    benchmark::DoNotOptimize(plan.TotalPayloadBytes());
  }
}
BENCHMARK(BM_BuildFullPlan);

void BM_IncrementalUpdateAddSource(benchmark::State& state) {
  PlanFixture& fx = Fixture();
  GlobalPlan plan = BuildPlan(fx.forest, fx.workload.functions, {});
  NodeId d = fx.workload.tasks[0].destination;
  NodeId fresh = kInvalidNode;
  for (NodeId n = 0; n < fx.topology.node_count(); ++n) {
    const auto& sources = fx.workload.tasks[0].sources;
    if (n != d &&
        std::find(sources.begin(), sources.end(), n) == sources.end()) {
      fresh = n;
      break;
    }
  }
  Workload updated = WithSourceAdded(fx.workload, fresh, d, 1.0);
  auto updated_forest =
      std::make_shared<const MulticastForest>(fx.paths, updated.tasks);
  for (auto _ : state) {
    UpdateStats stats;
    GlobalPlan incremental =
        UpdatePlan(plan, updated_forest, updated.functions, &stats);
    benchmark::DoNotOptimize(incremental.TotalPayloadBytes());
  }
}
BENCHMARK(BM_IncrementalUpdateAddSource);

void BM_RebuildAfterAddSource(benchmark::State& state) {
  PlanFixture& fx = Fixture();
  NodeId d = fx.workload.tasks[0].destination;
  NodeId fresh = kInvalidNode;
  for (NodeId n = 0; n < fx.topology.node_count(); ++n) {
    const auto& sources = fx.workload.tasks[0].sources;
    if (n != d &&
        std::find(sources.begin(), sources.end(), n) == sources.end()) {
      fresh = n;
      break;
    }
  }
  Workload updated = WithSourceAdded(fx.workload, fresh, d, 1.0);
  auto updated_forest =
      std::make_shared<const MulticastForest>(fx.paths, updated.tasks);
  for (auto _ : state) {
    GlobalPlan full = BuildPlan(updated_forest, updated.functions, {});
    benchmark::DoNotOptimize(full.TotalPayloadBytes());
  }
}
BENCHMARK(BM_RebuildAfterAddSource);

void BM_BuildFullPlan_Threads(benchmark::State& state) {
  PlanFixture& fx = Fixture();
  ScopedParallelism parallelism(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    GlobalPlan plan = BuildPlan(fx.forest, fx.workload.functions, {});
    benchmark::DoNotOptimize(plan.TotalPayloadBytes());
  }
}
BENCHMARK(BM_BuildFullPlan_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CompilePlan(benchmark::State& state) {
  PlanFixture& fx = Fixture();
  GlobalPlan plan = BuildPlan(fx.forest, fx.workload.functions, {});
  for (auto _ : state) {
    CompiledPlan compiled =
        CompiledPlan::Compile(plan, fx.workload.functions);
    benchmark::DoNotOptimize(compiled.node_count());
  }
}
BENCHMARK(BM_CompilePlan);

void BM_ExecuteRound(benchmark::State& state) {
  PlanFixture& fx = Fixture();
  GlobalPlan plan = BuildPlan(fx.forest, fx.workload.functions, {});
  CompiledPlan compiled = CompiledPlan::Compile(plan, fx.workload.functions);
  PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                        fx.workload.functions, EnergyModel{});
  ReadingGenerator readings(fx.topology.node_count(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        executor.RunRound(readings.values()).energy_mj);
  }
}
BENCHMARK(BM_ExecuteRound);

void BM_ExecuteRound_Threads(benchmark::State& state) {
  PlanFixture& fx = Fixture();
  GlobalPlan plan = BuildPlan(fx.forest, fx.workload.functions, {});
  CompiledPlan compiled = CompiledPlan::Compile(plan, fx.workload.functions);
  PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                        fx.workload.functions, EnergyModel{});
  ReadingGenerator readings(fx.topology.node_count(), 3);
  ScopedParallelism parallelism(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        executor.RunRound(readings.values()).energy_mj);
  }
}
BENCHMARK(BM_ExecuteRound_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

// BENCHMARK_MAIN plus the harness parallelism flags. The explicit main
// skips ReportUnrecognizedArguments so `--threads` / `--shards` pass
// through to FlagParser.
int main(int argc, char** argv) {
  m2m::bench::ApplyParallelismFlags(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
