// Figure 6: increasing network size. Five networks of 50..250 nodes with
// density matched to the 68-node baseline; 25% of nodes are destinations,
// each aggregating 15% of all nodes as sources. Flood is omitted (the paper
// reports it is an order of magnitude worse on all but the smallest
// network).

#include "harness.h"

int main() {
  using namespace m2m;
  std::vector<int> node_counts{50, 100, 150, 200, 250};
  std::vector<Topology> series = MakeScalingSeries(node_counts, /*seed=*/11);
  Table table(
      {"network_nodes", "optimal_mJ", "multicast_mJ", "aggregation_mJ"});
  for (size_t i = 0; i < series.size(); ++i) {
    const Topology& topology = series[i];
    WorkloadSpec spec;
    spec.destination_count = topology.node_count() / 4;        // 25%.
    spec.sources_per_destination =
        std::max(1, topology.node_count() * 15 / 100);         // 15%.
    spec.selection = SourceSelection::kUniform;
    spec.kind = AggregateKind::kWeightedAverage;
    spec.seed = 4000 + i;
    Workload workload = GenerateWorkload(topology, spec);
    bench::AlgorithmEnergies energies = bench::MeasureAlgorithms(
        topology, workload, /*include_flood=*/false);
    table.AddRow({std::to_string(topology.node_count()),
                  Table::Num(energies.optimal_mj),
                  Table::Num(energies.multicast_mj),
                  Table::Num(energies.aggregation_mj)});
  }
  bench::EmitTable(
      "Figure 6 — increasing network size",
      "Density-matched networks, 25% destinations, 15% of nodes as sources "
      "per destination (uniform), weighted average",
      table);
  return 0;
}
