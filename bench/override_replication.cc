// Override with replicated pre-aggregation state (paper section 3's "more
// flexible alternative ... but more state would have to be stored"). With
// w_{d,s} replicated along the multicast path, an overridden raw value can
// still fold at the next aggregation point, capping the aggressive policy's
// high-change-rate downside. We sweep change probability and report the
// energy improvement over default-plan suppression with and without
// replication, plus the state price.

#include <memory>

#include "harness.h"

int main() {
  using namespace m2m;
  Topology topology = MakeUniformRandom(68, Area{106.0, 203.0},
                                        kDefaultRadioRangeM, 900);
  WorkloadSpec spec;
  spec.destination_count = topology.node_count() * 3 / 10;
  spec.sources_per_destination = 25;
  spec.dispersion = 0.9;
  spec.kind = AggregateKind::kWeightedAverage;
  spec.seed = 8700;
  Workload workload = GenerateWorkload(topology, spec);
  System system(topology, workload);

  auto run = [&](double p, OverridePolicy policy, bool replicated) {
    PlanExecutor executor = system.MakeExecutor();
    ReadingGenerator readings(topology.node_count(), 41);
    executor.InitializeState(readings.values());
    double total = 0.0;
    for (int round = 0; round < 10; ++round) {
      std::vector<bool> changed = readings.Advance(p);
      total += executor
                   .RunSuppressedRound(readings.values(), changed, policy,
                                       replicated)
                   .energy_mj;
    }
    return total;
  };

  {
    PlanExecutor executor = system.MakeExecutor();
    StateTotals totals = system.compiled().ComputeStateTotals();
    std::printf(
        "state: %lld baseline table entries; replication adds %lld "
        "pre-aggregation entries (+%.0f%%)\n\n",
        static_cast<long long>(totals.total()),
        static_cast<long long>(executor.CountReplicatedPreAggEntries()),
        100.0 * executor.CountReplicatedPreAggEntries() / totals.total());
  }

  Table table({"change_probability", "aggressive_pct",
               "aggressive_replicated_pct", "conservative_pct"});
  for (int step = 1; step <= 6; ++step) {
    double p = 0.05 * step;
    double baseline = run(p, OverridePolicy::kNone, false);
    auto improvement = [&](double value) {
      return 100.0 * (baseline - value) / baseline;
    };
    table.AddRow(
        {Table::Num(p, 2),
         Table::Num(improvement(run(p, OverridePolicy::kAggressive, false))),
         Table::Num(improvement(run(p, OverridePolicy::kAggressive, true))),
         Table::Num(
             improvement(run(p, OverridePolicy::kConservative, false)))});
  }
  m2m::bench::EmitTable(
      "Override with replicated pre-aggregation state",
      "68-node network, 30% destinations x 25 sources, weighted average; % "
      "energy improvement over default-plan suppression (10 timesteps)",
      table);
  return 0;
}
