// MAC-level validation of the analytic executor, plus the compile-time TDMA
// schedule (paper section 3's unexplored optimization). For each workload:
// analytic round energy vs CSMA discrete-event energy (acks + collisions +
// retries on top), CSMA completion latency, and the TDMA alternative's slot
// count and listening load.

#include "harness.h"

#include "mac/csma.h"
#include "mac/tdma_executor.h"
#include "plan/tdma.h"

int main() {
  using namespace m2m;
  Topology topology = MakeGreatDuckIslandLike();
  Table table({"destinations", "sources", "analytic_mJ", "csma_mJ",
               "overhead_pct", "collisions", "csma_ms",
               "csma_idle_listen_mJ", "tdma_slots", "tdma_mJ", "tdma_ms",
               "listen_reduction_x"});
  for (auto [destinations, sources] :
       {std::pair{7, 6}, {14, 10}, {20, 15}, {34, 20}}) {
    WorkloadSpec spec;
    spec.destination_count = destinations;
    spec.sources_per_destination = sources;
    spec.dispersion = 0.9;
    spec.seed = 8200 + destinations;
    Workload workload = GenerateWorkload(topology, spec);
    System system(topology, workload);
    auto compiled = std::make_shared<CompiledPlan>(system.compiled());

    ReadingGenerator readings(topology.node_count(), 23);
    double analytic = system.MakeExecutor()
                          .RunRound(readings.values())
                          .energy_mj;
    CsmaSimulator mac(compiled, topology, EnergyModel{});
    MacRoundResult mac_result = mac.RunRound(/*seed=*/destinations);
    TdmaSchedule tdma = BuildTdmaSchedule(system.compiled(), topology);

    // Idle listening: under CSMA every radio stays in receive mode for the
    // whole round; under the TDMA schedule a node wakes only for its own
    // receive slots (ExecuteTdmaRound accounts both the frames and the
    // in-slot listening exactly).
    EnergyModel energy;
    double csma_idle_mj = mac_result.completion_ms *
                          topology.node_count() *
                          energy.idle_listen_uj_per_ms / 1000.0;
    TdmaRoundResult tdma_result =
        ExecuteTdmaRound(tdma, system.compiled(), topology, energy);
    table.AddRow(
        {std::to_string(destinations), std::to_string(sources),
         Table::Num(analytic), Table::Num(mac_result.energy_mj),
         Table::Num(100.0 * (mac_result.energy_mj - analytic) / analytic,
                    1),
         std::to_string(mac_result.collisions),
         Table::Num(mac_result.completion_ms, 1),
         Table::Num(csma_idle_mj),
         std::to_string(tdma.slot_count), Table::Num(tdma_result.energy_mj),
         Table::Num(tdma_result.completion_ms, 1),
         Table::Num(static_cast<double>(tdma.unscheduled_listen_slots()) /
                        static_cast<double>(tdma.total_listen_slots()),
                    1)});
  }
  m2m::bench::EmitTable(
      "MAC validation — analytic model vs CSMA simulation vs TDMA schedule",
      "GDI-like 68-node network, optimal plans; CSMA adds acks/collisions/"
      "retries; listen_reduction = idle-listening slots / scheduled "
      "listening slots",
      table);
  return 0;
}
