// Graceful-degradation experiment: what does an adversarial channel cost in
// coverage and goodput, and how fast does a killed-then-recovered node earn
// readmission? Part one sweeps channel severity — base loss x burst length
// x corruption rate — and reports per-destination coverage (the
// contributing-source fraction each aggregate actually accounts for) plus
// goodput of the ack/retry layer. Part two sweeps the detector's probation
// threshold and reports time-to-readmission for a node that dies and
// recovers mid-deployment. Results also land in BENCH_degradation.json.

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "harness.h"
#include "runtime/channel.h"
#include "sim/fault_schedule.h"
#include "sim/self_healing.h"

int main(int argc, char** argv) {
  using namespace m2m;
  const int threads = bench::ApplyParallelismFlags(argc, argv);
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 5;
  spec.sources_per_destination = 5;
  spec.seed = 5100;
  Workload workload = GenerateWorkload(topology, spec);

  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);

  obs::MetricsRegistry metrics;
  std::ofstream json("BENCH_degradation.json");
  json << "{\n  \"experiment\": \"degradation\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"setup\": \"GDI topology, 5 destinations x 5 sources; "
          "Gilbert-Elliott channel, stop-and-wait ack/retry, 8 attempts\",\n"
       << "  \"severity_rows\": [\n";

  // Part 1: coverage and goodput vs channel severity. Burst length is the
  // expected bad-state sojourn 1/p_exit; corruption is per-hop bit-flip
  // probability. Coverage is averaged over destinations and rounds.
  Table severity({"loss", "burst", "corrupt_pct", "attempts", "retx",
                  "corrupt_frames", "abandoned", "complete_pct",
                  "coverage_avg_pct", "goodput_pct"});
  const std::vector<double> losses = {0.0, 0.25, 0.5, 0.75};
  const std::vector<int> bursts = {1, 4, 16};
  const std::vector<double> corruptions = {0.0, 0.005, 0.01};
  const int kRounds = 3;
  bool first_row = true;
  for (double loss : losses) {
    for (int burst : bursts) {
      for (double corrupt : corruptions) {
        ChannelOptions channel_options;
        channel_options.good_loss = loss;
        channel_options.bad_loss = 0.9;
        channel_options.p_enter_bad = burst == 1 ? 0.0 : 0.05;
        channel_options.p_exit_bad = 1.0 / burst;
        channel_options.corrupt_probability = corrupt;
        channel_options.seed =
            5200 + static_cast<uint64_t>(burst) * 100 +
            static_cast<uint64_t>(loss * 100) +
            static_cast<uint64_t>(corrupt * 10000);
        ChannelModel channel(channel_options);
        channel.set_metrics(&metrics);

        RuntimeNetwork network(compiled, workload.functions);
        network.set_metrics(&metrics);
        RetryPolicy retry;
        retry.max_attempts = 8;

        int64_t attempts = 0, retx = 0, corrupt_frames = 0, abandoned = 0;
        int64_t deliveries = 0, duplicates = 0;
        int complete = 0, total_dests = 0;
        double coverage_sum = 0.0;
        for (int round = 0; round < kRounds; ++round) {
          ReadingGenerator readings(
              topology.node_count(), 9000 + static_cast<uint64_t>(round));
          RuntimeNetwork::LossyResult lossy = network.RunRoundLossy(
              readings.values(), channel.Bind(round), retry);
          attempts += lossy.attempts;
          retx += lossy.retransmissions;
          corrupt_frames += lossy.corrupt_frames;
          abandoned += lossy.messages_abandoned;
          deliveries += lossy.deliveries;
          duplicates += lossy.duplicates;
          for (const auto& [destination, cov] :
               lossy.destination_coverage) {
            coverage_sum += cov.coverage;
            complete += cov.complete ? 1 : 0;
            ++total_dests;
          }
        }
        const double complete_pct =
            total_dests == 0 ? 0.0 : 100.0 * complete / total_dests;
        const double coverage_avg =
            total_dests == 0 ? 0.0 : 100.0 * coverage_sum / total_dests;
        // Goodput: fraction of transmission attempts that produced a new
        // (non-duplicate, uncorrupted) accepted delivery.
        const double goodput =
            attempts == 0
                ? 0.0
                : 100.0 * static_cast<double>(deliveries - duplicates) /
                      static_cast<double>(attempts);

        severity.AddRow({Table::Num(loss), std::to_string(burst),
                         Table::Num(100.0 * corrupt),
                         std::to_string(attempts), std::to_string(retx),
                         std::to_string(corrupt_frames),
                         std::to_string(abandoned), Table::Num(complete_pct),
                         Table::Num(coverage_avg), Table::Num(goodput)});
        json << (first_row ? "" : ",\n") << "    {\"loss\": "
             << Table::Num(loss) << ", \"burst_len\": " << burst
             << ", \"corrupt_prob\": " << Table::Num(corrupt)
             << ", \"attempts\": " << attempts
             << ", \"retransmissions\": " << retx
             << ", \"corrupt_frames\": " << corrupt_frames
             << ", \"abandoned\": " << abandoned
             << ", \"complete_pct\": " << Table::Num(complete_pct)
             << ", \"coverage_avg_pct\": " << Table::Num(coverage_avg)
             << ", \"goodput_pct\": " << Table::Num(goodput) << "}";
        first_row = false;
      }
    }
  }
  json << "\n  ],\n";
  bench::EmitTable(
      "degradation_severity",
      "GDI topology; Gilbert-Elliott loss (bad-state loss 0.9, burst = "
      "expected bad sojourn), per-hop corruption; coverage = contributing-"
      "source fraction per destination aggregate",
      severity);

  // Part 2: time-to-readmission vs probation threshold. One node dies and
  // recovers; the ledger's belief lag is measured against both events.
  Table readmission({"probation_rounds", "death_round", "recover_round",
                     "believed_dead_round", "readmitted_round",
                     "detect_rounds", "readmit_rounds", "replans"});
  json << "  \"readmission_rows\": [\n";
  const std::vector<int> probations = {1, 2, 4};
  for (size_t row = 0; row < probations.size(); ++row) {
    const int probation = probations[row];
    std::vector<NodeId> protected_nodes;
    for (const Task& task : workload.tasks) {
      protected_nodes.push_back(task.destination);
    }
    NodeId base = PickBaseStation(topology);
    if (std::find(protected_nodes.begin(), protected_nodes.end(), base) ==
        protected_nodes.end()) {
      protected_nodes.push_back(base);
    }

    // Deterministically probe sub-seeds until the schedule keeps the
    // death/recovery pair (a death too near the end drops its recovery).
    std::optional<FaultEvent> death;
    std::optional<FaultEvent> recovery;
    FaultSchedule schedule;
    for (uint64_t sub = 0; sub < 16 && !recovery.has_value(); ++sub) {
      FaultScheduleOptions options;
      options.rounds = 16;
      options.transient_link_fraction = 0.0;
      options.persistent_link_failures = 0;
      options.node_deaths = 1;
      options.node_recoveries = 1;
      options.recovery_delay_rounds = 5;
      options.seed = 5300 + sub;
      schedule = FaultSchedule::Generate(topology, protected_nodes, options);
      death.reset();
      recovery.reset();
      for (const FaultEvent& event : schedule.events()) {
        if (event.type == FaultType::kNodeDeath) death = event;
        if (event.type == FaultType::kNodeRecover) recovery = event;
      }
    }

    SelfHealingOptions healing_options;
    healing_options.detector.probation_rounds = probation;
    SelfHealingRuntime runtime(topology, workload, base, healing_options);
    runtime.set_metrics(&metrics);

    int believed_dead_round = -1;
    int readmitted_round = -1;
    int replans = 0;
    const int total_rounds = schedule.options().rounds + 10;
    for (int round = 0; round < total_rounds; ++round) {
      ReadingGenerator readings(topology.node_count(),
                                9500 + static_cast<uint64_t>(round));
      LossyLinkModel physical;
      physical.attempt_delivers = [&schedule, round](NodeId from, NodeId to,
                                                     int attempt) {
        return schedule.AttemptDelivers(round, from, to, attempt);
      };
      physical.node_alive = [&schedule, round](NodeId n) {
        return schedule.NodeAliveAt(round, n);
      };
      SelfHealingRoundResult r =
          runtime.RunRound(round, readings.values(), physical);
      if (r.replanned) ++replans;
      const auto believed_dead = runtime.ledger().believed_dead();
      const bool believed = death.has_value() &&
                            std::find(believed_dead.begin(),
                                      believed_dead.end(),
                                      death->a) != believed_dead.end();
      if (believed && believed_dead_round < 0) believed_dead_round = round;
      if (!believed && believed_dead_round >= 0 && readmitted_round < 0) {
        readmitted_round = round;
      }
    }

    const int death_round = death ? death->round : -1;
    const int recover_round = recovery ? recovery->round : -1;
    const int detect_rounds =
        believed_dead_round < 0 ? -1 : believed_dead_round - death_round;
    const int readmit_rounds =
        readmitted_round < 0 ? -1 : readmitted_round - recover_round;
    readmission.AddRow(
        {std::to_string(probation), std::to_string(death_round),
         std::to_string(recover_round), std::to_string(believed_dead_round),
         std::to_string(readmitted_round), std::to_string(detect_rounds),
         std::to_string(readmit_rounds), std::to_string(replans)});
    json << "    {\"probation_rounds\": " << probation
         << ", \"death_round\": " << death_round
         << ", \"recover_round\": " << recover_round
         << ", \"detect_latency_rounds\": " << detect_rounds
         << ", \"readmit_latency_rounds\": " << readmit_rounds
         << ", \"replans\": " << replans << "}"
         << (row + 1 < probations.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"channel\": {\n"
       << "    \"corrupt_frames\": " << metrics.Total("chan.corrupt_frames")
       << ",\n    \"duplicated\": " << metrics.Total("chan.duplicated")
       << ",\n    \"reordered\": " << metrics.Total("chan.reordered")
       << ",\n    \"burst_transitions\": "
       << metrics.Total("chan.burst_transitions")
       << "\n  },\n  \"readmission\": {\n"
       << "    \"readmissions\": " << metrics.Total("readmit.readmissions")
       << ",\n    \"probation_rounds\": "
       << metrics.Total("readmit.probation_rounds")
       << ",\n    \"epoch_reconciliations\": "
       << metrics.Total("readmit.epoch_reconciliations")
       << "\n  },\n  \"coverage\": {\n"
       << "    \"degraded_rounds\": "
       << metrics.Total("coverage.degraded_rounds")
       << ",\n    \"per_destination_sum\": "
       << metrics.HistogramSum("coverage.per_destination") << "\n  }\n}\n";
  bench::MaybeWriteMetricsJson(argc, argv, metrics);
  bench::EmitTable(
      "degradation_readmission",
      "GDI topology; one node dies r~[1,15] and recovers 5 rounds later; "
      "probation threshold swept; readmit latency = rounds from physical "
      "recovery to the base station's belief; JSON copy in "
      "BENCH_degradation.json",
      readmission);
  return 0;
}
