// Mobility experiment: what does continuous movement cost the self-healing
// control plane, and does repair work stay local as the network grows?
// Sweeps drift speed x network size (density-constant scaling series) with
// the partition-aware runtime: moving nodes break and re-make links, the
// detector discovers the churn in-band, and every replan patches the plan
// incrementally. Reported per cell: movement churn (link breaks/makes),
// replans, the incremental planner's edge split (re-optimized vs reused —
// the Corollary-1 locality measure), control-plane bytes, and
// partition/degradation exposure. The headline claim: the re-optimized
// share of plan edges grows with movement rate but stays flat in network
// size — a drifting node perturbs its neighborhood, not the deployment.
// Results also land in BENCH_mobility.json.

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "harness.h"
#include "sim/mobility_sim.h"
#include "sim/self_healing.h"
#include "topology/mobility.h"

int main(int argc, char** argv) {
  using namespace m2m;
  const int threads = bench::ApplyParallelismFlags(argc, argv);
  const std::vector<int> sizes = {68, 150, 300};
  const std::vector<double> speeds = {0.0, 2.0, 5.0, 10.0};
  const int kRounds = 30;
  std::vector<Topology> topologies = MakeScalingSeries(sizes, 6100);

  Table table({"speed_m_per_round", "nodes", "link_breaks", "link_makes",
               "replans", "edges_reopt", "edges_reused", "reopt_share_pct",
               "control_kb", "parted_node_rounds", "degraded_rounds"});
  std::ofstream json("BENCH_mobility.json");
  json << "{\n  \"experiment\": \"mobility\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"setup\": \"density-constant scaling series; 5 destinations x "
          "5 sources; velocity-drift mobility with anchored base and "
          "destinations; partition-aware self-healing runtime, perfect "
          "radios (all loss is movement); " << kRounds << " rounds\",\n"
       << "  \"rows\": [\n";

  obs::MetricsRegistry all_metrics;  // Cross-cell snapshot for --metrics-json.
  bool first_row = true;
  for (size_t t = 0; t < topologies.size(); ++t) {
    const Topology& topology = topologies[t];
    WorkloadSpec spec;
    spec.destination_count = 5;
    spec.sources_per_destination = 5;
    spec.seed = 6200 + static_cast<uint64_t>(t);
    Workload workload = GenerateWorkload(topology, spec);
    NodeId base = PickBaseStation(topology);
    std::vector<NodeId> anchored;
    for (const Task& task : workload.tasks) {
      anchored.push_back(task.destination);
    }
    if (std::find(anchored.begin(), anchored.end(), base) == anchored.end()) {
      anchored.push_back(base);
    }

    for (double speed : speeds) {
      MobilityOptions mobility_options;
      mobility_options.model = MobilityModel::kVelocityDrift;
      mobility_options.rounds = kRounds;
      mobility_options.speed_m_per_round = speed;
      mobility_options.anchored = anchored;
      mobility_options.seed = 6300 + static_cast<uint64_t>(t);
      MobilityTrace trace = MobilityTrace::Generate(topology, mobility_options);

      SelfHealingOptions options;
      options.partition_aware = true;
      obs::MetricsRegistry metrics;
      MobilityMetricHandles handles = RegisterMobilityMetrics(metrics);
      SelfHealingRuntime runtime(topology, workload, base, options);
      runtime.set_metrics(&metrics);

      int64_t parted_node_rounds = 0;
      int64_t degraded_rounds = 0;
      for (int round = 0; round < kRounds; ++round) {
        ReadingGenerator readings(topology.node_count(),
                                  6400 + static_cast<uint64_t>(round));
        LossyLinkModel physical;
        physical.attempt_delivers = [](NodeId, NodeId, int) { return true; };
        physical = WithMobility(physical, trace, round);
        SelfHealingRoundResult result =
            runtime.RunRound(round, readings.values(), physical);
        RecordMobilityRound(trace, round, metrics, handles);
        parted_node_rounds +=
            static_cast<int64_t>(result.believed_partitioned.size());
        for (const auto& [destination, status] : result.partition_status) {
          if (status.degraded) {
            ++degraded_rounds;
            break;
          }
        }
      }

      const int64_t replans = metrics.Total("heal.replans");
      const int64_t reopt = metrics.Total("heal.replan_edges_reoptimized");
      const int64_t reused = metrics.Total("heal.replan_edges_reused");
      const double reopt_share =
          reopt + reused > 0
              ? 100.0 * static_cast<double>(reopt) /
                    static_cast<double>(reopt + reused)
              : 0.0;
      const double control_kb =
          static_cast<double>(metrics.Total("heal.control_payload_bytes")) /
          1024.0;
      table.AddRow({Table::Num(speed, 0), std::to_string(topology.node_count()),
                    std::to_string(trace.total_breaks()),
                    std::to_string(trace.total_makes()),
                    std::to_string(replans), std::to_string(reopt),
                    std::to_string(reused), Table::Num(reopt_share, 1),
                    Table::Num(control_kb, 1), std::to_string(parted_node_rounds),
                    std::to_string(degraded_rounds)});
      json << (first_row ? "" : ",\n") << "    {\"speed_m_per_round\": "
           << speed << ", \"nodes\": " << topology.node_count()
           << ", \"link_breaks\": " << trace.total_breaks()
           << ", \"link_makes\": " << trace.total_makes()
           << ", \"replans\": " << replans
           << ", \"edges_reoptimized\": " << reopt
           << ", \"edges_reused\": " << reused
           << ", \"reopt_share_pct\": " << Table::Num(reopt_share, 1)
           << ", \"control_kb\": " << Table::Num(control_kb, 1)
           << ", \"partitioned_node_rounds\": " << parted_node_rounds
           << ", \"degraded_rounds\": " << degraded_rounds << "}";
      first_row = false;

      // Fold the cell's mobility counters into the cross-cell registry so
      // --metrics-json carries the whole sweep.
      obs::MetricHandle breaks = all_metrics.Counter("mobility.link_breaks");
      obs::MetricHandle makes = all_metrics.Counter("mobility.link_makes");
      all_metrics.Add(breaks, trace.total_breaks());
      all_metrics.Add(makes, trace.total_makes());
    }
  }
  json << "\n  ],\n  \"claim\": \"re-optimized edge share grows with "
          "movement rate and stays roughly flat in network size "
          "(Corollary 1: repair is local to the moved neighborhood)\"\n}\n";
  bench::MaybeWriteMetricsJson(argc, argv, all_metrics);
  bench::EmitTable(
      "mobility",
      "velocity-drift sweep: speed x density-constant network size; "
      "partition-aware self-healing; JSON copy in BENCH_mobility.json",
      table);
  return 0;
}
