// Network lifetime: energy efficiency matters through the *hottest* node —
// the first battery to die takes its readings (and its relay role) with it.
// For each algorithm we report mean and max per-node round energy and the
// implied lifetime in rounds on a small sensing-budget battery share
// (20 J of radio budget per node, ~0.2% of a pair of AA cells).

#include "harness.h"

namespace {

using namespace m2m;

constexpr double kRadioBudgetMj = 20000.0;  // 20 J per node.

struct LifetimeNumbers {
  double mean_mj = 0.0;
  double max_mj = 0.0;
  int64_t lifetime_rounds = 0;
};

LifetimeNumbers FromNodeEnergy(const std::vector<double>& node_energy) {
  LifetimeNumbers numbers;
  for (double e : node_energy) {
    numbers.mean_mj += e;
    numbers.max_mj = std::max(numbers.max_mj, e);
  }
  numbers.mean_mj /= static_cast<double>(node_energy.size());
  numbers.lifetime_rounds =
      numbers.max_mj <= 0.0
          ? 0
          : static_cast<int64_t>(kRadioBudgetMj / numbers.max_mj);
  return numbers;
}

}  // namespace

int main() {
  Topology topology = MakeGreatDuckIslandLike();
  PathSystem paths(topology);
  NodeId base = PickBaseStation(topology);

  WorkloadSpec spec;
  spec.destination_count = 20;
  spec.sources_per_destination = 20;
  spec.dispersion = 0.9;
  spec.seed = 8100;
  Workload workload = GenerateWorkload(topology, spec);
  ReadingGenerator readings(topology.node_count(), 18);

  Table table({"algorithm", "mean_node_mJ", "hottest_node_mJ",
               "lifetime_rounds"});
  for (PlanStrategy strategy :
       {PlanStrategy::kOptimal, PlanStrategy::kMulticastOnly,
        PlanStrategy::kAggregationOnly}) {
    SystemOptions options;
    options.planner.strategy = strategy;
    System system(topology, workload, options);
    RoundResult round = system.MakeExecutor().RunRound(readings.values());
    LifetimeNumbers numbers = FromNodeEnergy(round.node_energy_mj);
    table.AddRow({ToString(strategy), Table::Num(numbers.mean_mj, 3),
                  Table::Num(numbers.max_mj, 3),
                  std::to_string(numbers.lifetime_rounds)});
  }
  {
    BaseStationRoundResult bs = SimulateBaseStationRound(
        topology, paths, workload, base, EnergyModel{});
    LifetimeNumbers numbers = FromNodeEnergy(bs.node_energy_mj);
    table.AddRow({"base_station", Table::Num(numbers.mean_mj, 3),
                  Table::Num(numbers.max_mj, 3),
                  std::to_string(numbers.lifetime_rounds)});
  }
  {
    FloodResult flood = SimulateFloodRound(
        topology, workload.DistinctSources(), EnergyModel{});
    LifetimeNumbers numbers = FromNodeEnergy(flood.node_energy_mj);
    table.AddRow({"flood", Table::Num(numbers.mean_mj, 3),
                  Table::Num(numbers.max_mj, 3),
                  std::to_string(numbers.lifetime_rounds)});
  }
  m2m::bench::EmitTable(
      "Network lifetime — the hottest node dies first",
      "GDI-like 68-node network, 20 destinations x 20 sources, d=0.9; "
      "lifetime = 20 J radio budget / hottest node's round energy",
      table);
  return 0;
}
