// Network lifetime: energy efficiency matters through the *hottest* node —
// the first battery to die takes its readings (and its relay role) with it.
//
// Part 1 reports mean/max per-node round energy and the implied lifetime in
// rounds for each algorithm on a small sensing-budget battery share (20 J of
// radio budget per node, ~0.2% of a pair of AA cells).
//
// Part 2 is the battery-aware planning sweep: a fast-forward depletion
// simulation (drain whole epochs analytically, replan at depletion and — for
// the battery-aware strategies — on a proactive rotation cadence) comparing
//   baseline        hop-cost planning, replans only when a node dies;
//   residual_costs  replans over residual-energy link costs (drained relays
//                   get expensive, load rotates);
//   lifetime_max    the Kuo-style max-min residual forest builder.
// Reported per cell: rounds until the first battery death and rounds until
// source coverage drops below 90%. The headline claim: lifetime_max strictly
// outlives the baseline's first death on every cell of the dispersion x size
// sweep. Results also land in BENCH_lifetime.json; `--metrics-json` exports
// the energy.* metrics of a compact battery-aware self-healing run.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"
#include "lifecycle/admission.h"
#include "routing/lifetime_forest.h"
#include "sim/battery.h"
#include "sim/self_healing.h"

namespace {

using namespace m2m;

constexpr double kRadioBudgetMj = 20000.0;  // 20 J per node.

struct LifetimeNumbers {
  double mean_mj = 0.0;
  double max_mj = 0.0;
  int64_t lifetime_rounds = 0;
};

LifetimeNumbers FromNodeEnergy(const std::vector<double>& node_energy) {
  LifetimeNumbers numbers;
  for (double e : node_energy) {
    numbers.mean_mj += e;
    numbers.max_mj = std::max(numbers.max_mj, e);
  }
  numbers.mean_mj /= static_cast<double>(node_energy.size());
  numbers.lifetime_rounds =
      numbers.max_mj <= 0.0
          ? 0
          : static_cast<int64_t>(kRadioBudgetMj / numbers.max_mj);
  return numbers;
}

enum class LifetimeStrategy { kBaseline, kResidualCosts, kLifetimeMax };

std::string ToString(LifetimeStrategy strategy) {
  switch (strategy) {
    case LifetimeStrategy::kBaseline:
      return "baseline";
    case LifetimeStrategy::kResidualCosts:
      return "residual_costs";
    case LifetimeStrategy::kLifetimeMax:
      return "lifetime_max";
  }
  return "?";
}

struct DepletionOutcome {
  int64_t first_death_round = 0;
  int64_t coverage90_round = 0;
  int replans = 0;
  int deaths = 0;  ///< Depleted nodes by the time coverage dropped.
  double initial_hottest_mj = 0.0;
};

/// Drops `source` from every task that uses it; a task left with no sources
/// is retired entirely (its aggregate is undefined without inputs).
Workload WithoutSource(const Workload& workload, NodeId source) {
  Workload out;
  for (size_t i = 0; i < workload.tasks.size(); ++i) {
    Task task = workload.tasks[i];
    FunctionSpec spec = workload.specs[i];
    auto it = std::find(task.sources.begin(), task.sources.end(), source);
    if (it != task.sources.end()) {
      task.sources.erase(it);
      spec.weights.erase(
          std::remove_if(spec.weights.begin(), spec.weights.end(),
                         [source](const std::pair<NodeId, double>& w) {
                           return w.first == source;
                         }),
          spec.weights.end());
    }
    if (task.sources.empty()) continue;
    out.tasks.push_back(std::move(task));
    out.specs.push_back(std::move(spec));
  }
  out.RebuildFunctions();
  return out;
}

/// Fast-forward depletion simulation: drains every node by its analytic
/// per-round energy under the current plan, advancing whole epochs at once
/// (rounds to the next depletion, capped — for battery-aware strategies —
/// by a rotation cadence of 5% of the budget at the hottest node), replans
/// per strategy, and stops once source coverage falls below 90%.
DepletionOutcome SimulateDepletion(const Topology& topology,
                                   const Workload& workload,
                                   NodeId base,
                                   LifetimeStrategy strategy) {
  DepletionOutcome outcome;
  const int n = topology.node_count();
  std::vector<bool> immortal(n, false);
  immortal[base] = true;
  int64_t total_pairs = 0;
  for (const Task& task : workload.tasks) {
    immortal[task.destination] = true;  // Consumers stay powered (the
    total_pairs += static_cast<int64_t>(task.sources.size());
  }  // paper's model: a dead consumer makes its aggregate undefined).

  std::vector<double> residual(n, kRadioBudgetMj);
  std::vector<NodeId> dead;
  Workload current = workload;
  int64_t rounds = 0;
  const int64_t kRoundCap = 4'000'000;

  while (rounds < kRoundCap && !current.tasks.empty()) {
    Topology masked = Topology::WithFailures(topology, {}, dead);
    // Sources cut off by relay deaths stop contributing (coverage loss),
    // and the planner cannot route to them anyway.
    for (const Task& task : std::vector<Task>(current.tasks)) {
      std::vector<int> hops = masked.HopDistancesFrom(task.destination);
      for (NodeId source : std::vector<NodeId>(task.sources)) {
        if (hops[source] < 0) current = WithoutSource(current, source);
      }
    }
    int64_t alive_pairs = 0;
    for (const Task& task : current.tasks) {
      alive_pairs += static_cast<int64_t>(task.sources.size());
    }
    if (alive_pairs * 10 < total_pairs * 9) {
      outcome.coverage90_round = rounds;
      break;
    }
    if (current.tasks.empty()) break;

    std::vector<double> fractions(n, 0.0);
    for (NodeId node = 0; node < n; ++node) {
      fractions[node] =
          immortal[node] ? 1.0
                         : std::max(0.0, residual[node]) / kRadioBudgetMj;
    }
    std::shared_ptr<MulticastForest> forest;
    switch (strategy) {
      case LifetimeStrategy::kBaseline:
        forest = std::make_shared<MulticastForest>(PathSystem(masked),
                                                   current.tasks);
        break;
      case LifetimeStrategy::kResidualCosts:
        forest = std::make_shared<MulticastForest>(
            PathSystem(masked, 0x5eed,
                       ResidualEnergyLinkCost(fractions, 8.0)),
            current.tasks);
        break;
      case LifetimeStrategy::kLifetimeMax: {
        std::vector<double> residual_for_build(n, kRadioBudgetMj);
        for (NodeId node = 0; node < n; ++node) {
          residual_for_build[node] =
              immortal[node] ? kRadioBudgetMj : std::max(0.0, residual[node]);
        }
        forest = std::make_shared<MulticastForest>(BuildLifetimeMaxForest(
            masked, current.tasks, residual_for_build));
        break;
      }
    }
    GlobalPlan plan = BuildPlan(forest, current.functions);
    CompiledPlan compiled = CompiledPlan::Compile(plan, current.functions);
    ++outcome.replans;
    std::vector<double> drain =
        PerNodeRoundEnergyMj(compiled, current.functions, EnergyModel{});

    double max_drain = 0.0;
    int64_t to_death = kRoundCap;
    for (NodeId node = 0; node < n; ++node) {
      if (immortal[node] || drain[node] <= 0.0) continue;
      max_drain = std::max(max_drain, drain[node]);
      const int64_t k = static_cast<int64_t>(
          std::max(1.0, std::ceil(residual[node] / drain[node])));
      to_death = std::min(to_death, k);
    }
    if (outcome.replans == 1) outcome.initial_hottest_mj = max_drain;
    if (max_drain <= 0.0) break;  // Nothing drains: infinite lifetime.

    int64_t chunk = to_death;
    if (strategy != LifetimeStrategy::kBaseline) {
      // Proactive rotation cadence: replan every ~5% of the hottest
      // node's remaining budget, mirroring the runtime's energy trigger.
      const int64_t cadence = std::max<int64_t>(
          1, static_cast<int64_t>(0.05 * kRadioBudgetMj / max_drain));
      chunk = std::min(chunk, cadence);
    }
    chunk = std::min(chunk, kRoundCap - rounds);
    rounds += chunk;

    bool any_death = false;
    for (NodeId node = 0; node < n; ++node) {
      if (immortal[node] || drain[node] <= 0.0) continue;
      residual[node] -= static_cast<double>(chunk) * drain[node];
      if (residual[node] <= 1e-9 &&
          std::find(dead.begin(), dead.end(), node) == dead.end()) {
        dead.push_back(node);
        any_death = true;
        ++outcome.deaths;
        if (outcome.first_death_round == 0) {
          outcome.first_death_round = rounds;
        }
        current = WithoutSource(current, node);
      }
    }
    // Baseline only replans when the topology changed; the battery-aware
    // strategies also rotate on cadence (loop re-enters and replans).
    (void)any_death;
  }
  if (outcome.coverage90_round == 0) outcome.coverage90_round = rounds;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = bench::ApplyParallelismFlags(argc, argv);
  Topology topology = MakeGreatDuckIslandLike();
  PathSystem paths(topology);
  NodeId base = PickBaseStation(topology);

  WorkloadSpec spec;
  spec.destination_count = 20;
  spec.sources_per_destination = 20;
  spec.dispersion = 0.9;
  spec.seed = 8100;
  Workload workload = GenerateWorkload(topology, spec);
  ReadingGenerator readings(topology.node_count(), 18);

  Table table({"algorithm", "mean_node_mJ", "hottest_node_mJ",
               "lifetime_rounds"});
  for (PlanStrategy strategy :
       {PlanStrategy::kOptimal, PlanStrategy::kMulticastOnly,
        PlanStrategy::kAggregationOnly}) {
    SystemOptions options;
    options.planner.strategy = strategy;
    System system(topology, workload, options);
    RoundResult round = system.MakeExecutor().RunRound(readings.values());
    LifetimeNumbers numbers = FromNodeEnergy(round.node_energy_mj);
    table.AddRow({ToString(strategy), Table::Num(numbers.mean_mj, 3),
                  Table::Num(numbers.max_mj, 3),
                  std::to_string(numbers.lifetime_rounds)});
  }
  {
    BaseStationRoundResult bs = SimulateBaseStationRound(
        topology, paths, workload, base, EnergyModel{});
    LifetimeNumbers numbers = FromNodeEnergy(bs.node_energy_mj);
    table.AddRow({"base_station", Table::Num(numbers.mean_mj, 3),
                  Table::Num(numbers.max_mj, 3),
                  std::to_string(numbers.lifetime_rounds)});
  }
  {
    FloodResult flood = SimulateFloodRound(
        topology, workload.DistinctSources(), EnergyModel{});
    LifetimeNumbers numbers = FromNodeEnergy(flood.node_energy_mj);
    table.AddRow({"flood", Table::Num(numbers.mean_mj, 3),
                  Table::Num(numbers.max_mj, 3),
                  std::to_string(numbers.lifetime_rounds)});
  }
  m2m::bench::EmitTable(
      "Network lifetime — the hottest node dies first",
      "GDI-like 68-node network, 20 destinations x 20 sources, d=0.9; "
      "lifetime = 20 J radio budget / hottest node's round energy",
      table);

  // ---- Part 2: battery-aware planning sweep -----------------------------
  const std::vector<double> dispersions = {0.3, 0.9};
  std::vector<Topology> topologies = MakeScalingSeries({68, 150}, 6100);

  Table sweep({"nodes", "dispersion", "strategy", "first_death_round",
               "coverage90_round", "replans", "deaths", "hottest_mJ"});
  std::ofstream json("BENCH_lifetime.json");
  json << "{\n  \"experiment\": \"lifetime\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"setup\": \"fast-forward depletion sweep; 10 destinations x 5 "
          "sources; 20 J radio budget per node, destinations and base "
          "wall-powered; battery-aware strategies replan on a 5%-of-budget "
          "rotation cadence, baseline replans only on death\",\n"
       << "  \"rows\": [\n";
  bool first_row = true;
  bool lifetime_max_strictly_better = true;
  for (size_t t = 0; t < topologies.size(); ++t) {
    const Topology& sweep_topology = topologies[t];
    NodeId sweep_base = PickBaseStation(sweep_topology);
    for (double dispersion : dispersions) {
      WorkloadSpec sweep_spec;
      sweep_spec.destination_count = 10;
      sweep_spec.sources_per_destination = 5;
      sweep_spec.dispersion = dispersion;
      sweep_spec.seed = 8200 + static_cast<uint64_t>(t);
      Workload sweep_workload = GenerateWorkload(sweep_topology, sweep_spec);

      int64_t baseline_first_death = 0;
      for (LifetimeStrategy strategy :
           {LifetimeStrategy::kBaseline, LifetimeStrategy::kResidualCosts,
            LifetimeStrategy::kLifetimeMax}) {
        DepletionOutcome outcome = SimulateDepletion(
            sweep_topology, sweep_workload, sweep_base, strategy);
        if (strategy == LifetimeStrategy::kBaseline) {
          baseline_first_death = outcome.first_death_round;
        } else if (strategy == LifetimeStrategy::kLifetimeMax &&
                   outcome.first_death_round <= baseline_first_death) {
          lifetime_max_strictly_better = false;
        }
        sweep.AddRow({std::to_string(sweep_topology.node_count()),
                      Table::Num(dispersion, 1), ToString(strategy),
                      std::to_string(outcome.first_death_round),
                      std::to_string(outcome.coverage90_round),
                      std::to_string(outcome.replans),
                      std::to_string(outcome.deaths),
                      Table::Num(outcome.initial_hottest_mj, 3)});
        json << (first_row ? "" : ",\n") << "    {\"nodes\": "
             << sweep_topology.node_count() << ", \"dispersion\": "
             << Table::Num(dispersion, 1) << ", \"strategy\": \""
             << ToString(strategy) << "\", \"first_death_round\": "
             << outcome.first_death_round << ", \"coverage90_round\": "
             << outcome.coverage90_round << ", \"replans\": "
             << outcome.replans << ", \"deaths\": " << outcome.deaths
             << ", \"hottest_mj\": "
             << Table::Num(outcome.initial_hottest_mj, 3) << "}";
        first_row = false;
      }
    }
  }
  json << "\n  ],\n  \"lifetime_max_strictly_outlives_baseline\": "
       << (lifetime_max_strictly_better ? "true" : "false")
       << ",\n  \"claim\": \"lifetime-max planning strictly postpones the "
          "first battery death vs hop-cost baseline on every cell of the "
          "dispersion x size sweep; residual-cost rotation stretches "
          "90%-coverage lifetime further\"\n}\n";
  m2m::bench::EmitTable(
      "Battery-aware planning — rounds until first death / coverage<90%",
      "depletion fast-forward; dispersion x size sweep; JSON copy in "
      "BENCH_lifetime.json",
      sweep);

  // ---- energy.* metrics export (obs-smoke validates the names) ----------
  {
    WorkloadSpec heal_spec;
    heal_spec.destination_count = 5;
    heal_spec.sources_per_destination = 5;
    heal_spec.max_hops = 4;
    heal_spec.seed = 20;
    Workload heal_workload = GenerateWorkload(topology, heal_spec);
    GlobalPlan plan = BuildPlan(
        std::make_shared<MulticastForest>(PathSystem(topology),
                                          heal_workload.tasks),
        heal_workload.functions);
    CompiledPlan compiled = CompiledPlan::Compile(
        plan, heal_workload.functions, MergePolicy::kGreedyMergePerEdge, 0);
    std::vector<double> drain = CompiledRoundEnergyMj(compiled, EnergyModel{});
    std::vector<NodeId> protected_nodes;
    for (const Task& task : heal_workload.tasks) {
      protected_nodes.push_back(task.destination);
    }
    protected_nodes.push_back(base);
    NodeId victim = kInvalidNode;
    for (NodeId node = 0; node < topology.node_count(); ++node) {
      if (std::find(protected_nodes.begin(), protected_nodes.end(), node) !=
          protected_nodes.end()) {
        continue;
      }
      if (victim == kInvalidNode || drain[node] > drain[victim]) {
        victim = node;
      }
    }
    SelfHealingOptions options;
    options.energy.battery_aware = true;
    options.energy.proactive_rotation = false;
    options.energy.battery.initial_charge_mj_per_node.assign(
        topology.node_count(), kRadioBudgetMj);
    options.energy.battery.initial_charge_mj_per_node[victim] =
        drain[victim] * 3.5;
    options.energy.battery.immortal_nodes = protected_nodes;

    obs::MetricsRegistry metrics;
    SelfHealingRuntime runtime(topology, heal_workload, base, options);
    runtime.set_metrics(&metrics);
    for (int round = 0; round < 15; ++round) {
      ReadingGenerator heal_readings(topology.node_count(),
                                     900 + static_cast<uint64_t>(round));
      LossyLinkModel physical;
      physical.attempt_delivers = [](NodeId, NodeId, int) { return true; };
      physical.node_alive = [](NodeId) { return true; };
      runtime.RunRound(round, heal_readings.values(), physical);
    }
    m2m::bench::MaybeWriteMetricsJson(argc, argv, metrics);
  }
  return 0;
}
