// Theorem 2 / message-merging ablation: the greedy merge packs all units on
// an edge into one message, amortizing the per-message header. Compare the
// merged schedule against one-unit-per-message across workload sizes.

#include "harness.h"

namespace {

using namespace m2m;

struct MergeNumbers {
  double merged_mj = 0.0;
  double unmerged_mj = 0.0;
  int64_t merged_msgs = 0;
  int64_t unmerged_msgs = 0;
};

MergeNumbers Measure(const Topology& topology, const Workload& workload) {
  PathSystem paths(topology);
  auto forest =
      std::make_shared<const MulticastForest>(paths, workload.tasks);
  GlobalPlan plan = BuildPlan(forest, workload.functions, {});
  MergeNumbers numbers;
  ReadingGenerator readings(topology.node_count(), 17);
  {
    CompiledPlan compiled = CompiledPlan::Compile(
        plan, workload.functions, MergePolicy::kGreedyMergePerEdge);
    PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                          workload.functions, EnergyModel{});
    RoundResult round = executor.RunRound(readings.values());
    numbers.merged_mj = round.energy_mj;
    numbers.merged_msgs = round.messages;
  }
  {
    CompiledPlan compiled = CompiledPlan::Compile(
        plan, workload.functions, MergePolicy::kOneUnitPerMessage);
    PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                          workload.functions, EnergyModel{});
    RoundResult round = executor.RunRound(readings.values());
    numbers.unmerged_mj = round.energy_mj;
    numbers.unmerged_msgs = round.messages;
  }
  return numbers;
}

}  // namespace

int main() {
  Topology topology = MakeGreatDuckIslandLike();
  Table table({"destinations", "sources_each", "merged_msgs",
               "unmerged_msgs", "merged_mJ", "unmerged_mJ", "saving_pct"});
  for (auto [destinations, sources] :
       {std::pair{7, 10}, {14, 20}, {27, 20}, {41, 25}}) {
    WorkloadSpec spec;
    spec.destination_count = destinations;
    spec.sources_per_destination = sources;
    spec.dispersion = 0.9;
    spec.seed = 6100 + destinations;
    Workload workload = GenerateWorkload(topology, spec);
    MergeNumbers numbers = Measure(topology, workload);
    table.AddRow(
        {std::to_string(destinations), std::to_string(sources),
         std::to_string(numbers.merged_msgs),
         std::to_string(numbers.unmerged_msgs),
         Table::Num(numbers.merged_mj), Table::Num(numbers.unmerged_mj),
         Table::Num(100.0 * (numbers.unmerged_mj - numbers.merged_mj) /
                    numbers.unmerged_mj)});
  }
  m2m::bench::EmitTable(
      "Merge ablation — greedy per-edge merging vs one unit per message",
      "GDI-like 68-node network, optimal plan, weighted average; per-message "
      "header 8 bytes",
      table);
  return 0;
}
