// Fault-recovery experiment (paper section 3 / Corollary 1): how local is
// re-planning after persistent failures, and what does transient loss cost
// the ack/retry runtime? Part one sweeps the number of persistent fault
// events and reports the fraction of per-edge solutions the incremental
// re-plan reuses (always validated against a from-scratch plan). Part two
// sweeps the per-attempt drop probability on flaky links and reports the
// retry/energy overhead of a lossy round relative to a clean one. Part
// three runs the oracle-free self-healing loop and sweeps the drop
// probability of the *dissemination* traffic itself, reporting detection
// latency (rounds from fault to re-plan activation) and control-plane
// overhead; results also land in BENCH_fault_recovery.json.

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "harness.h"
#include "sim/fault_schedule.h"
#include "sim/self_healing.h"

int main(int argc, char** argv) {
  using namespace m2m;
  const int threads = bench::ApplyParallelismFlags(argc, argv);
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 10;
  spec.sources_per_destination = 8;
  spec.seed = 4100;
  Workload workload = GenerateWorkload(topology, spec);
  std::vector<NodeId> destinations;
  for (const Task& task : workload.tasks) {
    destinations.push_back(task.destination);
  }

  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);

  // Part 1: re-plan locality vs failure burst size.
  Table locality({"fault_events", "edges", "reused", "reused_pct",
                  "divergences"});
  for (int events : {1, 2, 4, 8}) {
    FaultScheduleOptions options;
    options.rounds = 2;  // All events land in round 1.
    options.transient_link_fraction = 0.0;
    options.persistent_link_failures = events;
    options.node_deaths = 0;  // Keep the workload fixed across rows.
    options.seed = 900 + events;
    FaultSchedule schedule =
        FaultSchedule::Generate(topology, destinations, options);

    Topology masked = Topology::WithFailures(
        topology, schedule.FailedLinksThrough(options.rounds), {});
    PathSystem masked_paths(masked);
    UpdateStats stats;
    GlobalPlan patched = ReplanForTopology(plan, masked_paths, workload.tasks,
                                           workload.functions, &stats);
    GlobalPlan fresh =
        BuildPlan(patched.forest_ptr(), workload.functions, plan.options());
    size_t divergences = FindPlanDivergence(patched, fresh).size();

    locality.AddRow({std::to_string(events), std::to_string(stats.edges_total),
                     std::to_string(stats.edges_reused),
                     Table::Num(stats.edges_total == 0
                                    ? 0.0
                                    : 100.0 * stats.edges_reused /
                                          stats.edges_total),
                     std::to_string(divergences)});
  }
  bench::EmitTable("fault_recovery_locality",
                   "GDI topology, 10 destinations x 8 sources; persistent "
                   "link failures, incremental vs from-scratch re-plan",
                   locality);

  // Part 2: lossy-round overhead vs transient drop probability.
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  ReadingGenerator readings(topology.node_count(), 1234);
  RuntimeNetwork clean(compiled, workload.functions);
  RuntimeNetwork::Result reference = clean.RunRound(readings.values());

  Table overhead({"drop_prob", "attempts", "retx", "dup", "abandoned",
                  "energy_mJ", "energy_x", "ticks"});
  for (double drop : {0.0, 0.1, 0.3, 0.5}) {
    FaultScheduleOptions options;
    options.rounds = 2;
    options.transient_link_fraction = 1.0;  // Every link flaky.
    options.transient_drop_probability = drop;
    options.persistent_link_failures = 0;
    options.node_deaths = 0;
    options.seed = 4242;
    FaultSchedule schedule =
        FaultSchedule::Generate(topology, destinations, options);

    RuntimeNetwork network(compiled, workload.functions);
    LossyLinkModel links;
    links.attempt_delivers = [&schedule](NodeId from, NodeId to,
                                         int attempt) {
      return schedule.AttemptDelivers(1, from, to, attempt);
    };
    RetryPolicy retry;
    retry.max_attempts = 8;
    RuntimeNetwork::LossyResult lossy =
        network.RunRoundLossy(readings.values(), links, retry);

    overhead.AddRow(
        {Table::Num(drop), std::to_string(lossy.attempts),
         std::to_string(lossy.retransmissions),
         std::to_string(lossy.duplicates),
         std::to_string(lossy.messages_abandoned),
         Table::Num(lossy.energy_mj),
         Table::Num(reference.energy_mj == 0.0
                        ? 0.0
                        : lossy.energy_mj / reference.energy_mj),
         std::to_string(lossy.final_tick)});
  }
  bench::EmitTable("fault_recovery_overhead",
                   "GDI topology, all links flaky for one round; "
                   "stop-and-wait ack/retry, 8 attempts, clean-round energy "
                   "baseline " +
                       Table::Num(reference.energy_mj) + " mJ",
                   overhead);

  // Part 3: the self-healing loop end to end — no oracle, detection via
  // heartbeats + probes, repair via epoch-versioned dissemination — under
  // increasingly hostile loss on the dissemination traffic itself.
  Table healing({"drop_prob", "replans", "detect_avg_rounds",
                 "detect_max_rounds", "ack_lag_rounds", "probe_tx",
                 "ctrl_attempts", "ctrl_bytes", "epoch_rejected"});
  std::ofstream json("BENCH_fault_recovery.json");
  json << "{\n  \"experiment\": \"fault_recovery_self_healing\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"setup\": \"GDI topology, 5 destinations x 5 sources, 2 "
          "persistent link failures + 1 node death; detection threshold "
       << DetectorOptions{}.suspicion_threshold << " rounds\",\n"
       << "  \"rows\": [\n";

  WorkloadSpec healing_spec;
  healing_spec.destination_count = 5;
  healing_spec.sources_per_destination = 5;
  healing_spec.seed = 4300;
  Workload healing_workload = GenerateWorkload(topology, healing_spec);
  NodeId base = PickBaseStation(topology);
  std::vector<NodeId> protected_nodes;
  for (const Task& task : healing_workload.tasks) {
    protected_nodes.push_back(task.destination);
  }
  if (std::find(protected_nodes.begin(), protected_nodes.end(), base) ==
      protected_nodes.end()) {
    protected_nodes.push_back(base);
  }

  // One registry across all control-drop rows: counters therefore total
  // the whole sweep, which is what the JSON's detection/dissemination
  // sections (and the CI smoke check) report.
  obs::MetricsRegistry metrics;
  const std::vector<double> control_drops = {0.0, 0.25, 0.5, 0.75};
  for (size_t row = 0; row < control_drops.size(); ++row) {
    const double control_drop = control_drops[row];
    FaultScheduleOptions options;
    options.rounds = 5;
    options.transient_link_fraction = 0.06;
    options.transient_drop_probability = 0.5;
    options.persistent_link_failures = 2;
    options.node_deaths = 1;
    options.seed = 4400;
    FaultSchedule schedule =
        FaultSchedule::Generate(topology, protected_nodes, options);

    SelfHealingRuntime runtime(topology, healing_workload, base);
    runtime.set_metrics(&metrics);
    // Deterministic Bernoulli(control_drop) on the control namespaces
    // (reports 2000+, dissemination 3000+, install acks 4000+).
    auto control_dropped = [control_drop](int round, NodeId from, NodeId to,
                                          int attempt) {
      uint64_t h = static_cast<uint64_t>(round) * 0x9e3779b97f4a7c15ull;
      h ^= (static_cast<uint64_t>(from) << 32) ^
           (static_cast<uint64_t>(to) << 16) ^ static_cast<uint64_t>(attempt);
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      return static_cast<double>(h % 10000) < control_drop * 10000.0;
    };

    const int total_rounds = options.rounds + 30;
    // First round each persistent event is reflected in the base station's
    // beliefs, then the round its repair epoch opened.
    std::map<int, int> event_first_believed;  // event index -> round.
    int64_t probe_tx = 0, ctrl_attempts = 0, ctrl_bytes = 0;
    int64_t epoch_rejected = 0;
    int replans = 0;
    int last_replan_round = -1;
    int last_pending_round = -1;
    for (int round = 0; round < total_rounds; ++round) {
      ReadingGenerator round_readings(
          topology.node_count(), 7000 + static_cast<uint64_t>(round));
      LossyLinkModel physical;
      physical.attempt_delivers = [&schedule, &control_dropped, round](
                                      NodeId from, NodeId to, int attempt) {
        if (!schedule.AttemptDelivers(round, from, to, attempt)) return false;
        return !(attempt >= 2000 && control_dropped(round, from, to, attempt));
      };
      physical.node_alive = [&schedule, round](NodeId n) {
        return schedule.NodeAliveAt(round, n);
      };
      SelfHealingRoundResult r =
          runtime.RunRound(round, round_readings.values(), physical);
      probe_tx += r.probe_transmissions;
      ctrl_attempts += r.control_hop_attempts;
      ctrl_bytes += r.control_payload_bytes;
      epoch_rejected += r.data.epoch_rejected;
      if (r.replanned) {
        ++replans;
        last_replan_round = round;
      }
      if (r.pending_installs > 0) last_pending_round = round;

      const auto believed_links = runtime.ledger().believed_failed_links();
      const auto believed_dead = runtime.ledger().believed_dead();
      for (size_t e = 0; e < schedule.events().size(); ++e) {
        const FaultEvent& event = schedule.events()[e];
        if (event.type == FaultType::kTransientLink) continue;
        if (event_first_believed.contains(static_cast<int>(e))) continue;
        bool believed = false;
        if (event.type == FaultType::kPersistentLink) {
          std::pair<NodeId, NodeId> link{std::min(event.a, event.b),
                                         std::max(event.a, event.b)};
          believed = std::find(believed_links.begin(), believed_links.end(),
                               link) != believed_links.end();
        } else {
          believed = std::find(believed_dead.begin(), believed_dead.end(),
                               event.a) != believed_dead.end();
        }
        if (believed) event_first_believed[static_cast<int>(e)] = round;
      }
    }

    // Detection latency: fault round -> the round the base believed it
    // (the re-plan activates the same round it is believed).
    double detect_sum = 0.0;
    int detect_max = 0, detected = 0;
    for (size_t e = 0; e < schedule.events().size(); ++e) {
      const FaultEvent& event = schedule.events()[e];
      if (event.type == FaultType::kTransientLink) continue;
      auto it = event_first_believed.find(static_cast<int>(e));
      if (it == event_first_believed.end()) continue;
      const int latency = it->second - event.round;
      detect_sum += latency;
      detect_max = std::max(detect_max, latency);
      ++detected;
    }
    const double detect_avg = detected == 0 ? 0.0 : detect_sum / detected;
    // Rounds from the last re-plan until every affected node acked.
    const int ack_lag = last_replan_round < 0
                            ? 0
                            : std::max(0, last_pending_round + 1 -
                                              last_replan_round);

    healing.AddRow({Table::Num(control_drop), std::to_string(replans),
                    Table::Num(detect_avg), std::to_string(detect_max),
                    std::to_string(ack_lag), std::to_string(probe_tx),
                    std::to_string(ctrl_attempts), std::to_string(ctrl_bytes),
                    std::to_string(epoch_rejected)});
    json << "    {\"control_drop_prob\": " << Table::Num(control_drop)
         << ", \"replans\": " << replans
         << ", \"detection_latency_avg_rounds\": " << Table::Num(detect_avg)
         << ", \"detection_latency_max_rounds\": " << detect_max
         << ", \"dissemination_ack_lag_rounds\": " << ack_lag
         << ", \"probe_transmissions\": " << probe_tx
         << ", \"control_hop_attempts\": " << ctrl_attempts
         << ", \"control_payload_bytes\": " << ctrl_bytes
         << ", \"epoch_rejected_packets\": " << epoch_rejected << "}"
         << (row + 1 < control_drops.size() ? "," : "") << "\n";
  }
  // Sweep-wide detection / dissemination counters from the metrics
  // registry (totals across every control-drop row above).
  json << "  ],\n  \"detection\": {\n"
       << "    \"probe_transmissions\": "
       << metrics.Total("heal.probe_transmissions") << ",\n"
       << "    \"probe_confirmations\": "
       << metrics.Total("heal.probe_confirmations") << ",\n"
       << "    \"suspicions_raised\": "
       << metrics.Total("heal.suspicions_raised") << "\n"
       << "  },\n  \"dissemination\": {\n"
       << "    \"control_hop_attempts\": "
       << metrics.Total("heal.control_hop_attempts") << ",\n"
       << "    \"control_hops\": " << metrics.Total("heal.control_hops")
       << ",\n"
       << "    \"control_messages_delivered\": "
       << metrics.Total("heal.control_messages_delivered") << ",\n"
       << "    \"control_payload_bytes\": "
       << metrics.Total("heal.control_payload_bytes") << ",\n"
       << "    \"replans\": " << metrics.Total("heal.replans") << ",\n"
       << "    \"images_queued\": " << metrics.Total("heal.images_queued")
       << ",\n"
       << "    \"bumps_queued\": " << metrics.Total("heal.bumps_queued")
       << ",\n"
       << "    \"replan_edges_reused\": "
       << metrics.Total("heal.replan_edges_reused") << ",\n"
       << "    \"replan_edges_reoptimized\": "
       << metrics.Total("heal.replan_edges_reoptimized") << ",\n"
       << "    \"image_installs\": " << metrics.Total("runtime.image_installs")
       << ",\n"
       << "    \"image_install_bytes\": "
       << metrics.Total("runtime.image_install_bytes") << "\n"
       << "  }\n}\n";
  bench::MaybeWriteMetricsJson(argc, argv, metrics);
  bench::EmitTable(
      "fault_recovery_self_healing",
      "GDI topology, oracle-free self-healing loop; extra Bernoulli drop on "
      "all control traffic (probes excluded), detection threshold " +
          std::to_string(DetectorOptions{}.suspicion_threshold) +
          " missed rounds; JSON copy in BENCH_fault_recovery.json",
      healing);
  return 0;
}
