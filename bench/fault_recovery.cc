// Fault-recovery experiment (paper section 3 / Corollary 1): how local is
// re-planning after persistent failures, and what does transient loss cost
// the ack/retry runtime? Part one sweeps the number of persistent fault
// events and reports the fraction of per-edge solutions the incremental
// re-plan reuses (always validated against a from-scratch plan). Part two
// sweeps the per-attempt drop probability on flaky links and reports the
// retry/energy overhead of a lossy round relative to a clean one.

#include <memory>
#include <utility>

#include "harness.h"
#include "sim/fault_schedule.h"

int main() {
  using namespace m2m;
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 10;
  spec.sources_per_destination = 8;
  spec.seed = 4100;
  Workload workload = GenerateWorkload(topology, spec);
  std::vector<NodeId> destinations;
  for (const Task& task : workload.tasks) {
    destinations.push_back(task.destination);
  }

  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);

  // Part 1: re-plan locality vs failure burst size.
  Table locality({"fault_events", "edges", "reused", "reused_pct",
                  "divergences"});
  for (int events : {1, 2, 4, 8}) {
    FaultScheduleOptions options;
    options.rounds = 2;  // All events land in round 1.
    options.transient_link_fraction = 0.0;
    options.persistent_link_failures = events;
    options.node_deaths = 0;  // Keep the workload fixed across rows.
    options.seed = 900 + events;
    FaultSchedule schedule =
        FaultSchedule::Generate(topology, destinations, options);

    Topology masked = Topology::WithFailures(
        topology, schedule.FailedLinksThrough(options.rounds), {});
    PathSystem masked_paths(masked);
    UpdateStats stats;
    GlobalPlan patched = ReplanForTopology(plan, masked_paths, workload.tasks,
                                           workload.functions, &stats);
    GlobalPlan fresh =
        BuildPlan(patched.forest_ptr(), workload.functions, plan.options());
    size_t divergences = FindPlanDivergence(patched, fresh).size();

    locality.AddRow({std::to_string(events), std::to_string(stats.edges_total),
                     std::to_string(stats.edges_reused),
                     Table::Num(stats.edges_total == 0
                                    ? 0.0
                                    : 100.0 * stats.edges_reused /
                                          stats.edges_total),
                     std::to_string(divergences)});
  }
  bench::EmitTable("fault_recovery_locality",
                   "GDI topology, 10 destinations x 8 sources; persistent "
                   "link failures, incremental vs from-scratch re-plan",
                   locality);

  // Part 2: lossy-round overhead vs transient drop probability.
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  ReadingGenerator readings(topology.node_count(), 1234);
  RuntimeNetwork clean(compiled, workload.functions);
  RuntimeNetwork::Result reference = clean.RunRound(readings.values());

  Table overhead({"drop_prob", "attempts", "retx", "dup", "abandoned",
                  "energy_mJ", "energy_x", "ticks"});
  for (double drop : {0.0, 0.1, 0.3, 0.5}) {
    FaultScheduleOptions options;
    options.rounds = 2;
    options.transient_link_fraction = 1.0;  // Every link flaky.
    options.transient_drop_probability = drop;
    options.persistent_link_failures = 0;
    options.node_deaths = 0;
    options.seed = 4242;
    FaultSchedule schedule =
        FaultSchedule::Generate(topology, destinations, options);

    RuntimeNetwork network(compiled, workload.functions);
    LossyLinkModel links;
    links.attempt_delivers = [&schedule](NodeId from, NodeId to,
                                         int attempt) {
      return schedule.AttemptDelivers(1, from, to, attempt);
    };
    RetryPolicy retry;
    retry.max_attempts = 8;
    RuntimeNetwork::LossyResult lossy =
        network.RunRoundLossy(readings.values(), links, retry);

    overhead.AddRow(
        {Table::Num(drop), std::to_string(lossy.attempts),
         std::to_string(lossy.retransmissions),
         std::to_string(lossy.duplicates),
         std::to_string(lossy.messages_abandoned),
         Table::Num(lossy.energy_mj),
         Table::Num(reference.energy_mj == 0.0
                        ? 0.0
                        : lossy.energy_mj / reference.energy_mj),
         std::to_string(lossy.final_tick)});
  }
  bench::EmitTable("fault_recovery_overhead",
                   "GDI topology, all links flaky for one round; "
                   "stop-and-wait ack/retry, 8 attempts, clean-round energy "
                   "baseline " +
                       Table::Num(reference.energy_mj) + " mJ",
                   overhead);
  return 0;
}
