// Figure 5: varying the dispersion factor d in [0, 1]. 20% of nodes are
// destinations, each aggregating 20 sources drawn from 1-4 hops away with
// hop-distance mass proportional to d^(h-1). Flood is omitted, as in the
// paper's figure.

#include "harness.h"

int main() {
  using namespace m2m;
  Topology topology = MakeGreatDuckIslandLike();
  Table table(
      {"dispersion_d", "optimal_mJ", "multicast_mJ", "aggregation_mJ"});
  for (int step = 0; step <= 10; step += 2) {
    double d = step / 10.0;
    WorkloadSpec spec;
    spec.destination_count = topology.node_count() / 5;  // 20%.
    spec.sources_per_destination = 20;
    spec.dispersion = d;
    spec.max_hops = 4;
    spec.kind = AggregateKind::kWeightedAverage;
    spec.seed = 3000 + step;
    Workload workload = GenerateWorkload(topology, spec);
    bench::AlgorithmEnergies energies = bench::MeasureAlgorithms(
        topology, workload, /*include_flood=*/false);
    table.AddRow({Table::Num(d, 1), Table::Num(energies.optimal_mj),
                  Table::Num(energies.multicast_mj),
                  Table::Num(energies.aggregation_mj)});
  }
  bench::EmitTable(
      "Figure 5 — varying the dispersion factor",
      "GDI-like 68-node network, 20% destinations, 20 sources each from 1-4 "
      "hops, weighted average",
      table);
  return 0;
}
