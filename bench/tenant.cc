// Multi-tenant frontend experiment: what do batched admissions and
// cross-tenant dedup buy at the base station? An open-loop arrival process
// (T tenants drawing admissions/retirements from a shared pool of canonical
// queries) sweeps the arrival rate (requests per batch window) and drives
// the SAME schedule through two admission pipelines: sequential (every
// request its own commit — one replan each) and batched (one TenantBatch
// per window — one replan for the whole window). Reports commit latency
// p50/p99, admitted-queries throughput, replans per admitted query, and
// the dedup hit rate (overlapping tenants sharing one physical query).
// Both pipelines must end byte-identical — the batch purity guarantee —
// and the bench CHECKs it. Results also land in BENCH_tenant.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "harness.h"
#include "lifecycle/lifecycle.h"
#include "lifecycle/tenant.h"
#include "sim/base_station.h"

namespace {

using namespace m2m;

/// One canonical query in the shared pool.
struct PoolQuery {
  NodeId destination = kInvalidNode;
  FunctionSpec spec;
};

/// One open-loop arrival: a tenant admitting or retiring a pool query.
struct Arrival {
  std::string tenant;
  bool retire = false;
  int pool_index = 0;
};

/// Latency/throughput/accounting for one (rate, pipeline) cell.
struct SweepStats {
  int requests = 0;
  int admitted = 0;
  int rejected = 0;
  int64_t replans = 0;
  int64_t dedup_hits = 0;
  std::vector<double> commit_us;
  double total_s = 0.0;
};

/// Builds the shared pool: `count` canonical queries over destinations no
/// initial query serves, each aggregating three nearby pool destinations.
std::vector<PoolQuery> BuildPool(const Topology& topology,
                                 const QueryCatalog& catalog, NodeId base,
                                 int count) {
  std::vector<NodeId> fresh;
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (n == base || catalog.Contains(n)) continue;
    fresh.push_back(n);
    if (static_cast<int>(fresh.size()) == count + 3) break;
  }
  M2M_CHECK_EQ(static_cast<int>(fresh.size()), count + 3);
  std::vector<PoolQuery> pool;
  for (int j = 0; j < count; ++j) {
    PoolQuery query;
    query.destination = fresh[static_cast<size_t>(j)];
    double weight = 1.0;
    for (int k = 1; k <= 3; ++k) {
      query.spec.kind = AggregateKind::kWeightedAverage;
      query.spec.weights.emplace_back(fresh[static_cast<size_t>(j + k)],
                                      weight);
      weight += 0.5;
    }
    pool.push_back(std::move(query));
  }
  return pool;
}

/// Generates the open-loop schedule: `windows` batch windows of `rate`
/// arrivals each. Tenants admit pool queries they do not yet hold and
/// retire ones they do (35% of the time), so the schedule is always valid
/// at the frontend while tenants keep overlapping on shared queries. Holds
/// admitted within the current window are never retired in it: the batched
/// frontend gates retires against pre-batch holds (a batch cannot retire
/// its own admit), and the sequential pipeline must see identical outcomes.
std::vector<std::vector<Arrival>> GenerateSchedule(
    const std::vector<std::string>& tenants, int pool_size, int windows,
    int rate, uint64_t seed) {
  Rng rng(seed);
  std::map<std::pair<std::string, int>, bool> held;
  std::vector<std::vector<Arrival>> schedule;
  for (int w = 0; w < windows; ++w) {
    std::vector<Arrival> window;
    std::map<std::pair<std::string, int>, bool> admitted_this_window;
    for (int i = 0; i < rate; ++i) {
      Arrival arrival;
      arrival.tenant =
          tenants[static_cast<size_t>(rng.UniformInt(tenants.size()))];
      std::vector<int> holding, free;
      for (int j = 0; j < pool_size; ++j) {
        if (held[{arrival.tenant, j}]) {
          if (!admitted_this_window[{arrival.tenant, j}]) holding.push_back(j);
        } else {
          free.push_back(j);
        }
      }
      if (holding.empty() && free.empty()) continue;
      const bool retire =
          !holding.empty() && (free.empty() || rng.Bernoulli(0.35));
      arrival.retire = retire;
      const std::vector<int>& candidates = retire ? holding : free;
      arrival.pool_index = candidates[static_cast<size_t>(
          rng.UniformInt(candidates.size()))];
      held[{arrival.tenant, arrival.pool_index}] = !retire;
      if (!retire) admitted_this_window[{arrival.tenant, arrival.pool_index}] = true;
      window.push_back(std::move(arrival));
    }
    schedule.push_back(std::move(window));
  }
  return schedule;
}

TenantRequest ToTenantRequest(const Arrival& arrival,
                              const std::vector<PoolQuery>& pool) {
  const PoolQuery& query = pool[static_cast<size_t>(arrival.pool_index)];
  TenantRequest request;
  request.tenant = arrival.tenant;
  request.request = arrival.retire
                        ? MutationRequest::Retire(query.destination)
                        : MutationRequest::Admit(query.destination, query.spec);
  return request;
}

/// Drives one pipeline over the schedule. `batched` commits each window as
/// ONE TenantBatch; otherwise every arrival is its own single-request
/// commit. Returns the stats and leaves the manager at the final catalog.
SweepStats RunPipeline(QueryLifecycleManager& manager,
                       const std::vector<std::string>& tenants,
                       const std::vector<PoolQuery>& pool,
                       const std::vector<std::vector<Arrival>>& schedule,
                       bool batched, obs::MetricsRegistry& metrics) {
  manager.set_metrics(&metrics);
  MultiTenantFrontend frontend(&manager);
  frontend.set_metrics(&metrics);
  for (const std::string& tenant : tenants) frontend.RegisterTenant(tenant);

  const int64_t replans_before = metrics.Total("qlm.replans");
  const int64_t dedup_before = metrics.Total("qlm.dedup.hits");
  SweepStats stats;
  const auto run_start = std::chrono::steady_clock::now();
  for (const std::vector<Arrival>& window : schedule) {
    std::vector<TenantRequest> requests;
    for (const Arrival& arrival : window) {
      requests.push_back(ToTenantRequest(arrival, pool));
    }
    if (batched) {
      const auto start = std::chrono::steady_clock::now();
      TenantBatchResult result = frontend.ApplyBatch(requests);
      const auto stop = std::chrono::steady_clock::now();
      stats.commit_us.push_back(
          std::chrono::duration<double, std::micro>(stop - start).count());
      stats.requests += static_cast<int>(requests.size());
      stats.admitted += result.accepted;
      stats.rejected += result.rejected;
    } else {
      for (const TenantRequest& request : requests) {
        const auto start = std::chrono::steady_clock::now();
        TenantBatchResult result = frontend.ApplyBatch({request});
        const auto stop = std::chrono::steady_clock::now();
        stats.commit_us.push_back(
            std::chrono::duration<double, std::micro>(stop - start).count());
        ++stats.requests;
        stats.admitted += result.accepted;
        stats.rejected += result.rejected;
      }
    }
  }
  const auto run_stop = std::chrono::steady_clock::now();
  stats.total_s =
      std::chrono::duration<double>(run_stop - run_start).count();
  stats.replans = metrics.Total("qlm.replans") - replans_before;
  stats.dedup_hits = metrics.Total("qlm.dedup.hits") - dedup_before;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace m2m;
  const int threads = bench::ApplyParallelismFlags(argc, argv);
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec workload_spec;
  workload_spec.destination_count = 5;
  workload_spec.sources_per_destination = 5;
  workload_spec.seed = 7100;
  Workload initial = GenerateWorkload(topology, workload_spec);
  NodeId base = PickBaseStation(topology);

  const std::vector<std::string> tenants = {"t0", "t1", "t2", "t3"};
  const int kPoolSize = 6;
  const int kWindows = 6;

  std::ofstream json("BENCH_tenant.json");
  json << "{\n  \"experiment\": \"tenant\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"setup\": \"GDI topology, 5x5 seed workload; 4 tenants, "
          "shared pool of 6 canonical queries; open-loop arrival sweep "
          "(requests per batch window); sequential = one commit per "
          "request, batched = one TenantBatch per window; both pipelines "
          "CHECKed byte-identical\",\n"
       << "  \"rows\": [\n";

  Table table({"rate", "pipeline", "requests", "admitted", "rejected",
               "dedup_hits", "replans", "replans_per_admit", "p50_us",
               "p99_us", "admits_per_s"});
  const std::vector<int> rates = {1, 2, 4, 8};
  bool first_row = true;
  for (int rate : rates) {
    QueryLifecycleManager probe(topology, initial, base);
    const std::vector<PoolQuery> pool =
        BuildPool(topology, probe.catalog(), base, kPoolSize);
    const std::vector<std::vector<Arrival>> schedule = GenerateSchedule(
        tenants, kPoolSize, kWindows, rate, 7200 + static_cast<uint64_t>(rate));

    QueryLifecycleManager sequential_manager(topology, initial, base);
    QueryLifecycleManager batched_manager(topology, initial, base);
    obs::MetricsRegistry sequential_metrics, batched_metrics;
    const SweepStats sequential =
        RunPipeline(sequential_manager, tenants, pool, schedule,
                    /*batched=*/false, sequential_metrics);
    const SweepStats batch = RunPipeline(batched_manager, tenants, pool,
                                         schedule, /*batched=*/true,
                                         batched_metrics);

    // Batch purity: one commit per window must land on the same catalog
    // (and therefore plan) as one commit per request.
    M2M_CHECK(sequential_manager.catalog() == batched_manager.catalog());
    M2M_CHECK_EQ(sequential.admitted, batch.admitted);
    M2M_CHECK_EQ(sequential.dedup_hits, batch.dedup_hits);

    for (const bool batched : {false, true}) {
      const SweepStats& stats = batched ? batch : sequential;
      const std::string pipeline = batched ? "batched" : "sequential";
      const double p50 = Percentile(stats.commit_us, 50.0);
      const double p99 = Percentile(stats.commit_us, 99.0);
      const double replans_per_admit =
          stats.admitted == 0 ? 0.0
                              : static_cast<double>(stats.replans) /
                                    static_cast<double>(stats.admitted);
      const double admits_per_s =
          stats.total_s <= 0.0
              ? 0.0
              : static_cast<double>(stats.admitted) / stats.total_s;
      table.AddRow({std::to_string(rate), pipeline,
                    std::to_string(stats.requests),
                    std::to_string(stats.admitted),
                    std::to_string(stats.rejected),
                    std::to_string(stats.dedup_hits),
                    std::to_string(stats.replans),
                    Table::Num(replans_per_admit, 2), Table::Num(p50, 1),
                    Table::Num(p99, 1), Table::Num(admits_per_s, 1)});
      json << (first_row ? "" : ",\n") << "    {\"rate\": " << rate
           << ", \"pipeline\": \"" << pipeline
           << "\", \"requests\": " << stats.requests
           << ", \"admitted\": " << stats.admitted
           << ", \"rejected\": " << stats.rejected
           << ", \"dedup_hits\": " << stats.dedup_hits
           << ", \"replans\": " << stats.replans
           << ", \"replans_per_admit\": " << replans_per_admit
           << ", \"commit_p50_us\": " << p50
           << ", \"commit_p99_us\": " << p99
           << ", \"admits_per_s\": " << admits_per_s << "}";
      first_row = false;
    }
  }
  json << "\n  ]\n}\n";

  bench::EmitTable(
      "tenant_arrival_rate",
      "GDI topology; open-loop multi-tenant arrival sweep through the "
      "base-station frontend; sequential vs batched admission pipelines "
      "(CHECKed byte-identical); commit latency p50/p99, replan "
      "amortization, cross-tenant dedup hit rate; JSON copy in "
      "BENCH_tenant.json",
      table);
  return 0;
}
