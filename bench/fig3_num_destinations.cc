// Figure 3: varying the number of aggregation functions (destinations).
// Paper setup: GDI network (68 nodes), 20 sources per destination,
// dispersion d = 0.9; x-axis = percent of nodes set as destinations
// (10..100); y-axis = average round energy (mJ) for Optimal, Multicast,
// Aggregation, and Flood.

#include "harness.h"

int main() {
  using namespace m2m;
  Topology topology = MakeGreatDuckIslandLike();
  Table table({"pct_destinations", "optimal_mJ", "multicast_mJ",
               "aggregation_mJ", "flood_mJ"});
  for (int pct = 10; pct <= 100; pct += 10) {
    WorkloadSpec spec;
    spec.destination_count =
        std::max(1, topology.node_count() * pct / 100);
    spec.sources_per_destination = 20;
    spec.dispersion = 0.9;
    spec.max_hops = 4;
    spec.kind = AggregateKind::kWeightedAverage;
    spec.seed = 1000 + pct;
    Workload workload = GenerateWorkload(topology, spec);
    bench::AlgorithmEnergies energies =
        bench::MeasureAlgorithms(topology, workload, /*include_flood=*/true);
    table.AddRow({std::to_string(pct), Table::Num(energies.optimal_mj),
                  Table::Num(energies.multicast_mj),
                  Table::Num(energies.aggregation_mj),
                  Table::Num(energies.flood_mj)});
  }
  bench::EmitTable(
      "Figure 3 — varying the number of aggregation functions",
      "GDI-like 68-node network, 20 sources/destination, dispersion d=0.9, "
      "weighted average",
      table);
  return 0;
}
