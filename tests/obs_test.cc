#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/planner.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "runtime/network.h"
#include "sim/executor.h"
#include "sim/readings.h"
#include "sim/self_healing.h"
#include "topology/generator.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CountersAccumulateAcrossLabelDimensions) {
  obs::MetricsRegistry registry;
  obs::MetricHandle c = registry.Counter("test.packets");
  registry.Add(c, 3);
  registry.AddNode(c, 2, 4);
  registry.AddNode(c, 7, 1);
  registry.AddEdge(c, 2, 7, 5);

  // Labeled adds feed the total: 3 + 4 + 1 + 5.
  EXPECT_EQ(registry.Total("test.packets"), 13);
  EXPECT_EQ(registry.NodeValue("test.packets", 2), 4);
  EXPECT_EQ(registry.NodeValue("test.packets", 7), 1);
  EXPECT_EQ(registry.NodeValue("test.packets", 3), 0);
  EXPECT_EQ(registry.NodeSum("test.packets"), 5);
  EXPECT_EQ(registry.EdgeValue("test.packets", 2, 7), 5);
  EXPECT_EQ(registry.EdgeValue("test.packets", 7, 2), 0);
  EXPECT_EQ(registry.EdgeSum("test.packets"), 5);
}

TEST(MetricsRegistryTest, ReRegisteringReturnsTheSameHandle) {
  obs::MetricsRegistry registry;
  obs::MetricHandle a = registry.Counter("test.c");
  obs::MetricHandle b = registry.Counter("test.c");
  EXPECT_EQ(a.index, b.index);
  registry.Add(a, 1);
  registry.Add(b, 1);
  EXPECT_EQ(registry.Total("test.c"), 2);
}

TEST(MetricsRegistryTest, GaugesAreLastWriteWins) {
  obs::MetricsRegistry registry;
  obs::MetricHandle g = registry.Gauge("test.epoch");
  registry.Set(g, 3);
  registry.Set(g, 7);
  EXPECT_EQ(registry.Total("test.epoch"), 7);
  registry.SetNode(g, 4, 11);
  registry.SetNode(g, 4, 2);
  EXPECT_EQ(registry.NodeValue("test.epoch", 4), 2);
}

TEST(MetricsRegistryTest, HistogramBucketsCountAndSum) {
  obs::MetricsRegistry registry;
  obs::MetricHandle h = registry.Histogram("test.latency", {1, 4, 16});
  registry.Observe(h, 0);
  registry.Observe(h, 1);
  registry.Observe(h, 3);
  registry.Observe(h, 100);  // Overflow bucket.
  EXPECT_EQ(registry.HistogramCount("test.latency"), 4);
  EXPECT_EQ(registry.HistogramSum("test.latency"), 104);
}

TEST(MetricsRegistryTest, ResetKeepsRegistrationsAndZeroesValues) {
  obs::MetricsRegistry registry;
  obs::MetricHandle c = registry.Counter("test.c");
  obs::MetricHandle h = registry.Histogram("test.h");
  registry.AddNode(c, 1, 5);
  registry.Observe(h, 9);
  registry.Reset();
  EXPECT_TRUE(registry.Has("test.c"));
  EXPECT_EQ(registry.Total("test.c"), 0);
  EXPECT_EQ(registry.NodeSum("test.c"), 0);
  EXPECT_EQ(registry.HistogramCount("test.h"), 0);
  // Handles registered before the reset stay valid.
  registry.Add(c, 2);
  EXPECT_EQ(registry.Total("test.c"), 2);
}

TEST(MetricsRegistryTest, NamesPreserveRegistrationOrder) {
  obs::MetricsRegistry registry;
  registry.Counter("z.last");
  registry.Gauge("a.first");
  registry.Histogram("m.middle");
  EXPECT_EQ(registry.Names(),
            (std::vector<std::string>{"z.last", "a.first", "m.middle"}));
}

TEST(MetricsRegistryTest, ToJsonIsDeterministicAndCarriesTheSchema) {
  auto build = [] {
    obs::MetricsRegistry registry;
    obs::MetricHandle c = registry.Counter("test.tx");
    obs::MetricHandle g = registry.Gauge("test.epoch");
    obs::MetricHandle h = registry.Histogram("test.ticks", {2, 8});
    // Insert labels in a scrambled order; the export must sort them.
    registry.AddEdge(c, 9, 1, 2);
    registry.AddEdge(c, 1, 9, 3);
    registry.AddNode(c, 5, 7);
    registry.AddNode(c, 2, 1);
    registry.Set(g, 4);
    registry.Observe(h, 3);
    return registry.ToJson();
  };
  const std::string json = build();
  EXPECT_EQ(json, build());  // Deterministic across identical runs.
  EXPECT_NE(json.find("\"schema\": \"m2m.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.tx\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
  // by_node ascending, zeros skipped.
  EXPECT_NE(json.find("{\"node\": 2, \"value\": 1}, "
                      "{\"node\": 5, \"value\": 7}"),
            std::string::npos);
  // by_edge sorted by (from, to).
  EXPECT_NE(json.find("{\"from\": 1, \"to\": 9, \"value\": 3}, "
                      "{\"from\": 9, \"to\": 1, \"value\": 2}"),
            std::string::npos);
  // Histogram renders its bounds plus the +inf overflow bucket.
  EXPECT_NE(json.find("{\"le\": \"inf\", \"count\": 0}"), std::string::npos);
}

// ---------------------------------------------------------------------------
// RoundTrace
// ---------------------------------------------------------------------------

TEST(RoundTraceTest, TypedRecordsRenderTheLegacyLines) {
  obs::RoundTrace trace;
  trace.Send(5, 1, 2, 3, 2, 17, obs::SendOutcome::kRx, false);
  trace.Send(6, 1, 2, 3, 3, 17, obs::SendOutcome::kDuplicate, true);
  trace.Send(7, 1, 2, 3, 4, 17, obs::SendOutcome::kEpochRejected, false);
  trace.Send(8, 0, 4, 0, 1, 9, obs::SendOutcome::kDropped, false, 2);
  trace.Send(9, 0, 4, 0, 2, 9, obs::SendOutcome::kDeadRecipient, false);
  trace.GiveUp(9, 0, 4, 0);
  trace.Suspect(12, 3, 4);
  trace.Control(13, obs::ControlKind::kReport, 3, 0, 7);
  trace.Control(13, obs::ControlKind::kReportAck, 0, 3, 7);
  trace.Control(14, obs::ControlKind::kImage, 0, 5, 42);
  trace.Control(14, obs::ControlKind::kBump, 0, 6, 5);
  trace.Control(15, obs::ControlKind::kInstallAck, 5, 0, 6);
  trace.Replan(13, 2, 1, 0, 3, 4, 20, 2);
  trace.Text("r13 begin");

  EXPECT_EQ(trace.ToString(),
            "t5 tx 1>2 m3 a2 b17 rx\n"
            "t6 tx 1>2 m3 a3 b17 dup+acklost\n"
            "t7 tx 1>2 m3 a4 b17 epoch\n"
            "t8 tx 0>4 m0 a1 b9 drop@2\n"
            "t9 tx 0>4 m0 a2 b9 dead\n"
            "t9 giveup 0>4 m0\n"
            "r12 suspect 3>4\n"
            "r13 ctrl report 3>0 b7 delivered\n"
            "r13 ctrl reportack 0>3 b7 delivered\n"
            "r14 ctrl image 0>5 b42 delivered\n"
            "r14 ctrl bump 0>6 b5 delivered\n"
            "r15 ctrl ack 5>0 b6 delivered\n"
            "r13 replan epoch=2 links=1 dead=0 images=3 bumps=4 "
            "reused=20 reopt=2\n"
            "r13 begin\n");
}

TEST(RoundTraceTest, CappedModeKeepsOnlyTheMostRecentRecords) {
  obs::RoundTrace trace;
  trace.set_capacity(3);
  for (int i = 0; i < 10; ++i) {
    trace.Send(i, 0, 1, 0, 1, 4, obs::SendOutcome::kRx, false);
  }
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.total_appended(), 10u);
  EXPECT_EQ(trace.dropped(), 7u);
  EXPECT_EQ(trace.ToString(),
            "t7 tx 0>1 m0 a1 b4 rx\n"
            "t8 tx 0>1 m0 a1 b4 rx\n"
            "t9 tx 0>1 m0 a1 b4 rx\n");
  // Typed records carry no heap strings, so retained memory is exactly the
  // ring payload — constant no matter how many more records stream through.
  const size_t bytes = trace.RetainedBytes();
  for (int i = 0; i < 1000; ++i) {
    trace.Send(i, 0, 1, 0, 1, 4, obs::SendOutcome::kRx, false);
  }
  EXPECT_EQ(trace.RetainedBytes(), bytes);
  // Shrinking the cap drops the oldest retained records.
  trace.set_capacity(1);
  EXPECT_EQ(trace.size(), 1u);
}

// ---------------------------------------------------------------------------
// RetryPolicy overflow fix
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, BackoffMatchesLegacyExponentialForSmallAttempts) {
  RetryPolicy retry;  // max_attempts=4, ack_timeout=2, factor=2.
  EXPECT_EQ(retry.BackoffWaitTicks(1), 2);
  EXPECT_EQ(retry.BackoffWaitTicks(2), 4);
  EXPECT_EQ(retry.BackoffWaitTicks(3), 8);
  // Horizon = 1 + the sum of all waits a message can still be in flight.
  EXPECT_EQ(retry.RetryHorizonTicks(), 1 + 2 + 4 + 8);
}

// Regression: with max_attempts=40 the legacy `int` backoff computation
// (timeout *= factor, 32-bit) overflowed around attempt 33, producing
// negative timeouts that scheduled retransmissions in the past.
TEST(RetryPolicyTest, LargeMaxAttemptsClampInsteadOfOverflowing) {
  RetryPolicy retry;
  retry.max_attempts = 40;
  int64_t previous = 0;
  int64_t wait_sum = 0;
  for (int attempt = 1; attempt < retry.max_attempts; ++attempt) {
    const int64_t wait = retry.BackoffWaitTicks(attempt);
    EXPECT_GT(wait, 0) << "attempt " << attempt;
    EXPECT_GE(wait, previous) << "attempt " << attempt;
    EXPECT_LE(wait, retry.max_backoff_ticks) << "attempt " << attempt;
    previous = wait;
    wait_sum += wait;
  }
  // ack=2, factor=2: wait(a) = 2^a until the clamp at 2^16 (attempt 16).
  EXPECT_EQ(retry.BackoffWaitTicks(16), retry.max_backoff_ticks);
  EXPECT_EQ(retry.BackoffWaitTicks(39), retry.max_backoff_ticks);
  EXPECT_EQ(retry.RetryHorizonTicks(), 1 + wait_sum);
  // The whole horizon stays comfortably inside the int tick domain.
  EXPECT_LT(retry.RetryHorizonTicks(), int64_t{1} << 30);
}

TEST(RetryPolicyTest, OverflowSafePolicyRunsARoundEndToEnd) {
  // The overflowing policy used to CHECK-fail (or hang) inside
  // RunRoundLossy once `tick + timeout` went negative. With the clamp the
  // round must complete, even on a lossy link that forces deep retries.
  Topology topology = MakeGrid(3, 1, 10.0, 15.0);
  Workload workload;
  workload.tasks = {Task{2, {0}}};
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{0, 1.0}};
  workload.specs = {spec};
  workload.RebuildFunctions();
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  RuntimeNetwork network(compiled, workload.functions);

  RetryPolicy retry;
  retry.max_attempts = 40;
  retry.max_backoff_ticks = 16;  // Keep the test's wall-clock tiny.
  LossyLinkModel links;
  links.attempt_delivers = [](NodeId, NodeId, int attempt) {
    return attempt >= 35;  // Only deep retransmissions get through.
  };
  ReadingGenerator readings(topology.node_count(), 3);
  RuntimeNetwork::LossyResult lossy =
      network.RunRoundLossy(readings.values(), links, retry);
  EXPECT_TRUE(lossy.incomplete_destinations.empty());
  EXPECT_EQ(lossy.destination_values.count(2), 1u);
  EXPECT_GE(lossy.retransmissions, 34);
  EXPECT_GT(lossy.final_tick, 0);
}

// ---------------------------------------------------------------------------
// Receiver dedup eviction boundary
// ---------------------------------------------------------------------------

// Pins the eviction boundary contract: a dedup entry stamped at tick t must
// survive through tick t + RetryHorizonTicks() - 1, the last tick at which
// a retransmission of that message can still arrive. The scenario arranges
// exactly that worst case: the receiver first sees the message on attempt
// 1, every ack back to the sender drops, every middle retransmission drops,
// and the final attempt lands at the last possible tick — while the
// eviction pass (which runs each processed tick past the horizon) is
// active. If the horizon were derived even two ticks short, the entry would
// be evicted before the final duplicate arrived, the packet would merge
// twice, and the destination's aggregate would double-count the source.
TEST(LossyRuntimeTest, DedupEntrySurvivesUntilTheLastPossibleRetransmission) {
  Topology topology = MakeGrid(3, 1, 10.0, 15.0);
  Workload workload;
  workload.tasks = {Task{2, {0, 1}}};
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{0, 1.0}, {1, 2.0}};
  workload.specs = {spec};
  workload.RebuildFunctions();
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  RuntimeNetwork network(compiled, workload.functions);

  const RetryPolicy retry;  // max_attempts=4, waits 2/4/8, horizon 15.
  ASSERT_EQ(retry.RetryHorizonTicks(), 15);

  // 0->1 delivers on attempt 2 (tick 2), so node 1 emits its partial at
  // tick 3. 1->2 delivers on attempts 1 and 4 only; acks 2->1 always drop.
  // Node 2 stamps the partial at tick 3; the final retransmission arrives
  // at tick 3 + 2 + 4 + 8 = 17 = stamp + horizon - 1, and tick 17 > 15 is
  // the first tick the eviction pass actually runs in this round.
  LossyLinkModel links;
  links.attempt_delivers = [](NodeId from, NodeId to, int attempt) {
    if (from == 0 && to == 1) return attempt >= 2;
    if (from == 1 && to == 0) return true;  // Ack for 0's message.
    if (from == 1 && to == 2) return attempt == 1 || attempt == 4;
    if (from == 2 && to == 1) return false;  // Acks to node 1 all drop.
    return true;
  };

  ReadingGenerator readings(topology.node_count(), 21);
  EventTrace trace;
  RuntimeNetwork::LossyResult lossy =
      network.RunRoundLossy(readings.values(), links, retry, {}, &trace);

  // The boundary duplicate was recognized as such, not re-merged.
  EXPECT_EQ(lossy.duplicates, 1);
  EXPECT_EQ(lossy.final_tick, 17);
  EXPECT_NE(trace.ToString().find("t17 tx 1>2 m0 a4 b"), std::string::npos);
  EXPECT_NE(trace.ToString().find("dup"), std::string::npos);
  // And the aggregate is the single-counted weighted sum.
  const double expected =
      1.0 * readings.values()[0] + 2.0 * readings.values()[1];
  ASSERT_EQ(lossy.destination_values.count(2), 1u);
  EXPECT_NEAR(lossy.destination_values.at(2), expected,
              1e-4 * std::max(1.0, std::fabs(expected)));
}

// ---------------------------------------------------------------------------
// Metrics reconciliation against runtime accounting
// ---------------------------------------------------------------------------

Workload SmallWorkload(const Topology& topology, uint64_t seed) {
  WorkloadSpec spec;
  spec.destination_count = 5;
  spec.sources_per_destination = 5;
  spec.kind = AggregateKind::kWeightedAverage;
  spec.seed = seed;
  return GenerateWorkload(topology, spec);
}

TEST(MetricsReconciliationTest, LosslessRoundMatchesResultAccounting) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = SmallWorkload(topology, 5);
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  RuntimeNetwork network(compiled, workload.functions);
  obs::MetricsRegistry registry;
  network.set_metrics(&registry);

  ReadingGenerator readings(topology.node_count(), 17);
  RuntimeNetwork::Result result = network.RunRound(readings.values());

  EXPECT_EQ(registry.Total("runtime.tx_packets"), result.packets);
  EXPECT_EQ(registry.Total("runtime.tx_bytes"), result.payload_bytes);
  EXPECT_EQ(registry.Total("runtime.rx_packets"), result.packets);
  EXPECT_EQ(registry.Total("runtime.rx_bytes"), result.payload_bytes);
  EXPECT_EQ(registry.Total("runtime.delivery_passes"),
            result.delivery_passes);
  // Per-node labels partition the totals exactly.
  EXPECT_EQ(registry.NodeSum("runtime.tx_packets"), result.packets);
  EXPECT_EQ(registry.NodeSum("runtime.rx_bytes"), result.payload_bytes);
}

TEST(MetricsReconciliationTest, LossyRoundMatchesLossyResultAccounting) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = SmallWorkload(topology, 6);
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  RuntimeNetwork network(compiled, workload.functions);
  obs::MetricsRegistry registry;
  network.set_metrics(&registry);

  // Deterministically lossy: a transmission drops whenever a cheap hash of
  // (from, to, attempt) says so, at roughly 25%.
  LossyLinkModel links;
  links.attempt_delivers = [](NodeId from, NodeId to, int attempt) {
    uint64_t h = static_cast<uint64_t>(from) * 1000003 +
                 static_cast<uint64_t>(to) * 10007 +
                 static_cast<uint64_t>(attempt) * 101;
    h ^= h >> 7;
    return (h % 4) != 0;
  };

  ReadingGenerator readings(topology.node_count(), 18);
  RuntimeNetwork::LossyResult lossy =
      network.RunRoundLossy(readings.values(), links);
  ASSERT_GT(lossy.retransmissions, 0);

  EXPECT_EQ(registry.Total("runtime.tx_attempts"), lossy.attempts);
  EXPECT_EQ(registry.Total("runtime.rx_packets"), lossy.deliveries);
  EXPECT_EQ(registry.Total("runtime.rx_bytes"), lossy.payload_bytes);
  EXPECT_EQ(registry.Total("runtime.retransmissions"),
            lossy.retransmissions);
  EXPECT_EQ(registry.Total("runtime.dedup_hits"), lossy.duplicates);
  EXPECT_EQ(registry.Total("runtime.epoch_gate_drops"),
            lossy.epoch_rejected);
  EXPECT_EQ(registry.Total("runtime.acks_lost"), lossy.acks_lost);
  EXPECT_EQ(registry.Total("runtime.messages_abandoned"),
            lossy.messages_abandoned);
  // Acks partition deliveries: every delivered packet is acked or lost.
  EXPECT_EQ(registry.Total("runtime.acks_delivered") +
                registry.Total("runtime.acks_lost"),
            lossy.deliveries);
  // Label sums reconcile with their totals.
  EXPECT_EQ(registry.NodeSum("runtime.tx_attempts"), lossy.attempts);
  EXPECT_EQ(registry.NodeSum("runtime.rx_packets"), lossy.deliveries);
  EXPECT_EQ(registry.EdgeSum("runtime.hop_transmissions"),
            registry.Total("runtime.hop_transmissions"));
  EXPECT_GT(registry.Total("runtime.hop_transmissions"), 0);
  // Every message terminates exactly once (acked or retries exhausted),
  // and its observed attempt count sums back to the attempt total.
  EXPECT_EQ(registry.HistogramSum("runtime.attempts_per_message"),
            lossy.attempts);
  EXPECT_EQ(registry.HistogramCount("runtime.round_ticks"), 1);
  EXPECT_EQ(registry.HistogramSum("runtime.round_ticks"), lossy.final_tick);

  // A second round keeps accumulating into the same registry.
  RuntimeNetwork::LossyResult second =
      network.RunRoundLossy(readings.values(), links);
  EXPECT_EQ(registry.Total("runtime.tx_attempts"),
            lossy.attempts + second.attempts);
}

TEST(MetricsReconciliationTest, SelfHealingRoundRecordsControlPlane) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = SmallWorkload(topology, 7);
  const NodeId base = workload.tasks.front().destination;
  SelfHealingRuntime runtime(topology, workload, base);
  obs::MetricsRegistry registry;
  runtime.set_metrics(&registry);

  // Fail every link around one node, permanently. Destinations are the
  // model's protected set (dead consumers make their aggregate undefined),
  // so pick a non-destination victim.
  std::vector<NodeId> destinations;
  for (const Task& task : workload.tasks) {
    destinations.push_back(task.destination);
  }
  NodeId victim = kInvalidNode;
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (n != base && !topology.neighbors(n).empty() &&
        std::find(destinations.begin(), destinations.end(), n) ==
            destinations.end()) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  LossyLinkModel physical;
  physical.attempt_delivers = [victim](NodeId from, NodeId to, int) {
    return from != victim && to != victim;
  };
  physical.node_alive = [victim](NodeId n) { return n != victim; };

  ReadingGenerator readings(topology.node_count(), 19);
  SelfHealingRoundResult last;
  int64_t probe_tx = 0, hop_attempts = 0, control_bytes = 0;
  for (int round = 0; round < 12; ++round) {
    last = runtime.RunRound(round, readings.values(), physical);
    probe_tx += last.probe_transmissions;
    hop_attempts += last.control_hop_attempts;
    control_bytes += last.control_payload_bytes;
  }

  EXPECT_EQ(registry.Total("heal.probe_transmissions"), probe_tx);
  EXPECT_EQ(registry.Total("heal.control_hop_attempts"), hop_attempts);
  EXPECT_EQ(registry.Total("heal.control_payload_bytes"), control_bytes);
  // The dead node was detected and healed around: suspicions were raised,
  // at least one replan happened, and the epoch gauge tracks the base.
  EXPECT_GT(registry.Total("heal.suspicions_raised"), 0);
  EXPECT_GE(registry.Total("heal.replans"), 1);
  EXPECT_EQ(registry.Total("heal.base_epoch"),
            static_cast<int64_t>(runtime.base_epoch()));
  EXPECT_EQ(registry.Total("heal.pending_installs"),
            static_cast<int64_t>(last.pending_installs));
  EXPECT_GT(registry.Total("heal.images_queued") +
                registry.Total("heal.bumps_queued"),
            0);
  // Data-plane runtime.* metrics accumulated through the same registry.
  EXPECT_GT(registry.Total("runtime.tx_attempts"), 0);
}

TEST(MetricsReconciliationTest, SuppressedRoundsRecordOverrides) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = SmallWorkload(topology, 8);
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  auto compiled = std::make_shared<CompiledPlan>(
      CompiledPlan::Compile(plan, workload.functions));
  PlanExecutor executor(compiled, workload.functions, EnergyModel{});
  obs::MetricsRegistry registry;
  executor.set_metrics(&registry);

  ReadingGenerator readings(topology.node_count(), 23);
  executor.InitializeState(readings.values());
  // Only every third node's reading actually changes, matching the mask.
  std::vector<bool> changed(topology.node_count(), false);
  std::vector<double> next = readings.values();
  for (size_t n = 0; n < changed.size(); n += 3) {
    changed[n] = true;
    next[n] += 1.5;
  }
  RoundResult round = executor.RunSuppressedRound(
      next, changed, OverridePolicy::kAggressive);

  EXPECT_EQ(registry.Total("suppress.rounds"), 1);
  EXPECT_EQ(registry.Total("suppress.overrides"), round.overrides);
  EXPECT_EQ(registry.Total("suppress.payload_bytes"), round.payload_bytes);
  EXPECT_EQ(registry.Total("suppress.messages"), round.messages);
  EXPECT_GT(registry.Total("suppress.changed_sources"), 0);
  EXPECT_GT(registry.Total("suppress.suppressed_sources"), 0);
}

}  // namespace
}  // namespace m2m
