// Targeted coverage for corners the module suites don't reach: diagnostic
// message contents, lookup helpers, config math, and cross-module
// invariants that only show up in unusual configurations.

#include <memory>

#include <gtest/gtest.h>

#include "core/system.h"
#include "mac/csma.h"
#include "plan/consistency.h"
#include "plan/dissemination.h"
#include "sim/base_station.h"
#include "sim/readings.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

TEST(EdgePlanTest, LookupsUseBinarySearch) {
  EdgePlan plan;
  plan.raw_sources = {2, 5, 9};
  plan.agg_destinations = {1, 7};
  EXPECT_TRUE(plan.TransmitsRaw(5));
  EXPECT_FALSE(plan.TransmitsRaw(6));
  EXPECT_TRUE(plan.TransmitsAggregate(7));
  EXPECT_FALSE(plan.TransmitsAggregate(9));
  EXPECT_EQ(plan.unit_count(), 5);
}

TEST(ConsistencyTest, ViolationMessagesNameTheEdge) {
  Topology topo = MakeGreatDuckIslandLike();
  PathSystem paths(topo);
  WorkloadSpec spec;
  spec.destination_count = 6;
  spec.sources_per_destination = 5;
  spec.seed = 801;
  Workload wl = GenerateWorkload(topo, spec);
  auto forest = std::make_shared<MulticastForest>(paths, wl.tasks);
  GlobalPlan plan = BuildPlan(forest, wl.functions, {});
  // Remove one edge's entire cover: every pair on it becomes uncovered.
  std::vector<EdgePlan> plans = plan.edge_plans();
  int corrupted_edge = -1;
  for (size_t e = 0; e < plans.size(); ++e) {
    if (plans[e].unit_count() > 0) {
      plans[e].raw_sources.clear();
      plans[e].agg_destinations.clear();
      corrupted_edge = static_cast<int>(e);
      break;
    }
  }
  ASSERT_GE(corrupted_edge, 0);
  GlobalPlan bad(forest, std::move(plans), plan.options());
  std::vector<std::string> violations = FindConsistencyViolations(bad);
  ASSERT_FALSE(violations.empty());
  const DirectedEdge& e = forest->edges()[corrupted_edge].edge;
  std::string expected = std::to_string(e.tail) + "->" +
                         std::to_string(e.head);
  EXPECT_NE(violations.front().find(expected), std::string::npos)
      << violations.front();
  EXPECT_NE(violations.front().find("covers neither"), std::string::npos);
}

TEST(CsmaConfigTest, ByteTimingMatchesBitRate) {
  CsmaConfig config;
  // 38.4 kbps = 4.8 bytes per millisecond.
  EXPECT_NEAR(config.BytesToMs(48), 10.0, 1e-9);
  CsmaConfig fast;
  fast.bit_rate_bps = 76800.0;
  EXPECT_NEAR(fast.BytesToMs(48), 5.0, 1e-9);
}

TEST(DisseminationTest, PacketizationRoundsUp) {
  // A node image of 65 bytes two hops away: 2 packets x 2 hops.
  Topology line({{0, 0}, {40, 0}, {80, 0}}, 50.0);
  PathSystem paths(line);
  Workload wl;
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  // Enough sources that node 2's image exceeds one 64-byte packet.
  spec.weights = {{0, 1.0}};
  wl.tasks.push_back(Task{2, {0}});
  wl.specs.push_back(spec);
  wl.RebuildFunctions();
  System system(line, wl);
  DisseminationCost cost = ComputeFullDissemination(
      system.compiled(), wl.functions, paths, /*base_station=*/0,
      EnergyModel{});
  // Node 0 (base) is free; nodes 1 and 2 pay per-hop packets.
  EXPECT_GT(cost.packets, 0);
  EXPECT_EQ(cost.nodes_updated, 3);
  // Energy strictly positive and proportional to packets.
  EXPECT_GT(cost.energy_mj, 0.0);
}

TEST(SystemTest, ValidateConsistencyFlagCanBeDisabled) {
  Topology topo = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 4;
  spec.sources_per_destination = 4;
  spec.seed = 802;
  Workload wl = GenerateWorkload(topo, spec);
  SystemOptions options;
  options.validate_consistency = false;
  System system(topo, wl, options);  // Still builds a valid plan.
  EXPECT_TRUE(ValidatePlanConsistency(system.plan()));
}

TEST(BaseStationTest, SelfSufficientWorkloadHasNoDownlinkForBaseTask) {
  // A task whose destination is the base station itself contributes no
  // downlink traffic.
  Topology topo = MakeGreatDuckIslandLike();
  PathSystem paths(topo);
  NodeId base = PickBaseStation(topo);
  Workload wl;
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  NodeId source = (base + 1) % topo.node_count();
  spec.weights = {{source, 1.0}};
  wl.tasks.push_back(Task{base, {source}});
  wl.specs.push_back(spec);
  wl.RebuildFunctions();
  BaseStationRoundResult result =
      SimulateBaseStationRound(topo, paths, wl, base, EnergyModel{});
  EXPECT_GT(result.uplink_mj, 0.0);
  EXPECT_EQ(result.downlink_mj, 0.0);
}

TEST(RoundResultTest, DefaultsAreZeroed) {
  RoundResult result;
  EXPECT_EQ(result.energy_mj, 0.0);
  EXPECT_EQ(result.messages, 0);
  EXPECT_EQ(result.units, 0);
  EXPECT_EQ(result.overrides, 0);
  EXPECT_EQ(result.max_abs_error, 0.0);
  EXPECT_TRUE(result.destination_values.empty());
}

TEST(WorkloadTest, SingleSourceSingleDestinationPipeline) {
  // Degenerate but legal: one task, one source.
  Topology topo = MakeGreatDuckIslandLike();
  Workload wl;
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{7, 2.5}};
  wl.tasks.push_back(Task{40, {7}});
  wl.specs.push_back(spec);
  wl.RebuildFunctions();
  System system(topo, wl);
  ReadingGenerator readings(topo.node_count(), 803);
  RoundResult result = system.MakeExecutor().RunRound(readings.values());
  EXPECT_NEAR(result.destination_values.at(40),
              2.5 * readings.values()[7], 1e-9);
}

TEST(WorkloadTest, DestinationAsItsOwnOnlySourceCostsNothing) {
  Topology topo = MakeGreatDuckIslandLike();
  Workload wl;
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{40, 1.0}};
  wl.tasks.push_back(Task{40, {40}});
  wl.specs.push_back(spec);
  wl.RebuildFunctions();
  System system(topo, wl);
  ReadingGenerator readings(topo.node_count(), 804);
  RoundResult result = system.MakeExecutor().RunRound(readings.values());
  EXPECT_EQ(result.energy_mj, 0.0);
  EXPECT_EQ(result.messages, 0);
  EXPECT_NEAR(result.destination_values.at(40), readings.values()[40],
              1e-12);
}

}  // namespace
}  // namespace m2m
