// Event-runtime differential suite (docs/THEORY.md section 16).
//
// Three layers of guarantees, strongest first:
//
//  1. The discrete-event queue itself is deterministic: same-timestamp
//     events fire in schedule order, cancellation is exact (double-cancel
//     and cancel-after-fire are detected), and a schedule/cancel churn of
//     tens of thousands of timers keeps heap memory proportional to the
//     live set.
//  2. Round compatibility is *byte* identity: with identity clocks and a
//     RoundCompatTransport, EventNetwork::RunCompatRound reproduces
//     RuntimeNetwork::RunRoundLossy — traces, metrics JSON, aggregate bits,
//     coverage, heard sets — over 20 seeds and four channel regimes, and
//     the self-healing control loop is byte-identical under the
//     use_event_runtime switch.
//  3. Pipelined execution is new behavior with an analytic anchor: under
//     clock drift and nonzero hop latency, multiple timesteps overlap in
//     flight (max_in_flight >= 2) while every per-timestep aggregate still
//     matches the round oracle, and a replay is byte-stable.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "event/clock.h"
#include "event/event_queue.h"
#include "event/event_runtime.h"
#include "event/transport.h"
#include "obs/metrics.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "runtime/channel.h"
#include "runtime/network.h"
#include "sim/fault_schedule.h"
#include "sim/readings.h"
#include "sim/self_healing.h"
#include "topology/generator.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m::event {

/// White-box access for the memory-boundedness regression.
class EventQueueTestPeer {
 public:
  template <typename E>
  static size_t TombstoneCount(const EventQueue<E>& queue) {
    return queue.cancelled_.size();
  }
  template <typename E>
  static size_t FiredSetSize(const EventQueue<E>& queue) {
    return queue.fired_.size();
  }
};

}  // namespace m2m::event

namespace m2m {
namespace {

using event::BuildDriftClocks;
using event::ClockSpec;
using event::DriftOptions;
using event::EventId;
using event::EventNetwork;
using event::EventQueue;
using event::EventQueueTestPeer;
using event::RoundCompatTransport;
using event::SimChannelTransport;
using event::VirtualClock;

constexpr int kSeeds = 20;

Topology TestTopology(uint64_t seed) {
  return MakeUniformRandom(56, Area{110.0, 190.0}, kDefaultRadioRangeM,
                           0xA5EED + seed);
}

Workload TestWorkload(const Topology& topology, uint64_t seed) {
  WorkloadSpec spec;
  spec.destination_count = 4;
  spec.sources_per_destination = 5;
  spec.max_hops = 4;
  spec.seed = seed;
  return GenerateWorkload(topology, spec);
}

CompiledPlan TestPlan(const Topology& topology, const Workload& workload) {
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  return CompiledPlan::Compile(plan, workload.functions);
}

void AppendHex(std::ostringstream& out, double v) {
  out << std::hexfloat << v << std::defaultfloat << ";";
}

bool ValuesClose(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Serializes every observable field of a lossy-round result, maps and sets
/// in sorted order, doubles as hexfloat — one differing bit anywhere
/// differs here.
std::string FingerprintLossy(const RuntimeNetwork::LossyResult& r) {
  std::ostringstream out;
  out << "attempts=" << r.attempts << " deliv=" << r.deliveries
      << " dup=" << r.duplicates << " retx=" << r.retransmissions
      << " acks_lost=" << r.acks_lost << " abandoned=" << r.messages_abandoned
      << " epoch_rej=" << r.epoch_rejected << " bytes=" << r.payload_bytes
      << " ticks=" << r.final_tick << " corrupt=" << r.corrupt_frames
      << " spont=" << r.spontaneous_duplicates
      << " reord=" << r.reordered_deliveries << " e=";
  AppendHex(out, r.energy_mj);
  for (double e : r.node_energy_mj) AppendHex(out, e);
  std::map<NodeId, double> values(r.destination_values.begin(),
                                  r.destination_values.end());
  for (const auto& [d, v] : values) {
    out << " d" << d << "@" << r.destination_epochs.at(d) << "=";
    AppendHex(out, v);
  }
  std::vector<NodeId> incomplete = r.incomplete_destinations;
  std::sort(incomplete.begin(), incomplete.end());
  out << " incomplete=";
  for (NodeId d : incomplete) out << d << ",";
  out << " heard=";
  for (const auto& [from, to] : r.heard) out << from << ">" << to << ",";
  std::map<NodeId, RuntimeNetwork::LossyResult::DestinationCoverage> coverage(
      r.destination_coverage.begin(), r.destination_coverage.end());
  for (const auto& [d, c] : coverage) {
    out << " cov" << d << "=" << c.covered << "/" << c.expected << ":"
        << (c.complete ? 1 : 0) << ":" << c.xor_fold << ":";
    for (NodeId s : c.sources) out << s << ",";
  }
  std::map<NodeId, double> degraded(r.degraded_values.begin(),
                                    r.degraded_values.end());
  for (const auto& [d, v] : degraded) {
    out << " deg" << d << "=";
    AppendHex(out, v);
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// 1. Event-queue determinism in isolation.

TEST(EventQueue, PopsInTimeThenScheduleOrder) {
  EventQueue<int> queue;
  queue.Schedule(5, 50);
  queue.Schedule(1, 10);
  queue.Schedule(5, 51);  // Same time as the first: fires after it.
  queue.Schedule(3, 30);
  queue.Schedule(1, 11);
  queue.Schedule(5, 52);

  std::vector<int> popped;
  std::vector<int64_t> times;
  while (auto fired = queue.Pop()) {
    popped.push_back(fired->payload);
    times.push_back(fired->time);
  }
  EXPECT_EQ(popped, (std::vector<int>{10, 11, 30, 50, 51, 52}));
  EXPECT_EQ(times, (std::vector<int64_t>{1, 1, 3, 5, 5, 5}));
}

TEST(EventQueue, SchedulingAtThePoppingTimeIsAllowed) {
  EventQueue<int> queue;
  queue.Schedule(2, 1);
  auto first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  // A handler reacting at time 2 may schedule more work at time 2; it fires
  // after everything already queued there, in schedule order.
  queue.Schedule(2, 2);
  queue.Schedule(2, 3);
  EXPECT_EQ(queue.Pop()->payload, 2);
  EXPECT_EQ(queue.Pop()->payload, 3);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, CancellationIsExact) {
  EventQueue<int> queue;
  EventId keep = queue.Schedule(1, 1);
  EventId cancel = queue.Schedule(2, 2);
  EventId tail = queue.Schedule(3, 3);

  EXPECT_TRUE(queue.Cancel(cancel));
  EXPECT_FALSE(queue.Cancel(cancel)) << "double-cancel must be detected";
  EXPECT_EQ(queue.size(), 2u);

  auto fired = queue.Pop();
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->payload, 1);
  EXPECT_FALSE(queue.Cancel(keep)) << "cancel-after-fire must be detected";

  // The cancelled event never surfaces.
  EXPECT_EQ(queue.Pop()->payload, 3);
  EXPECT_FALSE(queue.Cancel(tail));
  EXPECT_FALSE(queue.Cancel(EventId{})) << "invalid id";
  EXPECT_FALSE(queue.Cancel(EventId{999})) << "never-issued id";
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.cancelled_total(), 1u);
  EXPECT_EQ(queue.scheduled_total(), 3u);
}

TEST(EventQueue, CancelledHeadIsSkippedByNextTime) {
  EventQueue<int> queue;
  EventId head = queue.Schedule(1, 1);
  queue.Schedule(7, 7);
  EXPECT_EQ(queue.NextTime().value(), 1);
  EXPECT_TRUE(queue.Cancel(head));
  EXPECT_EQ(queue.NextTime().value(), 7);
  EXPECT_EQ(queue.Pop()->payload, 7);
  EXPECT_FALSE(queue.NextTime().has_value());
}

TEST(EventQueue, ChurnKeepsMemoryBounded) {
  // The ack/retransmit workload in miniature: every iteration schedules a
  // few timers and cancels most of them. 10k+ events must not accumulate
  // tombstones or an unbounded fired-set.
  EventQueue<int> queue;
  uint64_t state = 42;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<EventId> pending;
  size_t max_heap = 0;
  size_t max_fired = 0;
  for (int i = 0; i < 10000; ++i) {
    pending.push_back(
        queue.Schedule(static_cast<int64_t>(next() % 64) + i, i));
    if (pending.size() >= 4) {
      // Cancel three of the last four; pop one event to advance time.
      for (int k = 0; k < 3; ++k) {
        queue.Cancel(pending[pending.size() - 2 - static_cast<size_t>(k)]);
      }
      pending.clear();
      queue.Pop();
    }
    max_heap = std::max(max_heap, queue.heap_size());
    max_fired = std::max(max_fired,
                         event::EventQueueTestPeer::FiredSetSize(queue));
  }
  EXPECT_EQ(queue.scheduled_total(), 10000u);
  EXPECT_GT(queue.cancelled_total(), 7000u);
  // Live events stay small (a handful per iteration survive), so the
  // physical heap and the fired-set must stay O(live), far below the 10k
  // ever scheduled.
  EXPECT_LT(max_heap, 600u) << "tombstone compaction failed";
  EXPECT_LT(max_fired, 1500u) << "fired-set pruning failed";
  EXPECT_LE(EventQueueTestPeer::TombstoneCount(queue), queue.heap_size());
}

TEST(EventQueue, ChurnReplayIsByteStable) {
  auto run = [](std::string* log) {
    EventQueue<int> queue;
    uint64_t state = 7;
    auto next = [&state]() {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    std::vector<EventId> ids;
    std::ostringstream out;
    for (int i = 0; i < 2000; ++i) {
      ids.push_back(queue.Schedule(static_cast<int64_t>(next() % 32), i));
      if (next() % 3 == 0 && !ids.empty()) {
        out << "c" << queue.Cancel(ids[next() % ids.size()]);
      }
      if (next() % 2 == 0) {
        if (auto fired = queue.Pop()) {
          out << "p" << fired->time << ":" << fired->seq << ":"
              << fired->payload << ";";
        }
      }
    }
    while (auto fired = queue.Pop()) {
      out << "p" << fired->time << ":" << fired->seq << ":" << fired->payload
          << ";";
    }
    *log = out.str();
  };
  std::string first;
  std::string second;
  run(&first);
  run(&second);
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// 2. Virtual clocks.

TEST(VirtualClock, GlobalForIsTheExactInverseOfLocalAt) {
  const int32_t skews[] = {-300000, -777, -1, 0, 1, 500, 250000};
  const int64_t offsets[] = {0, 1, 9, 1000};
  for (int32_t skew : skews) {
    for (int64_t offset : offsets) {
      VirtualClock clock(ClockSpec{offset, skew});
      // Monotone local readings.
      for (int64_t g = 1; g < 400; ++g) {
        EXPECT_GE(clock.LocalAt(g), clock.LocalAt(g - 1));
      }
      // GlobalFor(L) is the *earliest* global tick reading >= L.
      for (int64_t local = offset - 5; local < offset + 400; ++local) {
        const int64_t g = clock.GlobalFor(local);
        EXPECT_GE(clock.LocalAt(g), local)
            << "skew=" << skew << " offset=" << offset << " L=" << local;
        if (g > 0) {
          EXPECT_LT(clock.LocalAt(g - 1), local)
              << "skew=" << skew << " offset=" << offset << " L=" << local;
        }
      }
    }
  }
}

TEST(VirtualClock, IdentitySpecIsTheIdentityMap) {
  VirtualClock clock;
  for (int64_t g = 0; g < 100; ++g) {
    EXPECT_EQ(clock.LocalAt(g), g);
    EXPECT_EQ(clock.GlobalFor(g), g);
  }
}

TEST(VirtualClock, DriftAssignmentIsSeededAndBounded) {
  DriftOptions options;
  options.max_skew_ppm = 400;
  options.max_offset_ticks = 17;
  options.seed = 99;
  std::vector<ClockSpec> a = BuildDriftClocks(40, options);
  std::vector<ClockSpec> b = BuildDriftClocks(40, options);
  ASSERT_EQ(a.size(), 40u);
  bool any_nonidentity = false;
  for (size_t n = 0; n < a.size(); ++n) {
    EXPECT_EQ(a[n].skew_ppm, b[n].skew_ppm);
    EXPECT_EQ(a[n].offset_ticks, b[n].offset_ticks);
    EXPECT_GE(a[n].skew_ppm, -options.max_skew_ppm);
    EXPECT_LE(a[n].skew_ppm, options.max_skew_ppm);
    EXPECT_GE(a[n].offset_ticks, 0);
    EXPECT_LE(a[n].offset_ticks, options.max_offset_ticks);
    any_nonidentity = any_nonidentity || !a[n].is_identity();
  }
  EXPECT_TRUE(any_nonidentity);

  options.seed = 100;
  std::vector<ClockSpec> c = BuildDriftClocks(40, options);
  bool any_differs = false;
  for (size_t n = 0; n < a.size(); ++n) {
    any_differs = any_differs || a[n].skew_ppm != c[n].skew_ppm ||
                  a[n].offset_ticks != c[n].offset_ticks;
  }
  EXPECT_TRUE(any_differs) << "drift regime must depend on the seed";

  std::vector<ClockSpec> identity = BuildDriftClocks(8, DriftOptions{});
  for (const ClockSpec& spec : identity) EXPECT_TRUE(spec.is_identity());
}

// ---------------------------------------------------------------------------
// 3. Round-compatibility byte identity: RunCompatRound over a
// RoundCompatTransport vs RunRoundLossy, 20 seeds, four channel regimes,
// three rounds each — traces, metrics JSON, and every aggregate bit.

struct CompatRegime {
  const char* name;
  /// Builds the per-round link model. The ChannelModel outlives the bound
  /// model via the caller's scope.
  std::function<LossyLinkModel(const ChannelModel&, int round)> bind;
  ChannelOptions channel;
  bool track_node_energy = false;
};

std::vector<CompatRegime> CompatRegimes(uint64_t seed) {
  std::vector<CompatRegime> regimes;

  // Clean links: pure transcription, no loss machinery involved.
  {
    CompatRegime regime;
    regime.name = "clean";
    regime.bind = [](const ChannelModel&, int) {
      LossyLinkModel links;
      links.attempt_delivers = [](NodeId, NodeId, int) { return true; };
      return links;
    };
    regimes.push_back(regime);
  }

  // Independent Bernoulli loss (the legacy lossy regime).
  {
    CompatRegime regime;
    regime.name = "bernoulli";
    regime.channel.good_loss = 0.25;
    regime.channel.seed = seed * 11 + 1;
    regime.bind = [](const ChannelModel& channel, int round) {
      return channel.Bind(round);
    };
    regimes.push_back(regime);
  }

  // Adversarial channel: bursts, delay, duplication, corruption — every
  // deferred-effect kind crosses the transport boundary.
  {
    CompatRegime regime;
    regime.name = "adversarial";
    regime.channel.good_loss = 0.08;
    regime.channel.bad_loss = 0.8;
    regime.channel.p_enter_bad = 0.08;
    regime.channel.p_exit_bad = 0.3;
    regime.channel.delay_probability = 0.3;
    regime.channel.max_delay_ticks = 3;
    regime.channel.duplicate_probability = 0.15;
    regime.channel.corrupt_probability = 0.1;
    regime.channel.seed = seed * 31 + 7;
    regime.bind = [](const ChannelModel& channel, int round) {
      return channel.Bind(round);
    };
    regimes.push_back(regime);
  }

  // Dead nodes + loss + per-node energy attribution: the liveness mask and
  // the battery ledger's input cross the transport boundary too.
  {
    CompatRegime regime;
    regime.name = "dead_nodes";
    regime.channel.good_loss = 0.15;
    regime.channel.seed = seed * 13 + 5;
    regime.track_node_energy = true;
    regime.bind = [seed](const ChannelModel& channel, int round) {
      return channel.Bind(round, [seed](NodeId n) {
        return (static_cast<uint64_t>(n) + seed) % 9 != 3;
      });
    };
    regimes.push_back(regime);
  }
  return regimes;
}

TEST(RoundCompat, ByteIdenticalToRunRoundLossyAcrossSeedsAndRegimes) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Topology topology = TestTopology(seed);
    Workload workload = TestWorkload(topology, seed);
    CompiledPlan compiled = TestPlan(topology, workload);

    for (const CompatRegime& regime : CompatRegimes(seed)) {
      SCOPED_TRACE(std::string("seed=") + std::to_string(seed) +
                   " regime=" + regime.name);
      ChannelModel channel(regime.channel);
      RetryPolicy retry;
      retry.max_attempts = 10;

      // Round-barrier path.
      RuntimeNetwork round_net(compiled, workload.functions);
      round_net.set_track_node_energy(regime.track_node_energy);
      obs::MetricsRegistry round_metrics;
      round_net.set_metrics(&round_metrics);
      EventTrace round_trace;
      std::string round_bytes;

      // Event-engine path, its own fleet and registry.
      RuntimeNetwork event_net(compiled, workload.functions);
      event_net.set_track_node_energy(regime.track_node_energy);
      obs::MetricsRegistry event_metrics;
      EventNetwork engine(event_net);
      engine.set_metrics(&event_metrics);
      EventTrace event_trace;
      std::string event_bytes;

      for (int round = 0; round < 3; ++round) {
        ReadingGenerator readings(topology.node_count(),
                                  seed * 200 + static_cast<uint64_t>(round));
        LossyLinkModel links = regime.bind(channel, round);

        RuntimeNetwork::LossyResult expected = round_net.RunRoundLossy(
            readings.values(), links, retry, {}, &round_trace);
        round_bytes += FingerprintLossy(expected) + "\n";

        RoundCompatTransport transport(links);
        RuntimeNetwork::LossyResult actual = engine.RunCompatRound(
            readings.values(), transport, retry, {}, &event_trace, round);
        event_bytes += FingerprintLossy(actual) + "\n";
      }

      EXPECT_EQ(round_bytes, event_bytes);
      EXPECT_EQ(round_trace.ToString(), event_trace.ToString());
      EXPECT_EQ(round_metrics.ToJson(), event_metrics.ToJson());
    }
  }
}

TEST(RoundCompat, EventInstrumentationDoesNotPerturbResults) {
  // event.* metrics are observational: attaching them must not change a
  // single output byte.
  const uint64_t seed = 3;
  Topology topology = TestTopology(seed);
  Workload workload = TestWorkload(topology, seed);
  CompiledPlan compiled = TestPlan(topology, workload);
  ChannelOptions channel_options;
  channel_options.good_loss = 0.2;
  channel_options.seed = 77;
  ChannelModel channel(channel_options);
  ReadingGenerator readings(topology.node_count(), 909);

  auto run = [&](bool with_event_metrics, std::string* json) {
    RuntimeNetwork fleet(compiled, workload.functions);
    EventNetwork engine(fleet);
    obs::MetricsRegistry event_metrics;
    if (with_event_metrics) engine.set_event_metrics(&event_metrics);
    LossyLinkModel links = channel.Bind(0);
    RoundCompatTransport transport(links);
    RuntimeNetwork::LossyResult result =
        engine.RunCompatRound(readings.values(), transport);
    if (json != nullptr) *json = event_metrics.ToJson();
    return FingerprintLossy(result);
  };
  std::string instrumented_json;
  EXPECT_EQ(run(false, nullptr), run(true, &instrumented_json));
  EXPECT_NE(instrumented_json.find("event.events_processed"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// 4. Self-healing control loop under the use_event_runtime switch.

TEST(RoundCompat, SelfHealingLoopIsByteIdenticalUnderEventRuntime) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE(std::string("seed=") + std::to_string(seed));
    Topology topology = TestTopology(seed);
    Workload workload = TestWorkload(topology, seed);
    std::vector<NodeId> destinations;
    for (const Task& task : workload.tasks) {
      destinations.push_back(task.destination);
    }
    destinations.push_back(0);  // The base station must never die.
    FaultScheduleOptions fault_options;
    fault_options.rounds = 5;
    fault_options.persistent_link_failures = 2;
    fault_options.node_deaths = 1;
    fault_options.seed = seed * 17 + 3;
    FaultSchedule schedule =
        FaultSchedule::Generate(topology, destinations, fault_options);

    auto run = [&](bool use_event_runtime) {
      SelfHealingOptions options;
      options.use_event_runtime = use_event_runtime;
      SelfHealingRuntime runtime(topology, workload, /*base_station=*/0,
                                 options);
      obs::MetricsRegistry metrics;
      runtime.set_metrics(&metrics);
      EventTrace trace;
      std::ostringstream out;
      for (int round = 0; round < fault_options.rounds; ++round) {
        ReadingGenerator readings(topology.node_count(),
                                  seed * 7 + static_cast<uint64_t>(round));
        LossyLinkModel physical;
        physical.attempt_delivers = [&schedule, round](NodeId from, NodeId to,
                                                       int attempt) {
          return schedule.AttemptDelivers(round, from, to, attempt);
        };
        physical.node_alive = [&schedule, round](NodeId n) {
          return schedule.NodeAliveAt(round, n);
        };
        SelfHealingRoundResult result =
            runtime.RunRound(round, readings.values(), physical, &trace);
        out << "r" << round << " " << FingerprintLossy(result.data) << "\n";
      }
      out << trace.ToString() << metrics.ToJson();
      return out.str();
    };

    EXPECT_EQ(run(false), run(true));
  }
}

// ---------------------------------------------------------------------------
// 5. Pipelined asynchronous execution: overlap, correctness, determinism.

std::string FingerprintPipeline(const EventNetwork::PipelineResult& r) {
  std::ostringstream out;
  out << "in_flight=" << r.max_in_flight << " final=" << r.final_tick
      << " events=" << r.events_processed
      << " cancelled=" << r.retransmit_timers_cancelled << "\n";
  for (size_t t = 0; t < r.timesteps.size(); ++t) {
    const EventNetwork::PipelineResult::Timestep& step = r.timesteps[t];
    out << "t" << t << " attempts=" << step.attempts
        << " deliv=" << step.deliveries << " retx=" << step.retransmissions
        << " dup=" << step.duplicates
        << " abandoned=" << step.messages_abandoned
        << " corrupt=" << step.corrupt_frames
        << " buffered=" << step.buffered_prestart
        << " start=" << step.start_tick << " retire=" << step.retire_tick;
    std::map<NodeId, double> values(step.destination_values.begin(),
                                    step.destination_values.end());
    for (const auto& [d, v] : values) {
      out << " d" << d << "=";
      AppendHex(out, v);
    }
    std::vector<NodeId> incomplete = step.incomplete_destinations;
    std::sort(incomplete.begin(), incomplete.end());
    out << " incomplete=";
    for (NodeId d : incomplete) out << d << ",";
    out << "\n";
  }
  return out.str();
}

/// Per-timestep round oracle: the analytic value every destination must
/// reach regardless of execution schedule.
std::vector<std::unordered_map<NodeId, double>> RoundOracle(
    RuntimeNetwork& fleet,
    const std::vector<std::vector<double>>& readings_per_timestep) {
  std::vector<std::unordered_map<NodeId, double>> oracle;
  for (const std::vector<double>& readings : readings_per_timestep) {
    oracle.push_back(fleet.RunRound(readings).destination_values);
  }
  return oracle;
}

TEST(Pipelined, SequentialScheduleMatchesRoundOracle) {
  const uint64_t seed = 5;
  Topology topology = TestTopology(seed);
  Workload workload = TestWorkload(topology, seed);
  CompiledPlan compiled = TestPlan(topology, workload);
  RuntimeNetwork fleet(compiled, workload.functions);
  EventNetwork engine(fleet);

  std::vector<std::vector<double>> readings_per_timestep;
  for (int t = 0; t < 4; ++t) {
    readings_per_timestep.push_back(
        ReadingGenerator(topology.node_count(),
                         seed * 400 + static_cast<uint64_t>(t))
            .values());
  }

  SimChannelTransport::Options transport_options;
  transport_options.base_hop_latency_ticks = 1;
  SimChannelTransport transport(nullptr, transport_options);

  EventNetwork::PipelineOptions options;
  // Identity clocks and a huge release interval: timestep t+1 starts long
  // after t retired, so the pipeline degenerates to sequential rounds.
  options.timestep_interval_ticks = 4096;
  EventNetwork::PipelineResult result =
      engine.RunPipelined(readings_per_timestep, transport, options);

  ASSERT_EQ(result.timesteps.size(), 4u);
  EXPECT_EQ(result.max_in_flight, 1);
  std::vector<std::unordered_map<NodeId, double>> oracle =
      RoundOracle(fleet, readings_per_timestep);
  for (size_t t = 0; t < result.timesteps.size(); ++t) {
    const auto& step = result.timesteps[t];
    EXPECT_TRUE(step.incomplete_destinations.empty());
    ASSERT_EQ(step.destination_values.size(), oracle[t].size());
    for (const auto& [d, v] : oracle[t]) {
      auto it = step.destination_values.find(d);
      ASSERT_NE(it, step.destination_values.end()) << "d=" << d;
      EXPECT_TRUE(ValuesClose(it->second, v))
          << "t=" << t << " d=" << d << " got " << it->second << " want "
          << v;
    }
    EXPECT_GE(step.start_tick, 0);
    EXPECT_GT(step.retire_tick, step.start_tick);
  }
  // Clean transport: every first attempt is acked, so every retransmit
  // timer armed was cancelled exactly.
  EXPECT_GT(result.retransmit_timers_cancelled, 0u);
}

TEST(Pipelined, DriftOverlapsTimestepsAndPreservesAggregates) {
  const uint64_t seed = 9;
  Topology topology = TestTopology(seed);
  Workload workload = TestWorkload(topology, seed);
  CompiledPlan compiled = TestPlan(topology, workload);
  RuntimeNetwork fleet(compiled, workload.functions);
  EventNetwork engine(fleet);
  obs::MetricsRegistry event_metrics;
  engine.set_event_metrics(&event_metrics);

  std::vector<std::vector<double>> readings_per_timestep;
  for (int t = 0; t < 6; ++t) {
    readings_per_timestep.push_back(
        ReadingGenerator(topology.node_count(),
                         seed * 500 + static_cast<uint64_t>(t))
            .values());
  }

  SimChannelTransport::Options transport_options;
  transport_options.base_hop_latency_ticks = 2;
  SimChannelTransport transport(nullptr, transport_options);

  EventNetwork::PipelineOptions options;
  // Release interval far below one timestep's completion time (multi-hop
  // paths at 2 ticks/hop plus ack round trips), plus drifted clocks: the
  // pipeline must genuinely overlap.
  options.timestep_interval_ticks = 6;
  DriftOptions drift;
  drift.max_skew_ppm = 200000;
  drift.max_offset_ticks = 10;
  drift.seed = seed;
  options.clocks = BuildDriftClocks(topology.node_count(), drift);

  EventNetwork::PipelineResult result =
      engine.RunPipelined(readings_per_timestep, transport, options);

  ASSERT_EQ(result.timesteps.size(), 6u);
  EXPECT_GE(result.max_in_flight, 2)
      << "pipelining must overlap timesteps under drift";
  std::vector<std::unordered_map<NodeId, double>> oracle =
      RoundOracle(fleet, readings_per_timestep);
  int64_t buffered_total = 0;
  for (size_t t = 0; t < result.timesteps.size(); ++t) {
    const auto& step = result.timesteps[t];
    EXPECT_TRUE(step.incomplete_destinations.empty()) << "t=" << t;
    ASSERT_EQ(step.destination_values.size(), oracle[t].size()) << "t=" << t;
    for (const auto& [d, v] : oracle[t]) {
      auto it = step.destination_values.find(d);
      ASSERT_NE(it, step.destination_values.end()) << "t=" << t << " d=" << d;
      EXPECT_TRUE(ValuesClose(it->second, v))
          << "t=" << t << " d=" << d << " got " << it->second << " want "
          << v;
    }
    buffered_total += step.buffered_prestart;
  }
  EXPECT_GE(buffered_total, 0);
  EXPECT_GT(result.events_processed, 0u);
  EXPECT_NE(event_metrics.ToJson().find("event.pipeline_occupancy"),
            std::string::npos);
}

TEST(Pipelined, LossyReplayIsByteStable) {
  const uint64_t seed = 12;
  Topology topology = TestTopology(seed);
  Workload workload = TestWorkload(topology, seed);
  CompiledPlan compiled = TestPlan(topology, workload);

  ChannelOptions channel_options;
  channel_options.good_loss = 0.15;
  channel_options.delay_probability = 0.2;
  channel_options.max_delay_ticks = 2;
  channel_options.duplicate_probability = 0.1;
  channel_options.corrupt_probability = 0.05;
  channel_options.seed = seed * 3 + 1;
  ChannelModel channel(channel_options);

  std::vector<std::vector<double>> readings_per_timestep;
  for (int t = 0; t < 5; ++t) {
    readings_per_timestep.push_back(
        ReadingGenerator(topology.node_count(),
                         seed * 600 + static_cast<uint64_t>(t))
            .values());
  }

  auto run = [&]() {
    RuntimeNetwork fleet(compiled, workload.functions);
    EventNetwork engine(fleet);
    SimChannelTransport::Options transport_options;
    transport_options.base_hop_latency_ticks = 2;
    SimChannelTransport transport(&channel, transport_options);
    EventNetwork::PipelineOptions options;
    options.timestep_interval_ticks = 8;
    options.retry.max_attempts = 10;
    DriftOptions drift;
    drift.max_skew_ppm = 150000;
    drift.max_offset_ticks = 6;
    drift.seed = seed;
    options.clocks = BuildDriftClocks(topology.node_count(), drift);
    return FingerprintPipeline(
        engine.RunPipelined(readings_per_timestep, transport, options));
  };

  std::string first = run();
  std::string second = run();
  EXPECT_EQ(first, second);
  // The lossy regime must actually have exercised recovery machinery for
  // the replay to mean anything.
  EXPECT_NE(first.find("retx="), std::string::npos);
}

}  // namespace
}  // namespace m2m
