#include <gtest/gtest.h>

#include "core/deployment.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

Workload MakeWorkload(const Topology& topology, uint64_t seed) {
  WorkloadSpec spec;
  spec.destination_count = 8;
  spec.sources_per_destination = 6;
  spec.kind = AggregateKind::kWeightedAverage;
  spec.seed = seed;
  return GenerateWorkload(topology, spec);
}

TEST(DeploymentTest, AccumulatesRoundStatistics) {
  Topology topology = MakeGreatDuckIslandLike();
  DeploymentOptions options;
  options.change_probability = 0.3;
  options.seed = 5;
  Deployment deployment(topology, MakeWorkload(topology, 601), {}, options);
  deployment.Run(15);
  const DeploymentReport& report = deployment.report();
  EXPECT_EQ(report.rounds, 15);
  EXPECT_EQ(report.round_energy_mj.count(), 15u);
  EXPECT_GT(report.round_energy_mj.mean(), 0.0);
  EXPECT_GT(report.round_messages.mean(), 0.0);
  EXPECT_EQ(report.workload_changes, 0);  // No churn configured.
}

TEST(DeploymentTest, SuppressionCheaperThanFullRecompute) {
  Topology topology = MakeGreatDuckIslandLike();
  double energies[2];
  for (bool suppression : {false, true}) {
    DeploymentOptions options;
    options.change_probability = 0.1;
    options.use_suppression = suppression;
    options.seed = 6;
    Deployment deployment(topology, MakeWorkload(topology, 602), {},
                          options);
    deployment.Run(10);
    energies[suppression ? 1 : 0] =
        deployment.report().round_energy_mj.mean();
  }
  EXPECT_LT(energies[1], energies[0]);
}

TEST(DeploymentTest, ChurnTriggersIncrementalUpdates) {
  Topology topology = MakeGreatDuckIslandLike();
  DeploymentOptions options;
  options.change_probability = 0.2;
  options.workload_churn_probability = 0.5;
  options.seed = 7;
  Deployment deployment(topology, MakeWorkload(topology, 603), {}, options);
  deployment.Run(20);
  const DeploymentReport& report = deployment.report();
  EXPECT_GT(report.workload_changes, 0);
  EXPECT_GT(report.edges_reused, 0);
  EXPECT_GT(report.nodes_redisseminated, 0);
  EXPECT_GT(report.dissemination_energy_mj, 0.0);
  // Corollary 1 locality: far more edges reused than re-optimized.
  EXPECT_GT(report.edges_reused, 5 * report.edges_reoptimized);
  // The workload actually evolved.
  EXPECT_EQ(deployment.workload().tasks.size(), 8u);
}

TEST(DeploymentTest, FailureSamplingRecordsDelivery) {
  Topology topology = MakeGreatDuckIslandLike();
  DeploymentOptions options;
  options.change_probability = 0.2;
  options.sample_link_failures = true;
  options.seed = 8;
  Deployment deployment(topology, MakeWorkload(topology, 604), {}, options);
  deployment.Run(10);
  const DeploymentReport& report = deployment.report();
  EXPECT_EQ(report.contribution_delivery_pct.count(), 10u);
  EXPECT_GT(report.contribution_delivery_pct.mean(), 0.0);
  EXPECT_LE(report.contribution_delivery_pct.max(), 100.0);
}

TEST(DeploymentTest, ThresholdSuppressionReducesEnergyFurther) {
  Topology topology = MakeGreatDuckIslandLike();
  double means[2];
  for (int i = 0; i < 2; ++i) {
    DeploymentOptions options;
    options.change_probability = 1.0;  // Every reading drifts.
    options.use_suppression = true;
    options.suppression_epsilon = i == 0 ? 0.0 : 3.0;
    options.seed = 11;
    Deployment deployment(topology, MakeWorkload(topology, 607), {},
                          options);
    deployment.Run(10);
    means[i] = deployment.report().round_energy_mj.mean();
  }
  EXPECT_LT(means[1], means[0]);
  EXPECT_GT(means[1], 0.0);
}

TEST(DeploymentTest, DeterministicInSeed) {
  Topology topology = MakeGreatDuckIslandLike();
  double means[2];
  for (int i = 0; i < 2; ++i) {
    DeploymentOptions options;
    options.change_probability = 0.25;
    options.workload_churn_probability = 0.3;
    options.seed = 9;
    Deployment deployment(topology, MakeWorkload(topology, 605), {},
                          options);
    deployment.Run(12);
    means[i] = deployment.report().round_energy_mj.mean();
  }
  EXPECT_DOUBLE_EQ(means[0], means[1]);
}

TEST(DeploymentTest, StepReturnsVerifiedValues) {
  Topology topology = MakeGreatDuckIslandLike();
  DeploymentOptions options;
  options.change_probability = 1.0;
  options.seed = 10;
  Workload workload = MakeWorkload(topology, 606);
  Deployment deployment(topology, workload, {}, options);
  RoundResult result = deployment.Step();
  EXPECT_EQ(result.destination_values.size(), workload.tasks.size());
}

}  // namespace
}  // namespace m2m
