#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "core/system.h"
#include "sim/readings.h"
#include "topology/generator.h"
#include "workload/multi_sensor.h"
#include "workload/workload.h"

namespace m2m {
namespace {

TEST(MultiSensorTest, VirtualNodesCoLocatedWithHosts) {
  Topology base = MakeGreatDuckIslandLike();
  MultiSensorNetwork network(base, {{5}, {5}, {12}});
  const Topology& expanded = network.expanded_topology();
  EXPECT_EQ(expanded.node_count(), base.node_count() + 3);
  EXPECT_EQ(network.extra_sensor_count(), 3);
  // Virtual ids follow the physical ids.
  NodeId v0 = network.sensor_id(0);
  EXPECT_EQ(v0, base.node_count());
  EXPECT_EQ(network.HostOf(v0), 5);
  EXPECT_TRUE(network.IsVirtual(v0));
  EXPECT_FALSE(network.IsVirtual(5));
  // Same position, hence same neighborhood plus the host itself.
  EXPECT_EQ(expanded.position(v0), base.position(5));
  EXPECT_TRUE(expanded.AreNeighbors(v0, 5));
  for (NodeId n : base.neighbors(5)) {
    EXPECT_TRUE(expanded.AreNeighbors(v0, n));
  }
}

TEST(MultiSensorTest, LocalBusLinksIdentified) {
  Topology base = MakeGreatDuckIslandLike();
  MultiSensorNetwork network(base, {{5}, {5}, {12}});
  NodeId v0 = network.sensor_id(0);
  NodeId v1 = network.sensor_id(1);
  NodeId v2 = network.sensor_id(2);
  EXPECT_TRUE(network.IsLocalBusLink(v0, 5));
  EXPECT_TRUE(network.IsLocalBusLink(5, v0));
  EXPECT_TRUE(network.IsLocalBusLink(v0, v1));  // Same host.
  EXPECT_FALSE(network.IsLocalBusLink(v0, v2));
  EXPECT_FALSE(network.IsLocalBusLink(5, 12));
  EXPECT_FALSE(network.IsLocalBusLink(v0, 12));
}

// A destination aggregating two sensors hosted on the SAME node: the plan
// routes both readings, the local-bus hop is free, and the result is exact.
TEST(MultiSensorTest, TwoReadingsPerNodeEndToEnd) {
  Topology base = MakeGreatDuckIslandLike();
  MultiSensorNetwork network(base, {{5}, {12}});
  NodeId light_on_5 = network.sensor_id(0);     // Extra sensor on node 5.
  NodeId moisture_on_12 = network.sensor_id(1);  // Extra sensor on node 12.

  Workload workload;
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedAverage;
  // Node 30 aggregates: node 5's own reading, 5's extra light sensor,
  // and node 12's extra moisture sensor.
  spec.weights = {{5, 1.0}, {light_on_5, 2.0}, {moisture_on_12, 0.5}};
  workload.tasks.push_back(Task{30, {5, light_on_5, moisture_on_12}});
  workload.specs.push_back(spec);
  workload.RebuildFunctions();

  System system(network.expanded_topology(), workload);
  PlanExecutor executor = system.MakeExecutor();
  executor.set_free_link([&network](NodeId a, NodeId b) {
    return network.IsLocalBusLink(a, b);
  });

  ReadingGenerator readings(network.expanded_topology().node_count(), 61);
  RoundResult result = executor.RunRound(readings.values());
  std::unordered_map<NodeId, double> inputs;
  for (NodeId s : workload.tasks[0].sources) inputs[s] = readings.values()[s];
  EXPECT_NEAR(result.destination_values.at(30),
              workload.functions.Get(30).Direct(inputs), 1e-9);
  EXPECT_GT(result.energy_mj, 0.0);
}

TEST(MultiSensorTest, LocalBusHopsAreFree) {
  // Destination co-located on the same host as the sensor: all hops are
  // local bus, radio energy is zero.
  Topology base = MakeGreatDuckIslandLike();
  MultiSensorNetwork network(base, {{5}});
  NodeId sensor = network.sensor_id(0);

  Workload workload;
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{sensor, 1.0}};
  workload.tasks.push_back(Task{5, {sensor}});
  workload.specs.push_back(spec);
  workload.RebuildFunctions();

  System system(network.expanded_topology(), workload);
  PlanExecutor with_bus = system.MakeExecutor();
  with_bus.set_free_link([&network](NodeId a, NodeId b) {
    return network.IsLocalBusLink(a, b);
  });
  PlanExecutor without_bus = system.MakeExecutor();

  ReadingGenerator readings(network.expanded_topology().node_count(), 62);
  RoundResult free_result = with_bus.RunRound(readings.values());
  RoundResult charged_result = without_bus.RunRound(readings.values());
  EXPECT_DOUBLE_EQ(free_result.energy_mj, 0.0);
  EXPECT_GT(charged_result.energy_mj, 0.0);
  EXPECT_NEAR(free_result.destination_values.at(5),
              readings.values()[sensor], 1e-9);
}

// The paper's other lifted assumption: "each node can be the destination
// of at most one aggregation function, though this assumption is simple to
// lift". A second function at the same physical node runs at a co-located
// virtual destination.
TEST(MultiSensorTest, TwoFunctionsAtOneDestinationNode) {
  Topology base = MakeGreatDuckIslandLike();
  MultiSensorNetwork network(base, {{30}});
  NodeId second_slot = network.sensor_id(0);  // Virtual node hosted at 30.

  Workload workload;
  FunctionSpec avg;
  avg.kind = AggregateKind::kWeightedAverage;
  avg.weights = {{5, 1.0}, {12, 1.0}};
  workload.tasks.push_back(Task{30, {5, 12}});
  workload.specs.push_back(avg);
  FunctionSpec max_fn;
  max_fn.kind = AggregateKind::kMax;
  max_fn.weights = {{5, 1.0}, {12, 1.0}, {7, 1.0}};
  workload.tasks.push_back(Task{second_slot, {5, 12, 7}});
  workload.specs.push_back(max_fn);
  workload.RebuildFunctions();

  System system(network.expanded_topology(), workload);
  PlanExecutor executor = system.MakeExecutor();
  executor.set_free_link([&network](NodeId a, NodeId b) {
    return network.IsLocalBusLink(a, b);
  });
  ReadingGenerator readings(network.expanded_topology().node_count(), 65);
  RoundResult result = executor.RunRound(readings.values());
  // Both functions arrive at the same physical mote.
  double expected_avg =
      (readings.values()[5] + readings.values()[12]) / 2.0;
  double expected_max = std::max(
      {readings.values()[5], readings.values()[12], readings.values()[7]});
  EXPECT_NEAR(result.destination_values.at(30), expected_avg, 1e-9);
  EXPECT_NEAR(result.destination_values.at(second_slot), expected_max,
              1e-9);
}

TEST(MultiSensorTest, GeneratedWorkloadOverExpandedTopology) {
  // The whole pipeline runs with a mix of physical and virtual sources.
  Topology base = MakeGreatDuckIslandLike();
  std::vector<SensorSpec> sensors;
  for (NodeId host = 0; host < 20; host += 2) sensors.push_back({host});
  MultiSensorNetwork network(base, sensors);
  WorkloadSpec spec;
  spec.destination_count = 8;
  spec.sources_per_destination = 6;
  spec.seed = 63;
  Workload workload =
      GenerateWorkload(network.expanded_topology(), spec);
  System system(network.expanded_topology(), workload);
  PlanExecutor executor = system.MakeExecutor();
  executor.set_free_link([&network](NodeId a, NodeId b) {
    return network.IsLocalBusLink(a, b);
  });
  ReadingGenerator readings(network.expanded_topology().node_count(), 64);
  RoundResult result = executor.RunRound(readings.values());
  EXPECT_EQ(result.destination_values.size(), workload.tasks.size());
}

}  // namespace
}  // namespace m2m
