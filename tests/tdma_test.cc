#include <memory>

#include <gtest/gtest.h>

#include "core/system.h"
#include "plan/tdma.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

System MakeSystem(uint64_t seed, int destinations, int sources,
                  PlanStrategy strategy = PlanStrategy::kOptimal) {
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = destinations;
  spec.sources_per_destination = sources;
  spec.seed = seed;
  Workload workload = GenerateWorkload(topology, spec);
  SystemOptions options;
  options.planner.strategy = strategy;
  return System(topology, workload, options);
}

TEST(TdmaTest, ScheduleCoversEveryHopExactlyOnce) {
  System system = MakeSystem(21, 8, 6);
  TdmaSchedule schedule =
      BuildTdmaSchedule(system.compiled(), system.topology());
  int64_t expected_hops = 0;
  for (const MessageSchedule::Message& m :
       system.compiled().schedule().messages()) {
    expected_hops += system.forest().edges()[m.edge_index].hop_length();
  }
  EXPECT_EQ(static_cast<int64_t>(schedule.assignments.size()),
            expected_hops);
  EXPECT_GT(schedule.slot_count, 0);
}

TEST(TdmaTest, ValidatorAcceptsBuiltSchedules) {
  for (uint64_t seed : {22u, 23u, 24u}) {
    System system = MakeSystem(seed, 10, 8);
    TdmaSchedule schedule =
        BuildTdmaSchedule(system.compiled(), system.topology());
    EXPECT_TRUE(
        ValidateTdmaSchedule(schedule, system.compiled(), system.topology()));
  }
}

TEST(TdmaTest, ValidatorRejectsInterferenceViolation) {
  System system = MakeSystem(25, 8, 6);
  TdmaSchedule schedule =
      BuildTdmaSchedule(system.compiled(), system.topology());
  ASSERT_GE(schedule.assignments.size(), 2u);
  // Force two assignments that share a sender into the same slot.
  TdmaSchedule corrupted = schedule;
  corrupted.assignments[1].slot = corrupted.assignments[0].slot;
  corrupted.assignments[1].sender = corrupted.assignments[0].sender;
  EXPECT_FALSE(ValidateTdmaSchedule(corrupted, system.compiled(),
                                    system.topology()));
}

TEST(TdmaTest, ListeningFarBelowIdleListening) {
  System system = MakeSystem(26, 12, 10);
  TdmaSchedule schedule =
      BuildTdmaSchedule(system.compiled(), system.topology());
  // Scheduled listening = one slot per received hop; idle listening = every
  // node awake for every slot. The whole point of the schedule.
  EXPECT_LT(schedule.total_listen_slots(),
            schedule.unscheduled_listen_slots() / 4);
}

TEST(TdmaTest, SlotCountAtLeastCriticalPath) {
  // Serial line: one destination aggregating across the whole line — slots
  // must be at least the longest chain of dependent hops.
  std::vector<Point> positions;
  for (int i = 0; i < 6; ++i) positions.push_back({i * 40.0, 0.0});
  Topology line(std::move(positions), 50.0);
  Workload wl;
  wl.tasks.push_back(Task{5, {0}});
  FunctionSpec fn;
  fn.kind = AggregateKind::kWeightedSum;
  fn.weights = {{0, 1.0}};
  wl.specs.push_back(fn);
  wl.RebuildFunctions();
  System system(line, wl);
  TdmaSchedule schedule = BuildTdmaSchedule(system.compiled(), line);
  EXPECT_GE(schedule.slot_count, 5);  // Five serial hops from 0 to 5.
}

TEST(TdmaTest, SpatialReuseKeepsSlotsBelowHopCount) {
  // On a large workload many hops are interference-disjoint, so the
  // schedule should pack multiple transmissions per slot.
  System system = MakeSystem(27, 14, 12);
  TdmaSchedule schedule =
      BuildTdmaSchedule(system.compiled(), system.topology());
  EXPECT_LT(schedule.slot_count,
            static_cast<int>(schedule.assignments.size()));
}

TEST(TdmaTest, WorksForBaselinePlans) {
  for (PlanStrategy strategy :
       {PlanStrategy::kMulticastOnly, PlanStrategy::kAggregationOnly}) {
    System system = MakeSystem(28, 8, 6, strategy);
    TdmaSchedule schedule =
        BuildTdmaSchedule(system.compiled(), system.topology());
    EXPECT_TRUE(
        ValidateTdmaSchedule(schedule, system.compiled(), system.topology()));
  }
}

}  // namespace
}  // namespace m2m
