#include <memory>

#include <gtest/gtest.h>

#include "core/system.h"
#include "sim/readings.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

WorkloadSpec SuppressionSpec(uint64_t seed = 81) {
  WorkloadSpec spec;
  spec.destination_count = 10;
  spec.sources_per_destination = 8;
  spec.kind = AggregateKind::kWeightedAverage;  // Linear-delta capable.
  spec.seed = seed;
  return spec;
}

class SuppressionTest : public ::testing::Test {
 protected:
  SuppressionTest()
      : topology_(MakeGreatDuckIslandLike()),
        workload_(GenerateWorkload(topology_, SuppressionSpec())),
        system_(topology_, workload_) {}

  Topology topology_;
  Workload workload_;
  System system_;
};

TEST_F(SuppressionTest, NoChangeNoTraffic) {
  PlanExecutor executor = system_.MakeExecutor();
  ReadingGenerator gen(topology_.node_count(), 1);
  executor.InitializeState(gen.values());
  std::vector<bool> changed(topology_.node_count(), false);
  RoundResult result = executor.RunSuppressedRound(gen.values(), changed,
                                                   OverridePolicy::kNone);
  EXPECT_EQ(result.energy_mj, 0.0);
  EXPECT_EQ(result.messages, 0);
  EXPECT_EQ(result.units, 0);
}

TEST_F(SuppressionTest, AllChangedMatchesFullRoundCost) {
  PlanExecutor executor = system_.MakeExecutor();
  ReadingGenerator gen(topology_.node_count(), 2);
  executor.InitializeState(gen.values());
  gen.Advance(1.0);
  std::vector<bool> changed(topology_.node_count(), true);
  RoundResult suppressed = executor.RunSuppressedRound(
      gen.values(), changed, OverridePolicy::kNone);
  RoundResult full = executor.RunRound(gen.values());
  EXPECT_EQ(suppressed.messages, full.messages);
  EXPECT_EQ(suppressed.units, full.units);
  EXPECT_DOUBLE_EQ(suppressed.energy_mj, full.energy_mj);
}

TEST_F(SuppressionTest, MaintainedAggregatesTrackTruth) {
  PlanExecutor executor = system_.MakeExecutor();
  ReadingGenerator gen(topology_.node_count(), 3);
  executor.InitializeState(gen.values());
  for (int round = 0; round < 20; ++round) {
    std::vector<bool> changed = gen.Advance(0.15);
    RoundResult result = executor.RunSuppressedRound(
        gen.values(), changed, OverridePolicy::kNone);
    for (const Task& task : workload_.tasks) {
      std::unordered_map<NodeId, double> inputs;
      for (NodeId s : task.sources) inputs[s] = gen.values()[s];
      EXPECT_NEAR(result.destination_values.at(task.destination),
                  workload_.functions.Get(task.destination).Direct(inputs),
                  1e-6);
    }
  }
}

TEST_F(SuppressionTest, PartialChangeCostsLessThanFull) {
  PlanExecutor executor = system_.MakeExecutor();
  ReadingGenerator gen(topology_.node_count(), 4);
  executor.InitializeState(gen.values());
  RoundResult full = executor.RunRound(gen.values());
  std::vector<bool> changed = gen.Advance(0.1);
  RoundResult suppressed = executor.RunSuppressedRound(
      gen.values(), changed, OverridePolicy::kNone);
  EXPECT_LT(suppressed.energy_mj, full.energy_mj);
}

TEST_F(SuppressionTest, SuppressedNeverExceedsFullWithoutOverride) {
  PlanExecutor executor = system_.MakeExecutor();
  ReadingGenerator gen(topology_.node_count(), 5);
  executor.InitializeState(gen.values());
  RoundResult full = executor.RunRound(gen.values());
  for (double p : {0.05, 0.3, 0.7}) {
    std::vector<bool> changed = gen.Advance(p);
    RoundResult suppressed = executor.RunSuppressedRound(
        gen.values(), changed, OverridePolicy::kNone);
    EXPECT_LE(suppressed.energy_mj, full.energy_mj + 1e-9) << "p=" << p;
  }
}

TEST_F(SuppressionTest, OverridePoliciesKeepAggregatesCorrect) {
  for (OverridePolicy policy :
       {OverridePolicy::kConservative, OverridePolicy::kMedium,
        OverridePolicy::kAggressive}) {
    PlanExecutor executor = system_.MakeExecutor();
    ReadingGenerator gen(topology_.node_count(), 6);
    executor.InitializeState(gen.values());
    for (int round = 0; round < 10; ++round) {
      std::vector<bool> changed = gen.Advance(0.1);
      RoundResult result =
          executor.RunSuppressedRound(gen.values(), changed, policy);
      for (const Task& task : workload_.tasks) {
        std::unordered_map<NodeId, double> inputs;
        for (NodeId s : task.sources) inputs[s] = gen.values()[s];
        EXPECT_NEAR(result.destination_values.at(task.destination),
                    workload_.functions.Get(task.destination).Direct(inputs),
                    1e-6)
            << ToString(policy);
      }
    }
  }
}

TEST_F(SuppressionTest, AggressiveOverridesMostOften) {
  // Aggressive judges values in isolation with the loosest threshold, so it
  // overrides at least as often as the judicious conservative policy and
  // the tighter-threshold medium policy. (Conservative and medium are not
  // mutually ordered: they restrict different dimensions.)
  int64_t counts[3] = {0, 0, 0};
  OverridePolicy policies[3] = {OverridePolicy::kConservative,
                                OverridePolicy::kMedium,
                                OverridePolicy::kAggressive};
  for (int i = 0; i < 3; ++i) {
    PlanExecutor executor = system_.MakeExecutor();
    ReadingGenerator gen(topology_.node_count(), 7);
    executor.InitializeState(gen.values());
    for (int round = 0; round < 10; ++round) {
      std::vector<bool> changed = gen.Advance(0.1);
      counts[i] += executor
                       .RunSuppressedRound(gen.values(), changed, policies[i])
                       .overrides;
    }
  }
  EXPECT_LE(counts[0], counts[2]);
  EXPECT_LE(counts[1], counts[2]);
  EXPECT_GT(counts[2], 0);
}

TEST_F(SuppressionTest, OverrideCanSaveEnergyAtLowChangeRates) {
  // With few changes, a changed value that the default plan would fold into
  // several single-contribution partials is cheaper to forward raw.
  double none_total = 0.0;
  double aggressive_total = 0.0;
  for (uint64_t seed : {8u, 9u, 10u, 11u}) {
    for (OverridePolicy policy :
         {OverridePolicy::kNone, OverridePolicy::kAggressive}) {
      PlanExecutor executor = system_.MakeExecutor();
      ReadingGenerator gen(topology_.node_count(), seed);
      executor.InitializeState(gen.values());
      double total = 0.0;
      for (int round = 0; round < 10; ++round) {
        std::vector<bool> changed = gen.Advance(0.05);
        total += executor.RunSuppressedRound(gen.values(), changed, policy)
                     .energy_mj;
      }
      (policy == OverridePolicy::kNone ? none_total : aggressive_total) +=
          total;
    }
  }
  EXPECT_LT(aggressive_total, none_total);
}

TEST_F(SuppressionTest, ReplicatedPreAggKeepsAggregatesCorrect) {
  PlanExecutor executor = system_.MakeExecutor();
  ReadingGenerator gen(topology_.node_count(), 31);
  executor.InitializeState(gen.values());
  for (int round = 0; round < 10; ++round) {
    std::vector<bool> changed = gen.Advance(0.2);
    RoundResult result = executor.RunSuppressedRound(
        gen.values(), changed, OverridePolicy::kAggressive,
        /*replicated_preagg=*/true);
    for (const Task& task : workload_.tasks) {
      std::unordered_map<NodeId, double> inputs;
      for (NodeId s : task.sources) inputs[s] = gen.values()[s];
      EXPECT_NEAR(result.destination_values.at(task.destination),
                  workload_.functions.Get(task.destination).Direct(inputs),
                  1e-6);
    }
  }
}

TEST_F(SuppressionTest, ReplicationCapsAggressiveDownsideAtHighChange) {
  // At high change probability, an overridden raw value that can still be
  // folded downstream costs no more than one that must multicast to every
  // destination.
  double sticky = 0.0;
  double replicated = 0.0;
  for (bool use_replication : {false, true}) {
    PlanExecutor executor = system_.MakeExecutor();
    ReadingGenerator gen(topology_.node_count(), 32);
    executor.InitializeState(gen.values());
    double total = 0.0;
    for (int round = 0; round < 10; ++round) {
      std::vector<bool> changed = gen.Advance(0.5);
      total += executor
                   .RunSuppressedRound(gen.values(), changed,
                                       OverridePolicy::kAggressive,
                                       use_replication)
                   .energy_mj;
    }
    (use_replication ? replicated : sticky) = total;
  }
  EXPECT_LE(replicated, sticky + 1e-9);
}

TEST_F(SuppressionTest, ReplicatedEntriesCountedAndDeterministic) {
  PlanExecutor a = system_.MakeExecutor();
  PlanExecutor b = system_.MakeExecutor();
  EXPECT_GT(a.CountReplicatedPreAggEntries(), 0);
  EXPECT_EQ(a.CountReplicatedPreAggEntries(),
            b.CountReplicatedPreAggEntries());
}

TEST_F(SuppressionTest, ThresholdSuppressionStaysWithinBound) {
  PlanExecutor executor = system_.MakeExecutor();
  ReadingGenerator gen(topology_.node_count(), 21, /*step_stddev=*/1.0);
  executor.InitializeState(gen.values());
  const double epsilon = 1.5;
  for (int round = 0; round < 15; ++round) {
    gen.Advance(1.0);
    RoundResult result = executor.RunThresholdSuppressedRound(
        gen.values(), epsilon, OverridePolicy::kNone);
    // The executor CHECKs the bound internally; assert the observed error
    // respects the loosest per-destination bound too.
    double worst_bound = 0.0;
    for (const Task& task : workload_.tasks) {
      worst_bound = std::max(worst_bound,
                             workload_.functions.Get(task.destination)
                                 .SuppressionErrorBound(epsilon));
    }
    EXPECT_LE(result.max_abs_error, worst_bound + 1e-9);
  }
}

TEST_F(SuppressionTest, LargerThresholdTransmitsLess) {
  double tight_energy = 0.0;
  double loose_energy = 0.0;
  for (double epsilon : {0.5, 4.0}) {
    PlanExecutor executor = system_.MakeExecutor();
    ReadingGenerator gen(topology_.node_count(), 22, /*step_stddev=*/1.0);
    executor.InitializeState(gen.values());
    double total = 0.0;
    for (int round = 0; round < 10; ++round) {
      gen.Advance(1.0);
      total += executor
                   .RunThresholdSuppressedRound(gen.values(), epsilon,
                                                OverridePolicy::kNone)
                   .energy_mj;
    }
    (epsilon < 1.0 ? tight_energy : loose_energy) = total;
  }
  EXPECT_LT(loose_energy, tight_energy);
  EXPECT_GT(tight_energy, 0.0);
}

TEST_F(SuppressionTest, ZeroThresholdIsExact) {
  PlanExecutor executor = system_.MakeExecutor();
  ReadingGenerator gen(topology_.node_count(), 23);
  executor.InitializeState(gen.values());
  gen.Advance(0.3);
  RoundResult result = executor.RunThresholdSuppressedRound(
      gen.values(), 0.0, OverridePolicy::kNone);
  EXPECT_LT(result.max_abs_error, 1e-6);
  for (const Task& task : workload_.tasks) {
    std::unordered_map<NodeId, double> inputs;
    for (NodeId s : task.sources) inputs[s] = gen.values()[s];
    EXPECT_NEAR(result.destination_values.at(task.destination),
                workload_.functions.Get(task.destination).Direct(inputs),
                1e-6);
  }
}

TEST_F(SuppressionTest, RequiresInitializeState) {
  PlanExecutor executor = system_.MakeExecutor();
  std::vector<double> readings(topology_.node_count(), 1.0);
  std::vector<bool> changed(topology_.node_count(), false);
  EXPECT_DEATH(executor.RunSuppressedRound(readings, changed,
                                           OverridePolicy::kNone),
               "InitializeState");
}

TEST(SuppressionRequirementsTest, NonLinearFunctionsRejected) {
  Topology topo = MakeGreatDuckIslandLike();
  WorkloadSpec spec = SuppressionSpec();
  spec.kind = AggregateKind::kMax;
  Workload wl = GenerateWorkload(topo, spec);
  System system(topo, wl);
  PlanExecutor executor = system.MakeExecutor();
  ReadingGenerator gen(topo.node_count(), 12);
  executor.InitializeState(gen.values());
  std::vector<bool> changed(topo.node_count(), false);
  EXPECT_DEATH(executor.RunSuppressedRound(gen.values(), changed,
                                           OverridePolicy::kNone),
               "linear-delta");
}

}  // namespace
}  // namespace m2m
