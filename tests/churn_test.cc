#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "fault_test_util.h"
#include "lifecycle/admission.h"
#include "lifecycle/catalog.h"
#include "lifecycle/churn_schedule.h"
#include "lifecycle/lifecycle.h"
#include "obs/metrics.h"
#include "plan/consistency.h"
#include "plan/dissemination.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "plan/serialization.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "sim/base_station.h"
#include "sim/fault_schedule.h"
#include "sim/readings.h"
#include "sim/self_healing.h"
#include "topology/generator.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {
namespace {

using fault_test::Destinations;

Workload InitialWorkload(const Topology& topology, uint64_t seed) {
  WorkloadSpec spec;
  spec.destination_count = 5;
  spec.sources_per_destination = 5;
  spec.max_hops = 4;
  spec.seed = seed;
  return GenerateWorkload(topology, spec);
}

/// From-scratch oracle: plan + compile the catalog's workload with the same
/// options and epoch the manager uses, and encode every node image.
std::vector<std::vector<uint8_t>> FromScratchImages(
    const PathSystem& paths, const QueryCatalog& catalog,
    std::optional<GlobalPlan>* plan_out) {
  Workload workload = catalog.ToWorkload();
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(
      plan, workload.functions, MergePolicy::kGreedyMergePerEdge,
      static_cast<uint32_t>(catalog.version()));
  std::vector<std::vector<uint8_t>> images =
      EncodeAllNodeStates(compiled, workload.functions);
  if (plan_out != nullptr) plan_out->emplace(std::move(plan));
  return images;
}

/// Everything a rejection must leave untouched.
struct ManagerSnapshot {
  int64_t catalog_version;
  int catalog_size;
  std::vector<std::vector<uint8_t>> images;
  std::vector<Task> tasks;
};

ManagerSnapshot Capture(const QueryLifecycleManager& manager) {
  return ManagerSnapshot{manager.catalog().version(),
                         manager.catalog().size(), manager.images(),
                         manager.workload().tasks};
}

void ExpectUnchanged(const ManagerSnapshot& before,
                     const QueryLifecycleManager& manager) {
  EXPECT_EQ(before.catalog_version, manager.catalog().version());
  EXPECT_EQ(before.catalog_size, manager.catalog().size());
  EXPECT_EQ(before.images, manager.images());
  ASSERT_EQ(before.tasks.size(), manager.workload().tasks.size());
  for (size_t i = 0; i < before.tasks.size(); ++i) {
    EXPECT_EQ(before.tasks[i].destination,
              manager.workload().tasks[i].destination);
    EXPECT_EQ(before.tasks[i].sources, manager.workload().tasks[i].sources);
  }
}

/// A destination id no current query serves (and not the base station).
NodeId UnservedDestination(const Topology& topology,
                           const QueryCatalog& catalog, NodeId base) {
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (n != base && !catalog.Contains(n)) return n;
  }
  M2M_CHECK(false) << "no unserved destination";
}

/// A source the given query does not yet use.
NodeId AddableSource(const Topology& topology, const QueryDefinition& query) {
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (n != query.destination && !query.HasSource(n)) return n;
  }
  M2M_CHECK(false) << "no addable source";
}

FunctionSpec SpecOver(const std::vector<NodeId>& sources) {
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedAverage;
  double weight = 1.0;
  for (NodeId source : sources) {
    spec.weights.emplace_back(source, weight);
    weight += 0.25;
  }
  return spec;
}

// --- The tentpole differential: after ANY admit/retire/modify sequence,
// the live plan is byte-identical to a from-scratch compile of the final
// workload, and every incremental replan touched only Corollary-1-predicted
// edges. 20 seeds.
class ChurnDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnDifferential, IncrementalEqualsFromScratchAfterEveryMutation) {
  const uint64_t seed = GetParam();
  Topology topology = MakeGreatDuckIslandLike();
  Workload initial = InitialWorkload(topology, seed * 13 + 7);
  NodeId base = PickBaseStation(topology);

  QueryLifecycleManager manager(topology, initial, base);
  ChurnScheduleOptions churn_options;
  churn_options.rounds = 10;
  churn_options.admissions = 3;
  churn_options.retirements = 2;
  churn_options.source_adds = 3;
  churn_options.source_removes = 2;
  churn_options.seed = seed;
  ChurnSchedule schedule =
      ChurnSchedule::Generate(topology, initial, {base}, churn_options);

  int admitted = 0;
  for (const ChurnEvent& event : schedule.events()) {
    MutationResult result = ApplyChurnEvent(manager, event);
    if (!result.decision.admitted) continue;
    ++admitted;

    // Corollary 1 accounting: the edges the plan actually changed on are a
    // subset of the predicted perturbation set for this workload delta.
    for (const DirectedEdge& edge : result.divergent_edges) {
      EXPECT_TRUE(std::binary_search(result.predicted_edges.begin(),
                                     result.predicted_edges.end(), edge))
          << "seed " << seed << ": edge " << edge.tail << "->" << edge.head
          << " outside the predicted set";
    }

    // Differential: incremental == from-scratch, down to the wire bytes.
    std::optional<GlobalPlan> fresh;
    std::vector<std::vector<uint8_t>> oracle_images =
        FromScratchImages(manager.paths(), manager.catalog(), &fresh);
    std::vector<std::string> divergence =
        FindPlanDivergence(manager.plan(), *fresh);
    EXPECT_TRUE(divergence.empty())
        << "seed " << seed << ": " << divergence.front();
    EXPECT_EQ(manager.images(), oracle_images) << "seed " << seed;
    EXPECT_TRUE(ValidatePlanConsistency(manager.plan())) << "seed " << seed;
  }
  EXPECT_GT(admitted, 0) << "seed " << seed;

  // Replay determinism: the same schedule against a fresh manager lands on
  // byte-identical state.
  QueryLifecycleManager replay(topology, initial, base);
  for (const ChurnEvent& event : schedule.events()) {
    ApplyChurnEvent(replay, event);
  }
  EXPECT_EQ(manager.catalog().version(), replay.catalog().version());
  EXPECT_EQ(manager.images(), replay.images()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, ChurnDifferential,
                         ::testing::Range<uint64_t>(1, 21));

// --- Churn composed with failures: the lifecycle manager drives a live
// self-healing runtime while a fault schedule kills nodes and links. The
// runtime must converge to the from-scratch plan of the FINAL workload over
// the TRUE surviving topology, and replay byte-identically. 20 seeds.
class ChurnWithFaults : public ::testing::TestWithParam<uint64_t> {};

struct ChurnFaultRun {
  std::string trace;
  std::vector<std::vector<uint8_t>> manager_images;
  int64_t manager_version = 0;
  std::vector<NodeId> believed_dead;
  int final_pending_installs = -1;
  std::vector<NodeId> final_incomplete;
  Workload final_workload;
  std::optional<GlobalPlan> final_plan;
};

ChurnFaultRun RunChurnWithFaults(const Topology& topology,
                                 const Workload& initial,
                                 const ChurnSchedule& churn,
                                 const FaultSchedule& faults, NodeId base,
                                 uint64_t readings_seed, int total_rounds) {
  EventTrace trace;
  trace.Append(faults.Describe());
  trace.Append(churn.Describe());

  SelfHealingRuntime runtime(topology, initial, base, SelfHealingOptions{});
  QueryLifecycleManager manager(topology, initial, base);
  manager.AttachRuntime(&runtime);

  ChurnFaultRun run;
  for (int round = 0; round < total_rounds; ++round) {
    for (const ChurnEvent& event : churn.EventsAt(round)) {
      MutationResult result = ApplyChurnEvent(manager, event);
      std::ostringstream line;
      line << "r" << round << " churn " << ToString(event.type)
           << " d" << event.destination << " -> "
           << (result.decision.admitted
                   ? "admitted"
                   : ToString(result.decision.reason));
      trace.Append(line.str());
    }

    ReadingGenerator readings(topology.node_count(),
                              readings_seed + static_cast<uint64_t>(round));
    LossyLinkModel physical;
    physical.attempt_delivers = [&faults, round](NodeId from, NodeId to,
                                                 int attempt) {
      return faults.AttemptDelivers(round, from, to, attempt);
    };
    physical.node_alive = [&faults, round](NodeId n) {
      return faults.NodeAliveAt(round, n);
    };
    SelfHealingRoundResult result =
        runtime.RunRound(round, readings.values(), physical, &trace);
    if (round == total_rounds - 1) {
      run.final_pending_installs = result.pending_installs;
      run.final_incomplete = result.data.incomplete_destinations;
    }
  }
  run.trace = trace.ToString();
  run.manager_images = manager.images();
  run.manager_version = manager.catalog().version();
  run.believed_dead = runtime.ledger().believed_dead();
  run.final_workload = runtime.current_workload();
  run.final_plan = runtime.plan();
  return run;
}

TEST_P(ChurnWithFaults, RuntimeConvergesToFinalWorkloadUnderFailures) {
  const uint64_t seed = GetParam();
  Topology topology = MakeGreatDuckIslandLike();
  Workload initial = InitialWorkload(topology, seed * 29 + 11);
  NodeId base = PickBaseStation(topology);

  ChurnScheduleOptions churn_options;
  churn_options.rounds = 5;
  churn_options.seed = seed;
  ChurnSchedule churn =
      ChurnSchedule::Generate(topology, initial, {base}, churn_options);

  // Protect the initial destinations, the base station, and every node the
  // churn schedule references: a scheduled mutation must never race a node
  // death (an admitted query with a dead destination is a different test).
  std::vector<NodeId> referenced = churn.ReferencedNodes();
  std::set<NodeId> protect(referenced.begin(), referenced.end());
  for (NodeId d : Destinations(initial)) protect.insert(d);
  protect.insert(base);
  FaultScheduleOptions fault_options;
  fault_options.rounds = 5;
  fault_options.transient_link_fraction = 0.05;
  fault_options.transient_drop_probability = 0.5;
  fault_options.persistent_link_failures = 1;
  fault_options.node_deaths = 1;
  fault_options.seed = seed + 500;
  FaultSchedule faults = FaultSchedule::Generate(
      topology, {protect.begin(), protect.end()}, fault_options);

  const int total_rounds = fault_options.rounds + 12;
  ChurnFaultRun run = RunChurnWithFaults(topology, initial, churn, faults,
                                         base, seed + 2000, total_rounds);

  // Churn actually happened and the control plane drained.
  EXPECT_GT(run.manager_version, 0) << "seed " << seed;
  EXPECT_EQ(run.final_pending_installs, 0) << "seed " << seed;
  EXPECT_TRUE(run.final_incomplete.empty())
      << "seed " << seed << ": destination " << run.final_incomplete.front()
      << " did not converge";

  // The runtime detected exactly the schedule's deaths...
  std::vector<NodeId> true_dead = faults.DeadNodesThrough(total_rounds);
  EXPECT_EQ(run.believed_dead, true_dead) << "seed " << seed;

  // ...and its live plan equals a from-scratch plan of the FINAL churned
  // workload (believed-dead sources pruned) over the true surviving
  // topology — churn and failure recovery compose.
  Workload expected = run.final_workload;
  Topology masked = Topology::WithFailures(
      topology, faults.FailedLinksThrough(total_rounds), true_dead);
  PathSystem masked_paths(masked);
  GlobalPlan oracle = BuildPlan(
      std::make_shared<MulticastForest>(masked_paths, expected.tasks),
      expected.functions);
  ASSERT_TRUE(run.final_plan.has_value());
  std::vector<std::string> divergence =
      FindPlanDivergence(*run.final_plan, oracle);
  EXPECT_TRUE(divergence.empty())
      << "seed " << seed << ": " << divergence.front();

  // The runtime's final workload serves every catalog query that has a
  // believed-alive source, with dead sources pruned.
  ChurnFaultRun replay = RunChurnWithFaults(topology, initial, churn, faults,
                                            base, seed + 2000, total_rounds);
  EXPECT_EQ(run.trace, replay.trace) << "seed " << seed;
  EXPECT_EQ(run.manager_images, replay.manager_images) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, ChurnWithFaults,
                         ::testing::Range<uint64_t>(1, 21));

// --- Admission control: budget rejections are typed and provably leave
// the catalog, plan, and wire images untouched.

class AdmissionControlTest : public ::testing::Test {
 protected:
  AdmissionControlTest()
      : topology_(MakeGreatDuckIslandLike()),
        initial_(InitialWorkload(topology_, 41)),
        base_(PickBaseStation(topology_)) {}

  Topology topology_;
  Workload initial_;
  NodeId base_;
};

TEST_F(AdmissionControlTest, StateBoundRejectionMutatesNothing) {
  // A state-bound factor far below the Theorem 3 constant: any candidate
  // plan's total table state exceeds it, so the admission layer must
  // reject the query that would blow the budget.
  LifecycleOptions options;
  options.limits.state_bound_factor = 0.01;
  QueryLifecycleManager manager(topology_, initial_, base_, options);
  ManagerSnapshot before = Capture(manager);

  NodeId destination =
      UnservedDestination(topology_, manager.catalog(), base_);
  std::vector<NodeId> sources;
  for (NodeId n = 0; sources.size() < 3; ++n) {
    if (n != destination) sources.push_back(n);
  }
  MutationResult result =
      manager.AdmitQuery(destination, SpecOver(sources));

  EXPECT_FALSE(result.decision.admitted);
  EXPECT_EQ(result.decision.reason, AdmissionReason::kStateBound);
  EXPECT_GT(result.decision.observed, result.decision.limit);
  EXPECT_EQ(result.catalog_version, before.catalog_version);
  EXPECT_FALSE(manager.catalog().Contains(destination));
  ExpectUnchanged(before, manager);
}

TEST_F(AdmissionControlTest, TdmaCapacityRejectionMutatesNothing) {
  LifecycleOptions options;
  options.limits.max_tdma_slots = 1;  // No real schedule fits one slot.
  QueryLifecycleManager manager(topology_, initial_, base_, options);
  ManagerSnapshot before = Capture(manager);

  const QueryDefinition& query =
      manager.catalog().queries().begin()->second;
  NodeId source = AddableSource(topology_, query);
  MutationResult result =
      manager.AddSource(query.destination, source, 1.0);

  EXPECT_FALSE(result.decision.admitted);
  EXPECT_EQ(result.decision.reason, AdmissionReason::kTdmaCapacity);
  EXPECT_GT(result.decision.observed, result.decision.limit);
  ExpectUnchanged(before, manager);
}

TEST_F(AdmissionControlTest, EnergyBudgetRejectionMutatesNothing) {
  LifecycleOptions options;
  options.limits.max_node_energy_mj = 1e-6;  // Below any real TX cost.
  QueryLifecycleManager manager(topology_, initial_, base_, options);
  ManagerSnapshot before = Capture(manager);

  const QueryDefinition& query =
      manager.catalog().queries().begin()->second;
  NodeId source = AddableSource(topology_, query);
  MutationResult result =
      manager.AddSource(query.destination, source, 1.0);

  EXPECT_FALSE(result.decision.admitted);
  EXPECT_EQ(result.decision.reason, AdmissionReason::kEnergyBudget);
  EXPECT_NE(result.decision.offending_node, kInvalidNode);
  ExpectUnchanged(before, manager);
}

TEST_F(AdmissionControlTest, GenerousBudgetsAdmit) {
  LifecycleOptions options;
  options.limits.max_tdma_slots = 1 << 20;
  options.limits.max_node_energy_mj = 1e9;
  QueryLifecycleManager manager(topology_, initial_, base_, options);

  NodeId destination =
      UnservedDestination(topology_, manager.catalog(), base_);
  std::vector<NodeId> sources;
  for (NodeId n = 0; sources.size() < 3; ++n) {
    if (n != destination) sources.push_back(n);
  }
  MutationResult result =
      manager.AdmitQuery(destination, SpecOver(sources));
  EXPECT_TRUE(result.decision.admitted);
  EXPECT_EQ(result.decision.reason, AdmissionReason::kAdmitted);
  EXPECT_TRUE(manager.catalog().Contains(destination));
  EXPECT_EQ(result.catalog_version, 1);
  EXPECT_GT(result.images_shipped + result.bumps_shipped, 0);
  EXPECT_GT(result.delta_state_bytes, 0);
}

TEST_F(AdmissionControlTest, StructuralRejectionsAreTypedAndPure) {
  QueryLifecycleManager manager(topology_, initial_, base_);
  const QueryDefinition& query =
      manager.catalog().queries().begin()->second;
  NodeId served = query.destination;
  NodeId unserved = UnservedDestination(topology_, manager.catalog(), base_);
  NodeId existing_source = query.Sources().front();
  ManagerSnapshot before = Capture(manager);

  auto expect_reject = [&](const MutationResult& result,
                           AdmissionReason reason) {
    EXPECT_FALSE(result.decision.admitted);
    EXPECT_EQ(result.decision.reason, reason);
    EXPECT_FALSE(result.decision.detail.empty());
    ExpectUnchanged(before, manager);
  };

  expect_reject(manager.AdmitQuery(served, SpecOver({existing_source})),
                AdmissionReason::kDuplicateDestination);
  expect_reject(manager.AdmitQuery(unserved, FunctionSpec{}),
                AdmissionReason::kEmptySourceSet);
  expect_reject(manager.AdmitQuery(topology_.node_count(),
                                   SpecOver({existing_source})),
                AdmissionReason::kInvalidNode);
  expect_reject(manager.AdmitQuery(unserved, SpecOver({unserved})),
                AdmissionReason::kInvalidNode);
  FunctionSpec doubled = SpecOver({existing_source});
  doubled.weights.emplace_back(existing_source, 2.0);
  expect_reject(manager.AdmitQuery(unserved, doubled),
                AdmissionReason::kDuplicateSource);
  expect_reject(manager.RetireQuery(unserved),
                AdmissionReason::kUnknownDestination);
  expect_reject(manager.AddSource(unserved, existing_source, 1.0),
                AdmissionReason::kUnknownDestination);
  expect_reject(manager.AddSource(served, existing_source, 1.0),
                AdmissionReason::kDuplicateSource);
  expect_reject(manager.AddSource(served, served, 1.0),
                AdmissionReason::kInvalidNode);
  expect_reject(manager.RemoveSource(served, unserved),
                AdmissionReason::kUnknownSource);
  expect_reject(manager.RemoveSource(unserved, existing_source),
                AdmissionReason::kUnknownDestination);
}

TEST_F(AdmissionControlTest, LastSourceIsProtectedAndCatalogDrainsToZero) {
  // Two small queries; drain one down to a single source, then hit the
  // floor: the last SOURCE of a live query must survive. The last QUERY
  // must not — draining the catalog to zero is legal.
  Workload small;
  small.tasks = {Task{5, {0, 1}}, Task{6, {2, 3}}};
  FunctionSpec spec_a = SpecOver({0, 1});
  FunctionSpec spec_b = SpecOver({2, 3});
  small.specs = {spec_a, spec_b};
  small.RebuildFunctions();
  QueryLifecycleManager manager(topology_, small, base_);

  EXPECT_TRUE(manager.RemoveSource(5, 0).decision.admitted);
  MutationResult last_source = manager.RemoveSource(5, 1);
  EXPECT_FALSE(last_source.decision.admitted);
  EXPECT_EQ(last_source.decision.reason, AdmissionReason::kEmptySourceSet);

  // Regression: retiring the last resident query used to reject with a
  // bogus kEmptySourceSet. It must retire cleanly: empty catalog, empty
  // workload, and retraction images disseminated to every node that held
  // plan state.
  EXPECT_TRUE(manager.RetireQuery(5).decision.admitted);
  MutationResult last_query = manager.RetireQuery(6);
  EXPECT_TRUE(last_query.decision.admitted);
  EXPECT_EQ(last_query.refcount, 0);
  EXPECT_EQ(manager.catalog().size(), 0);
  EXPECT_TRUE(manager.workload().tasks.empty());
  EXPECT_GT(last_query.images_shipped, 0);

  // The empty state is a first-class epoch: live images equal a
  // from-scratch encode of the empty catalog, and a later admission
  // replans back out of it.
  std::vector<std::vector<uint8_t>> oracle =
      FromScratchImages(manager.paths(), manager.catalog(), nullptr);
  EXPECT_EQ(manager.images(), oracle);
  MutationResult readmit = manager.AdmitQuery(5, spec_a);
  EXPECT_TRUE(readmit.decision.admitted);
  EXPECT_EQ(manager.catalog().size(), 1);
  oracle = FromScratchImages(manager.paths(), manager.catalog(), nullptr);
  EXPECT_EQ(manager.images(), oracle);
}

TEST_F(AdmissionControlTest, DrainToZeroThenReadmitConvergesWithRuntime) {
  // Satellite regression: drain the catalog to zero with a live runtime
  // attached, run data rounds over the empty forest, then readmit. The
  // retraction must disseminate, the executor must handle the empty
  // forest, and the readmission must replan from empty and converge.
  Workload small;
  small.tasks = {Task{5, {0, 1}}, Task{6, {2, 3}}};
  small.specs = {SpecOver({0, 1}), SpecOver({2, 3})};
  small.RebuildFunctions();
  SelfHealingRuntime runtime(topology_, small, base_, SelfHealingOptions{});
  QueryLifecycleManager manager(topology_, small, base_);
  manager.AttachRuntime(&runtime);

  auto run_rounds_until_drained = [&](int first_round) {
    SelfHealingRoundResult result;
    int round = first_round;
    for (; round < first_round + 10; ++round) {
      ReadingGenerator readings(topology_.node_count(),
                                900 + static_cast<uint64_t>(round));
      LossyLinkModel physical;  // Perfect network.
      physical.attempt_delivers = [](NodeId, NodeId, int) { return true; };
      physical.node_alive = [](NodeId) { return true; };
      result = runtime.RunRound(round, readings.values(), physical, nullptr);
      if (result.pending_installs == 0) break;
    }
    EXPECT_EQ(result.pending_installs, 0);
    EXPECT_TRUE(result.data.incomplete_destinations.empty());
    return round + 1;
  };

  int next_round = run_rounds_until_drained(0);
  uint32_t max_epoch_before = 0;
  for (NodeId n = 0; n < topology_.node_count(); ++n) {
    max_epoch_before =
        std::max(max_epoch_before, runtime.network().plan_epoch(n));
  }

  ASSERT_TRUE(manager.RetireQuery(5).decision.admitted);
  ASSERT_TRUE(manager.RetireQuery(6).decision.admitted);
  EXPECT_EQ(manager.catalog().size(), 0);

  // The runtime picks the submitted (empty) workload up on its next round
  // and keeps running the empty forest without tripping any invariant.
  next_round = run_rounds_until_drained(next_round);
  EXPECT_TRUE(runtime.current_workload().tasks.empty());
  uint32_t max_epoch_after = 0;
  for (NodeId n = 0; n < topology_.node_count(); ++n) {
    max_epoch_after =
        std::max(max_epoch_after, runtime.network().plan_epoch(n));
  }
  EXPECT_GT(max_epoch_after, max_epoch_before)
      << "retraction never reached the network";

  // Readmit from empty and converge to the from-scratch plan.
  ASSERT_TRUE(manager.AdmitQuery(5, SpecOver({0, 1})).decision.admitted);
  run_rounds_until_drained(next_round);
  ASSERT_EQ(runtime.current_workload().tasks.size(), 1u);
  Workload expected = runtime.current_workload();
  GlobalPlan oracle = BuildPlan(
      std::make_shared<MulticastForest>(manager.paths(), expected.tasks),
      expected.functions);
  std::vector<std::string> divergence =
      FindPlanDivergence(runtime.plan(), oracle);
  EXPECT_TRUE(divergence.empty()) << divergence.front();
}

TEST_F(AdmissionControlTest, MetricsRecordMutationOutcomes) {
  obs::MetricsRegistry metrics;
  QueryLifecycleManager manager(topology_, initial_, base_);
  manager.set_metrics(&metrics);
  EXPECT_EQ(metrics.Total("qlm.catalog_size"),
            static_cast<int64_t>(initial_.tasks.size()));

  // Copy before mutating: a committed mutation replaces the catalog, so
  // references into it do not survive.
  NodeId destination = manager.catalog().queries().begin()->first;
  NodeId source =
      AddableSource(topology_, manager.catalog().Get(destination));
  ASSERT_TRUE(manager.AddSource(destination, source, 1.0).decision.admitted);
  ASSERT_FALSE(
      manager.AddSource(destination, source, 1.0).decision.admitted);

  EXPECT_EQ(metrics.Total("qlm.admissions"), 1);
  EXPECT_EQ(metrics.Total("qlm.rejections"), 1);
  EXPECT_EQ(metrics.Total("qlm.rejections.duplicate_source"), 1);
  EXPECT_EQ(metrics.Total("qlm.catalog_version"), 1);
  EXPECT_EQ(metrics.Total("qlm.replans"), 1);
  EXPECT_EQ(metrics.Total("qlm.catalog_logical_size"),
            static_cast<int64_t>(initial_.tasks.size()));
  EXPECT_GT(metrics.Total("qlm.replan_edges_reused"), 0);
  EXPECT_GT(metrics.Total("qlm.delta_state_bytes"), 0);
}

// --- Determinism audit regression (satellite): two different mutation
// orders that reach the same catalog content must produce byte-identical
// compiled plans and wire images — no container-iteration or
// arrival-order effect may leak into plan or wire bytes.
TEST(ChurnOrderIndependenceTest, SameContentSamePlanBytes) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload initial = InitialWorkload(topology, 97);
  NodeId base = PickBaseStation(topology);

  QueryLifecycleManager a(topology, initial, base);
  QueryLifecycleManager b(topology, initial, base);
  NodeId new_destination =
      UnservedDestination(topology, a.catalog(), base);
  std::vector<NodeId> new_sources;
  for (NodeId n = 0; new_sources.size() < 3; ++n) {
    if (n != new_destination) new_sources.push_back(n);
  }
  FunctionSpec new_spec = SpecOver(new_sources);
  const QueryDefinition& existing =
      a.catalog().queries().begin()->second;
  NodeId target = existing.destination;
  NodeId extra = AddableSource(topology, existing);

  // Order A: admit the new query, then grow the existing one.
  ASSERT_TRUE(a.AdmitQuery(new_destination, new_spec).decision.admitted);
  ASSERT_TRUE(a.AddSource(target, extra, 2.0).decision.admitted);
  // Order B: grow first, then admit — same final content.
  ASSERT_TRUE(b.AddSource(target, extra, 2.0).decision.admitted);
  ASSERT_TRUE(b.AdmitQuery(new_destination, new_spec).decision.admitted);

  EXPECT_EQ(a.catalog().version(), b.catalog().version());
  EXPECT_TRUE(FindPlanDivergence(a.plan(), b.plan()).empty());
  EXPECT_EQ(a.images(), b.images());

  // And a spec whose weights arrive unsorted canonicalizes to the same
  // bytes as the sorted submission.
  QueryLifecycleManager c(topology, initial, base);
  FunctionSpec reversed = new_spec;
  std::reverse(reversed.weights.begin(), reversed.weights.end());
  ASSERT_TRUE(c.AddSource(target, extra, 2.0).decision.admitted);
  ASSERT_TRUE(c.AdmitQuery(new_destination, reversed).decision.admitted);
  EXPECT_EQ(b.images(), c.images());
}

// --- Idempotent resubmission (bugfix satellite): a byte-identical
// AdmitQuery resubmission is a pure refcount bump — no replan, no version
// bump, no image delta — and releasing the duplicate hold is equally pure.
// 20-seed replay regression over churned catalogs.
class DedupReplay : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DedupReplay, ByteIdenticalResubmissionIsIdempotent) {
  const uint64_t seed = GetParam();
  Topology topology = MakeGreatDuckIslandLike();
  Workload initial = InitialWorkload(topology, seed * 19 + 5);
  NodeId base = PickBaseStation(topology);

  QueryLifecycleManager manager(topology, initial, base);
  ChurnScheduleOptions churn_options;
  churn_options.seed = seed;
  ChurnSchedule schedule =
      ChurnSchedule::Generate(topology, initial, {base}, churn_options);
  for (const ChurnEvent& event : schedule.events()) {
    ApplyChurnEvent(manager, event);
  }

  // Copy first: a resubmission replaces the catalog object (refcount
  // bookkeeping), so references into it do not survive.
  std::vector<std::pair<NodeId, FunctionSpec>> live;
  for (const auto& [destination, query] : manager.catalog().queries()) {
    live.emplace_back(destination, query.spec);
  }
  ASSERT_FALSE(live.empty());
  ManagerSnapshot before = Capture(manager);

  bool reverse = false;
  for (const auto& [destination, spec] : live) {
    // Alternate submission order of the weights: dedup keys on the
    // CANONICAL (destination, source-set, function) form.
    FunctionSpec submitted = spec;
    if (reverse) {
      std::reverse(submitted.weights.begin(), submitted.weights.end());
    }
    reverse = !reverse;
    MutationResult result = manager.AdmitQuery(destination, submitted);
    EXPECT_TRUE(result.decision.admitted) << "seed " << seed;
    EXPECT_TRUE(result.deduplicated) << "seed " << seed;
    EXPECT_EQ(result.refcount, 2) << "seed " << seed;
    EXPECT_EQ(result.catalog_version, before.catalog_version);
    EXPECT_EQ(result.replan.edges_reoptimized, 0);
    EXPECT_EQ(result.images_shipped + result.bumps_shipped, 0);
    EXPECT_EQ(manager.catalog().RefCount(destination), 2);
    ExpectUnchanged(before, manager);
  }

  // Releasing the duplicate holds is refcount traffic too: the physical
  // query — and all plan state — survives until the LAST hold goes.
  for (const auto& [destination, spec] : live) {
    MutationResult result = manager.RetireQuery(destination);
    EXPECT_TRUE(result.decision.admitted) << "seed " << seed;
    EXPECT_TRUE(result.deduplicated) << "seed " << seed;
    EXPECT_EQ(result.refcount, 1) << "seed " << seed;
    EXPECT_TRUE(manager.catalog().Contains(destination));
    ExpectUnchanged(before, manager);
  }
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, DedupReplay,
                         ::testing::Range<uint64_t>(1, 21));

// --- Batched replay purity (bugfix satellite): replaying a ChurnSchedule
// as per-round batches — or as ONE batch — lands on byte-identical final
// catalogs, plans, and wire images as sequential replay, with identical
// per-request outcomes, while paying ONE replan per material batch.
// 20 seeds.
class BatchedChurnReplay : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchedChurnReplay, BatchedEqualsSequentialByteIdentical) {
  const uint64_t seed = GetParam();
  Topology topology = MakeGreatDuckIslandLike();
  Workload initial = InitialWorkload(topology, seed * 17 + 3);
  NodeId base = PickBaseStation(topology);

  ChurnScheduleOptions churn_options;
  churn_options.rounds = 10;
  churn_options.admissions = 3;
  churn_options.retirements = 2;
  churn_options.source_adds = 3;
  churn_options.source_removes = 2;
  churn_options.seed = seed;
  ChurnSchedule schedule =
      ChurnSchedule::Generate(topology, initial, {base}, churn_options);

  QueryLifecycleManager sequential(topology, initial, base);
  std::vector<AdmissionReason> sequential_outcomes;
  for (const ChurnEvent& event : schedule.events()) {
    MutationResult result = ApplyChurnEvent(sequential, event);
    sequential_outcomes.push_back(result.decision.admitted
                                      ? AdmissionReason::kAdmitted
                                      : result.decision.reason);
  }

  obs::MetricsRegistry metrics;
  QueryLifecycleManager batched(topology, initial, base);
  batched.set_metrics(&metrics);
  std::vector<AdmissionReason> batched_outcomes;
  int material_batches = 0;
  for (int round = 0; round < churn_options.rounds; ++round) {
    std::vector<ChurnEvent> events = schedule.EventsAt(round);
    if (events.empty()) continue;
    BatchResult batch = ApplyChurnEventsBatched(batched, events);
    ASSERT_EQ(batch.outcomes.size(), events.size());
    EXPECT_FALSE(batch.sequential_fallback) << "seed " << seed;
    if (batch.committed) ++material_batches;
    for (const MutationOutcome& outcome : batch.outcomes) {
      batched_outcomes.push_back(outcome.decision.admitted
                                     ? AdmissionReason::kAdmitted
                                     : outcome.decision.reason);
    }
  }

  // Identical per-request outcomes, byte-identical final state.
  EXPECT_EQ(sequential_outcomes, batched_outcomes) << "seed " << seed;
  EXPECT_EQ(sequential.catalog(), batched.catalog()) << "seed " << seed;
  EXPECT_EQ(sequential.catalog().version(), batched.catalog().version());
  EXPECT_EQ(sequential.images(), batched.images()) << "seed " << seed;
  EXPECT_TRUE(
      FindPlanDivergence(sequential.plan(), batched.plan()).empty())
      << "seed " << seed;

  // Amortization: exactly one replan per material batch, not per event.
  EXPECT_EQ(metrics.Total("qlm.replans"), material_batches);
  EXPECT_EQ(metrics.Total("qlm.batch.commits"), material_batches);
  EXPECT_EQ(metrics.Total("qlm.batch.fallbacks"), 0);

  // Order-of-batching independence: the WHOLE schedule as one batch lands
  // on the same bytes again.
  QueryLifecycleManager one_shot(topology, initial, base);
  BatchResult whole = ApplyChurnEventsBatched(one_shot, schedule.events());
  ASSERT_EQ(whole.outcomes.size(), schedule.events().size());
  for (size_t i = 0; i < whole.outcomes.size(); ++i) {
    EXPECT_EQ(whole.outcomes[i].decision.admitted
                  ? AdmissionReason::kAdmitted
                  : whole.outcomes[i].decision.reason,
              sequential_outcomes[i])
        << "seed " << seed << " request " << i;
  }
  EXPECT_EQ(one_shot.catalog(), sequential.catalog()) << "seed " << seed;
  EXPECT_EQ(one_shot.images(), sequential.images()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, BatchedChurnReplay,
                         ::testing::Range<uint64_t>(1, 21));

// --- ChurnSchedule: deterministic, bounded, and respectful of the
// forbidden set.
TEST(ChurnScheduleTest, DeterministicAndBounded) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload initial = InitialWorkload(topology, 7);
  NodeId base = PickBaseStation(topology);

  ChurnScheduleOptions options;
  options.seed = 42;
  ChurnSchedule one =
      ChurnSchedule::Generate(topology, initial, {base}, options);
  ChurnSchedule two =
      ChurnSchedule::Generate(topology, initial, {base}, options);
  EXPECT_EQ(one.Describe(), two.Describe());
  EXPECT_EQ(one.events().size(), two.events().size());
  EXPECT_FALSE(one.events().empty());

  int last_round = 0;
  for (const ChurnEvent& event : one.events()) {
    EXPECT_GE(event.round, 1);
    EXPECT_LE(event.round, options.rounds - 1);
    EXPECT_GE(event.round, last_round);  // Sorted by round.
    last_round = event.round;
    if (event.type == ChurnType::kAdmit ||
        event.type == ChurnType::kRetire) {
      EXPECT_NE(event.destination, base);
    }
  }

  ChurnScheduleOptions other = options;
  other.seed = 43;
  ChurnSchedule three =
      ChurnSchedule::Generate(topology, initial, {base}, other);
  EXPECT_NE(one.Describe(), three.Describe());

  // EventsAt partitions events().
  size_t counted = 0;
  for (int round = 0; round < options.rounds; ++round) {
    counted += one.EventsAt(round).size();
  }
  EXPECT_EQ(counted, one.events().size());
}

}  // namespace
}  // namespace m2m
