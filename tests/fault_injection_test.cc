#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "plan/consistency.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "runtime/network.h"
#include "sim/base_station.h"
#include "sim/executor.h"
#include "sim/failure.h"
#include "sim/fault_schedule.h"
#include "sim/readings.h"
#include "sim/self_healing.h"
#include "fault_test_util.h"
#include "topology/generator.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {
namespace {

using fault_test::Destinations;
using fault_test::FaultRunResult;
using fault_test::RunFaultSchedule;
using fault_test::ValuesClose;

Workload DefaultWorkload(const Topology& topology, uint64_t seed) {
  WorkloadSpec spec;
  spec.destination_count = 5;
  spec.sources_per_destination = 5;
  spec.max_hops = 4;
  spec.seed = seed;
  return GenerateWorkload(topology, spec);
}

FaultSchedule DefaultSchedule(const Topology& topology,
                              const Workload& workload, uint64_t seed) {
  FaultScheduleOptions options;
  options.rounds = 5;
  options.transient_link_fraction = 0.06;
  options.transient_drop_probability = 0.5;
  options.persistent_link_failures = 2;
  options.node_deaths = 1;
  options.seed = seed;
  return FaultSchedule::Generate(topology, Destinations(workload), options);
}

// The acceptance criterion of the fault-tolerant runtime, checked over many
// seeded schedules: after every persistent fault has been absorbed by a
// local re-plan and the transient window has passed, all alive destinations
// converge to exactly the fault-free oracle over the surviving sources; and
// replaying the same schedule reproduces the event trace byte for byte.
class FaultDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultDifferential, ConvergesToOracleWithDeterministicTrace) {
  const uint64_t seed = GetParam();
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, seed * 17 + 3);
  FaultSchedule schedule = DefaultSchedule(topology, workload, seed);

  FaultRunResult run = RunFaultSchedule(topology, workload, schedule,
                                        /*readings_seed=*/seed + 1000);

  EXPECT_TRUE(run.replan_divergences.empty())
      << "Corollary 1 violated (seed " << seed
      << "): " << run.replan_divergences.front();
  EXPECT_TRUE(run.consistency_violations.empty())
      << "seed " << seed << ": " << run.consistency_violations.front();
  EXPECT_TRUE(run.value_mismatches.empty())
      << "seed " << seed << ": " << run.value_mismatches.front();

  // Convergence round: no transient faults remain, so every alive
  // destination completes and matches the analytic oracle exactly (up to
  // float merge order).
  EXPECT_TRUE(run.unconverged_destinations.empty())
      << "seed " << seed << ": destination "
      << run.unconverged_destinations.front() << " did not converge";
  ASSERT_EQ(run.final_values.size(), run.oracle_values.size());
  for (const auto& [destination, value] : run.final_values) {
    auto it = run.oracle_values.find(destination);
    ASSERT_NE(it, run.oracle_values.end()) << "destination " << destination;
    EXPECT_TRUE(ValuesClose(value, it->second))
        << "seed " << seed << " destination " << destination << ": " << value
        << " vs oracle " << it->second;
  }

  // Determinism: the same schedule replays to a byte-identical trace.
  FaultRunResult replay = RunFaultSchedule(topology, workload, schedule,
                                           /*readings_seed=*/seed + 1000);
  EXPECT_EQ(run.trace, replay.trace) << "seed " << seed;
  EXPECT_EQ(run.attempts, replay.attempts);
  EXPECT_EQ(run.retransmissions, replay.retransmissions);
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, FaultDifferential,
                         ::testing::Range<uint64_t>(1, 21));

TEST(FaultScheduleTest, GenerationIsDeterministic) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 7);
  FaultSchedule a = DefaultSchedule(topology, workload, 42);
  FaultSchedule b = DefaultSchedule(topology, workload, 42);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_EQ(a.Describe(), b.Describe());
  for (int round = 0; round < a.options().rounds; ++round) {
    for (NodeId n = 0; n < topology.node_count(); ++n) {
      for (NodeId m : topology.neighbors(n)) {
        for (int attempt = 1; attempt <= 4; ++attempt) {
          EXPECT_EQ(a.AttemptDelivers(round, n, m, attempt),
                    b.AttemptDelivers(round, n, m, attempt));
        }
      }
    }
  }
}

TEST(FaultScheduleTest, ProtectedNodesNeverDieAndSurvivorsStayConnected) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 11);
  std::vector<NodeId> destinations = Destinations(workload);
  FaultScheduleOptions options;
  options.rounds = 6;
  options.persistent_link_failures = 4;
  options.node_deaths = 3;
  options.seed = 99;
  FaultSchedule schedule =
      FaultSchedule::Generate(topology, destinations, options);

  std::vector<NodeId> dead = schedule.DeadNodesThrough(options.rounds);
  for (NodeId d : destinations) {
    EXPECT_EQ(std::find(dead.begin(), dead.end(), d), dead.end())
        << "protected destination " << d << " died";
  }

  // The alive subgraph after all persistent faults must be connected (the
  // generator's accept/reject invariant — recovery is always possible).
  Topology masked = Topology::WithFailures(
      topology, schedule.FailedLinksThrough(options.rounds), dead);
  std::vector<bool> seen(masked.node_count(), false);
  std::queue<NodeId> frontier;
  NodeId start = kInvalidNode;
  for (NodeId n = 0; n < masked.node_count(); ++n) {
    if (std::find(dead.begin(), dead.end(), n) == dead.end()) {
      start = n;
      break;
    }
  }
  ASSERT_NE(start, kInvalidNode);
  seen[start] = true;
  frontier.push(start);
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop();
    for (NodeId m : masked.neighbors(n)) {
      if (!seen[m]) {
        seen[m] = true;
        frontier.push(m);
      }
    }
  }
  for (NodeId n = 0; n < masked.node_count(); ++n) {
    if (std::find(dead.begin(), dead.end(), n) == dead.end()) {
      EXPECT_TRUE(seen[n]) << "alive node " << n << " disconnected";
    }
  }
}

// Corollary 1, asserted directly: after a persistent link failure and a node
// death, re-solving only the affected edges yields the same plan as planning
// from scratch, while reusing most per-edge solutions.
TEST(LocalReplanTest, LocalReplanEqualsGlobalReplan) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 5);
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);

  // Fail a link that actually carries traffic (the first physical hop of
  // the first planned edge) plus kill one source, so the re-plan is forced
  // to re-route.
  const ForestEdge& edge = plan.forest().edges().front();
  ASSERT_GE(edge.segment.size(), 2u);
  std::vector<std::pair<NodeId, NodeId>> failed_links = {
      {edge.segment[0], edge.segment[1]}};
  NodeId victim = workload.tasks.front().sources.front();
  Workload survivors =
      WithSourceRemoved(workload, victim, workload.tasks.front().destination);

  Topology masked =
      Topology::WithFailures(topology, failed_links, {victim});
  PathSystem masked_paths(masked);
  UpdateStats stats;
  GlobalPlan patched = ReplanForTopology(plan, masked_paths, survivors.tasks,
                                         survivors.functions, &stats);
  GlobalPlan fresh =
      BuildPlan(patched.forest_ptr(), survivors.functions, plan.options());

  std::vector<std::string> divergence = FindPlanDivergence(patched, fresh);
  EXPECT_TRUE(divergence.empty()) << divergence.front();
  EXPECT_TRUE(PlansEquivalent(patched, fresh));
  EXPECT_TRUE(ValidatePlanConsistency(patched));
  EXPECT_EQ(stats.edges_total,
            static_cast<int>(patched.forest().edges().size()));
  // Locality: the failure touches a handful of routes; most edges keep
  // their solutions.
  EXPECT_GT(stats.edges_reused, 0);
  EXPECT_EQ(stats.edges_reused + stats.edges_reoptimized, stats.edges_total);
}

// A round under heavy transient loss: retries must recover every message
// (enough attempts for the drop rate), values must stay correct, and the
// trace must replay identically.
TEST(LossyRuntimeTest, RetriesRecoverFromHeavyTransientLoss) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 21);
  FaultScheduleOptions options;
  options.rounds = 3;
  options.transient_link_fraction = 0.5;
  options.transient_drop_probability = 0.45;
  options.persistent_link_failures = 0;
  options.node_deaths = 0;
  options.seed = 77;
  FaultSchedule schedule =
      FaultSchedule::Generate(topology, Destinations(workload), options);

  RetryPolicy retry;
  retry.max_attempts = 8;
  FaultRunResult run =
      RunFaultSchedule(topology, workload, schedule, 2024, retry);

  EXPECT_GT(run.retransmissions, 0) << "loss model injected no retries";
  EXPECT_TRUE(run.value_mismatches.empty())
      << run.value_mismatches.front();
  EXPECT_TRUE(run.unconverged_destinations.empty());
  EXPECT_EQ(run.replans, 0);
  for (const auto& [destination, value] : run.final_values) {
    EXPECT_TRUE(ValuesClose(value, run.oracle_values.at(destination)));
  }
}

// Lost acks force retransmission of already-delivered messages; the
// receiver-side dedup must absorb the duplicates without corrupting any
// aggregate (idempotent retransmission).
TEST(LossyRuntimeTest, DuplicateDeliveriesAreSuppressed) {
  // A 1x6 line: all data flows toward higher ids, all acks toward lower
  // ids, so "drop the first attempt of every decreasing-id transmission"
  // loses every first ack while delivering every data packet.
  Topology topology = MakeGrid(6, 1, 10.0, 15.0);
  Workload workload;
  workload.tasks = {Task{5, {0, 1, 2}}};
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{0, 1.0}, {1, 2.0}, {2, 3.0}};
  workload.specs = {spec};
  workload.RebuildFunctions();

  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  RuntimeNetwork network(compiled, workload.functions);

  LossyLinkModel links;
  links.attempt_delivers = [](NodeId from, NodeId to, int attempt) {
    return !(from > to && attempt == 1);
  };

  ReadingGenerator readings(topology.node_count(), 31);
  RuntimeNetwork::LossyResult lossy =
      network.RunRoundLossy(readings.values(), links);

  EXPECT_GT(lossy.acks_lost, 0);
  EXPECT_GT(lossy.retransmissions, 0);
  EXPECT_GT(lossy.duplicates, 0);
  EXPECT_EQ(lossy.messages_abandoned, 0);
  EXPECT_TRUE(lossy.incomplete_destinations.empty());

  double expected = 1.0 * readings.values()[0] + 2.0 * readings.values()[1] +
                    3.0 * readings.values()[2];
  ASSERT_EQ(lossy.destination_values.size(), 1u);
  EXPECT_TRUE(ValuesClose(lossy.destination_values.at(5), expected));
}

// When the retry budget cannot beat a dead link mid-route, the affected
// destination is reported incomplete (not CHECK-crashed) and untouched
// destinations still complete.
TEST(LossyRuntimeTest, ExhaustedRetriesReportIncompleteDestinations) {
  Topology topology = MakeGrid(6, 1, 10.0, 15.0);
  Workload workload;
  workload.tasks = {Task{5, {0, 3}}};
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{0, 1.0}, {3, 1.0}};
  workload.specs = {spec};
  workload.RebuildFunctions();

  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  RuntimeNetwork network(compiled, workload.functions);

  // Link 0->1 never delivers: source 0's contribution can never reach 5.
  LossyLinkModel links;
  links.attempt_delivers = [](NodeId from, NodeId to, int) {
    return !(from == 0 && to == 1);
  };

  ReadingGenerator readings(topology.node_count(), 8);
  RuntimeNetwork::LossyResult lossy =
      network.RunRoundLossy(readings.values(), links);

  EXPECT_GT(lossy.messages_abandoned, 0);
  ASSERT_EQ(lossy.incomplete_destinations.size(), 1u);
  EXPECT_EQ(lossy.incomplete_destinations.front(), 5);
  EXPECT_TRUE(lossy.destination_values.empty());
}

// Fault-free lossy execution must agree with the quiescence-based runtime
// and the analytic executor — the lossy path is a strict generalization.
TEST(LossyRuntimeTest, PerfectLinksMatchQuiescentRuntime) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 3);
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);

  ReadingGenerator readings(topology.node_count(), 12);
  RuntimeNetwork lossless(compiled, workload.functions);
  RuntimeNetwork::Result reference = lossless.RunRound(readings.values());

  RuntimeNetwork network(compiled, workload.functions);
  LossyLinkModel links;
  links.attempt_delivers = [](NodeId, NodeId, int) { return true; };
  RuntimeNetwork::LossyResult lossy =
      network.RunRoundLossy(readings.values(), links);

  EXPECT_EQ(lossy.retransmissions, 0);
  EXPECT_EQ(lossy.duplicates, 0);
  EXPECT_EQ(lossy.messages_abandoned, 0);
  ASSERT_EQ(lossy.destination_values.size(),
            reference.destination_values.size());
  for (const auto& [destination, value] : reference.destination_values) {
    EXPECT_TRUE(ValuesClose(lossy.destination_values.at(destination), value))
        << "destination " << destination;
  }
}

// The receiver-side dedup table must stay constant-size over arbitrarily
// long deployments: entries are evicted once they age past the retry
// horizon (no sender still retransmits them), and StartRound clears the
// remainder. Regression for the unbounded-growth bug class.
TEST(LossyRuntimeTest, DedupTableStaysConstantSizeOverTenThousandRounds) {
  Topology topology = MakeGrid(6, 1, 10.0, 15.0);
  Workload workload;
  workload.tasks = {Task{5, {0, 1, 2}}};
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{0, 1.0}, {1, 2.0}, {2, 3.0}};
  workload.specs = {spec};
  workload.RebuildFunctions();

  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  RuntimeNetwork network(compiled, workload.functions);

  // Every first ack drops, so every message is delivered at least twice —
  // the dedup table is exercised on every hop of every round.
  LossyLinkModel links;
  links.attempt_delivers = [](NodeId from, NodeId to, int attempt) {
    return !(from > to && attempt == 1);
  };

  ReadingGenerator readings(topology.node_count(), 47);
  const int kRounds = 10000;
  size_t early_max = 0;  // Max table size in the first 100 rounds.
  size_t late_max = 0;   // Max table size in the last 100 rounds.
  // Capped trace mode: a ring of the most recent records must hold memory
  // constant over the whole run while every round keeps appending.
  EventTrace trace;
  const size_t kTraceCapacity = 256;
  trace.set_capacity(kTraceCapacity);
  size_t early_trace_bytes = 0;  // Retained bytes once the ring is full.
  size_t late_trace_bytes = 0;
  for (int round = 0; round < kRounds; ++round) {
    RuntimeNetwork::LossyResult lossy =
        network.RunRoundLossy(readings.values(), links, {}, {}, &trace);
    ASSERT_LE(trace.size(), kTraceCapacity) << "round " << round;
    if (round == 100) early_trace_bytes = trace.RetainedBytes();
    if (round == kRounds - 1) late_trace_bytes = trace.RetainedBytes();
    ASSERT_GT(lossy.duplicates, 0) << "round " << round;
    ASSERT_TRUE(lossy.incomplete_destinations.empty()) << "round " << round;
    size_t round_max = 0;
    for (NodeId n = 0; n < topology.node_count(); ++n) {
      round_max = std::max(round_max, network.node_runtime(n).seen_packet_count());
    }
    // Constant bound: never more entries than messages within one retry
    // horizon of this tiny plan, no matter how many rounds have passed.
    ASSERT_LE(round_max, 8u) << "round " << round;
    if (round < 100) early_max = std::max(early_max, round_max);
    if (round >= kRounds - 100) late_max = std::max(late_max, round_max);
    if (round % 1000 == 0) {
      double expected = 1.0 * readings.values()[0] +
                        2.0 * readings.values()[1] +
                        3.0 * readings.values()[2];
      ASSERT_TRUE(ValuesClose(lossy.destination_values.at(5), expected));
    }
  }
  // Steady state, not slow growth.
  EXPECT_EQ(early_max, late_max);
  EXPECT_GT(late_max, 0u);
  // The capped trace ran the whole deployment in constant memory: the ring
  // was full by round 100 and retained exactly the same bytes at the end,
  // while the append counter kept advancing and the overflow was dropped.
  EXPECT_EQ(early_trace_bytes, late_trace_bytes);
  EXPECT_GT(late_trace_bytes, 0u);
  EXPECT_EQ(trace.size(), kTraceCapacity);
  EXPECT_GT(trace.total_appended(), static_cast<uint64_t>(kRounds));
  EXPECT_EQ(trace.dropped(), trace.total_appended() - kTraceCapacity);
}

// Boundary regression for dedup under reordering + delay: a maximally
// delayed first attempt that lands AFTER a retransmission was already
// delivered and acked arrives right at the eviction boundary — the dedup
// horizon is extended by exactly the channel's max delay, so the late copy
// must still be recognized and suppressed, never re-applied. Were the
// horizon not extended, the stale copy would double-count its contribution
// and the differential below would break.
TEST(LossyRuntimeTest, DelayedDuplicateAtEvictionBoundaryIsSuppressed) {
  Topology topology = MakeGrid(6, 1, 10.0, 15.0);
  Workload workload;
  workload.tasks = {Task{5, {0, 1, 2}}};
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{0, 1.0}, {1, 2.0}, {2, 3.0}};
  workload.specs = {spec};
  workload.RebuildFunctions();

  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  RuntimeNetwork network(compiled, workload.functions);

  // Every first ack drops (forcing a retransmission of a delivered packet)
  // and every first data attempt is delayed by the full channel bound: the
  // retransmission overtakes the original, which then arrives as a stale
  // reordered duplicate near the end of the dedup window.
  const int kMaxDelay = 4;
  LossyLinkModel links;
  links.attempt_delivers = [](NodeId from, NodeId to, int attempt) {
    return !(from > to && attempt == 1);
  };
  links.hop_effects = [](NodeId from, NodeId to, int attempt) {
    HopEffects effects;
    if (from < to && attempt == 1) effects.delay_ticks = kMaxDelay;
    return effects;
  };
  links.max_delay_ticks = kMaxDelay;

  RetryPolicy retry;
  retry.ack_timeout_ticks = 2;  // Retransmit before the delayed original.

  ReadingGenerator readings(topology.node_count(), 53);
  const double expected = 1.0 * readings.values()[0] +
                          2.0 * readings.values()[1] +
                          3.0 * readings.values()[2];
  int64_t reordered_total = 0;
  for (int round = 0; round < 50; ++round) {
    RuntimeNetwork::LossyResult lossy =
        network.RunRoundLossy(readings.values(), links, retry);
    ASSERT_GT(lossy.duplicates, 0) << "round " << round;
    reordered_total += lossy.reordered_deliveries;
    ASSERT_TRUE(lossy.incomplete_destinations.empty()) << "round " << round;
    ASSERT_TRUE(ValuesClose(lossy.destination_values.at(5), expected))
        << "round " << round << ": stale duplicate re-applied";
    // Dedup entries live `max_delay_ticks` longer than the clean-channel
    // horizon but are still evicted: the table stays bounded.
    for (NodeId n = 0; n < topology.node_count(); ++n) {
      ASSERT_LE(network.node_runtime(n).seen_packet_count(), 12u)
          << "round " << round;
    }
  }
  EXPECT_GT(reordered_total, 0) << "delay never caused a reorder";
}

// Exactly-once delivery under delayed acks, across the whole retry-budget
// range: an ack in flight while the sender retransmits must not cause a
// double-apply, whether the budget is a single attempt (no retransmission
// possible), the default-ish 8, or 40 (deep backoff, exercising the
// overflow clamp).
TEST(LossyRuntimeTest, DelayedAcksPreserveExactlyOnceAcrossRetryBudgets) {
  Topology topology = MakeGrid(6, 1, 10.0, 15.0);
  Workload workload;
  workload.tasks = {Task{5, {0, 1, 2}}};
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{0, 1.0}, {1, 2.0}, {2, 3.0}};
  workload.specs = {spec};
  workload.RebuildFunctions();

  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);

  // Data always delivers; acks always deliver but arrive 3 ticks late —
  // after the sender's first backoff expires, so budgets > 1 retransmit a
  // message whose ack is already in flight.
  const int kAckDelay = 3;
  LossyLinkModel links;
  links.attempt_delivers = [](NodeId, NodeId, int) { return true; };
  links.hop_effects = [](NodeId from, NodeId to, int) {
    HopEffects effects;
    if (from > to) effects.delay_ticks = kAckDelay;
    return effects;
  };
  links.max_delay_ticks = kAckDelay;

  ReadingGenerator readings(topology.node_count(), 61);
  const double expected = 1.0 * readings.values()[0] +
                          2.0 * readings.values()[1] +
                          3.0 * readings.values()[2];
  for (int max_attempts : {1, 8, 40}) {
    RuntimeNetwork network(compiled, workload.functions);
    RetryPolicy retry;
    retry.max_attempts = max_attempts;
    retry.ack_timeout_ticks = 2;
    RuntimeNetwork::LossyResult lossy =
        network.RunRoundLossy(readings.values(), links, retry);
    // Data never drops, so every destination completes for every budget,
    // and the late ack must stop the retransmission loop before the budget
    // matters: nothing is ever abandoned.
    EXPECT_EQ(lossy.messages_abandoned, 0) << "max_attempts " << max_attempts;
    ASSERT_TRUE(lossy.incomplete_destinations.empty())
        << "max_attempts " << max_attempts;
    ASSERT_TRUE(ValuesClose(lossy.destination_values.at(5), expected))
        << "max_attempts " << max_attempts << ": duplicate applied twice";
    if (max_attempts == 1) {
      // No budget to retransmit: the delayed ack is simply absorbed.
      EXPECT_EQ(lossy.retransmissions, 0);
      EXPECT_EQ(lossy.duplicates, 0);
    } else {
      // The sender retransmitted into the ack's delay window at least once;
      // the receiver-side dedup absorbed every extra copy.
      EXPECT_GT(lossy.retransmissions, 0) << "max_attempts " << max_attempts;
      EXPECT_GT(lossy.duplicates, 0) << "max_attempts " << max_attempts;
    }
  }
}

// The sampled-failure path (LinkOutcome) and the oracle masking path
// (Topology::WithFailures) must agree on what "node X is down" means:
// identical alive link sets.
TEST(LinkOutcomeTest, TakeDownNodeMatchesTopologyWithFailures) {
  Topology topology = MakeGreatDuckIslandLike();
  const NodeId victim = topology.node_count() / 2;
  ASSERT_FALSE(topology.neighbors(victim).empty());
  // Also fail one ordinary link not incident to the victim.
  NodeId link_a = kInvalidNode, link_b = kInvalidNode;
  for (NodeId a = 0; a < topology.node_count() && link_a == kInvalidNode;
       ++a) {
    if (a == victim) continue;
    for (NodeId b : topology.neighbors(a)) {
      if (b > a && b != victim) {
        link_a = a;
        link_b = b;
        break;
      }
    }
  }
  ASSERT_NE(link_a, kInvalidNode);

  LinkOutcome outcome = LinkOutcome::AllUp(topology);
  outcome.TakeDownNode(topology, victim);
  outcome.TakeDown(link_a, link_b);

  Topology masked =
      Topology::WithFailures(topology, {{link_a, link_b}}, {victim});
  std::vector<std::pair<NodeId, NodeId>> masked_links;
  for (NodeId a = 0; a < masked.node_count(); ++a) {
    for (NodeId b : masked.neighbors(a)) {
      if (a < b) masked_links.emplace_back(a, b);
    }
  }
  std::sort(masked_links.begin(), masked_links.end());

  EXPECT_EQ(outcome.AliveLinks(), masked_links);
  for (NodeId neighbor : topology.neighbors(victim)) {
    EXPECT_FALSE(outcome.IsUp(victim, neighbor));
  }
}

// Dissemination under loss: plan images, epoch bumps and install acks are
// themselves dropped (75% per attempt, on top of the schedule's faults).
// The epoch protocol must keep retrying until every affected node acked the
// new plan, and the epoch gate must hold mixed rounds safe: every completed
// value matches the analytic executor of exactly its reported epoch.
class DisseminationLoss : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DisseminationLoss, EpochProtocolRetriesUntilAllAffectedNodesAck) {
  const uint64_t seed = GetParam();
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, seed * 23 + 5);
  NodeId base = PickBaseStation(topology);
  std::vector<NodeId> protected_nodes = Destinations(workload);
  if (std::find(protected_nodes.begin(), protected_nodes.end(), base) ==
      protected_nodes.end()) {
    protected_nodes.push_back(base);
  }
  FaultScheduleOptions schedule_options;
  schedule_options.rounds = 5;
  schedule_options.transient_link_fraction = 0.06;
  schedule_options.transient_drop_probability = 0.5;
  schedule_options.persistent_link_failures = 2;
  schedule_options.node_deaths = 1;
  schedule_options.seed = seed;
  FaultSchedule schedule =
      FaultSchedule::Generate(topology, protected_nodes, schedule_options);

  SelfHealingRuntime runtime(topology, workload, base);
  // Deterministic extra loss on the dissemination namespaces (images,
  // bumps, install acks use attempt indices >= 3000).
  auto dissemination_dropped = [seed](int round, NodeId from, NodeId to,
                                      int attempt) {
    uint64_t h = static_cast<uint64_t>(round) * 0x9e3779b97f4a7c15ull;
    h ^= (static_cast<uint64_t>(from) << 32) ^
         (static_cast<uint64_t>(to) << 16) ^ static_cast<uint64_t>(attempt);
    h ^= seed * 0xbf58476d1ce4e5b9ull;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return h % 4 != 0;  // 75% of dissemination attempts drop.
  };

  std::map<uint32_t, PlanExecutor> executors;
  executors.emplace(
      0u, PlanExecutor(std::make_shared<CompiledPlan>(runtime.compiled()),
                       runtime.current_workload().functions, EnergyModel{}));

  const int total_rounds = schedule_options.rounds + 25;
  int64_t total_epoch_rejected = 0;
  int64_t total_control_attempts = 0;
  int64_t total_control_hops = 0;
  int rounds_with_pending = 0;
  int replans = 0;
  SelfHealingRoundResult last;
  for (int round = 0; round < total_rounds; ++round) {
    ReadingGenerator readings(topology.node_count(),
                              seed + 500 + static_cast<uint64_t>(round));
    LossyLinkModel physical;
    physical.attempt_delivers = [&schedule, &dissemination_dropped, round](
                                    NodeId from, NodeId to, int attempt) {
      if (!schedule.AttemptDelivers(round, from, to, attempt)) return false;
      return !(attempt >= 3000 &&
               dissemination_dropped(round, from, to, attempt));
    };
    physical.node_alive = [&schedule, round](NodeId n) {
      return schedule.NodeAliveAt(round, n);
    };
    last = runtime.RunRound(round, readings.values(), physical);
    total_epoch_rejected += last.data.epoch_rejected;
    total_control_attempts += last.control_hop_attempts;
    total_control_hops += last.control_hops_crossed;
    if (last.pending_installs > 0) ++rounds_with_pending;
    if (last.replanned) {
      ++replans;
      executors.emplace(
          runtime.base_epoch(),
          PlanExecutor(std::make_shared<CompiledPlan>(runtime.compiled()),
                       runtime.current_workload().functions, EnergyModel{}));
    }
    // Safe transitions: every completed value is attributable to exactly
    // the epoch the destination reports — never a cross-epoch mixture.
    for (const auto& [destination, value] : last.data.destination_values) {
      uint32_t epoch = last.data.destination_epochs.at(destination);
      const auto analytic =
          executors.at(epoch).RunRound(readings.values()).destination_values;
      auto it = analytic.find(destination);
      ASSERT_NE(it, analytic.end())
          << "seed " << seed << " r" << round << " d" << destination;
      EXPECT_TRUE(ValuesClose(value, it->second))
          << "seed " << seed << " r" << round << " d" << destination
          << " epoch " << epoch;
    }
  }

  EXPECT_GE(replans, 1) << "seed " << seed;
  // The protocol had to retry: dissemination dropped most attempts, so the
  // base kept installs pending across rounds and burned extra attempts.
  EXPECT_GT(rounds_with_pending, 0) << "seed " << seed;
  EXPECT_GT(total_control_attempts, total_control_hops) << "seed " << seed;
  // ...and it eventually won: every affected node acked the current epoch.
  EXPECT_EQ(last.pending_installs, 0) << "seed " << seed;
  EXPECT_TRUE(last.data.incomplete_destinations.empty()) << "seed " << seed;
  for (const auto& [destination, epoch] : last.data.destination_epochs) {
    EXPECT_EQ(epoch, runtime.base_epoch())
        << "seed " << seed << " destination " << destination;
  }
  (void)total_epoch_rejected;  // Diagnostic; may be 0 on lucky seeds.
}

INSTANTIATE_TEST_SUITE_P(SixSeeds, DisseminationLoss,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace m2m
