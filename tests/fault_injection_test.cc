#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "plan/consistency.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "runtime/network.h"
#include "sim/executor.h"
#include "sim/fault_schedule.h"
#include "sim/readings.h"
#include "fault_test_util.h"
#include "topology/generator.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {
namespace {

using fault_test::Destinations;
using fault_test::FaultRunResult;
using fault_test::RunFaultSchedule;
using fault_test::ValuesClose;

Workload DefaultWorkload(const Topology& topology, uint64_t seed) {
  WorkloadSpec spec;
  spec.destination_count = 5;
  spec.sources_per_destination = 5;
  spec.max_hops = 4;
  spec.seed = seed;
  return GenerateWorkload(topology, spec);
}

FaultSchedule DefaultSchedule(const Topology& topology,
                              const Workload& workload, uint64_t seed) {
  FaultScheduleOptions options;
  options.rounds = 5;
  options.transient_link_fraction = 0.06;
  options.transient_drop_probability = 0.5;
  options.persistent_link_failures = 2;
  options.node_deaths = 1;
  options.seed = seed;
  return FaultSchedule::Generate(topology, Destinations(workload), options);
}

// The acceptance criterion of the fault-tolerant runtime, checked over many
// seeded schedules: after every persistent fault has been absorbed by a
// local re-plan and the transient window has passed, all alive destinations
// converge to exactly the fault-free oracle over the surviving sources; and
// replaying the same schedule reproduces the event trace byte for byte.
class FaultDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultDifferential, ConvergesToOracleWithDeterministicTrace) {
  const uint64_t seed = GetParam();
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, seed * 17 + 3);
  FaultSchedule schedule = DefaultSchedule(topology, workload, seed);

  FaultRunResult run = RunFaultSchedule(topology, workload, schedule,
                                        /*readings_seed=*/seed + 1000);

  EXPECT_TRUE(run.replan_divergences.empty())
      << "Corollary 1 violated (seed " << seed
      << "): " << run.replan_divergences.front();
  EXPECT_TRUE(run.consistency_violations.empty())
      << "seed " << seed << ": " << run.consistency_violations.front();
  EXPECT_TRUE(run.value_mismatches.empty())
      << "seed " << seed << ": " << run.value_mismatches.front();

  // Convergence round: no transient faults remain, so every alive
  // destination completes and matches the analytic oracle exactly (up to
  // float merge order).
  EXPECT_TRUE(run.unconverged_destinations.empty())
      << "seed " << seed << ": destination "
      << run.unconverged_destinations.front() << " did not converge";
  ASSERT_EQ(run.final_values.size(), run.oracle_values.size());
  for (const auto& [destination, value] : run.final_values) {
    auto it = run.oracle_values.find(destination);
    ASSERT_NE(it, run.oracle_values.end()) << "destination " << destination;
    EXPECT_TRUE(ValuesClose(value, it->second))
        << "seed " << seed << " destination " << destination << ": " << value
        << " vs oracle " << it->second;
  }

  // Determinism: the same schedule replays to a byte-identical trace.
  FaultRunResult replay = RunFaultSchedule(topology, workload, schedule,
                                           /*readings_seed=*/seed + 1000);
  EXPECT_EQ(run.trace, replay.trace) << "seed " << seed;
  EXPECT_EQ(run.attempts, replay.attempts);
  EXPECT_EQ(run.retransmissions, replay.retransmissions);
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, FaultDifferential,
                         ::testing::Range<uint64_t>(1, 21));

TEST(FaultScheduleTest, GenerationIsDeterministic) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 7);
  FaultSchedule a = DefaultSchedule(topology, workload, 42);
  FaultSchedule b = DefaultSchedule(topology, workload, 42);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_EQ(a.Describe(), b.Describe());
  for (int round = 0; round < a.options().rounds; ++round) {
    for (NodeId n = 0; n < topology.node_count(); ++n) {
      for (NodeId m : topology.neighbors(n)) {
        for (int attempt = 1; attempt <= 4; ++attempt) {
          EXPECT_EQ(a.AttemptDelivers(round, n, m, attempt),
                    b.AttemptDelivers(round, n, m, attempt));
        }
      }
    }
  }
}

TEST(FaultScheduleTest, ProtectedNodesNeverDieAndSurvivorsStayConnected) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 11);
  std::vector<NodeId> destinations = Destinations(workload);
  FaultScheduleOptions options;
  options.rounds = 6;
  options.persistent_link_failures = 4;
  options.node_deaths = 3;
  options.seed = 99;
  FaultSchedule schedule =
      FaultSchedule::Generate(topology, destinations, options);

  std::vector<NodeId> dead = schedule.DeadNodesThrough(options.rounds);
  for (NodeId d : destinations) {
    EXPECT_EQ(std::find(dead.begin(), dead.end(), d), dead.end())
        << "protected destination " << d << " died";
  }

  // The alive subgraph after all persistent faults must be connected (the
  // generator's accept/reject invariant — recovery is always possible).
  Topology masked = Topology::WithFailures(
      topology, schedule.FailedLinksThrough(options.rounds), dead);
  std::vector<bool> seen(masked.node_count(), false);
  std::queue<NodeId> frontier;
  NodeId start = kInvalidNode;
  for (NodeId n = 0; n < masked.node_count(); ++n) {
    if (std::find(dead.begin(), dead.end(), n) == dead.end()) {
      start = n;
      break;
    }
  }
  ASSERT_NE(start, kInvalidNode);
  seen[start] = true;
  frontier.push(start);
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop();
    for (NodeId m : masked.neighbors(n)) {
      if (!seen[m]) {
        seen[m] = true;
        frontier.push(m);
      }
    }
  }
  for (NodeId n = 0; n < masked.node_count(); ++n) {
    if (std::find(dead.begin(), dead.end(), n) == dead.end()) {
      EXPECT_TRUE(seen[n]) << "alive node " << n << " disconnected";
    }
  }
}

// Corollary 1, asserted directly: after a persistent link failure and a node
// death, re-solving only the affected edges yields the same plan as planning
// from scratch, while reusing most per-edge solutions.
TEST(LocalReplanTest, LocalReplanEqualsGlobalReplan) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 5);
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);

  // Fail a link that actually carries traffic (the first physical hop of
  // the first planned edge) plus kill one source, so the re-plan is forced
  // to re-route.
  const ForestEdge& edge = plan.forest().edges().front();
  ASSERT_GE(edge.segment.size(), 2u);
  std::vector<std::pair<NodeId, NodeId>> failed_links = {
      {edge.segment[0], edge.segment[1]}};
  NodeId victim = workload.tasks.front().sources.front();
  Workload survivors =
      WithSourceRemoved(workload, victim, workload.tasks.front().destination);

  Topology masked =
      Topology::WithFailures(topology, failed_links, {victim});
  PathSystem masked_paths(masked);
  UpdateStats stats;
  GlobalPlan patched = ReplanForTopology(plan, masked_paths, survivors.tasks,
                                         survivors.functions, &stats);
  GlobalPlan fresh =
      BuildPlan(patched.forest_ptr(), survivors.functions, plan.options());

  std::vector<std::string> divergence = FindPlanDivergence(patched, fresh);
  EXPECT_TRUE(divergence.empty()) << divergence.front();
  EXPECT_TRUE(PlansEquivalent(patched, fresh));
  EXPECT_TRUE(ValidatePlanConsistency(patched));
  EXPECT_EQ(stats.edges_total,
            static_cast<int>(patched.forest().edges().size()));
  // Locality: the failure touches a handful of routes; most edges keep
  // their solutions.
  EXPECT_GT(stats.edges_reused, 0);
  EXPECT_EQ(stats.edges_reused + stats.edges_reoptimized, stats.edges_total);
}

// A round under heavy transient loss: retries must recover every message
// (enough attempts for the drop rate), values must stay correct, and the
// trace must replay identically.
TEST(LossyRuntimeTest, RetriesRecoverFromHeavyTransientLoss) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 21);
  FaultScheduleOptions options;
  options.rounds = 3;
  options.transient_link_fraction = 0.5;
  options.transient_drop_probability = 0.45;
  options.persistent_link_failures = 0;
  options.node_deaths = 0;
  options.seed = 77;
  FaultSchedule schedule =
      FaultSchedule::Generate(topology, Destinations(workload), options);

  RetryPolicy retry;
  retry.max_attempts = 8;
  FaultRunResult run =
      RunFaultSchedule(topology, workload, schedule, 2024, retry);

  EXPECT_GT(run.retransmissions, 0) << "loss model injected no retries";
  EXPECT_TRUE(run.value_mismatches.empty())
      << run.value_mismatches.front();
  EXPECT_TRUE(run.unconverged_destinations.empty());
  EXPECT_EQ(run.replans, 0);
  for (const auto& [destination, value] : run.final_values) {
    EXPECT_TRUE(ValuesClose(value, run.oracle_values.at(destination)));
  }
}

// Lost acks force retransmission of already-delivered messages; the
// receiver-side dedup must absorb the duplicates without corrupting any
// aggregate (idempotent retransmission).
TEST(LossyRuntimeTest, DuplicateDeliveriesAreSuppressed) {
  // A 1x6 line: all data flows toward higher ids, all acks toward lower
  // ids, so "drop the first attempt of every decreasing-id transmission"
  // loses every first ack while delivering every data packet.
  Topology topology = MakeGrid(6, 1, 10.0, 15.0);
  Workload workload;
  workload.tasks = {Task{5, {0, 1, 2}}};
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{0, 1.0}, {1, 2.0}, {2, 3.0}};
  workload.specs = {spec};
  workload.RebuildFunctions();

  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  RuntimeNetwork network(compiled, workload.functions);

  LossyLinkModel links;
  links.attempt_delivers = [](NodeId from, NodeId to, int attempt) {
    return !(from > to && attempt == 1);
  };

  ReadingGenerator readings(topology.node_count(), 31);
  RuntimeNetwork::LossyResult lossy =
      network.RunRoundLossy(readings.values(), links);

  EXPECT_GT(lossy.acks_lost, 0);
  EXPECT_GT(lossy.retransmissions, 0);
  EXPECT_GT(lossy.duplicates, 0);
  EXPECT_EQ(lossy.messages_abandoned, 0);
  EXPECT_TRUE(lossy.incomplete_destinations.empty());

  double expected = 1.0 * readings.values()[0] + 2.0 * readings.values()[1] +
                    3.0 * readings.values()[2];
  ASSERT_EQ(lossy.destination_values.size(), 1u);
  EXPECT_TRUE(ValuesClose(lossy.destination_values.at(5), expected));
}

// When the retry budget cannot beat a dead link mid-route, the affected
// destination is reported incomplete (not CHECK-crashed) and untouched
// destinations still complete.
TEST(LossyRuntimeTest, ExhaustedRetriesReportIncompleteDestinations) {
  Topology topology = MakeGrid(6, 1, 10.0, 15.0);
  Workload workload;
  workload.tasks = {Task{5, {0, 3}}};
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{0, 1.0}, {3, 1.0}};
  workload.specs = {spec};
  workload.RebuildFunctions();

  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  RuntimeNetwork network(compiled, workload.functions);

  // Link 0->1 never delivers: source 0's contribution can never reach 5.
  LossyLinkModel links;
  links.attempt_delivers = [](NodeId from, NodeId to, int) {
    return !(from == 0 && to == 1);
  };

  ReadingGenerator readings(topology.node_count(), 8);
  RuntimeNetwork::LossyResult lossy =
      network.RunRoundLossy(readings.values(), links);

  EXPECT_GT(lossy.messages_abandoned, 0);
  ASSERT_EQ(lossy.incomplete_destinations.size(), 1u);
  EXPECT_EQ(lossy.incomplete_destinations.front(), 5);
  EXPECT_TRUE(lossy.destination_values.empty());
}

// Fault-free lossy execution must agree with the quiescence-based runtime
// and the analytic executor — the lossy path is a strict generalization.
TEST(LossyRuntimeTest, PerfectLinksMatchQuiescentRuntime) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 3);
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);

  ReadingGenerator readings(topology.node_count(), 12);
  RuntimeNetwork lossless(compiled, workload.functions);
  RuntimeNetwork::Result reference = lossless.RunRound(readings.values());

  RuntimeNetwork network(compiled, workload.functions);
  LossyLinkModel links;
  links.attempt_delivers = [](NodeId, NodeId, int) { return true; };
  RuntimeNetwork::LossyResult lossy =
      network.RunRoundLossy(readings.values(), links);

  EXPECT_EQ(lossy.retransmissions, 0);
  EXPECT_EQ(lossy.duplicates, 0);
  EXPECT_EQ(lossy.messages_abandoned, 0);
  ASSERT_EQ(lossy.destination_values.size(),
            reference.destination_values.size());
  for (const auto& [destination, value] : reference.destination_values) {
    EXPECT_TRUE(ValuesClose(lossy.destination_values.at(destination), value))
        << "destination " << destination;
  }
}

}  // namespace
}  // namespace m2m
