// Mobility and partition-tolerance suite: continuous-movement link churn
// (random waypoint / velocity drift) composed with fault schedules,
// adversarial channels, and workload churn over the self-healing runtime.
// Pins four contracts: (1) mobility draws from a dedicated RNG stream, so
// composing a zero-velocity trace leaves existing runs byte-identical;
// (2) destinations cut off by a believed partition report *degraded with a
// partition cause*, never a stale "complete"; (3) split islands are
// believed partitioned (not dead) and merge back through forced full-image
// reconciliation — including when both lineages bumped epochs
// independently; (4) the detector's flap damping quarantines an
// oscillating link without ever exiling it permanently.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "agg/aggregate_function.h"
#include "fault_test_util.h"
#include "obs/metrics.h"
#include "plan/consistency.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "plan/serialization.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "runtime/channel.h"
#include "runtime/detector.h"
#include "runtime/network.h"
#include "runtime/partition.h"
#include "sim/base_station.h"
#include "sim/executor.h"
#include "sim/fault_schedule.h"
#include "sim/mobility_sim.h"
#include "sim/readings.h"
#include "sim/self_healing.h"
#include "topology/generator.h"
#include "topology/mobility.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {
namespace {

using fault_test::Destinations;
using fault_test::ValuesClose;

// --- Mobility trace unit tests --------------------------------------------

TEST(MobilityTraceTest, StaticTraceMasksNothing) {
  Topology topology = MakeGreatDuckIslandLike();
  MobilityOptions options;
  options.model = MobilityModel::kStatic;
  options.rounds = 8;
  options.speed_m_per_round = 5.0;  // Ignored by the static model.
  MobilityTrace trace = MobilityTrace::Generate(topology, options);
  EXPECT_EQ(trace.rounds(), 8);
  EXPECT_TRUE(trace.events().empty());
  for (int round = 0; round <= 8; ++round) {
    EXPECT_EQ(trace.down_link_count(round), 0) << "round " << round;
  }
  // Zero speed masks nothing either, whatever the model.
  MobilityOptions zero;
  zero.model = MobilityModel::kVelocityDrift;
  zero.rounds = 8;
  zero.speed_m_per_round = 0.0;
  MobilityTrace still = MobilityTrace::Generate(topology, zero);
  EXPECT_TRUE(still.events().empty());
  EXPECT_EQ(still.PositionsAt(8), topology.positions());
}

TEST(MobilityTraceTest, GenerateIsDeterministicInSeed) {
  Topology topology = MakeGreatDuckIslandLike();
  MobilityOptions options;
  options.model = MobilityModel::kVelocityDrift;
  options.rounds = 12;
  options.speed_m_per_round = 6.0;
  options.seed = 42;
  MobilityTrace a = MobilityTrace::Generate(topology, options);
  MobilityTrace b = MobilityTrace::Generate(topology, options);
  EXPECT_EQ(a.events(), b.events());
  EXPECT_EQ(a.Describe(), b.Describe());
  for (int round = 0; round <= 12; ++round) {
    EXPECT_EQ(a.PositionsAt(round), b.PositionsAt(round));
  }
  options.seed = 43;
  MobilityTrace c = MobilityTrace::Generate(topology, options);
  EXPECT_NE(a.PositionsAt(12), c.PositionsAt(12));
}

TEST(MobilityTraceTest, AnchoredNodesNeverMove) {
  Topology topology = MakeGreatDuckIslandLike();
  MobilityOptions options;
  options.model = MobilityModel::kRandomWaypoint;
  options.rounds = 10;
  options.speed_m_per_round = 8.0;
  options.anchored = {0, 5, 12};
  MobilityTrace trace = MobilityTrace::Generate(topology, options);
  bool someone_moved = false;
  for (int round = 1; round <= 10; ++round) {
    for (NodeId anchor : options.anchored) {
      EXPECT_EQ(trace.PositionsAt(round)[anchor],
                topology.positions()[anchor])
          << "anchor " << anchor << " moved at round " << round;
    }
    if (trace.PositionsAt(round) != trace.PositionsAt(0)) {
      someone_moved = true;
    }
  }
  EXPECT_TRUE(someone_moved);
}

TEST(MobilityTraceTest, DriftProducesMakeAndBreakChurn) {
  Topology topology = MakeGreatDuckIslandLike();
  MobilityOptions options;
  options.model = MobilityModel::kVelocityDrift;
  options.rounds = 30;
  options.speed_m_per_round = 8.0;
  MobilityTrace trace = MobilityTrace::Generate(topology, options);
  EXPECT_GT(trace.total_breaks(), 0);
  EXPECT_GT(trace.total_makes(), 0);  // Drifters come back into range too.
  // Events are ordered by (round, a, b) with a < b and consistent with the
  // per-round down sets.
  int last_round = 0;
  for (const LinkEvent& event : trace.events()) {
    EXPECT_GE(event.round, last_round);
    last_round = event.round;
    EXPECT_LT(event.a, event.b);
    EXPECT_EQ(trace.LinkUpAt(event.round, event.a, event.b), event.up);
  }
}

TEST(MobilityTraceTest, ScriptedTraceControlsLinkStateExactly) {
  // A 3-node line, spacing 40 m, range 50 m: only adjacent links exist.
  Topology topology = MakeGrid(3, 1, 40.0, 50.0);
  std::vector<std::vector<Point>> positions(4, topology.positions());
  positions[1][2].x += 30.0;  // Round 1: link 1-2 stretches to 70 m.
  positions[2][2].x += 30.0;  // Round 2: still split.
  // Round 3: node 2 returns.
  MobilityTrace trace(topology, std::move(positions));
  EXPECT_TRUE(trace.LinkUpAt(0, 1, 2));
  EXPECT_FALSE(trace.LinkUpAt(1, 1, 2));
  EXPECT_FALSE(trace.LinkUpAt(2, 2, 1));  // Orientation-independent.
  EXPECT_TRUE(trace.LinkUpAt(3, 1, 2));
  EXPECT_TRUE(trace.LinkUpAt(1, 0, 1));  // The untouched link stays up.
  // Non-deployment pairs are never masked.
  EXPECT_TRUE(trace.LinkUpAt(1, 0, 2));
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0], (LinkEvent{1, 1, 2, false}));
  EXPECT_EQ(trace.events()[1], (LinkEvent{3, 1, 2, true}));
  EXPECT_EQ(trace.DownLinksAt(1),
            (std::vector<std::pair<NodeId, NodeId>>{{1, 2}}));
  // Queries past the last scripted round clamp to the final state.
  EXPECT_TRUE(trace.LinkUpAt(99, 1, 2));
}

TEST(ComponentMapTest, LabelsComponentsAndDeadNodes) {
  Topology topology = MakeGrid(6, 1, 40.0, 50.0);  // Line 0-1-2-3-4-5.
  ComponentMap whole = BuildComponents(topology);
  EXPECT_EQ(whole.component_count, 1);
  EXPECT_TRUE(whole.SameComponent(0, 5));

  ComponentMap split = BuildComponents(topology, {{2, 3}}, {5});
  EXPECT_EQ(split.component_count, 2);
  EXPECT_TRUE(split.SameComponent(0, 2));
  EXPECT_TRUE(split.SameComponent(3, 4));
  EXPECT_FALSE(split.SameComponent(2, 3));
  EXPECT_EQ(split.ComponentOf(5), -1);  // Dead.
  EXPECT_EQ(split.Members(0), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(split.Members(1), (std::vector<NodeId>{3, 4}));
  EXPECT_EQ(split.Sizes(), (std::vector<int>{3, 2}));
}

// --- Ledger partition classification --------------------------------------

TEST(SuspicionLedgerPartitionTest, MultiNodeIslandIsPartitionedNotDead) {
  Topology topology = MakeGrid(6, 1, 40.0, 50.0);
  SuspicionLedger legacy(&topology, 0);
  SuspicionLedger aware(&topology, 0);
  aware.set_partition_aware(true);

  // Cutting 2-3 strands the island {3, 4, 5}.
  legacy.RecordSuspicion(2, 3);
  aware.RecordSuspicion(2, 3);

  // Legacy inference (sound under survivors-stay-connected): all dead.
  EXPECT_EQ(legacy.believed_dead(), (std::vector<NodeId>{3, 4, 5}));
  EXPECT_TRUE(legacy.believed_partitioned().empty());

  // Partition-aware: a 3-node island is alive, just unreachable.
  EXPECT_TRUE(aware.believed_dead().empty());
  EXPECT_EQ(aware.believed_partitioned(), (std::vector<NodeId>{3, 4, 5}));
  EXPECT_EQ(aware.partition_region_count(), 1);
  // Both must mask the unreachable region out of the planning topology.
  EXPECT_FALSE(aware.BelievedTopology().IsConnected());

  // A singleton unreachable component is still believed dead: every one of
  // its own links was independently reported, which only death produces.
  aware.RecordSuspicion(4, 5);
  EXPECT_EQ(aware.believed_dead(), (std::vector<NodeId>{5}));
  EXPECT_EQ(aware.believed_partitioned(), (std::vector<NodeId>{3, 4}));

  // Healing both cuts merges the island back.
  aware.RecordReadmission(2, 3);
  aware.RecordReadmission(4, 5);
  EXPECT_TRUE(aware.believed_partitioned().empty());
  EXPECT_TRUE(aware.believed_dead().empty());
  EXPECT_EQ(aware.partition_region_count(), 0);
}

// --- Detector flap damping (oscillating-link regression) ------------------

// Drives a 2-node detector through scripted link-up/link-down rounds.
struct FlapHarness {
  Topology topology = MakeGrid(2, 1, 40.0, 50.0);
  FailureDetector detector;
  int round = 0;

  explicit FlapHarness(DetectorOptions options)
      : detector(topology, options) {}

  FailureDetector::RoundReport Step(bool link_up) {
    auto delivers = [link_up](NodeId, NodeId, int) { return link_up; };
    auto report = detector.ObserveRound(round, {}, delivers,
                                        [](NodeId) { return true; });
    ++round;
    return report;
  }
};

TEST(DetectorFlapTest, DefaultOptionsKeepLegacyProbation) {
  FlapHarness harness{DetectorOptions{}};  // backoff factor 1 = legacy.
  for (int cycle = 0; cycle < 4; ++cycle) {
    harness.Step(false);
    harness.Step(false);
    ASSERT_TRUE(harness.detector.Suspects(0, 1)) << "cycle " << cycle;
    // Legacy: probation never escalates, flap history never accumulates.
    EXPECT_EQ(harness.detector.required_probation(0, 1),
              DetectorOptions{}.probation_rounds);
    EXPECT_EQ(harness.detector.flap_count(0, 1), 0);
    harness.Step(true);
    auto report = harness.Step(true);
    EXPECT_EQ(report.readmitted.size(), 2u) << "cycle " << cycle;
    EXPECT_FALSE(harness.detector.Suspects(0, 1));
  }
}

TEST(DetectorFlapTest, OscillatingLinkEscalatesQuarantine) {
  DetectorOptions options;
  options.suspicion_threshold = 2;
  options.probation_rounds = 2;
  options.probation_backoff_factor = 2;
  options.max_probation_rounds = 8;
  options.flap_forgiveness_rounds = 100;
  FlapHarness harness{options};

  // First suspicion: base probation.
  harness.Step(false);
  harness.Step(false);
  ASSERT_TRUE(harness.detector.Suspects(0, 1));
  EXPECT_EQ(harness.detector.required_probation(0, 1), 2);
  harness.Step(true);
  harness.Step(true);
  EXPECT_FALSE(harness.detector.Suspects(0, 1));

  // Each re-suspicion doubles the required probation: 4, then 8 (capped).
  for (int expected : {4, 8, 8}) {
    harness.Step(false);
    harness.Step(false);
    ASSERT_TRUE(harness.detector.Suspects(0, 1));
    EXPECT_EQ(harness.detector.required_probation(0, 1), expected);
    // While oscillating faster than the requirement, the link STAYS
    // quarantined — a 2-up/2-down flapper never storms the planner.
    harness.Step(true);
    harness.Step(true);
    EXPECT_TRUE(harness.detector.Suspects(0, 1));
    for (int i = 0; i < expected; ++i) harness.Step(true);
    EXPECT_FALSE(harness.detector.Suspects(0, 1))
        << "required " << expected;
  }
  EXPECT_GT(harness.detector.flap_count(0, 1), 0);
}

TEST(DetectorFlapTest, CapGuaranteesReadmissionAfterStabilization) {
  DetectorOptions options;
  options.probation_backoff_factor = 4;
  options.max_probation_rounds = 6;
  FlapHarness harness{options};
  // Many flap cycles: probation escalates but can never exceed the cap.
  for (int cycle = 0; cycle < 10; ++cycle) {
    harness.Step(false);
    harness.Step(false);
    ASSERT_TRUE(harness.detector.Suspects(0, 1));
    EXPECT_LE(harness.detector.required_probation(0, 1), 6);
    for (int i = 0; i < 6; ++i) harness.Step(true);
    EXPECT_FALSE(harness.detector.Suspects(0, 1))
        << "cycle " << cycle << ": link exiled past the cap";
  }
  // Once genuinely stable, the link stays trusted.
  for (int i = 0; i < 20; ++i) harness.Step(true);
  EXPECT_FALSE(harness.detector.Suspects(0, 1));
  EXPECT_EQ(harness.detector.missed_rounds(0, 1), 0);
}

TEST(DetectorFlapTest, ForgivenessResetsEscalation) {
  DetectorOptions options;
  options.probation_rounds = 2;
  options.probation_backoff_factor = 2;
  options.max_probation_rounds = 16;
  options.flap_forgiveness_rounds = 10;
  FlapHarness harness{options};

  harness.Step(false);
  harness.Step(false);
  EXPECT_EQ(harness.detector.required_probation(0, 1), 2);
  harness.Step(true);
  harness.Step(true);
  harness.Step(false);
  harness.Step(false);
  EXPECT_EQ(harness.detector.required_probation(0, 1), 4);  // Escalated.
  for (int i = 0; i < 4; ++i) harness.Step(true);
  EXPECT_FALSE(harness.detector.Suspects(0, 1));

  // A long quiet stretch clears the flap record...
  for (int i = 0; i < 12; ++i) harness.Step(true);
  // ...so the next suspicion starts from the base probation again.
  harness.Step(false);
  harness.Step(false);
  EXPECT_EQ(harness.detector.required_probation(0, 1), 2);
  EXPECT_EQ(harness.detector.flap_count(0, 1), 1);
}

// --- RNG stream separation (20 seeds) -------------------------------------

// One self-healing run over a fault schedule, optionally masked by a
// mobility trace. Returns the byte-exact event trace.
std::string RunScheduleTrace(const Topology& topology,
                             const Workload& workload,
                             const FaultSchedule& schedule, NodeId base,
                             uint64_t readings_seed, int rounds,
                             const MobilityTrace* mobility) {
  EventTrace trace;
  trace.Append(schedule.Describe());
  SelfHealingRuntime runtime(topology, workload, base, SelfHealingOptions{});
  for (int round = 0; round < rounds; ++round) {
    ReadingGenerator readings(topology.node_count(),
                              readings_seed + static_cast<uint64_t>(round));
    LossyLinkModel physical;
    physical.attempt_delivers = [&schedule, round](NodeId from, NodeId to,
                                                   int attempt) {
      return schedule.AttemptDelivers(round, from, to, attempt);
    };
    physical.node_alive = [&schedule, round](NodeId n) {
      return schedule.NodeAliveAt(round, n);
    };
    if (mobility != nullptr) {
      physical = WithMobility(physical, *mobility, round);
    }
    runtime.RunRound(round, readings.values(), physical, &trace);
  }
  return trace.ToString();
}

// Mobility must draw from its own dedicated RNG stream: generating a trace
// (even a vigorous one) perturbs no fault-schedule or readings draw, and a
// zero-velocity trace composed into the link model leaves the whole run
// byte-identical.
class RngStreamSeparation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngStreamSeparation, ZeroVelocityTraceIsByteIdentical) {
  const uint64_t seed = GetParam();
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 4;
  spec.sources_per_destination = 4;
  spec.seed = seed * 17 + 3;
  Workload workload = GenerateWorkload(topology, spec);
  NodeId base = PickBaseStation(topology);

  std::vector<NodeId> protected_nodes = Destinations(workload);
  protected_nodes.push_back(base);
  FaultScheduleOptions fault_options;
  fault_options.rounds = 8;
  fault_options.seed = seed;
  FaultSchedule schedule =
      FaultSchedule::Generate(topology, protected_nodes, fault_options);

  std::string bare = RunScheduleTrace(topology, workload, schedule, base,
                                      seed + 99, 10, nullptr);

  // Generating a *moving* trace between the two runs must not perturb
  // anything: its draws live on the dedicated mobility stream.
  MobilityOptions vigorous;
  vigorous.model = MobilityModel::kVelocityDrift;
  vigorous.rounds = 10;
  vigorous.speed_m_per_round = 9.0;
  vigorous.seed = seed;
  MobilityTrace moving = MobilityTrace::Generate(topology, vigorous);
  EXPECT_GT(moving.total_breaks() + moving.total_makes(), 0);

  MobilityOptions still;
  still.model = MobilityModel::kRandomWaypoint;
  still.rounds = 10;
  still.speed_m_per_round = 0.0;
  still.seed = seed;
  MobilityTrace zero_velocity = MobilityTrace::Generate(topology, still);
  EXPECT_TRUE(zero_velocity.events().empty());

  std::string masked = RunScheduleTrace(topology, workload, schedule, base,
                                        seed + 99, 10, &zero_velocity);
  EXPECT_EQ(bare, masked) << "seed " << seed;

  // The schedule itself regenerates byte-identically after mobility drew.
  FaultSchedule again =
      FaultSchedule::Generate(topology, protected_nodes, fault_options);
  EXPECT_EQ(schedule.Describe(), again.Describe()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, RngStreamSeparation,
                         ::testing::Range<uint64_t>(1, 21));

// --- Scripted split / merge partition tolerance ---------------------------

// Line deployment 0-1-2-...-6 (spacing 40 m, range 50 m), base at node 0.
// Rounds [3, 9]: nodes {4, 5, 6} shift 30 m right, breaking link 3-4 and
// stranding a 3-node island. Round 10: they return. Deterministic, so the
// partition / merge latencies are pinned exactly.
struct SplitMergeRun {
  std::string trace;
  int first_partition_round = -1;  ///< Base first believes {4,5,6} split.
  int first_merged_round = -1;     ///< Beliefs clear again.
  bool island_ever_believed_dead = false;
  std::vector<std::string> overlay_errors;
  int64_t merge_reconciliations = 0;
  int64_t partition_events = 0;
  int64_t merge_events = 0;
  int final_pending_installs = -1;
  std::unordered_map<NodeId, double> final_values;
  std::vector<NodeId> final_incomplete;
  std::optional<GlobalPlan> final_plan;
};

SplitMergeRun RunSplitMerge(uint64_t readings_seed) {
  Topology topology = MakeGrid(7, 1, 40.0, 50.0);
  Workload workload;
  workload.tasks = {Task{2, {1, 5}}, Task{5, {1, 2}}};
  FunctionSpec near_spec;
  near_spec.kind = AggregateKind::kWeightedSum;
  near_spec.weights = {{1, 1.0}, {5, 2.0}};
  FunctionSpec far_spec;
  far_spec.kind = AggregateKind::kWeightedSum;
  far_spec.weights = {{1, 1.0}, {2, 3.0}};
  workload.specs = {near_spec, far_spec};
  workload.RebuildFunctions();

  const int kSplitRound = 3;
  const int kMergeRound = 10;
  const int kTotalRounds = 20;
  std::vector<std::vector<Point>> positions;
  for (int round = 0; round < kTotalRounds; ++round) {
    std::vector<Point> at = topology.positions();
    if (round >= kSplitRound && round < kMergeRound) {
      for (NodeId n : {4, 5, 6}) at[n].x += 30.0;
    }
    positions.push_back(std::move(at));
  }
  MobilityTrace trace_mobility(topology, std::move(positions));

  SelfHealingOptions options;
  options.partition_aware = true;
  obs::MetricsRegistry metrics;
  SelfHealingRuntime runtime(topology, workload, /*base=*/0, options);
  runtime.set_metrics(&metrics);

  SplitMergeRun run;
  EventTrace trace;
  auto overlay_error = [&run](int round, const std::string& what) {
    std::ostringstream os;
    os << "r" << round << ": " << what;
    run.overlay_errors.push_back(os.str());
  };

  bool was_partitioned = false;
  for (int round = 0; round < kTotalRounds; ++round) {
    ReadingGenerator readings(topology.node_count(),
                              readings_seed + static_cast<uint64_t>(round));
    LossyLinkModel physical;
    physical.attempt_delivers = [](NodeId, NodeId, int) { return true; };
    physical = WithMobility(physical, trace_mobility, round);

    SelfHealingRoundResult result =
        runtime.RunRound(round, readings.values(), physical, &trace);

    if (!result.believed_partitioned.empty() &&
        run.first_partition_round < 0) {
      run.first_partition_round = round;
    }
    if (run.first_partition_round >= 0 && run.first_merged_round < 0 &&
        result.believed_partitioned.empty()) {
      run.first_merged_round = round;
    }
    if (!runtime.ledger().believed_dead().empty()) {
      run.island_ever_believed_dead = true;
    }

    // The "never stale complete" contract, pinned while the split is
    // believed: destination 2 is degraded by the partition (source 5 cut
    // off), destination 5 is unreachable outright — and neither round may
    // claim complete coverage of the ORIGINAL task for destination 2.
    if (!result.believed_partitioned.empty()) {
      const auto near_it = result.partition_status.find(2);
      if (near_it == result.partition_status.end()) {
        overlay_error(round, "destination 2 missing partition status");
      } else {
        const DestinationPartitionStatus& status = near_it->second;
        if (!status.degraded || !status.degraded_by_partition) {
          overlay_error(round, "destination 2 not degraded-by-partition");
        }
        if (status.partitioned_sources != std::vector<NodeId>{5}) {
          overlay_error(round, "destination 2 partitioned sources wrong");
        }
        if (status.original_coverage >= 1.0) {
          overlay_error(round, "destination 2 claims full coverage");
        }
        if (!status.destination_reachable) {
          overlay_error(round, "destination 2 wrongly unreachable");
        }
      }
      const auto far_it = result.partition_status.find(5);
      if (far_it == result.partition_status.end()) {
        overlay_error(round, "destination 5 missing partition status");
      } else if (far_it->second.destination_reachable ||
                 !far_it->second.degraded_by_partition) {
        overlay_error(round, "destination 5 should be cut off");
      }
      // Data plane: destination 2 must never report a complete aggregate
      // over the original source count while the split is believed. The
      // round's data phase runs before belief updates, so the check only
      // binds when the partition was already believed entering the round
      // (a merge or a late stale report can flip belief mid-round).
      auto cov_it = result.data.destination_coverage.find(2);
      if (was_partitioned && cov_it != result.data.destination_coverage.end() &&
          cov_it->second.complete && cov_it->second.expected == 2) {
        overlay_error(round, "stale complete over the original task");
      }
    }
    was_partitioned = !result.believed_partitioned.empty();

    if (round == kTotalRounds - 1) {
      run.final_values = result.data.destination_values;
      run.final_incomplete = result.data.incomplete_destinations;
      run.final_pending_installs = result.pending_installs;
    }
  }
  run.merge_reconciliations =
      metrics.Total("partition.merge_reconciliations");
  run.partition_events = metrics.Total("partition.partition_events");
  run.merge_events = metrics.Total("partition.merge_events");
  run.final_plan = runtime.plan();
  run.trace = trace.ToString();
  return run;
}

TEST(PartitionToleranceTest, SplitIslandDegradesThenMergesAndReconciles) {
  SplitMergeRun run = RunSplitMerge(/*readings_seed=*/777);
  const DetectorOptions detector = SelfHealingOptions{}.detector;

  // Partition detected as *partitioned* (never dead) within the detection
  // budget of the break at round 3.
  ASSERT_GE(run.first_partition_round, 0) << "partition never believed";
  EXPECT_LE(run.first_partition_round, 3 + detector.suspicion_threshold + 2);
  EXPECT_FALSE(run.island_ever_believed_dead)
      << "a live 3-node island must be believed partitioned, not dead";
  EXPECT_GE(run.partition_events, 3);  // Nodes 4, 5, 6.

  // Merge believed within the probation + detection budget of the heal at
  // round 10, with every island node forced a full-image reconciliation.
  ASSERT_GE(run.first_merged_round, 0) << "island never merged back";
  EXPECT_LE(run.first_merged_round, 10 + detector.probation_rounds +
                                        detector.suspicion_threshold + 2);
  EXPECT_GE(run.merge_events, 3);
  EXPECT_GE(run.merge_reconciliations, 3)
      << "island nodes must get full framed images on merge";

  EXPECT_TRUE(run.overlay_errors.empty())
      << run.overlay_errors.front() << " (" << run.overlay_errors.size()
      << " total)";

  // Full convergence after the merge: nothing pending, both destinations
  // complete, and the final plan equals a from-scratch plan over the full
  // topology and workload.
  EXPECT_EQ(run.final_pending_installs, 0);
  EXPECT_TRUE(run.final_incomplete.empty());
  EXPECT_TRUE(run.final_values.contains(2));
  EXPECT_TRUE(run.final_values.contains(5));

  Topology topology = MakeGrid(7, 1, 40.0, 50.0);
  Workload workload;
  workload.tasks = {Task{2, {1, 5}}, Task{5, {1, 2}}};
  FunctionSpec near_spec;
  near_spec.kind = AggregateKind::kWeightedSum;
  near_spec.weights = {{1, 1.0}, {5, 2.0}};
  FunctionSpec far_spec;
  far_spec.kind = AggregateKind::kWeightedSum;
  far_spec.weights = {{1, 1.0}, {2, 3.0}};
  workload.specs = {near_spec, far_spec};
  workload.RebuildFunctions();
  PathSystem paths(topology);
  GlobalPlan oracle = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  std::vector<std::string> divergence =
      FindPlanDivergence(*run.final_plan, oracle);
  EXPECT_TRUE(divergence.empty()) << divergence.front();
  EXPECT_TRUE(ValidatePlanConsistency(*run.final_plan));

  // Determinism: the scripted scenario replays byte-identically.
  SplitMergeRun replay = RunSplitMerge(/*readings_seed=*/777);
  EXPECT_EQ(run.trace, replay.trace);
  EXPECT_EQ(run.first_partition_round, replay.first_partition_round);
  EXPECT_EQ(run.first_merged_round, replay.first_merged_round);
}

// --- Epoch divergence: both sides replanned while split -------------------

TEST(PartitionToleranceTest, ForeignEpochDivergenceConvergesToOnePlan) {
  // Line of 5, perfect links. Node 4 plays the healed far side of a split
  // whose island base bumped epochs up to 5 on its own: we install that
  // foreign-lineage image directly, then drive the base station's
  // reconciliation — it must detect the divergence (its install bounces
  // off the higher epoch), open an epoch above BOTH lineages, and force a
  // full image that converges node 4 onto one plan.
  Topology topology = MakeGrid(5, 1, 40.0, 50.0);
  Workload workload;
  workload.tasks = {Task{4, {1, 2}}};
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{1, 1.0}, {2, 2.0}};
  workload.specs = {spec};
  workload.RebuildFunctions();

  SelfHealingOptions options;
  options.partition_aware = true;
  obs::MetricsRegistry metrics;
  SelfHealingRuntime runtime(topology, workload, /*base=*/0, options);
  runtime.set_metrics(&metrics);

  LossyLinkModel physical;
  physical.attempt_delivers = [](NodeId, NodeId, int) { return true; };

  ReadingGenerator readings(topology.node_count(), 5);
  runtime.RunRound(0, readings.values(), physical);
  ASSERT_EQ(runtime.network().plan_epoch(4), 0u);

  // The far side's independent progress: same plan content, epoch 5.
  PathSystem paths(topology);
  GlobalPlan island_plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan island_compiled = CompiledPlan::Compile(
      island_plan, workload.functions, MergePolicy::kGreedyMergePerEdge,
      /*plan_epoch=*/5);
  std::vector<std::vector<uint8_t>> island_images =
      EncodeAllNodeStates(island_compiled, workload.functions);
  std::vector<std::vector<NodeId>> segments;
  for (const OutgoingMessageEntry& entry :
       island_compiled.state(4).outgoing_table) {
    segments.push_back(entry.segment);
  }
  ASSERT_TRUE(runtime.mutable_network().InstallNodeImage(4, island_images[4],
                                                         segments));
  ASSERT_EQ(runtime.network().plan_epoch(4), 5u);

  // Trigger a replan: the base (still on lineage 0) opens epoch 1 and
  // disseminates — its install at node 4 must BOUNCE (higher epoch wins),
  // recording the divergence instead of silently acking stale state.
  runtime.SubmitWorkload(workload);
  runtime.RunRound(1, readings.values(), physical);
  EXPECT_EQ(runtime.foreign_epoch_max(), 5u);
  EXPECT_GE(metrics.Total("partition.epoch_divergences"), 1);
  EXPECT_EQ(runtime.network().plan_epoch(4), 5u) << "stale install won";

  // The reconciliation replan opens max(1, 5) + 1 = 6 and forces a full
  // image: node 4 joins the surviving lineage.
  runtime.RunRound(2, readings.values(), physical);
  EXPECT_EQ(runtime.base_epoch(), 6u);
  EXPECT_EQ(runtime.network().plan_epoch(4), 6u);

  // Fully converged: every node on epoch 6, nothing pending, and the
  // destination completes under the reconciled plan.
  SelfHealingRoundResult settled =
      runtime.RunRound(3, readings.values(), physical);
  EXPECT_EQ(settled.pending_installs, 0);
  // Every node with a plan role sits on the reconciled epoch. (Nodes with
  // an empty image — here the base, which only runs control — are never
  // shipped one and legitimately stay at 0.)
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    const uint32_t node_epoch = runtime.network().plan_epoch(n);
    EXPECT_TRUE(node_epoch == 6u || node_epoch == 0u) << "node " << n;
  }
  EXPECT_EQ(runtime.network().plan_epoch(4), 6u);
  EXPECT_TRUE(settled.data.destination_values.contains(4));
  EXPECT_TRUE(settled.data.incomplete_destinations.empty());
}

// --- Combined mobility x fault x channel x churn differential -------------

double SubsetOracle(const AggregateFunction& fn,
                    const std::vector<NodeId>& sources,
                    const std::vector<double>& readings) {
  std::optional<PartialRecord> merged;
  for (NodeId s : sources) {
    PartialRecord partial = fn.PreAggregate(s, readings[s]);
    merged = merged ? fn.Merge(*merged, partial) : partial;
  }
  return fn.Evaluate(*merged);
}

struct MobilityChaosRun {
  std::string trace;
  std::vector<std::string> errors;
  int64_t new_suspicions = 0;
  int64_t replans = 0;
  int64_t partitioned_node_rounds = 0;
  int64_t link_breaks = 0;
  int64_t merge_reconciliations = 0;
  int64_t attempts = 0;
  int64_t control_hops = 0;
};

MobilityChaosRun RunMobilityChaos(uint64_t seed) {
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 4;
  spec.sources_per_destination = 4;
  spec.seed = seed * 17 + 3;
  Workload workload = GenerateWorkload(topology, spec);
  NodeId base = PickBaseStation(topology);

  std::vector<NodeId> protected_nodes = Destinations(workload);
  if (std::find(protected_nodes.begin(), protected_nodes.end(), base) ==
      protected_nodes.end()) {
    protected_nodes.push_back(base);
  }
  FaultScheduleOptions fault_options;
  fault_options.rounds = 14;
  fault_options.transient_link_fraction = 0.04;
  fault_options.transient_drop_probability = 0.4;
  fault_options.persistent_link_failures = 1;
  fault_options.node_deaths = 1;
  fault_options.node_recoveries = 1;
  fault_options.recovery_delay_rounds = 5;
  fault_options.seed = seed;
  FaultSchedule schedule =
      FaultSchedule::Generate(topology, protected_nodes, fault_options);

  ChannelOptions channel_options;
  channel_options.good_loss = 0.05;
  channel_options.bad_loss = 0.6;
  channel_options.p_enter_bad = 0.05;
  channel_options.p_exit_bad = 0.3;
  channel_options.seed = seed * 1000 + 7;
  ChannelModel channel(channel_options);

  const int kRounds = 18;
  MobilityOptions mobility_options;
  mobility_options.model = MobilityModel::kVelocityDrift;
  mobility_options.rounds = kRounds;
  mobility_options.speed_m_per_round = 6.0;
  mobility_options.anchored = protected_nodes;
  mobility_options.seed = seed;
  MobilityTrace mobility = MobilityTrace::Generate(topology, mobility_options);

  SelfHealingOptions options;
  options.partition_aware = true;
  options.retry.max_attempts = 8;
  obs::MetricsRegistry metrics;
  MobilityMetricHandles mobility_handles = RegisterMobilityMetrics(metrics);
  SelfHealingRuntime runtime(topology, workload, base, options);
  runtime.set_metrics(&metrics);

  // The functions of every destination ever configured (churn only ever
  // removes a task here), for the delivered-set oracle.
  const FunctionSet& functions = workload.functions;
  // Workload churn at round 7: the last task is retired mid-flight, so
  // mobility, faults, and lifecycle churn all flow through the same
  // replan / epoch machinery.
  Workload churned = workload;
  churned.tasks.pop_back();
  churned.specs.pop_back();
  churned.RebuildFunctions();

  MobilityChaosRun run;
  EventTrace trace;
  trace.Append(schedule.Describe());
  trace.Append(mobility.Describe());
  auto record_error = [&run](int round, const std::string& what) {
    std::ostringstream os;
    os << "r" << round << ": " << what;
    run.errors.push_back(os.str());
  };

  const Workload* configured = &workload;
  for (int round = 0; round < kRounds; ++round) {
    if (round == 7) {
      runtime.SubmitWorkload(churned);
      configured = &churned;
    }
    ReadingGenerator readings(topology.node_count(),
                              seed + 500 + static_cast<uint64_t>(round));
    // Physical oracle: channel loss AND scheduled faults AND movement.
    LossyLinkModel base_model = channel.Bind(round);
    auto channel_delivers = base_model.attempt_delivers;
    base_model.attempt_delivers = [&schedule, channel_delivers, round](
                                      NodeId from, NodeId to, int attempt) {
      return schedule.AttemptDelivers(round, from, to, attempt) &&
             channel_delivers(from, to, attempt);
    };
    base_model.node_alive = [&schedule, round](NodeId n) {
      return schedule.NodeAliveAt(round, n);
    };
    LossyLinkModel physical = WithMobility(base_model, mobility, round);

    SelfHealingRoundResult result =
        runtime.RunRound(round, readings.values(), physical, &trace);
    RecordMobilityRound(mobility, round, metrics, mobility_handles);
    run.new_suspicions += result.new_suspicions;
    run.attempts += result.data.attempts;
    run.control_hops += result.control_hops_crossed;
    run.partitioned_node_rounds +=
        static_cast<int64_t>(result.believed_partitioned.size());

    // Partition-status overlay invariants against the configured workload.
    const std::vector<NodeId>& parted = result.believed_partitioned;
    for (const Task& task : configured->tasks) {
      auto status_it = result.partition_status.find(task.destination);
      if (status_it == result.partition_status.end()) {
        record_error(round, "destination missing partition status");
        continue;
      }
      const DestinationPartitionStatus& status = status_it->second;
      if (status.expected_original != static_cast<int>(task.sources.size())) {
        record_error(round, "expected_original disagrees with the task");
      }
      if (status.original_coverage < 0.0 || status.original_coverage > 1.0) {
        record_error(round, "original_coverage outside [0, 1]");
      }
      const bool any_cut = !status.dead_sources.empty() ||
                           !status.partitioned_sources.empty() ||
                           !status.destination_reachable;
      if (status.degraded != any_cut) {
        record_error(round, "degraded verdict inconsistent");
      }
      if (status.degraded_by_partition && !status.degraded) {
        record_error(round, "degraded_by_partition without degraded");
      }
      for (NodeId s : status.partitioned_sources) {
        if (std::find(parted.begin(), parted.end(), s) == parted.end()) {
          record_error(round, "partitioned source not believed partitioned");
        }
      }
      // The tentpole contract: a believed-partitioned source can never
      // hide behind a full-coverage claim for the original query.
      if (!status.partitioned_sources.empty() &&
          status.original_coverage >= 1.0) {
        record_error(round, "stale full coverage over a partitioned source");
      }
    }

    // Delivered-set oracle: every coverage verdict with an exact set must
    // reproduce the reported value from exactly those contributors.
    for (const auto& [destination, cov] : result.data.destination_coverage) {
      if (!cov.exact_known || cov.covered == 0) continue;
      if (static_cast<int>(cov.sources.size()) != cov.covered) {
        record_error(round, "coverage set size disagrees with covered");
        continue;
      }
      const bool completed =
          result.data.destination_values.contains(destination);
      double reported =
          completed ? result.data.destination_values.at(destination)
          : result.data.degraded_values.contains(destination)
              ? result.data.degraded_values.at(destination)
              : 0.0;
      if (!completed && !result.data.degraded_values.contains(destination)) {
        record_error(round, "contributors reported but no value");
        continue;
      }
      double oracle = SubsetOracle(functions.Get(destination), cov.sources,
                                   readings.values());
      if (!ValuesClose(reported, oracle)) {
        std::ostringstream os;
        os << "delivered-set oracle mismatch at d" << destination << ": got "
           << reported << " want " << oracle;
        record_error(round, os.str());
      }
    }
  }

  run.replans = metrics.Total("heal.replans");
  run.merge_reconciliations =
      metrics.Total("partition.merge_reconciliations");
  run.link_breaks = metrics.Total("mobility.link_breaks");
  run.trace = trace.ToString();
  return run;
}

// 20 seeds of the full stack — movement-driven correlated link churn over
// an adversarial bursty channel, scheduled faults with a death + recovery,
// and a mid-flight workload retirement — all over the partition-aware
// self-healing runtime. Every coverage verdict reconciles against the
// delivered-set oracle, the overlay never lets a partition hide behind a
// complete claim, and the whole run replays byte-identically.
class MobilityChaosDifferential : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(MobilityChaosDifferential, CoverageAndOverlayReconcile) {
  const uint64_t seed = GetParam();
  MobilityChaosRun run = RunMobilityChaos(seed);

  EXPECT_TRUE(run.errors.empty())
      << "seed " << seed << ": " << run.errors.front() << " ("
      << run.errors.size() << " total)";
  EXPECT_GT(run.attempts, 0);
  EXPECT_GT(run.link_breaks, 0)
      << "seed " << seed << ": drift produced no churn";
  EXPECT_GT(run.new_suspicions, 0) << "seed " << seed;
  EXPECT_GT(run.replans, 0) << "seed " << seed;

  MobilityChaosRun replay = RunMobilityChaos(seed);
  EXPECT_EQ(run.trace, replay.trace) << "seed " << seed;
  EXPECT_EQ(run.new_suspicions, replay.new_suspicions);
  EXPECT_EQ(run.replans, replay.replans);
  EXPECT_EQ(run.partitioned_node_rounds, replay.partitioned_node_rounds);
  EXPECT_EQ(run.attempts, replay.attempts);
  EXPECT_EQ(run.control_hops, replay.control_hops);
  EXPECT_EQ(run.merge_reconciliations, replay.merge_reconciliations);
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, MobilityChaosDifferential,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace m2m
