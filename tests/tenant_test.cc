#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "lifecycle/admission.h"
#include "lifecycle/catalog.h"
#include "lifecycle/lifecycle.h"
#include "lifecycle/tenant.h"
#include "obs/metrics.h"
#include "plan/consistency.h"
#include "plan/serialization.h"
#include "topology/generator.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {
namespace {

Workload InitialWorkload(const Topology& topology, uint64_t seed) {
  WorkloadSpec spec;
  spec.destination_count = 5;
  spec.sources_per_destination = 5;
  spec.max_hops = 4;
  spec.seed = seed;
  return GenerateWorkload(topology, spec);
}

FunctionSpec SpecOver(const std::vector<NodeId>& sources) {
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedAverage;
  double weight = 1.0;
  for (NodeId source : sources) {
    spec.weights.emplace_back(source, weight);
    weight += 0.25;
  }
  return spec;
}

/// The first `count` destinations no query serves (excluding the base).
std::vector<NodeId> UnservedDestinations(const Topology& topology,
                                         const QueryCatalog& catalog,
                                         NodeId base, int count) {
  std::vector<NodeId> unserved;
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (n != base && !catalog.Contains(n)) {
      unserved.push_back(n);
      if (static_cast<int>(unserved.size()) == count) break;
    }
  }
  M2M_CHECK_EQ(static_cast<int>(unserved.size()), count);
  return unserved;
}

class TenantFrontendTest : public ::testing::Test {
 protected:
  TenantFrontendTest()
      : topology_(MakeGreatDuckIslandLike()),
        initial_(InitialWorkload(topology_, 41)),
        base_(PickBaseStation(topology_)) {}

  Topology topology_;
  Workload initial_;
  NodeId base_;
};

// --- The tentpole acceptance: a batch admitting K queries from multiple
// tenants commits with EXACTLY one replan and one epoch bump, asserted
// through the qlm.* metrics, and the compiled epoch tracks the final
// catalog version.
TEST_F(TenantFrontendTest, BatchedAdmissionsCommitWithOneReplanAndEpoch) {
  obs::MetricsRegistry metrics;
  QueryLifecycleManager manager(topology_, initial_, base_);
  manager.set_metrics(&metrics);
  MultiTenantFrontend frontend(&manager);
  frontend.set_metrics(&metrics);
  frontend.RegisterTenant("alpha");
  frontend.RegisterTenant("beta");

  std::vector<NodeId> fresh =
      UnservedDestinations(topology_, manager.catalog(), base_, 4);
  TenantBatch batch(&frontend);
  batch.Admit("alpha", fresh[0], SpecOver({fresh[1], fresh[2]}))
      .Admit("alpha", fresh[1], SpecOver({fresh[0], fresh[3]}))
      .Admit("beta", fresh[2], SpecOver({fresh[0], fresh[1]}))
      .Admit("beta", fresh[3], SpecOver({fresh[1], fresh[2]}));
  TenantBatchResult result = batch.Commit();

  EXPECT_EQ(result.accepted, 4);
  EXPECT_EQ(result.rejected, 0);
  EXPECT_TRUE(result.committed);
  EXPECT_FALSE(result.sequential_fallback);
  for (const MutationOutcome& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.decision.admitted);
    EXPECT_FALSE(outcome.deduplicated);
    EXPECT_EQ(outcome.refcount, 1);
  }

  // K admissions, ONE replan, ONE epoch transition.
  EXPECT_EQ(metrics.Total("qlm.admissions"), 4);
  EXPECT_EQ(metrics.Total("qlm.replans"), 1);
  EXPECT_EQ(metrics.Total("qlm.batch.batches"), 1);
  EXPECT_EQ(metrics.Total("qlm.batch.requests"), 4);
  EXPECT_EQ(metrics.Total("qlm.batch.commits"), 1);
  EXPECT_EQ(metrics.Total("qlm.batch.fallbacks"), 0);
  // The catalog versioned once per accepted mutation (sequential
  // equivalence) but only the FINAL version opened as a plan epoch.
  EXPECT_EQ(manager.catalog().version(), 4);
  EXPECT_EQ(manager.compiled().plan_epoch(), 4u);
  EXPECT_GT(result.commit.images_shipped + result.commit.bumps_shipped, 0);
  EXPECT_EQ(frontend.TotalHolds("alpha"), 2);
  EXPECT_EQ(frontend.TotalHolds("beta"), 2);
}

// --- Mid-batch rejection purity: rejected requests are typed, contribute
// nothing to the commit, and later requests behave as if the rejected one
// never arrived. The committed state is byte-identical to applying only
// the accepted requests.
TEST_F(TenantFrontendTest, MidBatchRejectionsArePureAndTyped) {
  QueryLifecycleManager manager(topology_, initial_, base_);
  MultiTenantFrontend frontend(&manager);
  frontend.RegisterTenant("alpha");

  NodeId served = manager.catalog().queries().begin()->first;
  FunctionSpec served_spec = manager.catalog().Get(served).spec;
  std::vector<NodeId> fresh =
      UnservedDestinations(topology_, manager.catalog(), base_, 3);
  FunctionSpec conflicting = SpecOver({fresh[1], fresh[2]});

  TenantBatch batch(&frontend);
  batch.Admit("alpha", fresh[0], SpecOver({fresh[1], fresh[2]}))
      .Admit("alpha", served, conflicting)  // kDuplicateDestination
      .Retire("alpha", served)              // not held -> kUnknownDestination
      .Admit("ghost", fresh[1], SpecOver({fresh[0]}))  // kTenantUnknown
      .Admit("alpha", fresh[2], SpecOver({fresh[0], fresh[1]}));
  TenantBatchResult result = batch.Commit();

  ASSERT_EQ(result.outcomes.size(), 5u);
  EXPECT_TRUE(result.outcomes[0].decision.admitted);
  EXPECT_EQ(result.outcomes[1].decision.reason,
            AdmissionReason::kDuplicateDestination);
  EXPECT_EQ(result.outcomes[2].decision.reason,
            AdmissionReason::kUnknownDestination);
  EXPECT_EQ(result.outcomes[3].decision.reason,
            AdmissionReason::kTenantUnknown);
  EXPECT_TRUE(result.outcomes[4].decision.admitted);
  EXPECT_EQ(result.accepted, 2);
  EXPECT_EQ(result.rejected, 3);
  EXPECT_EQ(result.tenant_rejected, 2);

  // The rejected duplicate changed nothing about the served query, and the
  // committed bytes equal a manager that only ever saw the accepted two.
  EXPECT_TRUE(
      SpecsEquivalent(manager.catalog().Get(served).spec, served_spec));
  QueryLifecycleManager oracle(topology_, initial_, base_);
  ASSERT_TRUE(oracle.AdmitQuery(fresh[0], SpecOver({fresh[1], fresh[2]}))
                  .decision.admitted);
  ASSERT_TRUE(oracle.AdmitQuery(fresh[2], SpecOver({fresh[0], fresh[1]}))
                  .decision.admitted);
  EXPECT_EQ(manager.catalog(), oracle.catalog());
  EXPECT_EQ(manager.images(), oracle.images());
}

// --- Tenant policy gates: unknown tenants, QoS quotas (including
// within-batch simulated residency), and the exclusive-hold rule for
// source mutations on shared queries.
TEST_F(TenantFrontendTest, QuotaUnknownAndSharedGatesAreTyped) {
  obs::MetricsRegistry metrics;
  QueryLifecycleManager manager(topology_, initial_, base_);
  MultiTenantFrontend frontend(&manager);
  frontend.set_metrics(&metrics);
  QosClass small_quota;
  small_quota.max_resident_queries = 2;
  small_quota.max_sources_per_query = 3;
  frontend.RegisterTenant("alpha", small_quota);
  frontend.RegisterTenant("beta");

  const int64_t version_before = manager.catalog().version();
  MutationResult ghost =
      frontend.AdmitQuery("ghost", 5, SpecOver({0, 1}));
  EXPECT_FALSE(ghost.decision.admitted);
  EXPECT_EQ(ghost.decision.reason, AdmissionReason::kTenantUnknown);
  EXPECT_EQ(manager.catalog().version(), version_before);
  EXPECT_EQ(metrics.Total("tenant.rejections.tenant_unknown"), 1);

  std::vector<NodeId> fresh =
      UnservedDestinations(topology_, manager.catalog(), base_, 4);
  // A query wider than the per-query quota.
  MutationResult wide = frontend.AdmitQuery(
      "alpha", fresh[0], SpecOver({fresh[1], fresh[2], fresh[3], base_}));
  EXPECT_FALSE(wide.decision.admitted);
  EXPECT_EQ(wide.decision.reason, AdmissionReason::kTenantQuota);

  // Residency quota, including the within-batch simulated count: a batch
  // of three admits under quota 2 must reject exactly the third.
  TenantBatchResult burst =
      TenantBatch(&frontend)
          .Admit("alpha", fresh[0], SpecOver({fresh[1], fresh[2]}))
          .Admit("alpha", fresh[1], SpecOver({fresh[0], fresh[2]}))
          .Admit("alpha", fresh[2], SpecOver({fresh[0], fresh[1]}))
          .Commit();
  EXPECT_TRUE(burst.outcomes[0].decision.admitted);
  EXPECT_TRUE(burst.outcomes[1].decision.admitted);
  EXPECT_EQ(burst.outcomes[2].decision.reason,
            AdmissionReason::kTenantQuota);
  EXPECT_EQ(metrics.Total("tenant.rejections.tenant_quota"), 2);
  EXPECT_EQ(frontend.TotalHolds("alpha"), 2);

  // Shared-query rule: beta deduplicates onto alpha's query; neither may
  // mutate its sources while the other still holds it.
  MutationResult shared =
      frontend.AdmitQuery("beta", fresh[0], SpecOver({fresh[1], fresh[2]}));
  EXPECT_TRUE(shared.decision.admitted);
  EXPECT_TRUE(shared.deduplicated);
  EXPECT_EQ(shared.refcount, 2);
  MutationResult blocked =
      frontend.AddSource("alpha", fresh[0], fresh[3], 1.0);
  EXPECT_FALSE(blocked.decision.admitted);
  EXPECT_EQ(blocked.decision.reason, AdmissionReason::kSharedQuery);
  EXPECT_EQ(metrics.Total("tenant.rejections.shared_query"), 1);

  // A tenant cannot retire a hold it does not own...
  MutationResult not_held = frontend.RetireQuery("beta", fresh[1]);
  EXPECT_FALSE(not_held.decision.admitted);
  EXPECT_EQ(not_held.decision.reason, AdmissionReason::kUnknownDestination);

  // ...and once beta releases its hold, alpha owns the query exclusively
  // and may mutate it.
  MutationResult release = frontend.RetireQuery("beta", fresh[0]);
  EXPECT_TRUE(release.decision.admitted);
  EXPECT_TRUE(release.deduplicated);
  MutationResult allowed =
      frontend.AddSource("alpha", fresh[0], fresh[3], 1.0);
  EXPECT_TRUE(allowed.decision.admitted);

  // Manager-level rejections leave holdings untouched: an admit for a
  // served destination with a CONFLICTING spec is not a dedup.
  NodeId served = manager.catalog().queries().begin()->first;
  int64_t holds_before = frontend.TotalHolds("beta");
  MutationResult conflict =
      frontend.AdmitQuery("beta", served, SpecOver({fresh[3]}));
  EXPECT_FALSE(conflict.decision.admitted);
  EXPECT_EQ(conflict.decision.reason,
            AdmissionReason::kDuplicateDestination);
  EXPECT_EQ(frontend.TotalHolds("beta"), holds_before);
}

// --- A retire never retracts a tree another tenant holds: the physical
// query (and every byte of plan state) survives until the LAST hold goes.
TEST_F(TenantFrontendTest, RetireNeverRetractsAQueryAnotherTenantHolds) {
  QueryLifecycleManager manager(topology_, initial_, base_);
  MultiTenantFrontend frontend(&manager);
  frontend.RegisterTenant("alpha");
  frontend.RegisterTenant("beta");

  std::vector<NodeId> fresh =
      UnservedDestinations(topology_, manager.catalog(), base_, 3);
  FunctionSpec spec = SpecOver({fresh[1], fresh[2]});
  ASSERT_TRUE(frontend.AdmitQuery("alpha", fresh[0], spec).decision.admitted);
  ASSERT_TRUE(frontend.AdmitQuery("beta", fresh[0], spec).decision.admitted);
  ASSERT_EQ(manager.catalog().RefCount(fresh[0]), 2);
  std::vector<std::vector<uint8_t>> held_images = manager.images();
  const int64_t held_version = manager.catalog().version();

  MutationResult release = frontend.RetireQuery("alpha", fresh[0]);
  EXPECT_TRUE(release.decision.admitted);
  EXPECT_TRUE(release.deduplicated);
  EXPECT_EQ(release.refcount, 1);
  EXPECT_TRUE(manager.catalog().Contains(fresh[0]));
  EXPECT_EQ(manager.images(), held_images);
  EXPECT_EQ(manager.catalog().version(), held_version);
  EXPECT_EQ(frontend.Holds("beta", fresh[0]), 1);

  MutationResult retract = frontend.RetireQuery("beta", fresh[0]);
  EXPECT_TRUE(retract.decision.admitted);
  EXPECT_FALSE(retract.deduplicated);
  EXPECT_EQ(retract.refcount, 0);
  EXPECT_FALSE(manager.catalog().Contains(fresh[0]));
  EXPECT_GT(retract.images_shipped, 0);
}

// --- The dedup differential (acceptance): N tenants admitting
// overlapping query sets produce a refcounted catalog whose material
// content, plan, and wire images are byte-identical to a canonical
// manager that admitted each distinct query exactly once — and the
// interleaved retires unwind back to the seed state without ever
// retracting a held tree. 20 seeds.
class TenantDedupDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TenantDedupDifferential, RefcountedCatalogEqualsCanonicalDeduped) {
  const uint64_t seed = GetParam();
  Topology topology = MakeGreatDuckIslandLike();
  Workload initial = InitialWorkload(topology, seed * 23 + 9);
  NodeId base = PickBaseStation(topology);

  QueryLifecycleManager refcounted(topology, initial, base);
  MultiTenantFrontend frontend(&refcounted);
  const std::vector<std::string> tenants = {"alpha", "beta", "gamma"};
  for (const std::string& tenant : tenants) frontend.RegisterTenant(tenant);

  QueryLifecycleManager canonical(topology, initial, base);

  // A deterministic pool of distinct queries; tenant i holds pool query j
  // iff (i + j) % 2 == 0 or j == 0, so every query has >= 1 holder and
  // the first has three.
  Rng rng(seed * 101 + 13);
  std::vector<NodeId> fresh =
      UnservedDestinations(topology, refcounted.catalog(), base, 4);
  std::vector<FunctionSpec> pool;
  for (size_t j = 0; j < fresh.size(); ++j) {
    std::vector<NodeId> sources;
    for (NodeId n = 0; n < topology.node_count() &&
                       sources.size() < 3 + (j % 2);
         ++n) {
      if (n != fresh[j] && rng.UniformInt(3) != 0) sources.push_back(n);
    }
    pool.push_back(SpecOver(sources));
  }
  auto holds_query = [&](size_t tenant, size_t j) {
    return (tenant + j) % 2 == 0 || j == 0;
  };

  // Interleaved admissions: pool-major, tenants inner, so the FIRST
  // submission of each query is physical and the rest are dedup acquires.
  for (size_t j = 0; j < pool.size(); ++j) {
    int holders = 0;
    for (size_t t = 0; t < tenants.size(); ++t) {
      if (!holds_query(t, j)) continue;
      // Submit the weights in reversed order for odd holders: dedup must
      // key on the canonical form, not submission bytes.
      FunctionSpec submitted = pool[j];
      if (holders % 2 == 1) {
        std::reverse(submitted.weights.begin(), submitted.weights.end());
      }
      MutationResult result =
          frontend.AdmitQuery(tenants[t], fresh[j], submitted);
      ASSERT_TRUE(result.decision.admitted)
          << "seed " << seed << ": " << result.decision.detail;
      EXPECT_EQ(result.deduplicated, holders > 0) << "seed " << seed;
      ++holders;
      EXPECT_EQ(result.refcount, holders);
    }
    ASSERT_TRUE(canonical.AdmitQuery(fresh[j], pool[j]).decision.admitted)
        << "seed " << seed;
  }

  // Byte-identical material state: content, version, plan, wire images.
  EXPECT_EQ(refcounted.catalog().version(), canonical.catalog().version());
  EXPECT_EQ(refcounted.images(), canonical.images()) << "seed " << seed;
  EXPECT_TRUE(
      FindPlanDivergence(refcounted.plan(), canonical.plan()).empty())
      << "seed " << seed;
  ASSERT_EQ(refcounted.catalog().size(), canonical.catalog().size());
  for (const auto& [destination, query] : canonical.catalog().queries()) {
    ASSERT_TRUE(refcounted.catalog().Contains(destination));
    EXPECT_TRUE(SpecsEquivalent(
        refcounted.catalog().Get(destination).spec, query.spec));
  }
  for (size_t j = 0; j < pool.size(); ++j) {
    int holders = 0;
    for (size_t t = 0; t < tenants.size(); ++t) {
      holders += holds_query(t, j) ? 1 : 0;
    }
    EXPECT_EQ(refcounted.catalog().RefCount(fresh[j]), holders);
    EXPECT_EQ(frontend.HoldsAcrossTenants(fresh[j]), holders);
  }

  // Interleaved retires, tenant-major: a query stays resident — with
  // byte-identical images — until its LAST holder retires, and the last
  // retire retracts it. The canonical manager retires each query at that
  // final moment; the two stay byte-identical the whole way down.
  for (size_t t = 0; t < tenants.size(); ++t) {
    for (size_t j = 0; j < pool.size(); ++j) {
      if (!holds_query(t, j)) continue;
      const int refcount_before = refcounted.catalog().RefCount(fresh[j]);
      std::vector<std::vector<uint8_t>> images_before = refcounted.images();
      MutationResult result = frontend.RetireQuery(tenants[t], fresh[j]);
      ASSERT_TRUE(result.decision.admitted) << "seed " << seed;
      if (refcount_before > 1) {
        EXPECT_TRUE(result.deduplicated);
        EXPECT_TRUE(refcounted.catalog().Contains(fresh[j]));
        EXPECT_EQ(refcounted.images(), images_before)
            << "seed " << seed << ": releasing a shared hold moved bytes";
      } else {
        EXPECT_FALSE(result.deduplicated);
        EXPECT_FALSE(refcounted.catalog().Contains(fresh[j]));
        ASSERT_TRUE(canonical.RetireQuery(fresh[j]).decision.admitted);
        EXPECT_EQ(refcounted.images(), canonical.images())
            << "seed " << seed;
      }
    }
  }

  // Everything unwound to the seed queries, byte-for-byte.
  EXPECT_EQ(refcounted.catalog().size(),
            static_cast<int>(initial.tasks.size()));
  EXPECT_EQ(refcounted.catalog().version(), canonical.catalog().version());
  EXPECT_EQ(refcounted.images(), canonical.images()) << "seed " << seed;
  for (const std::string& tenant : tenants) {
    EXPECT_EQ(frontend.TotalHolds(tenant), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, TenantDedupDifferential,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace m2m
