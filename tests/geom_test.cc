#include <gtest/gtest.h>

#include "geom/point.h"

namespace m2m {
namespace {

TEST(PointTest, DistanceKnownTriangle) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared({0, 0}, {3, 4}), 25.0);
}

TEST(PointTest, DistanceIsSymmetric) {
  Point a{1.5, -2.0};
  Point b{-3.0, 7.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
}

TEST(PointTest, DistanceToSelfIsZero) {
  Point p{12.0, 9.0};
  EXPECT_DOUBLE_EQ(Distance(p, p), 0.0);
}

TEST(AreaTest, ContainsBoundaryAndInterior) {
  Area area{10.0, 20.0};
  EXPECT_TRUE(area.Contains({0.0, 0.0}));
  EXPECT_TRUE(area.Contains({10.0, 20.0}));
  EXPECT_TRUE(area.Contains({5.0, 5.0}));
  EXPECT_FALSE(area.Contains({-0.1, 5.0}));
  EXPECT_FALSE(area.Contains({5.0, 20.1}));
}

TEST(AreaTest, ClampPullsOutsidePointsIn) {
  Area area{10.0, 20.0};
  EXPECT_EQ(area.Clamp({-5.0, 25.0}), (Point{0.0, 20.0}));
  EXPECT_EQ(area.Clamp({15.0, -3.0}), (Point{10.0, 0.0}));
  EXPECT_EQ(area.Clamp({4.0, 4.0}), (Point{4.0, 4.0}));
}

TEST(AreaTest, SizeIsWidthTimesHeight) {
  EXPECT_DOUBLE_EQ((Area{106.0, 203.0}).size(), 106.0 * 203.0);
}

}  // namespace
}  // namespace m2m
