// Exhaustive validation of the paper's central result (Theorem 1): on small
// networks, enumerate *every* combination of per-edge vertex covers, keep
// the globally consistent ones, and confirm that the minimum-payload
// consistent combination costs exactly what our independently-optimized
// per-edge plan costs. This is the "surprising result" of the paper checked
// against ground truth.

#include <memory>

#include <gtest/gtest.h>

#include "agg/partial_record.h"
#include "common/check.h"
#include "plan/consistency.h"
#include "plan/planner.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

// All vertex covers of one edge's bipartite instance, as EdgePlans.
std::vector<EdgePlan> AllCovers(const ForestEdge& edge,
                                const FunctionSet& functions) {
  std::vector<NodeId> sources;
  std::vector<NodeId> destinations;
  for (const SourceDestPair& pair : edge.pairs) {
    if (std::find(sources.begin(), sources.end(), pair.source) ==
        sources.end()) {
      sources.push_back(pair.source);
    }
    if (std::find(destinations.begin(), destinations.end(),
                  pair.destination) == destinations.end()) {
      destinations.push_back(pair.destination);
    }
  }
  std::sort(sources.begin(), sources.end());
  std::sort(destinations.begin(), destinations.end());
  const int total = static_cast<int>(sources.size() + destinations.size());
  EXPECT_LE(total, 16) << "instance too large to enumerate";
  std::vector<EdgePlan> covers;
  for (uint32_t mask = 0; mask < (1u << total); ++mask) {
    EdgePlan plan;
    for (size_t i = 0; i < sources.size(); ++i) {
      if ((mask >> i) & 1) plan.raw_sources.push_back(sources[i]);
    }
    for (size_t j = 0; j < destinations.size(); ++j) {
      if ((mask >> (sources.size() + j)) & 1) {
        plan.agg_destinations.push_back(destinations[j]);
      }
    }
    bool is_cover = true;
    for (const SourceDestPair& pair : edge.pairs) {
      if (!plan.TransmitsRaw(pair.source) &&
          !plan.TransmitsAggregate(pair.destination)) {
        is_cover = false;
        break;
      }
    }
    if (!is_cover) continue;
    plan.payload_bytes =
        static_cast<int64_t>(plan.raw_sources.size()) * kRawUnitBytes;
    for (NodeId d : plan.agg_destinations) {
      plan.payload_bytes +=
          kIdTagBytes + functions.Get(d).partial_record_bytes();
    }
    covers.push_back(std::move(plan));
  }
  return covers;
}

// Minimum payload over all globally consistent combinations of per-edge
// covers (exponential; only for tiny instances).
int64_t BruteForceGlobalOptimum(
    std::shared_ptr<const MulticastForest> forest,
    const FunctionSet& functions, int64_t* combinations_checked) {
  std::vector<std::vector<EdgePlan>> options;
  int64_t combination_count = 1;
  for (const ForestEdge& edge : forest->edges()) {
    options.push_back(AllCovers(edge, functions));
    combination_count *=
        static_cast<int64_t>(options.back().size());
    EXPECT_LE(combination_count, int64_t{2000000})
        << "search space too large";
  }
  std::vector<size_t> choice(options.size(), 0);
  int64_t best = -1;
  int64_t checked = 0;
  while (true) {
    ++checked;
    std::vector<EdgePlan> plans;
    int64_t payload = 0;
    plans.reserve(options.size());
    for (size_t e = 0; e < options.size(); ++e) {
      plans.push_back(options[e][choice[e]]);
      payload += plans.back().payload_bytes;
    }
    if (best < 0 || payload < best) {
      GlobalPlan candidate(forest, std::move(plans), PlannerOptions{});
      if (ValidatePlanConsistency(candidate)) best = payload;
    }
    // Next combination.
    size_t e = 0;
    while (e < options.size() && ++choice[e] == options[e].size()) {
      choice[e] = 0;
      ++e;
    }
    if (e == options.size()) break;
  }
  if (combinations_checked != nullptr) *combinations_checked = checked;
  return best;
}

struct TinyCase {
  std::string name;
  std::vector<Point> positions;
  double range;
  std::vector<Task> tasks;
  AggregateKind kind = AggregateKind::kWeightedAverage;
};

class TheoremOneExhaustive : public ::testing::TestWithParam<int> {
 public:
  static TinyCase CaseFor(int index) {
    switch (index) {
      case 0:
        // The shape of paper Figure 1(C): two sources sharing a relay into
        // two destinations behind a shared edge.
        return TinyCase{
            "shared_relay",
            {{0, 0}, {0, 40}, {40, 20}, {80, 20}, {120, 0}, {120, 40}},
            50.0,
            {{4, {0, 1}}, {5, {0, 1}}}};
      case 1:
        // A line where one destination sits mid-route of another.
        return TinyCase{"line",
                        {{0, 0}, {40, 0}, {80, 0}, {120, 0}, {160, 0}},
                        50.0,
                        {{3, {0, 1}}, {4, {0, 2}}}};
      case 2:
        // Cross traffic: two destinations on opposite sides, overlapping
        // sources.
        return TinyCase{
            "cross",
            {{40, 0}, {0, 40}, {40, 40}, {80, 40}, {40, 80}, {40, 120}},
            50.0,
            {{5, {0, 1, 3}}, {0, {1, 3, 5}}}};
      case 3:
        // Heavier fan: three destinations sharing three sources via one
        // relay, weighted-sum records (raw and partial the same size, the
        // regime with the most ties).
        return TinyCase{
            "fan_sum",
            {{0, 0}, {0, 40}, {0, 80}, {40, 40}, {80, 0}, {80, 40},
             {80, 80}},
            50.0,
            {{4, {0, 1, 2}}, {5, {0, 1, 2}}, {6, {0, 1}}},
            AggregateKind::kWeightedSum};
      default:
        M2M_CHECK(false);
    }
  }
};

TEST_P(TheoremOneExhaustive, PerEdgeOptimaAreGloballyOptimal) {
  TinyCase tiny = CaseFor(GetParam());
  Topology topology(tiny.positions, tiny.range);
  ASSERT_TRUE(topology.IsConnected()) << tiny.name;
  PathSystem paths(topology);

  Workload workload;
  Rng rng(99);
  for (const Task& task : tiny.tasks) {
    FunctionSpec spec;
    spec.kind = tiny.kind;
    for (NodeId s : task.sources) {
      spec.weights.emplace_back(s, rng.UniformDouble(0.5, 1.5));
    }
    workload.tasks.push_back(task);
    workload.specs.push_back(spec);
  }
  workload.RebuildFunctions();

  auto forest =
      std::make_shared<const MulticastForest>(paths, workload.tasks);
  GlobalPlan plan = BuildPlan(forest, workload.functions, {});
  ASSERT_TRUE(ValidatePlanConsistency(plan)) << tiny.name;

  int64_t combinations = 0;
  int64_t brute =
      BruteForceGlobalOptimum(forest, workload.functions, &combinations);
  ASSERT_GE(brute, 0) << tiny.name << ": no consistent combination found";
  EXPECT_EQ(plan.TotalPayloadBytes(), brute)
      << tiny.name << " (searched " << combinations << " combinations)";
}

INSTANTIATE_TEST_SUITE_P(TinyNetworks, TheoremOneExhaustive,
                         ::testing::Values(0, 1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return TheoremOneExhaustive::CaseFor(info.param)
                               .name;
                         });

}  // namespace
}  // namespace m2m
