#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "plan/messaging.h"
#include "plan/planner.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

struct Env {
  explicit Env(uint64_t seed, PlanStrategy strategy = PlanStrategy::kOptimal)
      : topology(MakeGreatDuckIslandLike()), paths(topology) {
    WorkloadSpec spec;
    spec.destination_count = 10;
    spec.sources_per_destination = 8;
    spec.seed = seed;
    workload = GenerateWorkload(topology, spec);
    forest = std::make_shared<MulticastForest>(paths, workload.tasks);
    PlannerOptions options;
    options.strategy = strategy;
    plan = std::make_shared<GlobalPlan>(
        BuildPlan(forest, workload.functions, options));
  }

  Topology topology;
  PathSystem paths;
  Workload workload;
  std::shared_ptr<const MulticastForest> forest;
  std::shared_ptr<GlobalPlan> plan;
};

TEST(MessagingTest, UnitCountsMatchPlan) {
  Env env(31);
  MessageSchedule schedule = MessageSchedule::Build(
      *env.plan, env.workload.functions, MergePolicy::kGreedyMergePerEdge);
  EXPECT_EQ(static_cast<int64_t>(schedule.units().size()),
            env.plan->TotalUnits());
  // Units per edge match each edge plan.
  for (size_t e = 0; e < env.forest->edges().size(); ++e) {
    const EdgePlan& p = env.plan->plan_for(static_cast<int>(e));
    EXPECT_EQ(schedule.units_on_edge(static_cast<int>(e)).size(),
              static_cast<size_t>(p.unit_count()));
  }
}

// Theorem 2: no wait-for cycles among message units in the optimal plan.
TEST(MessagingTest, WaitForGraphIsAcyclic) {
  for (uint64_t seed : {31u, 32u, 33u}) {
    Env env(seed);
    MessageSchedule schedule = MessageSchedule::Build(
        *env.plan, env.workload.functions, MergePolicy::kGreedyMergePerEdge);
    EXPECT_TRUE(schedule.UnitsAcyclic());
    std::vector<int> order = schedule.TopologicalUnitOrder();
    EXPECT_EQ(order.size(), schedule.units().size());
    // Verify topological property.
    std::vector<int> position(order.size());
    for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
    for (size_t v = 0; v < schedule.units().size(); ++v) {
      for (int u : schedule.wait_for()[v]) {
        EXPECT_LT(position[u], position[v]);
      }
    }
  }
}

// The paper's experimental observation: greedy merging collapses all units
// on each edge into a single message.
TEST(MessagingTest, GreedyMergeYieldsOneMessagePerEdge) {
  Env env(34);
  MessageSchedule schedule = MessageSchedule::Build(
      *env.plan, env.workload.functions, MergePolicy::kGreedyMergePerEdge);
  std::set<int> edges_with_units;
  for (const MessageUnit& unit : schedule.units()) {
    edges_with_units.insert(unit.edge_index);
  }
  EXPECT_EQ(schedule.messages().size(), edges_with_units.size());
  for (const MessageSchedule::Message& message : schedule.messages()) {
    EXPECT_EQ(message.unit_ids.size(),
              schedule.units_on_edge(message.edge_index).size());
  }
  EXPECT_TRUE(schedule.MessagesAcyclic());
}

TEST(MessagingTest, OneUnitPerMessagePolicy) {
  Env env(35);
  MessageSchedule schedule = MessageSchedule::Build(
      *env.plan, env.workload.functions, MergePolicy::kOneUnitPerMessage);
  EXPECT_EQ(schedule.messages().size(), schedule.units().size());
  for (const MessageSchedule::Message& message : schedule.messages()) {
    EXPECT_EQ(message.unit_ids.size(), 1u);
  }
  EXPECT_TRUE(schedule.MessagesAcyclic());
}

TEST(MessagingTest, MergedScheduleHasFewerMessages) {
  Env env(36);
  MessageSchedule merged = MessageSchedule::Build(
      *env.plan, env.workload.functions, MergePolicy::kGreedyMergePerEdge);
  MessageSchedule unmerged = MessageSchedule::Build(
      *env.plan, env.workload.functions, MergePolicy::kOneUnitPerMessage);
  EXPECT_LE(merged.message_count(), unmerged.message_count());
  EXPECT_GT(unmerged.message_count(), 0);
}

TEST(MessagingTest, UnitBytesReflectFunctionRecordSizes) {
  Env env(37);
  MessageSchedule schedule = MessageSchedule::Build(
      *env.plan, env.workload.functions, MergePolicy::kGreedyMergePerEdge);
  for (const MessageUnit& unit : schedule.units()) {
    if (unit.is_partial) {
      EXPECT_EQ(unit.unit_bytes,
                kIdTagBytes + env.workload.functions.Get(unit.subject)
                                  .partial_record_bytes());
    } else {
      EXPECT_EQ(unit.unit_bytes, kRawUnitBytes);
    }
  }
}

TEST(MessagingTest, RawUnitsWaitOnlyForUpstreamRawOfSameSource) {
  Env env(38, PlanStrategy::kMulticastOnly);
  MessageSchedule schedule = MessageSchedule::Build(
      *env.plan, env.workload.functions, MergePolicy::kGreedyMergePerEdge);
  for (size_t v = 0; v < schedule.units().size(); ++v) {
    const MessageUnit& unit = schedule.units()[v];
    ASSERT_FALSE(unit.is_partial);
    for (int u : schedule.wait_for()[v]) {
      EXPECT_FALSE(schedule.units()[u].is_partial);
      EXPECT_EQ(schedule.units()[u].subject, unit.subject);
    }
  }
}

TEST(MessagingTest, AggregationOnlyUnitsWaitForSameDestination) {
  Env env(39, PlanStrategy::kAggregationOnly);
  MessageSchedule schedule = MessageSchedule::Build(
      *env.plan, env.workload.functions, MergePolicy::kGreedyMergePerEdge);
  for (size_t v = 0; v < schedule.units().size(); ++v) {
    const MessageUnit& unit = schedule.units()[v];
    ASSERT_TRUE(unit.is_partial);
    for (int u : schedule.wait_for()[v]) {
      EXPECT_EQ(schedule.units()[u].subject, unit.subject);
    }
  }
}

}  // namespace
}  // namespace m2m
