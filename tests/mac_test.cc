#include <memory>

#include <gtest/gtest.h>

#include "core/system.h"
#include "mac/csma.h"
#include "mac/tdma_executor.h"
#include "plan/tdma.h"
#include "sim/readings.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

struct Env {
  Env(uint64_t seed, int destinations, int sources)
      : topology(MakeGreatDuckIslandLike()) {
    WorkloadSpec spec;
    spec.destination_count = destinations;
    spec.sources_per_destination = sources;
    spec.seed = seed;
    workload = GenerateWorkload(topology, spec);
    system = std::make_unique<System>(topology, workload);
  }

  Topology topology;
  Workload workload;
  std::unique_ptr<System> system;

  std::shared_ptr<const CompiledPlan> compiled() const {
    return std::make_shared<CompiledPlan>(system->compiled());
  }
};

TEST(CsmaTest, DeliversEveryHopOnModestWorkload) {
  Env env(91, 8, 6);
  CsmaSimulator mac(env.compiled(), env.topology, EnergyModel{});
  MacRoundResult result = mac.RunRound(1);
  // Total physical hops in the plan.
  int64_t expected_hops = 0;
  for (const MessageSchedule::Message& m :
       env.system->compiled().schedule().messages()) {
    expected_hops +=
        env.system->forest().edges()[m.edge_index].hop_length();
  }
  EXPECT_EQ(result.hops_delivered, expected_hops);
  EXPECT_EQ(result.hops_failed, 0);
  EXPECT_GT(result.completion_ms, 0.0);
}

TEST(CsmaTest, DeterministicInSeed) {
  Env env(92, 8, 6);
  CsmaSimulator mac(env.compiled(), env.topology, EnergyModel{});
  MacRoundResult a = mac.RunRound(7);
  MacRoundResult b = mac.RunRound(7);
  EXPECT_DOUBLE_EQ(a.energy_mj, b.energy_mj);
  EXPECT_DOUBLE_EQ(a.completion_ms, b.completion_ms);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.collisions, b.collisions);
  MacRoundResult c = mac.RunRound(8);
  // Different contention outcomes with a different seed (almost surely).
  EXPECT_NE(a.attempts + a.busy_backoffs, c.attempts + c.busy_backoffs);
}

TEST(CsmaTest, EnergyAtLeastAnalyticModel) {
  Env env(93, 10, 8);
  PlanExecutor executor(env.compiled(), env.workload.functions,
                        EnergyModel{});
  ReadingGenerator readings(env.topology.node_count(), 5);
  double analytic = executor.RunRound(readings.values()).energy_mj;
  CsmaSimulator mac(env.compiled(), env.topology, EnergyModel{});
  MacRoundResult result = mac.RunRound(3);
  // MAC adds acks, retries, and corrupted receptions on top of the
  // analytic payload cost.
  EXPECT_GE(result.energy_mj, analytic);
  // But within a small factor when delivery succeeds.
  if (result.hops_failed == 0) {
    EXPECT_LT(result.energy_mj, 3.0 * analytic);
  }
}

TEST(CsmaTest, NodeEnergySumsToTotal) {
  Env env(94, 8, 6);
  CsmaSimulator mac(env.compiled(), env.topology, EnergyModel{});
  MacRoundResult result = mac.RunRound(11);
  double per_node = 0.0;
  for (double e : result.node_energy_mj) per_node += e;
  EXPECT_NEAR(per_node, result.energy_mj, 1e-9);
}

TEST(CsmaTest, ContentionGrowsWithWorkload) {
  Env small(95, 5, 4);
  Env large(95, 20, 15);
  CsmaSimulator small_mac(small.compiled(), small.topology, EnergyModel{});
  CsmaSimulator large_mac(large.compiled(), large.topology, EnergyModel{});
  MacRoundResult small_result = small_mac.RunRound(2);
  MacRoundResult large_result = large_mac.RunRound(2);
  EXPECT_GT(large_result.attempts, small_result.attempts);
  EXPECT_GT(large_result.busy_backoffs + large_result.collisions,
            small_result.busy_backoffs + small_result.collisions);
  EXPECT_GT(large_result.completion_ms, small_result.completion_ms);
}

TEST(CsmaTest, CompletionTimeRespectsSerialDependencies) {
  // A line network where one destination aggregates the far end: hops must
  // serialize, so completion >= hops * frame time.
  std::vector<Point> positions;
  for (int i = 0; i < 8; ++i) positions.push_back({i * 40.0, 0.0});
  Topology line(std::move(positions), 50.0);
  Workload wl;
  wl.tasks.push_back(Task{7, {0, 1, 2}});
  FunctionSpec fn;
  fn.kind = AggregateKind::kWeightedAverage;
  fn.weights = {{0, 1.0}, {1, 1.0}, {2, 1.0}};
  wl.specs.push_back(fn);
  wl.RebuildFunctions();
  System system(line, wl);
  CsmaSimulator mac(std::make_shared<CompiledPlan>(system.compiled()), line,
                    EnergyModel{});
  MacRoundResult result = mac.RunRound(4);
  EXPECT_EQ(result.hops_failed, 0);
  CsmaConfig config;
  // The value from node 0 crosses 7 hops in sequence.
  double frame_ms = config.BytesToMs(8 + 8);
  EXPECT_GE(result.completion_ms, 7 * frame_ms);
}

TEST(TdmaExecutorTest, DeterministicAndAccountsAllHops) {
  Env env(96, 10, 8);
  TdmaSchedule schedule =
      BuildTdmaSchedule(env.system->compiled(), env.topology);
  TdmaRoundResult a = ExecuteTdmaRound(schedule, env.system->compiled(),
                                       env.topology, EnergyModel{});
  TdmaRoundResult b = ExecuteTdmaRound(schedule, env.system->compiled(),
                                       env.topology, EnergyModel{});
  EXPECT_DOUBLE_EQ(a.energy_mj, b.energy_mj);
  EXPECT_EQ(a.transmissions,
            static_cast<int64_t>(schedule.assignments.size()));
  EXPECT_GT(a.completion_ms, 0.0);
  EXPECT_NEAR(a.energy_mj, a.data_energy_mj + a.listen_energy_mj, 1e-9);
  double per_node = 0.0;
  for (double e : a.node_energy_mj) per_node += e;
  EXPECT_NEAR(per_node, a.energy_mj, 1e-9);
}

TEST(TdmaExecutorTest, CheaperAndFasterThanContendedCsma) {
  // The point of compiling a schedule: no collisions, no retries, radios
  // off outside assigned slots. On a contended workload TDMA should beat
  // CSMA on energy (even before CSMA's always-on idle listening, which is
  // not included in MacRoundResult.energy_mj).
  Env env(97, 20, 15);
  auto compiled = env.compiled();
  TdmaSchedule schedule =
      BuildTdmaSchedule(env.system->compiled(), env.topology);
  TdmaRoundResult tdma = ExecuteTdmaRound(schedule, env.system->compiled(),
                                          env.topology, EnergyModel{});
  CsmaSimulator mac(compiled, env.topology, EnergyModel{});
  MacRoundResult csma = mac.RunRound(5);
  EXPECT_LT(tdma.energy_mj, csma.energy_mj);
}

TEST(TdmaExecutorTest, SlotLatencyScalesWithSlotCount) {
  Env env(98, 8, 6);
  TdmaSchedule schedule =
      BuildTdmaSchedule(env.system->compiled(), env.topology);
  TdmaRoundResult result = ExecuteTdmaRound(
      schedule, env.system->compiled(), env.topology, EnergyModel{});
  // completion = slots x fixed slot duration; the slot fits at least the
  // 8-byte header (~1.67 ms at 38.4 kbps).
  double slot_ms = result.completion_ms / schedule.slot_count;
  EXPECT_GT(slot_ms, 1.6);
  EXPECT_LT(slot_ms, 60.0);  // Bounded by the largest plausible frame.
  // Doubling the bit rate halves the round.
  TdmaRoundResult fast = ExecuteTdmaRound(schedule, env.system->compiled(),
                                          env.topology, EnergyModel{},
                                          /*bit_rate_bps=*/76800.0);
  EXPECT_NEAR(fast.completion_ms, result.completion_ms / 2.0, 1e-9);
}

}  // namespace
}  // namespace m2m
