#include <limits>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"

namespace m2m {
namespace {

TEST(BytesTest, FixedWidthRoundtrip) {
  ByteWriter writer;
  writer.WriteU8(0xab);
  writer.WriteU16(0x1234);
  writer.WriteU32(0xdeadbeef);
  writer.WriteI32(-42);
  writer.WriteF32(3.5f);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadU8(), 0xab);
  EXPECT_EQ(reader.ReadU16(), 0x1234);
  EXPECT_EQ(reader.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadI32(), -42);
  EXPECT_EQ(reader.ReadF32(), 3.5f);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, LittleEndianLayout) {
  ByteWriter writer;
  writer.WriteU16(0x0102);
  ASSERT_EQ(writer.size(), 2u);
  EXPECT_EQ(writer.bytes()[0], 0x02);
  EXPECT_EQ(writer.bytes()[1], 0x01);
}

TEST(BytesTest, VarintSmallValuesAreOneByte) {
  for (uint64_t v : {0ull, 1ull, 127ull}) {
    ByteWriter writer;
    writer.WriteVarint(v);
    EXPECT_EQ(writer.size(), 1u) << v;
    ByteReader reader(writer.bytes());
    EXPECT_EQ(reader.ReadVarint(), v);
  }
}

TEST(BytesTest, VarintBoundaries) {
  for (uint64_t v :
       {uint64_t{128}, uint64_t{16383}, uint64_t{16384},
        uint64_t{1} << 32, std::numeric_limits<uint64_t>::max()}) {
    ByteWriter writer;
    writer.WriteVarint(v);
    ByteReader reader(writer.bytes());
    EXPECT_EQ(reader.ReadVarint(), v);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(BytesTest, VarintRandomRoundtrip) {
  Rng rng(3);
  ByteWriter writer;
  std::vector<uint64_t> values;
  for (int i = 0; i < 500; ++i) {
    uint64_t v = rng.Next() >> rng.UniformInt(64);
    values.push_back(v);
    writer.WriteVarint(v);
  }
  ByteReader reader(writer.bytes());
  for (uint64_t v : values) EXPECT_EQ(reader.ReadVarint(), v);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, FloatSpecialValues) {
  ByteWriter writer;
  writer.WriteF32(0.0f);
  writer.WriteF32(-0.0f);
  writer.WriteF32(std::numeric_limits<float>::infinity());
  writer.WriteF32(std::numeric_limits<float>::denorm_min());
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadF32(), 0.0f);
  EXPECT_EQ(reader.ReadF32(), -0.0f);
  EXPECT_EQ(reader.ReadF32(), std::numeric_limits<float>::infinity());
  EXPECT_EQ(reader.ReadF32(), std::numeric_limits<float>::denorm_min());
}

TEST(BytesTest, ReadPastEndAborts) {
  ByteWriter writer;
  writer.WriteU8(1);
  ByteReader reader(writer.bytes());
  reader.ReadU8();
  EXPECT_DEATH(reader.ReadU8(), "past end");
}

TEST(BytesTest, RemainingTracksCursor) {
  ByteWriter writer;
  writer.WriteU32(5);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.remaining(), 4u);
  reader.ReadU16();
  EXPECT_EQ(reader.remaining(), 2u);
}

}  // namespace
}  // namespace m2m
