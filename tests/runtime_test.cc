#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "core/system.h"
#include "runtime/network.h"
#include "runtime/wire_functions.h"
#include "sim/readings.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

System MakeSystem(uint64_t seed, AggregateKind kind,
                  PlanStrategy strategy = PlanStrategy::kOptimal) {
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 8;
  spec.sources_per_destination = 6;
  spec.kind = kind;
  spec.seed = seed;
  Workload workload = GenerateWorkload(topology, spec);
  SystemOptions options;
  options.planner.strategy = strategy;
  return System(topology, workload, options);
}

// Differential pinning: the wire-kind implementations must match the
// AggregateFunction classes exactly.
TEST(WireFunctionsTest, MatchesFunctionObjects) {
  Rng rng(41);
  for (AggregateKind kind :
       {AggregateKind::kWeightedSum, AggregateKind::kWeightedAverage,
        AggregateKind::kWeightedStdDev, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kCount,
        AggregateKind::kCountAbove, AggregateKind::kArgMax}) {
    FunctionSpec spec;
    spec.kind = kind;
    spec.threshold = 15.0;
    spec.weights = {{3, 1.25}, {7, 0.5}};
    auto fn = MakeAggregateFunction(spec);
    uint8_t wire_kind = static_cast<uint8_t>(kind);
    for (int trial = 0; trial < 30; ++trial) {
      double v3 = rng.UniformDouble(0.0, 30.0);
      double v7 = rng.UniformDouble(0.0, 30.0);
      PartialRecord expected =
          fn->Merge(fn->PreAggregate(3, v3), fn->PreAggregate(7, v7));
      PartialRecord wire_record = wire::Merge(
          wire_kind,
          wire::PreAggregate(wire_kind,
                             static_cast<float>(fn->WeightFor(3)),
                             static_cast<float>(fn->Parameter()), 3, v3),
          wire::PreAggregate(wire_kind,
                             static_cast<float>(fn->WeightFor(7)),
                             static_cast<float>(fn->Parameter()), 7, v7));
      for (size_t f = 0; f < expected.fields.size(); ++f) {
        EXPECT_NEAR(wire_record.fields[f], expected.fields[f],
                    1e-5 * std::max(1.0, std::fabs(expected.fields[f])))
            << ToString(kind);
      }
      EXPECT_NEAR(wire::Evaluate(wire_kind, wire_record),
                  fn->Evaluate(expected),
                  1e-5 * std::max(1.0, std::fabs(fn->Evaluate(expected))))
          << ToString(kind);
    }
  }
}

TEST(WireFunctionsTest, FieldCountsMatchRecordShapes) {
  EXPECT_EQ(wire::FieldCountOf(
                static_cast<uint8_t>(AggregateKind::kWeightedSum)),
            1);
  EXPECT_EQ(wire::FieldCountOf(
                static_cast<uint8_t>(AggregateKind::kWeightedAverage)),
            2);
  EXPECT_EQ(wire::FieldCountOf(
                static_cast<uint8_t>(AggregateKind::kWeightedStdDev)),
            3);
  EXPECT_EQ(
      wire::FieldCountOf(static_cast<uint8_t>(AggregateKind::kArgMax)), 2);
}

TEST(WireFunctionsTest, UnknownKindAborts) {
  EXPECT_DEATH(wire::FieldCountOf(99), "unknown wire function kind");
}

class RuntimeNetworkTest
    : public ::testing::TestWithParam<std::pair<AggregateKind,
                                                PlanStrategy>> {};

// The core distributed-execution guarantee: nodes driven purely by their
// serialized table images, exchanging encoded packets, produce exactly the
// aggregates the analytic executor computes.
TEST_P(RuntimeNetworkTest, MatchesAnalyticExecutor) {
  auto [kind, strategy] = GetParam();
  System system = MakeSystem(301, kind, strategy);
  ReadingGenerator readings(system.topology().node_count(), 9);

  PlanExecutor executor = system.MakeExecutor();
  RoundResult analytic = executor.RunRound(readings.values());

  RuntimeNetwork network(system.compiled(), system.workload().functions);
  RuntimeNetwork::Result distributed = network.RunRound(readings.values());

  ASSERT_EQ(distributed.destination_values.size(),
            analytic.destination_values.size());
  for (const auto& [d, value] : analytic.destination_values) {
    // Wire floats are 32-bit; allow float-precision slack.
    EXPECT_NEAR(distributed.destination_values.at(d), value,
                1e-4 * std::max(1.0, std::fabs(value)))
        << ToString(kind) << "/" << ToString(strategy);
  }
  EXPECT_GT(distributed.packets, 0);
  EXPECT_GT(distributed.energy_mj, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndStrategies, RuntimeNetworkTest,
    ::testing::Values(
        std::pair{AggregateKind::kWeightedSum, PlanStrategy::kOptimal},
        std::pair{AggregateKind::kWeightedAverage, PlanStrategy::kOptimal},
        std::pair{AggregateKind::kWeightedStdDev, PlanStrategy::kOptimal},
        std::pair{AggregateKind::kMin, PlanStrategy::kOptimal},
        std::pair{AggregateKind::kArgMax, PlanStrategy::kOptimal},
        std::pair{AggregateKind::kCountAbove, PlanStrategy::kOptimal},
        std::pair{AggregateKind::kWeightedAverage,
                  PlanStrategy::kMulticastOnly},
        std::pair{AggregateKind::kWeightedAverage,
                  PlanStrategy::kAggregationOnly}),
    [](const auto& info) {
      return ToString(info.param.first) + "_" + ToString(info.param.second);
    });

TEST(RuntimeNetworkTest, PacketCountMatchesScheduleMessages) {
  System system = MakeSystem(302, AggregateKind::kWeightedAverage);
  RuntimeNetwork network(system.compiled(), system.workload().functions);
  ReadingGenerator readings(system.topology().node_count(), 10);
  RuntimeNetwork::Result result = network.RunRound(readings.values());
  EXPECT_EQ(result.packets,
            static_cast<int64_t>(
                system.compiled().schedule().messages().size()));
}

TEST(RuntimeNetworkTest, RunsMultipleRounds) {
  System system = MakeSystem(303, AggregateKind::kWeightedAverage);
  RuntimeNetwork network(system.compiled(), system.workload().functions);
  ReadingGenerator readings(system.topology().node_count(), 11);
  for (int round = 0; round < 5; ++round) {
    readings.Advance(1.0);
    RuntimeNetwork::Result result = network.RunRound(readings.values());
    for (const Task& task : system.workload().tasks) {
      std::unordered_map<NodeId, double> inputs;
      for (NodeId s : task.sources) inputs[s] = readings.values()[s];
      double expected =
          system.workload().functions.Get(task.destination).Direct(inputs);
      EXPECT_NEAR(result.destination_values.at(task.destination), expected,
                  1e-4 * std::max(1.0, std::fabs(expected)));
    }
  }
}

TEST(RuntimeNetworkTest, WorksWithMilestoneVirtualEdges) {
  Topology topology = MakeGreatDuckIslandLike();
  LinkStabilityModel stability(topology, 44);
  WorkloadSpec spec;
  spec.destination_count = 8;
  spec.sources_per_destination = 6;
  spec.seed = 304;
  Workload workload = GenerateWorkload(topology, spec);
  SystemOptions options;
  options.milestones =
      MilestoneSelector::StabilityThreshold(topology, stability, 0.86);
  System system(topology, workload, options);
  RuntimeNetwork network(system.compiled(), workload.functions);
  ReadingGenerator readings(topology.node_count(), 12);
  RuntimeNetwork::Result result = network.RunRound(readings.values());
  EXPECT_EQ(result.destination_values.size(), workload.tasks.size());
}

TEST(RuntimeNetworkTest, ImageBytesMatchSerializedStates) {
  System system = MakeSystem(305, AggregateKind::kWeightedAverage);
  RuntimeNetwork network(system.compiled(), system.workload().functions);
  int64_t expected = 0;
  for (const auto& image : EncodeAllNodeStates(
           system.compiled(), system.workload().functions)) {
    expected += static_cast<int64_t>(image.size());
  }
  EXPECT_EQ(network.installed_image_bytes(), expected);
}

TEST(NodeRuntimeTest, RejectsForeignPartialRecords) {
  System system = MakeSystem(306, AggregateKind::kWeightedAverage);
  std::vector<std::vector<uint8_t>> images = EncodeAllNodeStates(
      system.compiled(), system.workload().functions);
  // Find a node with no partial entries at all.
  for (NodeId n = 0; n < system.topology().node_count(); ++n) {
    if (!system.compiled().state(n).partial_table.empty()) continue;
    NodeRuntime node(n, images[n]);
    node.StartRound(1.0);
    // A partial record for an unknown destination must abort loudly rather
    // than corrupt state.
    ByteWriter writer;
    writer.WriteVarint(1);
    writer.WriteU8(0x21);  // partial, 2 fields
    writer.WriteVarint(9999);
    writer.WriteF32(1.0f);
    writer.WriteF32(1.0f);
    EXPECT_DEATH(node.OnReceive(writer.bytes()), "no table entry");
    return;
  }
  GTEST_SKIP() << "no partial-free node in this plan";
}

}  // namespace
}  // namespace m2m
