#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault_test_util.h"
#include "lifecycle/admission.h"
#include "mac/tdma_executor.h"
#include "plan/consistency.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "plan/tdma.h"
#include "routing/lifetime_forest.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "runtime/network.h"
#include "sim/base_station.h"
#include "sim/battery.h"
#include "sim/energy_model.h"
#include "sim/executor.h"
#include "sim/fault_schedule.h"
#include "sim/readings.h"
#include "sim/self_healing.h"
#include "topology/generator.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {
namespace {

using fault_test::Destinations;
using fault_test::ValuesClose;

Workload DefaultWorkload(const Topology& topology, uint64_t seed) {
  WorkloadSpec spec;
  spec.destination_count = 5;
  spec.sources_per_destination = 5;
  spec.max_hops = 4;
  spec.seed = seed;
  return GenerateWorkload(topology, spec);
}

CompiledPlan CompileInitialPlan(const Topology& topology,
                                const Workload& workload) {
  // Mirrors SelfHealingRuntime's constructor exactly, so the analytic
  // drains computed here equal the runtime's initial predicted drain.
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(PathSystem(topology), workload.tasks),
      workload.functions);
  return CompiledPlan::Compile(plan, workload.functions,
                               MergePolicy::kGreedyMergePerEdge,
                               /*plan_epoch=*/0);
}

// --- BatteryLedger unit tests -------------------------------------------

TEST(BatteryLedgerTest, TracksDrainSeparatelyAndClampsResidual) {
  BatteryOptions options;
  options.initial_charge_mj = 10.0;
  BatteryLedger ledger(3, options);
  EXPECT_EQ(ledger.node_count(), 3);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(ledger.initial_mj(n), 10.0);
    EXPECT_EQ(ledger.drained_mj(n), 0.0);
    EXPECT_EQ(ledger.residual_fraction(n), 1.0);
    EXPECT_FALSE(ledger.depleted(n));
  }

  // One charged round: drain equals the charge bit-for-bit (0 + x == x).
  ledger.ChargeRound({4.0, 0.0, 12.0});
  EXPECT_EQ(ledger.drained_mj(0), 4.0);
  EXPECT_EQ(ledger.residual_mj(0), 6.0);
  EXPECT_EQ(ledger.drained_mj(1), 0.0);
  // Over-drain clamps residual at zero and marks the node depleted.
  EXPECT_EQ(ledger.residual_mj(2), 0.0);
  EXPECT_EQ(ledger.residual_fraction(2), 0.0);
  EXPECT_TRUE(ledger.depleted(2));
  EXPECT_EQ(ledger.depleted_nodes(), (std::vector<NodeId>{2}));
  EXPECT_EQ(ledger.rounds_charged(), 1);

  ledger.ChargeRound({4.0, 0.0, 1.0});
  EXPECT_EQ(ledger.drained_mj(0), 8.0);
  ledger.ChargeRound({4.0, 0.0, 0.0});
  EXPECT_TRUE(ledger.depleted(0));
  EXPECT_EQ(ledger.residual_mj(0), 0.0);
  EXPECT_EQ(ledger.rounds_charged(), 3);
}

TEST(BatteryLedgerTest, ImmortalNodesNeverDrainOrDeplete) {
  BatteryOptions options;
  options.initial_charge_mj = 1.0;
  options.immortal_nodes = {1};
  BatteryLedger ledger(2, options);
  for (int round = 0; round < 5; ++round) ledger.ChargeRound({5.0, 5.0});
  EXPECT_TRUE(ledger.depleted(0));
  EXPECT_TRUE(ledger.immortal(1));
  EXPECT_FALSE(ledger.depleted(1));
  EXPECT_EQ(ledger.drained_mj(1), 0.0);
  EXPECT_EQ(ledger.residual_fraction(1), 1.0);
}

TEST(BatteryLedgerTest, IdleFloorAppliesOnlyWhileAlive) {
  BatteryOptions options;
  options.initial_charge_mj_per_node = {3.0, 100.0};
  options.idle_mj_per_round = 1.0;
  BatteryLedger ledger(2, options);
  ledger.ChargeRound({2.0, 0.0});  // Node 0: 2 radio + 1 idle = depleted.
  EXPECT_TRUE(ledger.depleted(0));
  EXPECT_EQ(ledger.drained_mj(1), 1.0);
  // A node depleted at round start pays no further idle drain.
  ledger.ChargeRound({0.0, 0.0});
  EXPECT_EQ(ledger.drained_mj(0), 3.0);
  EXPECT_EQ(ledger.drained_mj(1), 2.0);
}

// --- Predicted vs executed reconciliation (exact) -----------------------

TEST(EnergyReconciliationTest, AnalyticRoundEnergyMatchesAdmissionExactly) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 11);
  CompiledPlan compiled = CompileInitialPlan(topology, workload);
  const EnergyModel model;
  const std::vector<double> admission =
      PerNodeRoundEnergyMj(compiled, workload.functions, model);
  const std::vector<double> ledger_side = CompiledRoundEnergyMj(compiled, model);
  ASSERT_EQ(admission.size(), ledger_side.size());
  for (size_t n = 0; n < admission.size(); ++n) {
    // EXACT: both accumulate microjoules in schedule order and divide once;
    // floating-point addition order is part of the contract.
    EXPECT_EQ(admission[n], ledger_side[n]) << "node " << n;
  }
}

TEST(EnergyReconciliationTest, ExecutedLosslessRoundMatchesPredictionExactly) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 12);
  auto compiled =
      std::make_shared<CompiledPlan>(CompileInitialPlan(topology, workload));
  const EnergyModel model;
  PlanExecutor executor(compiled, workload.functions, model);
  BatteryLedger ledger(topology.node_count());
  executor.set_battery(&ledger);

  ReadingGenerator readings(topology.node_count(), 99);
  executor.RunRound(readings.values());
  ASSERT_EQ(ledger.rounds_charged(), 1);

  const std::vector<double> predicted =
      PerNodeRoundEnergyMj(*compiled, workload.functions, model);
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    // The satellite contract: executed drain of a lossless full round
    // equals the admission layer's prediction EXACTLY, not approximately.
    EXPECT_EQ(ledger.drained_mj(n), predicted[n]) << "node " << n;
  }
}

TEST(EnergyReconciliationTest, BroadcastAndSuppressedRoundsChargeTheLedger) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 13);
  auto compiled =
      std::make_shared<CompiledPlan>(CompileInitialPlan(topology, workload));
  PlanExecutor executor(compiled, workload.functions, EnergyModel{});
  BatteryLedger ledger(topology.node_count());
  executor.set_battery(&ledger);
  ReadingGenerator readings(topology.node_count(), 7);

  TransmissionOptions broadcast;
  broadcast.use_broadcast = true;
  RoundResult result = executor.RunRound(readings.values(), broadcast);
  EXPECT_EQ(ledger.rounds_charged(), 1);
  double total = 0.0;
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    total += ledger.drained_mj(n);
  }
  // Attribution sums to the round total (up to FP regrouping).
  EXPECT_NEAR(total, result.energy_mj, 1e-9 * std::max(1.0, result.energy_mj));

  // Suppressed rounds charge too (only the deltas that traveled).
  executor.InitializeState(readings.values());
  std::vector<double> changed_readings = readings.values();
  std::vector<bool> changed(topology.node_count(), false);
  const NodeId some_source = workload.tasks[0].sources[0];
  changed_readings[some_source] += 5.0;
  changed[some_source] = true;
  const double before = ledger.total_drain_mj();
  RoundResult suppressed = executor.RunSuppressedRound(
      changed_readings, changed, OverridePolicy::kNone);
  EXPECT_EQ(ledger.rounds_charged(), 2);
  EXPECT_GT(ledger.total_drain_mj(), before);
  EXPECT_GT(suppressed.energy_mj, 0.0);
}

// --- Idle-listen energy audit (satellite a) -----------------------------

TEST(IdleListenAuditTest, TdmaListenEnergyReconcilesWithModel) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 21);
  CompiledPlan compiled = CompileInitialPlan(topology, workload);
  TdmaSchedule schedule = BuildTdmaSchedule(compiled, topology);
  ASSERT_GT(schedule.slot_count, 1);

  const EnergyModel model;
  const double bit_rate_bps = 38400.0;
  TdmaRoundResult result =
      ExecuteTdmaRound(schedule, compiled, topology, model, bit_rate_bps);

  // Recompute the executed listen energy from the model, accumulating in
  // the executor's exact operation order: max(0, slot - frame) milliseconds
  // of idle listening per receive slot at idle_listen_uj_per_ms.
  const MessageSchedule& messages = compiled.schedule();
  int max_payload = 0;
  std::vector<int> payload_of(messages.messages().size(), 0);
  for (size_t m = 0; m < messages.messages().size(); ++m) {
    for (int u : messages.messages()[m].unit_ids) {
      payload_of[m] += messages.units()[u].unit_bytes;
    }
    max_payload = std::max(max_payload, payload_of[m]);
  }
  const double slot_ms =
      (model.header_bytes + max_payload) * 8.0 * 1000.0 / bit_rate_bps;
  double expected_listen_mj = 0.0;
  for (const TdmaAssignment& assignment : schedule.assignments) {
    const double frame_ms = (model.header_bytes + payload_of[assignment.message]) *
                            8.0 * 1000.0 / bit_rate_bps;
    expected_listen_mj +=
        std::max(0.0, slot_ms - frame_ms) * model.idle_listen_uj_per_ms / 1000.0;
  }
  EXPECT_EQ(result.listen_energy_mj, expected_listen_mj);

  // The schedule's duty cycle saves energy: scheduled receivers listen in
  // strictly fewer slots than idle-listening every slot would cost, and the
  // executed listen energy stays under the unscheduled idle-listen bill.
  EXPECT_LT(schedule.total_listen_slots(), schedule.unscheduled_listen_slots());
  const double unscheduled_idle_mj =
      static_cast<double>(schedule.unscheduled_listen_slots()) * slot_ms *
      model.idle_listen_uj_per_ms / 1000.0;
  EXPECT_LT(result.listen_energy_mj, unscheduled_idle_mj);
}

// --- Residual-energy link costs -----------------------------------------

TEST(ResidualCostTest, FullBatteriesCostExactlyOneAndPreservePaths) {
  Topology topology = MakeUniformRandom(40, Area{100.0, 100.0}, 25.0, 7);
  std::vector<double> full(topology.node_count(), 1.0);
  PathSystem::LinkCostFn cost = ResidualEnergyLinkCost(full, 8.0);
  EXPECT_EQ(cost(0, 1), 1.0);

  PathSystem hop_paths(topology);
  PathSystem cost_paths(topology, 0x5eed, cost);
  for (NodeId u = 0; u < topology.node_count(); ++u) {
    for (NodeId v = 0; v < topology.node_count(); ++v) {
      if (u == v) continue;
      // Cost 1.0 per link yields bit-identical weights to the null cost,
      // so every canonical path is identical — the byte-identity argument
      // for battery-aware replans before any battery has drained.
      EXPECT_EQ(hop_paths.Path(u, v), cost_paths.Path(u, v))
          << u << "->" << v;
    }
  }
}

TEST(ResidualCostTest, CostsClampToPathSystemBounds) {
  PathSystem::LinkCostFn drained = ResidualEnergyLinkCost({0.0, 0.0}, 1e6);
  EXPECT_EQ(drained(0, 1), 1024.0);  // Clamped to the PathSystem ceiling.
  // Out-of-range fractions are clamped into [0, 1] before costing.
  PathSystem::LinkCostFn odd = ResidualEnergyLinkCost({2.0, -1.0}, 8.0);
  EXPECT_EQ(odd(0, 1), 1.0 + 8.0 * 0.5);
  PathSystem::LinkCostFn mild = ResidualEnergyLinkCost({0.5, 1.0}, 8.0);
  EXPECT_EQ(mild(0, 1), 1.0 + 8.0 * 0.25);
}

// --- Lifetime-maximizing forest builder ---------------------------------

TEST(LifetimeForestTest, NeverWorseThanBaselineAndPlansStayConsistent) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 31);
  std::vector<double> residual(topology.node_count(), 20000.0);
  LifetimeForestStats stats;
  MulticastForest forest = BuildLifetimeMaxForest(
      topology, workload.tasks, residual, LifetimeForestOptions{}, &stats);
  EXPECT_GE(stats.iterations_run, 1);
  EXPECT_GE(stats.best_min_lifetime, stats.baseline_min_lifetime);

  // Theorem 1 safety: the forest came from a consistent PathSystem, so the
  // plan built on it passes the full consistency validation.
  GlobalPlan plan =
      BuildPlan(std::make_shared<MulticastForest>(std::move(forest)),
                workload.functions);
  EXPECT_TRUE(FindConsistencyViolations(plan).empty());
}

TEST(LifetimeForestTest, SkewedResidualsRouteAroundTheWeakRelay) {
  Topology topology = MakeGrid(6, 6, 10.0, 12.0);
  PathSystem paths(topology);
  // One corner-to-corner task: the grid offers many equal-length routes, so
  // a weak relay on the default path can be avoided.
  NodeId corner = 0;
  NodeId far = topology.node_count() - 1;
  Task task;
  task.destination = corner;
  task.sources = {far, far - 1, far - 6};
  std::vector<Task> tasks = {task};

  MulticastForest baseline(paths, tasks);
  LifetimeForestOptions options;
  std::vector<double> load =
      ForestNodeLoad(baseline, options.tx_weight, options.rx_weight);

  // Drain a loaded pure relay (not an endpoint — endpoints cannot be
  // routed around) and ask the builder to maximize min lifetime.
  std::vector<double> residual(topology.node_count(), 20000.0);
  NodeId weak = kInvalidNode;
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (load[n] <= 0.0) continue;
    if (n == task.destination) continue;
    if (std::find(task.sources.begin(), task.sources.end(), n) !=
        task.sources.end()) {
      continue;
    }
    weak = n;
    break;
  }
  ASSERT_NE(weak, kInvalidNode);
  residual[weak] = 500.0;

  LifetimeForestStats stats;
  MulticastForest forest =
      BuildLifetimeMaxForest(topology, tasks, residual, options, &stats);
  // The weak relay was the baseline bottleneck; routing around it STRICTLY
  // improves the minimum lifetime (the bench's acceptance criterion in
  // unit-test form).
  EXPECT_GT(stats.best_min_lifetime, stats.baseline_min_lifetime);
  std::vector<double> new_load =
      ForestNodeLoad(forest, options.tx_weight, options.rx_weight);
  EXPECT_LT(new_load[weak], load[weak]);
}

TEST(LifetimeForestTest, DeterministicAcrossRepeatedBuilds) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 37);
  std::vector<double> residual(topology.node_count(), 20000.0);
  for (NodeId n = 0; n < topology.node_count(); n += 3) residual[n] = 900.0;
  LifetimeForestStats a_stats, b_stats;
  MulticastForest a = BuildLifetimeMaxForest(topology, workload.tasks,
                                             residual, {}, &a_stats);
  MulticastForest b = BuildLifetimeMaxForest(topology, workload.tasks,
                                             residual, {}, &b_stats);
  EXPECT_EQ(a_stats.best_iteration, b_stats.best_iteration);
  EXPECT_EQ(a_stats.best_min_lifetime, b_stats.best_min_lifetime);
  ASSERT_EQ(a.edges().size(), b.edges().size());
  for (size_t e = 0; e < a.edges().size(); ++e) {
    EXPECT_EQ(a.edges()[e].segment, b.edges()[e].segment) << "edge " << e;
  }
}

// --- Battery-aware admission gate ---------------------------------------

TEST(AdmissionTest, BatteryLifetimeGateRejectsShortLivedPlans) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 41);
  CompiledPlan compiled = CompileInitialPlan(topology, workload);
  const std::vector<double> drain =
      PerNodeRoundEnergyMj(compiled, workload.functions, EnergyModel{});
  NodeId hottest = 0;
  for (NodeId n = 1; n < topology.node_count(); ++n) {
    if (drain[n] > drain[hottest]) hottest = n;
  }
  ASSERT_GT(drain[hottest], 0.0);

  AdmissionLimits limits;
  limits.state_bound_factor = 0.0;  // Isolate the lifetime gate.
  limits.lifetime_budget_rounds = 600;
  limits.node_residual_mj.assign(topology.node_count(), 1e9);
  limits.node_residual_mj[hottest] = drain[hottest] * 500.0;

  AdmissionDecision decision =
      CheckPlanBudgets(compiled, workload.functions, topology, limits);
  EXPECT_FALSE(decision.admitted);
  EXPECT_EQ(decision.reason, AdmissionReason::kBatteryLifetime);
  EXPECT_EQ(ToString(decision.reason), "battery_lifetime");
  EXPECT_EQ(decision.offending_node, hottest);
  EXPECT_NEAR(decision.observed, 500.0, 1e-9);
  EXPECT_EQ(decision.limit, 600.0);

  // Generous residuals admit the same plan.
  limits.node_residual_mj[hottest] = drain[hottest] * 10000.0;
  EXPECT_TRUE(
      CheckPlanBudgets(compiled, workload.functions, topology, limits)
          .admitted);

  // The idle floor participates in the drain: an otherwise-unloaded node
  // with a tiny residual now dies before the budget.
  NodeId idle_node = kInvalidNode;
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (drain[n] == 0.0) {
      idle_node = n;
      break;
    }
  }
  if (idle_node != kInvalidNode) {
    limits.idle_mj_per_round = 1.0;
    limits.node_residual_mj[idle_node] = 10.0;
    AdmissionDecision idle_reject =
        CheckPlanBudgets(compiled, workload.functions, topology, limits);
    EXPECT_FALSE(idle_reject.admitted);
    EXPECT_EQ(idle_reject.reason, AdmissionReason::kBatteryLifetime);
  }
}

// --- Self-healing battery integration -----------------------------------

/// Everything one battery-aware self-healing run produces.
struct EnergyRun {
  std::string trace;
  std::map<NodeId, int> first_depleted;
  std::map<NodeId, int> first_believed_dead;
  std::map<NodeId, int> first_energy_dead;
  int rotations = 0;
  int first_rotation_round = -1;
  std::unordered_map<NodeId, double> final_values;
  std::vector<NodeId> final_incomplete;
  int final_pending_installs = -1;
  uint32_t final_epoch = 0;
  int replans = 0;
  std::vector<NodeId> believed_dead;
  std::vector<NodeId> believed_energy_dead;
  std::vector<NodeId> battery_depleted;
  std::optional<GlobalPlan> final_plan;
  Workload final_workload;
};

EnergyRun RunEnergyHealing(
    const Topology& topology, const Workload& workload, NodeId base,
    const SelfHealingOptions& options, int total_rounds,
    uint64_t readings_seed,
    const std::function<bool(int, NodeId, NodeId, int)>& delivers,
    const std::function<bool(int, NodeId)>& alive,
    int stop_rounds_after_depletion = -1) {
  EventTrace trace;
  SelfHealingRuntime runtime(topology, workload, base, options);
  EnergyRun run;
  int tail = -1;
  for (int round = 0; round < total_rounds; ++round) {
    ReadingGenerator readings(topology.node_count(),
                              readings_seed + static_cast<uint64_t>(round));
    LossyLinkModel physical;
    physical.attempt_delivers = [&delivers, round](NodeId from, NodeId to,
                                                   int attempt) {
      return delivers(round, from, to, attempt);
    };
    physical.node_alive = [&alive, round](NodeId n) {
      return alive(round, n);
    };
    SelfHealingRoundResult result =
        runtime.RunRound(round, readings.values(), physical, &trace);
    if (result.replanned) ++run.replans;
    if (result.energy_rotation) {
      ++run.rotations;
      if (run.first_rotation_round < 0) run.first_rotation_round = round;
    }
    for (NodeId n : result.battery_depleted) {
      run.first_depleted.try_emplace(n, round);
    }
    for (NodeId n : runtime.ledger().believed_dead()) {
      run.first_believed_dead.try_emplace(n, round);
    }
    for (NodeId n : result.believed_energy_dead) {
      run.first_energy_dead.try_emplace(n, round);
    }
    run.final_values = result.data.destination_values;
    run.final_incomplete = result.data.incomplete_destinations;
    run.final_pending_installs = result.pending_installs;
    run.battery_depleted = result.battery_depleted;
    run.believed_energy_dead = result.believed_energy_dead;
    // Optional early stop: scenarios comparing first-depletion rounds end
    // shortly after the first battery death, before cascading depletion
    // can strip a task of its last source.
    if (stop_rounds_after_depletion >= 0 && tail < 0 &&
        !run.first_depleted.empty()) {
      tail = stop_rounds_after_depletion;
    }
    if (tail >= 0 && tail-- == 0) break;
  }
  run.final_epoch = runtime.base_epoch();
  run.believed_dead = runtime.ledger().believed_dead();
  run.final_plan = runtime.plan();
  run.final_workload = runtime.current_workload();
  run.trace = trace.ToString();
  return run;
}

bool AlwaysDelivers(int, NodeId, NodeId, int) { return true; }
bool AlwaysAlive(int, NodeId) { return true; }

// The tentpole differential: a relay runs out of battery mid-deployment.
// The death is earned purely from executed drain — no fault schedule lists
// it — yet it travels the full healing path: neighbors detect the silence,
// the base station believes the death, classifies it energy-dead from its
// own in-band residual predictions, replans around the corpse over
// residual-energy costs, and every surviving destination reconverges to the
// survivor-topology oracle. Replays are byte-identical.
class EnergyExhaustionDifferential : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(EnergyExhaustionDifferential, DepletionHealsLikeACrashButClassified) {
  const uint64_t seed = GetParam();
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, seed * 17 + 3);
  NodeId base = PickBaseStation(topology);

  // Pick the hottest mortal relay under the initial plan and give it only
  // ~3.5 analytic rounds of charge; everyone else gets the full 20 J.
  CompiledPlan compiled = CompileInitialPlan(topology, workload);
  const std::vector<double> drain = CompiledRoundEnergyMj(compiled, EnergyModel{});
  std::vector<NodeId> protected_nodes = Destinations(workload);
  protected_nodes.push_back(base);
  NodeId victim = kInvalidNode;
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (std::find(protected_nodes.begin(), protected_nodes.end(), n) !=
        protected_nodes.end()) {
      continue;
    }
    if (victim == kInvalidNode || drain[n] > drain[victim]) victim = n;
  }
  ASSERT_NE(victim, kInvalidNode);
  ASSERT_GT(drain[victim], 0.0);

  SelfHealingOptions options;
  options.energy.battery_aware = true;
  options.energy.proactive_rotation = false;  // Isolate the exhaustion path.
  options.energy.battery.initial_charge_mj_per_node.assign(
      topology.node_count(), 20000.0);
  options.energy.battery.initial_charge_mj_per_node[victim] =
      drain[victim] * 3.5;
  options.energy.battery.immortal_nodes = protected_nodes;

  const int total_rounds = 30;
  EnergyRun run =
      RunEnergyHealing(topology, workload, base, options, total_rounds,
                       seed + 1000, AlwaysDelivers, AlwaysAlive);

  // --- The victim (and only the victim) physically depleted.
  ASSERT_TRUE(run.first_depleted.contains(victim))
      << "seed " << seed << ": victim " << victim << " never depleted";
  EXPECT_EQ(run.first_depleted.size(), 1u) << "seed " << seed;
  const int depleted_round = run.first_depleted.at(victim);
  // The trace carries the deterministic exhaustion event.
  EXPECT_NE(run.trace.find("energy-exhaustion"), std::string::npos)
      << "seed " << seed;

  // --- Detected through the ordinary in-band machinery, promptly.
  ASSERT_TRUE(run.first_believed_dead.contains(victim))
      << "seed " << seed << ": exhausted node never believed dead";
  const int latency_budget = options.detector.suspicion_threshold + 4;
  EXPECT_LE(run.first_believed_dead.at(victim),
            depleted_round + latency_budget)
      << "seed " << seed;
  EXPECT_EQ(run.believed_dead, (std::vector<NodeId>{victim}))
      << "seed " << seed;

  // --- Classified energy-dead (vs crash) from in-band predictions only.
  ASSERT_TRUE(run.first_energy_dead.contains(victim)) << "seed " << seed;
  EXPECT_EQ(run.believed_energy_dead, (std::vector<NodeId>{victim}))
      << "seed " << seed;

  // --- Healed: dissemination acked, everything reconverged.
  EXPECT_EQ(run.final_pending_installs, 0) << "seed " << seed;
  EXPECT_TRUE(run.final_incomplete.empty()) << "seed " << seed;
  EXPECT_GE(run.replans, 1) << "seed " << seed;
  ASSERT_TRUE(run.final_plan.has_value());
  EXPECT_TRUE(ValidatePlanConsistency(*run.final_plan)) << "seed " << seed;

  // --- Differential vs the survivor-topology oracle: the converged values
  // equal a from-scratch plan's executor over the true surviving topology
  // and the victim-less workload, on the same readings.
  Workload survivors = workload;
  for (const Task& task : std::vector<Task>(survivors.tasks)) {
    if (std::find(task.sources.begin(), task.sources.end(), victim) !=
        task.sources.end()) {
      survivors = WithSourceRemoved(survivors, victim, task.destination);
    }
  }
  Topology masked = Topology::WithFailures(topology, {}, {victim});
  PathSystem masked_paths(masked);
  GlobalPlan oracle_plan = BuildPlan(
      std::make_shared<MulticastForest>(masked_paths, survivors.tasks),
      survivors.functions);
  PlanExecutor oracle(std::make_shared<CompiledPlan>(CompiledPlan::Compile(
                          oracle_plan, survivors.functions)),
                      survivors.functions, EnergyModel{});
  ReadingGenerator final_readings(
      topology.node_count(),
      seed + 1000 + static_cast<uint64_t>(total_rounds - 1));
  RoundResult oracle_round = oracle.RunRound(final_readings.values());
  ASSERT_EQ(run.final_values.size(), oracle_round.destination_values.size())
      << "seed " << seed;
  for (const auto& [destination, value] : run.final_values) {
    auto it = oracle_round.destination_values.find(destination);
    ASSERT_NE(it, oracle_round.destination_values.end())
        << "seed " << seed << " destination " << destination;
    EXPECT_TRUE(ValuesClose(value, it->second))
        << "seed " << seed << " destination " << destination << ": " << value
        << " vs oracle " << it->second;
  }

  // --- Determinism: byte-identical replay.
  EnergyRun replay =
      RunEnergyHealing(topology, workload, base, options, total_rounds,
                       seed + 1000, AlwaysDelivers, AlwaysAlive);
  EXPECT_EQ(run.trace, replay.trace) << "seed " << seed;
  EXPECT_EQ(run.first_depleted, replay.first_depleted) << "seed " << seed;
  EXPECT_EQ(run.final_values, replay.final_values) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, EnergyExhaustionDifferential,
                         ::testing::Range<uint64_t>(1, 21));

// Legacy byte-identity: with batteries effectively infinite (or the feature
// off), the battery-aware runtime is byte-identical to the legacy one over
// the full fault-schedule healing scenario — residual costs evaluate to
// weights bit-identical to hop count, nothing depletes, no trigger fires.
class BatteryLegacyEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatteryLegacyEquivalence, InfiniteBatteriesAreByteIdenticalToLegacy) {
  const uint64_t seed = GetParam();
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, seed * 17 + 3);
  NodeId base = PickBaseStation(topology);
  std::vector<NodeId> protected_nodes = Destinations(workload);
  if (std::find(protected_nodes.begin(), protected_nodes.end(), base) ==
      protected_nodes.end()) {
    protected_nodes.push_back(base);
  }
  FaultScheduleOptions schedule_options;
  schedule_options.rounds = 5;
  schedule_options.transient_link_fraction = 0.06;
  schedule_options.transient_drop_probability = 0.5;
  schedule_options.persistent_link_failures = 2;
  schedule_options.node_deaths = 1;
  schedule_options.seed = seed;
  FaultSchedule schedule =
      FaultSchedule::Generate(topology, protected_nodes, schedule_options);

  auto delivers = [&schedule](int round, NodeId from, NodeId to,
                              int attempt) {
    return schedule.AttemptDelivers(round, from, to, attempt);
  };
  auto alive = [&schedule](int round, NodeId n) {
    return schedule.NodeAliveAt(round, n);
  };
  const int total_rounds = schedule_options.rounds + 10;

  SelfHealingOptions legacy;  // battery_aware defaults to false.
  EnergyRun legacy_run = RunEnergyHealing(topology, workload, base, legacy,
                                          total_rounds, seed + 1000,
                                          delivers, alive);

  SelfHealingOptions battery;
  battery.energy.battery_aware = true;
  // Charges so large that residual fractions round to 1.0 in double
  // precision: link costs stay exactly 1.0, weights stay bit-identical.
  battery.energy.battery.initial_charge_mj = 1e18;
  EnergyRun battery_run = RunEnergyHealing(topology, workload, base, battery,
                                           total_rounds, seed + 1000,
                                           delivers, alive);

  EXPECT_EQ(legacy_run.trace, battery_run.trace) << "seed " << seed;
  EXPECT_EQ(legacy_run.final_values, battery_run.final_values);
  EXPECT_EQ(legacy_run.final_epoch, battery_run.final_epoch);
  EXPECT_EQ(legacy_run.replans, battery_run.replans);
  EXPECT_EQ(legacy_run.believed_dead, battery_run.believed_dead);
  EXPECT_TRUE(battery_run.first_depleted.empty());
  EXPECT_EQ(battery_run.rotations, 0);
  // And the battery-mode extras stayed quiet: no exhaustion classification.
  EXPECT_TRUE(battery_run.believed_energy_dead.empty());
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, BatteryLegacyEquivalence,
                         ::testing::Range<uint64_t>(1, 21));

// Proactive rotation: with path diversity (a grid), rotating bottleneck
// relays before they die strictly postpones the first battery death, and
// the monotone trigger + cooldown keep rotations bounded (no flapping).
TEST(ProactiveRotationTest, RotationStrictlyDelaysFirstDepletion) {
  Topology topology = MakeGrid(7, 5, 10.0, 12.0);
  NodeId base = PickBaseStation(topology);
  // One task from the far corner region to the base: many equal-length
  // grid routes exist, so load can rotate across parallel relays.
  PathSystem paths(topology);
  std::vector<std::pair<int, NodeId>> by_distance;
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (n == base) continue;
    by_distance.emplace_back(paths.HopDistance(base, n), n);
  }
  std::sort(by_distance.begin(), by_distance.end());
  Task task;
  task.destination = base;
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedAverage;
  for (size_t i = by_distance.size() - 3; i < by_distance.size(); ++i) {
    task.sources.push_back(by_distance[i].second);
    spec.weights.emplace_back(by_distance[i].second, 1.0);
  }
  Workload workload;
  workload.tasks = {task};
  workload.specs = {spec};
  workload.RebuildFunctions();

  // Sources and base are wall-powered so relay rotation is the only lever.
  SelfHealingOptions common;
  common.energy.battery_aware = true;
  common.energy.battery.immortal_nodes = task.sources;
  common.energy.battery.immortal_nodes.push_back(base);

  // Probe one executed round to size the batteries off the *physical*
  // drain (encoded bytes + ack traffic), which runs ~2x the analytic
  // prediction; the in-band trigger watches predicted residuals, so it
  // needs a threshold high enough to fire before the physical death.
  double max_phys = 0.0;
  {
    SelfHealingOptions probe_options = common;
    probe_options.energy.battery.initial_charge_mj = 1e9;
    SelfHealingRuntime probe(topology, workload, base, probe_options);
    ReadingGenerator readings(topology.node_count(), 4242);
    LossyLinkModel perfect;
    perfect.attempt_delivers = [](NodeId, NodeId, int) { return true; };
    perfect.node_alive = [](NodeId) { return true; };
    probe.RunRound(0, readings.values(), perfect, nullptr);
    for (NodeId n = 0; n < topology.node_count(); ++n) {
      max_phys = std::max(max_phys, probe.battery().drained_mj(n));
    }
  }
  ASSERT_GT(max_phys, 0.0);
  common.energy.battery.initial_charge_mj = max_phys * 10.0;
  common.energy.rotation_threshold = 0.75;
  common.energy.rotation_cooldown_rounds = 3;

  // Each run ends shortly after its own first battery death: letting the
  // cascade run on would eventually isolate the task's sources, which is a
  // different scenario (partition) than the one under test (lifetime).
  const int total_rounds = 60;
  SelfHealingOptions without = common;
  without.energy.proactive_rotation = false;
  EnergyRun no_rotation =
      RunEnergyHealing(topology, workload, base, without, total_rounds, 4242,
                       AlwaysDelivers, AlwaysAlive,
                       /*stop_rounds_after_depletion=*/2);

  SelfHealingOptions with = common;
  with.energy.proactive_rotation = true;
  EnergyRun rotation =
      RunEnergyHealing(topology, workload, base, with, total_rounds, 4242,
                       AlwaysDelivers, AlwaysAlive,
                       /*stop_rounds_after_depletion=*/2);

  ASSERT_FALSE(no_rotation.first_depleted.empty())
      << "scenario too gentle: nothing depleted without rotation";
  int first_death_without = total_rounds;
  for (const auto& [node, round] : no_rotation.first_depleted) {
    first_death_without = std::min(first_death_without, round);
  }
  int first_death_with = total_rounds;
  for (const auto& [node, round] : rotation.first_depleted) {
    first_death_with = std::min(first_death_with, round);
  }
  EXPECT_GE(rotation.rotations, 1);
  EXPECT_LE(rotation.rotations, 5) << "rotation trigger is flapping";
  EXPECT_GT(first_death_with, first_death_without)
      << "rotation must STRICTLY postpone the first battery death";
  EXPECT_NE(rotation.trace.find("energy rotation trigger"),
            std::string::npos);
}

// Cause classification is distinct: a crashed node with a healthy battery
// is believed dead but NOT classified energy-dead.
TEST(EnergyClassificationTest, CrashDeathIsNotClassifiedEnergyDead) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 51);
  NodeId base = PickBaseStation(topology);
  std::vector<NodeId> protected_nodes = Destinations(workload);
  protected_nodes.push_back(base);
  CompiledPlan compiled = CompileInitialPlan(topology, workload);
  const std::vector<double> drain = CompiledRoundEnergyMj(compiled, EnergyModel{});
  NodeId victim = kInvalidNode;
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (std::find(protected_nodes.begin(), protected_nodes.end(), n) !=
        protected_nodes.end()) {
      continue;
    }
    if (victim == kInvalidNode || drain[n] > drain[victim]) victim = n;
  }
  ASSERT_NE(victim, kInvalidNode);

  SelfHealingOptions options;
  options.energy.battery_aware = true;  // Full 20 J everywhere.
  options.energy.battery.immortal_nodes = protected_nodes;

  const int crash_round = 3;
  auto delivers = [victim, crash_round](int round, NodeId from, NodeId to,
                                        int) {
    if (round >= crash_round && (from == victim || to == victim)) {
      return false;
    }
    return true;
  };
  auto alive = [victim, crash_round](int round, NodeId n) {
    return !(n == victim && round >= crash_round);
  };

  EnergyRun run = RunEnergyHealing(topology, workload, base, options, 15,
                                   5151, delivers, alive);
  EXPECT_TRUE(run.first_depleted.empty());
  ASSERT_TRUE(run.first_believed_dead.contains(victim))
      << "crashed node never believed dead";
  // Believed dead, but its predicted residual is nearly full: the in-band
  // classifier refuses to call it an energy death.
  EXPECT_TRUE(run.believed_energy_dead.empty());
  EXPECT_TRUE(run.first_energy_dead.empty());
}

}  // namespace
}  // namespace m2m
