#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "lifecycle/catalog.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "plan/serialization.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : topology_(MakeGreatDuckIslandLike()) {}

  WorkloadSpec BaseSpec() {
    WorkloadSpec spec;
    spec.destination_count = 10;
    spec.sources_per_destination = 8;
    spec.dispersion = 0.9;
    spec.max_hops = 4;
    spec.seed = 5;
    return spec;
  }

  Topology topology_;
};

TEST_F(WorkloadTest, GeneratesRequestedShape) {
  Workload wl = GenerateWorkload(topology_, BaseSpec());
  EXPECT_EQ(wl.tasks.size(), 10u);
  std::set<NodeId> destinations;
  for (const Task& task : wl.tasks) {
    EXPECT_EQ(task.sources.size(), 8u);
    EXPECT_TRUE(destinations.insert(task.destination).second)
        << "duplicate destination";
    std::set<NodeId> unique(task.sources.begin(), task.sources.end());
    EXPECT_EQ(unique.size(), task.sources.size()) << "duplicate source";
    EXPECT_FALSE(unique.contains(task.destination))
        << "destination is its own source";
    EXPECT_TRUE(wl.functions.Contains(task.destination));
  }
}

TEST_F(WorkloadTest, IsDeterministicInSeed) {
  Workload a = GenerateWorkload(topology_, BaseSpec());
  Workload b = GenerateWorkload(topology_, BaseSpec());
  EXPECT_EQ(a.tasks, b.tasks);
  WorkloadSpec other = BaseSpec();
  other.seed = 6;
  Workload c = GenerateWorkload(topology_, other);
  EXPECT_NE(a.tasks, c.tasks);
}

TEST_F(WorkloadTest, ZeroDispersionKeepsSourcesAdjacent) {
  WorkloadSpec spec = BaseSpec();
  spec.dispersion = 0.0;
  spec.sources_per_destination = 4;  // Small enough to fit in one hop.
  Workload wl = GenerateWorkload(topology_, spec);
  for (const Task& task : wl.tasks) {
    std::vector<int> dist = topology_.HopDistancesFrom(task.destination);
    for (NodeId s : task.sources) {
      EXPECT_EQ(dist[s], 1) << "source " << s << " for destination "
                            << task.destination;
    }
  }
}

TEST_F(WorkloadTest, HighDispersionReachesFartherOnAverage) {
  WorkloadSpec near = BaseSpec();
  near.dispersion = 0.0;
  near.sources_per_destination = 4;
  WorkloadSpec far = BaseSpec();
  far.dispersion = 1.0;
  far.sources_per_destination = 4;
  auto mean_hops = [&](const Workload& wl) {
    double total = 0.0;
    int count = 0;
    for (const Task& task : wl.tasks) {
      std::vector<int> dist = topology_.HopDistancesFrom(task.destination);
      for (NodeId s : task.sources) {
        total += dist[s];
        ++count;
      }
    }
    return total / count;
  };
  EXPECT_LT(mean_hops(GenerateWorkload(topology_, near)),
            mean_hops(GenerateWorkload(topology_, far)));
}

TEST_F(WorkloadTest, DispersionStaysWithinMaxHopsWhenPossible) {
  WorkloadSpec spec = BaseSpec();
  spec.dispersion = 1.0;
  spec.max_hops = 3;
  spec.sources_per_destination = 6;
  Workload wl = GenerateWorkload(topology_, spec);
  for (const Task& task : wl.tasks) {
    std::vector<int> dist = topology_.HopDistancesFrom(task.destination);
    for (NodeId s : task.sources) {
      EXPECT_LE(dist[s], 3);
      EXPECT_GE(dist[s], 1);
    }
  }
}

TEST_F(WorkloadTest, UniformSelectionSpansNetwork) {
  WorkloadSpec spec = BaseSpec();
  spec.selection = SourceSelection::kUniform;
  spec.sources_per_destination = 30;
  Workload wl = GenerateWorkload(topology_, spec);
  for (const Task& task : wl.tasks) {
    EXPECT_EQ(task.sources.size(), 30u);
  }
}

TEST_F(WorkloadTest, WeightsWithinConfiguredRange) {
  WorkloadSpec spec = BaseSpec();
  spec.weight_min = 2.0;
  spec.weight_max = 3.0;
  Workload wl = GenerateWorkload(topology_, spec);
  for (const FunctionSpec& fn_spec : wl.specs) {
    for (const auto& [source, weight] : fn_spec.weights) {
      EXPECT_GE(weight, 2.0);
      EXPECT_LT(weight, 3.0);
    }
  }
}

TEST_F(WorkloadTest, DistinctSourcesIsSortedUnion) {
  Workload wl = GenerateWorkload(topology_, BaseSpec());
  std::vector<NodeId> sources = wl.DistinctSources();
  EXPECT_TRUE(std::is_sorted(sources.begin(), sources.end()));
  std::set<NodeId> expected;
  for (const Task& task : wl.tasks) {
    expected.insert(task.sources.begin(), task.sources.end());
  }
  EXPECT_EQ(sources.size(), expected.size());
}

TEST_F(WorkloadTest, WithSourceAddedExtendsTaskAndFunction) {
  Workload wl = GenerateWorkload(topology_, BaseSpec());
  NodeId d = wl.tasks[0].destination;
  NodeId fresh = kInvalidNode;
  for (NodeId n = 0; n < topology_.node_count(); ++n) {
    if (n != d && std::find(wl.tasks[0].sources.begin(),
                            wl.tasks[0].sources.end(),
                            n) == wl.tasks[0].sources.end()) {
      fresh = n;
      break;
    }
  }
  ASSERT_NE(fresh, kInvalidNode);
  Workload updated = WithSourceAdded(wl, fresh, d, 1.25);
  EXPECT_EQ(updated.tasks[0].sources.size(), wl.tasks[0].sources.size() + 1);
  EXPECT_TRUE(std::binary_search(updated.tasks[0].sources.begin(),
                                 updated.tasks[0].sources.end(), fresh));
  // The new source participates in the function.
  auto sources = updated.functions.Get(d).sources();
  EXPECT_TRUE(std::binary_search(sources.begin(), sources.end(), fresh));
}

TEST_F(WorkloadTest, WithSourceRemovedShrinksTask) {
  Workload wl = GenerateWorkload(topology_, BaseSpec());
  NodeId d = wl.tasks[0].destination;
  NodeId victim = wl.tasks[0].sources[0];
  Workload updated = WithSourceRemoved(wl, victim, d);
  EXPECT_EQ(updated.tasks[0].sources.size(), wl.tasks[0].sources.size() - 1);
  auto sources = updated.functions.Get(d).sources();
  EXPECT_FALSE(std::binary_search(sources.begin(), sources.end(), victim));
}

TEST_F(WorkloadTest, MutatorsValidateArguments) {
  Workload wl = GenerateWorkload(topology_, BaseSpec());
  NodeId d = wl.tasks[0].destination;
  EXPECT_DEATH(WithSourceAdded(wl, wl.tasks[0].sources[0], d, 1.0),
               "already present");
  EXPECT_DEATH(WithSourceRemoved(wl, 9999, d), "not present");
}

TEST_F(WorkloadTest, TooManySourcesAborts) {
  WorkloadSpec spec = BaseSpec();
  spec.selection = SourceSelection::kUniform;
  spec.sources_per_destination = topology_.node_count();  // > n-1.
  EXPECT_DEATH(GenerateWorkload(topology_, spec), "too small");
}

// --- Query catalog round trips (lifecycle layer) ---

void ExpectSameWorkload(const Workload& a, const Workload& b) {
  EXPECT_EQ(a.tasks, b.tasks);
  ASSERT_EQ(a.specs.size(), b.specs.size());
  for (size_t i = 0; i < a.specs.size(); ++i) {
    EXPECT_EQ(a.specs[i].kind, b.specs[i].kind) << "spec " << i;
    EXPECT_EQ(a.specs[i].weights, b.specs[i].weights) << "spec " << i;
  }
}

std::vector<std::vector<uint8_t>> NodeImagesOf(const Topology& topology,
                                               const Workload& workload) {
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  return EncodeAllNodeStates(compiled, workload.functions);
}

// The generator emits destination-sorted tasks, ascending sources, and
// source-sorted weights — exactly the catalog's canonical form — so a
// catalog seeded from a generated workload materializes it back exactly.
TEST_F(WorkloadTest, CatalogRoundTripRestoresExactSeedWorkload) {
  Workload seed = GenerateWorkload(topology_, BaseSpec());
  QueryCatalog catalog = QueryCatalog::FromWorkload(seed);
  EXPECT_EQ(catalog.size(), static_cast<int>(seed.tasks.size()));
  EXPECT_EQ(catalog.version(), 0);
  ExpectSameWorkload(seed, catalog.ToWorkload());
  // Idempotent: materialize -> reseed -> materialize is a fixed point.
  ExpectSameWorkload(catalog.ToWorkload(),
                     QueryCatalog::FromWorkload(catalog.ToWorkload())
                         .ToWorkload());
}

// Admit -> modify -> retire that net to nothing restores the exact seed
// workload AND byte-identical node tables: catalog content, not mutation
// history, determines the plan bytes.
TEST_F(WorkloadTest, CatalogMutationCycleRestoresWorkloadAndNodeTables) {
  Workload seed = GenerateWorkload(topology_, BaseSpec());
  std::vector<std::vector<uint8_t>> seed_images =
      NodeImagesOf(topology_, seed);
  QueryCatalog catalog = QueryCatalog::FromWorkload(seed);

  // A destination no query serves, and a source its first query lacks.
  NodeId extra_destination = 0;
  while (catalog.Contains(extra_destination)) ++extra_destination;
  NodeId existing = catalog.queries().begin()->first;
  NodeId extra_source = 0;
  while (extra_source == existing || extra_source == extra_destination ||
         catalog.Get(existing).HasSource(extra_source)) {
    ++extra_source;
  }

  QueryDefinition query;
  query.destination = extra_destination;
  query.spec.kind = AggregateKind::kWeightedAverage;
  query.spec.weights = {{existing, 1.0}, {extra_source, 2.0}};
  catalog.Admit(query);
  catalog.AddSource(existing, extra_source, 0.75);
  EXPECT_TRUE(catalog.Get(existing).HasSource(extra_source));

  // Unwind: the cycle nets to the seed content at a later version.
  catalog.RemoveSource(existing, extra_source);
  catalog.Retire(extra_destination);
  EXPECT_EQ(catalog.version(), 4);
  ExpectSameWorkload(seed, catalog.ToWorkload());
  EXPECT_EQ(seed_images, NodeImagesOf(topology_, catalog.ToWorkload()));
}

}  // namespace
}  // namespace m2m
