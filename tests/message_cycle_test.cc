// The paper's message-merging corner case (section 3): "edge e1's message
// unit x1 may be waiting for e2's unit y2, e2's x2 for e3's y3, and e3's x3
// for e1's y1; in this case one ei must transmit xi and yi separately to
// break the cycle." A pentagon with satellite sources/destinations realizes
// it: each pentagon edge carries two routes' units whose wait-for relations
// chain all the way around, so merging every edge into one message is
// cyclic and the greedy merger must leave at least one edge split.

#include <cmath>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "plan/messaging.h"
#include "plan/planner.h"
#include "routing/path_system.h"
#include "sim/executor.h"
#include "sim/readings.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {
namespace {

struct PentagonCase {
  Topology topology;
  Workload workload;
  std::shared_ptr<const MulticastForest> forest;
  std::vector<NodeId> ring;     // Pentagon nodes.
  std::vector<NodeId> sources;  // Satellite source per ring node.
  std::vector<NodeId> dests;    // Satellite destination per ring node.
};

PentagonCase BuildPentagon() {
  // Ring of 5 nodes, radius 40 m: sides ~47 m (within the 50 m range),
  // diagonals ~76 m (out of range). Each ring node hosts a source
  // satellite and a destination satellite just outside the ring.
  const double kRadius = 40.0;
  std::vector<Point> positions;
  for (int i = 0; i < 5; ++i) {
    double angle = 2.0 * M_PI * i / 5.0;
    positions.push_back(
        Point{kRadius * std::cos(angle), kRadius * std::sin(angle)});
  }
  std::vector<NodeId> ring{0, 1, 2, 3, 4};
  std::vector<NodeId> sources;
  std::vector<NodeId> dests;
  for (int i = 0; i < 5; ++i) {
    double angle = 2.0 * M_PI * i / 5.0;
    double out = kRadius + 42.0;
    // Source satellite radially outward; destination satellite slightly
    // rotated so the two stay close to their ring node only.
    sources.push_back(static_cast<NodeId>(positions.size()));
    positions.push_back(
        Point{out * std::cos(angle - 0.08), out * std::sin(angle - 0.08)});
    dests.push_back(static_cast<NodeId>(positions.size()));
    positions.push_back(
        Point{out * std::cos(angle + 0.08), out * std::sin(angle + 0.08)});
  }
  Topology topology(std::move(positions), 50.0);
  // Sanity: ring adjacency is exactly the pentagon sides.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(topology.AreNeighbors(ring[i], ring[(i + 1) % 5]));
    EXPECT_FALSE(topology.AreNeighbors(ring[i], ring[(i + 2) % 5]));
  }

  // Route i: source satellite at ring node i feeds the destination
  // satellite at ring node i+2 — two ring hops, always the short way
  // around, so pentagon edge (i, i+1) serves routes i-1 and i and the
  // wait-for relation chains around the whole ring.
  Workload workload;
  for (int i = 0; i < 5; ++i) {
    FunctionSpec spec;
    spec.kind = AggregateKind::kWeightedSum;
    spec.weights = {{sources[i], 1.0 + i}};
    workload.tasks.push_back(Task{dests[(i + 2) % 5], {sources[i]}});
    workload.specs.push_back(spec);
  }
  workload.RebuildFunctions();

  PentagonCase result{std::move(topology), std::move(workload), nullptr,
                      std::move(ring), std::move(sources), std::move(dests)};
  static std::vector<std::unique_ptr<PathSystem>> keep_alive;
  keep_alive.push_back(std::make_unique<PathSystem>(result.topology));
  result.forest = std::make_shared<const MulticastForest>(
      *keep_alive.back(), result.workload.tasks);
  return result;
}

TEST(MessageCycleTest, RoutesChainAroundTheRing) {
  PentagonCase pentagon = BuildPentagon();
  // Every route takes its two ring hops the short way.
  for (int i = 0; i < 5; ++i) {
    const std::vector<int>& route = pentagon.forest->Route(
        SourceDestPair{pentagon.sources[i], pentagon.dests[(i + 2) % 5]});
    ASSERT_EQ(route.size(), 4u) << "route " << i;
  }
  // Each pentagon edge (one direction) carries exactly two routes.
  int shared_ring_edges = 0;
  for (const ForestEdge& edge : pentagon.forest->edges()) {
    bool ring_edge = edge.edge.tail < 5 && edge.edge.head < 5;
    if (ring_edge && edge.pairs.size() == 2) ++shared_ring_edges;
  }
  EXPECT_EQ(shared_ring_edges, 5);
}

TEST(MessageCycleTest, FullPerEdgeMergeWouldCycleSoGreedySplits) {
  PentagonCase pentagon = BuildPentagon();
  GlobalPlan plan = BuildPlan(pentagon.forest,
                              pentagon.workload.functions, {});
  MessageSchedule schedule =
      MessageSchedule::Build(plan, pentagon.workload.functions,
                             MergePolicy::kGreedyMergePerEdge);
  // Theorem 2 holds at unit granularity...
  EXPECT_TRUE(schedule.UnitsAcyclic());
  // ...but one-message-per-edge is impossible here: the greedy merger must
  // leave at least one edge carrying two messages.
  std::set<int> edges_with_units;
  for (const MessageUnit& unit : schedule.units()) {
    edges_with_units.insert(unit.edge_index);
  }
  EXPECT_GT(schedule.messages().size(), edges_with_units.size())
      << "per-edge contraction should have been cyclic";
  EXPECT_TRUE(schedule.MessagesAcyclic());
  // Still better than no merging at all.
  EXPECT_LT(schedule.messages().size(), schedule.units().size());
}

TEST(MessageCycleTest, ExecutesCorrectlyDespiteTheSplit) {
  PentagonCase pentagon = BuildPentagon();
  GlobalPlan plan = BuildPlan(pentagon.forest,
                              pentagon.workload.functions, {});
  CompiledPlan compiled =
      CompiledPlan::Compile(plan, pentagon.workload.functions);
  PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                        pentagon.workload.functions, EnergyModel{});
  ReadingGenerator readings(pentagon.topology.node_count(), 1001);
  RoundResult result = executor.RunRound(readings.values());
  for (int i = 0; i < 5; ++i) {
    double expected = (1.0 + i) * readings.values()[pentagon.sources[i]];
    EXPECT_NEAR(result.destination_values.at(pentagon.dests[(i + 2) % 5]),
                expected, 1e-9)
        << "route " << i;
  }
}

}  // namespace
}  // namespace m2m
