// Scale stress: the largest configurations the evaluation touches, run
// through the full pipeline with every validator on. These are the tests
// that catch quadratic blowups, overflow in the perturbed weights, and
// bookkeeping drift that small fixtures never exercise.

#include <memory>

#include <gtest/gtest.h>

#include "core/system.h"
#include "plan/consistency.h"
#include "runtime/network.h"
#include "sim/readings.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

TEST(StressTest, LargestEvaluationNetwork) {
  // Figure 6's largest point: 250 nodes, 62 destinations x 37 sources.
  std::vector<Topology> series = MakeScalingSeries({250}, 77);
  const Topology& topology = series[0];
  WorkloadSpec spec;
  spec.destination_count = topology.node_count() / 4;
  spec.sources_per_destination = topology.node_count() * 15 / 100;
  spec.selection = SourceSelection::kUniform;
  spec.seed = 901;
  Workload workload = GenerateWorkload(topology, spec);
  System system(topology, workload);  // Consistency validated internally.
  EXPECT_GT(system.forest().edges().size(), 500u);
  ReadingGenerator readings(topology.node_count(), 902);
  RoundResult result = system.MakeExecutor().RunRound(readings.values());
  EXPECT_EQ(result.destination_values.size(), workload.tasks.size());
  EXPECT_GT(result.units, 1000);
}

TEST(StressTest, EveryNodeIsADestination) {
  // Figure 3's heaviest point: all 68 nodes are destinations with 20
  // sources each (1360 pairs).
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = topology.node_count();
  spec.sources_per_destination = 20;
  spec.dispersion = 0.9;
  spec.seed = 903;
  Workload workload = GenerateWorkload(topology, spec);
  System system(topology, workload);
  EXPECT_TRUE(ValidatePlanConsistency(system.plan()));
  ReadingGenerator readings(topology.node_count(), 904);
  RoundResult result = system.MakeExecutor().RunRound(readings.values());
  EXPECT_EQ(result.destination_values.size(),
            static_cast<size_t>(topology.node_count()));
}

TEST(StressTest, DistributedRuntimeAtScale) {
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 34;
  spec.sources_per_destination = 20;
  spec.dispersion = 0.9;
  spec.seed = 905;
  Workload workload = GenerateWorkload(topology, spec);
  System system(topology, workload);
  RuntimeNetwork network(system.compiled(), workload.functions);
  ReadingGenerator readings(topology.node_count(), 906);
  RuntimeNetwork::Result result = network.RunRound(readings.values());
  EXPECT_EQ(result.destination_values.size(), workload.tasks.size());
  // Every packet delivered within a bounded number of cascade passes.
  EXPECT_LE(result.delivery_passes, 64);
}

TEST(StressTest, LongSuppressionRunStaysExact) {
  // 100 rounds of mixed-volatility suppression with the aggressive policy:
  // accumulated float drift must stay within the executor's verification
  // tolerance (the run aborts otherwise).
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 14;
  spec.sources_per_destination = 15;
  spec.kind = AggregateKind::kWeightedAverage;
  spec.seed = 907;
  Workload workload = GenerateWorkload(topology, spec);
  System system(topology, workload);
  PlanExecutor executor = system.MakeExecutor();
  ReadingGenerator readings(topology.node_count(), 908);
  executor.InitializeState(readings.values());
  Rng rng(909);
  for (int round = 0; round < 100; ++round) {
    std::vector<bool> changed = readings.Advance(rng.UniformDouble());
    executor.RunSuppressedRound(readings.values(), changed,
                                OverridePolicy::kAggressive);
  }
  SUCCEED();
}

TEST(StressTest, ManyIncrementalUpdatesStayConsistent) {
  // 25 consecutive workload edits, each applied incrementally; the plan
  // must track a fresh rebuild bit for bit the whole way.
  Topology topology = MakeGreatDuckIslandLike();
  PathSystem paths(topology);
  WorkloadSpec spec;
  spec.destination_count = 12;
  spec.sources_per_destination = 10;
  spec.seed = 910;
  Workload workload = GenerateWorkload(topology, spec);
  auto forest = std::make_shared<MulticastForest>(paths, workload.tasks);
  GlobalPlan plan = BuildPlan(forest, workload.functions, {});
  Rng rng(911);
  for (int step = 0; step < 25; ++step) {
    const Task& task =
        workload.tasks[rng.UniformInt(workload.tasks.size())];
    if (rng.Bernoulli(0.5) && task.sources.size() > 3) {
      workload = WithSourceRemoved(
          workload, task.sources[rng.UniformInt(task.sources.size())],
          task.destination);
    } else {
      NodeId fresh = kInvalidNode;
      for (NodeId n = 0; n < topology.node_count(); ++n) {
        if (n != task.destination &&
            std::find(task.sources.begin(), task.sources.end(), n) ==
                task.sources.end()) {
          fresh = n;
          break;
        }
      }
      if (fresh == kInvalidNode) continue;
      workload = WithSourceAdded(workload, fresh, task.destination, 1.0);
    }
    forest = std::make_shared<MulticastForest>(paths, workload.tasks);
    plan = UpdatePlan(plan, forest, workload.functions);
    ASSERT_TRUE(ValidatePlanConsistency(plan)) << "step " << step;
    GlobalPlan fresh_plan = BuildPlan(forest, workload.functions,
                                      plan.options());
    ASSERT_EQ(plan.edge_plans(), fresh_plan.edge_plans())
        << "step " << step;
  }
}

}  // namespace
}  // namespace m2m
