#include <gtest/gtest.h>

#include "flow/max_flow.h"

namespace m2m {
namespace {

TEST(MaxFlowTest, SingleEdge) {
  MaxFlow flow(2);
  int e = flow.AddEdge(0, 1, 5);
  EXPECT_EQ(flow.Solve(0, 1), 5);
  EXPECT_EQ(flow.flow(e), 5);
}

TEST(MaxFlowTest, SerialEdgesBottleneck) {
  MaxFlow flow(3);
  flow.AddEdge(0, 1, 10);
  int e = flow.AddEdge(1, 2, 3);
  EXPECT_EQ(flow.Solve(0, 2), 3);
  EXPECT_EQ(flow.flow(e), 3);
}

TEST(MaxFlowTest, ParallelPathsAdd) {
  MaxFlow flow(4);
  flow.AddEdge(0, 1, 4);
  flow.AddEdge(1, 3, 4);
  flow.AddEdge(0, 2, 7);
  flow.AddEdge(2, 3, 5);
  EXPECT_EQ(flow.Solve(0, 3), 9);
}

TEST(MaxFlowTest, ClassicDiamondWithCrossEdge) {
  // Standard textbook instance where augmenting through the cross edge
  // matters.
  MaxFlow flow(4);
  flow.AddEdge(0, 1, 10);
  flow.AddEdge(0, 2, 10);
  flow.AddEdge(1, 2, 1);
  flow.AddEdge(1, 3, 8);
  flow.AddEdge(2, 3, 10);
  EXPECT_EQ(flow.Solve(0, 3), 18);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  MaxFlow flow(4);
  flow.AddEdge(0, 1, 5);
  flow.AddEdge(2, 3, 5);
  EXPECT_EQ(flow.Solve(0, 3), 0);
}

TEST(MaxFlowTest, MinCutSideSeparatesSourceFromSink) {
  MaxFlow flow(4);
  flow.AddEdge(0, 1, 2);
  flow.AddEdge(1, 2, 1);  // The bottleneck.
  flow.AddEdge(2, 3, 2);
  EXPECT_EQ(flow.Solve(0, 3), 1);
  std::vector<bool> side = flow.MinCutSide(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlowTest, ZeroCapacityEdgeIgnored) {
  MaxFlow flow(2);
  flow.AddEdge(0, 1, 0);
  EXPECT_EQ(flow.Solve(0, 1), 0);
}

TEST(MaxFlowTest, BipartiteMatchingViaUnitCapacities) {
  // 3x3 bipartite graph with a perfect matching of size 3.
  // U = {2,3,4}, V = {5,6,7}, s=0, t=1.
  MaxFlow flow(8);
  for (int u = 2; u <= 4; ++u) flow.AddEdge(0, u, 1);
  for (int v = 5; v <= 7; ++v) flow.AddEdge(v, 1, 1);
  flow.AddEdge(2, 5, 1);
  flow.AddEdge(2, 6, 1);
  flow.AddEdge(3, 5, 1);
  flow.AddEdge(4, 7, 1);
  EXPECT_EQ(flow.Solve(0, 1), 3);
}

TEST(MaxFlowTest, InfinityNeverSaturates) {
  MaxFlow flow(3);
  flow.AddEdge(0, 1, MaxFlow::kInfinity);
  flow.AddEdge(1, 2, 123);
  EXPECT_EQ(flow.Solve(0, 2), 123);
}

TEST(MaxFlowTest, SolveTwiceAborts) {
  MaxFlow flow(2);
  flow.AddEdge(0, 1, 1);
  flow.Solve(0, 1);
  EXPECT_DEATH(flow.Solve(0, 1), "once");
}

TEST(MaxFlowTest, AddEdgeAfterSolveAborts) {
  MaxFlow flow(2);
  flow.AddEdge(0, 1, 1);
  flow.Solve(0, 1);
  EXPECT_DEATH(flow.AddEdge(0, 1, 1), "frozen");
}

}  // namespace
}  // namespace m2m
