#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fault_test_util.h"
#include "plan/consistency.h"
#include "plan/dissemination.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "plan/serialization.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "runtime/detector.h"
#include "runtime/network.h"
#include "runtime/wire_functions.h"
#include "sim/base_station.h"
#include "sim/executor.h"
#include "sim/fault_schedule.h"
#include "sim/readings.h"
#include "sim/self_healing.h"
#include "topology/generator.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {
namespace {

using fault_test::Destinations;
using fault_test::ValuesClose;

Workload DefaultWorkload(const Topology& topology, uint64_t seed) {
  WorkloadSpec spec;
  spec.destination_count = 5;
  spec.sources_per_destination = 5;
  spec.max_hops = 4;
  spec.seed = seed;
  return GenerateWorkload(topology, spec);
}

// The self-healing runs protect the base station alongside the
// destinations: a dead base station has no in-network recovery story (it
// is the re-planner).
FaultSchedule SelfHealSchedule(const Topology& topology,
                               const Workload& workload, NodeId base,
                               uint64_t seed) {
  std::vector<NodeId> protected_nodes = Destinations(workload);
  if (std::find(protected_nodes.begin(), protected_nodes.end(), base) ==
      protected_nodes.end()) {
    protected_nodes.push_back(base);
  }
  FaultScheduleOptions options;
  options.rounds = 5;
  options.transient_link_fraction = 0.06;
  options.transient_drop_probability = 0.5;
  options.persistent_link_failures = 2;
  options.node_deaths = 1;
  options.seed = seed;
  return FaultSchedule::Generate(topology, protected_nodes, options);
}

Workload SurvivorWorkload(const Workload& workload,
                          const std::vector<NodeId>& dead) {
  Workload survivors = workload;
  for (NodeId d : dead) {
    for (const Task& task : std::vector<Task>(survivors.tasks)) {
      if (std::find(task.sources.begin(), task.sources.end(), d) !=
          task.sources.end()) {
        survivors = WithSourceRemoved(survivors, d, task.destination);
      }
    }
  }
  return survivors;
}

/// Everything one oracle-free self-healing run produces.
struct SelfHealRun {
  std::string trace;
  /// Completed values whose attributed epoch's analytic executor disagreed.
  std::vector<std::string> value_mismatches;
  /// Corollary 1 violations: a replan changed an edge outside the
  /// predicted perturbation set for its old -> new transition.
  std::vector<std::string> corollary_violations;
  /// (lo, hi) believed-failed link -> first round it was believed.
  std::map<std::pair<NodeId, NodeId>, int> first_believed_link;
  /// Believed-dead node -> first round it was believed dead.
  std::map<NodeId, int> first_believed_dead;
  std::unordered_map<NodeId, double> final_values;
  std::unordered_map<NodeId, uint32_t> final_epochs;
  std::vector<NodeId> final_incomplete;
  uint32_t final_epoch = 0;
  int final_pending_installs = -1;
  int64_t probe_transmissions = 0;
  int64_t control_hop_attempts = 0;
  int64_t control_payload_bytes = 0;
  int64_t epoch_rejected = 0;
  int replans = 0;
  std::vector<std::pair<NodeId, NodeId>> believed_links;
  std::vector<NodeId> believed_dead;
  std::optional<GlobalPlan> final_plan;
  Workload final_workload;
};

SelfHealRun RunSelfHealing(const Topology& topology, const Workload& workload,
                           const FaultSchedule& schedule, NodeId base,
                           uint64_t readings_seed, int total_rounds) {
  EventTrace trace;
  trace.Append(schedule.Describe());
  SelfHealingOptions options;
  SelfHealingRuntime runtime(topology, workload, base, options);

  // Analytic executor per plan epoch, for attributing completed values.
  std::map<uint32_t, PlanExecutor> executors;
  executors.emplace(
      0u, PlanExecutor(std::make_shared<CompiledPlan>(runtime.compiled()),
                       runtime.current_workload().functions, EnergyModel{}));

  SelfHealRun run;
  for (int round = 0; round < total_rounds; ++round) {
    ReadingGenerator readings(topology.node_count(),
                              readings_seed + static_cast<uint64_t>(round));
    LossyLinkModel physical;
    physical.attempt_delivers = [&schedule, round](NodeId from, NodeId to,
                                                   int attempt) {
      return schedule.AttemptDelivers(round, from, to, attempt);
    };
    physical.node_alive = [&schedule, round](NodeId n) {
      return schedule.NodeAliveAt(round, n);
    };

    // Snapshot the live plan so each replan's divergence can be bounded by
    // its Corollary 1 predicted perturbation set.
    GlobalPlan pre_plan = runtime.plan();
    FunctionSet pre_functions = runtime.current_workload().functions;

    SelfHealingRoundResult result =
        runtime.RunRound(round, readings.values(), physical, &trace);
    run.probe_transmissions += result.probe_transmissions;
    run.control_hop_attempts += result.control_hop_attempts;
    run.control_payload_bytes += result.control_payload_bytes;
    run.epoch_rejected += result.data.epoch_rejected;
    if (result.replanned) {
      run.replans += 1;
      executors.emplace(
          runtime.base_epoch(),
          PlanExecutor(std::make_shared<CompiledPlan>(runtime.compiled()),
                       runtime.current_workload().functions, EnergyModel{}));
      // Corollary 1, per replan: the edges this transition actually
      // changed must lie inside the predicted perturbation set.
      std::vector<DirectedEdge> divergent =
          DivergentEdgeKeys(pre_plan, runtime.plan());
      std::vector<DirectedEdge> predicted = PredictedPerturbedEdges(
          pre_plan, pre_functions, runtime.plan(),
          runtime.current_workload().functions);
      for (const DirectedEdge& edge : divergent) {
        if (!std::binary_search(predicted.begin(), predicted.end(), edge)) {
          std::ostringstream violation;
          violation << "r" << round << " edge " << edge.tail << "->"
                    << edge.head << " outside the predicted set ("
                    << divergent.size() << " divergent, "
                    << predicted.size() << " predicted)";
          run.corollary_violations.push_back(violation.str());
        }
      }
    }

    // Epoch attribution: every completed value must equal the analytic
    // executor of exactly the epoch the destination reports — the "no
    // silent cross-plan merge" differential.
    std::map<uint32_t, std::unordered_map<NodeId, double>> analytic_by_epoch;
    for (const auto& [destination, value] : result.data.destination_values) {
      uint32_t epoch = result.data.destination_epochs.at(destination);
      auto [it, fresh] = analytic_by_epoch.try_emplace(epoch);
      if (fresh) {
        it->second =
            executors.at(epoch).RunRound(readings.values()).destination_values;
      }
      auto oracle_it = it->second.find(destination);
      if (oracle_it == it->second.end() ||
          !ValuesClose(value, oracle_it->second)) {
        std::ostringstream mismatch;
        mismatch << "r" << round << " d" << destination << " epoch " << epoch
                 << " got " << value;
        run.value_mismatches.push_back(mismatch.str());
      }
    }

    for (const auto& link : runtime.ledger().believed_failed_links()) {
      run.first_believed_link.try_emplace(link, round);
    }
    for (NodeId dead : runtime.ledger().believed_dead()) {
      run.first_believed_dead.try_emplace(dead, round);
    }

    if (round == total_rounds - 1) {
      run.final_values = result.data.destination_values;
      run.final_epochs = result.data.destination_epochs;
      run.final_incomplete = result.data.incomplete_destinations;
      run.final_epoch = runtime.base_epoch();
      run.final_pending_installs = result.pending_installs;
    }
  }
  run.believed_links = runtime.ledger().believed_failed_links();
  run.believed_dead = runtime.ledger().believed_dead();
  run.final_plan = runtime.plan();
  run.final_workload = runtime.current_workload();
  run.trace = trace.ToString();
  return run;
}

// The tentpole acceptance criterion: with NO oracle — the runtime never
// reads the schedule's event list — the network detects every persistent
// fault from its own traffic within threshold + 2 rounds, ships the patched
// plan over the same lossy links, and converges to exactly the values the
// oracle-driven PR 1 path computes; replays are byte-identical.
class SelfHealingDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelfHealingDifferential, DetectsRepairsAndConvergesWithoutOracle) {
  const uint64_t seed = GetParam();
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, seed * 17 + 3);
  NodeId base = PickBaseStation(topology);
  FaultSchedule schedule = SelfHealSchedule(topology, workload, base, seed);
  const int scheduled_rounds = schedule.options().rounds;
  const int total_rounds = scheduled_rounds + 10;

  SelfHealRun run = RunSelfHealing(topology, workload, schedule, base,
                                   seed + 1000, total_rounds);

  // --- Detection: every persistent fault believed within K + 2 rounds.
  const int latency_budget = SelfHealingOptions{}.detector.suspicion_threshold + 2;
  for (const FaultEvent& event : schedule.events()) {
    if (event.type == FaultType::kTransientLink) continue;
    if (event.type == FaultType::kPersistentLink) {
      std::pair<NodeId, NodeId> link{std::min(event.a, event.b),
                                     std::max(event.a, event.b)};
      auto it = run.first_believed_link.find(link);
      ASSERT_NE(it, run.first_believed_link.end())
          << "seed " << seed << ": failed link " << link.first << "-"
          << link.second << " never detected";
      EXPECT_LE(it->second, event.round + latency_budget)
          << "seed " << seed << ": link " << link.first << "-" << link.second
          << " failed r" << event.round;
    } else {
      auto it = run.first_believed_dead.find(event.a);
      ASSERT_NE(it, run.first_believed_dead.end())
          << "seed " << seed << ": dead node " << event.a
          << " never detected";
      EXPECT_LE(it->second, event.round + latency_budget)
          << "seed " << seed << ": node " << event.a << " died r"
          << event.round;
    }
  }

  // --- No false beliefs: everything believed failed really failed.
  std::vector<NodeId> true_dead = schedule.DeadNodesThrough(total_rounds);
  std::vector<std::pair<NodeId, NodeId>> true_links =
      schedule.FailedLinksThrough(total_rounds);
  EXPECT_EQ(run.believed_dead, true_dead) << "seed " << seed;
  for (const auto& [lo, hi] : run.believed_links) {
    bool is_true_link = std::find(true_links.begin(), true_links.end(),
                                  std::make_pair(lo, hi)) != true_links.end();
    bool dead_incident =
        std::find(true_dead.begin(), true_dead.end(), lo) != true_dead.end() ||
        std::find(true_dead.begin(), true_dead.end(), hi) != true_dead.end();
    EXPECT_TRUE(is_true_link || dead_incident)
        << "seed " << seed << ": false suspicion " << lo << "-" << hi;
  }

  // --- Repair completed: dissemination fully acked, one epoch everywhere.
  EXPECT_EQ(run.final_pending_installs, 0) << "seed " << seed;
  EXPECT_TRUE(run.final_incomplete.empty())
      << "seed " << seed << ": destination " << run.final_incomplete.front()
      << " did not converge";
  for (const auto& [destination, epoch] : run.final_epochs) {
    EXPECT_EQ(epoch, run.final_epoch)
        << "seed " << seed << " destination " << destination;
  }

  // --- Mixed-epoch rounds never produced a wrong value.
  EXPECT_TRUE(run.value_mismatches.empty())
      << "seed " << seed << ": " << run.value_mismatches.front();

  // --- Corollary 1, per replan: every incremental replan touched only
  // edges inside its predicted perturbation set.
  EXPECT_TRUE(run.corollary_violations.empty())
      << "seed " << seed << ": " << run.corollary_violations.front();

  // --- Differential against the oracle-driven path: the self-healed plan
  // equals a from-scratch plan over the TRUE surviving topology (the PR 1
  // harness's end state), and the converged values match its executor.
  Workload survivors = SurvivorWorkload(workload, true_dead);
  Topology masked =
      Topology::WithFailures(topology, true_links, true_dead);
  PathSystem masked_paths(masked);
  GlobalPlan oracle_plan = BuildPlan(
      std::make_shared<MulticastForest>(masked_paths, survivors.tasks),
      survivors.functions);
  std::vector<std::string> divergence =
      FindPlanDivergence(*run.final_plan, oracle_plan);
  EXPECT_TRUE(divergence.empty())
      << "seed " << seed << ": " << divergence.front();
  EXPECT_TRUE(ValidatePlanConsistency(*run.final_plan)) << "seed " << seed;

  PlanExecutor oracle(std::make_shared<CompiledPlan>(CompiledPlan::Compile(
                          oracle_plan, survivors.functions)),
                      survivors.functions, EnergyModel{});
  ReadingGenerator final_readings(
      topology.node_count(),
      seed + 1000 + static_cast<uint64_t>(total_rounds - 1));
  RoundResult oracle_round = oracle.RunRound(final_readings.values());
  ASSERT_EQ(run.final_values.size(), oracle_round.destination_values.size())
      << "seed " << seed;
  for (const auto& [destination, value] : run.final_values) {
    auto it = oracle_round.destination_values.find(destination);
    ASSERT_NE(it, oracle_round.destination_values.end())
        << "seed " << seed << " destination " << destination;
    EXPECT_TRUE(ValuesClose(value, it->second))
        << "seed " << seed << " destination " << destination << ": " << value
        << " vs oracle " << it->second;
  }

  // --- Determinism: byte-identical replay.
  SelfHealRun replay = RunSelfHealing(topology, workload, schedule, base,
                                      seed + 1000, total_rounds);
  EXPECT_EQ(run.trace, replay.trace) << "seed " << seed;
  EXPECT_EQ(run.probe_transmissions, replay.probe_transmissions);
  EXPECT_EQ(run.control_hop_attempts, replay.control_hop_attempts);
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, SelfHealingDifferential,
                         ::testing::Range<uint64_t>(1, 21));

// --- Failure detector unit tests ---

TEST(FailureDetectorTest, HeartbeatEvidenceSuppressesProbes) {
  Topology topology = MakeGrid(4, 1, 10.0, 15.0);
  FailureDetector detector(topology);
  // Every directed neighbor pair heard: no probes, no suspicions.
  std::set<std::pair<NodeId, NodeId>> heard;
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    for (NodeId m : topology.neighbors(n)) heard.emplace(n, m);
  }
  auto report = detector.ObserveRound(
      0, heard, [](NodeId, NodeId, int) { return true; }, nullptr);
  EXPECT_EQ(report.probe_transmissions, 0);
  EXPECT_TRUE(report.new_suspicions.empty());
}

TEST(FailureDetectorTest, SilentNeighborConfirmedByProbeIsNotSuspected) {
  Topology topology = MakeGrid(4, 1, 10.0, 15.0);
  FailureDetector detector(topology);
  std::set<std::pair<NodeId, NodeId>> silent;  // Nobody heard anybody.
  for (int round = 0; round < 10; ++round) {
    auto report = detector.ObserveRound(
        round, silent, [](NodeId, NodeId, int) { return true; }, nullptr);
    EXPECT_GT(report.probe_transmissions, 0);
    EXPECT_EQ(report.probe_confirmations, report.probe_transmissions / 2);
    EXPECT_TRUE(report.new_suspicions.empty());
  }
  EXPECT_TRUE(detector.suspicions().empty());
}

TEST(FailureDetectorTest, DeadLinkSuspectedAfterExactlyThresholdRounds) {
  Topology topology = MakeGrid(4, 1, 10.0, 15.0);
  DetectorOptions options;
  options.suspicion_threshold = 3;
  FailureDetector detector(topology, options);
  std::set<std::pair<NodeId, NodeId>> silent;
  // Link 1-2 is down in both directions; everything else delivers.
  auto links = [](NodeId from, NodeId to, int) {
    return !((from == 1 && to == 2) || (from == 2 && to == 1));
  };
  for (int round = 0; round < options.suspicion_threshold - 1; ++round) {
    auto report = detector.ObserveRound(round, silent, links, nullptr);
    EXPECT_TRUE(report.new_suspicions.empty()) << "round " << round;
  }
  auto report = detector.ObserveRound(options.suspicion_threshold - 1,
                                      silent, links, nullptr);
  ASSERT_EQ(report.new_suspicions.size(), 2u);  // Both monitors raise.
  EXPECT_EQ(report.new_suspicions[0],
            (SuspectedLink{1, 2, options.suspicion_threshold - 1}));
  EXPECT_EQ(report.new_suspicions[1],
            (SuspectedLink{2, 1, options.suspicion_threshold - 1}));
  EXPECT_TRUE(detector.Suspects(1, 2));
  EXPECT_TRUE(detector.Suspects(2, 1));
  EXPECT_FALSE(detector.Suspects(0, 1));

  // Hysteresis: a single round of renewed evidence (transient glitch) only
  // moves the link into probation — it stays suspected until
  // `probation_rounds` consecutive evidence rounds complete.
  auto all_up = [](NodeId, NodeId, int) { return true; };
  auto after = detector.ObserveRound(options.suspicion_threshold, silent,
                                     all_up, nullptr);
  EXPECT_TRUE(after.new_suspicions.empty());
  EXPECT_TRUE(after.readmitted.empty());
  EXPECT_TRUE(detector.Suspects(1, 2));
  EXPECT_TRUE(detector.InProbation(1, 2));
}

TEST(FailureDetectorTest, IntermittentEvidenceResetsTheCounter) {
  Topology topology = MakeGrid(2, 1, 10.0, 15.0);
  FailureDetector detector(topology);  // Threshold 2.
  std::set<std::pair<NodeId, NodeId>> silent;
  auto dead = [](NodeId, NodeId, int) { return false; };
  auto up = [](NodeId, NodeId, int) { return true; };
  detector.ObserveRound(0, silent, dead, nullptr);
  EXPECT_EQ(detector.missed_rounds(0, 1), 1);
  detector.ObserveRound(1, silent, up, nullptr);  // Probe succeeds.
  EXPECT_EQ(detector.missed_rounds(0, 1), 0);
  detector.ObserveRound(2, silent, dead, nullptr);
  EXPECT_TRUE(detector.suspicions().empty());  // 1 < threshold again.
}

TEST(FailureDetectorTest, DeadMonitorsDoNotMonitor) {
  Topology topology = MakeGrid(3, 1, 10.0, 15.0);
  FailureDetector detector(topology);
  std::set<std::pair<NodeId, NodeId>> silent;
  auto dead_node_2 = [](NodeId from, NodeId to, int) {
    return from != 2 && to != 2;
  };
  auto active = [](NodeId n) { return n != 2; };
  for (int round = 0; round < 4; ++round) {
    detector.ObserveRound(round, silent, dead_node_2, active);
  }
  // Node 1 suspects its link to dead node 2; node 2 itself raised nothing.
  EXPECT_TRUE(detector.Suspects(1, 2));
  for (const SuspectedLink& s : detector.suspicions()) {
    EXPECT_NE(s.monitor, 2);
  }
}

// --- Suspicion ledger unit tests ---

TEST(SuspicionLedgerTest, InfersDeathWhenAllLinksOfANodeAreSuspected) {
  Topology topology = MakeGrid(5, 1, 10.0, 15.0);  // Line 0-1-2-3-4.
  SuspicionLedger ledger(&topology, 0);
  EXPECT_EQ(ledger.revision(), 0);

  ASSERT_TRUE(ledger.RecordSuspicion(2, 3));
  EXPECT_EQ(ledger.revision(), 1);
  // Nodes 3 and 4 are now unreachable from base 0: believed dead.
  EXPECT_EQ(ledger.believed_dead(), (std::vector<NodeId>{3, 4}));
  ASSERT_EQ(ledger.believed_failed_links().size(), 1u);
  EXPECT_EQ(ledger.believed_failed_links().front(),
            (std::pair<NodeId, NodeId>{2, 3}));

  // Duplicate (and the mirrored direction) are no-ops.
  EXPECT_FALSE(ledger.RecordSuspicion(3, 2));
  EXPECT_FALSE(ledger.RecordSuspicion(2, 3));
  EXPECT_EQ(ledger.revision(), 1);

  Topology believed = ledger.BelievedTopology();
  EXPECT_TRUE(believed.neighbors(3).empty());
  EXPECT_TRUE(believed.neighbors(4).empty());
  EXPECT_TRUE(believed.AreNeighbors(0, 1));
}

TEST(SuspicionLedgerTest, InteriorLinkFailureKillsNoNodes) {
  Topology topology = MakeGrid(3, 3, 10.0, 15.0);
  SuspicionLedger ledger(&topology, 0);
  ASSERT_TRUE(ledger.RecordSuspicion(0, 1));
  // The grid remains connected around the failed link.
  EXPECT_TRUE(ledger.believed_dead().empty());
  EXPECT_TRUE(ledger.BelievedTopology().IsConnected());
}

// --- Epoch gate and safe-transition unit tests ---

// A receiver on a newer plan epoch must drop (not merge) packets from
// senders still on the old epoch, while still acking them.
TEST(EpochGateTest, MixedEpochRoundNeverMergesAcrossPlans) {
  Topology topology = MakeGrid(6, 1, 10.0, 15.0);
  Workload workload;
  workload.tasks = {Task{5, {0, 1, 2}}};
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{0, 1.0}, {1, 2.0}, {2, 3.0}};
  workload.specs = {spec};
  workload.RebuildFunctions();

  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan epoch0 = CompiledPlan::Compile(plan, workload.functions);
  CompiledPlan epoch1 = CompiledPlan::Compile(
      plan, workload.functions, MergePolicy::kGreedyMergePerEdge, 1);
  RuntimeNetwork network(epoch0, workload.functions);

  // Move only the destination to epoch 1; all senders stay on epoch 0.
  std::vector<std::vector<uint8_t>> epoch1_images =
      EncodeAllNodeStates(epoch1, workload.functions);
  std::vector<std::vector<NodeId>> segments;
  for (const OutgoingMessageEntry& entry : epoch1.state(5).outgoing_table) {
    segments.push_back(entry.segment);
  }
  network.InstallNodeImage(5, epoch1_images[5], std::move(segments));
  EXPECT_EQ(network.plan_epoch(5), 1u);
  EXPECT_EQ(network.plan_epoch(0), 0u);

  LossyLinkModel links;
  links.attempt_delivers = [](NodeId, NodeId, int) { return true; };
  ReadingGenerator readings(topology.node_count(), 5);
  RuntimeNetwork::LossyResult lossy =
      network.RunRoundLossy(readings.values(), links);

  // The old-epoch packet reaching node 5 is rejected whole: the round ends
  // with the destination stalled (parked), not with a cross-plan value.
  EXPECT_GT(lossy.epoch_rejected, 0);
  EXPECT_TRUE(lossy.destination_values.empty());
  ASSERT_EQ(lossy.incomplete_destinations.size(), 1u);
  EXPECT_EQ(lossy.incomplete_destinations.front(), 5);
  // The epoch rejection was still acked: no sender kept retrying into it.
  EXPECT_EQ(lossy.messages_abandoned, 0);
}

TEST(EpochGateTest, InstallImageDropsOldEpochRoundState) {
  Topology topology = MakeGrid(6, 1, 10.0, 15.0);
  Workload workload;
  workload.tasks = {Task{5, {0, 1, 2}}};
  FunctionSpec spec;
  spec.kind = AggregateKind::kWeightedSum;
  spec.weights = {{0, 1.0}, {1, 2.0}, {2, 3.0}};
  workload.specs = {spec};
  workload.RebuildFunctions();
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan epoch0 = CompiledPlan::Compile(plan, workload.functions);
  CompiledPlan epoch1 = CompiledPlan::Compile(
      plan, workload.functions, MergePolicy::kGreedyMergePerEdge, 1);
  std::vector<std::vector<uint8_t>> images0 =
      EncodeAllNodeStates(epoch0, workload.functions);
  std::vector<std::vector<uint8_t>> images1 =
      EncodeAllNodeStates(epoch1, workload.functions);

  NodeRuntime node(4, images0[4]);
  node.StartRound(1.5);
  EXPECT_FALSE(node.AccumulatorStatuses().empty());

  // Same-epoch reinstall: a no-op (idempotent dissemination duplicate).
  node.InstallImage(images0[4]);
  EXPECT_FALSE(node.AccumulatorStatuses().empty());

  // New-epoch install: every old-epoch partial is parked (dropped).
  node.InstallImage(images1[4]);
  EXPECT_EQ(node.plan_epoch(), 1u);
  EXPECT_TRUE(node.AccumulatorStatuses().empty());
  EXPECT_FALSE(node.FinalValue().has_value());
}

TEST(SafeTransitionTest, HazardsOnlyWhenContentChangesUnderOneEpoch) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 9);
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan epoch0 = CompiledPlan::Compile(plan, workload.functions);
  CompiledPlan epoch1 = CompiledPlan::Compile(
      plan, workload.functions, MergePolicy::kGreedyMergePerEdge, 1);

  // Same tables, new epoch: trivially safe.
  EXPECT_TRUE(FindEpochTransitionHazards(epoch0, workload.functions, epoch1,
                                         workload.functions)
                  .empty());
  // Identical plans under one epoch: safe (nothing changed).
  EXPECT_TRUE(FindEpochTransitionHazards(epoch0, workload.functions, epoch0,
                                         workload.functions)
                  .empty());

  // A changed plan under the SAME epoch is the unsafe case the protocol
  // must never produce.
  NodeId victim = workload.tasks.front().sources.front();
  Workload survivors = WithSourceRemoved(
      workload, victim, workload.tasks.front().destination);
  GlobalPlan changed = BuildPlan(
      std::make_shared<MulticastForest>(paths, survivors.tasks),
      survivors.functions);
  CompiledPlan changed0 = CompiledPlan::Compile(changed, survivors.functions);
  EXPECT_FALSE(FindEpochTransitionHazards(epoch0, workload.functions,
                                          changed0, survivors.functions)
                   .empty());
}

// Epoch-prefix serialization: bumping the epoch re-stamps the image without
// perturbing its contents, so the incremental diff stays Corollary 1-small.
TEST(EpochImageTest, EpochBumpKeepsImageContentsEqual) {
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, 13);
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan epoch0 = CompiledPlan::Compile(plan, workload.functions);
  CompiledPlan epoch7 = CompiledPlan::Compile(
      plan, workload.functions, MergePolicy::kGreedyMergePerEdge, 7);
  std::vector<std::vector<uint8_t>> images0 =
      EncodeAllNodeStates(epoch0, workload.functions);
  std::vector<std::vector<uint8_t>> images7 =
      EncodeAllNodeStates(epoch7, workload.functions);

  ASSERT_EQ(images0.size(), images7.size());
  for (size_t n = 0; n < images0.size(); ++n) {
    EXPECT_TRUE(ImageContentsEqual(images0[n], images7[n])) << "node " << n;
    DecodedNodeState decoded = DecodeNodeState(images7[n]);
    EXPECT_EQ(decoded.plan_epoch, 7u) << "node " << n;
  }
  // Epoch-only difference ships NO images — every participant gets a bump.
  for (const NodeImageDelta& delta : DiffNodeImages(images0, images7)) {
    EXPECT_FALSE(delta.ship_image) << "node " << delta.node;
  }
}

// --- Control-message codec round trips ---

TEST(ControlWireTest, SuspicionReportRoundTrip) {
  wire::SuspicionReport report;
  report.monitor = 17;
  report.entries = {{3, 4}, {21, 6}};
  std::vector<uint8_t> bytes = wire::EncodeSuspicionReport(report);
  auto decoded = wire::TryDecodeSuspicionReport(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, report);
  // Truncation is rejected, not CHECK-crashed (network input).
  bytes.pop_back();
  EXPECT_FALSE(wire::TryDecodeSuspicionReport(bytes).has_value());
  EXPECT_FALSE(wire::TryDecodeEpochBump(bytes).has_value());
}

TEST(ControlWireTest, EpochBumpIsExactlyFiveBytesAndRoundTrips) {
  std::vector<uint8_t> bytes = wire::EncodeEpochBump(0xdeadbeef);
  EXPECT_EQ(bytes.size(), static_cast<size_t>(kEpochBumpPayloadBytes));
  auto decoded = wire::TryDecodeEpochBump(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, 0xdeadbeefu);
}

TEST(ControlWireTest, InstallAckRoundTrip) {
  std::vector<uint8_t> bytes = wire::EncodeInstallAck(42, 9);
  auto decoded = wire::TryDecodeInstallAck(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, 42);
  EXPECT_EQ(decoded->second, 9u);
  EXPECT_FALSE(wire::TryDecodeInstallAck(wire::EncodeEpochBump(1)).has_value());
}

}  // namespace
}  // namespace m2m
