#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/system.h"
#include "runtime/network.h"
#include "plan/consistency.h"
#include "plan/messaging.h"
#include "sim/readings.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

// Randomized invariants, run over a seed sweep via TEST_P. These guard the
// paper's theorems on arbitrary workloads rather than hand-picked ones.
class RandomWorkloadProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  RandomWorkloadProperty()
      : topology_(MakeGreatDuckIslandLike()), paths_(topology_) {
    Rng rng(GetParam());
    WorkloadSpec spec;
    spec.destination_count = 4 + static_cast<int>(rng.UniformInt(12));
    spec.sources_per_destination = 3 + static_cast<int>(rng.UniformInt(15));
    spec.dispersion = rng.UniformDouble();
    spec.max_hops = 1 + static_cast<int>(rng.UniformInt(5));
    spec.kind = rng.Bernoulli(0.5) ? AggregateKind::kWeightedAverage
                                   : AggregateKind::kWeightedSum;
    spec.seed = GetParam() * 13 + 1;
    workload_ = GenerateWorkload(topology_, spec);
    forest_ = std::make_shared<MulticastForest>(paths_, workload_.tasks);
  }

  Topology topology_;
  PathSystem paths_;
  Workload workload_;
  std::shared_ptr<const MulticastForest> forest_;
};

TEST_P(RandomWorkloadProperty, Theorem1ConsistencyHolds) {
  GlobalPlan plan = BuildPlan(forest_, workload_.functions, {});
  std::vector<std::string> violations = FindConsistencyViolations(plan);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST_P(RandomWorkloadProperty, OptimalNeverExceedsEitherBaselinePerEdge) {
  PlannerOptions multicast;
  multicast.strategy = PlanStrategy::kMulticastOnly;
  PlannerOptions aggregation;
  aggregation.strategy = PlanStrategy::kAggregationOnly;
  GlobalPlan opt = BuildPlan(forest_, workload_.functions, {});
  GlobalPlan mc = BuildPlan(forest_, workload_.functions, multicast);
  GlobalPlan agg = BuildPlan(forest_, workload_.functions, aggregation);
  for (size_t e = 0; e < forest_->edges().size(); ++e) {
    int64_t o = opt.plan_for(static_cast<int>(e)).payload_bytes;
    EXPECT_LE(o, mc.plan_for(static_cast<int>(e)).payload_bytes);
    EXPECT_LE(o, agg.plan_for(static_cast<int>(e)).payload_bytes);
  }
}

TEST_P(RandomWorkloadProperty, Theorem2NoWaitForCycles) {
  GlobalPlan plan = BuildPlan(forest_, workload_.functions, {});
  MessageSchedule schedule = MessageSchedule::Build(
      plan, workload_.functions, MergePolicy::kGreedyMergePerEdge);
  EXPECT_TRUE(schedule.UnitsAcyclic());
  EXPECT_TRUE(schedule.MessagesAcyclic());
}

TEST_P(RandomWorkloadProperty, DistributedAggregationIsExact) {
  GlobalPlan plan = BuildPlan(forest_, workload_.functions, {});
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload_.functions);
  PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                        workload_.functions, EnergyModel{});
  ReadingGenerator gen(topology_.node_count(), GetParam() + 999);
  // RunRound CHECK-fails internally on any divergence.
  RoundResult result = executor.RunRound(gen.values());
  EXPECT_EQ(result.destination_values.size(), workload_.tasks.size());
}

TEST_P(RandomWorkloadProperty, SuppressionConvergesOverManyRounds) {
  GlobalPlan plan = BuildPlan(forest_, workload_.functions, {});
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload_.functions);
  PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                        workload_.functions, EnergyModel{});
  ReadingGenerator gen(topology_.node_count(), GetParam() + 555);
  executor.InitializeState(gen.values());
  Rng rng(GetParam());
  for (int round = 0; round < 8; ++round) {
    double p = rng.UniformDouble();
    std::vector<bool> changed = gen.Advance(p);
    OverridePolicy policy = static_cast<OverridePolicy>(rng.UniformInt(4));
    // RunSuppressedRound CHECK-fails if any maintained aggregate drifts.
    executor.RunSuppressedRound(gen.values(), changed, policy);
  }
  SUCCEED();
}

TEST_P(RandomWorkloadProperty, DistributedRuntimeMatchesAnalytic) {
  GlobalPlan plan = BuildPlan(forest_, workload_.functions, {});
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload_.functions);
  PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                        workload_.functions, EnergyModel{});
  ReadingGenerator gen(topology_.node_count(), GetParam() + 321);
  RoundResult analytic = executor.RunRound(gen.values());
  RuntimeNetwork network(compiled, workload_.functions);
  RuntimeNetwork::Result distributed = network.RunRound(gen.values());
  ASSERT_EQ(distributed.destination_values.size(),
            analytic.destination_values.size());
  for (const auto& [d, value] : analytic.destination_values) {
    EXPECT_NEAR(distributed.destination_values.at(d), value,
                1e-4 * std::max(1.0, std::fabs(value)));
  }
}

TEST_P(RandomWorkloadProperty, StateBoundedByTreeSizes) {
  GlobalPlan plan = BuildPlan(forest_, workload_.functions, {});
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload_.functions);
  StateTotals totals = compiled.ComputeStateTotals();
  int64_t bound = std::min(totals.sum_multicast_tree_sizes,
                           totals.sum_aggregation_tree_sizes);
  EXPECT_LE(totals.total(), 6 * bound);
}

TEST_P(RandomWorkloadProperty, MulticastTreeLeavesAreDestinations) {
  EXPECT_TRUE(forest_->CheckMinimality());
  EXPECT_TRUE(forest_->CheckSharing());
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, RandomWorkloadProperty,
                         ::testing::Range<uint64_t>(1, 13));

// Milestone sweep: Theorem 1 consistency also holds on virtual edges for
// any global milestone predicate.
class MilestoneProperty : public ::testing::TestWithParam<double> {};

TEST_P(MilestoneProperty, ConsistencyOnVirtualEdges) {
  Topology topo = MakeGreatDuckIslandLike();
  LinkStabilityModel stability(topo, 33);
  WorkloadSpec spec;
  spec.destination_count = 10;
  spec.sources_per_destination = 8;
  spec.seed = 77;
  Workload wl = GenerateWorkload(topo, spec);
  SystemOptions options;
  options.milestones =
      MilestoneSelector::StabilityThreshold(topo, stability, GetParam());
  System system(topo, wl, options);
  EXPECT_TRUE(ValidatePlanConsistency(system.plan()));
  ReadingGenerator gen(topo.node_count(), 78);
  RoundResult result = system.MakeExecutor().RunRound(gen.values());
  EXPECT_EQ(result.destination_values.size(), wl.tasks.size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, MilestoneProperty,
                         ::testing::Values(0.0, 0.82, 0.86, 0.90, 2.0));

}  // namespace
}  // namespace m2m
