#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/system.h"
#include "cover/bipartite_cover.h"
#include "runtime/network.h"
#include "plan/consistency.h"
#include "plan/messaging.h"
#include "sim/readings.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

// Randomized invariants, run over a seed sweep via TEST_P. These guard the
// paper's theorems on arbitrary workloads rather than hand-picked ones.
class RandomWorkloadProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  RandomWorkloadProperty()
      : topology_(MakeGreatDuckIslandLike()), paths_(topology_) {
    Rng rng(GetParam());
    WorkloadSpec spec;
    spec.destination_count = 4 + static_cast<int>(rng.UniformInt(12));
    spec.sources_per_destination = 3 + static_cast<int>(rng.UniformInt(15));
    spec.dispersion = rng.UniformDouble();
    spec.max_hops = 1 + static_cast<int>(rng.UniformInt(5));
    spec.kind = rng.Bernoulli(0.5) ? AggregateKind::kWeightedAverage
                                   : AggregateKind::kWeightedSum;
    spec.seed = GetParam() * 13 + 1;
    workload_ = GenerateWorkload(topology_, spec);
    forest_ = std::make_shared<MulticastForest>(paths_, workload_.tasks);
  }

  Topology topology_;
  PathSystem paths_;
  Workload workload_;
  std::shared_ptr<const MulticastForest> forest_;
};

TEST_P(RandomWorkloadProperty, Theorem1ConsistencyHolds) {
  GlobalPlan plan = BuildPlan(forest_, workload_.functions, {});
  std::vector<std::string> violations = FindConsistencyViolations(plan);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST_P(RandomWorkloadProperty, OptimalNeverExceedsEitherBaselinePerEdge) {
  PlannerOptions multicast;
  multicast.strategy = PlanStrategy::kMulticastOnly;
  PlannerOptions aggregation;
  aggregation.strategy = PlanStrategy::kAggregationOnly;
  GlobalPlan opt = BuildPlan(forest_, workload_.functions, {});
  GlobalPlan mc = BuildPlan(forest_, workload_.functions, multicast);
  GlobalPlan agg = BuildPlan(forest_, workload_.functions, aggregation);
  for (size_t e = 0; e < forest_->edges().size(); ++e) {
    int64_t o = opt.plan_for(static_cast<int>(e)).payload_bytes;
    EXPECT_LE(o, mc.plan_for(static_cast<int>(e)).payload_bytes);
    EXPECT_LE(o, agg.plan_for(static_cast<int>(e)).payload_bytes);
  }
}

TEST_P(RandomWorkloadProperty, Theorem2NoWaitForCycles) {
  GlobalPlan plan = BuildPlan(forest_, workload_.functions, {});
  MessageSchedule schedule = MessageSchedule::Build(
      plan, workload_.functions, MergePolicy::kGreedyMergePerEdge);
  EXPECT_TRUE(schedule.UnitsAcyclic());
  EXPECT_TRUE(schedule.MessagesAcyclic());
}

TEST_P(RandomWorkloadProperty, DistributedAggregationIsExact) {
  GlobalPlan plan = BuildPlan(forest_, workload_.functions, {});
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload_.functions);
  PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                        workload_.functions, EnergyModel{});
  ReadingGenerator gen(topology_.node_count(), GetParam() + 999);
  // RunRound CHECK-fails internally on any divergence.
  RoundResult result = executor.RunRound(gen.values());
  EXPECT_EQ(result.destination_values.size(), workload_.tasks.size());
}

TEST_P(RandomWorkloadProperty, SuppressionConvergesOverManyRounds) {
  GlobalPlan plan = BuildPlan(forest_, workload_.functions, {});
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload_.functions);
  PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                        workload_.functions, EnergyModel{});
  ReadingGenerator gen(topology_.node_count(), GetParam() + 555);
  executor.InitializeState(gen.values());
  Rng rng(GetParam());
  for (int round = 0; round < 8; ++round) {
    double p = rng.UniformDouble();
    std::vector<bool> changed = gen.Advance(p);
    OverridePolicy policy = static_cast<OverridePolicy>(rng.UniformInt(4));
    // RunSuppressedRound CHECK-fails if any maintained aggregate drifts.
    executor.RunSuppressedRound(gen.values(), changed, policy);
  }
  SUCCEED();
}

TEST_P(RandomWorkloadProperty, DistributedRuntimeMatchesAnalytic) {
  GlobalPlan plan = BuildPlan(forest_, workload_.functions, {});
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload_.functions);
  PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                        workload_.functions, EnergyModel{});
  ReadingGenerator gen(topology_.node_count(), GetParam() + 321);
  RoundResult analytic = executor.RunRound(gen.values());
  RuntimeNetwork network(compiled, workload_.functions);
  RuntimeNetwork::Result distributed = network.RunRound(gen.values());
  ASSERT_EQ(distributed.destination_values.size(),
            analytic.destination_values.size());
  for (const auto& [d, value] : analytic.destination_values) {
    EXPECT_NEAR(distributed.destination_values.at(d), value,
                1e-4 * std::max(1.0, std::fabs(value)));
  }
}

TEST_P(RandomWorkloadProperty, StateBoundedByTreeSizes) {
  GlobalPlan plan = BuildPlan(forest_, workload_.functions, {});
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload_.functions);
  StateTotals totals = compiled.ComputeStateTotals();
  int64_t bound = std::min(totals.sum_multicast_tree_sizes,
                           totals.sum_aggregation_tree_sizes);
  EXPECT_LE(totals.total(), 6 * bound);
}

TEST_P(RandomWorkloadProperty, MulticastTreeLeavesAreDestinations) {
  EXPECT_TRUE(forest_->CheckMinimality());
  EXPECT_TRUE(forest_->CheckSharing());
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, RandomWorkloadProperty,
                         ::testing::Range<uint64_t>(1, 13));

// Milestone sweep: Theorem 1 consistency also holds on virtual edges for
// any global milestone predicate.
class MilestoneProperty : public ::testing::TestWithParam<double> {};

TEST_P(MilestoneProperty, ConsistencyOnVirtualEdges) {
  Topology topo = MakeGreatDuckIslandLike();
  LinkStabilityModel stability(topo, 33);
  WorkloadSpec spec;
  spec.destination_count = 10;
  spec.sources_per_destination = 8;
  spec.seed = 77;
  Workload wl = GenerateWorkload(topo, spec);
  SystemOptions options;
  options.milestones =
      MilestoneSelector::StabilityThreshold(topo, stability, GetParam());
  System system(topo, wl, options);
  EXPECT_TRUE(ValidatePlanConsistency(system.plan()));
  ReadingGenerator gen(topo.node_count(), 78);
  RoundResult result = system.MakeExecutor().RunRound(gen.values());
  EXPECT_EQ(result.destination_values.size(), wl.tasks.size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, MilestoneProperty,
                         ::testing::Values(0.0, 0.82, 0.86, 0.90, 2.0));

// Brute-force check of the per-edge optimizer: on random small bipartite
// instances, the flow-based solver must return exactly the minimum found by
// enumerating all 2^(|U|+|V|) vertex subsets — and, because the weights
// carry the section 2.3 tiebreaker perturbation, that minimum must be
// *unique* (the property Theorem 1 needs for cross-edge consistency).
class ExhaustiveCoverProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExhaustiveCoverProperty, SolverMatchesExhaustiveUniqueMinimum) {
  Rng rng(GetParam() * 7919 + 17);
  const int num_sources = 1 + static_cast<int>(rng.UniformInt(5));
  const int num_destinations = 1 + static_cast<int>(rng.UniformInt(5));
  const uint64_t tiebreak_seed = GetParam() + 0xc0ffee;

  BipartiteInstance instance;
  for (int i = 0; i < num_sources; ++i) {
    const int byte_size = 1 + static_cast<int>(rng.UniformInt(40));
    instance.sources.push_back(
        {static_cast<NodeId>(100 + i),
         PerturbedWeight(byte_size, 100 + i, false, tiebreak_seed)});
  }
  for (int j = 0; j < num_destinations; ++j) {
    const int byte_size = 1 + static_cast<int>(rng.UniformInt(40));
    instance.destinations.push_back(
        {static_cast<NodeId>(200 + j),
         PerturbedWeight(byte_size, 200 + j, true, tiebreak_seed)});
  }
  for (int i = 0; i < num_sources; ++i) {
    for (int j = 0; j < num_destinations; ++j) {
      if (rng.Bernoulli(0.5)) instance.edges.emplace_back(i, j);
    }
  }
  if (instance.edges.empty()) instance.edges.emplace_back(0, 0);

  CoverSolution solution = SolveMinWeightVertexCover(instance);
  ASSERT_TRUE(IsVertexCover(instance, solution));
  EXPECT_EQ(CoverWeight(instance, solution), solution.total_weight);

  // Enumerate every subset pair; the solver's weight must be the global
  // minimum, attained by exactly one cover.
  int64_t best = -1;
  int ties = 0;
  uint32_t best_u = 0, best_v = 0;
  for (uint32_t u = 0; u < (1u << num_sources); ++u) {
    for (uint32_t v = 0; v < (1u << num_destinations); ++v) {
      bool covers = true;
      for (const auto& [s, d] : instance.edges) {
        if (!((u >> s) & 1) && !((v >> d) & 1)) {
          covers = false;
          break;
        }
      }
      if (!covers) continue;
      int64_t weight = 0;
      for (int i = 0; i < num_sources; ++i) {
        if ((u >> i) & 1) weight += instance.sources[i].weight;
      }
      for (int j = 0; j < num_destinations; ++j) {
        if ((v >> j) & 1) weight += instance.destinations[j].weight;
      }
      if (best < 0 || weight < best) {
        best = weight;
        ties = 1;
        best_u = u;
        best_v = v;
      } else if (weight == best) {
        ++ties;
      }
    }
  }
  ASSERT_GE(best, 0);
  EXPECT_EQ(solution.total_weight, best);
  EXPECT_EQ(ties, 1) << "perturbed weights failed to make the minimum unique";
  for (int i = 0; i < num_sources; ++i) {
    EXPECT_EQ(solution.source_in_cover[i], ((best_u >> i) & 1) != 0)
        << "source " << i;
  }
  for (int j = 0; j < num_destinations; ++j) {
    EXPECT_EQ(solution.destination_in_cover[j], ((best_v >> j) & 1) != 0)
        << "destination " << j;
  }

  // The byte sizes ride in the weights' high bits: the total recovered from
  // the optimal weight must match the chosen vertices' byte sizes.
  int64_t chosen_weight = 0;
  for (int i = 0; i < num_sources; ++i) {
    if (solution.source_in_cover[i]) chosen_weight += instance.sources[i].weight;
  }
  for (int j = 0; j < num_destinations; ++j) {
    if (solution.destination_in_cover[j]) {
      chosen_weight += instance.destinations[j].weight;
    }
  }
  EXPECT_EQ(WeightToBytes(chosen_weight), WeightToBytes(best));
}

INSTANTIATE_TEST_SUITE_P(SmallInstances, ExhaustiveCoverProperty,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace m2m
