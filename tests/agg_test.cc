#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/partial_record.h"
#include "common/rng.h"

namespace m2m {
namespace {

FunctionSpec MakeSpec(AggregateKind kind,
                      std::vector<std::pair<NodeId, double>> weights) {
  FunctionSpec spec;
  spec.kind = kind;
  spec.weights = std::move(weights);
  return spec;
}

TEST(PartialRecordTest, AddAndSubtractFieldwise) {
  PartialRecord a{{1.0, 2.0, 3.0}};
  PartialRecord b{{0.5, -1.0, 2.0}};
  EXPECT_EQ(AddFields(a, b), (PartialRecord{{1.5, 1.0, 5.0}}));
  EXPECT_EQ(SubtractFields(a, b), (PartialRecord{{0.5, 3.0, 1.0}}));
}

TEST(WeightedSumTest, EvaluatesExactly) {
  auto fn = MakeAggregateFunction(
      MakeSpec(AggregateKind::kWeightedSum, {{1, 2.0}, {2, 0.5}, {3, 1.0}}));
  PartialRecord acc = fn->PreAggregate(1, 10.0);
  acc = fn->Merge(acc, fn->PreAggregate(2, 4.0));
  acc = fn->Merge(acc, fn->PreAggregate(3, -1.0));
  EXPECT_DOUBLE_EQ(fn->Evaluate(acc), 2.0 * 10.0 + 0.5 * 4.0 - 1.0);
  EXPECT_DOUBLE_EQ(fn->Direct({{1, 10.0}, {2, 4.0}, {3, -1.0}}),
                   fn->Evaluate(acc));
}

TEST(WeightedSumTest, WireSizes) {
  auto fn =
      MakeAggregateFunction(MakeSpec(AggregateKind::kWeightedSum, {{1, 1.0}}));
  EXPECT_EQ(fn->partial_record_bytes(), 4);
  EXPECT_EQ(kRawUnitBytes, 6);
}

TEST(WeightedAverageTest, EvaluatesExactly) {
  auto fn = MakeAggregateFunction(
      MakeSpec(AggregateKind::kWeightedAverage, {{1, 2.0}, {2, 4.0}}));
  PartialRecord acc =
      fn->Merge(fn->PreAggregate(1, 3.0), fn->PreAggregate(2, 5.0));
  EXPECT_DOUBLE_EQ(fn->Evaluate(acc), (2.0 * 3.0 + 4.0 * 5.0) / 2.0);
}

TEST(WeightedAverageTest, PartialCarriesCount) {
  auto fn = MakeAggregateFunction(
      MakeSpec(AggregateKind::kWeightedAverage, {{1, 1.0}, {2, 1.0}}));
  PartialRecord r = fn->PreAggregate(1, 7.0);
  EXPECT_DOUBLE_EQ(r.fields[1], 1.0);
  EXPECT_EQ(fn->partial_record_bytes(), 6);
}

TEST(WeightedStdDevTest, MatchesDirectFormula) {
  auto fn = MakeAggregateFunction(MakeSpec(
      AggregateKind::kWeightedStdDev, {{1, 1.0}, {2, 1.0}, {3, 1.0}}));
  PartialRecord acc = fn->PreAggregate(1, 2.0);
  acc = fn->Merge(acc, fn->PreAggregate(2, 4.0));
  acc = fn->Merge(acc, fn->PreAggregate(3, 9.0));
  double mean = (2.0 + 4.0 + 9.0) / 3.0;
  double var =
      ((2 - mean) * (2 - mean) + (4 - mean) * (4 - mean) +
       (9 - mean) * (9 - mean)) /
      3.0;
  EXPECT_NEAR(fn->Evaluate(acc), std::sqrt(var), 1e-12);
  EXPECT_NEAR(fn->Direct({{1, 2.0}, {2, 4.0}, {3, 9.0}}), std::sqrt(var),
              1e-12);
  EXPECT_EQ(fn->partial_record_bytes(), 10);
}

TEST(ExtremumTest, MinAndMax) {
  auto min_fn = MakeAggregateFunction(
      MakeSpec(AggregateKind::kMin, {{1, 1.0}, {2, 1.0}, {3, 1.0}}));
  auto max_fn = MakeAggregateFunction(
      MakeSpec(AggregateKind::kMax, {{1, 1.0}, {2, 1.0}, {3, 1.0}}));
  PartialRecord lo = min_fn->Merge(
      min_fn->Merge(min_fn->PreAggregate(1, 5.0), min_fn->PreAggregate(2, -2.0)),
      min_fn->PreAggregate(3, 8.0));
  PartialRecord hi = max_fn->Merge(
      max_fn->Merge(max_fn->PreAggregate(1, 5.0), max_fn->PreAggregate(2, -2.0)),
      max_fn->PreAggregate(3, 8.0));
  EXPECT_DOUBLE_EQ(min_fn->Evaluate(lo), -2.0);
  EXPECT_DOUBLE_EQ(max_fn->Evaluate(hi), 8.0);
  EXPECT_FALSE(min_fn->SupportsDeltas());
  EXPECT_FALSE(max_fn->SupportsLinearDeltas());
}

TEST(CountTest, CountsReportingSources) {
  auto fn = MakeAggregateFunction(
      MakeSpec(AggregateKind::kCount, {{1, 1.0}, {2, 1.0}, {3, 1.0}}));
  PartialRecord acc = fn->Merge(
      fn->Merge(fn->PreAggregate(1, 5.0), fn->PreAggregate(2, -2.0)),
      fn->PreAggregate(3, 0.0));
  EXPECT_DOUBLE_EQ(fn->Evaluate(acc), 3.0);
  EXPECT_EQ(fn->partial_record_bytes(), 2);
  EXPECT_TRUE(fn->SupportsDeltas());
}

TEST(CountAboveTest, CountsThresholdCrossings) {
  FunctionSpec spec = MakeSpec(AggregateKind::kCountAbove,
                               {{1, 1.0}, {2, 1.0}, {3, 1.0}});
  spec.threshold = 10.0;
  auto fn = MakeAggregateFunction(spec);
  PartialRecord acc = fn->Merge(
      fn->Merge(fn->PreAggregate(1, 15.0), fn->PreAggregate(2, 5.0)),
      fn->PreAggregate(3, 10.5));
  EXPECT_DOUBLE_EQ(fn->Evaluate(acc), 2.0);
  EXPECT_DOUBLE_EQ(fn->Direct({{1, 15.0}, {2, 5.0}, {3, 10.5}}), 2.0);
  // Threshold is strict.
  EXPECT_DOUBLE_EQ(fn->PreAggregate(1, 10.0).fields[0], 0.0);
  EXPECT_FALSE(fn->SupportsLinearDeltas());
}

TEST(CountAboveTest, DeltaTracksIndicatorFlips) {
  FunctionSpec spec = MakeSpec(AggregateKind::kCountAbove, {{1, 1.0}});
  spec.threshold = 10.0;
  auto fn = MakeAggregateFunction(spec);
  // 5 -> 15 crosses the threshold upward: delta +1.
  PartialRecord delta = fn->DeltaPreAggregate(1, 5.0, 15.0);
  EXPECT_DOUBLE_EQ(delta.fields[0], 1.0);
  // 15 -> 12 stays above: delta 0.
  EXPECT_DOUBLE_EQ(fn->DeltaPreAggregate(1, 15.0, 12.0).fields[0], 0.0);
  // 12 -> 3 crosses downward: delta -1.
  EXPECT_DOUBLE_EQ(fn->DeltaPreAggregate(1, 12.0, 3.0).fields[0], -1.0);
}

TEST(ArgMaxTest, ReportsHottestSource) {
  auto fn = MakeAggregateFunction(
      MakeSpec(AggregateKind::kArgMax, {{4, 1.0}, {9, 1.0}, {2, 1.0}}));
  PartialRecord acc = fn->Merge(
      fn->Merge(fn->PreAggregate(4, 5.0), fn->PreAggregate(9, 8.0)),
      fn->PreAggregate(2, -1.0));
  EXPECT_DOUBLE_EQ(fn->Evaluate(acc), 9.0);
  EXPECT_DOUBLE_EQ(fn->Direct({{4, 5.0}, {9, 8.0}, {2, -1.0}}), 9.0);
  EXPECT_EQ(fn->partial_record_bytes(), 6);
  EXPECT_FALSE(fn->SupportsDeltas());
}

TEST(ArgMaxTest, TiesBreakTowardSmallerId) {
  auto fn = MakeAggregateFunction(
      MakeSpec(AggregateKind::kArgMax, {{4, 1.0}, {9, 1.0}}));
  PartialRecord a = fn->PreAggregate(4, 7.0);
  PartialRecord b = fn->PreAggregate(9, 7.0);
  EXPECT_DOUBLE_EQ(fn->Evaluate(fn->Merge(a, b)), 4.0);
  EXPECT_DOUBLE_EQ(fn->Evaluate(fn->Merge(b, a)), 4.0);
}

TEST(AggregateFunctionTest, MergeIsAssociativeAndCommutative) {
  Rng rng(77);
  for (AggregateKind kind :
       {AggregateKind::kWeightedSum, AggregateKind::kWeightedAverage,
        AggregateKind::kWeightedStdDev, AggregateKind::kMin,
        AggregateKind::kMax}) {
    auto fn = MakeAggregateFunction(
        MakeSpec(kind, {{1, 1.5}, {2, 0.7}, {3, 2.0}}));
    for (int trial = 0; trial < 50; ++trial) {
      PartialRecord a = fn->PreAggregate(1, rng.UniformDouble(-10, 10));
      PartialRecord b = fn->PreAggregate(2, rng.UniformDouble(-10, 10));
      PartialRecord c = fn->PreAggregate(3, rng.UniformDouble(-10, 10));
      PartialRecord left = fn->Merge(fn->Merge(a, b), c);
      PartialRecord right = fn->Merge(a, fn->Merge(b, c));
      for (size_t f = 0; f < left.fields.size(); ++f) {
        EXPECT_NEAR(left.fields[f], right.fields[f], 1e-9) << ToString(kind);
      }
      PartialRecord ab = fn->Merge(a, b);
      PartialRecord ba = fn->Merge(b, a);
      for (size_t f = 0; f < ab.fields.size(); ++f) {
        EXPECT_NEAR(ab.fields[f], ba.fields[f], 1e-12) << ToString(kind);
      }
    }
  }
}

TEST(AggregateFunctionTest, DeltaPreAggregateTracksChange) {
  Rng rng(78);
  for (AggregateKind kind :
       {AggregateKind::kWeightedSum, AggregateKind::kWeightedAverage,
        AggregateKind::kWeightedStdDev}) {
    auto fn = MakeAggregateFunction(MakeSpec(kind, {{1, 1.5}, {2, 0.7}}));
    for (int trial = 0; trial < 20; ++trial) {
      double v1 = rng.UniformDouble(-10, 10);
      double v1_new = rng.UniformDouble(-10, 10);
      double v2 = rng.UniformDouble(-10, 10);
      PartialRecord before =
          fn->Merge(fn->PreAggregate(1, v1), fn->PreAggregate(2, v2));
      PartialRecord after = fn->ApplyDelta(
          before, fn->DeltaPreAggregate(1, v1, v1_new));
      PartialRecord expected =
          fn->Merge(fn->PreAggregate(1, v1_new), fn->PreAggregate(2, v2));
      for (size_t f = 0; f < after.fields.size(); ++f) {
        EXPECT_NEAR(after.fields[f], expected.fields[f], 1e-9)
            << ToString(kind);
      }
    }
  }
}

TEST(AggregateFunctionTest, LinearDeltaMatchesFullDelta) {
  Rng rng(79);
  for (AggregateKind kind :
       {AggregateKind::kWeightedSum, AggregateKind::kWeightedAverage}) {
    auto fn = MakeAggregateFunction(MakeSpec(kind, {{1, 1.5}, {2, 0.7}}));
    ASSERT_TRUE(fn->SupportsLinearDeltas());
    for (int trial = 0; trial < 20; ++trial) {
      double old_v = rng.UniformDouble(-10, 10);
      double new_v = rng.UniformDouble(-10, 10);
      PartialRecord full = fn->DeltaPreAggregate(1, old_v, new_v);
      PartialRecord linear = fn->LinearDeltaPreAggregate(1, new_v - old_v);
      for (size_t f = 0; f < full.fields.size(); ++f) {
        EXPECT_NEAR(full.fields[f], linear.fields[f], 1e-9);
      }
    }
  }
}

TEST(AggregateFunctionTest, StdDevHasNoLinearDelta) {
  auto fn = MakeAggregateFunction(
      MakeSpec(AggregateKind::kWeightedStdDev, {{1, 1.0}}));
  EXPECT_FALSE(fn->SupportsLinearDeltas());
  EXPECT_DEATH(fn->LinearDeltaPreAggregate(1, 0.5), "linear delta");
}

TEST(AggregateFunctionTest, SuppressionErrorBounds) {
  auto sum = MakeAggregateFunction(
      MakeSpec(AggregateKind::kWeightedSum, {{1, 2.0}, {2, -3.0}}));
  EXPECT_DOUBLE_EQ(sum->SuppressionErrorBound(0.5), 0.5 * (2.0 + 3.0));
  auto avg = MakeAggregateFunction(
      MakeSpec(AggregateKind::kWeightedAverage, {{1, 2.0}, {2, 3.0}}));
  EXPECT_DOUBLE_EQ(avg->SuppressionErrorBound(1.0), (2.0 + 3.0) / 2.0);
  auto stddev = MakeAggregateFunction(
      MakeSpec(AggregateKind::kWeightedStdDev, {{1, 1.0}}));
  EXPECT_DEATH(stddev->SuppressionErrorBound(1.0), "error bound");
}

TEST(AggregateFunctionTest, WeightForReportsStoredWeights) {
  auto sum = MakeAggregateFunction(
      MakeSpec(AggregateKind::kWeightedSum, {{1, 2.5}, {2, -3.0}}));
  EXPECT_DOUBLE_EQ(sum->WeightFor(1), 2.5);
  EXPECT_DOUBLE_EQ(sum->WeightFor(2), -3.0);
  EXPECT_DEATH(sum->WeightFor(9), "not a source");
  auto min_fn =
      MakeAggregateFunction(MakeSpec(AggregateKind::kMin, {{1, 7.0}}));
  EXPECT_DOUBLE_EQ(min_fn->WeightFor(1), 1.0);  // Extrema are unweighted.
}

TEST(AggregateFunctionTest, UnknownSourceAborts) {
  auto fn =
      MakeAggregateFunction(MakeSpec(AggregateKind::kWeightedSum, {{1, 1.0}}));
  EXPECT_DEATH(fn->PreAggregate(9, 1.0), "not a source");
}

TEST(AggregateFunctionTest, SourcesAreSortedAndComplete) {
  auto fn = MakeAggregateFunction(
      MakeSpec(AggregateKind::kWeightedSum, {{5, 1.0}, {1, 2.0}, {3, 0.5}}));
  EXPECT_EQ(fn->sources(), (std::vector<NodeId>{1, 3, 5}));
}

TEST(FunctionSetTest, SetGetContains) {
  FunctionSet set;
  EXPECT_FALSE(set.Contains(4));
  set.Set(4, MakeAggregateFunction(
                 MakeSpec(AggregateKind::kWeightedSum, {{1, 1.0}})));
  EXPECT_TRUE(set.Contains(4));
  EXPECT_EQ(set.Get(4).name(), "weighted_sum");
  EXPECT_EQ(set.size(), 1u);
  EXPECT_DEATH(set.Get(5), "no aggregation function");
}

TEST(AggregateKindTest, ToStringCoversAllKinds) {
  EXPECT_EQ(ToString(AggregateKind::kWeightedSum), "weighted_sum");
  EXPECT_EQ(ToString(AggregateKind::kWeightedAverage), "weighted_average");
  EXPECT_EQ(ToString(AggregateKind::kWeightedStdDev), "weighted_stddev");
  EXPECT_EQ(ToString(AggregateKind::kMin), "min");
  EXPECT_EQ(ToString(AggregateKind::kMax), "max");
}

}  // namespace
}  // namespace m2m
