#include <memory>

#include <gtest/gtest.h>

#include "core/system.h"
#include "sim/flood.h"
#include "sim/readings.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

WorkloadSpec SmallSpec(uint64_t seed = 71) {
  WorkloadSpec spec;
  spec.destination_count = 10;
  spec.sources_per_destination = 8;
  spec.seed = seed;
  return spec;
}

SystemOptions WithStrategy(PlanStrategy strategy) {
  SystemOptions options;
  options.planner.strategy = strategy;
  return options;
}

TEST(EnergyModelTest, CostsScaleWithBytes) {
  EnergyModel model;
  EXPECT_DOUBLE_EQ(model.TxUj(0), 16.9 * 8);
  EXPECT_DOUBLE_EQ(model.TxUj(10), 16.9 * 18);
  EXPECT_DOUBLE_EQ(model.RxUj(10), 6.25 * 18);
  EXPECT_DOUBLE_EQ(model.UnicastHopUj(10), (16.9 + 6.25) * 18);
  EXPECT_DOUBLE_EQ(model.BroadcastUj(10, 3), (16.9 + 3 * 6.25) * 18);
}

TEST(ReadingGeneratorTest, DeterministicAndChangeControlled) {
  ReadingGenerator a(20, 5);
  ReadingGenerator b(20, 5);
  EXPECT_EQ(a.values(), b.values());
  std::vector<bool> none = a.Advance(0.0);
  EXPECT_TRUE(std::none_of(none.begin(), none.end(),
                           [](bool c) { return c; }));
  std::vector<bool> all = a.Advance(1.0);
  EXPECT_TRUE(std::all_of(all.begin(), all.end(), [](bool c) { return c; }));
}

TEST(ExecutorTest, FullRoundComputesCorrectAggregates) {
  Topology topo = MakeGreatDuckIslandLike();
  Workload wl = GenerateWorkload(topo, SmallSpec());
  System system(topo, wl);
  PlanExecutor executor = system.MakeExecutor();
  ReadingGenerator gen(topo.node_count(), 9);
  RoundResult result = executor.RunRound(gen.values());
  ASSERT_EQ(result.destination_values.size(), wl.tasks.size());
  for (const Task& task : wl.tasks) {
    std::unordered_map<NodeId, double> inputs;
    for (NodeId s : task.sources) inputs[s] = gen.values()[s];
    EXPECT_NEAR(result.destination_values.at(task.destination),
                wl.functions.Get(task.destination).Direct(inputs), 1e-9);
  }
  EXPECT_GT(result.energy_mj, 0.0);
  EXPECT_GT(result.messages, 0);
  EXPECT_EQ(result.units, system.plan().TotalUnits());
}

TEST(ExecutorTest, NodeEnergySumsToTotal) {
  Topology topo = MakeGreatDuckIslandLike();
  Workload wl = GenerateWorkload(topo, SmallSpec());
  System system(topo, wl);
  PlanExecutor executor = system.MakeExecutor();
  ReadingGenerator gen(topo.node_count(), 10);
  RoundResult result = executor.RunRound(gen.values());
  double per_node = 0.0;
  for (double e : result.node_energy_mj) per_node += e;
  EXPECT_NEAR(per_node, result.energy_mj, 1e-9);
}

TEST(ExecutorTest, OptimalCostsNoMoreThanBaselines) {
  Topology topo = MakeGreatDuckIslandLike();
  Workload wl = GenerateWorkload(topo, SmallSpec());
  System optimal(topo, wl, WithStrategy(PlanStrategy::kOptimal));
  System multicast(topo, wl, WithStrategy(PlanStrategy::kMulticastOnly));
  System aggregation(topo, wl, WithStrategy(PlanStrategy::kAggregationOnly));
  ReadingGenerator gen(topo.node_count(), 11);
  double opt = optimal.MakeExecutor().RunRound(gen.values()).energy_mj;
  double mc = multicast.MakeExecutor().RunRound(gen.values()).energy_mj;
  double agg = aggregation.MakeExecutor().RunRound(gen.values()).energy_mj;
  EXPECT_LE(opt, mc);
  EXPECT_LE(opt, agg);
}

TEST(ExecutorTest, BaselinesComputeSameAggregates) {
  Topology topo = MakeGreatDuckIslandLike();
  Workload wl = GenerateWorkload(topo, SmallSpec());
  ReadingGenerator gen(topo.node_count(), 12);
  std::unordered_map<NodeId, double> reference;
  for (PlanStrategy strategy :
       {PlanStrategy::kOptimal, PlanStrategy::kMulticastOnly,
        PlanStrategy::kAggregationOnly}) {
    System system(topo, wl, WithStrategy(strategy));
    RoundResult result =
        system.MakeExecutor().RunRound(gen.values());
    if (reference.empty()) {
      reference = result.destination_values;
    } else {
      for (const auto& [d, v] : result.destination_values) {
        EXPECT_NEAR(v, reference.at(d), 1e-9) << ToString(strategy);
      }
    }
  }
}

TEST(ExecutorTest, MergedMessagesCheaperThanPerUnit) {
  Topology topo = MakeGreatDuckIslandLike();
  Workload wl = GenerateWorkload(topo, SmallSpec());
  SystemOptions merged;
  SystemOptions unmerged;
  unmerged.merge = MergePolicy::kOneUnitPerMessage;
  System a(topo, wl, merged);
  System b(topo, wl, unmerged);
  ReadingGenerator gen(topo.node_count(), 13);
  RoundResult merged_result = a.MakeExecutor().RunRound(gen.values());
  RoundResult unmerged_result = b.MakeExecutor().RunRound(gen.values());
  // Same payload, fewer headers.
  EXPECT_EQ(merged_result.payload_bytes, unmerged_result.payload_bytes);
  EXPECT_LT(merged_result.messages, unmerged_result.messages);
  EXPECT_LT(merged_result.energy_mj, unmerged_result.energy_mj);
}

TEST(ExecutorTest, MilestonePlanStillComputesCorrectly) {
  Topology topo = MakeGreatDuckIslandLike();
  Workload wl = GenerateWorkload(topo, SmallSpec());
  LinkStabilityModel stability(topo, 3);
  SystemOptions options;
  options.milestones =
      MilestoneSelector::StabilityThreshold(topo, stability, 0.86);
  System system(topo, wl, options);
  ReadingGenerator gen(topo.node_count(), 14);
  RoundResult result = system.MakeExecutor().RunRound(gen.values());
  for (const Task& task : wl.tasks) {
    std::unordered_map<NodeId, double> inputs;
    for (NodeId s : task.sources) inputs[s] = gen.values()[s];
    EXPECT_NEAR(result.destination_values.at(task.destination),
                wl.functions.Get(task.destination).Direct(inputs), 1e-9);
  }
}

TEST(ExecutorTest, FewerMilestonesFewerMessagesMorePhysicalBytes) {
  Topology topo = MakeGreatDuckIslandLike();
  Workload wl = GenerateWorkload(topo, SmallSpec());
  System all(topo, wl);  // Every node a milestone.
  SystemOptions sparse_options;
  sparse_options.milestones = MilestoneSelector::EndpointsOnly(
      topo.node_count());
  System sparse(topo, wl, sparse_options);
  ReadingGenerator gen(topo.node_count(), 15);
  RoundResult all_result = all.MakeExecutor().RunRound(gen.values());
  RoundResult sparse_result = sparse.MakeExecutor().RunRound(gen.values());
  // Endpoint-only routing cannot aggregate mid-route, so it moves at least
  // as many physical bytes.
  EXPECT_GE(sparse_result.physical_transmissions,
            all_result.messages);
  EXPECT_GE(sparse_result.energy_mj * 1.0001, all_result.energy_mj);
}

TEST(ExecutorTest, BroadcastOptionNeverCostsMore) {
  Topology topo = MakeGreatDuckIslandLike();
  Workload wl = GenerateWorkload(topo, SmallSpec());
  ReadingGenerator gen(topo.node_count(), 19);
  for (PlanStrategy strategy :
       {PlanStrategy::kOptimal, PlanStrategy::kMulticastOnly}) {
    System system(topo, wl, WithStrategy(strategy));
    PlanExecutor executor = system.MakeExecutor();
    RoundResult unicast = executor.RunRound(gen.values());
    TransmissionOptions tx;
    tx.use_broadcast = true;
    RoundResult broadcast = executor.RunRound(gen.values(), tx);
    EXPECT_LE(broadcast.energy_mj, unicast.energy_mj) << ToString(strategy);
    EXPECT_LE(broadcast.units, unicast.units);
    // Same aggregates either way.
    for (const auto& [d, v] : unicast.destination_values) {
      EXPECT_NEAR(broadcast.destination_values.at(d), v, 1e-12);
    }
  }
}

TEST(ExecutorTest, BroadcastIsNoOpWithoutSharedRawUnits) {
  // A pure-aggregation plan ships no raw units, so there is nothing to
  // broadcast and the costs are identical.
  Topology topo = MakeGreatDuckIslandLike();
  Workload wl = GenerateWorkload(topo, SmallSpec());
  System system(topo, wl, WithStrategy(PlanStrategy::kAggregationOnly));
  PlanExecutor executor = system.MakeExecutor();
  ReadingGenerator gen(topo.node_count(), 20);
  RoundResult unicast = executor.RunRound(gen.values());
  TransmissionOptions tx;
  tx.use_broadcast = true;
  RoundResult broadcast = executor.RunRound(gen.values(), tx);
  EXPECT_DOUBLE_EQ(broadcast.energy_mj, unicast.energy_mj);
  EXPECT_EQ(broadcast.messages, unicast.messages);
}

TEST(SystemTest, AverageRoundEnergyIsStable) {
  Topology topo = MakeGreatDuckIslandLike();
  Workload wl = GenerateWorkload(topo, SmallSpec());
  System system(topo, wl);
  double avg1 = system.AverageRoundEnergyMj(3, 77);
  double avg2 = system.AverageRoundEnergyMj(3, 77);
  EXPECT_DOUBLE_EQ(avg1, avg2);
  EXPECT_GT(avg1, 0.0);
}

TEST(FloodTest, ReachesEveryoneAndChargesEnergy) {
  Topology topo = MakeGreatDuckIslandLike();
  std::vector<NodeId> sources{1, 5, 9, 44};
  FloodResult result = SimulateFloodRound(topo, sources, EnergyModel{});
  EXPECT_GT(result.energy_mj, 0.0);
  EXPECT_GT(result.messages, 0);
  // Every node transmits at least once when it must forward fresh values;
  // messages bounded by nodes * eccentricity.
  EXPECT_GE(result.messages, topo.node_count());
}

TEST(FloodTest, MoreSourcesMoreEnergy) {
  Topology topo = MakeGreatDuckIslandLike();
  FloodResult small = SimulateFloodRound(topo, {1, 2}, EnergyModel{});
  std::vector<NodeId> many;
  for (NodeId n = 0; n < 30; ++n) many.push_back(n);
  FloodResult large = SimulateFloodRound(topo, many, EnergyModel{});
  EXPECT_GT(large.energy_mj, small.energy_mj);
  EXPECT_GT(large.payload_bytes, small.payload_bytes);
}

TEST(FloodTest, FloodCostsMoreThanOptimalOnLightWorkload) {
  // Paper: for small workloads flood is far more expensive than everything.
  Topology topo = MakeGreatDuckIslandLike();
  WorkloadSpec spec = SmallSpec();
  spec.destination_count = 4;
  spec.sources_per_destination = 5;
  Workload wl = GenerateWorkload(topo, spec);
  System system(topo, wl);
  ReadingGenerator gen(topo.node_count(), 16);
  double optimal = system.MakeExecutor().RunRound(gen.values()).energy_mj;
  double flood =
      SimulateFloodRound(topo, wl.DistinctSources(), EnergyModel{})
          .energy_mj;
  EXPECT_GT(flood, 2.0 * optimal);
}

}  // namespace
}  // namespace m2m
