#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "plan/node_tables.h"
#include "plan/planner.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

struct Env {
  explicit Env(uint64_t seed, PlanStrategy strategy = PlanStrategy::kOptimal)
      : topology(MakeGreatDuckIslandLike()), paths(topology) {
    WorkloadSpec spec;
    spec.destination_count = 12;
    spec.sources_per_destination = 10;
    spec.seed = seed;
    workload = GenerateWorkload(topology, spec);
    forest = std::make_shared<MulticastForest>(paths, workload.tasks);
    PlannerOptions options;
    options.strategy = strategy;
    plan = std::make_shared<GlobalPlan>(
        BuildPlan(forest, workload.functions, options));
  }

  Topology topology;
  PathSystem paths;
  Workload workload;
  std::shared_ptr<const MulticastForest> forest;
  std::shared_ptr<GlobalPlan> plan;
};

TEST(NodeTablesTest, EveryDestinationGetsEvaluatorAndLocalEntry) {
  Env env(51);
  CompiledPlan compiled =
      CompiledPlan::Compile(*env.plan, env.workload.functions);
  for (const Task& task : env.forest->tasks()) {
    const NodeState& state = compiled.state(task.destination);
    EXPECT_TRUE(state.is_destination);
    bool has_local_partial = false;
    for (const PartialTableEntry& entry : state.partial_table) {
      if (entry.destination == task.destination && entry.message_id == -1) {
        has_local_partial = true;
        EXPECT_GT(entry.expected_contributions, 0);
      }
    }
    EXPECT_TRUE(has_local_partial);
  }
}

TEST(NodeTablesTest, RawEntriesMatchEdgePlans) {
  Env env(52);
  CompiledPlan compiled =
      CompiledPlan::Compile(*env.plan, env.workload.functions);
  // One raw entry per (tail, source, outgoing message): a raw value fanning
  // out to k outgoing edges (one message each under greedy merging) needs k
  // entries.
  std::map<std::pair<NodeId, NodeId>, int> expected;  // (tail, s) -> count
  for (size_t e = 0; e < env.forest->edges().size(); ++e) {
    NodeId tail = env.forest->edges()[e].edge.tail;
    for (NodeId s : env.plan->plan_for(static_cast<int>(e)).raw_sources) {
      expected[{tail, s}] += 1;
    }
  }
  std::map<std::pair<NodeId, NodeId>, int> actual;
  std::set<std::pair<NodeId, int>> seen_messages;
  for (NodeId n = 0; n < compiled.node_count(); ++n) {
    std::set<std::pair<NodeId, int>> node_entries;
    for (const RawTableEntry& entry : compiled.state(n).raw_table) {
      actual[{n, entry.source}] += 1;
      EXPECT_GE(entry.message_id, 0);
      EXPECT_TRUE(node_entries.insert({entry.source, entry.message_id})
                      .second)
          << "duplicate (source, message) raw entry at node " << n;
    }
  }
  EXPECT_EQ(actual, expected);
}

TEST(NodeTablesTest, PartialEntriesMatchEdgePlans) {
  Env env(53);
  CompiledPlan compiled =
      CompiledPlan::Compile(*env.plan, env.workload.functions);
  int64_t edge_partials = 0;
  for (const EdgePlan& p : env.plan->edge_plans()) {
    edge_partials += static_cast<int64_t>(p.agg_destinations.size());
  }
  StateTotals totals = compiled.ComputeStateTotals();
  // Edge-level partial entries plus one local entry per destination.
  EXPECT_EQ(totals.partial_entries,
            edge_partials +
                static_cast<int64_t>(env.forest->tasks().size()));
  EXPECT_EQ(totals.evaluator_entries,
            static_cast<int64_t>(env.forest->tasks().size()));
}

TEST(NodeTablesTest, OutgoingTableCoversAllMessages) {
  Env env(54);
  CompiledPlan compiled =
      CompiledPlan::Compile(*env.plan, env.workload.functions);
  int64_t outgoing = 0;
  for (NodeId n = 0; n < compiled.node_count(); ++n) {
    for (const OutgoingMessageEntry& entry :
         compiled.state(n).outgoing_table) {
      ++outgoing;
      EXPECT_GT(entry.unit_count, 0);
      EXPECT_GE(entry.recipient, 0);
      ASSERT_GE(entry.segment.size(), 2u);
      EXPECT_EQ(entry.segment.front(), n);
      EXPECT_EQ(entry.segment.back(), entry.recipient);
    }
  }
  EXPECT_EQ(outgoing, compiled.schedule().message_count());
}

TEST(NodeTablesTest, PreAggEntriesOnlyWhereRawMeetsAggregation) {
  Env env(55, PlanStrategy::kMulticastOnly);
  CompiledPlan compiled =
      CompiledPlan::Compile(*env.plan, env.workload.functions);
  // Pure multicast: pre-aggregation happens only at destinations.
  for (NodeId n = 0; n < compiled.node_count(); ++n) {
    for (const PreAggTableEntry& entry : compiled.state(n).preagg_table) {
      EXPECT_EQ(entry.destination, n)
          << "multicast plan pre-aggregates at non-destination " << n;
    }
  }
}

TEST(NodeTablesTest, AggregationOnlyPreAggregatesAtFirstEdge) {
  Env env(56, PlanStrategy::kAggregationOnly);
  CompiledPlan compiled =
      CompiledPlan::Compile(*env.plan, env.workload.functions);
  // Pure aggregation: every source pre-aggregates its own reading (at the
  // source node) for every remote destination.
  for (const Task& task : env.forest->tasks()) {
    for (NodeId s : task.sources) {
      if (s == task.destination) continue;
      bool found = false;
      for (const PreAggTableEntry& entry : compiled.state(s).preagg_table) {
        if (entry.source == s && entry.destination == task.destination) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << "source " << s << " destination "
                         << task.destination;
    }
  }
}

// Theorem 3: the state of the optimal plan is within a constant factor of
// min(sum |T_s|, sum |A_d|).
TEST(NodeTablesTest, StateWithinTheoremThreeBound) {
  for (uint64_t seed : {61u, 62u, 63u}) {
    Env env(seed);
    CompiledPlan compiled =
        CompiledPlan::Compile(*env.plan, env.workload.functions);
    StateTotals totals = compiled.ComputeStateTotals();
    int64_t bound = std::min(totals.sum_multicast_tree_sizes,
                             totals.sum_aggregation_tree_sizes);
    ASSERT_GT(bound, 0);
    // Constant factor: generous 6x (entries per tree node are bounded by a
    // small constant in the paper's accounting).
    EXPECT_LE(totals.total(), 6 * bound) << "seed " << seed;
  }
}

TEST(NodeTablesTest, ExpectedContributionsArePositiveAndBounded) {
  Env env(57);
  CompiledPlan compiled =
      CompiledPlan::Compile(*env.plan, env.workload.functions);
  for (NodeId n = 0; n < compiled.node_count(); ++n) {
    for (const PartialTableEntry& entry : compiled.state(n).partial_table) {
      EXPECT_GT(entry.expected_contributions, 0);
      // Never more contributions than the destination has sources.
      bool found = false;
      for (const Task& task : env.forest->tasks()) {
        if (task.destination == entry.destination) {
          EXPECT_LE(entry.expected_contributions,
                    static_cast<int>(task.sources.size()));
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

}  // namespace
}  // namespace m2m
