#include <algorithm>
#include <memory>
#include <optional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "plan/dissemination.h"
#include "plan/planner.h"
#include "plan/serialization.h"
#include "sim/base_station.h"
#include "sim/executor.h"
#include "sim/readings.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

struct Env {
  explicit Env(uint64_t seed)
      : topology(MakeGreatDuckIslandLike()), paths(topology) {
    WorkloadSpec spec;
    spec.destination_count = 10;
    spec.sources_per_destination = 8;
    spec.seed = seed;
    workload = GenerateWorkload(topology, spec);
    forest = std::make_shared<MulticastForest>(paths, workload.tasks);
    plan = std::make_shared<GlobalPlan>(
        BuildPlan(forest, workload.functions, {}));
    compiled = std::make_shared<CompiledPlan>(
        CompiledPlan::Compile(*plan, workload.functions));
  }

  Topology topology;
  PathSystem paths;
  Workload workload;
  std::shared_ptr<const MulticastForest> forest;
  std::shared_ptr<GlobalPlan> plan;
  std::shared_ptr<CompiledPlan> compiled;
};

TEST(SerializationTest, RoundtripPreservesTables) {
  Env env(61);
  for (NodeId n = 0; n < env.compiled->node_count(); ++n) {
    const NodeState& original = env.compiled->state(n);
    std::vector<uint8_t> image =
        EncodeNodeState(original, env.workload.functions);
    DecodedNodeState decoded = DecodeNodeState(image);
    ASSERT_EQ(decoded.state.raw_table.size(), original.raw_table.size());
    ASSERT_EQ(decoded.state.preagg_table.size(),
              original.preagg_table.size());
    ASSERT_EQ(decoded.state.partial_table.size(),
              original.partial_table.size());
    ASSERT_EQ(decoded.state.outgoing_table.size(),
              original.outgoing_table.size());
    EXPECT_EQ(decoded.state.is_destination, original.is_destination);
    for (size_t i = 0; i < original.raw_table.size(); ++i) {
      EXPECT_EQ(decoded.state.raw_table[i].source,
                original.raw_table[i].source);
    }
    for (size_t i = 0; i < original.preagg_table.size(); ++i) {
      EXPECT_EQ(decoded.state.preagg_table[i].source,
                original.preagg_table[i].source);
      EXPECT_EQ(decoded.state.preagg_table[i].destination,
                original.preagg_table[i].destination);
      const AggregateFunction& fn =
          env.workload.functions.Get(original.preagg_table[i].destination);
      EXPECT_NEAR(decoded.preagg_meta[i].weight,
                  fn.WeightFor(original.preagg_table[i].source), 1e-6);
      EXPECT_EQ(decoded.preagg_meta[i].kind,
                static_cast<uint8_t>(fn.kind()));
    }
    for (size_t i = 0; i < original.partial_table.size(); ++i) {
      EXPECT_EQ(decoded.state.partial_table[i].destination,
                original.partial_table[i].destination);
      EXPECT_EQ(decoded.state.partial_table[i].expected_contributions,
                original.partial_table[i].expected_contributions);
      EXPECT_EQ(decoded.state.partial_table[i].message_id == -1,
                original.partial_table[i].message_id == -1);
    }
    for (size_t i = 0; i < original.outgoing_table.size(); ++i) {
      EXPECT_EQ(decoded.state.outgoing_table[i].unit_count,
                original.outgoing_table[i].unit_count);
      EXPECT_EQ(decoded.state.outgoing_table[i].recipient,
                original.outgoing_table[i].recipient);
    }
  }
}

TEST(SerializationTest, LocalMessageIdsReferenceOutgoingTable) {
  Env env(62);
  for (NodeId n = 0; n < env.compiled->node_count(); ++n) {
    std::vector<uint8_t> image =
        EncodeNodeState(env.compiled->state(n), env.workload.functions);
    DecodedNodeState decoded = DecodeNodeState(image);
    int outgoing = static_cast<int>(decoded.state.outgoing_table.size());
    for (const RawTableEntry& entry : decoded.state.raw_table) {
      EXPECT_GE(entry.message_id, 0);
      EXPECT_LT(entry.message_id, outgoing);
    }
    for (const PartialTableEntry& entry : decoded.state.partial_table) {
      EXPECT_LT(entry.message_id, outgoing);
    }
  }
}

TEST(SerializationTest, ImagesAreStableAcrossRecompilation) {
  Env a(63);
  Env b(63);
  std::vector<std::vector<uint8_t>> images_a =
      EncodeAllNodeStates(*a.compiled, a.workload.functions);
  std::vector<std::vector<uint8_t>> images_b =
      EncodeAllNodeStates(*b.compiled, b.workload.functions);
  EXPECT_EQ(images_a, images_b);
}

// Fuzz-style robustness suite: node-state images arrive over the radio, so
// the decoder must treat every buffer as hostile — reject malformed input
// via TryDecodeNodeState's nullopt instead of crashing or over-allocating.

TEST(SerializationFuzzTest, CanonicalImagesRoundTripByteIdentically) {
  Env env(70);
  for (NodeId n = 0; n < env.compiled->node_count(); ++n) {
    std::vector<uint8_t> image =
        EncodeNodeState(env.compiled->state(n), env.workload.functions);
    std::optional<DecodedNodeState> decoded = TryDecodeNodeState(image);
    ASSERT_TRUE(decoded.has_value()) << "node " << n;
    EXPECT_EQ(EncodeDecodedNodeState(*decoded), image) << "node " << n;
  }
}

TEST(SerializationFuzzTest, EveryTruncationIsRejected) {
  Env env(71);
  for (NodeId n = 0; n < std::min<NodeId>(env.compiled->node_count(), 12);
       ++n) {
    std::vector<uint8_t> image =
        EncodeNodeState(env.compiled->state(n), env.workload.functions);
    for (size_t len = 0; len < image.size(); ++len) {
      std::vector<uint8_t> truncated(image.begin(), image.begin() + len);
      EXPECT_FALSE(TryDecodeNodeState(truncated).has_value())
          << "node " << n << " truncated to " << len << "/" << image.size()
          << " bytes decoded successfully";
    }
  }
}

TEST(SerializationFuzzTest, SingleByteCorruptionNeverCrashes) {
  Env env(72);
  Rng rng(404);
  int rejected = 0, accepted = 0;
  for (NodeId n = 0; n < std::min<NodeId>(env.compiled->node_count(), 12);
       ++n) {
    std::vector<uint8_t> image =
        EncodeNodeState(env.compiled->state(n), env.workload.functions);
    for (int trial = 0; trial < 64; ++trial) {
      std::vector<uint8_t> corrupted = image;
      size_t pos = rng.UniformInt(corrupted.size());
      corrupted[pos] ^= static_cast<uint8_t>(1 + rng.UniformInt(255));
      // Must not crash; a flipped float/weight byte may still decode.
      std::optional<DecodedNodeState> decoded = TryDecodeNodeState(corrupted);
      if (decoded.has_value()) {
        ++accepted;
        // Whatever decodes must satisfy the cross-table invariants the
        // runtime indexes by.
        int outgoing = static_cast<int>(decoded->state.outgoing_table.size());
        for (const RawTableEntry& entry : decoded->state.raw_table) {
          ASSERT_GE(entry.message_id, 0);
          ASSERT_LT(entry.message_id, outgoing);
        }
        for (const PartialTableEntry& entry : decoded->state.partial_table) {
          ASSERT_GE(entry.message_id, -1);
          ASSERT_LT(entry.message_id, outgoing);
          ASSERT_GE(entry.expected_contributions, 1);
        }
      } else {
        ++rejected;
      }
    }
  }
  // Sanity: corruption actually exercised both decoder outcomes.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(accepted, 0);
}

TEST(SerializationFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(505);
  for (int trial = 0; trial < 512; ++trial) {
    std::vector<uint8_t> garbage(rng.UniformInt(200));
    for (uint8_t& byte : garbage) {
      byte = static_cast<uint8_t>(rng.UniformInt(256));
    }
    // Decode must terminate without crashing or over-allocating; most
    // buffers are rejected, and any accepted one must be internally valid
    // (byte-identity is not required here: varints are not canonical).
    std::optional<DecodedNodeState> decoded = TryDecodeNodeState(garbage);
    if (decoded.has_value()) {
      int outgoing = static_cast<int>(decoded->state.outgoing_table.size());
      for (const RawTableEntry& entry : decoded->state.raw_table) {
        ASSERT_GE(entry.message_id, 0);
        ASSERT_LT(entry.message_id, outgoing);
      }
      for (const PartialTableEntry& entry : decoded->state.partial_table) {
        ASSERT_GE(entry.expected_contributions, 1);
        ASSERT_LT(entry.message_id, outgoing);
      }
    }
  }
}

TEST(SerializationFuzzTest, CountPrefixBeyondBufferIsRejected) {
  // A claimed table size far beyond the remaining bytes must be rejected
  // up front (no reserve/loop driven by the hostile count).
  std::vector<uint8_t> image = {0xff, 0xff, 0xff, 0xff, 0x0f};
  EXPECT_FALSE(TryDecodeNodeState(image).has_value());
}

TEST(SerializationFuzzTest, TruncatedVarintAtEpochPrefixIsRejected) {
  // The plan-epoch varint is the first field of every image; a buffer that
  // ends mid-varint (continuation bit set, no terminator byte) must be
  // rejected, not read past the end.
  EXPECT_FALSE(TryDecodeNodeState({0x80}).has_value());
  EXPECT_FALSE(
      TryDecodeNodeState({0xff, 0xff, 0xff, 0xff, 0xff}).has_value());
  // An unterminated varint longer than 64 bits latches the error too.
  EXPECT_FALSE(TryDecodeNodeState(std::vector<uint8_t>(11, 0x80))
                   .has_value());
  // A terminated epoch beyond uint32 is out of the wire domain.
  EXPECT_FALSE(
      TryDecodeNodeState({0x80, 0x80, 0x80, 0x80, 0x10}).has_value());
}

TEST(SerializationFuzzTest, OversizedCountFieldsAreRejectedUpFront) {
  // Counts that fit the remaining byte count but not the per-entry minimum
  // encoded size (raw 2, preagg 11, partial 4, outgoing 2 bytes). The
  // decoder must reject them before reserving or looping.
  // epoch=0, raw_count=3 with only 4 payload bytes left (3 entries need 6).
  EXPECT_FALSE(
      TryDecodeNodeState({0x00, 0x03, 0x01, 0x01, 0x01, 0x01}).has_value());
  // epoch=0, raw_count=0, preagg_count=5 with 10 bytes left (needs 55).
  std::vector<uint8_t> preagg = {0x00, 0x00, 0x05};
  preagg.insert(preagg.end(), 10, 0x01);
  EXPECT_FALSE(TryDecodeNodeState(preagg).has_value());
  // epoch=0, raw=0, preagg=0, partial_count=4 with 8 bytes left (needs 16).
  std::vector<uint8_t> partial = {0x00, 0x00, 0x00, 0x04};
  partial.insert(partial.end(), 8, 0x01);
  EXPECT_FALSE(TryDecodeNodeState(partial).has_value());
  // epoch=0, all tables empty, outgoing_count=2 with only the trailing
  // is_destination byte left.
  EXPECT_FALSE(
      TryDecodeNodeState({0x00, 0x00, 0x00, 0x00, 0x02, 0x00}).has_value());
}

TEST(SerializationFuzzTest, HugeCountCannotWrapTheBoundsCheck) {
  // raw_count = 2^63: a bounds check of the form `count * entry_size >
  // remaining` would wrap uint64 and pass, driving an astronomically long
  // loop. The decoder must reject it in O(1).
  std::vector<uint8_t> image = {0x00};  // epoch = 0.
  image.insert(image.end(), 9, 0x80);   // varint 2^63...
  image.push_back(0x01);                // ...terminated.
  image.insert(image.end(), 16, 0x01);  // Some plausible payload bytes.
  EXPECT_FALSE(TryDecodeNodeState(image).has_value());
}

TEST(DisseminationTest, FullCoversAllParticipatingNodes) {
  Env env(64);
  NodeId base = PickBaseStation(env.topology);
  DisseminationCost cost = ComputeFullDissemination(
      *env.compiled, env.workload.functions, env.paths, base,
      EnergyModel{});
  EXPECT_GT(cost.nodes_updated, 0);
  EXPECT_GT(cost.state_bytes, 0);
  EXPECT_GT(cost.energy_mj, 0.0);
  EXPECT_GT(cost.packets, 0);
  // No more nodes than exist.
  EXPECT_LE(cost.nodes_updated, env.topology.node_count());
}

TEST(DisseminationTest, IncrementalIsZeroForIdenticalPlans) {
  Env env(65);
  NodeId base = PickBaseStation(env.topology);
  DisseminationCost cost = ComputeIncrementalDissemination(
      *env.compiled, env.workload.functions, *env.compiled,
      env.workload.functions, env.paths, base, EnergyModel{});
  EXPECT_EQ(cost.nodes_updated, 0);
  EXPECT_EQ(cost.energy_mj, 0.0);
}

TEST(DisseminationTest, LocalizedChangeUpdatesFewNodes) {
  Env env(66);
  NodeId base = PickBaseStation(env.topology);
  // Add one source to one destination.
  NodeId d = env.workload.tasks[0].destination;
  NodeId fresh = kInvalidNode;
  for (NodeId n = 0; n < env.topology.node_count(); ++n) {
    const auto& sources = env.workload.tasks[0].sources;
    if (n != d &&
        std::find(sources.begin(), sources.end(), n) == sources.end()) {
      fresh = n;
      break;
    }
  }
  Workload updated = WithSourceAdded(env.workload, fresh, d, 1.0);
  auto updated_forest =
      std::make_shared<MulticastForest>(env.paths, updated.tasks);
  GlobalPlan updated_plan =
      UpdatePlan(*env.plan, updated_forest, updated.functions);
  CompiledPlan updated_compiled =
      CompiledPlan::Compile(updated_plan, updated.functions);

  DisseminationCost full = ComputeFullDissemination(
      updated_compiled, updated.functions, env.paths, base, EnergyModel{});
  DisseminationCost incremental = ComputeIncrementalDissemination(
      *env.compiled, env.workload.functions, updated_compiled,
      updated.functions, env.paths, base, EnergyModel{});
  EXPECT_LT(incremental.nodes_updated, full.nodes_updated);
  EXPECT_LT(incremental.energy_mj, full.energy_mj);
  EXPECT_GT(incremental.nodes_updated, 0);
  // Corollary 1 locality: far fewer nodes than the whole plan.
  EXPECT_LE(incremental.nodes_updated, full.nodes_updated / 2);
}

TEST(BaseStationTest, PickIsDeterministicCornerNode) {
  Topology topo = MakeGreatDuckIslandLike();
  NodeId base = PickBaseStation(topo);
  EXPECT_EQ(base, PickBaseStation(topo));
  // No node is strictly closer to the origin corner.
  double base_dist = DistanceSquared(topo.position(base), Point{0, 0});
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    EXPECT_GE(DistanceSquared(topo.position(n), Point{0, 0}),
              base_dist - 1e-12);
  }
}

TEST(BaseStationTest, RoundChargesBothDirections) {
  Env env(67);
  NodeId base = PickBaseStation(env.topology);
  BaseStationRoundResult result = SimulateBaseStationRound(
      env.topology, env.paths, env.workload, base, EnergyModel{});
  EXPECT_GT(result.uplink_mj, 0.0);
  EXPECT_GT(result.downlink_mj, 0.0);
  EXPECT_NEAR(result.energy_mj, result.uplink_mj + result.downlink_mj,
              1e-12);
  double per_node = 0.0;
  for (double e : result.node_energy_mj) per_node += e;
  EXPECT_NEAR(per_node, result.energy_mj, 1e-9);
}

TEST(BaseStationTest, BottleneckConcentratesNearBaseStation) {
  Env env(68);
  NodeId base = PickBaseStation(env.topology);
  BaseStationRoundResult result = SimulateBaseStationRound(
      env.topology, env.paths, env.workload, base, EnergyModel{});
  // The hottest node is the base station or one of its radio neighbors.
  NodeId hottest = 0;
  for (NodeId n = 1; n < env.topology.node_count(); ++n) {
    if (result.node_energy_mj[n] > result.node_energy_mj[hottest]) {
      hottest = n;
    }
  }
  EXPECT_TRUE(hottest == base || env.topology.AreNeighbors(hottest, base))
      << "hottest node " << hottest << " is not near base " << base;
}

TEST(BaseStationTest, InNetworkControlAvoidsTheBottleneck) {
  Env env(69);
  NodeId base = PickBaseStation(env.topology);
  BaseStationRoundResult bs = SimulateBaseStationRound(
      env.topology, env.paths, env.workload, base, EnergyModel{});
  PlanExecutor executor(env.compiled, env.workload.functions, EnergyModel{});
  ReadingGenerator readings(env.topology.node_count(), 5);
  RoundResult in_network = executor.RunRound(readings.values());
  double bs_max = 0.0;
  double in_max = 0.0;
  for (double e : bs.node_energy_mj) bs_max = std::max(bs_max, e);
  for (double e : in_network.node_energy_mj) in_max = std::max(in_max, e);
  // The paper's bottleneck argument: the hottest node under out-of-network
  // control burns substantially more than under in-network control.
  EXPECT_GT(bs_max, 1.5 * in_max);
}

}  // namespace
}  // namespace m2m
