#include <memory>

#include <gtest/gtest.h>

#include "core/system.h"
#include "export/dot.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  ExportTest() : topology_(MakeGreatDuckIslandLike()) {
    WorkloadSpec spec;
    spec.destination_count = 6;
    spec.sources_per_destination = 5;
    spec.seed = 71;
    workload_ = GenerateWorkload(topology_, spec);
    system_ = std::make_unique<System>(topology_, workload_);
  }

  Topology topology_;
  Workload workload_;
  std::unique_ptr<System> system_;
};

TEST_F(ExportTest, TopologyDotHasAllNodesAndLinks) {
  std::string dot = TopologyToDot(topology_);
  EXPECT_NE(dot.find("graph topology {"), std::string::npos);
  for (NodeId n = 0; n < topology_.node_count(); ++n) {
    EXPECT_NE(dot.find("n" + std::to_string(n) + " [pos="),
              std::string::npos);
  }
  // One undirected edge line per link.
  size_t count = 0;
  for (size_t at = dot.find(" -- "); at != std::string::npos;
       at = dot.find(" -- ", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, static_cast<size_t>(topology_.link_count()));
}

TEST_F(ExportTest, TreeDotMarksSourceAndDestinations) {
  NodeId source = workload_.tasks[0].sources[0];
  std::string dot =
      MulticastTreeToDot(system_->forest(), topology_, source);
  EXPECT_NE(dot.find("digraph tree_" + std::to_string(source)),
            std::string::npos);
  EXPECT_NE(dot.find("n" + std::to_string(source) + " [shape=box]"),
            std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

TEST_F(ExportTest, PlanDotLabelsEveryEdge) {
  std::string dot = PlanToDot(system_->plan(), topology_);
  size_t count = 0;
  for (size_t at = dot.find(" -> "); at != std::string::npos;
       at = dot.find(" -> ", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, system_->forest().edges().size());
  EXPECT_NE(dot.find("label="), std::string::npos);
}

TEST_F(ExportTest, PlanJsonContainsTotalsAndEdges) {
  std::string json = PlanToJson(system_->plan());
  EXPECT_NE(json.find("\"strategy\": \"optimal\""), std::string::npos);
  EXPECT_NE(json.find("\"total_payload_bytes\": " +
                      std::to_string(system_->plan().TotalPayloadBytes())),
            std::string::npos);
  EXPECT_NE(json.find("\"edges\": ["), std::string::npos);
  EXPECT_NE(json.find("\"payload_bytes\""), std::string::npos);
}

TEST_F(ExportTest, WorkloadJsonListsEveryTask) {
  std::string json = WorkloadToJson(workload_);
  for (const Task& task : workload_.tasks) {
    EXPECT_NE(json.find("\"destination\": " +
                        std::to_string(task.destination)),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"kind\": \"weighted_average\""), std::string::npos);
  EXPECT_NE(json.find("\"weight\":"), std::string::npos);
}

}  // namespace
}  // namespace m2m
