#ifndef M2M_TESTS_FAULT_TEST_UTIL_H_
#define M2M_TESTS_FAULT_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "plan/consistency.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "runtime/network.h"
#include "sim/executor.h"
#include "sim/fault_schedule.h"
#include "sim/readings.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {
namespace fault_test {

/// Everything one end-to-end fault-schedule run produces. The differential
/// tests assert the value/divergence fields are clean and that `trace` is
/// byte-identical across replays of the same schedule.
struct FaultRunResult {
  /// Full event log: schedule description, re-plan records, per-round
  /// runtime events, and round summaries. Deterministic per schedule.
  std::string trace;
  /// Convergence-round aggregates (alive destinations that completed).
  std::unordered_map<NodeId, double> final_values;
  /// Fault-free analytic oracle over the surviving plan, same readings.
  std::unordered_map<NodeId, double> oracle_values;
  /// Alive destinations that failed to complete the convergence round.
  std::vector<NodeId> unconverged_destinations;
  /// Completed per-round values that disagreed with the per-round oracle.
  std::vector<std::string> value_mismatches;
  /// Corollary 1 violations: local re-plan != from-scratch re-plan.
  std::vector<std::string> replan_divergences;
  /// Theorem 1 violations in any patched plan.
  std::vector<std::string> consistency_violations;
  int replans = 0;
  int64_t edges_reused = 0;
  int64_t edges_reoptimized = 0;
  int64_t attempts = 0;
  int64_t retransmissions = 0;
  int64_t duplicates = 0;
  int64_t acks_lost = 0;
  int64_t messages_abandoned = 0;
};

inline bool ValuesClose(double a, double b) {
  return std::abs(a - b) <= 1e-4 * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Runs `schedule` against (topology, workload): every scheduled round is
/// executed over lossy links with ack/retry; persistent faults trigger a
/// local re-plan (validated against a from-scratch global re-plan,
/// Corollary 1), and each completed destination is compared against the
/// analytic executor on the same plan and readings. A final convergence
/// round (one past the schedule, so no transient faults) yields
/// `final_values`, differentially compared to `oracle_values`.
inline FaultRunResult RunFaultSchedule(const Topology& topology,
                                       const Workload& workload,
                                       const FaultSchedule& schedule,
                                       uint64_t readings_seed,
                                       const RetryPolicy& retry = {}) {
  FaultRunResult result;
  EventTrace trace;
  trace.Append(schedule.Describe());

  Workload current = workload;
  std::vector<std::pair<NodeId, NodeId>> failed_links;
  std::vector<NodeId> dead_nodes;
  auto alive = [&dead_nodes](NodeId n) {
    return std::find(dead_nodes.begin(), dead_nodes.end(), n) ==
           dead_nodes.end();
  };

  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, current.tasks),
      current.functions);

  const int rounds = schedule.options().rounds;
  // One extra round past the schedule: no transient faults remain, so every
  // alive destination must converge (differential acceptance criterion).
  for (int round = 0; round <= rounds; ++round) {
    std::vector<FaultEvent> events = schedule.PersistentEventsAt(round);
    if (!events.empty()) {
      for (const FaultEvent& event : events) {
        if (event.type == FaultType::kNodeDeath) {
          dead_nodes.push_back(event.a);
          // A dead node stops being a source in every task that used it.
          for (const Task& task : std::vector<Task>(current.tasks)) {
            if (std::find(task.sources.begin(), task.sources.end(),
                          event.a) != task.sources.end()) {
              current = WithSourceRemoved(current, event.a, task.destination);
            }
          }
        } else {
          failed_links.emplace_back(event.a, event.b);
        }
      }
      Topology masked =
          Topology::WithFailures(topology, failed_links, dead_nodes);
      paths = PathSystem(masked);
      UpdateStats stats;
      GlobalPlan patched = ReplanForTopology(plan, paths, current.tasks,
                                             current.functions, &stats);
      GlobalPlan fresh = BuildPlan(patched.forest_ptr(), current.functions,
                                   plan.options());
      for (std::string& d : FindPlanDivergence(patched, fresh)) {
        result.replan_divergences.push_back(std::move(d));
      }
      for (std::string& v : FindConsistencyViolations(patched)) {
        result.consistency_violations.push_back(std::move(v));
      }
      std::ostringstream line;
      line << "r" << round << " replan events=" << events.size()
           << " edges=" << stats.edges_total
           << " reused=" << stats.edges_reused
           << " reopt=" << stats.edges_reoptimized;
      trace.Append(line.str());
      plan = patched;
      ++result.replans;
      result.edges_reused += stats.edges_reused;
      result.edges_reoptimized += stats.edges_reoptimized;
    }

    CompiledPlan compiled = CompiledPlan::Compile(plan, current.functions);
    RuntimeNetwork network(compiled, current.functions);
    ReadingGenerator readings(topology.node_count(),
                              readings_seed + static_cast<uint64_t>(round));

    LossyLinkModel links;
    links.attempt_delivers = [&schedule, round](NodeId from, NodeId to,
                                                int attempt) {
      return schedule.AttemptDelivers(round, from, to, attempt);
    };
    links.node_alive = alive;

    std::ostringstream header;
    header << "r" << round << " begin";
    trace.Append(header.str());
    RuntimeNetwork::LossyResult lossy =
        network.RunRoundLossy(readings.values(), links, retry, {}, &trace);
    result.attempts += lossy.attempts;
    result.retransmissions += lossy.retransmissions;
    result.duplicates += lossy.duplicates;
    result.acks_lost += lossy.acks_lost;
    result.messages_abandoned += lossy.messages_abandoned;

    // Differential check: any destination that *did* complete must agree
    // with the analytic executor on the same plan and readings (which
    // itself CHECK-verifies against direct evaluation of the function).
    PlanExecutor oracle(std::make_shared<CompiledPlan>(compiled),
                        current.functions, EnergyModel{});
    RoundResult analytic = oracle.RunRound(readings.values());
    for (const auto& [destination, value] : lossy.destination_values) {
      auto it = analytic.destination_values.find(destination);
      if (it == analytic.destination_values.end() ||
          !ValuesClose(value, it->second)) {
        std::ostringstream mismatch;
        mismatch << "r" << round << " d" << destination << " got " << value
                 << " want "
                 << (it == analytic.destination_values.end()
                         ? std::nan("")
                         : it->second);
        result.value_mismatches.push_back(mismatch.str());
      }
    }

    std::ostringstream summary;
    summary << "r" << round << " end complete="
            << lossy.destination_values.size() << "/"
            << (lossy.destination_values.size() +
                lossy.incomplete_destinations.size())
            << " attempts=" << lossy.attempts << " retx="
            << lossy.retransmissions << " dup=" << lossy.duplicates
            << " abandoned=" << lossy.messages_abandoned
            << " ticks=" << lossy.final_tick;
    trace.Append(summary.str());

    if (round == rounds) {
      result.final_values = lossy.destination_values;
      result.unconverged_destinations = lossy.incomplete_destinations;
      result.oracle_values = analytic.destination_values;
    }
  }

  result.trace = trace.ToString();
  return result;
}

/// Destinations of every task (the fault generator's protected set: the
/// paper's model keeps consumers alive; dead consumers would make their
/// aggregate undefined rather than recoverable).
inline std::vector<NodeId> Destinations(const Workload& workload) {
  std::vector<NodeId> out;
  out.reserve(workload.tasks.size());
  for (const Task& task : workload.tasks) out.push_back(task.destination);
  return out;
}

}  // namespace fault_test
}  // namespace m2m

#endif  // M2M_TESTS_FAULT_TEST_UTIL_H_
