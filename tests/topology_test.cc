#include <algorithm>

#include <gtest/gtest.h>

#include "topology/generator.h"
#include "topology/topology.h"

namespace m2m {
namespace {

Topology MakeLine(int n, double spacing, double range) {
  std::vector<Point> positions;
  for (int i = 0; i < n; ++i) positions.push_back({i * spacing, 0.0});
  return Topology(std::move(positions), range);
}

TEST(TopologyTest, LineAdjacency) {
  Topology line = MakeLine(5, 10.0, 10.0);
  EXPECT_EQ(line.node_count(), 5);
  EXPECT_EQ(line.link_count(), 4);
  EXPECT_TRUE(line.AreNeighbors(0, 1));
  EXPECT_FALSE(line.AreNeighbors(0, 2));
  EXPECT_EQ(line.neighbors(2), (std::vector<NodeId>{1, 3}));
}

TEST(TopologyTest, RangeBoundaryIsInclusive) {
  Topology pair({{0.0, 0.0}, {50.0, 0.0}}, 50.0);
  EXPECT_TRUE(pair.AreNeighbors(0, 1));
  Topology apart({{0.0, 0.0}, {50.001, 0.0}}, 50.0);
  EXPECT_FALSE(apart.AreNeighbors(0, 1));
}

TEST(TopologyTest, HopDistancesOnLine) {
  Topology line = MakeLine(6, 10.0, 10.0);
  std::vector<int> dist = line.HopDistancesFrom(0);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(dist[i], i);
  EXPECT_EQ(line.NodesAtHopDistance(0, 3), (std::vector<NodeId>{3}));
}

TEST(TopologyTest, DisconnectedGraphDetected) {
  Topology split({{0.0, 0.0}, {5.0, 0.0}, {100.0, 0.0}}, 10.0);
  EXPECT_FALSE(split.IsConnected());
  std::vector<int> dist = split.HopDistancesFrom(0);
  EXPECT_EQ(dist[2], -1);
}

TEST(TopologyTest, AverageDegreeOnGrid) {
  // 3x3 grid, spacing 10, range 10: inner node has 4 neighbors.
  Topology grid = MakeGrid(3, 3, 10.0, 10.0);
  EXPECT_EQ(grid.node_count(), 9);
  EXPECT_EQ(grid.link_count(), 12);
  EXPECT_DOUBLE_EQ(grid.average_degree(), 24.0 / 9.0);
  EXPECT_EQ(grid.neighbors(4).size(), 4u);  // Center of the grid.
}

TEST(TopologyTest, GridWithDiagonalRange) {
  // Range covering diagonals adds 4 links per cell.
  Topology grid = MakeGrid(3, 3, 10.0, 15.0);
  EXPECT_EQ(grid.neighbors(4).size(), 8u);
}

TEST(GeneratorTest, GreatDuckIslandLikeMatchesPaperSetup) {
  Topology gdi = MakeGreatDuckIslandLike();
  EXPECT_EQ(gdi.node_count(), 68);
  EXPECT_DOUBLE_EQ(gdi.radio_range_m(), 50.0);
  EXPECT_TRUE(gdi.IsConnected());
  for (NodeId n = 0; n < gdi.node_count(); ++n) {
    const Point& p = gdi.position(n);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 106.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 203.0);
  }
  // Dense enough for the paper's 20-sources-per-destination workloads.
  EXPECT_GT(gdi.average_degree(), 8.0);
}

TEST(GeneratorTest, GreatDuckIslandLikeIsDeterministic) {
  Topology a = MakeGreatDuckIslandLike(11);
  Topology b = MakeGreatDuckIslandLike(11);
  EXPECT_EQ(a.positions(), b.positions());
  Topology c = MakeGreatDuckIslandLike(12);
  EXPECT_NE(a.positions(), c.positions());
}

TEST(GeneratorTest, UniformRandomIsConnectedAndInBounds) {
  Area area{200.0, 200.0};
  Topology topo = MakeUniformRandom(60, area, 50.0, 99);
  EXPECT_EQ(topo.node_count(), 60);
  EXPECT_TRUE(topo.IsConnected());
}

TEST(GeneratorTest, ClusteredIsConnected) {
  Topology topo =
      MakeClustered(50, 4, Area{300.0, 300.0}, 20.0, 50.0, 123);
  EXPECT_EQ(topo.node_count(), 50);
  EXPECT_TRUE(topo.IsConnected());
}

TEST(GeneratorTest, ScalingSeriesKeepsDensity) {
  std::vector<Topology> series = MakeScalingSeries({50, 100, 150}, 7);
  ASSERT_EQ(series.size(), 3u);
  for (const Topology& t : series) {
    EXPECT_TRUE(t.IsConnected());
  }
  EXPECT_EQ(series[0].node_count(), 50);
  EXPECT_EQ(series[2].node_count(), 150);
  // Density held roughly constant => average degree within a factor ~2.
  double d0 = series[0].average_degree();
  double d2 = series[2].average_degree();
  EXPECT_LT(std::max(d0, d2) / std::min(d0, d2), 2.5);
}

TEST(TopologyTest, OutOfRangeNodeIdAborts) {
  Topology line = MakeLine(3, 10.0, 10.0);
  EXPECT_DEATH(line.position(3), "out of range");
  EXPECT_DEATH(line.neighbors(-1), "out of range");
}

}  // namespace
}  // namespace m2m
