#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "plan/consistency.h"
#include "plan/planner.h"
#include "routing/backbone.h"
#include "routing/milestones.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

TEST(PathSystemTest, LineNetworkPaths) {
  std::vector<Point> positions;
  for (int i = 0; i < 5; ++i) positions.push_back({i * 10.0, 0.0});
  Topology line(std::move(positions), 10.0);
  PathSystem paths(line);
  EXPECT_EQ(paths.HopDistance(0, 4), 4);
  EXPECT_EQ(paths.HopDistance(2, 2), 0);
  EXPECT_EQ(paths.NextHop(0, 4), 1);
  EXPECT_EQ(paths.Path(1, 4), (std::vector<NodeId>{1, 2, 3, 4}));
  EXPECT_EQ(paths.Eccentricity(0), 4);
  EXPECT_EQ(paths.Eccentricity(2), 2);
}

TEST(PathSystemTest, HopDistanceMatchesBfsOnGdi) {
  Topology gdi = MakeGreatDuckIslandLike();
  PathSystem paths(gdi);
  for (NodeId origin : {0, 17, 42}) {
    std::vector<int> bfs = gdi.HopDistancesFrom(origin);
    for (NodeId v = 0; v < gdi.node_count(); ++v) {
      EXPECT_EQ(paths.HopDistance(origin, v), bfs[v])
          << origin << " -> " << v;
    }
  }
}

TEST(PathSystemTest, PathsAreSymmetricInLength) {
  Topology gdi = MakeGreatDuckIslandLike();
  PathSystem paths(gdi);
  for (NodeId u = 0; u < gdi.node_count(); u += 7) {
    for (NodeId v = 0; v < gdi.node_count(); v += 5) {
      EXPECT_EQ(paths.HopDistance(u, v), paths.HopDistance(v, u));
    }
  }
}

TEST(PathSystemTest, PathEndpointsAndContiguity) {
  Topology gdi = MakeGreatDuckIslandLike();
  PathSystem paths(gdi);
  for (NodeId u = 0; u < gdi.node_count(); u += 11) {
    for (NodeId v = 0; v < gdi.node_count(); v += 13) {
      if (u == v) continue;
      std::vector<NodeId> path = paths.Path(u, v);
      ASSERT_GE(path.size(), 2u);
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(gdi.AreNeighbors(path[i], path[i + 1]));
      }
      EXPECT_EQ(static_cast<int>(path.size()) - 1, paths.HopDistance(u, v));
    }
  }
}

// The crux of the routing layer: subpaths of canonical paths are canonical,
// which is what makes the multicast trees satisfy the paper's path-sharing
// restriction.
TEST(PathSystemTest, CanonicalPathsAreConsistent) {
  Topology gdi = MakeGreatDuckIslandLike();
  PathSystem paths(gdi);
  for (NodeId u = 0; u < gdi.node_count(); u += 9) {
    for (NodeId v = 0; v < gdi.node_count(); v += 7) {
      if (u == v) continue;
      EXPECT_TRUE(paths.PathIsConsistent(u, v)) << u << " -> " << v;
    }
  }
}

TEST(PathSystemTest, DifferentPerturbationSeedsStillShortest) {
  Topology gdi = MakeGreatDuckIslandLike();
  PathSystem a(gdi, 1);
  PathSystem b(gdi, 2);
  // Hop distances agree regardless of tie-breaking.
  for (NodeId u = 0; u < gdi.node_count(); u += 10) {
    for (NodeId v = 0; v < gdi.node_count(); v += 10) {
      EXPECT_EQ(a.HopDistance(u, v), b.HopDistance(u, v));
    }
  }
}

TEST(PathSystemTest, UnreachableAborts) {
  Topology split({{0.0, 0.0}, {100.0, 0.0}}, 10.0);
  PathSystem paths(split);
  EXPECT_DEATH(paths.HopDistance(0, 1), "unreachable");
  EXPECT_DEATH(paths.NextHop(0, 1), "unreachable");
}

class MulticastForestTest : public ::testing::Test {
 protected:
  MulticastForestTest()
      : topology_(MakeGreatDuckIslandLike()), paths_(topology_) {}

  Topology topology_;
  PathSystem paths_;
};

TEST_F(MulticastForestTest, RoutesFollowCanonicalPaths) {
  std::vector<Task> tasks{{5, {12, 30, 47}}, {20, {12, 55}}};
  MulticastForest forest(paths_, tasks);
  for (const Task& task : tasks) {
    for (NodeId s : task.sources) {
      const std::vector<int>& route =
          forest.Route(SourceDestPair{s, task.destination});
      std::vector<NodeId> expected = paths_.Path(s, task.destination);
      // Stitch segments back into the physical path.
      std::vector<NodeId> actual;
      for (size_t i = 0; i < route.size(); ++i) {
        const ForestEdge& edge = forest.edges()[route[i]];
        size_t skip = (i == 0) ? 0 : 1;
        actual.insert(actual.end(), edge.segment.begin() + skip,
                      edge.segment.end());
      }
      EXPECT_EQ(actual, expected);
    }
  }
}

TEST_F(MulticastForestTest, SharedSourceUsesOneTree) {
  // Node 12 feeds two destinations; its tree must not duplicate prefix
  // edges.
  std::vector<Task> tasks{{5, {12}}, {20, {12}}};
  MulticastForest forest(paths_, tasks);
  const std::vector<int>& tree = forest.TreeEdges(12);
  std::set<int> unique(tree.begin(), tree.end());
  EXPECT_EQ(unique.size(), tree.size());
  // Tree size = number of distinct nodes across both routes.
  std::set<NodeId> nodes;
  for (int e : tree) {
    for (NodeId n : forest.edges()[e].segment) nodes.insert(n);
  }
  EXPECT_EQ(forest.MulticastTreeSize(12), static_cast<int>(nodes.size()));
}

TEST_F(MulticastForestTest, ChecksPassOnRandomWorkload) {
  std::vector<Task> tasks{
      {3, {10, 20, 30, 40}}, {15, {10, 25, 50}}, {60, {20, 30, 61}}};
  MulticastForest forest(paths_, tasks);
  EXPECT_TRUE(forest.CheckMinimality());
  EXPECT_TRUE(forest.CheckSharing());
  EXPECT_EQ(forest.destination_ids(), (std::vector<NodeId>{3, 15, 60}));
}

TEST_F(MulticastForestTest, PairsOnEdgesMatchRoutes) {
  std::vector<Task> tasks{{5, {12, 30}}, {20, {12}}};
  MulticastForest forest(paths_, tasks);
  for (const Task& task : tasks) {
    for (NodeId s : task.sources) {
      SourceDestPair pair{s, task.destination};
      for (int e : forest.Route(pair)) {
        const auto& pairs = forest.edges()[e].pairs;
        EXPECT_TRUE(std::binary_search(pairs.begin(), pairs.end(), pair));
      }
    }
  }
}

TEST_F(MulticastForestTest, SelfSourceHasEmptyRoute) {
  std::vector<Task> tasks{{5, {5, 12}}};
  MulticastForest forest(paths_, tasks);
  EXPECT_TRUE(forest.Route(SourceDestPair{5, 5}).empty());
  EXPECT_FALSE(forest.Route(SourceDestPair{12, 5}).empty());
}

TEST_F(MulticastForestTest, AggregationTreeCoversAllRoutes) {
  std::vector<Task> tasks{{5, {12, 30, 47}}};
  MulticastForest forest(paths_, tasks);
  std::set<NodeId> nodes{5};
  for (NodeId s : tasks[0].sources) {
    for (NodeId n : paths_.Path(s, 5)) nodes.insert(n);
  }
  EXPECT_EQ(forest.AggregationTreeSize(5), static_cast<int>(nodes.size()));
}

TEST_F(MulticastForestTest, DuplicateDestinationAborts) {
  std::vector<Task> tasks{{5, {12}}, {5, {30}}};
  EXPECT_DEATH(MulticastForest(paths_, tasks), "two tasks");
}

TEST_F(MulticastForestTest, DuplicateSourceAborts) {
  std::vector<Task> tasks{{5, {12, 12}}};
  EXPECT_DEATH(MulticastForest(paths_, tasks), "duplicate source");
}

TEST_F(MulticastForestTest, MilestoneForestUsesVirtualEdges) {
  MilestoneSelector none = MilestoneSelector::EndpointsOnly(
      topology_.node_count());
  std::vector<Task> tasks{{5, {47}}};
  MulticastForest forest(paths_, tasks, &none);
  ASSERT_EQ(forest.edges().size(), 1u);
  const ForestEdge& edge = forest.edges()[0];
  EXPECT_EQ(edge.edge.tail, 47);
  EXPECT_EQ(edge.edge.head, 5);
  EXPECT_EQ(edge.segment, paths_.Path(47, 5));
  EXPECT_EQ(edge.hop_length(), paths_.HopDistance(47, 5));
}

TEST_F(MulticastForestTest, AllMilestonesEqualsDefault) {
  MilestoneSelector all = MilestoneSelector::All(topology_.node_count());
  std::vector<Task> tasks{{5, {12, 30}}, {20, {12}}};
  MulticastForest with(paths_, tasks, &all);
  MulticastForest without(paths_, tasks);
  EXPECT_EQ(with.edges().size(), without.edges().size());
  EXPECT_EQ(with.TotalPhysicalHops(), without.TotalPhysicalHops());
}

TEST(LinkStabilityTest, ScoresInRangeAndDeterministic) {
  Topology gdi = MakeGreatDuckIslandLike();
  LinkStabilityModel a(gdi, 5);
  LinkStabilityModel b(gdi, 5);
  for (NodeId n = 0; n < gdi.node_count(); ++n) {
    for (NodeId m : gdi.neighbors(n)) {
      double s = a.stability(n, m);
      EXPECT_GE(s, 0.05);
      EXPECT_LE(s, 0.999);
      EXPECT_DOUBLE_EQ(s, a.stability(m, n));  // Symmetric.
      EXPECT_DOUBLE_EQ(s, b.stability(n, m));  // Deterministic.
    }
  }
}

TEST(LinkStabilityTest, CloserLinksTendMoreStable) {
  Topology gdi = MakeGreatDuckIslandLike();
  LinkStabilityModel model(gdi, 5);
  double close_total = 0.0;
  int close_count = 0;
  double far_total = 0.0;
  int far_count = 0;
  for (NodeId n = 0; n < gdi.node_count(); ++n) {
    for (NodeId m : gdi.neighbors(n)) {
      if (m < n) continue;
      double dist = Distance(gdi.position(n), gdi.position(m));
      if (dist < 20.0) {
        close_total += model.stability(n, m);
        ++close_count;
      } else if (dist > 40.0) {
        far_total += model.stability(n, m);
        ++far_count;
      }
    }
  }
  ASSERT_GT(close_count, 0);
  ASSERT_GT(far_count, 0);
  EXPECT_GT(close_total / close_count, far_total / far_count);
}

TEST(StabilityAwareRoutingTest, AvoidsExpensiveLink) {
  // Two routes from 0 to 2: direct via 1 (2 hops) or around via 3, 4
  // (3 hops). With the 0-1 link made costly, routing detours.
  std::vector<Point> positions = {{0, 0},   {40, 0},  {80, 0},
                                  {10, 42}, {55, 40}};
  Topology topo(std::move(positions), 48.0);
  ASSERT_TRUE(topo.AreNeighbors(0, 1));
  ASSERT_TRUE(topo.AreNeighbors(0, 3));
  ASSERT_TRUE(topo.AreNeighbors(3, 4));
  ASSERT_TRUE(topo.AreNeighbors(4, 2));

  PathSystem plain(topo);
  EXPECT_EQ(plain.Path(0, 2), (std::vector<NodeId>{0, 1, 2}));

  PathSystem::LinkCostFn costly_01 = [](NodeId a, NodeId b) {
    return ((a == 0 && b == 1) || (a == 1 && b == 0)) ? 4.0 : 1.0;
  };
  PathSystem biased(topo, 0x5eed, costly_01);
  EXPECT_EQ(biased.Path(0, 2), (std::vector<NodeId>{0, 3, 4, 2}));
  // Consistency still holds with custom costs.
  EXPECT_TRUE(biased.PathIsConsistent(0, 2));
}

TEST(StabilityAwareRoutingTest, CostFormula) {
  Topology gdi = MakeGreatDuckIslandLike();
  LinkStabilityModel model(gdi, 5);
  PathSystem::LinkCostFn cost = StabilityAwareLinkCost(model, 2.0);
  NodeId a = 0;
  NodeId b = gdi.neighbors(0).front();
  EXPECT_DOUBLE_EQ(cost(a, b), 1.0 + 2.0 * (1.0 - model.stability(a, b)));
  PathSystem::LinkCostFn zero = StabilityAwareLinkCost(model, 0.0);
  EXPECT_DOUBLE_EQ(zero(a, b), 1.0);
}

TEST(StabilityAwareRoutingTest, HigherPenaltyRaisesRouteStability) {
  Topology gdi = MakeGreatDuckIslandLike();
  LinkStabilityModel model(gdi, 5);
  auto mean_route_stability = [&](double penalty) {
    PathSystem paths(gdi, 0x5eed,
                     penalty == 0.0
                         ? PathSystem::LinkCostFn(nullptr)
                         : StabilityAwareLinkCost(model, penalty));
    double total = 0.0;
    int links = 0;
    for (NodeId u = 0; u < gdi.node_count(); u += 5) {
      for (NodeId v = 2; v < gdi.node_count(); v += 7) {
        if (u == v) continue;
        std::vector<NodeId> path = paths.Path(u, v);
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          total += model.stability(path[i], path[i + 1]);
          ++links;
        }
      }
    }
    return total / links;
  };
  EXPECT_GT(mean_route_stability(4.0), mean_route_stability(0.0));
}

TEST(BackboneTest, CenterNodeMinimizesTotalDistance) {
  Topology gdi = MakeGreatDuckIslandLike();
  NodeId center = PickCenterNode(gdi);
  auto total_distance = [&](NodeId n) {
    int64_t total = 0;
    for (int d : gdi.HopDistancesFrom(n)) total += d;
    return total;
  };
  int64_t center_total = total_distance(center);
  for (NodeId n = 0; n < gdi.node_count(); n += 3) {
    EXPECT_LE(center_total, total_distance(n));
  }
}

TEST(BackboneTest, CostDiscriminatesBackboneLinks) {
  Topology gdi = MakeGreatDuckIslandLike();
  NodeId center = PickCenterNode(gdi);
  PathSystem::LinkCostFn cost = BackboneBiasedCost(gdi, center, 1.6);
  int cheap = 0;
  int expensive = 0;
  for (NodeId a = 0; a < gdi.node_count(); ++a) {
    for (NodeId b : gdi.neighbors(a)) {
      if (b < a) continue;
      double c = cost(a, b);
      if (c == 1.0) ++cheap;
      if (c == 1.6) ++expensive;
      EXPECT_TRUE(c == 1.0 || c == 1.6);
      EXPECT_DOUBLE_EQ(c, cost(b, a));
    }
  }
  // A spanning tree has n-1 links; the rest carry the penalty.
  EXPECT_EQ(cheap, gdi.node_count() - 1);
  EXPECT_EQ(expensive, gdi.link_count() - (gdi.node_count() - 1));
}

TEST(BackboneTest, BiasedRoutingShrinksDispersedForests) {
  Topology gdi = MakeGreatDuckIslandLike();
  NodeId center = PickCenterNode(gdi);
  WorkloadSpec spec;
  spec.destination_count = 13;
  spec.sources_per_destination = 20;
  spec.dispersion = 1.0;
  spec.seed = 1002;
  Workload wl = GenerateWorkload(gdi, spec);
  PathSystem plain(gdi);
  PathSystem biased(gdi, 0x5eed, BackboneBiasedCost(gdi, center, 1.6));
  MulticastForest plain_forest(plain, wl.tasks);
  MulticastForest biased_forest(biased, wl.tasks);
  // Funneling onto the backbone shares more edges across trees.
  EXPECT_LT(biased_forest.edges().size(), plain_forest.edges().size());
  // And the whole pipeline still verifies on the biased routes.
  auto forest = std::make_shared<const MulticastForest>(biased, wl.tasks);
  GlobalPlan plan = BuildPlan(forest, wl.functions, {});
  EXPECT_TRUE(ValidatePlanConsistency(plan));
}

TEST(MilestoneSelectorTest, ThresholdExtremes) {
  Topology gdi = MakeGreatDuckIslandLike();
  LinkStabilityModel model(gdi, 5);
  MilestoneSelector all =
      MilestoneSelector::StabilityThreshold(gdi, model, 0.0);
  EXPECT_EQ(all.milestone_count(), gdi.node_count());
  MilestoneSelector none =
      MilestoneSelector::StabilityThreshold(gdi, model, 1.1);
  EXPECT_EQ(none.milestone_count(), 0);
  MilestoneSelector some =
      MilestoneSelector::StabilityThreshold(gdi, model, 0.85);
  EXPECT_GT(some.milestone_count(), 0);
  EXPECT_LT(some.milestone_count(), gdi.node_count());
}

}  // namespace
}  // namespace m2m
