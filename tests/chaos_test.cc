// Chaos differential harness: 20 seeded runs over every adversarial channel
// regime (burst loss, bounded reordering, spontaneous duplication, payload
// corruption) plus partition-and-rejoin schedules. Each run is checked three
// ways: the coverage-annotated aggregates must reconcile exactly against an
// oracle built from the actually-delivered source set, detection and
// readmission latencies must stay within their analytic bounds, and a replay
// of the same seed must be byte-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "agg/aggregate_function.h"
#include "common/crc32.h"
#include "fault_test_util.h"
#include "obs/metrics.h"
#include "plan/consistency.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "runtime/channel.h"
#include "runtime/network.h"
#include "runtime/wire_functions.h"
#include "sim/base_station.h"
#include "sim/executor.h"
#include "sim/fault_schedule.h"
#include "sim/readings.h"
#include "sim/self_healing.h"
#include "topology/generator.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {
namespace {

using fault_test::Destinations;
using fault_test::ValuesClose;

Workload DefaultWorkload(const Topology& topology, uint64_t seed) {
  WorkloadSpec spec;
  spec.destination_count = 5;
  spec.sources_per_destination = 5;
  spec.max_hops = 4;
  spec.seed = seed;
  return GenerateWorkload(topology, spec);
}

// One adversarial channel regime: a named ChannelOptions configuration plus
// the counter that proves the regime actually exercised its failure mode.
struct ChannelRegime {
  std::string name;
  ChannelOptions options;
};

std::vector<ChannelRegime> ChannelRegimes(uint64_t seed) {
  std::vector<ChannelRegime> regimes;
  {
    ChannelRegime r;
    r.name = "burst";
    r.options.good_loss = 0.05;
    r.options.bad_loss = 0.9;
    r.options.p_enter_bad = 0.08;
    r.options.p_exit_bad = 0.3;
    regimes.push_back(r);
  }
  {
    ChannelRegime r;
    r.name = "reorder";
    r.options.good_loss = 0.25;
    r.options.delay_probability = 0.5;
    r.options.max_delay_ticks = 4;
    regimes.push_back(r);
  }
  {
    ChannelRegime r;
    r.name = "duplicate";
    r.options.good_loss = 0.1;
    r.options.duplicate_probability = 0.3;
    regimes.push_back(r);
  }
  {
    ChannelRegime r;
    r.name = "corrupt";
    r.options.good_loss = 0.05;
    r.options.corrupt_probability = 0.15;
    r.options.reverse_extra_loss = 0.1;
    regimes.push_back(r);
  }
  for (size_t i = 0; i < regimes.size(); ++i) {
    regimes[i].options.seed = seed * 1000 + i;
  }
  return regimes;
}

// Oracle over the actually-delivered source set: merges exactly the reported
// contributors' pre-aggregated readings — the value a destination SHOULD
// report given what the channel let through.
double SubsetOracle(const AggregateFunction& fn,
                    const std::vector<NodeId>& sources,
                    const std::vector<double>& readings) {
  std::optional<PartialRecord> merged;
  for (NodeId s : sources) {
    PartialRecord partial = fn.PreAggregate(s, readings[s]);
    merged = merged ? fn.Merge(*merged, partial) : partial;
  }
  return fn.Evaluate(*merged);
}

uint32_t XorFold(const std::vector<NodeId>& sources) {
  uint32_t fold = 0;
  for (NodeId s : sources) fold ^= static_cast<uint32_t>(s) + 1;
  return fold;
}

// Everything one chaos run over one regime produces; the replay assertion
// compares two of these field by field.
struct ChaosRun {
  std::string trace;
  std::vector<std::string> errors;  ///< Coverage/oracle reconciliation.
  int64_t attempts = 0;
  int64_t retransmissions = 0;
  int64_t corrupt_frames = 0;
  int64_t spontaneous_duplicates = 0;
  int64_t reordered_deliveries = 0;
  int64_t abandoned = 0;
  int complete_rounds = 0;
  int degraded_rounds = 0;
};

ChaosRun RunChaosRegime(const Topology& topology, const Workload& workload,
                        const ChannelRegime& regime, uint64_t readings_seed,
                        int rounds) {
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  RuntimeNetwork network(compiled, workload.functions);
  ChannelModel channel(regime.options);

  RetryPolicy retry;
  retry.max_attempts = 10;

  ChaosRun run;
  EventTrace trace;
  for (int round = 0; round < rounds; ++round) {
    ReadingGenerator readings(topology.node_count(),
                              readings_seed + static_cast<uint64_t>(round));
    std::ostringstream header;
    header << regime.name << " r" << round;
    trace.Append(header.str());
    RuntimeNetwork::LossyResult lossy = network.RunRoundLossy(
        readings.values(), channel.Bind(round), retry, {}, &trace);
    run.attempts += lossy.attempts;
    run.retransmissions += lossy.retransmissions;
    run.corrupt_frames += lossy.corrupt_frames;
    run.spontaneous_duplicates += lossy.spontaneous_duplicates;
    run.reordered_deliveries += lossy.reordered_deliveries;
    run.abandoned += lossy.messages_abandoned;
    if (lossy.incomplete_destinations.empty()) {
      run.complete_rounds += 1;
    } else {
      run.degraded_rounds += 1;
    }

    auto record_error = [&run, &regime, round](const std::string& what) {
      std::ostringstream os;
      os << regime.name << " r" << round << ": " << what;
      run.errors.push_back(os.str());
    };

    // Every alive destination must carry a coverage verdict that reconciles
    // with the task: complete <=> all sources accounted, coverage in [0,1],
    // and the exact contributor set (all tasks here are below the exact
    // threshold) must reproduce both the fingerprint and the value.
    for (const Task& task : workload.tasks) {
      const NodeId d = task.destination;
      auto cov_it = lossy.destination_coverage.find(d);
      if (cov_it == lossy.destination_coverage.end()) {
        record_error("destination missing coverage verdict");
        continue;
      }
      const auto& cov = cov_it->second;
      if (cov.expected != static_cast<int>(task.sources.size())) {
        record_error("expected-source count disagrees with the task");
      }
      if (cov.coverage < 0.0 || cov.coverage > 1.0) {
        record_error("coverage outside [0, 1]");
      }
      const bool completed = lossy.destination_values.contains(d);
      if (completed != cov.complete || completed != (cov.covered ==
                                                     cov.expected)) {
        record_error("complete verdict disagrees with delivery outcome");
      }
      if (!cov.exact_known) {
        record_error("exact set lost below the exact threshold");
        continue;
      }
      if (static_cast<int>(cov.sources.size()) != cov.covered ||
          XorFold(cov.sources) != cov.xor_fold) {
        record_error("source fingerprint disagrees with the exact set");
      }
      // The delivered-set oracle: covered sources alone must reproduce the
      // reported aggregate — complete values against the full task, degraded
      // values against exactly the contributors that got through.
      if (cov.covered == 0) {
        if (lossy.degraded_values.contains(d)) {
          record_error("value reported with zero contributors");
        }
        continue;
      }
      double oracle = SubsetOracle(workload.functions.Get(d), cov.sources,
                                   readings.values());
      double reported = completed ? lossy.destination_values.at(d)
                                  : lossy.degraded_values.at(d);
      if (!ValuesClose(reported, oracle)) {
        std::ostringstream os;
        os << "delivered-set oracle mismatch: got " << reported << " want "
           << oracle << " over " << cov.sources.size() << " sources";
        record_error(os.str());
      }
    }
  }
  run.trace = trace.ToString();
  return run;
}

// 20 seeds x 4 channel regimes: coverage-annotated aggregates reconcile
// exactly against the delivered-source oracle, corrupted frames never decode
// (a decoded corruption would break the oracle match), and replays are
// byte-identical.
class ChaosDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosDifferential, CoverageReconcilesUnderEveryRegime) {
  const uint64_t seed = GetParam();
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, seed * 17 + 3);
  const int kRounds = 4;

  for (const ChannelRegime& regime : ChannelRegimes(seed)) {
    ChaosRun run =
        RunChaosRegime(topology, workload, regime, seed + 500, kRounds);
    EXPECT_TRUE(run.errors.empty())
        << "seed " << seed << ": " << run.errors.front() << " ("
        << run.errors.size() << " total)";
    EXPECT_GT(run.attempts, 0) << regime.name;

    // Each regime must actually exercise its failure mode.
    if (regime.name == "burst") {
      EXPECT_GT(run.retransmissions, 0) << "seed " << seed;
    } else if (regime.name == "reorder") {
      EXPECT_GT(run.reordered_deliveries + run.retransmissions, 0)
          << "seed " << seed;
    } else if (regime.name == "duplicate") {
      EXPECT_GT(run.spontaneous_duplicates, 0) << "seed " << seed;
    } else if (regime.name == "corrupt") {
      EXPECT_GT(run.corrupt_frames, 0) << "seed " << seed;
    }

    // Determinism: the same seed replays byte-identically.
    ChaosRun replay =
        RunChaosRegime(topology, workload, regime, seed + 500, kRounds);
    EXPECT_EQ(run.trace, replay.trace) << "seed " << seed << " "
                                       << regime.name;
    EXPECT_EQ(run.attempts, replay.attempts) << regime.name;
    EXPECT_EQ(run.corrupt_frames, replay.corrupt_frames) << regime.name;
    EXPECT_EQ(run.reordered_deliveries, replay.reordered_deliveries)
        << regime.name;
    EXPECT_EQ(run.spontaneous_duplicates, replay.spontaneous_duplicates)
        << regime.name;
  }
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, ChaosDifferential,
                         ::testing::Range<uint64_t>(1, 21));

// --- Partition and rejoin -------------------------------------------------

FaultSchedule RejoinSchedule(const Topology& topology,
                             const Workload& workload, NodeId base,
                             uint64_t seed) {
  std::vector<NodeId> protected_nodes = Destinations(workload);
  if (std::find(protected_nodes.begin(), protected_nodes.end(), base) ==
      protected_nodes.end()) {
    protected_nodes.push_back(base);
  }
  FaultScheduleOptions options;
  options.rounds = 16;
  options.transient_link_fraction = 0.04;
  options.transient_drop_probability = 0.4;
  options.persistent_link_failures = 0;
  options.node_deaths = 1;
  options.node_recoveries = 1;
  options.recovery_delay_rounds = 5;
  options.seed = seed;
  return FaultSchedule::Generate(topology, protected_nodes, options);
}

struct RejoinRun {
  std::string trace;
  std::vector<std::string> value_mismatches;
  /// Node -> first round the ledger believed it dead / alive again.
  std::map<NodeId, int> first_believed_dead;
  std::map<NodeId, int> first_readmitted;
  std::vector<NodeId> final_believed_dead;
  std::unordered_map<NodeId, double> final_values;
  std::vector<NodeId> final_incomplete;
  int final_pending_installs = -1;
  int total_readmissions = 0;
  int64_t epoch_reconciliations = 0;
  std::optional<GlobalPlan> final_plan;
  Workload final_workload;
};

RejoinRun RunRejoin(const Topology& topology, const Workload& workload,
                    const FaultSchedule& schedule, NodeId base,
                    uint64_t readings_seed, int total_rounds) {
  EventTrace trace;
  trace.Append(schedule.Describe());
  obs::MetricsRegistry metrics;
  SelfHealingRuntime runtime(topology, workload, base, SelfHealingOptions{});
  runtime.set_metrics(&metrics);

  std::map<uint32_t, PlanExecutor> executors;
  executors.emplace(
      0u, PlanExecutor(std::make_shared<CompiledPlan>(runtime.compiled()),
                       runtime.current_workload().functions, EnergyModel{}));

  RejoinRun run;
  std::set<NodeId> believed_dead_before;
  for (int round = 0; round < total_rounds; ++round) {
    ReadingGenerator readings(topology.node_count(),
                              readings_seed + static_cast<uint64_t>(round));
    LossyLinkModel physical;
    physical.attempt_delivers = [&schedule, round](NodeId from, NodeId to,
                                                   int attempt) {
      return schedule.AttemptDelivers(round, from, to, attempt);
    };
    physical.node_alive = [&schedule, round](NodeId n) {
      return schedule.NodeAliveAt(round, n);
    };

    SelfHealingRoundResult result =
        runtime.RunRound(round, readings.values(), physical, &trace);
    run.total_readmissions += result.readmissions;
    if (result.replanned) {
      executors.emplace(
          runtime.base_epoch(),
          PlanExecutor(std::make_shared<CompiledPlan>(runtime.compiled()),
                       runtime.current_workload().functions, EnergyModel{}));
    }

    // Epoch-attributed differential: every completed value equals the
    // analytic executor of exactly the epoch it reports.
    std::map<uint32_t, std::unordered_map<NodeId, double>> analytic_by_epoch;
    for (const auto& [destination, value] : result.data.destination_values) {
      uint32_t epoch = result.data.destination_epochs.at(destination);
      auto [it, fresh] = analytic_by_epoch.try_emplace(epoch);
      if (fresh) {
        it->second = executors.at(epoch)
                         .RunRound(readings.values())
                         .destination_values;
      }
      auto oracle_it = it->second.find(destination);
      if (oracle_it == it->second.end() ||
          !ValuesClose(value, oracle_it->second)) {
        std::ostringstream mismatch;
        mismatch << "r" << round << " d" << destination << " epoch " << epoch
                 << " got " << value;
        run.value_mismatches.push_back(mismatch.str());
      }
    }

    std::set<NodeId> believed_dead_now;
    for (NodeId dead : runtime.ledger().believed_dead()) {
      believed_dead_now.insert(dead);
      run.first_believed_dead.try_emplace(dead, round);
    }
    for (NodeId was_dead : believed_dead_before) {
      if (!believed_dead_now.contains(was_dead)) {
        run.first_readmitted.try_emplace(was_dead, round);
      }
    }
    believed_dead_before = std::move(believed_dead_now);

    if (round == total_rounds - 1) {
      run.final_values = result.data.destination_values;
      run.final_incomplete = result.data.incomplete_destinations;
      run.final_pending_installs = result.pending_installs;
    }
  }
  run.final_believed_dead = runtime.ledger().believed_dead();
  run.epoch_reconciliations = metrics.Total("readmit.epoch_reconciliations");
  run.final_plan = runtime.plan();
  run.final_workload = runtime.current_workload();
  run.trace = trace.ToString();
  return run;
}

// A killed-then-recovered node must be detected, quarantined, readmitted
// within the probation budget, and re-enter the plan as a source — with the
// post-readmission plan equal to a from-scratch plan over the healed
// topology, and byte-identical replays.
class RejoinDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RejoinDifferential, RecoveredNodeIsReadmittedAndResumesAsSource) {
  const uint64_t seed = GetParam();
  Topology topology = MakeGreatDuckIslandLike();
  Workload workload = DefaultWorkload(topology, seed * 17 + 3);
  NodeId base = PickBaseStation(topology);

  // The schedule must contain the death/recovery pair this test is about; a
  // death drawn too close to the end drops its recovery (the fault becomes
  // permanent), so deterministically probe sub-seeds until the pair exists.
  std::optional<FaultEvent> death;
  std::optional<FaultEvent> recovery;
  FaultSchedule schedule;
  for (uint64_t sub = 0; sub < 16 && !recovery.has_value(); ++sub) {
    schedule = RejoinSchedule(topology, workload, base, seed * 97 + sub);
    death.reset();
    recovery.reset();
    for (const FaultEvent& event : schedule.events()) {
      if (event.type == FaultType::kNodeDeath) death = event;
      if (event.type == FaultType::kNodeRecover) recovery = event;
    }
  }
  ASSERT_TRUE(death.has_value()) << "seed " << seed;
  ASSERT_TRUE(recovery.has_value()) << "seed " << seed;
  ASSERT_EQ(death->a, recovery->a);

  const int total_rounds = schedule.options().rounds + 10;
  RejoinRun run =
      RunRejoin(topology, workload, schedule, base, seed + 1000, total_rounds);

  const DetectorOptions detector = SelfHealingOptions{}.detector;

  // Detection: believed dead within K + 2 rounds of the kill.
  auto dead_it = run.first_believed_dead.find(death->a);
  ASSERT_NE(dead_it, run.first_believed_dead.end())
      << "seed " << seed << ": node " << death->a << " never believed dead";
  EXPECT_LE(dead_it->second,
            death->round + detector.suspicion_threshold + 2)
      << "seed " << seed;

  // Readmission: believed alive again within probation + K + 2 rounds of
  // the recovery (probation hysteresis + control-plane propagation).
  auto readmit_it = run.first_readmitted.find(death->a);
  ASSERT_NE(readmit_it, run.first_readmitted.end())
      << "seed " << seed << ": node " << death->a << " never readmitted";
  EXPECT_LE(readmit_it->second,
            recovery->round + detector.probation_rounds +
                detector.suspicion_threshold + 2)
      << "seed " << seed << ": readmission too slow (recovered r"
      << recovery->round << ", readmitted r" << readmit_it->second << ")";
  EXPECT_GT(run.total_readmissions, 0) << "seed " << seed;
  // Lineage reconciliation: the rejoiner's tables are unknown after its
  // reboot, so its readmission replan must force a full framed image even
  // when the image diff sees no content change.
  EXPECT_GE(run.epoch_reconciliations, 1) << "seed " << seed;

  // The network ends with no residual beliefs: everything recovered.
  EXPECT_TRUE(run.final_believed_dead.empty()) << "seed " << seed;
  EXPECT_EQ(run.final_pending_installs, 0) << "seed " << seed;
  EXPECT_TRUE(run.value_mismatches.empty())
      << "seed " << seed << ": " << run.value_mismatches.front();

  // The readmitted node resumed as a source: the believed workload equals
  // the original (all sources back), and the post-readmission plan equals a
  // from-scratch plan over the healed topology.
  ASSERT_EQ(run.final_workload.tasks.size(), workload.tasks.size());
  for (size_t t = 0; t < workload.tasks.size(); ++t) {
    EXPECT_EQ(run.final_workload.tasks[t].sources, workload.tasks[t].sources)
        << "seed " << seed << " task " << t;
  }
  PathSystem paths(topology);
  GlobalPlan oracle_plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  std::vector<std::string> divergence =
      FindPlanDivergence(*run.final_plan, oracle_plan);
  EXPECT_TRUE(divergence.empty())
      << "seed " << seed << ": " << divergence.front();
  EXPECT_TRUE(ValidatePlanConsistency(*run.final_plan)) << "seed " << seed;

  // Converged values match the healed-topology oracle.
  EXPECT_TRUE(run.final_incomplete.empty()) << "seed " << seed;
  PlanExecutor oracle(std::make_shared<CompiledPlan>(CompiledPlan::Compile(
                          oracle_plan, workload.functions)),
                      workload.functions, EnergyModel{});
  ReadingGenerator final_readings(
      topology.node_count(),
      seed + 1000 + static_cast<uint64_t>(total_rounds - 1));
  RoundResult oracle_round = oracle.RunRound(final_readings.values());
  for (const auto& [destination, value] : run.final_values) {
    auto it = oracle_round.destination_values.find(destination);
    ASSERT_NE(it, oracle_round.destination_values.end())
        << "seed " << seed << " destination " << destination;
    EXPECT_TRUE(ValuesClose(value, it->second))
        << "seed " << seed << " destination " << destination;
  }

  // Determinism: byte-identical replay.
  RejoinRun replay =
      RunRejoin(topology, workload, schedule, base, seed + 1000, total_rounds);
  EXPECT_EQ(run.trace, replay.trace) << "seed " << seed;
  EXPECT_EQ(run.total_readmissions, replay.total_readmissions);
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, RejoinDifferential,
                         ::testing::Range<uint64_t>(1, 21));

// --- Channel model unit tests ---------------------------------------------

TEST(ChannelModelTest, CollapsesToBernoulliWithoutBurstState) {
  ChannelOptions options;
  options.good_loss = 0.0;
  options.p_enter_bad = 0.0;
  ChannelModel clean(options);
  int delivered = 0;
  for (int attempt = 1; attempt <= 200; ++attempt) {
    EXPECT_FALSE(clean.InBurst(0, 1, 2, attempt));
    delivered += clean.AttemptDelivers(0, 1, 2, attempt) ? 1 : 0;
  }
  EXPECT_EQ(delivered, 200);  // Lossless when good_loss = 0.

  options.good_loss = 1.0;
  ChannelModel dead(options);
  for (int attempt = 1; attempt <= 50; ++attempt) {
    EXPECT_FALSE(dead.AttemptDelivers(0, 1, 2, attempt));
  }
}

TEST(ChannelModelTest, BurstsClusterLossesAndExitEventually) {
  ChannelOptions options;
  options.good_loss = 0.0;
  options.bad_loss = 1.0;
  options.p_enter_bad = 0.1;
  options.p_exit_bad = 0.3;
  options.seed = 7;
  ChannelModel channel(options);
  // With loss fully determined by the chain state, every drop must coincide
  // with InBurst, and both states must be visited over a long horizon.
  int burst_attempts = 0;
  for (int attempt = 1; attempt <= 2000; ++attempt) {
    bool burst = channel.InBurst(3, 4, 5, attempt);
    EXPECT_EQ(channel.AttemptDelivers(3, 4, 5, attempt), !burst)
        << "attempt " << attempt;
    burst_attempts += burst ? 1 : 0;
  }
  EXPECT_GT(burst_attempts, 0);
  EXPECT_LT(burst_attempts, 2000);
  // Stationary share of the bad state is p_enter/(p_enter+p_exit) = 0.25;
  // the observed share over 2000 attempts must be in the right ballpark.
  EXPECT_GT(burst_attempts, 2000 / 10);
  EXPECT_LT(burst_attempts, 2000 / 2);
}

TEST(ChannelModelTest, DecisionsAreDeterministicAndSeedSensitive) {
  ChannelOptions options;
  options.good_loss = 0.3;
  options.p_enter_bad = 0.05;
  options.duplicate_probability = 0.2;
  options.corrupt_probability = 0.2;
  options.delay_probability = 0.4;
  options.max_delay_ticks = 3;
  options.seed = 11;
  ChannelModel a(options);
  ChannelModel b(options);
  options.seed = 12;
  ChannelModel c(options);
  bool differs = false;
  for (int round = 0; round < 4; ++round) {
    for (int attempt = 1; attempt <= 40; ++attempt) {
      EXPECT_EQ(a.AttemptDelivers(round, 1, 2, attempt),
                b.AttemptDelivers(round, 1, 2, attempt));
      HopEffects ea = a.EffectsFor(round, 1, 2, attempt);
      HopEffects eb = b.EffectsFor(round, 1, 2, attempt);
      EXPECT_EQ(ea.delay_ticks, eb.delay_ticks);
      EXPECT_EQ(ea.duplicate, eb.duplicate);
      EXPECT_EQ(ea.corrupt, eb.corrupt);
      EXPECT_EQ(ea.corrupt_bit, eb.corrupt_bit);
      EXPECT_LE(ea.delay_ticks, options.max_delay_ticks);
      if (a.AttemptDelivers(round, 1, 2, attempt) !=
          c.AttemptDelivers(round, 1, 2, attempt)) {
        differs = true;
      }
    }
  }
  EXPECT_TRUE(differs) << "different seeds produced identical channels";
}

TEST(ChannelModelTest, ReverseExtraLossIsAsymmetric) {
  ChannelOptions options;
  options.good_loss = 0.0;
  options.reverse_extra_loss = 1.0;  // Reverse hops (from > to) never pass.
  ChannelModel channel(options);
  for (int attempt = 1; attempt <= 50; ++attempt) {
    EXPECT_TRUE(channel.AttemptDelivers(0, 1, 2, attempt));
    EXPECT_FALSE(channel.AttemptDelivers(0, 2, 1, attempt));
  }
}

// --- CRC rejection --------------------------------------------------------

// Linearity of CRC32 guarantees every single-bit flip is detected; the
// channel's corruption effect relies on exactly this, so pin it per bit
// position over a realistic payload.
TEST(CrcRejectionTest, EverySingleBitFlipIsRejected) {
  std::vector<uint8_t> payload;
  for (int i = 0; i < 24; ++i) {
    payload.push_back(static_cast<uint8_t>(i * 37 + 5));
  }
  std::vector<uint8_t> frame = wire::FrameWithCrc32(payload);
  ASSERT_TRUE(wire::TryOpenCrc32Frame(frame).has_value());
  ASSERT_EQ(*wire::TryOpenCrc32Frame(frame), payload);
  for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::vector<uint8_t> corrupted = frame;
    corrupted[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(wire::TryOpenCrc32Frame(corrupted).has_value())
        << "bit " << bit << " flip went undetected";
  }
}

}  // namespace
}  // namespace m2m
