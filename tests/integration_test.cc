#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/system.h"
#include "sim/failure.h"
#include "sim/readings.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

// End-to-end sweep: (strategy, aggregate kind, seed) — each combination must
// produce a consistent plan whose executor verifies all destination values.
using SweepParam = std::tuple<PlanStrategy, AggregateKind, uint64_t>;

class EndToEndSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EndToEndSweep, PlanExecutesAndVerifies) {
  auto [strategy, kind, seed] = GetParam();
  Topology topo = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 8;
  spec.sources_per_destination = 6;
  spec.kind = kind;
  spec.seed = seed;
  Workload wl = GenerateWorkload(topo, spec);
  SystemOptions options;
  options.planner.strategy = strategy;
  System system(topo, wl, options);
  EXPECT_TRUE(ValidatePlanConsistency(system.plan()));
  ReadingGenerator gen(topo.node_count(), seed + 1000);
  // RunRound internally CHECKs the distributed aggregates against direct
  // evaluation; reaching the assertions below means verification passed.
  RoundResult result = system.MakeExecutor().RunRound(gen.values());
  EXPECT_EQ(result.destination_values.size(), wl.tasks.size());
  EXPECT_GT(result.energy_mj, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesKindsSeeds, EndToEndSweep,
    ::testing::Combine(
        ::testing::Values(PlanStrategy::kOptimal,
                          PlanStrategy::kMulticastOnly,
                          PlanStrategy::kAggregationOnly),
        ::testing::Values(AggregateKind::kWeightedSum,
                          AggregateKind::kWeightedAverage,
                          AggregateKind::kWeightedStdDev, AggregateKind::kMin,
                          AggregateKind::kMax, AggregateKind::kCount,
                          AggregateKind::kCountAbove, AggregateKind::kArgMax),
        ::testing::Values(101u, 102u)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return ToString(std::get<0>(info.param)) + "_" +
             ToString(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

// Topology sweep: the full pipeline works on grids, uniform and clustered
// layouts, not just the GDI-like default.
class TopologySweep : public ::testing::TestWithParam<int> {};

TEST_P(TopologySweep, PipelineRunsOnVariousTopologies) {
  Topology topo = [&]() -> Topology {
    switch (GetParam()) {
      case 0:
        return MakeGrid(8, 8, 40.0, 50.0);
      case 1:
        return MakeUniformRandom(60, Area{250.0, 250.0}, 50.0, 5);
      case 2:
        return MakeClustered(60, 5, Area{300.0, 300.0}, 25.0, 50.0, 6);
      default:
        return MakeGreatDuckIslandLike();
    }
  }();
  WorkloadSpec spec;
  spec.destination_count = 8;
  spec.sources_per_destination = 6;
  spec.seed = 300 + GetParam();
  Workload wl = GenerateWorkload(topo, spec);
  System system(topo, wl);
  ReadingGenerator gen(topo.node_count(), 17);
  RoundResult result = system.MakeExecutor().RunRound(gen.values());
  EXPECT_EQ(result.destination_values.size(), wl.tasks.size());
}

INSTANTIATE_TEST_SUITE_P(Topologies, TopologySweep,
                         ::testing::Values(0, 1, 2, 3));

TEST(DynamicAdaptationTest, PlanSurvivesWorkloadChurn) {
  // Repeatedly add and remove sources; the incrementally updated plan must
  // always equal a fresh rebuild and keep executing correctly.
  Topology topo = MakeGreatDuckIslandLike();
  PathSystem paths(topo);
  WorkloadSpec spec;
  spec.destination_count = 8;
  spec.sources_per_destination = 6;
  spec.seed = 400;
  Workload wl = GenerateWorkload(topo, spec);
  auto forest = std::make_shared<MulticastForest>(paths, wl.tasks);
  GlobalPlan plan = BuildPlan(forest, wl.functions, {});
  Rng rng(401);
  for (int step = 0; step < 6; ++step) {
    NodeId d = wl.tasks[rng.UniformInt(wl.tasks.size())].destination;
    // Find the task for d.
    const Task* task = nullptr;
    for (const Task& t : wl.tasks) {
      if (t.destination == d) task = &t;
    }
    ASSERT_NE(task, nullptr);
    if (step % 2 == 0 && task->sources.size() > 2) {
      wl = WithSourceRemoved(wl, task->sources[0], d);
    } else {
      NodeId fresh = kInvalidNode;
      for (NodeId n = 0; n < topo.node_count() && fresh == kInvalidNode;
           ++n) {
        if (n != d && std::find(task->sources.begin(), task->sources.end(),
                                n) == task->sources.end()) {
          fresh = n;
        }
      }
      ASSERT_NE(fresh, kInvalidNode);
      wl = WithSourceAdded(wl, fresh, d, 1.0);
    }
    forest = std::make_shared<MulticastForest>(paths, wl.tasks);
    UpdateStats stats;
    plan = UpdatePlan(plan, forest, wl.functions, &stats);
    GlobalPlan fresh_plan = BuildPlan(forest, wl.functions, plan.options());
    EXPECT_EQ(plan.edge_plans(), fresh_plan.edge_plans()) << "step " << step;
    EXPECT_TRUE(ValidatePlanConsistency(plan));
    EXPECT_GT(stats.edges_reused, 0) << "step " << step;
  }
  // Still executes correctly after all the churn.
  CompiledPlan compiled = CompiledPlan::Compile(plan, wl.functions);
  PlanExecutor executor(std::make_shared<CompiledPlan>(compiled),
                        wl.functions, EnergyModel{});
  ReadingGenerator gen(topo.node_count(), 402);
  RoundResult result = executor.RunRound(gen.values());
  EXPECT_EQ(result.destination_values.size(), wl.tasks.size());
}

TEST(FailureHandlingTest, AllLinksUpDeliversEverything) {
  Topology topo = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 8;
  spec.sources_per_destination = 6;
  spec.seed = 500;
  Workload wl = GenerateWorkload(topo, spec);
  System system(topo, wl);
  LinkOutcome all_up = LinkOutcome::AllUp(topo);
  FailureRoundResult result = RunRoundWithFailures(
      system.compiled(), wl.functions, topo, all_up, EnergyModel{});
  EXPECT_EQ(result.messages_delivered, result.messages_attempted);
  EXPECT_EQ(result.destinations_complete, result.destinations_total);
}

TEST(FailureHandlingTest, MilestoneRoutingSurvivesLinkFailuresBetter) {
  Topology topo = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 10;
  spec.sources_per_destination = 8;
  spec.seed = 501;
  Workload wl = GenerateWorkload(topo, spec);
  LinkStabilityModel stability(topo, 9);

  System pinned(topo, wl);  // Every hop pinned.
  SystemOptions flexible_options;
  flexible_options.milestones =
      MilestoneSelector::StabilityThreshold(topo, stability, 0.86);
  System flexible(topo, wl, flexible_options);

  Rng rng(502);
  int64_t pinned_complete = 0;
  int64_t flexible_complete = 0;
  for (int round = 0; round < 30; ++round) {
    LinkOutcome links = LinkOutcome::Sample(topo, stability, rng);
    pinned_complete += RunRoundWithFailures(pinned.compiled(), wl.functions,
                                            topo, links, EnergyModel{})
                           .destinations_complete;
    flexible_complete +=
        RunRoundWithFailures(flexible.compiled(), wl.functions, topo, links,
                             EnergyModel{})
            .destinations_complete;
  }
  // Routing flexibility between milestones must improve delivery.
  EXPECT_GT(flexible_complete, pinned_complete);
}

TEST(FailureHandlingTest, SingleDownLinkOnlyBreaksAffectedRoutes) {
  Topology topo = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 6;
  spec.sources_per_destination = 5;
  spec.seed = 503;
  Workload wl = GenerateWorkload(topo, spec);
  System system(topo, wl);
  // Kill the first forest edge's physical link.
  const ForestEdge& victim = system.forest().edges()[0];
  LinkOutcome links = LinkOutcome::AllUp(topo);
  links.TakeDown(victim.segment[0], victim.segment[1]);
  FailureRoundResult result = RunRoundWithFailures(
      system.compiled(), wl.functions, topo, links, EnergyModel{});
  EXPECT_LT(result.messages_delivered, result.messages_attempted);
  EXPECT_GT(result.destinations_complete, 0);
}

TEST(FailureHandlingTest, BackupRelayImprovesDelivery) {
  Topology topo = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 10;
  spec.sources_per_destination = 8;
  spec.seed = 504;
  Workload wl = GenerateWorkload(topo, spec);
  System system(topo, wl);
  LinkStabilityModel stability(topo, 13);
  Rng rng(505);
  int64_t plain = 0;
  int64_t redundant = 0;
  int64_t total = 0;
  RedundancyOptions with_backup;
  with_backup.backup_relay = true;
  for (int round = 0; round < 30; ++round) {
    LinkOutcome links = LinkOutcome::Sample(topo, stability, rng);
    FailureRoundResult base = RunRoundWithFailures(
        system.compiled(), wl.functions, topo, links, EnergyModel{});
    FailureRoundResult backed = RunRoundWithFailures(
        system.compiled(), wl.functions, topo, links, EnergyModel{},
        with_backup);
    plain += base.contributions_delivered;
    redundant += backed.contributions_delivered;
    total += base.contributions_total;
    // Redundancy never loses deliveries on the same outcome.
    EXPECT_GE(backed.contributions_delivered, base.contributions_delivered);
    EXPECT_GE(backed.messages_delivered, base.messages_delivered);
  }
  EXPECT_GT(redundant, plain);
  EXPECT_GT(total, 0);
}

TEST(FailureHandlingTest, BackupRelaySavesSpecificDownLink) {
  Topology topo = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 6;
  spec.sources_per_destination = 5;
  spec.seed = 506;
  Workload wl = GenerateWorkload(topo, spec);
  System system(topo, wl);
  // Find a one-hop edge whose endpoints share a neighbor.
  const ForestEdge* victim = nullptr;
  for (const ForestEdge& edge : system.forest().edges()) {
    if (edge.hop_length() != 1) continue;
    for (NodeId k : topo.neighbors(edge.edge.tail)) {
      if (k != edge.edge.head && topo.AreNeighbors(k, edge.edge.head)) {
        victim = &edge;
        break;
      }
    }
    if (victim != nullptr) break;
  }
  ASSERT_NE(victim, nullptr);
  LinkOutcome links = LinkOutcome::AllUp(topo);
  links.TakeDown(victim->edge.tail, victim->edge.head);
  FailureRoundResult plain = RunRoundWithFailures(
      system.compiled(), wl.functions, topo, links, EnergyModel{});
  RedundancyOptions with_backup;
  with_backup.backup_relay = true;
  FailureRoundResult backed = RunRoundWithFailures(
      system.compiled(), wl.functions, topo, links, EnergyModel{},
      with_backup);
  EXPECT_LT(plain.messages_delivered, plain.messages_attempted);
  EXPECT_EQ(backed.messages_delivered, backed.messages_attempted);
  EXPECT_EQ(backed.destinations_complete, backed.destinations_total);
}

TEST(PublicApiTest, UmbrellaHeaderQuickstartCompilesAndRuns) {
  // Mirrors the snippet in core/m2m.h and README.
  Topology topo = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 14;
  spec.sources_per_destination = 20;
  Workload wl = GenerateWorkload(topo, spec);
  System system(topo, wl);
  PlanExecutor executor = system.MakeExecutor();
  ReadingGenerator gen(topo.node_count(), 7);
  gen.Advance(1.0);
  RoundResult round = executor.RunRound(gen.values());
  EXPECT_EQ(round.destination_values.size(), 14u);
}

}  // namespace
}  // namespace m2m
