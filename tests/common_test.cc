#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/relation.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace m2m {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  EXPECT_EQ(SplitMix64(42), SplitMix64(42));
  EXPECT_NE(SplitMix64(42), SplitMix64(43));
}

TEST(SplitMix64Test, MixesNearbyInputs) {
  // Consecutive inputs should differ in many bits.
  uint64_t a = SplitMix64(1000);
  uint64_t b = SplitMix64(1001);
  int differing = __builtin_popcountll(a ^ b);
  EXPECT_GT(differing, 16);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7);
  Rng b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    double v = rng.UniformDouble(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(7);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(8);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) stat.Add(rng.Gaussian());
  EXPECT_NEAR(stat.mean(), 0.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ShuffleChangesOrderEventually) {
  Rng rng(10);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // Probability 1/10! of flaking.
}

TEST(RngTest, SampleDiscreteHonorsZeroWeights) {
  Rng rng(11);
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.SampleDiscrete(weights), 1u);
  }
}

TEST(RngTest, SampleDiscreteProportions) {
  Rng rng(12);
  std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) ones += (rng.SampleDiscrete(weights) == 1);
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.75, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(13);
  Rng fork = a.Fork(1);
  Rng b(13);
  Rng fork_b = b.Fork(1);
  // Forks of identical parents with identical labels agree...
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fork.Next(), fork_b.Next());
  // ...and differ for different labels.
  Rng c(13);
  Rng fork_c = c.Fork(2);
  Rng d(13);
  Rng fork_d = d.Fork(1);
  int equal = 0;
  for (int i = 0; i < 50; ++i) equal += (fork_c.Next() == fork_d.Next());
  EXPECT_LT(equal, 3);
}

TEST(RunningStatTest, Empty) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat stat;
  stat.Add(4.0);
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_DOUBLE_EQ(stat.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stat.min(), 4.0);
  EXPECT_DOUBLE_EQ(stat.max(), 4.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, KnownSequence) {
  RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(v);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 4.0);  // Population variance.
  EXPECT_DOUBLE_EQ(stat.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(RunningStatTest, MergeMatchesCombinedStream) {
  RunningStat all;
  RunningStat left;
  RunningStat right;
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    double v = rng.UniformDouble(-5.0, 5.0);
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat stat;
  stat.Add(1.0);
  stat.Add(3.0);
  RunningStat empty;
  stat.Merge(empty);
  EXPECT_EQ(stat.count(), 2u);
  EXPECT_DOUBLE_EQ(stat.mean(), 2.0);
  empty.Merge(stat);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(PercentileTest, MedianAndExtremes) {
  std::vector<double> samples{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 100.0), 5.0);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> samples{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(samples, 25.0), 2.5);
}

TEST(TableTest, PrintsAlignedColumnsAndCsv) {
  Table table({"x", "value"});
  table.AddRow({"1", Table::Num(3.14159, 2)});
  table.AddRow({"10", Table::Num(2.0, 2)});
  std::ostringstream text;
  table.Print(text);
  EXPECT_NE(text.str().find("3.14"), std::string::npos);
  EXPECT_NE(text.str().find("value"), std::string::npos);
  std::ostringstream csv;
  table.PrintCsv(csv);
  EXPECT_NE(csv.str().find("x,value"), std::string::npos);
  EXPECT_NE(csv.str().find("1,3.14"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableTest, NumPrecision) {
  EXPECT_EQ(Table::Num(1.23456, 3), "1.235");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(RelationTest, TasksToPairsFlattens) {
  std::vector<Task> tasks{{10, {1, 2}}, {20, {2, 3}}};
  std::vector<SourceDestPair> pairs = TasksToPairs(tasks);
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0], (SourceDestPair{1, 10}));
  EXPECT_EQ(pairs[3], (SourceDestPair{3, 20}));
}

TEST(CheckTest, FailingCheckAborts) {
  EXPECT_DEATH({ M2M_CHECK(1 == 2) << "context"; }, "CHECK failed");
}

TEST(CheckTest, PassingCheckIsSilent) {
  M2M_CHECK(true);
  M2M_CHECK_EQ(2 + 2, 4);
  M2M_CHECK_LT(1, 2);
  SUCCEED();
}

TEST(IdsTest, DirectedEdgeOrderingAndHash) {
  DirectedEdge a{1, 2};
  DirectedEdge b{2, 1};
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_NE(DirectedEdgeHash()(a), DirectedEdgeHash()(b));
}

}  // namespace
}  // namespace m2m
