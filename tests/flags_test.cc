#include <gtest/gtest.h>

#include "common/flags.h"

namespace m2m {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser flags = Parse({"--name=alice", "--count=5", "--ratio=0.5"});
  EXPECT_EQ(flags.GetString("name", "bob", ""), "alice");
  EXPECT_EQ(flags.GetInt("count", 1, ""), 5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 1.0, ""), 0.5);
}

TEST(FlagsTest, SpaceSyntax) {
  FlagParser flags = Parse({"--name", "alice", "--count", "7"});
  EXPECT_EQ(flags.GetString("name", "bob", ""), "alice");
  EXPECT_EQ(flags.GetInt("count", 1, ""), 7);
}

TEST(FlagsTest, BareFlagIsBooleanTrue) {
  FlagParser flags = Parse({"--verbose", "--quiet=false"});
  EXPECT_TRUE(flags.GetBool("verbose", false, ""));
  EXPECT_FALSE(flags.GetBool("quiet", true, ""));
  EXPECT_TRUE(flags.GetBool("missing", true, ""));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  FlagParser flags = Parse({});
  EXPECT_EQ(flags.GetString("name", "bob", ""), "bob");
  EXPECT_EQ(flags.GetInt("count", 42, ""), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 2.5, ""), 2.5);
}

TEST(FlagsTest, NegativeAndScientificNumbers) {
  FlagParser flags = Parse({"--offset=-3", "--epsilon=1e-3"});
  EXPECT_EQ(flags.GetInt("offset", 0, ""), -3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("epsilon", 0.0, ""), 1e-3);
}

TEST(FlagsTest, MalformedNumberAborts) {
  FlagParser flags = Parse({"--count=five"});
  EXPECT_DEATH(flags.GetInt("count", 1, ""), "expects an integer");
}

TEST(FlagsTest, HelpDetected) {
  EXPECT_TRUE(Parse({"--help"}).help_requested());
  EXPECT_TRUE(Parse({"-h"}).help_requested());
  EXPECT_FALSE(Parse({"--x=1"}).help_requested());
}

TEST(FlagsTest, PositionalCollected) {
  FlagParser flags = Parse({"input.txt", "--count=2", "other"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.txt", "other"}));
}

TEST(FlagsTest, UnconsumedFlagsReported) {
  FlagParser flags = Parse({"--known=1", "--typo=2"});
  flags.GetInt("known", 0, "");
  std::vector<std::string> unknown = flags.UnconsumedFlags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagsTest, UsageListsRegisteredFlags) {
  FlagParser flags = Parse({});
  flags.GetInt("count", 42, "how many things");
  std::string usage = flags.Usage("test program");
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("how many things"), std::string::npos);
  EXPECT_NE(usage.find("42"), std::string::npos);
}

}  // namespace
}  // namespace m2m
