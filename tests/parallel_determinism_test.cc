// Concurrency differential suite: the thread-pool execution core must be
// unobservable in every output. Each scenario runs once serially (1 thread)
// and once per parallel configuration ({2, 8} threads, adversarial shard
// geometries), over 20 seeds, and asserts byte-identical artifacts:
// compiled-plan wire images, analytic round results (hexfloat — bit-exact
// doubles), lossy/channel round traces, `m2m.metrics.v1` JSON snapshots,
// self-healing fault-schedule traces, and lifecycle churn images. A single
// differing byte anywhere fails: parallelism is a scheduling choice, never
// a semantic one (docs/THEORY.md section 12).

#include <gtest/gtest.h>

#include <cstdint>
#include <iomanip>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "fault_test_util.h"
#include "lifecycle/churn_schedule.h"
#include "lifecycle/lifecycle.h"
#include "obs/metrics.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "plan/serialization.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "runtime/channel.h"
#include "runtime/network.h"
#include "sim/executor.h"
#include "sim/fault_schedule.h"
#include "sim/readings.h"
#include "topology/generator.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {
namespace {

using fault_test::Destinations;

constexpr int kSeeds = 20;
constexpr int kThreadCounts[] = {2, 8};

Topology TestTopology(uint64_t seed) {
  return MakeUniformRandom(56, Area{110.0, 190.0}, kDefaultRadioRangeM,
                           0xA5EED + seed);
}

Workload TestWorkload(const Topology& topology, uint64_t seed) {
  WorkloadSpec spec;
  spec.destination_count = 4;
  spec.sources_per_destination = 5;
  spec.max_hops = 4;
  spec.seed = seed;
  return GenerateWorkload(topology, spec);
}

void AppendHex(std::ostringstream& out, double v) {
  out << std::hexfloat << v << std::defaultfloat << ";";
}

std::string ImageBytes(const std::vector<std::vector<uint8_t>>& images) {
  std::string bytes;
  for (const std::vector<uint8_t>& image : images) {
    bytes.append(image.begin(), image.end());
    bytes.push_back('|');
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Scenario fingerprints. Each returns a byte string that must be invariant
// under the active parallelism configuration.

// Planner: fresh solve, then an incremental replan after a workload edit
// (parallel per-edge solves + parallel signature probes), both serialized
// to wire images.
std::string PlanFingerprint(uint64_t seed) {
  Topology topology = TestTopology(seed);
  Workload workload = TestWorkload(topology, seed);
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  std::ostringstream out;
  out << ImageBytes(EncodeAllNodeStates(compiled, workload.functions));

  // Drop one source from the first task and replan incrementally.
  const Task& first = workload.tasks.front();
  Workload edited =
      WithSourceRemoved(workload, first.sources.front(), first.destination);
  UpdateStats stats;
  GlobalPlan patched = ReplanForWorkload(plan, paths, edited.tasks,
                                         edited.functions, &stats);
  CompiledPlan repatched =
      CompiledPlan::Compile(patched, edited.functions,
                            MergePolicy::kGreedyMergePerEdge, 1);
  out << "reused=" << stats.edges_reused
      << " reopt=" << stats.edges_reoptimized << "|"
      << ImageBytes(EncodeAllNodeStates(repatched, edited.functions));
  return out.str();
}

// Analytic executor: per-task sharded full rounds, unicast and broadcast.
std::string AnalyticFingerprint(uint64_t seed) {
  Topology topology = TestTopology(seed);
  Workload workload = TestWorkload(topology, seed);
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  auto compiled = std::make_shared<CompiledPlan>(
      CompiledPlan::Compile(plan, workload.functions));
  PlanExecutor executor(compiled, workload.functions, EnergyModel{});

  std::ostringstream out;
  for (int round = 0; round < 4; ++round) {
    ReadingGenerator readings(topology.node_count(),
                              seed * 100 + static_cast<uint64_t>(round));
    TransmissionOptions options;
    options.use_broadcast = (round % 2 == 1);
    RoundResult result = executor.RunRound(readings.values(), options);
    out << "r" << round << " msgs=" << result.messages
        << " phys=" << result.physical_transmissions
        << " units=" << result.units << " bytes=" << result.payload_bytes
        << " e=";
    AppendHex(out, result.energy_mj);
    for (double e : result.node_energy_mj) AppendHex(out, e);
    std::map<NodeId, double> ordered(result.destination_values.begin(),
                                     result.destination_values.end());
    for (const auto& [d, v] : ordered) {
      out << " d" << d << "=";
      AppendHex(out, v);
    }
    out << "\n";
  }
  return out.str();
}

// Byte-accurate runtime: plain rounds and adversarial-channel lossy rounds,
// with the typed round trace and the metrics registry snapshot folded in.
std::string RuntimeFingerprint(uint64_t seed) {
  Topology topology = TestTopology(seed);
  Workload workload = TestWorkload(topology, seed);
  PathSystem paths(topology);
  GlobalPlan plan = BuildPlan(
      std::make_shared<MulticastForest>(paths, workload.tasks),
      workload.functions);
  CompiledPlan compiled = CompiledPlan::Compile(plan, workload.functions);
  RuntimeNetwork network(compiled, workload.functions);
  obs::MetricsRegistry metrics;
  network.set_metrics(&metrics);

  std::ostringstream out;
  for (int round = 0; round < 2; ++round) {
    ReadingGenerator readings(topology.node_count(),
                              seed * 200 + static_cast<uint64_t>(round));
    RuntimeNetwork::Result result = network.RunRound(readings.values());
    out << "plain r" << round << " packets=" << result.packets
        << " bytes=" << result.payload_bytes << " e=";
    AppendHex(out, result.energy_mj);
    std::map<NodeId, double> ordered(result.destination_values.begin(),
                                     result.destination_values.end());
    for (const auto& [d, v] : ordered) {
      out << " d" << d << "=";
      AppendHex(out, v);
    }
    out << "\n";
  }

  // Adversarial channel: bursts, reordering, duplication and corruption in
  // one regime, so every deferred-effect kind replays.
  ChannelOptions channel_options;
  channel_options.good_loss = 0.08;
  channel_options.bad_loss = 0.8;
  channel_options.p_enter_bad = 0.08;
  channel_options.p_exit_bad = 0.3;
  channel_options.delay_probability = 0.3;
  channel_options.max_delay_ticks = 3;
  channel_options.duplicate_probability = 0.15;
  channel_options.corrupt_probability = 0.1;
  channel_options.seed = seed * 31 + 7;
  ChannelModel channel(channel_options);
  RetryPolicy retry;
  retry.max_attempts = 10;
  EventTrace trace;
  for (int round = 0; round < 3; ++round) {
    ReadingGenerator readings(topology.node_count(),
                              seed * 300 + static_cast<uint64_t>(round));
    RuntimeNetwork::LossyResult lossy = network.RunRoundLossy(
        readings.values(), channel.Bind(round), retry, {}, &trace);
    out << "lossy r" << round << " attempts=" << lossy.attempts
        << " deliv=" << lossy.deliveries << " dup=" << lossy.duplicates
        << " retx=" << lossy.retransmissions
        << " corrupt=" << lossy.corrupt_frames
        << " spont=" << lossy.spontaneous_duplicates
        << " reord=" << lossy.reordered_deliveries
        << " bytes=" << lossy.payload_bytes << " ticks=" << lossy.final_tick
        << " e=";
    AppendHex(out, lossy.energy_mj);
    std::map<NodeId, double> ordered(lossy.destination_values.begin(),
                                     lossy.destination_values.end());
    for (const auto& [d, v] : ordered) {
      out << " d" << d << "=";
      AppendHex(out, v);
    }
    out << "\n";
  }
  out << trace.ToString() << metrics.ToJson();
  return out.str();
}

// Self-healing: in-band failure detection, control plane, incremental
// replans — the full fault-schedule differential harness's byte trace.
std::string SelfHealingFingerprint(uint64_t seed) {
  Topology topology = TestTopology(seed);
  Workload workload = TestWorkload(topology, seed);
  FaultScheduleOptions options;
  options.rounds = 5;
  options.persistent_link_failures = 2;
  options.node_deaths = 1;
  options.seed = seed * 17 + 3;
  FaultSchedule schedule =
      FaultSchedule::Generate(topology, Destinations(workload), options);
  fault_test::FaultRunResult run =
      fault_test::RunFaultSchedule(topology, workload, schedule, seed * 7);
  EXPECT_TRUE(run.value_mismatches.empty());
  EXPECT_TRUE(run.replan_divergences.empty());
  std::ostringstream out;
  out << run.trace;
  std::map<NodeId, double> ordered(run.final_values.begin(),
                                   run.final_values.end());
  for (const auto& [d, v] : ordered) {
    out << " d" << d << "=";
    AppendHex(out, v);
  }
  return out.str();
}

// Lifecycle churn: scheduled admissions/retirements/source edits through
// the manager's incremental replans, fingerprinting the shipped images and
// the qlm.* metrics.
std::string ChurnFingerprint(uint64_t seed) {
  Topology topology = TestTopology(seed);
  Workload initial = TestWorkload(topology, seed);
  const NodeId base = 0;
  ChurnScheduleOptions options;
  options.seed = seed * 13 + 5;
  std::vector<NodeId> forbidden = Destinations(initial);
  forbidden.push_back(base);
  ChurnSchedule schedule =
      ChurnSchedule::Generate(topology, initial, forbidden, options);

  QueryLifecycleManager manager(topology, initial, base);
  obs::MetricsRegistry metrics;
  manager.set_metrics(&metrics);
  std::ostringstream out;
  for (int round = 0; round < options.rounds; ++round) {
    for (const ChurnEvent& event : schedule.EventsAt(round)) {
      MutationResult result = ApplyChurnEvent(manager, event);
      out << "r" << round << " " << ToString(event.type)
          << " v=" << result.catalog_version
          << " reused=" << result.replan.edges_reused
          << " reopt=" << result.replan.edges_reoptimized
          << " images=" << result.images_shipped
          << " bumps=" << result.bumps_shipped << "\n";
    }
  }
  out << ImageBytes(manager.images()) << metrics.ToJson();
  return out.str();
}

// ---------------------------------------------------------------------------
// Differential drivers.

using FingerprintFn = std::string (*)(uint64_t);

void ExpectThreadInvariant(FingerprintFn fingerprint, const char* name) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    std::string serial;
    {
      ScopedParallelism parallelism(1);
      serial = fingerprint(seed);
    }
    for (int threads : kThreadCounts) {
      ScopedParallelism parallelism(threads);
      std::string parallel = fingerprint(seed);
      ASSERT_EQ(serial, parallel)
          << name << " diverged at seed " << seed << " with " << threads
          << " threads";
    }
  }
}

TEST(ParallelDeterminismTest, PlannerIsByteIdenticalAcrossThreads) {
  ExpectThreadInvariant(&PlanFingerprint, "planner");
}

TEST(ParallelDeterminismTest, AnalyticExecutorIsByteIdenticalAcrossThreads) {
  ExpectThreadInvariant(&AnalyticFingerprint, "analytic executor");
}

TEST(ParallelDeterminismTest, RuntimeRoundsAreByteIdenticalAcrossThreads) {
  ExpectThreadInvariant(&RuntimeFingerprint, "runtime rounds");
}

TEST(ParallelDeterminismTest, SelfHealingIsByteIdenticalAcrossThreads) {
  ExpectThreadInvariant(&SelfHealingFingerprint, "self-healing");
}

TEST(ParallelDeterminismTest, LifecycleChurnIsByteIdenticalAcrossThreads) {
  ExpectThreadInvariant(&ChurnFingerprint, "lifecycle churn");
}

// Shard-merge order independence: with the thread count fixed, the shard
// geometry partitions work differently (1 giant shard, prime counts that
// straddle region boundaries, one shard per item) yet every merge happens
// in deterministic id order, so results must not move.
TEST(ParallelDeterminismTest, ShardGeometryIsResultInvariant) {
  const int kShardCounts[] = {1, 2, 3, 7, 13, 56};
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    std::string serial;
    {
      ScopedParallelism parallelism(1);
      serial = AnalyticFingerprint(seed) + RuntimeFingerprint(seed);
    }
    for (int shards : kShardCounts) {
      ScopedParallelism parallelism(2, shards);
      std::string sharded = AnalyticFingerprint(seed) +
                            RuntimeFingerprint(seed);
      ASSERT_EQ(serial, sharded)
          << "shard geometry " << shards << " diverged at seed " << seed;
    }
  }
}

// The knob itself: shards follow threads by default, 0 resets, and the
// scoped override restores the previous configuration.
TEST(ParallelDeterminismTest, ParallelismKnobRoundTrips) {
  EXPECT_EQ(1, GlobalThreadCount());
  {
    ScopedParallelism parallelism(4, 13);
    EXPECT_EQ(4, GlobalThreadCount());
    EXPECT_EQ(13, GlobalShardCount());
    EXPECT_NE(nullptr, GlobalThreadPool());
    {
      ScopedParallelism inner(2);
      EXPECT_EQ(2, GlobalThreadCount());
      EXPECT_EQ(2, GlobalShardCount());  // shards follow threads
    }
    EXPECT_EQ(4, GlobalThreadCount());
    EXPECT_EQ(13, GlobalShardCount());
  }
  EXPECT_EQ(1, GlobalThreadCount());
  EXPECT_EQ(nullptr, GlobalThreadPool());  // serial mode has no pool
}

}  // namespace
}  // namespace m2m
