#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cover/bipartite_cover.h"

namespace m2m {
namespace {

// Exhaustive minimum-weight vertex cover for small instances.
int64_t BruteForceMinCover(const BipartiteInstance& instance) {
  const int u = static_cast<int>(instance.sources.size());
  const int v = static_cast<int>(instance.destinations.size());
  const int total = u + v;
  int64_t best = -1;
  for (uint32_t mask = 0; mask < (1u << total); ++mask) {
    bool covers = true;
    for (const auto& [i, j] : instance.edges) {
      bool u_in = (mask >> i) & 1;
      bool v_in = (mask >> (u + j)) & 1;
      if (!u_in && !v_in) {
        covers = false;
        break;
      }
    }
    if (!covers) continue;
    int64_t weight = 0;
    for (int i = 0; i < u; ++i) {
      if ((mask >> i) & 1) weight += instance.sources[i].weight;
    }
    for (int j = 0; j < v; ++j) {
      if ((mask >> (u + j)) & 1) weight += instance.destinations[j].weight;
    }
    if (best < 0 || weight < best) best = weight;
  }
  return best;
}

BipartiteInstance MakeInstance(std::vector<int64_t> source_weights,
                               std::vector<int64_t> dest_weights,
                               std::vector<std::pair<int, int>> edges) {
  BipartiteInstance instance;
  for (size_t i = 0; i < source_weights.size(); ++i) {
    instance.sources.push_back(
        CoverVertex{static_cast<NodeId>(i), source_weights[i]});
  }
  for (size_t j = 0; j < dest_weights.size(); ++j) {
    instance.destinations.push_back(
        CoverVertex{static_cast<NodeId>(100 + j), dest_weights[j]});
  }
  instance.edges = std::move(edges);
  return instance;
}

TEST(CoverTest, EmptyInstanceNeedsNothing) {
  BipartiteInstance instance;
  CoverSolution solution = SolveMinWeightVertexCover(instance);
  EXPECT_EQ(solution.total_weight, 0);
}

TEST(CoverTest, SingleEdgePicksCheaperSide) {
  BipartiteInstance instance = MakeInstance({3}, {7}, {{0, 0}});
  CoverSolution solution = SolveMinWeightVertexCover(instance);
  EXPECT_EQ(solution.total_weight, 3);
  EXPECT_TRUE(solution.source_in_cover[0]);
  EXPECT_FALSE(solution.destination_in_cover[0]);
}

TEST(CoverTest, StarPrefersCenter) {
  // One source feeding three destinations: covering the source (weight 5)
  // beats covering the three destinations (weight 9).
  BipartiteInstance instance =
      MakeInstance({5}, {3, 3, 3}, {{0, 0}, {0, 1}, {0, 2}});
  CoverSolution solution = SolveMinWeightVertexCover(instance);
  EXPECT_EQ(solution.total_weight, 5);
  EXPECT_TRUE(solution.source_in_cover[0]);
}

TEST(CoverTest, StarPrefersLeavesWhenCenterExpensive) {
  BipartiteInstance instance =
      MakeInstance({20}, {3, 3, 3}, {{0, 0}, {0, 1}, {0, 2}});
  CoverSolution solution = SolveMinWeightVertexCover(instance);
  EXPECT_EQ(solution.total_weight, 9);
  EXPECT_FALSE(solution.source_in_cover[0]);
  EXPECT_TRUE(solution.destination_in_cover[0]);
  EXPECT_TRUE(solution.destination_in_cover[1]);
  EXPECT_TRUE(solution.destination_in_cover[2]);
}

// The single-edge instance of paper Figure 2 (edge i->j of Figure 1(C)):
// sources {a,b,c,d}, destinations {k,l,m}, relation a~{k,l,m}, b~{k,l},
// c~{k,l}, d~{k}. With unit weights the optimum has weight 3 (the paper's
// plan picks {a, k, l}).
TEST(CoverTest, PaperFigure2Instance) {
  BipartiteInstance instance = MakeInstance(
      {1, 1, 1, 1}, {1, 1, 1},
      {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {2, 0}, {2, 1}, {3, 0}});
  CoverSolution solution = SolveMinWeightVertexCover(instance);
  EXPECT_EQ(solution.total_weight, 3);
  EXPECT_TRUE(IsVertexCover(instance, solution));
  // The paper's particular optimum {a, k, l} is one of the weight-3 covers;
  // with unit weights ties exist, so only validate weight and coverage.
  EXPECT_EQ(BruteForceMinCover(instance), 3);
}

TEST(CoverTest, PaperFigure2WithPerturbedWeightsIsPaperSolution) {
  // With the raw unit (6 bytes) cheaper than a weighted-average partial
  // record unit (8 bytes), the optimum is uniquely {a, k, l}: weight
  // 6+8+8=22 beats {k,l,m}=24 and {a,b,c,d}=24.
  BipartiteInstance instance = MakeInstance(
      {6, 6, 6, 6}, {8, 8, 8},
      {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {2, 0}, {2, 1}, {3, 0}});
  CoverSolution solution = SolveMinWeightVertexCover(instance);
  EXPECT_EQ(solution.total_weight, 22);
  EXPECT_TRUE(solution.source_in_cover[0]);        // a raw
  EXPECT_FALSE(solution.source_in_cover[1]);
  EXPECT_FALSE(solution.source_in_cover[2]);
  EXPECT_FALSE(solution.source_in_cover[3]);
  EXPECT_TRUE(solution.destination_in_cover[0]);   // k aggregated
  EXPECT_TRUE(solution.destination_in_cover[1]);   // l aggregated
  EXPECT_FALSE(solution.destination_in_cover[2]);  // m served by raw a
}

TEST(CoverTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    int u = 1 + static_cast<int>(rng.UniformInt(5));
    int v = 1 + static_cast<int>(rng.UniformInt(5));
    std::vector<int64_t> su;
    std::vector<int64_t> sv;
    for (int i = 0; i < u; ++i) {
      su.push_back(1 + static_cast<int64_t>(rng.UniformInt(50)));
    }
    for (int j = 0; j < v; ++j) {
      sv.push_back(1 + static_cast<int64_t>(rng.UniformInt(50)));
    }
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < u; ++i) {
      for (int j = 0; j < v; ++j) {
        if (rng.Bernoulli(0.5)) edges.emplace_back(i, j);
      }
    }
    if (edges.empty()) continue;
    BipartiteInstance instance = MakeInstance(su, sv, edges);
    CoverSolution solution = SolveMinWeightVertexCover(instance);
    EXPECT_TRUE(IsVertexCover(instance, solution));
    EXPECT_EQ(solution.total_weight, BruteForceMinCover(instance))
        << "trial " << trial;
    EXPECT_EQ(CoverWeight(instance, solution), solution.total_weight);
  }
}

TEST(PerturbedWeightTest, EncodesBytesInHighBits) {
  int64_t w = PerturbedWeight(6, 17, false, 1);
  EXPECT_EQ(WeightToBytes(w), 6);
  EXPECT_GT(w, int64_t{6} << 36);
}

TEST(PerturbedWeightTest, ConsistentAcrossCalls) {
  EXPECT_EQ(PerturbedWeight(6, 17, false, 1), PerturbedWeight(6, 17, false, 1));
  EXPECT_NE(PerturbedWeight(6, 17, false, 1), PerturbedWeight(6, 17, true, 1));
  EXPECT_NE(PerturbedWeight(6, 17, false, 1), PerturbedWeight(6, 18, false, 1));
  EXPECT_NE(PerturbedWeight(6, 17, false, 1), PerturbedWeight(6, 17, false, 2));
}

TEST(PerturbedWeightTest, PerturbationNeverReordersDistinctByteSizes) {
  // Even summed over thousands of vertices, tiebreakers cannot outweigh a
  // one-byte difference.
  int64_t small_total = 0;
  for (int i = 0; i < 2000; ++i) small_total += PerturbedWeight(6, i, false, 9);
  int64_t one_bigger = PerturbedWeight(6 * 2000 + 1, 0, true, 9);
  EXPECT_LT(small_total, one_bigger);
  EXPECT_EQ(WeightToBytes(small_total), 6 * 2000);
}

TEST(PerturbedWeightTest, RejectsOversizedRecords) {
  EXPECT_DEATH(PerturbedWeight(1 << 14, 0, false, 9), "CHECK failed");
}

TEST(PerturbedWeightTest, TiebreakersMakeTiesUnique) {
  // Two covers with equal byte weight get distinct perturbed weights.
  int64_t a = PerturbedWeight(6, 1, false, 3) + PerturbedWeight(6, 2, false, 3);
  int64_t b = PerturbedWeight(6, 3, false, 3) + PerturbedWeight(6, 4, false, 3);
  EXPECT_NE(a, b);
  EXPECT_EQ(WeightToBytes(a), WeightToBytes(b));
}

}  // namespace
}  // namespace m2m
