#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "plan/consistency.h"
#include "plan/planner.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace m2m {
namespace {

struct TestEnvironment {
  explicit TestEnvironment(WorkloadSpec spec)
      : topology(MakeGreatDuckIslandLike()),
        paths(topology),
        workload(GenerateWorkload(topology, spec)),
        forest(std::make_shared<MulticastForest>(paths, workload.tasks)) {}

  Topology topology;
  PathSystem paths;
  Workload workload;
  std::shared_ptr<const MulticastForest> forest;
};

WorkloadSpec DefaultSpec(uint64_t seed = 21) {
  WorkloadSpec spec;
  spec.destination_count = 12;
  spec.sources_per_destination = 10;
  spec.dispersion = 0.9;
  spec.seed = seed;
  return spec;
}

PlannerOptions WithStrategy(PlanStrategy strategy) {
  PlannerOptions options;
  options.strategy = strategy;
  return options;
}

TEST(PlannerTest, EveryEdgePlanIsACover) {
  TestEnvironment env(DefaultSpec());
  GlobalPlan plan = BuildPlan(env.forest, env.workload.functions, {});
  for (size_t e = 0; e < env.forest->edges().size(); ++e) {
    const ForestEdge& edge = env.forest->edges()[e];
    const EdgePlan& edge_plan = plan.plan_for(static_cast<int>(e));
    for (const SourceDestPair& pair : edge.pairs) {
      EXPECT_TRUE(edge_plan.TransmitsRaw(pair.source) ||
                  edge_plan.TransmitsAggregate(pair.destination))
          << "uncovered pair on edge " << edge.edge.tail << "->"
          << edge.edge.head;
    }
  }
}

TEST(PlannerTest, OptimalNeverWorsePerEdgeThanBaselines) {
  TestEnvironment env(DefaultSpec());
  GlobalPlan optimal = BuildPlan(env.forest, env.workload.functions,
                                 WithStrategy(PlanStrategy::kOptimal));
  GlobalPlan multicast = BuildPlan(env.forest, env.workload.functions,
                                   WithStrategy(PlanStrategy::kMulticastOnly));
  GlobalPlan aggregation =
      BuildPlan(env.forest, env.workload.functions,
                WithStrategy(PlanStrategy::kAggregationOnly));
  for (size_t e = 0; e < env.forest->edges().size(); ++e) {
    int64_t opt = optimal.plan_for(static_cast<int>(e)).payload_bytes;
    EXPECT_LE(opt, multicast.plan_for(static_cast<int>(e)).payload_bytes);
    EXPECT_LE(opt, aggregation.plan_for(static_cast<int>(e)).payload_bytes);
  }
  EXPECT_LE(optimal.TotalPayloadBytes(), multicast.TotalPayloadBytes());
  EXPECT_LE(optimal.TotalPayloadBytes(), aggregation.TotalPayloadBytes());
}

TEST(PlannerTest, OptimalStrictlyBeatsBaselinesOnRealWorkload) {
  // With 12 weighted-average functions over dispersed sources, neither
  // trivial cover should match the optimum exactly.
  TestEnvironment env(DefaultSpec());
  GlobalPlan optimal = BuildPlan(env.forest, env.workload.functions, {});
  GlobalPlan multicast = BuildPlan(env.forest, env.workload.functions,
                                   WithStrategy(PlanStrategy::kMulticastOnly));
  GlobalPlan aggregation =
      BuildPlan(env.forest, env.workload.functions,
                WithStrategy(PlanStrategy::kAggregationOnly));
  EXPECT_LT(optimal.TotalPayloadBytes(), multicast.TotalPayloadBytes());
  EXPECT_LT(optimal.TotalPayloadBytes(), aggregation.TotalPayloadBytes());
}

TEST(PlannerTest, MulticastPlanSendsEverythingRaw) {
  TestEnvironment env(DefaultSpec());
  GlobalPlan plan = BuildPlan(env.forest, env.workload.functions,
                              WithStrategy(PlanStrategy::kMulticastOnly));
  for (size_t e = 0; e < env.forest->edges().size(); ++e) {
    EXPECT_TRUE(plan.plan_for(static_cast<int>(e)).agg_destinations.empty());
  }
}

TEST(PlannerTest, AggregationPlanAggregatesEverything) {
  TestEnvironment env(DefaultSpec());
  GlobalPlan plan = BuildPlan(env.forest, env.workload.functions,
                              WithStrategy(PlanStrategy::kAggregationOnly));
  for (size_t e = 0; e < env.forest->edges().size(); ++e) {
    EXPECT_TRUE(plan.plan_for(static_cast<int>(e)).raw_sources.empty());
  }
}

// Theorem 1: independently optimal per-edge covers form a consistent global
// plan.
TEST(ConsistencyTest, OptimalPlanIsConsistentAcrossSeeds) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    TestEnvironment env(DefaultSpec(seed));
    GlobalPlan plan = BuildPlan(env.forest, env.workload.functions, {});
    std::vector<std::string> violations = FindConsistencyViolations(plan);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << violations.front();
  }
}

TEST(ConsistencyTest, BaselinePlansAreConsistentTrivially) {
  TestEnvironment env(DefaultSpec());
  for (PlanStrategy strategy :
       {PlanStrategy::kMulticastOnly, PlanStrategy::kAggregationOnly}) {
    GlobalPlan plan =
        BuildPlan(env.forest, env.workload.functions, WithStrategy(strategy));
    EXPECT_TRUE(ValidatePlanConsistency(plan)) << ToString(strategy);
  }
}

TEST(ConsistencyTest, DetectsRawAfterAggregateViolation) {
  TestEnvironment env(DefaultSpec());
  GlobalPlan plan = BuildPlan(env.forest, env.workload.functions, {});
  // Find a route of length >= 2 whose first edge aggregates, then force the
  // second edge to transmit the source raw.
  std::vector<EdgePlan> plans = plan.edge_plans();
  bool corrupted = false;
  for (const Task& task : env.forest->tasks()) {
    for (NodeId s : task.sources) {
      if (s == task.destination || corrupted) continue;
      const auto& route =
          env.forest->Route(SourceDestPair{s, task.destination});
      if (route.size() < 2) continue;
      if (!plans[route[0]].TransmitsRaw(s) &&
          !plans[route[1]].TransmitsRaw(s)) {
        auto& raws = plans[route[1]].raw_sources;
        raws.insert(std::lower_bound(raws.begin(), raws.end(), s), s);
        corrupted = true;
      }
    }
  }
  ASSERT_TRUE(corrupted) << "no aggregating route found to corrupt";
  GlobalPlan bad(env.forest, std::move(plans), plan.options());
  EXPECT_FALSE(ValidatePlanConsistency(bad));
}

TEST(PlannerTest, TiebreakSeedChangesOnlyTies) {
  TestEnvironment env(DefaultSpec());
  PlannerOptions a;
  a.tiebreak_seed = 111;
  PlannerOptions b;
  b.tiebreak_seed = 222;
  GlobalPlan plan_a = BuildPlan(env.forest, env.workload.functions, a);
  GlobalPlan plan_b = BuildPlan(env.forest, env.workload.functions, b);
  // Byte-optimal cost is seed-independent.
  EXPECT_EQ(plan_a.TotalPayloadBytes(), plan_b.TotalPayloadBytes());
  // And each remains individually consistent.
  EXPECT_TRUE(ValidatePlanConsistency(plan_a));
  EXPECT_TRUE(ValidatePlanConsistency(plan_b));
}

TEST(UpdatePlanTest, NoChangeReusesEverything) {
  TestEnvironment env(DefaultSpec());
  GlobalPlan plan = BuildPlan(env.forest, env.workload.functions, {});
  UpdateStats stats;
  GlobalPlan updated =
      UpdatePlan(plan, env.forest, env.workload.functions, &stats);
  EXPECT_EQ(stats.edges_reoptimized, 0);
  EXPECT_EQ(stats.edges_reused, stats.edges_total);
  EXPECT_EQ(updated.edge_plans(), plan.edge_plans());
}

TEST(UpdatePlanTest, AddingSourceTouchesOnlyItsPath) {
  TestEnvironment env(DefaultSpec());
  GlobalPlan plan = BuildPlan(env.forest, env.workload.functions, {});

  // Add a fresh source to the first destination.
  NodeId d = env.workload.tasks[0].destination;
  NodeId fresh = kInvalidNode;
  for (NodeId n = 0; n < env.topology.node_count(); ++n) {
    if (n == d) continue;
    const auto& sources = env.workload.tasks[0].sources;
    if (std::find(sources.begin(), sources.end(), n) == sources.end()) {
      fresh = n;
      break;
    }
  }
  ASSERT_NE(fresh, kInvalidNode);
  Workload updated_wl = WithSourceAdded(env.workload, fresh, d, 1.0);
  auto updated_forest =
      std::make_shared<MulticastForest>(env.paths, updated_wl.tasks);

  UpdateStats stats;
  GlobalPlan incremental =
      UpdatePlan(plan, updated_forest, updated_wl.functions, &stats);
  // Corollary 1: only edges on the new source's path to d (plus edges whose
  // pair sets changed) re-optimize; most of the network is untouched.
  int path_edges = env.paths.HopDistance(fresh, d);
  EXPECT_GT(stats.edges_reused, 0);
  EXPECT_LE(stats.edges_reoptimized,
            path_edges + static_cast<int>(updated_forest->edges().size()) -
                static_cast<int>(env.forest->edges().size()) + path_edges);
  // The incremental result must match a from-scratch rebuild exactly.
  GlobalPlan full =
      BuildPlan(updated_forest, updated_wl.functions, plan.options());
  EXPECT_EQ(incremental.edge_plans(), full.edge_plans());
  EXPECT_TRUE(ValidatePlanConsistency(incremental));
}

TEST(UpdatePlanTest, RemovingSourceMatchesRebuild) {
  TestEnvironment env(DefaultSpec());
  GlobalPlan plan = BuildPlan(env.forest, env.workload.functions, {});
  NodeId d = env.workload.tasks[0].destination;
  NodeId victim = env.workload.tasks[0].sources[0];
  Workload updated_wl = WithSourceRemoved(env.workload, victim, d);
  auto updated_forest =
      std::make_shared<MulticastForest>(env.paths, updated_wl.tasks);
  UpdateStats stats;
  GlobalPlan incremental =
      UpdatePlan(plan, updated_forest, updated_wl.functions, &stats);
  GlobalPlan full =
      BuildPlan(updated_forest, updated_wl.functions, plan.options());
  EXPECT_EQ(incremental.edge_plans(), full.edge_plans());
  EXPECT_GT(stats.edges_reused, 0);
}

TEST(PlannerTest, PartialRecordSizesInfluenceCovers) {
  // Weighted stddev partials (12 bytes with tag) are twice as heavy as raw
  // units; the optimal plan should ship more raw than it would for
  // weighted sums (6-byte partial units with tag = 8... i.e. cheaper).
  WorkloadSpec sum_spec = DefaultSpec();
  sum_spec.kind = AggregateKind::kWeightedSum;
  WorkloadSpec stddev_spec = DefaultSpec();
  stddev_spec.kind = AggregateKind::kWeightedStdDev;
  TestEnvironment sum_env(sum_spec);
  TestEnvironment stddev_env(stddev_spec);
  GlobalPlan sum_plan =
      BuildPlan(sum_env.forest, sum_env.workload.functions, {});
  GlobalPlan stddev_plan =
      BuildPlan(stddev_env.forest, stddev_env.workload.functions, {});
  auto raw_units = [](const GlobalPlan& plan) {
    int64_t total = 0;
    for (const EdgePlan& p : plan.edge_plans()) {
      total += static_cast<int64_t>(p.raw_sources.size());
    }
    return total;
  };
  // Same relation (same seed), heavier partials => at least as many raws.
  EXPECT_GE(raw_units(stddev_plan), raw_units(sum_plan));
}

TEST(PlannerTest, ToStringCoversStrategies) {
  EXPECT_EQ(ToString(PlanStrategy::kOptimal), "optimal");
  EXPECT_EQ(ToString(PlanStrategy::kMulticastOnly), "multicast");
  EXPECT_EQ(ToString(PlanStrategy::kAggregationOnly), "aggregation");
}

TEST(PlannerTest, TotalPhysicalPayloadWeighsHops) {
  // With milestones disabled (all nodes), physical == logical payload.
  TestEnvironment env(DefaultSpec());
  GlobalPlan plan = BuildPlan(env.forest, env.workload.functions, {});
  EXPECT_EQ(plan.TotalPayloadBytes(), plan.TotalPhysicalPayloadBytes());
}

}  // namespace
}  // namespace m2m
