file(REMOVE_RECURSE
  "CMakeFiles/m2m_workload.dir/multi_sensor.cc.o"
  "CMakeFiles/m2m_workload.dir/multi_sensor.cc.o.d"
  "CMakeFiles/m2m_workload.dir/workload.cc.o"
  "CMakeFiles/m2m_workload.dir/workload.cc.o.d"
  "libm2m_workload.a"
  "libm2m_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
