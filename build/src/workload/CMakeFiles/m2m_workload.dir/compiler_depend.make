# Empty compiler generated dependencies file for m2m_workload.
# This may be replaced when dependencies are built.
