file(REMOVE_RECURSE
  "libm2m_workload.a"
)
