# Empty dependencies file for m2m_cover.
# This may be replaced when dependencies are built.
