file(REMOVE_RECURSE
  "CMakeFiles/m2m_cover.dir/bipartite_cover.cc.o"
  "CMakeFiles/m2m_cover.dir/bipartite_cover.cc.o.d"
  "libm2m_cover.a"
  "libm2m_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
