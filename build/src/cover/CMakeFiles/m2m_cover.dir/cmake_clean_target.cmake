file(REMOVE_RECURSE
  "libm2m_cover.a"
)
