file(REMOVE_RECURSE
  "CMakeFiles/m2m_core.dir/deployment.cc.o"
  "CMakeFiles/m2m_core.dir/deployment.cc.o.d"
  "CMakeFiles/m2m_core.dir/system.cc.o"
  "CMakeFiles/m2m_core.dir/system.cc.o.d"
  "libm2m_core.a"
  "libm2m_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
