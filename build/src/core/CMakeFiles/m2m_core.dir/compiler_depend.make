# Empty compiler generated dependencies file for m2m_core.
# This may be replaced when dependencies are built.
