file(REMOVE_RECURSE
  "libm2m_core.a"
)
