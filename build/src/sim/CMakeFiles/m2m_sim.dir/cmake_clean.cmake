file(REMOVE_RECURSE
  "CMakeFiles/m2m_sim.dir/base_station.cc.o"
  "CMakeFiles/m2m_sim.dir/base_station.cc.o.d"
  "CMakeFiles/m2m_sim.dir/energy_model.cc.o"
  "CMakeFiles/m2m_sim.dir/energy_model.cc.o.d"
  "CMakeFiles/m2m_sim.dir/executor.cc.o"
  "CMakeFiles/m2m_sim.dir/executor.cc.o.d"
  "CMakeFiles/m2m_sim.dir/failure.cc.o"
  "CMakeFiles/m2m_sim.dir/failure.cc.o.d"
  "CMakeFiles/m2m_sim.dir/flood.cc.o"
  "CMakeFiles/m2m_sim.dir/flood.cc.o.d"
  "CMakeFiles/m2m_sim.dir/readings.cc.o"
  "CMakeFiles/m2m_sim.dir/readings.cc.o.d"
  "libm2m_sim.a"
  "libm2m_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
