# Empty dependencies file for m2m_sim.
# This may be replaced when dependencies are built.
