file(REMOVE_RECURSE
  "libm2m_sim.a"
)
