src/sim/CMakeFiles/m2m_sim.dir/energy_model.cc.o: \
 /root/repo/src/sim/energy_model.cc /usr/include/stdc-predef.h \
 /root/repo/src/sim/energy_model.h
