# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/common/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/geom/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/topology/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/routing/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/agg/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/flow/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/cover/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/workload/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/plan/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/mac/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/sim/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/runtime/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/export/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/core/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/common/libm2m_common.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/geom/libm2m_geom.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/topology/libm2m_topology.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/routing/libm2m_routing.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/agg/libm2m_agg.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/flow/libm2m_flow.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/cover/libm2m_cover.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/workload/libm2m_workload.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/plan/libm2m_plan.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/mac/libm2m_mac.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sim/libm2m_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/runtime/libm2m_runtime.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/export/libm2m_export.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/libm2m_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/m2m" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.h$")
endif()

