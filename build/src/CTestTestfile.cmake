# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("geom")
subdirs("topology")
subdirs("routing")
subdirs("agg")
subdirs("flow")
subdirs("cover")
subdirs("workload")
subdirs("plan")
subdirs("mac")
subdirs("sim")
subdirs("runtime")
subdirs("export")
subdirs("core")
