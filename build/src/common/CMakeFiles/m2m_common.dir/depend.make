# Empty dependencies file for m2m_common.
# This may be replaced when dependencies are built.
