file(REMOVE_RECURSE
  "CMakeFiles/m2m_common.dir/bytes.cc.o"
  "CMakeFiles/m2m_common.dir/bytes.cc.o.d"
  "CMakeFiles/m2m_common.dir/flags.cc.o"
  "CMakeFiles/m2m_common.dir/flags.cc.o.d"
  "CMakeFiles/m2m_common.dir/relation.cc.o"
  "CMakeFiles/m2m_common.dir/relation.cc.o.d"
  "CMakeFiles/m2m_common.dir/rng.cc.o"
  "CMakeFiles/m2m_common.dir/rng.cc.o.d"
  "CMakeFiles/m2m_common.dir/stats.cc.o"
  "CMakeFiles/m2m_common.dir/stats.cc.o.d"
  "CMakeFiles/m2m_common.dir/table.cc.o"
  "CMakeFiles/m2m_common.dir/table.cc.o.d"
  "libm2m_common.a"
  "libm2m_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
