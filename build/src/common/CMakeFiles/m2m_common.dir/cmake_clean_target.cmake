file(REMOVE_RECURSE
  "libm2m_common.a"
)
