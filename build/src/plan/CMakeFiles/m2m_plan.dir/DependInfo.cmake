
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/consistency.cc" "src/plan/CMakeFiles/m2m_plan.dir/consistency.cc.o" "gcc" "src/plan/CMakeFiles/m2m_plan.dir/consistency.cc.o.d"
  "/root/repo/src/plan/dissemination.cc" "src/plan/CMakeFiles/m2m_plan.dir/dissemination.cc.o" "gcc" "src/plan/CMakeFiles/m2m_plan.dir/dissemination.cc.o.d"
  "/root/repo/src/plan/edge_plan.cc" "src/plan/CMakeFiles/m2m_plan.dir/edge_plan.cc.o" "gcc" "src/plan/CMakeFiles/m2m_plan.dir/edge_plan.cc.o.d"
  "/root/repo/src/plan/messaging.cc" "src/plan/CMakeFiles/m2m_plan.dir/messaging.cc.o" "gcc" "src/plan/CMakeFiles/m2m_plan.dir/messaging.cc.o.d"
  "/root/repo/src/plan/node_tables.cc" "src/plan/CMakeFiles/m2m_plan.dir/node_tables.cc.o" "gcc" "src/plan/CMakeFiles/m2m_plan.dir/node_tables.cc.o.d"
  "/root/repo/src/plan/planner.cc" "src/plan/CMakeFiles/m2m_plan.dir/planner.cc.o" "gcc" "src/plan/CMakeFiles/m2m_plan.dir/planner.cc.o.d"
  "/root/repo/src/plan/serialization.cc" "src/plan/CMakeFiles/m2m_plan.dir/serialization.cc.o" "gcc" "src/plan/CMakeFiles/m2m_plan.dir/serialization.cc.o.d"
  "/root/repo/src/plan/tdma.cc" "src/plan/CMakeFiles/m2m_plan.dir/tdma.cc.o" "gcc" "src/plan/CMakeFiles/m2m_plan.dir/tdma.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/m2m_common.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/m2m_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/m2m_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/cover/CMakeFiles/m2m_cover.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/m2m_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/m2m_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/m2m_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
