file(REMOVE_RECURSE
  "libm2m_plan.a"
)
