# Empty compiler generated dependencies file for m2m_plan.
# This may be replaced when dependencies are built.
