file(REMOVE_RECURSE
  "CMakeFiles/m2m_plan.dir/consistency.cc.o"
  "CMakeFiles/m2m_plan.dir/consistency.cc.o.d"
  "CMakeFiles/m2m_plan.dir/dissemination.cc.o"
  "CMakeFiles/m2m_plan.dir/dissemination.cc.o.d"
  "CMakeFiles/m2m_plan.dir/edge_plan.cc.o"
  "CMakeFiles/m2m_plan.dir/edge_plan.cc.o.d"
  "CMakeFiles/m2m_plan.dir/messaging.cc.o"
  "CMakeFiles/m2m_plan.dir/messaging.cc.o.d"
  "CMakeFiles/m2m_plan.dir/node_tables.cc.o"
  "CMakeFiles/m2m_plan.dir/node_tables.cc.o.d"
  "CMakeFiles/m2m_plan.dir/planner.cc.o"
  "CMakeFiles/m2m_plan.dir/planner.cc.o.d"
  "CMakeFiles/m2m_plan.dir/serialization.cc.o"
  "CMakeFiles/m2m_plan.dir/serialization.cc.o.d"
  "CMakeFiles/m2m_plan.dir/tdma.cc.o"
  "CMakeFiles/m2m_plan.dir/tdma.cc.o.d"
  "libm2m_plan.a"
  "libm2m_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
