file(REMOVE_RECURSE
  "CMakeFiles/m2m_flow.dir/max_flow.cc.o"
  "CMakeFiles/m2m_flow.dir/max_flow.cc.o.d"
  "libm2m_flow.a"
  "libm2m_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
