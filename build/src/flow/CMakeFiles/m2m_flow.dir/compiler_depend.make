# Empty compiler generated dependencies file for m2m_flow.
# This may be replaced when dependencies are built.
