file(REMOVE_RECURSE
  "libm2m_flow.a"
)
