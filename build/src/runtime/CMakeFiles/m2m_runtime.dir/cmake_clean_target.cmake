file(REMOVE_RECURSE
  "libm2m_runtime.a"
)
