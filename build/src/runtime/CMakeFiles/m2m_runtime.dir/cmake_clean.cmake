file(REMOVE_RECURSE
  "CMakeFiles/m2m_runtime.dir/network.cc.o"
  "CMakeFiles/m2m_runtime.dir/network.cc.o.d"
  "CMakeFiles/m2m_runtime.dir/node_runtime.cc.o"
  "CMakeFiles/m2m_runtime.dir/node_runtime.cc.o.d"
  "CMakeFiles/m2m_runtime.dir/wire_functions.cc.o"
  "CMakeFiles/m2m_runtime.dir/wire_functions.cc.o.d"
  "libm2m_runtime.a"
  "libm2m_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
