# Empty dependencies file for m2m_runtime.
# This may be replaced when dependencies are built.
