file(REMOVE_RECURSE
  "libm2m_geom.a"
)
