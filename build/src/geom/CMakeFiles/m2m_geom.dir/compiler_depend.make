# Empty compiler generated dependencies file for m2m_geom.
# This may be replaced when dependencies are built.
