file(REMOVE_RECURSE
  "CMakeFiles/m2m_geom.dir/point.cc.o"
  "CMakeFiles/m2m_geom.dir/point.cc.o.d"
  "libm2m_geom.a"
  "libm2m_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
