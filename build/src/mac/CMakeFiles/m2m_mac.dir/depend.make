# Empty dependencies file for m2m_mac.
# This may be replaced when dependencies are built.
