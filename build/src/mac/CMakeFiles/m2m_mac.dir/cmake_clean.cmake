file(REMOVE_RECURSE
  "CMakeFiles/m2m_mac.dir/csma.cc.o"
  "CMakeFiles/m2m_mac.dir/csma.cc.o.d"
  "CMakeFiles/m2m_mac.dir/tdma_executor.cc.o"
  "CMakeFiles/m2m_mac.dir/tdma_executor.cc.o.d"
  "libm2m_mac.a"
  "libm2m_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
