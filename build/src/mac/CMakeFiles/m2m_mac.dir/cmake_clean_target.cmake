file(REMOVE_RECURSE
  "libm2m_mac.a"
)
