# Empty compiler generated dependencies file for m2m_routing.
# This may be replaced when dependencies are built.
