file(REMOVE_RECURSE
  "libm2m_routing.a"
)
