
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/backbone.cc" "src/routing/CMakeFiles/m2m_routing.dir/backbone.cc.o" "gcc" "src/routing/CMakeFiles/m2m_routing.dir/backbone.cc.o.d"
  "/root/repo/src/routing/milestones.cc" "src/routing/CMakeFiles/m2m_routing.dir/milestones.cc.o" "gcc" "src/routing/CMakeFiles/m2m_routing.dir/milestones.cc.o.d"
  "/root/repo/src/routing/multicast.cc" "src/routing/CMakeFiles/m2m_routing.dir/multicast.cc.o" "gcc" "src/routing/CMakeFiles/m2m_routing.dir/multicast.cc.o.d"
  "/root/repo/src/routing/path_system.cc" "src/routing/CMakeFiles/m2m_routing.dir/path_system.cc.o" "gcc" "src/routing/CMakeFiles/m2m_routing.dir/path_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/m2m_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/m2m_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/m2m_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
