file(REMOVE_RECURSE
  "CMakeFiles/m2m_routing.dir/backbone.cc.o"
  "CMakeFiles/m2m_routing.dir/backbone.cc.o.d"
  "CMakeFiles/m2m_routing.dir/milestones.cc.o"
  "CMakeFiles/m2m_routing.dir/milestones.cc.o.d"
  "CMakeFiles/m2m_routing.dir/multicast.cc.o"
  "CMakeFiles/m2m_routing.dir/multicast.cc.o.d"
  "CMakeFiles/m2m_routing.dir/path_system.cc.o"
  "CMakeFiles/m2m_routing.dir/path_system.cc.o.d"
  "libm2m_routing.a"
  "libm2m_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
