file(REMOVE_RECURSE
  "libm2m_export.a"
)
