# Empty dependencies file for m2m_export.
# This may be replaced when dependencies are built.
