file(REMOVE_RECURSE
  "CMakeFiles/m2m_export.dir/dot.cc.o"
  "CMakeFiles/m2m_export.dir/dot.cc.o.d"
  "libm2m_export.a"
  "libm2m_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
