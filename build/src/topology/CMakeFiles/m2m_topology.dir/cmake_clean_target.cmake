file(REMOVE_RECURSE
  "libm2m_topology.a"
)
