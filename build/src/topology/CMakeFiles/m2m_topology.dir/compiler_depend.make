# Empty compiler generated dependencies file for m2m_topology.
# This may be replaced when dependencies are built.
