file(REMOVE_RECURSE
  "CMakeFiles/m2m_topology.dir/generator.cc.o"
  "CMakeFiles/m2m_topology.dir/generator.cc.o.d"
  "CMakeFiles/m2m_topology.dir/topology.cc.o"
  "CMakeFiles/m2m_topology.dir/topology.cc.o.d"
  "libm2m_topology.a"
  "libm2m_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
