file(REMOVE_RECURSE
  "CMakeFiles/m2m_agg.dir/aggregate_function.cc.o"
  "CMakeFiles/m2m_agg.dir/aggregate_function.cc.o.d"
  "libm2m_agg.a"
  "libm2m_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
