file(REMOVE_RECURSE
  "libm2m_agg.a"
)
