# Empty dependencies file for m2m_agg.
# This may be replaced when dependencies are built.
