
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/property_test.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/m2m_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/m2m_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/m2m_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/m2m_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/export/CMakeFiles/m2m_export.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/m2m_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/m2m_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/m2m_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/m2m_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/m2m_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/m2m_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/cover/CMakeFiles/m2m_cover.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/m2m_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/m2m_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
