file(REMOVE_RECURSE
  "CMakeFiles/message_cycle_test.dir/message_cycle_test.cc.o"
  "CMakeFiles/message_cycle_test.dir/message_cycle_test.cc.o.d"
  "message_cycle_test"
  "message_cycle_test.pdb"
  "message_cycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_cycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
