# Empty dependencies file for message_cycle_test.
# This may be replaced when dependencies are built.
