# Empty compiler generated dependencies file for node_tables_test.
# This may be replaced when dependencies are built.
