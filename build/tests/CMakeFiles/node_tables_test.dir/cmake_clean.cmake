file(REMOVE_RECURSE
  "CMakeFiles/node_tables_test.dir/node_tables_test.cc.o"
  "CMakeFiles/node_tables_test.dir/node_tables_test.cc.o.d"
  "node_tables_test"
  "node_tables_test.pdb"
  "node_tables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
