file(REMOVE_RECURSE
  "CMakeFiles/multi_sensor_test.dir/multi_sensor_test.cc.o"
  "CMakeFiles/multi_sensor_test.dir/multi_sensor_test.cc.o.d"
  "multi_sensor_test"
  "multi_sensor_test.pdb"
  "multi_sensor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_sensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
