# Empty dependencies file for multi_sensor_test.
# This may be replaced when dependencies are built.
