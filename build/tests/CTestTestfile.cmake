# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/agg_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/cover_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/multi_sensor_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/bytes_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/messaging_test[1]_include.cmake")
include("/root/repo/build/tests/message_cycle_test[1]_include.cmake")
include("/root/repo/build/tests/node_tables_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/tdma_test[1]_include.cmake")
include("/root/repo/build/tests/mac_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/suppression_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/deployment_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/theorem_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
