# Empty dependencies file for routing_backbone.
# This may be replaced when dependencies are built.
