file(REMOVE_RECURSE
  "CMakeFiles/routing_backbone.dir/routing_backbone.cc.o"
  "CMakeFiles/routing_backbone.dir/routing_backbone.cc.o.d"
  "routing_backbone"
  "routing_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
