file(REMOVE_RECURSE
  "CMakeFiles/planner_micro.dir/planner_micro.cc.o"
  "CMakeFiles/planner_micro.dir/planner_micro.cc.o.d"
  "planner_micro"
  "planner_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
