# Empty compiler generated dependencies file for planner_micro.
# This may be replaced when dependencies are built.
