# Empty compiler generated dependencies file for dissemination.
# This may be replaced when dependencies are built.
