file(REMOVE_RECURSE
  "CMakeFiles/state_size.dir/state_size.cc.o"
  "CMakeFiles/state_size.dir/state_size.cc.o.d"
  "state_size"
  "state_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
