# Empty dependencies file for state_size.
# This may be replaced when dependencies are built.
