file(REMOVE_RECURSE
  "CMakeFiles/milestone_ablation.dir/milestone_ablation.cc.o"
  "CMakeFiles/milestone_ablation.dir/milestone_ablation.cc.o.d"
  "milestone_ablation"
  "milestone_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milestone_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
