# Empty compiler generated dependencies file for milestone_ablation.
# This may be replaced when dependencies are built.
