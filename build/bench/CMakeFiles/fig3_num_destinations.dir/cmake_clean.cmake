file(REMOVE_RECURSE
  "CMakeFiles/fig3_num_destinations.dir/fig3_num_destinations.cc.o"
  "CMakeFiles/fig3_num_destinations.dir/fig3_num_destinations.cc.o.d"
  "fig3_num_destinations"
  "fig3_num_destinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_num_destinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
