# Empty dependencies file for fig3_num_destinations.
# This may be replaced when dependencies are built.
