file(REMOVE_RECURSE
  "CMakeFiles/variance_report.dir/variance_report.cc.o"
  "CMakeFiles/variance_report.dir/variance_report.cc.o.d"
  "variance_report"
  "variance_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variance_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
