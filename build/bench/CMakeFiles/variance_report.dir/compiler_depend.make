# Empty compiler generated dependencies file for variance_report.
# This may be replaced when dependencies are built.
