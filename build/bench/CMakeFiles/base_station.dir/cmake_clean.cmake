file(REMOVE_RECURSE
  "CMakeFiles/base_station.dir/base_station.cc.o"
  "CMakeFiles/base_station.dir/base_station.cc.o.d"
  "base_station"
  "base_station.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_station.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
