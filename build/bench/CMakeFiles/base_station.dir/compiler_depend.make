# Empty compiler generated dependencies file for base_station.
# This may be replaced when dependencies are built.
