file(REMOVE_RECURSE
  "CMakeFiles/fig7_override_policies.dir/fig7_override_policies.cc.o"
  "CMakeFiles/fig7_override_policies.dir/fig7_override_policies.cc.o.d"
  "fig7_override_policies"
  "fig7_override_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_override_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
