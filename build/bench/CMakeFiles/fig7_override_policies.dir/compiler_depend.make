# Empty compiler generated dependencies file for fig7_override_policies.
# This may be replaced when dependencies are built.
