file(REMOVE_RECURSE
  "CMakeFiles/fig4_sources_per_destination.dir/fig4_sources_per_destination.cc.o"
  "CMakeFiles/fig4_sources_per_destination.dir/fig4_sources_per_destination.cc.o.d"
  "fig4_sources_per_destination"
  "fig4_sources_per_destination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sources_per_destination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
