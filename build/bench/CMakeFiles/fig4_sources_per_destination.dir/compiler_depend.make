# Empty compiler generated dependencies file for fig4_sources_per_destination.
# This may be replaced when dependencies are built.
