file(REMOVE_RECURSE
  "CMakeFiles/mac_validation.dir/mac_validation.cc.o"
  "CMakeFiles/mac_validation.dir/mac_validation.cc.o.d"
  "mac_validation"
  "mac_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
