# Empty dependencies file for mac_validation.
# This may be replaced when dependencies are built.
