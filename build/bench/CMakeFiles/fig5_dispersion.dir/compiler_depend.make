# Empty compiler generated dependencies file for fig5_dispersion.
# This may be replaced when dependencies are built.
