file(REMOVE_RECURSE
  "CMakeFiles/fig5_dispersion.dir/fig5_dispersion.cc.o"
  "CMakeFiles/fig5_dispersion.dir/fig5_dispersion.cc.o.d"
  "fig5_dispersion"
  "fig5_dispersion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dispersion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
