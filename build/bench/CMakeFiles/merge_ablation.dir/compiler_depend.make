# Empty compiler generated dependencies file for merge_ablation.
# This may be replaced when dependencies are built.
