file(REMOVE_RECURSE
  "CMakeFiles/merge_ablation.dir/merge_ablation.cc.o"
  "CMakeFiles/merge_ablation.dir/merge_ablation.cc.o.d"
  "merge_ablation"
  "merge_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
