file(REMOVE_RECURSE
  "CMakeFiles/suppression_precision.dir/suppression_precision.cc.o"
  "CMakeFiles/suppression_precision.dir/suppression_precision.cc.o.d"
  "suppression_precision"
  "suppression_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suppression_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
