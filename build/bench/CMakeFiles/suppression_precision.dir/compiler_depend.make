# Empty compiler generated dependencies file for suppression_precision.
# This may be replaced when dependencies are built.
