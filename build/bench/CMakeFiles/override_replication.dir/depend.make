# Empty dependencies file for override_replication.
# This may be replaced when dependencies are built.
