file(REMOVE_RECURSE
  "CMakeFiles/override_replication.dir/override_replication.cc.o"
  "CMakeFiles/override_replication.dir/override_replication.cc.o.d"
  "override_replication"
  "override_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/override_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
