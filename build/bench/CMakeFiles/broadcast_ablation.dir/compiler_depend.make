# Empty compiler generated dependencies file for broadcast_ablation.
# This may be replaced when dependencies are built.
