file(REMOVE_RECURSE
  "CMakeFiles/broadcast_ablation.dir/broadcast_ablation.cc.o"
  "CMakeFiles/broadcast_ablation.dir/broadcast_ablation.cc.o.d"
  "broadcast_ablation"
  "broadcast_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
