# Empty dependencies file for fig6_network_size.
# This may be replaced when dependencies are built.
