file(REMOVE_RECURSE
  "CMakeFiles/fig6_network_size.dir/fig6_network_size.cc.o"
  "CMakeFiles/fig6_network_size.dir/fig6_network_size.cc.o.d"
  "fig6_network_size"
  "fig6_network_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_network_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
