file(REMOVE_RECURSE
  "CMakeFiles/routing_stability.dir/routing_stability.cc.o"
  "CMakeFiles/routing_stability.dir/routing_stability.cc.o.d"
  "routing_stability"
  "routing_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
