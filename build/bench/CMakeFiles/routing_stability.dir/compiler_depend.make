# Empty compiler generated dependencies file for routing_stability.
# This may be replaced when dependencies are built.
