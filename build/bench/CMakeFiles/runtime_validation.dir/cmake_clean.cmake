file(REMOVE_RECURSE
  "CMakeFiles/runtime_validation.dir/runtime_validation.cc.o"
  "CMakeFiles/runtime_validation.dir/runtime_validation.cc.o.d"
  "runtime_validation"
  "runtime_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
