# Empty dependencies file for mission_sim.
# This may be replaced when dependencies are built.
