file(REMOVE_RECURSE
  "CMakeFiles/mission_sim.dir/mission_sim.cpp.o"
  "CMakeFiles/mission_sim.dir/mission_sim.cpp.o.d"
  "mission_sim"
  "mission_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mission_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
