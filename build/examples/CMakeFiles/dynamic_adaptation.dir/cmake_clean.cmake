file(REMOVE_RECURSE
  "CMakeFiles/dynamic_adaptation.dir/dynamic_adaptation.cpp.o"
  "CMakeFiles/dynamic_adaptation.dir/dynamic_adaptation.cpp.o.d"
  "dynamic_adaptation"
  "dynamic_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
