# Empty compiler generated dependencies file for m2m_explorer.
# This may be replaced when dependencies are built.
