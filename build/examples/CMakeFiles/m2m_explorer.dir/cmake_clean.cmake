file(REMOVE_RECURSE
  "CMakeFiles/m2m_explorer.dir/m2m_explorer.cpp.o"
  "CMakeFiles/m2m_explorer.dir/m2m_explorer.cpp.o.d"
  "m2m_explorer"
  "m2m_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
