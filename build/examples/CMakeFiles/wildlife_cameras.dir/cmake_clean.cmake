file(REMOVE_RECURSE
  "CMakeFiles/wildlife_cameras.dir/wildlife_cameras.cpp.o"
  "CMakeFiles/wildlife_cameras.dir/wildlife_cameras.cpp.o.d"
  "wildlife_cameras"
  "wildlife_cameras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wildlife_cameras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
