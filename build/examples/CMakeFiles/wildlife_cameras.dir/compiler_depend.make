# Empty compiler generated dependencies file for wildlife_cameras.
# This may be replaced when dependencies are built.
