# Empty dependencies file for sapflux_control.
# This may be replaced when dependencies are built.
