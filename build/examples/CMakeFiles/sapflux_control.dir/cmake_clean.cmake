file(REMOVE_RECURSE
  "CMakeFiles/sapflux_control.dir/sapflux_control.cpp.o"
  "CMakeFiles/sapflux_control.dir/sapflux_control.cpp.o.d"
  "sapflux_control"
  "sapflux_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sapflux_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
