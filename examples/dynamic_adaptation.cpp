// Dynamic adaptation (paper section 3): Corollary 1 says edges whose
// single-edge inputs are unchanged keep their plans, so workload changes
// re-optimize only the affected slice of the network; and milestone routing
// lets the communication layer route around transient link failures without
// touching the plan at all.
//
//   ./dynamic_adaptation

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>

#include "common/table.h"
#include "core/m2m.h"

int main() {
  using namespace m2m;

  Topology topology = MakeGreatDuckIslandLike();
  PathSystem paths(topology);
  WorkloadSpec spec;
  spec.destination_count = 12;
  spec.sources_per_destination = 14;
  spec.dispersion = 0.9;
  spec.seed = 8;
  Workload workload = GenerateWorkload(topology, spec);

  auto forest = std::make_shared<const MulticastForest>(paths,
                                                        workload.tasks);
  GlobalPlan plan = BuildPlan(forest, workload.functions, {});
  std::printf("initial plan: %zu edges, %lld payload bytes/round\n\n",
              forest->edges().size(),
              static_cast<long long>(plan.TotalPayloadBytes()));

  // Churn the workload: nodes die (sources removed) and new nodes are
  // deployed (sources added). Watch how little of the plan re-optimizes.
  Table churn({"step", "change", "edges_total", "reused", "reoptimized",
               "payload_bytes"});
  Rng rng(9);
  for (int step = 0; step < 8; ++step) {
    const Task& task = workload.tasks[rng.UniformInt(workload.tasks.size())];
    NodeId d = task.destination;
    std::string description;
    if (step % 2 == 0 && task.sources.size() > 3) {
      NodeId victim = task.sources[rng.UniformInt(task.sources.size())];
      workload = WithSourceRemoved(workload, victim, d);
      description = "node " + std::to_string(victim) + " died (fed " +
                    std::to_string(d) + ")";
    } else {
      NodeId fresh = kInvalidNode;
      for (NodeId n = 0; n < topology.node_count(); ++n) {
        if (n != d && std::find(task.sources.begin(), task.sources.end(),
                                n) == task.sources.end()) {
          fresh = n;
          break;
        }
      }
      workload = WithSourceAdded(workload, fresh, d, 1.0);
      description = "node " + std::to_string(fresh) + " deployed (feeds " +
                    std::to_string(d) + ")";
    }
    forest = std::make_shared<const MulticastForest>(paths, workload.tasks);
    UpdateStats stats;
    plan = UpdatePlan(plan, forest, workload.functions, &stats);
    churn.AddRow({std::to_string(step), description,
                  std::to_string(stats.edges_total),
                  std::to_string(stats.edges_reused),
                  std::to_string(stats.edges_reoptimized),
                  std::to_string(plan.TotalPayloadBytes())});
  }
  churn.Print(std::cout);

  // Transient failures: a milestone plan keeps delivering because the
  // communication layer may take any live path between milestones.
  LinkStabilityModel stability(topology, 10);
  SystemOptions flexible;
  flexible.milestones =
      MilestoneSelector::StabilityThreshold(topology, stability, 0.86);
  System pinned_system(topology, workload);
  System flexible_system(topology, workload, flexible);

  Rng failures(11);
  int64_t pinned_ok = 0;
  int64_t flexible_ok = 0;
  int64_t total = 0;
  const int rounds = 25;
  for (int round = 0; round < rounds; ++round) {
    LinkOutcome links = LinkOutcome::Sample(topology, stability, failures);
    FailureRoundResult p =
        RunRoundWithFailures(pinned_system.compiled(), workload.functions,
                             topology, links, EnergyModel{});
    FailureRoundResult f =
        RunRoundWithFailures(flexible_system.compiled(), workload.functions,
                             topology, links, EnergyModel{});
    pinned_ok += p.destinations_complete;
    flexible_ok += f.destinations_complete;
    total += p.destinations_total;
  }
  std::printf(
      "\ntransient failures over %d rounds: pinned plan delivered %.1f%% of "
      "aggregates complete, milestone plan %.1f%% (with %d milestones)\n",
      rounds, 100.0 * pinned_ok / total, 100.0 * flexible_ok / total,
      flexible.milestones->milestone_count());
  return 0;
}
