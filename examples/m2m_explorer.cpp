// Command-line explorer: build any topology/workload/strategy combination,
// plan it, run rounds, and optionally dump Graphviz/JSON artifacts.
//
//   ./m2m_explorer --topology=gdi --destinations=14 --sources=20
//       --dispersion=0.9 --strategy=optimal --rounds=3 --dump-plan-dot
//
// Run with --help for the full flag list.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "core/m2m.h"
#include "export/dot.h"

namespace {

using namespace m2m;

Topology MakeTopology(const std::string& kind, int nodes, uint64_t seed) {
  if (kind == "gdi") return MakeGreatDuckIslandLike(seed);
  if (kind == "grid") {
    int side = 1;
    while ((side + 1) * (side + 1) <= nodes) ++side;
    return MakeGrid(side, side, 40.0, kDefaultRadioRangeM);
  }
  if (kind == "uniform") {
    double area_side = std::sqrt(nodes / (68.0 / (106.0 * 203.0)));
    return MakeUniformRandom(nodes, Area{area_side, area_side},
                             kDefaultRadioRangeM, seed);
  }
  if (kind == "clustered") {
    double area_side = std::sqrt(nodes / (68.0 / (106.0 * 203.0)));
    return MakeClustered(nodes, std::max(2, nodes / 12),
                         Area{area_side, area_side}, 20.0,
                         kDefaultRadioRangeM, seed);
  }
  std::fprintf(stderr, "unknown --topology '%s' (gdi|grid|uniform|clustered)\n",
               kind.c_str());
  std::exit(2);
}

PlanStrategy ParseStrategy(const std::string& name) {
  if (name == "optimal") return PlanStrategy::kOptimal;
  if (name == "multicast") return PlanStrategy::kMulticastOnly;
  if (name == "aggregation") return PlanStrategy::kAggregationOnly;
  std::fprintf(stderr,
               "unknown --strategy '%s' (optimal|multicast|aggregation)\n",
               name.c_str());
  std::exit(2);
}

AggregateKind ParseKind(const std::string& name) {
  for (AggregateKind kind :
       {AggregateKind::kWeightedSum, AggregateKind::kWeightedAverage,
        AggregateKind::kWeightedStdDev, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kCount,
        AggregateKind::kCountAbove, AggregateKind::kArgMax}) {
    if (ToString(kind) == name) return kind;
  }
  std::fprintf(stderr, "unknown --function '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  std::string topology_kind =
      flags.GetString("topology", "gdi", "gdi | grid | uniform | clustered");
  int nodes = static_cast<int>(
      flags.GetInt("nodes", 68, "node count (non-gdi topologies)"));
  int destinations = static_cast<int>(
      flags.GetInt("destinations", 14, "number of aggregation functions"));
  int sources = static_cast<int>(
      flags.GetInt("sources", 20, "sources per destination"));
  double dispersion =
      flags.GetDouble("dispersion", 0.9, "dispersion factor d in [0,1]");
  std::string strategy_name = flags.GetString(
      "strategy", "optimal", "optimal | multicast | aggregation");
  std::string function_name = flags.GetString(
      "function", "weighted_average",
      "weighted_sum | weighted_average | weighted_stddev | min | max | "
      "count | count_above | argmax");
  int rounds =
      static_cast<int>(flags.GetInt("rounds", 3, "rounds to execute"));
  double suppress_p = flags.GetDouble(
      "suppress-p", -1.0,
      "if >= 0, run suppressed rounds with this change probability");
  uint64_t seed = static_cast<uint64_t>(
      flags.GetInt("seed", 1, "seed for topology/workload/readings"));
  bool use_broadcast = flags.GetBool(
      "broadcast", false, "share raw units via local broadcast");
  bool dump_topology = flags.GetBool(
      "dump-topology-dot", false, "print the topology as Graphviz");
  bool dump_plan_dot =
      flags.GetBool("dump-plan-dot", false, "print the plan as Graphviz");
  bool dump_plan_json =
      flags.GetBool("dump-plan-json", false, "print the plan as JSON");
  bool dump_workload_json = flags.GetBool(
      "dump-workload-json", false, "print the workload as JSON");

  if (flags.help_requested()) {
    std::fputs(flags.Usage("many-to-many aggregation explorer").c_str(),
               stdout);
    return 0;
  }
  for (const std::string& unknown : flags.UnconsumedFlags()) {
    std::fprintf(stderr, "unknown flag --%s (try --help)\n",
                 unknown.c_str());
    return 2;
  }

  Topology topology = MakeTopology(topology_kind, nodes, seed);
  WorkloadSpec spec;
  spec.destination_count = destinations;
  spec.sources_per_destination = sources;
  spec.dispersion = dispersion;
  spec.kind = ParseKind(function_name);
  spec.seed = seed;
  Workload workload = GenerateWorkload(topology, spec);
  SystemOptions options;
  options.planner.strategy = ParseStrategy(strategy_name);
  System system(topology, workload, options);

  std::printf(
      "topology=%s nodes=%d links=%d | workload: %d x %d (%s, d=%.2f) | "
      "strategy=%s\nplan: %zu edges, %lld units, %lld payload bytes, "
      "consistent=%s\n",
      topology_kind.c_str(), topology.node_count(), topology.link_count(),
      destinations, sources, function_name.c_str(), dispersion,
      strategy_name.c_str(), system.forest().edges().size(),
      static_cast<long long>(system.plan().TotalUnits()),
      static_cast<long long>(system.plan().TotalPayloadBytes()),
      ValidatePlanConsistency(system.plan()) ? "yes" : "NO");

  PlanExecutor executor = system.MakeExecutor();
  ReadingGenerator readings(topology.node_count(), seed + 1);
  Table table({"round", "mode", "energy_mJ", "messages", "units"});
  if (suppress_p >= 0.0) executor.InitializeState(readings.values());
  for (int r = 0; r < rounds; ++r) {
    RoundResult result;
    std::string mode;
    if (suppress_p >= 0.0) {
      std::vector<bool> changed = readings.Advance(suppress_p);
      result = executor.RunSuppressedRound(readings.values(), changed,
                                           OverridePolicy::kConservative);
      mode = "suppressed";
    } else {
      readings.Advance(1.0);
      TransmissionOptions tx;
      tx.use_broadcast = use_broadcast;
      result = executor.RunRound(readings.values(), tx);
      mode = use_broadcast ? "full+broadcast" : "full";
    }
    table.AddRow({std::to_string(r), mode, Table::Num(result.energy_mj),
                  std::to_string(result.messages),
                  std::to_string(result.units)});
  }
  table.Print(std::cout);

  if (dump_topology) std::cout << "\n" << TopologyToDot(topology);
  if (dump_plan_dot) std::cout << "\n" << PlanToDot(system.plan(), topology);
  if (dump_plan_json) std::cout << "\n" << PlanToJson(system.plan());
  if (dump_workload_json) std::cout << "\n" << WorkloadToJson(workload);
  return 0;
}
