// The paper's worked example, end to end: Figure 1(C)'s network — sources
// a, b, c, d feeding destinations k, l, m through relays i and j — and the
// single-edge optimization of edge i->j that Figure 2 reduces to weighted
// bipartite vertex cover. The optimal plan transmits raw v_a plus partial
// records for k and l across i->j: three message units, exactly the plan
// drawn in the paper.
//
//   ./paper_figure1

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "core/m2m.h"

int main() {
  using namespace m2m;

  // Geometry engineered so every source reaches the relays as in Figure
  // 1(C): a,b,c,d -- i -- j -- k,l,m (radio range 50 m).
  //            0:a      1:b      2:c       3:d      4:i     5:j
  //            6:k      7:l      8:m
  std::vector<Point> positions = {
      {-35, 30}, {-46, 0}, {-35, -30}, {0, -46},  // a b c d
      {0, 0},    {45, 0},                          // i j
      {85, 20},  {85, -20}, {45, 45},              // k l m
  };
  Topology topology(positions, 50.0);
  const NodeId a = 0, b = 1, c = 2, d = 3, i = 4, j = 5, k = 6, l = 7,
               m = 8;

  // The aggregation functions of Figure 1(C): k aggregates a,b,c,d; l
  // aggregates a,b,c; m needs only a. Weighted averages give partial
  // records (8 B with tag) that outweigh raw values (6 B), the asymmetry
  // the example turns on.
  Workload workload;
  auto add_task = [&](NodeId destination, std::vector<NodeId> sources) {
    FunctionSpec spec;
    spec.kind = AggregateKind::kWeightedAverage;
    for (NodeId s : sources) {
      spec.weights.emplace_back(s, 1.0 + 0.1 * destination + 0.01 * s);
    }
    workload.tasks.push_back(Task{destination, std::move(sources)});
    workload.specs.push_back(std::move(spec));
  };
  add_task(k, {a, b, c, d});
  add_task(l, {a, b, c});
  add_task(m, {a});
  workload.RebuildFunctions();

  System system(topology, workload);

  // Locate edge i -> j and print its single-edge instance (paper Figure 2).
  int edge_ij = system.forest().EdgeIndexOf(DirectedEdge{i, j});
  if (edge_ij < 0) {
    std::fprintf(stderr, "unexpected routing: edge i->j not in forest\n");
    return 1;
  }
  const ForestEdge& edge = system.forest().edges()[edge_ij];
  std::printf("single-edge instance at i->j (paper Figure 2):\n");
  Table relation({"source", "feeds_k", "feeds_l", "feeds_m"});
  const char* names = "abcdijklm";
  for (NodeId s : {a, b, c, d}) {
    auto feeds = [&](NodeId dest) {
      for (const SourceDestPair& pair : edge.pairs) {
        if (pair.source == s && pair.destination == dest) return "1";
      }
      return ".";
    };
    relation.AddRow({std::string(1, names[s]), feeds(k), feeds(l),
                     feeds(m)});
  }
  relation.Print(std::cout);

  const EdgePlan& plan = system.plan().plan_for(edge_ij);
  std::printf("\noptimal cover at i->j: raw = {");
  for (NodeId s : plan.raw_sources) std::printf(" %c", names[s]);
  std::printf(" }, aggregate = {");
  for (NodeId dest : plan.agg_destinations) {
    std::printf(" %c", names[dest]);
  }
  std::printf(" } -> %d message units, %lld payload bytes\n",
              plan.unit_count(),
              static_cast<long long>(plan.payload_bytes));

  bool matches_paper = plan.raw_sources == std::vector<NodeId>{a} &&
                       plan.agg_destinations == std::vector<NodeId>{k, l};
  std::printf("matches the paper's plan (raw a + aggregates for k, l): %s\n",
              matches_paper ? "yes" : "NO");

  // Execute a round and show the three control signals arriving.
  ReadingGenerator readings(topology.node_count(), 2007);
  RoundResult round = system.MakeExecutor().RunRound(readings.values());
  std::printf("\nround energy %.3f mJ; control signals: k=%.3f l=%.3f "
              "m=%.3f (all verified against direct evaluation)\n",
              round.energy_mj, round.destination_values.at(k),
              round.destination_values.at(l), round.destination_values.at(m));
  return matches_paper ? 0 : 1;
}
