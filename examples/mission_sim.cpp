// A full mission: 200 rounds of in-network control on the GDI-like network
// with drifting readings (temporal suppression + conservative override),
// occasional node death/deployment (incremental re-planning + plan
// dissemination), and sampled transient link failures. This is the
// integration layer a real deployment would run.
//
//   ./mission_sim

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "core/m2m.h"

int main() {
  using namespace m2m;
  Topology topology = MakeGreatDuckIslandLike();
  WorkloadSpec spec;
  spec.destination_count = 14;
  spec.sources_per_destination = 15;
  spec.dispersion = 0.9;
  spec.kind = AggregateKind::kWeightedAverage;
  spec.seed = 77;
  Workload workload = GenerateWorkload(topology, spec);

  DeploymentOptions options;
  options.change_probability = 0.15;
  options.use_suppression = true;
  options.override_policy = OverridePolicy::kConservative;
  options.workload_churn_probability = 0.03;  // A change every ~33 rounds.
  options.sample_link_failures = true;
  options.seed = 78;

  Deployment deployment(topology, workload, {}, options);
  std::printf("mission: %d nodes, %zu control functions, suppression on, "
              "churn p=%.2f\n\n",
              topology.node_count(), workload.tasks.size(),
              options.workload_churn_probability);

  Table timeline({"rounds", "mean_round_mJ", "mean_msgs", "plan_changes",
                  "dissemination_mJ", "delivery_pct"});
  const int kPhases = 5;
  const int kRoundsPerPhase = 40;
  for (int phase = 0; phase < kPhases; ++phase) {
    deployment.Run(kRoundsPerPhase);
    const DeploymentReport& report = deployment.report();
    timeline.AddRow(
        {std::to_string(report.rounds),
         Table::Num(report.round_energy_mj.mean()),
         Table::Num(report.round_messages.mean(), 1),
         std::to_string(report.workload_changes),
         Table::Num(report.dissemination_energy_mj),
         Table::Num(report.contribution_delivery_pct.mean(), 1)});
  }
  timeline.Print(std::cout);

  const DeploymentReport& report = deployment.report();
  std::printf(
      "\nafter %d rounds: %lld workload changes re-optimized %lld edges "
      "(%lld reused), re-disseminated %lld node images for %.1f mJ total;\n"
      "every control signal across all rounds verified against direct "
      "evaluation.\n",
      report.rounds, static_cast<long long>(report.workload_changes),
      static_cast<long long>(report.edges_reoptimized),
      static_cast<long long>(report.edges_reused),
      static_cast<long long>(report.nodes_redisseminated),
      report.dissemination_energy_mj);
  return 0;
}
