// In-network control of sap flux sensors (the paper's motivating
// application, section 1).
//
// Sap flux sensors heat a prong inserted into a tree and are far more
// expensive to sample than passive light / soil-moisture sensors. We control
// each sap flux sensor's sampling rate with a weighted average over nearby
// light and moisture readings, computed entirely in-network: high light and
// moisture -> sap flows -> sample fast; dark or dry -> sample slowly.
//
// The example runs a day's worth of rounds with temporal suppression
// (readings change rarely at night, often around dawn/dusk) and prints the
// control decisions plus the radio energy the control layer itself costs.
//
//   ./sapflux_control

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/m2m.h"

namespace {

using namespace m2m;

// Sampling period (seconds) chosen from the control signal.
int SamplingPeriodS(double control_signal) {
  if (control_signal > 22.0) return 60;     // Strong sap flow expected.
  if (control_signal > 18.0) return 300;    // Moderate.
  return 1800;                              // Negligible flow: idle.
}

}  // namespace

int main() {
  // A forest plot: clustered stands of trees over ~6 hectares.
  Topology topology =
      MakeClustered(/*count=*/60, /*cluster_count=*/5,
                    Area{250.0, 250.0}, /*cluster_stddev_m=*/22.0,
                    kDefaultRadioRangeM, /*seed=*/2024);

  // Every 6th node hosts a sap flux sensor (the control destinations); the
  // control input is a weighted average of 12 nearby light/moisture nodes.
  WorkloadSpec spec;
  spec.destination_count = 10;
  spec.sources_per_destination = 12;
  spec.dispersion = 0.6;  // Mostly close neighbors, some farther context.
  spec.max_hops = 3;
  spec.kind = AggregateKind::kWeightedAverage;
  spec.seed = 11;
  Workload workload = GenerateWorkload(topology, spec);

  System system(topology, workload);
  std::printf(
      "sap flux control: %zu expensive sensors, each driven by %d cheap "
      "readings; plan ships %lld bytes/round when everything changes\n\n",
      workload.tasks.size(), spec.sources_per_destination,
      static_cast<long long>(system.plan().TotalPayloadBytes()));

  PlanExecutor executor = system.MakeExecutor();
  ReadingGenerator readings(topology.node_count(), /*seed=*/5);
  executor.InitializeState(readings.values());

  // One simulated day: change probability follows light conditions —
  // almost static at night, volatile at dawn/dusk, moderate at midday.
  const struct {
    const char* phase;
    double change_probability;
    int rounds;
  } day[] = {
      {"night", 0.02, 6},
      {"dawn", 0.5, 4},
      {"midday", 0.15, 8},
      {"dusk", 0.5, 4},
  };

  Table table({"phase", "round", "changed", "energy_mJ", "messages",
               "fast_sampling", "idle"});
  for (const auto& phase : day) {
    for (int r = 0; r < phase.rounds; ++r) {
      std::vector<bool> changed =
          readings.Advance(phase.change_probability);
      int changed_count = 0;
      for (bool c : changed) changed_count += c;
      RoundResult round = executor.RunSuppressedRound(
          readings.values(), changed, OverridePolicy::kConservative);
      int fast = 0;
      int idle = 0;
      for (const auto& [destination, signal] : round.destination_values) {
        int period = SamplingPeriodS(signal);
        fast += (period == 60);
        idle += (period == 1800);
      }
      table.AddRow({phase.phase, std::to_string(r),
                    std::to_string(changed_count),
                    Table::Num(round.energy_mj),
                    std::to_string(round.messages), std::to_string(fast),
                    std::to_string(idle)});
    }
  }
  table.Print(std::cout);

  std::printf(
      "\nSuppression keeps night rounds nearly free while dawn/dusk rounds "
      "pay for the activity that actually matters; every control signal is "
      "verified against direct evaluation.\n");
  return 0;
}
