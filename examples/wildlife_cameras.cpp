// Wildlife-habitat camera control (the paper's second motivating scenario).
//
// A habitat is instrumented with many cheap motion/vibration sensors and a
// few expensive camera nodes. Because cameras shoot from a distance, their
// control inputs come from sensors many hops away (high dispersion). Each
// camera's trigger signal is a weighted sum of motion readings; when it
// crosses a threshold the camera wakes up and shoots.
//
// The example compares the optimal many-to-many plan against pure multicast
// and pure in-network aggregation for this dispersed workload, then runs an
// activity burst to show cameras reacting.
//
//   ./wildlife_cameras

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "core/m2m.h"

int main() {
  using namespace m2m;

  // The habitat: 80 nodes spread over ~12 hectares.
  Topology topology = MakeUniformRandom(80, Area{350.0, 350.0},
                                        kDefaultRadioRangeM, /*seed=*/99);

  // 6 cameras, each listening to 18 motion sensors up to 5 hops away with
  // nearly uniform hop spread (d = 0.95): the dispersed regime where
  // balancing multicast against aggregation pays the most.
  WorkloadSpec spec;
  spec.destination_count = 6;
  spec.sources_per_destination = 18;
  spec.dispersion = 0.95;
  spec.max_hops = 5;
  spec.kind = AggregateKind::kWeightedSum;
  spec.seed = 31;
  Workload workload = GenerateWorkload(topology, spec);

  std::printf("wildlife cameras: %zu cameras x %d motion sensors each\n\n",
              workload.tasks.size(), spec.sources_per_destination);

  // Compare the three planning strategies on this workload.
  Table comparison({"strategy", "payload_bytes", "units", "energy_mJ"});
  ReadingGenerator readings(topology.node_count(), /*seed=*/13);
  double optimal_energy = 0.0;
  for (PlanStrategy strategy :
       {PlanStrategy::kOptimal, PlanStrategy::kMulticastOnly,
        PlanStrategy::kAggregationOnly}) {
    SystemOptions options;
    options.planner.strategy = strategy;
    System system(topology, workload, options);
    RoundResult round = system.MakeExecutor().RunRound(readings.values());
    if (strategy == PlanStrategy::kOptimal) {
      optimal_energy = round.energy_mj;
    }
    comparison.AddRow(
        {ToString(strategy),
         std::to_string(system.plan().TotalPayloadBytes()),
         std::to_string(system.plan().TotalUnits()),
         Table::Num(round.energy_mj)});
  }
  comparison.Print(std::cout);
  std::printf("\n");

  // Run an activity burst: background jitter, then animals move through
  // (motion readings jump), then quiet again. Cameras trigger when their
  // weighted sum exceeds the threshold.
  System system(topology, workload);
  PlanExecutor executor = system.MakeExecutor();
  executor.InitializeState(readings.values());

  // Trigger threshold: mean background signal plus a margin.
  double background = 0.0;
  for (const auto& [camera, signal] : executor.current_aggregates()) {
    background += signal;
  }
  background /= static_cast<double>(workload.tasks.size());
  const double threshold = background * 1.1;

  Table activity({"round", "phase", "energy_mJ", "cameras_triggered"});
  ReadingGenerator scene(topology.node_count(), /*seed=*/14);
  executor.InitializeState(scene.values());
  for (int round_index = 0; round_index < 12; ++round_index) {
    bool burst = round_index >= 4 && round_index < 8;
    std::vector<bool> changed = scene.Advance(burst ? 0.6 : 0.05);
    RoundResult round = executor.RunSuppressedRound(
        scene.values(), changed, OverridePolicy::kMedium);
    int triggered = 0;
    for (const auto& [camera, signal] : round.destination_values) {
      triggered += (signal > threshold);
    }
    activity.AddRow({std::to_string(round_index),
                     burst ? "animal activity" : "quiet",
                     Table::Num(round.energy_mj),
                     std::to_string(triggered)});
  }
  activity.Print(std::cout);
  std::printf(
      "\nOptimal plan used %.2f mJ per full round; bursts cost more radio "
      "energy but wake the cameras exactly when the habitat is active.\n",
      optimal_energy);
  return 0;
}
