// Quickstart: build a network, describe a many-to-many aggregation
// workload, plan it optimally, and run one round of in-network control.
//
//   ./quickstart

#include <cstdio>

#include "core/m2m.h"

int main() {
  using namespace m2m;

  // 1. A sensor network: the paper's default deployment (68 Mica2-class
  //    nodes in a 106 x 203 m^2 area, 50 m radio range).
  Topology topology = MakeGreatDuckIslandLike();
  std::printf("network: %d nodes, %d links, average degree %.1f\n",
              topology.node_count(), topology.link_count(),
              topology.average_degree());

  // 2. A workload: 14 destinations, each needing a weighted average of 20
  //    source readings drawn mostly from nearby nodes (dispersion 0.9).
  WorkloadSpec spec;
  spec.destination_count = 14;
  spec.sources_per_destination = 20;
  spec.dispersion = 0.9;
  spec.kind = AggregateKind::kWeightedAverage;
  spec.seed = 7;
  Workload workload = GenerateWorkload(topology, spec);

  // 3. Routing + optimization + compilation in one step. The planner
  //    solves a weighted bipartite vertex cover per multicast-tree edge and
  //    assembles the per-edge optima into a consistent global plan
  //    (Theorem 1), compiled into per-node routing/aggregation tables.
  System system(topology, workload);
  std::printf("plan: %zu multicast edges, %lld message units, %lld payload "
              "bytes per round\n",
              system.forest().edges().size(),
              static_cast<long long>(system.plan().TotalUnits()),
              static_cast<long long>(system.plan().TotalPayloadBytes()));

  // 4. Execute one round: every node reads its sensor, the network computes
  //    all 14 aggregates in-network, and the executor verifies each
  //    destination got exactly its aggregation function's value.
  PlanExecutor executor = system.MakeExecutor();
  ReadingGenerator readings(topology.node_count(), /*seed=*/42);
  RoundResult round = executor.RunRound(readings.values());
  std::printf("round: %.2f mJ across %lld messages\n", round.energy_mj,
              static_cast<long long>(round.messages));
  for (const auto& [destination, value] : round.destination_values) {
    std::printf("  control signal at node %d: %.3f\n", destination, value);
    break;  // One sample line is enough for the quickstart.
  }

  // 5. Compare against the two classical strategies the paper evaluates.
  for (PlanStrategy strategy :
       {PlanStrategy::kMulticastOnly, PlanStrategy::kAggregationOnly}) {
    SystemOptions options;
    options.planner.strategy = strategy;
    System baseline(topology, workload, options);
    RoundResult result =
        baseline.MakeExecutor().RunRound(readings.values());
    std::printf("baseline %-11s: %.2f mJ (optimal saves %.1f%%)\n",
                ToString(strategy).c_str(), result.energy_mj,
                100.0 * (result.energy_mj - round.energy_mj) /
                    result.energy_mj);
  }
  return 0;
}
