#ifndef M2M_COMMON_TABLE_H_
#define M2M_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace m2m {

/// Aligned text table used by the experiment harnesses to print the rows and
/// series the paper's figures report, plus a CSV form for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  Table(const Table&) = default;
  Table& operator=(const Table&) = default;

  /// Adds a row; must match the column count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  static std::string Num(double value, int precision = 2);

  /// Writes the table with aligned columns.
  void Print(std::ostream& os) const;

  /// Writes comma-separated values (header + rows).
  void PrintCsv(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace m2m

#endif  // M2M_COMMON_TABLE_H_
