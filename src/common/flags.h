#ifndef M2M_COMMON_FLAGS_H_
#define M2M_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace m2m {

/// Minimal command-line flag parser for the example binaries: accepts
/// `--name=value`, `--name value`, and bare `--name` (boolean true).
/// Unknown positional arguments are collected; `Get*` calls record each
/// flag's description so `Usage()` can print a help text.
class FlagParser {
 public:
  FlagParser(int argc, const char* const argv[]);

  FlagParser(const FlagParser&) = default;
  FlagParser& operator=(const FlagParser&) = default;

  std::string GetString(const std::string& name,
                        const std::string& default_value,
                        const std::string& description);
  int64_t GetInt(const std::string& name, int64_t default_value,
                 const std::string& description);
  double GetDouble(const std::string& name, double default_value,
                   const std::string& description);
  bool GetBool(const std::string& name, bool default_value,
               const std::string& description);

  /// True when --help/-h was passed.
  bool help_requested() const { return help_; }

  /// Flags present on the command line that no Get* call consumed; callers
  /// should treat a non-empty result as a usage error.
  std::vector<std::string> UnconsumedFlags() const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Help text built from the recorded descriptions.
  std::string Usage(const std::string& program_summary) const;

 private:
  struct Registered {
    std::string default_value;
    std::string description;
  };

  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::map<std::string, Registered> registered_;
  std::vector<std::string> positional_;
  bool help_ = false;
};

}  // namespace m2m

#endif  // M2M_COMMON_FLAGS_H_
