#ifndef M2M_COMMON_CRC32_H_
#define M2M_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace m2m {

/// Bytes appended to a payload by Crc32Frame.
inline constexpr int kCrc32FrameTrailerBytes = 4;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
uint32_t Crc32(const uint8_t* data, size_t size);
uint32_t Crc32(const std::vector<uint8_t>& bytes);

/// payload -> payload || crc32(payload), little-endian trailer.
std::vector<uint8_t> Crc32Frame(const std::vector<uint8_t>& payload);

/// Verifies and strips the CRC trailer. nullopt when the frame is shorter
/// than the trailer or the checksum mismatches (CRC32 detects every
/// single-bit flip and every burst error up to 32 bits).
std::optional<std::vector<uint8_t>> TryOpenCrc32Frame(
    const std::vector<uint8_t>& frame);

}  // namespace m2m

#endif  // M2M_COMMON_CRC32_H_
