#ifndef M2M_COMMON_STATS_H_
#define M2M_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace m2m {

/// Incremental mean / variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  RunningStat() = default;

  void Add(double x);
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile over a copy of the samples; p in [0, 100].
double Percentile(std::vector<double> samples, double p);

}  // namespace m2m

#endif  // M2M_COMMON_STATS_H_
