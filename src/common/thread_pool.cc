#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

#include "common/check.h"

namespace m2m {

ThreadPool::ThreadPool(int lanes) : lanes_(std::max(1, lanes)) {
  workers_.reserve(static_cast<size_t>(lanes_ - 1));
  for (int lane = 1; lane < lanes_; ++lane) {
    workers_.emplace_back([this, lane] { WorkerLoop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(int lane) {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    int shards = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      job = job_;
      shards = shards_;
    }
    for (int s = lane; s < shards; s += lanes_) (*job)(s);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++workers_done_;
      if (workers_done_ == lanes_ - 1) done_cv_.notify_one();
    }
  }
}

void ThreadPool::RunShards(int shards, const std::function<void(int)>& fn) {
  if (shards <= 0) return;
  if (lanes_ == 1 || shards == 1) {
    for (int s = 0; s < shards; ++s) fn(s);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    shards_ = shards;
    workers_done_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  // The calling thread is lane 0.
  for (int s = 0; s < shards; s += lanes_) fn(s);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_done_ == lanes_ - 1; });
  job_ = nullptr;
}

namespace {

std::mutex g_parallelism_mutex;
int g_threads = 1;
int g_shards = 0;  // 0 = follow g_threads.
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

void SetGlobalParallelism(int threads, int shards) {
  std::lock_guard<std::mutex> lock(g_parallelism_mutex);
  threads = std::max(1, threads);
  if (threads != g_threads) {
    g_pool.reset();  // Rebuilt lazily at the new lane count.
    g_threads = threads;
  }
  g_shards = std::max(0, shards);
}

int GlobalThreadCount() {
  std::lock_guard<std::mutex> lock(g_parallelism_mutex);
  return g_threads;
}

int GlobalShardCount() {
  std::lock_guard<std::mutex> lock(g_parallelism_mutex);
  return g_shards > 0 ? g_shards : g_threads;
}

ThreadPool* GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_parallelism_mutex);
  if (g_threads == 1) return nullptr;
  if (g_pool == nullptr) g_pool = std::make_unique<ThreadPool>(g_threads);
  return g_pool.get();
}

void ParallelFor(int64_t n,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ParallelForShards(n, [&fn](int, int64_t begin, int64_t end) {
    fn(begin, end);
  });
}

void ParallelForShards(
    int64_t n, const std::function<void(int, int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  ThreadPool* pool = GlobalThreadPool();
  const int64_t shard_count =
      std::min<int64_t>(n, pool == nullptr ? 1 : GlobalShardCount());
  if (pool == nullptr || shard_count == 1) {
    fn(0, 0, n);
    return;
  }
  pool->RunShards(static_cast<int>(shard_count), [&](int s) {
    const int64_t begin = n * s / shard_count;
    const int64_t end = n * (s + 1) / shard_count;
    if (begin < end) fn(s, begin, end);
  });
}

ScopedParallelism::ScopedParallelism(int threads, int shards)
    : prev_threads_(GlobalThreadCount()), prev_shards_(GlobalShardCount()) {
  SetGlobalParallelism(threads, shards);
}

ScopedParallelism::~ScopedParallelism() {
  SetGlobalParallelism(prev_threads_, prev_shards_);
}

}  // namespace m2m
