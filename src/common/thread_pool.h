#ifndef M2M_COMMON_THREAD_POOL_H_
#define M2M_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace m2m {

/// Fork-join worker pool for deterministic data parallelism.
///
/// Work is always expressed as a fixed number of *shards*: shard s runs
/// exactly once, lane w executes shards w, w + lanes, w + 2*lanes, ... in
/// increasing order, and the call returns only when every shard finished.
/// Callers assign outputs by shard or element index — never by completion
/// order — so results are byte-identical for every thread count (see
/// THEORY.md §12).
class ThreadPool {
 public:
  /// `lanes` >= 1 total execution lanes. The calling thread is lane 0, so
  /// `lanes - 1` workers are spawned; `lanes == 1` spawns nothing and every
  /// Run call degenerates to an inline loop.
  explicit ThreadPool(int lanes);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int lanes() const { return lanes_; }

  /// Runs fn(shard) for every shard in [0, shards). Not reentrant: fn must
  /// not call back into the same pool.
  void RunShards(int shards, const std::function<void(int)>& fn);

 private:
  void WorkerLoop(int lane);

  const int lanes_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  int shards_ = 0;
  const std::function<void(int)>* job_ = nullptr;
  int workers_done_ = 0;
  bool stopping_ = false;
};

/// Global parallelism knobs. Defaults to 1 thread — every entry point is
/// serial and byte-stable unless a caller (bench flag, test fixture) opts
/// in. `threads` is the number of fork-join lanes; `shards` is the number
/// of work partitions per fork-join region, 0 meaning "same as threads".
/// The shard count changes scheduling only, never results — the
/// order-independence property tests drive adversarial (prime, 1, > n)
/// shard geometries against it. Not safe to call concurrently with running
/// rounds; flip it between rounds, as the bench drivers and tests do.
void SetGlobalParallelism(int threads, int shards = 0);
int GlobalThreadCount();
int GlobalShardCount();

/// Pool matching the configured thread count, created lazily after each
/// SetGlobalParallelism change; nullptr when threads == 1 (serial mode).
ThreadPool* GlobalThreadPool();

/// Runs fn(begin, end) over contiguous index ranges covering [0, n):
/// shard s gets [s*n/S, (s+1)*n/S) for S = GlobalShardCount(). Serial mode
/// is one inline fn(0, n) call — zero overhead on the default path.
void ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& fn);

/// As ParallelFor, but fn also receives the shard index (for shard-local
/// accumulators merged deterministically by the caller afterwards).
void ParallelForShards(
    int64_t n, const std::function<void(int, int64_t, int64_t)>& fn);

/// RAII parallelism override for tests and benches: restores the previous
/// (threads, shards) configuration on destruction.
class ScopedParallelism {
 public:
  explicit ScopedParallelism(int threads, int shards = 0);
  ~ScopedParallelism();

  ScopedParallelism(const ScopedParallelism&) = delete;
  ScopedParallelism& operator=(const ScopedParallelism&) = delete;

 private:
  int prev_threads_;
  int prev_shards_;
};

}  // namespace m2m

#endif  // M2M_COMMON_THREAD_POOL_H_
