#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace m2m {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double RunningStat::min() const {
  M2M_CHECK_GT(count_, 0u);
  return min_;
}

double RunningStat::max() const {
  M2M_CHECK_GT(count_, 0u);
  return max_;
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> samples, double p) {
  M2M_CHECK(!samples.empty());
  M2M_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace m2m
