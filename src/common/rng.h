#ifndef M2M_COMMON_RNG_H_
#define M2M_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace m2m {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. All experiments are reproducible given a seed; we do not use
/// std::mt19937 so that streams are identical across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Sample an index from a discrete distribution given non-negative weights
  /// (not necessarily normalized). Requires a positive total weight.
  size_t SampleDiscrete(const std::vector<double>& weights);

  /// Fork a new independent generator; deterministic in (this stream, label).
  Rng Fork(uint64_t label);

 private:
  uint64_t state_[4];
};

/// SplitMix64 step: hashes `x` to a well-mixed 64-bit value. Exposed for
/// deterministic per-entity perturbations (edge weights, cover tiebreakers).
uint64_t SplitMix64(uint64_t x);

}  // namespace m2m

#endif  // M2M_COMMON_RNG_H_
