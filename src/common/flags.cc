#include "common/flags.h"

#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace m2m {

FlagParser::FlagParser(int argc, const char* const argv[]) {
  M2M_CHECK_GT(argc, 0);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t equals = body.find('=');
    if (equals != std::string::npos) {
      values_[body.substr(0, equals)] = body.substr(equals + 1);
      continue;
    }
    // `--name value` unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value,
                                  const std::string& description) {
  registered_[name] = Registered{default_value, description};
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  consumed_[name] = true;
  return it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t default_value,
                           const std::string& description) {
  std::string raw =
      GetString(name, std::to_string(default_value), description);
  char* end = nullptr;
  int64_t value = std::strtoll(raw.c_str(), &end, 10);
  M2M_CHECK(end != nullptr && *end == '\0')
      << "--" << name << " expects an integer, got '" << raw << "'";
  return value;
}

double FlagParser::GetDouble(const std::string& name, double default_value,
                             const std::string& description) {
  std::ostringstream default_text;
  default_text << default_value;
  std::string raw = GetString(name, default_text.str(), description);
  char* end = nullptr;
  double value = std::strtod(raw.c_str(), &end);
  M2M_CHECK(end != nullptr && *end == '\0')
      << "--" << name << " expects a number, got '" << raw << "'";
  return value;
}

bool FlagParser::GetBool(const std::string& name, bool default_value,
                         const std::string& description) {
  std::string raw =
      GetString(name, default_value ? "true" : "false", description);
  if (raw == "true" || raw == "1" || raw == "yes") return true;
  if (raw == "false" || raw == "0" || raw == "no") return false;
  M2M_CHECK(false) << "--" << name << " expects a boolean, got '" << raw
                   << "'";
}

std::vector<std::string> FlagParser::UnconsumedFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (!consumed_.contains(name) && !registered_.contains(name)) {
      out.push_back(name);
    }
  }
  return out;
}

std::string FlagParser::Usage(const std::string& program_summary) const {
  std::ostringstream out;
  out << program_ << " — " << program_summary << "\n\nFlags:\n";
  for (const auto& [name, info] : registered_) {
    out << "  --" << name << " (default: " << info.default_value << ")\n"
        << "      " << info.description << "\n";
  }
  return out.str();
}

}  // namespace m2m
