#include "common/bytes.h"

#include <cstring>

#include "common/check.h"

namespace m2m {

void ByteWriter::WriteU8(uint8_t value) { bytes_.push_back(value); }

void ByteWriter::WriteU16(uint16_t value) {
  bytes_.push_back(static_cast<uint8_t>(value & 0xff));
  bytes_.push_back(static_cast<uint8_t>(value >> 8));
}

void ByteWriter::WriteU32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>((value >> shift) & 0xff));
  }
}

void ByteWriter::WriteI32(int32_t value) {
  WriteU32(static_cast<uint32_t>(value));
}

void ByteWriter::WriteF32(float value) {
  static_assert(sizeof(float) == 4);
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU32(bits);
}

void ByteWriter::WriteVarint(uint64_t value) {
  while (value >= 0x80) {
    bytes_.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  bytes_.push_back(static_cast<uint8_t>(value));
}

uint8_t ByteReader::ReadU8() {
  M2M_CHECK_LT(cursor_, bytes_.size()) << "read past end";
  return bytes_[cursor_++];
}

uint16_t ByteReader::ReadU16() {
  uint16_t lo = ReadU8();
  uint16_t hi = ReadU8();
  return static_cast<uint16_t>(lo | (hi << 8));
}

uint32_t ByteReader::ReadU32() {
  uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<uint32_t>(ReadU8()) << shift;
  }
  return value;
}

int32_t ByteReader::ReadI32() { return static_cast<int32_t>(ReadU32()); }

float ByteReader::ReadF32() {
  uint32_t bits = ReadU32();
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

uint64_t ByteReader::ReadVarint() {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    M2M_CHECK_LT(shift, 64) << "varint too long";
    uint8_t byte = ReadU8();
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

}  // namespace m2m
