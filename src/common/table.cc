#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace m2m {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  M2M_CHECK(!columns_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  M2M_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(columns_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit_row(columns_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace m2m
