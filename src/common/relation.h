#ifndef M2M_COMMON_RELATION_H_
#define M2M_COMMON_RELATION_H_

#include <vector>

#include "common/ids.h"

namespace m2m {

/// One aggregation task: the destination node plus the set of source nodes
/// whose readings feed its aggregation function. The full many-to-many
/// producer-consumer relation is a list of tasks (at most one per
/// destination, per the paper's simplifying assumption).
struct Task {
  NodeId destination = kInvalidNode;
  std::vector<NodeId> sources;

  friend bool operator==(const Task&, const Task&) = default;
};

/// Flattens tasks into the set of (source, destination) pairs.
std::vector<SourceDestPair> TasksToPairs(const std::vector<Task>& tasks);

}  // namespace m2m

#endif  // M2M_COMMON_RELATION_H_
