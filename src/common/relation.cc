#include "common/relation.h"

namespace m2m {

std::vector<SourceDestPair> TasksToPairs(const std::vector<Task>& tasks) {
  std::vector<SourceDestPair> pairs;
  for (const Task& task : tasks) {
    for (NodeId s : task.sources) {
      pairs.push_back(SourceDestPair{s, task.destination});
    }
  }
  return pairs;
}

}  // namespace m2m
