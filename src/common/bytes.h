#ifndef M2M_COMMON_BYTES_H_
#define M2M_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace m2m {

/// Little-endian binary writer used for wire formats (plan dissemination,
/// node-table images). Integers use fixed widths; unsigned varints are
/// available where table sizes dominate.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(uint8_t value);
  void WriteU16(uint16_t value);
  void WriteU32(uint32_t value);
  void WriteI32(int32_t value);
  void WriteF32(float value);
  /// LEB128-style unsigned varint (1 byte for values < 128).
  void WriteVarint(uint64_t value);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Matching reader. Out-of-bounds or malformed reads CHECK-fail: plan
/// images are produced by this library, so corruption is a programming
/// error, not an input error.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  uint8_t ReadU8();
  uint16_t ReadU16();
  uint32_t ReadU32();
  int32_t ReadI32();
  float ReadF32();
  uint64_t ReadVarint();

  bool AtEnd() const { return cursor_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - cursor_; }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t cursor_ = 0;
};

}  // namespace m2m

#endif  // M2M_COMMON_BYTES_H_
