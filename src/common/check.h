#ifndef M2M_COMMON_CHECK_H_
#define M2M_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Runtime invariant checks. A failed check indicates a programming error or a
// violated theorem precondition; it prints the failing condition with file and
// line, then aborts. These are always on (they guard correctness results such
// as plan consistency, not performance-only assertions).

namespace m2m::internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* condition,
                                   const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Stream adapter so CHECK(...) << "context" works.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFail(file_, line_, condition_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace m2m::internal

#define M2M_CHECK(condition)                                      \
  while (!(condition))                                            \
  ::m2m::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define M2M_CHECK_EQ(a, b) M2M_CHECK((a) == (b))
#define M2M_CHECK_NE(a, b) M2M_CHECK((a) != (b))
#define M2M_CHECK_LT(a, b) M2M_CHECK((a) < (b))
#define M2M_CHECK_LE(a, b) M2M_CHECK((a) <= (b))
#define M2M_CHECK_GT(a, b) M2M_CHECK((a) > (b))
#define M2M_CHECK_GE(a, b) M2M_CHECK((a) >= (b))

#endif  // M2M_COMMON_CHECK_H_
