#ifndef M2M_COMMON_IDS_H_
#define M2M_COMMON_IDS_H_

#include <cstdint>
#include <functional>

namespace m2m {

/// Identifier of a sensor node. Nodes are numbered densely from 0.
using NodeId = int32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = -1;

/// A directed edge between two nodes (tail -> head). Used both for physical
/// one-hop edges and for virtual milestone edges.
struct DirectedEdge {
  NodeId tail = kInvalidNode;
  NodeId head = kInvalidNode;

  friend bool operator==(const DirectedEdge&, const DirectedEdge&) = default;
  friend auto operator<=>(const DirectedEdge&, const DirectedEdge&) = default;
};

struct DirectedEdgeHash {
  size_t operator()(const DirectedEdge& e) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(e.tail) << 32) ^
                                 static_cast<uint32_t>(e.head));
  }
};

/// An ordered (source, destination) pair in the producer-consumer relation.
struct SourceDestPair {
  NodeId source = kInvalidNode;
  NodeId destination = kInvalidNode;

  friend bool operator==(const SourceDestPair&,
                         const SourceDestPair&) = default;
  friend auto operator<=>(const SourceDestPair&,
                          const SourceDestPair&) = default;
};

struct SourceDestPairHash {
  size_t operator()(const SourceDestPair& p) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(p.source) << 32) ^
                                 static_cast<uint32_t>(p.destination));
  }
};

}  // namespace m2m

#endif  // M2M_COMMON_IDS_H_
