#include "common/crc32.h"

#include <array>

namespace m2m {

namespace {

const uint32_t* Crc32Table() {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table.data();
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::vector<uint8_t>& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

std::vector<uint8_t> Crc32Frame(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame = payload;
  uint32_t crc = Crc32(payload);
  for (int i = 0; i < kCrc32FrameTrailerBytes; ++i) {
    frame.push_back(static_cast<uint8_t>((crc >> (8 * i)) & 0xFFu));
  }
  return frame;
}

std::optional<std::vector<uint8_t>> TryOpenCrc32Frame(
    const std::vector<uint8_t>& frame) {
  if (frame.size() < static_cast<size_t>(kCrc32FrameTrailerBytes)) {
    return std::nullopt;
  }
  size_t payload_size = frame.size() - kCrc32FrameTrailerBytes;
  uint32_t stored = 0;
  for (int i = 0; i < kCrc32FrameTrailerBytes; ++i) {
    stored |= static_cast<uint32_t>(frame[payload_size + i]) << (8 * i);
  }
  if (Crc32(frame.data(), payload_size) != stored) return std::nullopt;
  return std::vector<uint8_t>(frame.begin(),
                              frame.begin() + static_cast<ptrdiff_t>(payload_size));
}

}  // namespace m2m
