#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace m2m {

namespace {

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    s = SplitMix64(s);
    word = s;
  }
  // xoshiro must not be seeded with all zeros; SplitMix64(0..3 steps) never
  // produces four zero words, but keep the guard explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  M2M_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  M2M_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::SampleDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    M2M_CHECK_GE(w, 0.0);
    total += w;
  }
  M2M_CHECK_GT(total, 0.0) << "discrete distribution has no mass";
  double r = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  // Floating-point tail: return the last index with positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t label) {
  return Rng(SplitMix64(Next() ^ SplitMix64(label)));
}

}  // namespace m2m
