#ifndef M2M_COVER_BIPARTITE_COVER_H_
#define M2M_COVER_BIPARTITE_COVER_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace m2m {

/// A vertex of a weighted bipartite vertex cover instance. `node` is the
/// sensor node this vertex stands for (a source on the U side, a destination
/// on the V side); `weight` is the perturbed transmission cost of choosing
/// this vertex (raw value size for sources, partial record size for
/// destinations).
struct CoverVertex {
  NodeId node = kInvalidNode;
  int64_t weight = 0;
};

/// One single-edge optimization problem (paper Figure 2): sources U,
/// destinations V, and the producer-consumer edges between them.
struct BipartiteInstance {
  std::vector<CoverVertex> sources;       ///< U side.
  std::vector<CoverVertex> destinations;  ///< V side.
  /// Edges as (index into sources, index into destinations).
  std::vector<std::pair<int, int>> edges;
};

/// Which vertices the minimum-weight cover picked. A chosen source means
/// "transmit this source's value raw"; a chosen destination means "aggregate
/// everything upstream for this destination and transmit one partial
/// record".
struct CoverSolution {
  std::vector<bool> source_in_cover;
  std::vector<bool> destination_in_cover;
  int64_t total_weight = 0;
};

/// Exact minimum weighted bipartite vertex cover via max-flow/min-cut
/// (polynomial; the "standard network flow techniques" the paper cites).
CoverSolution SolveMinWeightVertexCover(const BipartiteInstance& instance);

/// True iff every edge of the instance has at least one endpoint chosen.
bool IsVertexCover(const BipartiteInstance& instance,
                   const CoverSolution& solution);

/// Weight of an arbitrary (not necessarily optimal) choice of vertices.
int64_t CoverWeight(const BipartiteInstance& instance,
                    const CoverSolution& solution);

/// Perturbed vertex weight: `byte_size` in the high bits plus a
/// deterministic pseudo-random tiebreaker that is *consistent for the same
/// (node, role) across every per-edge instance* (paper section 2.3: unique
/// minima are required for Theorem 1; consistent tiebreakers provide them
/// with overwhelming probability). Recover the byte size with
/// `WeightToBytes`.
int64_t PerturbedWeight(int byte_size, NodeId node, bool is_destination,
                        uint64_t tiebreak_seed);

/// Byte size encoded in a perturbed weight (also valid for sums of weights:
/// total payload bytes of a cover).
int64_t WeightToBytes(int64_t weight);

}  // namespace m2m

#endif  // M2M_COVER_BIPARTITE_COVER_H_
