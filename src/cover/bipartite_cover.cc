#include "cover/bipartite_cover.h"

#include "common/check.h"
#include "common/rng.h"
#include "flow/max_flow.h"

namespace m2m {

namespace {

// Byte sizes live in bits [36, 62); tiebreakers in [0, 36) but capped at 24
// bits so that sums over up to 2^12 cover vertices never carry into the byte
// field.
constexpr int kByteShift = 36;
constexpr uint64_t kTiebreakMask = (uint64_t{1} << 24) - 1;

}  // namespace

int64_t PerturbedWeight(int byte_size, NodeId node, bool is_destination,
                        uint64_t tiebreak_seed) {
  M2M_CHECK_GT(byte_size, 0);
  M2M_CHECK_LT(byte_size, 1 << 14);
  uint64_t h = SplitMix64(tiebreak_seed ^
                          ((static_cast<uint64_t>(node) << 1) |
                           (is_destination ? 1u : 0u)));
  int64_t epsilon = static_cast<int64_t>(h & kTiebreakMask) + 1;
  return (static_cast<int64_t>(byte_size) << kByteShift) + epsilon;
}

int64_t WeightToBytes(int64_t weight) { return weight >> kByteShift; }

CoverSolution SolveMinWeightVertexCover(const BipartiteInstance& instance) {
  const int u_count = static_cast<int>(instance.sources.size());
  const int v_count = static_cast<int>(instance.destinations.size());
  CoverSolution solution;
  solution.source_in_cover.assign(u_count, false);
  solution.destination_in_cover.assign(v_count, false);
  if (instance.edges.empty()) return solution;

  // Flow network: source 0, sink 1, U vertices 2..2+u, V after U.
  const int s = 0;
  const int t = 1;
  auto u_vertex = [&](int i) { return 2 + i; };
  auto v_vertex = [&](int j) { return 2 + u_count + j; };
  MaxFlow flow(2 + u_count + v_count);
  int64_t total_finite = 0;
  for (int i = 0; i < u_count; ++i) {
    M2M_CHECK_GT(instance.sources[i].weight, 0);
    flow.AddEdge(s, u_vertex(i), instance.sources[i].weight);
    total_finite += instance.sources[i].weight;
  }
  for (int j = 0; j < v_count; ++j) {
    M2M_CHECK_GT(instance.destinations[j].weight, 0);
    flow.AddEdge(v_vertex(j), t, instance.destinations[j].weight);
    total_finite += instance.destinations[j].weight;
  }
  M2M_CHECK_LT(total_finite, MaxFlow::kInfinity / 2)
      << "vertex weights too large for the flow reduction";
  for (const auto& [i, j] : instance.edges) {
    M2M_CHECK(i >= 0 && i < u_count);
    M2M_CHECK(j >= 0 && j < v_count);
    flow.AddEdge(u_vertex(i), v_vertex(j), MaxFlow::kInfinity);
  }

  solution.total_weight = flow.Solve(s, t);
  // Min cut -> cover: a U vertex is in the cover iff its s-edge is cut
  // (unreachable in the residual graph); a V vertex iff its t-edge is cut
  // (still reachable).
  std::vector<bool> reachable = flow.MinCutSide(s);
  for (int i = 0; i < u_count; ++i) {
    solution.source_in_cover[i] = !reachable[u_vertex(i)];
  }
  for (int j = 0; j < v_count; ++j) {
    solution.destination_in_cover[j] = reachable[v_vertex(j)];
  }
  M2M_CHECK(IsVertexCover(instance, solution));
  M2M_CHECK_EQ(CoverWeight(instance, solution), solution.total_weight);
  return solution;
}

bool IsVertexCover(const BipartiteInstance& instance,
                   const CoverSolution& solution) {
  for (const auto& [i, j] : instance.edges) {
    if (!solution.source_in_cover[i] && !solution.destination_in_cover[j]) {
      return false;
    }
  }
  return true;
}

int64_t CoverWeight(const BipartiteInstance& instance,
                    const CoverSolution& solution) {
  int64_t total = 0;
  for (size_t i = 0; i < instance.sources.size(); ++i) {
    if (solution.source_in_cover[i]) total += instance.sources[i].weight;
  }
  for (size_t j = 0; j < instance.destinations.size(); ++j) {
    if (solution.destination_in_cover[j]) {
      total += instance.destinations[j].weight;
    }
  }
  return total;
}

}  // namespace m2m
