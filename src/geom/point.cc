#include "geom/point.h"

#include <algorithm>
#include <cmath>

namespace m2m {

double DistanceSquared(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSquared(a, b));
}

Point Area::Clamp(const Point& p) const {
  return Point{std::clamp(p.x, 0.0, width), std::clamp(p.y, 0.0, height)};
}

}  // namespace m2m
