#ifndef M2M_GEOM_POINT_H_
#define M2M_GEOM_POINT_H_

namespace m2m {

/// 2-D position in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// Squared Euclidean distance (avoids the sqrt when comparing against a
/// squared radius).
double DistanceSquared(const Point& a, const Point& b);

/// Axis-aligned rectangle [0, width] x [0, height].
struct Area {
  double width = 0.0;
  double height = 0.0;

  double size() const { return width * height; }
  bool Contains(const Point& p) const {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }
  /// Clamps a point into the rectangle.
  Point Clamp(const Point& p) const;
};

}  // namespace m2m

#endif  // M2M_GEOM_POINT_H_
