#include "runtime/detector.h"

#include <algorithm>

#include "common/check.h"

namespace m2m {

FailureDetector::FailureDetector(const Topology& topology,
                                 DetectorOptions options)
    : topology_(&topology), options_(options) {
  M2M_CHECK_GE(options_.suspicion_threshold, 1);
  M2M_CHECK_GE(options_.probe_attempts, 1);
  M2M_CHECK_GE(options_.probation_rounds, 1);
  M2M_CHECK_GE(options_.probation_backoff_factor, 1);
  M2M_CHECK_GE(options_.max_probation_rounds, options_.probation_rounds);
  M2M_CHECK_GE(options_.flap_forgiveness_rounds, 1);
}

int FailureDetector::EscalatedProbation(
    const std::pair<NodeId, NodeId>& link, int round) {
  if (options_.probation_backoff_factor <= 1) return options_.probation_rounds;
  auto it = flaps_.find(link);
  if (it != flaps_.end() && it->second.last_readmit_round >= 0 &&
      round - it->second.last_readmit_round >
          options_.flap_forgiveness_rounds) {
    // The link behaved for a full forgiveness window since its last
    // readmission: wipe the streak so this suspicion starts from the base
    // probation again.
    flaps_.erase(it);
    it = flaps_.end();
  }
  FlapRecord& record = it == flaps_.end() ? flaps_[link] : it->second;
  const int prior = record.resuspicions;
  ++record.resuspicions;
  int required = options_.probation_rounds;
  for (int i = 0; i < prior; ++i) {
    if (required > options_.max_probation_rounds /
                       options_.probation_backoff_factor) {
      return options_.max_probation_rounds;
    }
    required *= options_.probation_backoff_factor;
  }
  return std::min(required, options_.max_probation_rounds);
}

FailureDetector::RoundReport FailureDetector::ObserveRound(
    int round, const std::set<std::pair<NodeId, NodeId>>& heard,
    const AttemptDelivers& attempt_delivers,
    const std::function<bool(NodeId)>& node_active) {
  M2M_CHECK(attempt_delivers != nullptr);
  RoundReport report;
  for (NodeId monitor = 0; monitor < topology_->node_count(); ++monitor) {
    if (node_active != nullptr && !node_active(monitor)) continue;
    for (NodeId neighbor : topology_->neighbors(monitor)) {
      const std::pair<NodeId, NodeId> link{monitor, neighbor};

      // Free evidence first: did the monitor overhear the neighbor during
      // the round's data/ack traffic?
      bool evidence = heard.contains({neighbor, monitor});

      if (!evidence) {
        // Silent neighbor: run the explicit probe exchange — also on
        // suspected links, which is what makes readmission possible at
        // all. The monitor transmits probes until one gets through, then
        // the neighbor transmits replies until one gets through. Each leg
        // burns real transmissions, which the report charges.
        bool probe_received = false;
        for (int k = 1; k <= options_.probe_attempts; ++k) {
          report.probe_transmissions += 1;
          if (attempt_delivers(monitor, neighbor, kProbeAttemptBase + k)) {
            probe_received = true;
            break;
          }
        }
        if (probe_received) {
          for (int k = 1; k <= options_.probe_attempts; ++k) {
            report.probe_transmissions += 1;
            if (attempt_delivers(neighbor, monitor,
                                 kProbeReplyAttemptBase + k)) {
              evidence = true;
              break;
            }
          }
        }
        if (evidence) report.probe_confirmations += 1;
      }

      auto suspicion_it = suspected_.find(link);
      if (suspicion_it != suspected_.end()) {
        // Suspected (possibly in probation): evidence advances probation,
        // silence resets it. Retraction requires `probation_rounds`
        // *consecutive* evidence rounds — the hysteresis that keeps a
        // flapping link quarantined.
        if (evidence) {
          missed_[link] = 0;
          if (++suspicion_it->second.probation_progress >=
              suspicion_it->second.required_probation) {
            suspected_.erase(suspicion_it);
            if (options_.probation_backoff_factor > 1) {
              flaps_[link].last_readmit_round = round;
            }
            report.readmitted.push_back(
                SuspectedLink{monitor, neighbor, round});
          }
        } else {
          suspicion_it->second.probation_progress = 0;
          ++missed_[link];
        }
        continue;
      }

      if (evidence) {
        missed_[link] = 0;
        continue;
      }
      const int missed = ++missed_[link];
      if (missed >= options_.suspicion_threshold) {
        suspected_.emplace(
            link, Suspicion{round, 0, EscalatedProbation(link, round)});
        report.new_suspicions.push_back(
            SuspectedLink{monitor, neighbor, round});
      }
    }
  }
  return report;
}

std::vector<SuspectedLink> FailureDetector::suspicions() const {
  std::vector<SuspectedLink> out;
  out.reserve(suspected_.size());
  for (const auto& [link, suspicion] : suspected_) {
    out.push_back(
        SuspectedLink{link.first, link.second, suspicion.raised_round});
  }
  return out;
}

bool FailureDetector::Suspects(NodeId monitor, NodeId neighbor) const {
  return suspected_.contains({monitor, neighbor});
}

bool FailureDetector::InProbation(NodeId monitor, NodeId neighbor) const {
  auto it = suspected_.find({monitor, neighbor});
  return it != suspected_.end() && it->second.probation_progress > 0;
}

int FailureDetector::probation_link_count() const {
  int count = 0;
  for (const auto& [link, suspicion] : suspected_) {
    if (suspicion.probation_progress > 0) ++count;
  }
  return count;
}

int FailureDetector::missed_rounds(NodeId monitor, NodeId neighbor) const {
  auto it = missed_.find({monitor, neighbor});
  return it == missed_.end() ? 0 : it->second;
}

int FailureDetector::required_probation(NodeId monitor,
                                        NodeId neighbor) const {
  auto it = suspected_.find({monitor, neighbor});
  return it == suspected_.end() ? 0 : it->second.required_probation;
}

int FailureDetector::flap_count(NodeId monitor, NodeId neighbor) const {
  auto it = flaps_.find({monitor, neighbor});
  return it == flaps_.end() ? 0 : it->second.resuspicions;
}

}  // namespace m2m
