#ifndef M2M_RUNTIME_PARTITION_H_
#define M2M_RUNTIME_PARTITION_H_

#include <utility>
#include <vector>

#include "common/ids.h"
#include "topology/topology.h"

namespace m2m {

/// Connected-component labeling of a (possibly failure- or
/// mobility-masked) topology: the partition-tolerance layer's ground truth
/// and belief substrate. Components are numbered 0.. in order of their
/// lowest member id, so the labeling is deterministic. Dead nodes carry
/// component -1.
struct ComponentMap {
  std::vector<int> component;  ///< Per node; -1 for dead nodes.
  int component_count = 0;

  int ComponentOf(NodeId n) const {
    return component[static_cast<size_t>(n)];
  }
  bool SameComponent(NodeId a, NodeId b) const {
    return ComponentOf(a) >= 0 && ComponentOf(a) == ComponentOf(b);
  }
  /// Members of component `c`, ascending.
  std::vector<NodeId> Members(int c) const;
  /// Size of each component, indexed by component id.
  std::vector<int> Sizes() const;
};

/// Components of `topology`'s own adjacency.
ComponentMap BuildComponents(const Topology& topology);

/// Components of `topology` minus `down_links` (undirected) and every link
/// incident to a node in `dead_nodes`. Dead nodes get component -1.
ComponentMap BuildComponents(
    const Topology& topology,
    const std::vector<std::pair<NodeId, NodeId>>& down_links,
    const std::vector<NodeId>& dead_nodes);

}  // namespace m2m

#endif  // M2M_RUNTIME_PARTITION_H_
