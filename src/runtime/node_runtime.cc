#include "runtime/node_runtime.h"

#include <utility>

#include "agg/aggregate_function.h"
#include "common/bytes.h"
#include "common/check.h"
#include "runtime/wire_functions.h"

namespace m2m {

namespace {

// Packet unit tag: bit 0 = partial record, bits 4..6 = field count.
constexpr uint8_t kPartialBit = 0x01;

uint8_t MakeTag(bool is_partial, int field_count) {
  M2M_CHECK(field_count >= 1 && field_count <= 7);
  return static_cast<uint8_t>((is_partial ? kPartialBit : 0) |
                              (field_count << 4));
}

}  // namespace

NodeRuntime::NodeRuntime(NodeId id, const std::vector<uint8_t>& image)
    : id_(id), state_(DecodeNodeState(image)) {}

bool NodeRuntime::InstallImage(const std::vector<uint8_t>& image) {
  DecodedNodeState incoming = DecodeNodeState(image);
  if (incoming.plan_epoch == state_.plan_epoch) return true;  // Duplicate.
  if (incoming.plan_epoch < state_.plan_epoch) {
    // Stale lineage (e.g. a partition heals and the other side disseminated
    // under an older epoch): the higher epoch wins, deterministically.
    return false;
  }
  state_ = std::move(incoming);
  // Epoch transition: drop all round state. Old-epoch partials must not
  // survive into the new plan (no cross-epoch merges), and message ids /
  // accumulator shapes may have changed anyway.
  round_active_ = false;
  raw_values_.clear();
  accumulators_.clear();
  ready_units_.clear();
  complete_messages_.clear();
  pending_emits_.clear();
  final_value_.reset();
  seen_packets_.clear();
  return true;
}

void NodeRuntime::StartRound(double reading) {
  round_active_ = true;
  raw_values_.clear();
  accumulators_.clear();
  ready_units_.clear();
  complete_messages_.clear();
  pending_emits_.clear();
  final_value_.reset();
  seen_packets_.clear();

  for (size_t i = 0; i < state_.state.partial_table.size(); ++i) {
    const PartialTableEntry& entry = state_.state.partial_table[i];
    Accumulator accumulator;
    accumulator.expected = entry.expected_contributions;
    accumulator.local_message = entry.message_id;
    accumulator.kind = state_.partial_kinds[i];
    M2M_CHECK(accumulators_.emplace(entry.destination, accumulator).second)
        << "node " << id_ << " has two partial entries for destination "
        << entry.destination;
  }
  // The node's own reading enters the pipeline like any other raw value.
  AcceptRawValue(id_, reading);
}

void NodeRuntime::AcceptRawValue(NodeId source, double value) {
  M2M_CHECK(round_active_);
  if (!raw_values_.emplace(source, value).second) {
    // Duplicate delivery (e.g. the node's own reading with no table use);
    // raw values are idempotent by source.
    return;
  }
  for (const RawTableEntry& entry : state_.state.raw_table) {
    if (entry.source == source) MarkUnitReady(entry.message_id);
  }
  for (size_t i = 0; i < state_.state.preagg_table.size(); ++i) {
    const PreAggTableEntry& entry = state_.state.preagg_table[i];
    if (entry.source != source) continue;
    const DecodedPreAggMeta& meta = state_.preagg_meta[i];
    AcceptPartialRecord(entry.destination,
                        wire::PreAggregate(meta.kind, meta.weight,
                                           meta.param, source, value));
    // Pre-aggregation is where a raw reading becomes a partial record, so
    // this is where its source enters the coverage summary.
    MergeSummaryInto(entry.destination, wire::SingleSource(source));
  }
}

void NodeRuntime::MergeSummaryInto(NodeId destination,
                                   const wire::SourceSummary& summary) {
  auto it = accumulators_.find(destination);
  M2M_CHECK(it != accumulators_.end());
  wire::SourceSummary& mine = it->second.summary;
  mine = mine.count == 0 ? summary : wire::MergeSummaries(mine, summary);
}

void NodeRuntime::AcceptPartialRecord(NodeId destination,
                                      const PartialRecord& record) {
  M2M_CHECK(round_active_);
  auto it = accumulators_.find(destination);
  M2M_CHECK(it != accumulators_.end())
      << "node " << id_ << " received a partial record for destination "
      << destination << " it has no table entry for";
  Accumulator& accumulator = it->second;
  accumulator.record = accumulator.has_record
                           ? wire::Merge(accumulator.kind,
                                         accumulator.record, record)
                           : record;
  accumulator.has_record = true;
  accumulator.received += 1;
  M2M_CHECK_LE(accumulator.received, accumulator.expected)
      << "node " << id_ << " over-received for destination " << destination;
  if (accumulator.received == accumulator.expected) {
    CompleteAccumulator(destination, accumulator);
  }
}

void NodeRuntime::CompleteAccumulator(NodeId destination,
                                      Accumulator& accumulator) {
  if (accumulator.local_message < 0) {
    // This node is the destination: evaluate.
    M2M_CHECK_EQ(destination, id_);
    final_value_ = wire::Evaluate(accumulator.kind, accumulator.record);
    return;
  }
  MarkUnitReady(accumulator.local_message);
}

void NodeRuntime::MarkUnitReady(int local_message) {
  M2M_CHECK(local_message >= 0 &&
            local_message <
                static_cast<int>(state_.state.outgoing_table.size()));
  int ready = ++ready_units_[local_message];
  int expected = state_.state.outgoing_table[local_message].unit_count;
  M2M_CHECK_LE(ready, expected) << "message over-filled at node " << id_;
  if (ready == expected) {
    M2M_CHECK(complete_messages_.insert(local_message).second);
    pending_emits_.push_back(local_message);
  }
}

std::vector<NodeRuntime::OutgoingPacket> NodeRuntime::DrainReadyPackets() {
  std::vector<OutgoingPacket> packets;
  for (int local_message : pending_emits_) {
    const OutgoingMessageEntry& entry =
        state_.state.outgoing_table[local_message];
    ByteWriter writer;
    writer.WriteVarint(static_cast<uint64_t>(entry.unit_count));
    int written = 0;
    for (const RawTableEntry& raw : state_.state.raw_table) {
      if (raw.message_id != local_message) continue;
      writer.WriteU8(MakeTag(/*is_partial=*/false, 1));
      writer.WriteVarint(static_cast<uint64_t>(raw.source));
      writer.WriteF32(static_cast<float>(raw_values_.at(raw.source)));
      ++written;
    }
    for (size_t i = 0; i < state_.state.partial_table.size(); ++i) {
      const PartialTableEntry& partial = state_.state.partial_table[i];
      if (partial.message_id != local_message) continue;
      const Accumulator& accumulator =
          accumulators_.at(partial.destination);
      int fields = wire::FieldCountOf(accumulator.kind);
      writer.WriteU8(MakeTag(/*is_partial=*/true, fields));
      writer.WriteVarint(static_cast<uint64_t>(partial.destination));
      for (int f = 0; f < fields; ++f) {
        writer.WriteF32(static_cast<float>(accumulator.record.fields[f]));
      }
      // Coverage summary rides after the record fields so the receiver can
      // attribute the merge to its contributing sources.
      wire::AppendSourceSummary(accumulator.summary, writer);
      ++written;
    }
    M2M_CHECK_EQ(written, entry.unit_count)
        << "message " << local_message << " at node " << id_
        << " has mismatched unit count";
    packets.push_back(OutgoingPacket{local_message, entry.recipient,
                                     writer.bytes(), entry.unit_count});
  }
  pending_emits_.clear();
  return packets;
}

void NodeRuntime::OnReceive(const std::vector<uint8_t>& packet) {
  ByteReader reader(packet);
  uint64_t unit_count = reader.ReadVarint();
  for (uint64_t i = 0; i < unit_count; ++i) {
    uint8_t tag = reader.ReadU8();
    bool is_partial = (tag & kPartialBit) != 0;
    int fields = tag >> 4;
    NodeId subject = static_cast<NodeId>(reader.ReadVarint());
    if (is_partial) {
      PartialRecord record;
      for (int f = 0; f < fields; ++f) {
        record.fields[f] = reader.ReadF32();
      }
      AcceptPartialRecord(subject, record);
      MergeSummaryInto(subject, wire::ReadSourceSummary(reader));
    } else {
      M2M_CHECK_EQ(fields, 1);
      AcceptRawValue(subject, reader.ReadF32());
    }
  }
  M2M_CHECK(reader.AtEnd()) << "trailing bytes in data packet";
}

NodeRuntime::ReceiveOutcome NodeRuntime::OnReceiveOnce(
    NodeId sender, int sender_message_id, uint32_t sender_epoch,
    const std::vector<uint8_t>& packet, int tick) {
  // Epoch gate first: a packet from another plan generation must not touch
  // this node's tables (its units reference the sender's plan, and merging
  // them here would blend two plans into one aggregate). The link layer
  // still acks it so the sender stops retrying.
  if (sender_epoch != state_.plan_epoch) {
    return ReceiveOutcome::kEpochMismatch;
  }
  uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(sender)) << 32) |
                 static_cast<uint32_t>(sender_message_id);
  auto [it, fresh] = seen_packets_.emplace(key, tick);
  it->second = tick;  // Refresh the horizon on duplicates too.
  if (!fresh) return ReceiveOutcome::kDuplicate;
  OnReceive(packet);
  return ReceiveOutcome::kFresh;
}

bool NodeRuntime::OnReceiveOnce(NodeId sender, int sender_message_id,
                                const std::vector<uint8_t>& packet) {
  return OnReceiveOnce(sender, sender_message_id, state_.plan_epoch, packet,
                       /*tick=*/0) == ReceiveOutcome::kFresh;
}

void NodeRuntime::EvictSeenPacketsBefore(int tick) {
  for (auto it = seen_packets_.begin(); it != seen_packets_.end();) {
    if (it->second < tick) {
      it = seen_packets_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<double> NodeRuntime::FinalValue() const {
  return final_value_;
}

std::vector<int> NodeRuntime::IncompleteMessages() const {
  std::vector<int> out;
  for (size_t g = 0; g < state_.state.outgoing_table.size(); ++g) {
    if (!complete_messages_.contains(static_cast<int>(g))) {
      out.push_back(static_cast<int>(g));
    }
  }
  return out;
}

std::vector<NodeRuntime::AccumulatorStatus>
NodeRuntime::AccumulatorStatuses() const {
  std::vector<AccumulatorStatus> out;
  for (const auto& [destination, accumulator] : accumulators_) {
    out.push_back(AccumulatorStatus{destination, accumulator.received,
                                    accumulator.expected});
  }
  return out;
}

std::optional<NodeRuntime::CoverageReport> NodeRuntime::DestinationCoverage()
    const {
  if (!state_.state.is_destination) return std::nullopt;
  CoverageReport report;
  auto it = accumulators_.find(id_);
  if (it == accumulators_.end()) {
    // Round not started (or state dropped by an epoch transition): nothing
    // contributed, but the expected count is still known from the tables.
    for (const PartialTableEntry& entry : state_.state.partial_table) {
      if (entry.destination == id_) report.expected = entry.expected_contributions;
    }
    return report;
  }
  const Accumulator& accumulator = it->second;
  report.summary = accumulator.summary;
  report.received = accumulator.received;
  report.expected = accumulator.expected;
  if (accumulator.has_record && accumulator.summary.count > 0) {
    // Guard the kinds whose evaluation divides by an accumulated weight or
    // count — an empty or zero-weight partial cannot be evaluated.
    uint8_t kind = accumulator.kind;
    bool evaluable = true;
    if (kind == static_cast<uint8_t>(AggregateKind::kWeightedAverage)) {
      evaluable = accumulator.record.fields[1] > 0.0;
    } else if (kind == static_cast<uint8_t>(AggregateKind::kWeightedStdDev)) {
      evaluable = accumulator.record.fields[2] > 0.0;
    }
    if (evaluable) {
      report.degraded_value = wire::Evaluate(kind, accumulator.record);
    }
  }
  return report;
}

}  // namespace m2m
