#include "runtime/network.h"

#include <deque>
#include <map>
#include <sstream>

#include "common/check.h"
#include "plan/serialization.h"

namespace m2m {

std::string EventTrace::ToString() const {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

RuntimeNetwork::RuntimeNetwork(const CompiledPlan& compiled,
                               const FunctionSet& functions) {
  std::vector<std::vector<uint8_t>> images =
      EncodeAllNodeStates(compiled, functions);
  nodes_.reserve(images.size());
  message_hops_.resize(images.size());
  message_segments_.resize(images.size());
  for (NodeId n = 0; n < compiled.node_count(); ++n) {
    installed_image_bytes_ += static_cast<int64_t>(images[n].size());
    nodes_.emplace_back(n, images[n]);
    // Hop counts by node-local message id (images index outgoing messages
    // by their position in the outgoing table).
    for (const OutgoingMessageEntry& entry :
         compiled.state(n).outgoing_table) {
      message_hops_[n].push_back(
          static_cast<int>(entry.segment.size()) - 1);
      message_segments_[n].push_back(entry.segment);
    }
  }
}

void RuntimeNetwork::InstallNodeImage(NodeId node,
                                      const std::vector<uint8_t>& image,
                                      std::vector<std::vector<NodeId>> segments) {
  M2M_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
  nodes_[node].InstallImage(image);
  const size_t outgoing = nodes_[node].decoded().state.outgoing_table.size();
  M2M_CHECK_EQ(segments.size(), outgoing)
      << "node " << node << ": segment routes do not match outgoing table";
  message_hops_[node].clear();
  message_segments_[node] = std::move(segments);
  for (const std::vector<NodeId>& segment : message_segments_[node]) {
    M2M_CHECK_GE(segment.size(), 2u);
    message_hops_[node].push_back(static_cast<int>(segment.size()) - 1);
  }
}

uint32_t RuntimeNetwork::plan_epoch(NodeId node) const {
  M2M_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
  return nodes_[node].plan_epoch();
}

const NodeRuntime& RuntimeNetwork::node_runtime(NodeId node) const {
  M2M_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
  return nodes_[node];
}

RuntimeNetwork::Result RuntimeNetwork::RunRound(
    const std::vector<double>& readings, const EnergyModel& energy) {
  M2M_CHECK_EQ(readings.size(), nodes_.size());
  Result result;

  struct InFlight {
    NodeId sender;
    NodeRuntime::OutgoingPacket packet;
  };
  std::deque<InFlight> in_flight;
  auto collect = [&](NodeRuntime& node) {
    for (NodeRuntime::OutgoingPacket& packet : node.DrainReadyPackets()) {
      in_flight.push_back(InFlight{node.id(), std::move(packet)});
    }
  };

  for (NodeRuntime& node : nodes_) {
    node.StartRound(readings[node.id()]);
    collect(node);
  }
  while (!in_flight.empty()) {
    ++result.delivery_passes;
    std::deque<InFlight> batch;
    batch.swap(in_flight);
    while (!batch.empty()) {
      InFlight flight = std::move(batch.front());
      batch.pop_front();
      int payload = static_cast<int>(flight.packet.payload.size());
      int hops =
          message_hops_[flight.sender][flight.packet.local_message_id];
      result.packets += 1;
      result.payload_bytes += payload;
      result.energy_mj += hops * energy.UnicastHopUj(payload) / 1000.0;
      NodeRuntime& recipient = nodes_[flight.packet.recipient];
      recipient.OnReceive(flight.packet.payload);
      collect(recipient);
    }
  }

  for (const NodeRuntime& node : nodes_) {
    if (!node.is_destination()) continue;
    std::optional<double> value = node.FinalValue();
    M2M_CHECK(value.has_value())
        << "destination " << node.id() << " never completed its aggregate";
    result.destination_values[node.id()] = *value;
  }
  return result;
}

RuntimeNetwork::LossyResult RuntimeNetwork::RunRoundLossy(
    const std::vector<double>& readings, const LossyLinkModel& links,
    const RetryPolicy& retry, const EnergyModel& energy, EventTrace* trace) {
  M2M_CHECK_EQ(readings.size(), nodes_.size());
  M2M_CHECK(links.attempt_delivers != nullptr);
  M2M_CHECK_GE(retry.max_attempts, 1);
  M2M_CHECK_GE(retry.ack_timeout_ticks, 1);
  M2M_CHECK_GE(retry.backoff_factor, 1);
  auto alive = [&](NodeId n) {
    return links.node_alive == nullptr || links.node_alive(n);
  };
  LossyResult result;

  // One in-flight message instance per emitted packet; retransmissions
  // reuse the instance with a bumped attempt counter.
  struct Transfer {
    NodeId sender = kInvalidNode;
    NodeRuntime::OutgoingPacket packet;
    uint32_t epoch = 0;  ///< Sender's plan epoch, stamped at emission.
    int attempts_made = 0;
    bool delivered_once = false;
  };
  std::vector<Transfer> transfers;
  // tick -> transfer indices scheduled for (re)transmission, FIFO per tick.
  std::map<int, std::vector<size_t>> agenda;
  auto collect = [&](NodeRuntime& node, int tick) {
    for (NodeRuntime::OutgoingPacket& packet : node.DrainReadyPackets()) {
      transfers.push_back(
          Transfer{node.id(), std::move(packet), node.plan_epoch()});
      agenda[tick].push_back(transfers.size() - 1);
    }
  };

  // Latest lag (in ticks) between a receiver first seeing a message and the
  // sender's final possible retransmission arriving: the sum of all backoff
  // waits. A dedup entry older than this can never see another duplicate,
  // so it is safe to evict — this is what bounds the dedup table.
  int64_t retry_horizon_ticks = 1;
  {
    int64_t wait = retry.ack_timeout_ticks;
    for (int k = 1; k < retry.max_attempts; ++k) {
      retry_horizon_ticks += wait;
      wait *= retry.backoff_factor;
    }
  }

  for (NodeRuntime& node : nodes_) {
    if (!alive(node.id())) continue;
    node.StartRound(readings[node.id()]);
    collect(node, 0);
  }

  while (!agenda.empty()) {
    auto agenda_it = agenda.begin();
    const int tick = agenda_it->first;
    result.final_tick = tick;
    // Dedup entries older than the retry horizon can never be duplicated
    // again; drop them so the table stays O(in-flight), not O(received).
    if (tick > retry_horizon_ticks) {
      const int evict_before = tick - static_cast<int>(retry_horizon_ticks);
      for (NodeRuntime& node : nodes_) {
        node.EvictSeenPacketsBefore(evict_before);
      }
    }
    // Entries may be appended to this tick's list while we walk it (a
    // delivery can trigger a same-tick... it cannot: triggered sends land
    // at tick + 1 — but index-walk anyway so growth is safe).
    for (size_t i = 0; i < agenda_it->second.size(); ++i) {
      // A delivery below can push into `transfers` (reallocation), so go
      // through the index, never a held reference.
      const size_t index = agenda_it->second[i];
      const NodeId sender = transfers[index].sender;
      const int message_id = transfers[index].packet.local_message_id;
      const NodeId packet_recipient = transfers[index].packet.recipient;
      const std::vector<NodeId>& segment =
          message_segments_[sender][message_id];
      const int payload =
          static_cast<int>(transfers[index].packet.payload.size());
      const int attempt = ++transfers[index].attempts_made;
      result.attempts += 1;
      if (attempt > 1) result.retransmissions += 1;

      // Data crosses the segment hop by hop; the first dead hop burns one
      // transmit and stops the packet.
      int hops_crossed = 0;
      bool delivered = alive(packet_recipient);
      if (delivered) {
        for (size_t h = 0; h + 1 < segment.size(); ++h) {
          if (!links.attempt_delivers(segment[h], segment[h + 1], attempt)) {
            delivered = false;
            break;
          }
          ++hops_crossed;
          // Heartbeat evidence: segment[h+1] heard segment[h] transmit.
          result.heard.emplace(segment[h], segment[h + 1]);
        }
      }
      result.energy_mj += hops_crossed * energy.UnicastHopUj(payload) / 1000.0;
      if (!delivered && hops_crossed + 2 <= static_cast<int>(segment.size())) {
        result.energy_mj += energy.TxUj(payload) / 1000.0;
      }

      std::string outcome;
      bool acked = false;
      if (delivered) {
        result.deliveries += 1;
        result.payload_bytes += payload;
        NodeRuntime& recipient = nodes_[packet_recipient];
        switch (recipient.OnReceiveOnce(sender, message_id,
                                        transfers[index].epoch,
                                        transfers[index].packet.payload,
                                        tick)) {
          case NodeRuntime::ReceiveOutcome::kFresh:
            transfers[index].delivered_once = true;
            collect(recipient, tick + 1);
            outcome = "rx";
            break;
          case NodeRuntime::ReceiveOutcome::kDuplicate:
            result.duplicates += 1;
            outcome = "dup";
            break;
          case NodeRuntime::ReceiveOutcome::kEpochMismatch:
            // Dropped whole, but still acked below: the mismatch is a plan
            // generation gap, not a link failure — retrying cannot help.
            transfers[index].delivered_once = true;
            result.epoch_rejected += 1;
            outcome = "epoch";
            break;
        }
        // Ack travels the segment in reverse; header-only payload.
        acked = true;
        int ack_hops = 0;
        for (size_t h = segment.size() - 1; h > 0; --h) {
          if (!links.attempt_delivers(segment[h], segment[h - 1], attempt)) {
            acked = false;
            break;
          }
          ++ack_hops;
          result.heard.emplace(segment[h], segment[h - 1]);
        }
        result.energy_mj += ack_hops * energy.UnicastHopUj(0) / 1000.0;
        if (!acked) {
          result.energy_mj += energy.TxUj(0) / 1000.0;
          result.acks_lost += 1;
          outcome += "+acklost";
        }
      } else {
        outcome = alive(packet_recipient)
                      ? "drop@" + std::to_string(hops_crossed + 1)
                      : "dead";
      }

      if (trace != nullptr) {
        std::ostringstream line;
        line << "t" << tick << " tx " << sender << ">" << packet_recipient
             << " m" << message_id << " a" << attempt << " b" << payload
             << " " << outcome;
        trace->Append(line.str());
      }

      if (!acked) {
        if (attempt < retry.max_attempts) {
          int timeout = retry.ack_timeout_ticks;
          for (int k = 1; k < attempt; ++k) timeout *= retry.backoff_factor;
          agenda[tick + timeout].push_back(index);
        } else if (!transfers[index].delivered_once) {
          result.messages_abandoned += 1;
          if (trace != nullptr) {
            std::ostringstream line;
            line << "t" << tick << " giveup " << sender << ">"
                 << packet_recipient << " m" << message_id;
            trace->Append(line.str());
          }
        }
      }
    }
    agenda.erase(agenda_it);
  }

  for (const NodeRuntime& node : nodes_) {
    if (!node.is_destination() || !alive(node.id())) continue;
    std::optional<double> value = node.FinalValue();
    if (value.has_value()) {
      result.destination_values[node.id()] = *value;
      result.destination_epochs[node.id()] = node.plan_epoch();
    } else {
      result.incomplete_destinations.push_back(node.id());
    }
  }
  return result;
}

}  // namespace m2m
