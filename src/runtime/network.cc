#include "runtime/network.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"
#include "common/thread_pool.h"
#include "event/event_queue.h"
#include "plan/serialization.h"
#include "runtime/wire_functions.h"

namespace m2m {

namespace {

/// Contiguous node-id region owning node `node` when ids are split into
/// `shard_count` ranges. Region sharding keys every piece of mutable
/// per-delivery state: a packet's recipient fixes its transfer, so all
/// state a delivery touches lives in one shard.
int ShardOfNode(NodeId node, int shard_count, int64_t node_count) {
  return static_cast<int>(static_cast<int64_t>(node) * shard_count /
                          node_count);
}

}  // namespace

int64_t RetryPolicy::BackoffWaitTicks(int attempt) const {
  M2M_CHECK_GE(attempt, 1);
  // The clamp doubles as the overflow guard: wait only grows while below
  // max_backoff_ticks, so the product never exceeds
  // max_backoff_ticks * backoff_factor, well inside int64.
  int64_t wait = ack_timeout_ticks;
  for (int k = 1; k < attempt && wait < max_backoff_ticks; ++k) {
    wait *= backoff_factor;
  }
  return std::min(wait, max_backoff_ticks);
}

int64_t RetryPolicy::RetryHorizonTicks() const {
  int64_t horizon = 1;
  int64_t wait = ack_timeout_ticks;
  for (int k = 1; k < max_attempts; ++k) {
    horizon += std::min(wait, max_backoff_ticks);
    if (wait < max_backoff_ticks) wait *= backoff_factor;
  }
  return horizon;
}

RuntimeNetwork::RuntimeNetwork(const CompiledPlan& compiled,
                               const FunctionSet& functions) {
  std::vector<std::vector<uint8_t>> images =
      EncodeAllNodeStates(compiled, functions);
  nodes_.reserve(images.size());
  message_hops_.resize(images.size());
  message_segments_.resize(images.size());
  for (NodeId n = 0; n < compiled.node_count(); ++n) {
    installed_image_bytes_ += static_cast<int64_t>(images[n].size());
    nodes_.emplace_back(n, images[n]);
    // Hop counts by node-local message id (images index outgoing messages
    // by their position in the outgoing table).
    for (const OutgoingMessageEntry& entry :
         compiled.state(n).outgoing_table) {
      message_hops_[n].push_back(
          static_cast<int>(entry.segment.size()) - 1);
      message_segments_[n].push_back(entry.segment);
    }
  }
}

void RuntimeNetwork::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  handles_.tx_attempts = metrics_->Counter("runtime.tx_attempts");
  handles_.tx_bytes = metrics_->Counter("runtime.tx_bytes");
  handles_.rx_packets = metrics_->Counter("runtime.rx_packets");
  handles_.rx_bytes = metrics_->Counter("runtime.rx_bytes");
  handles_.hop_transmissions = metrics_->Counter("runtime.hop_transmissions");
  handles_.retransmissions = metrics_->Counter("runtime.retransmissions");
  handles_.backoff_wait_ticks =
      metrics_->Counter("runtime.backoff_wait_ticks");
  handles_.acks_delivered = metrics_->Counter("runtime.acks_delivered");
  handles_.acks_lost = metrics_->Counter("runtime.acks_lost");
  handles_.dedup_hits = metrics_->Counter("runtime.dedup_hits");
  handles_.epoch_gate_drops = metrics_->Counter("runtime.epoch_gate_drops");
  handles_.messages_abandoned =
      metrics_->Counter("runtime.messages_abandoned");
  handles_.tx_packets = metrics_->Counter("runtime.tx_packets");
  handles_.delivery_passes = metrics_->Counter("runtime.delivery_passes");
  handles_.attempts_per_message =
      metrics_->Histogram("runtime.attempts_per_message");
  handles_.round_ticks = metrics_->Histogram("runtime.round_ticks");
  handles_.installs = metrics_->Counter("runtime.image_installs");
  handles_.install_bytes = metrics_->Counter("runtime.image_install_bytes");
  handles_.chan_corrupt_frames = metrics_->Counter("chan.corrupt_frames");
  handles_.chan_duplicated = metrics_->Counter("chan.duplicated");
  handles_.chan_reordered = metrics_->Counter("chan.reordered");
  handles_.coverage_per_destination = metrics_->Histogram(
      "coverage.per_destination", {0, 10, 25, 50, 75, 90, 100});
  handles_.coverage_degraded_rounds =
      metrics_->Counter("coverage.degraded_rounds");
}

bool RuntimeNetwork::InstallNodeImage(NodeId node,
                                      const std::vector<uint8_t>& image,
                                      std::vector<std::vector<NodeId>> segments) {
  M2M_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
  if (!nodes_[node].InstallImage(image)) {
    // Stale lineage: the node already runs a newer epoch; keep its current
    // tables and routes untouched (higher epoch wins).
    return false;
  }
  const size_t outgoing = nodes_[node].decoded().state.outgoing_table.size();
  M2M_CHECK_EQ(segments.size(), outgoing)
      << "node " << node << ": segment routes do not match outgoing table";
  message_hops_[node].clear();
  message_segments_[node] = std::move(segments);
  for (const std::vector<NodeId>& segment : message_segments_[node]) {
    M2M_CHECK_GE(segment.size(), 2u);
    message_hops_[node].push_back(static_cast<int>(segment.size()) - 1);
  }
  if (metrics_ != nullptr) {
    metrics_->AddNode(handles_.installs, node, 1);
    metrics_->AddNode(handles_.install_bytes, node,
                      static_cast<int64_t>(image.size()));
  }
  return true;
}

uint32_t RuntimeNetwork::plan_epoch(NodeId node) const {
  M2M_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
  return nodes_[node].plan_epoch();
}

const NodeRuntime& RuntimeNetwork::node_runtime(NodeId node) const {
  M2M_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
  return nodes_[node];
}

NodeRuntime& RuntimeNetwork::mutable_node_runtime(NodeId node) {
  M2M_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
  return nodes_[node];
}

const std::vector<std::vector<NodeId>>& RuntimeNetwork::node_message_segments(
    NodeId node) const {
  M2M_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
  return message_segments_[node];
}

RuntimeNetwork::Result RuntimeNetwork::RunRound(
    const std::vector<double>& readings, const EnergyModel& energy) {
  M2M_CHECK_EQ(readings.size(), nodes_.size());
  Result result;

  struct InFlight {
    NodeId sender;
    NodeRuntime::OutgoingPacket packet;
  };
  const int64_t node_count = static_cast<int64_t>(nodes_.size());

  // Round start touches every node exactly once, so node-id ranges shard
  // freely; merging drained packets in node-id order reproduces the serial
  // emission order byte for byte.
  std::vector<std::vector<NodeRuntime::OutgoingPacket>> drained(
      nodes_.size());
  ParallelFor(node_count, [&](int64_t begin, int64_t end) {
    for (int64_t n = begin; n < end; ++n) {
      nodes_[n].StartRound(readings[n]);
      drained[n] = nodes_[n].DrainReadyPackets();
    }
  });
  std::vector<InFlight> batch;
  for (int64_t n = 0; n < node_count; ++n) {
    for (NodeRuntime::OutgoingPacket& packet : drained[n]) {
      batch.push_back(InFlight{static_cast<NodeId>(n), std::move(packet)});
    }
  }

  while (!batch.empty()) {
    ++result.delivery_passes;
    // Parallel phase: deliveries bucket by recipient region, so each
    // node's state is mutated by exactly one shard, in original batch
    // order. Only the recipient's OnReceive/drain runs here; accounting,
    // metrics, and next-batch assembly happen in the serial merge below in
    // flight order, so the result — including the next pass's packet
    // order — is byte-identical to the serial walk for any shard count.
    std::vector<std::vector<NodeRuntime::OutgoingPacket>> emitted(
        batch.size());
    auto deliver = [&](size_t i) {
      NodeRuntime& recipient = nodes_[batch[i].packet.recipient];
      recipient.OnReceive(batch[i].packet.payload);
      emitted[i] = recipient.DrainReadyPackets();
    };
    ThreadPool* pool = GlobalThreadPool();
    const int shard_count =
        pool == nullptr
            ? 1
            : static_cast<int>(std::min<int64_t>(GlobalShardCount(),
                                                 node_count));
    if (shard_count <= 1) {
      for (size_t i = 0; i < batch.size(); ++i) deliver(i);
    } else {
      std::vector<std::vector<size_t>> buckets(shard_count);
      for (size_t i = 0; i < batch.size(); ++i) {
        buckets[ShardOfNode(batch[i].packet.recipient, shard_count,
                            node_count)]
            .push_back(i);
      }
      pool->RunShards(shard_count, [&](int s) {
        for (size_t i : buckets[s]) deliver(i);
      });
    }

    std::vector<InFlight> next;
    for (size_t i = 0; i < batch.size(); ++i) {
      const InFlight& flight = batch[i];
      int payload = static_cast<int>(flight.packet.payload.size());
      int hops =
          message_hops_[flight.sender][flight.packet.local_message_id];
      result.packets += 1;
      result.payload_bytes += payload;
      result.energy_mj += hops * energy.UnicastHopUj(payload) / 1000.0;
      if (metrics_ != nullptr) {
        metrics_->AddNode(handles_.tx_packets, flight.sender, 1);
        metrics_->AddNode(handles_.tx_bytes, flight.sender, payload);
        metrics_->AddNode(handles_.rx_packets, flight.packet.recipient, 1);
        metrics_->AddNode(handles_.rx_bytes, flight.packet.recipient,
                          payload);
      }
      for (NodeRuntime::OutgoingPacket& packet : emitted[i]) {
        next.push_back(
            InFlight{flight.packet.recipient, std::move(packet)});
      }
    }
    batch = std::move(next);
  }
  if (metrics_ != nullptr) {
    metrics_->Add(handles_.delivery_passes, result.delivery_passes);
  }

  for (const NodeRuntime& node : nodes_) {
    if (!node.is_destination()) continue;
    std::optional<double> value = node.FinalValue();
    M2M_CHECK(value.has_value())
        << "destination " << node.id() << " never completed its aggregate";
    result.destination_values[node.id()] = *value;
  }
  return result;
}

RuntimeNetwork::LossyResult RuntimeNetwork::RunRoundLossy(
    const std::vector<double>& readings, const LossyLinkModel& links,
    const RetryPolicy& retry, const EnergyModel& energy, EventTrace* trace) {
  M2M_CHECK_EQ(readings.size(), nodes_.size());
  M2M_CHECK(links.attempt_delivers != nullptr);
  M2M_CHECK_GE(retry.max_attempts, 1);
  M2M_CHECK_GE(retry.ack_timeout_ticks, 1);
  M2M_CHECK_GE(retry.backoff_factor, 1);
  M2M_CHECK_GE(retry.max_backoff_ticks, retry.ack_timeout_ticks)
      << "max_backoff_ticks must not undercut the base ack timeout";
  M2M_CHECK_GE(links.max_delay_ticks, 0);
  // Ticks stay in int; the clamp bounds the horizon, but a pathological
  // policy (huge max_attempts * huge clamp) must fail loudly, not wrap.
  const int64_t retry_horizon_ticks = retry.RetryHorizonTicks();
  // Channel delay widens the duplicate window: a late retransmission can
  // arrive up to max_delay_ticks after it was sent, so the receiver-side
  // dedup eviction horizon stretches by exactly that much (the boundary
  // stays exact — see the delayed-duplicate regression tests).
  const int64_t evict_horizon_ticks =
      retry_horizon_ticks + links.max_delay_ticks;
  M2M_CHECK_LE(evict_horizon_ticks, int64_t{1} << 30)
      << "retry policy horizon overflows the tick domain";
  auto alive = [&](NodeId n) {
    return links.node_alive == nullptr || links.node_alive(n);
  };
  LossyResult result;
  if (track_node_energy_) {
    result.node_energy_mj.assign(nodes_.size(), 0.0);
  }

  // One in-flight message instance per emitted packet; retransmissions
  // reuse the instance with a bumped attempt counter.
  struct Transfer {
    NodeId sender = kInvalidNode;
    NodeRuntime::OutgoingPacket packet;
    uint32_t epoch = 0;  ///< Sender's plan epoch, stamped at emission.
    int attempts_made = 0;
    bool delivered_once = false;
    bool acked = false;
    /// Final verdict recorded (attempts histogram, abandoned accounting).
    bool done = false;
    /// Delayed deliveries/acks of this message still in flight.
    int pending_events = 0;
    /// Scheduled retransmissions not yet popped (a pop after the ack lands
    /// is skipped, so these must block the final abandoned verdict).
    int pending_retransmits = 0;
    /// Highest attempt index whose copy has arrived (reorder detection).
    int last_arrival_attempt = 0;
  };
  std::vector<Transfer> transfers;

  // The agenda holds every future action: (re)transmissions, plus — under
  // an adversarial channel — delayed packet arrivals and delayed acks.
  // With a clean channel only kTransmit events exist and the schedule is
  // tick-for-tick the legacy stop-and-wait behavior. The queue pops in
  // (tick, schedule-seq) order, which is exactly the tick-ascending,
  // append-ordered walk the original per-tick vectors performed — the
  // round barrier is a special case of the discrete-event engine.
  struct Event {
    enum class Kind : uint8_t { kTransmit, kDeliver, kAckArrive };
    Kind kind = Kind::kTransmit;
    size_t index = 0;
    int attempt = 0;          ///< kDeliver/kAckArrive: producing attempt.
    bool retransmit = false;  ///< kTransmit: skip if already acked/done.
    bool corrupt = false;
    uint32_t corrupt_bit = 0;
    bool is_dup = false;  ///< Channel-duplicated copy, not a retry.
  };
  event::EventQueue<Event> agenda;

  // Deferred-effects execution: when the tick loop below runs sharded,
  // each event mutates only its own transfer and its recipient node's
  // state inline, and records every write to shared round state — result
  // counters, energy terms, heard-evidence, metric/trace records, agenda
  // appends, and packet emissions — into a per-event `Fx`. The merge
  // applies the records serially in original event order, reproducing the
  // serial path's floating-point addition order, trace byte order, and
  // agenda order exactly (THEORY.md §12). In serial mode each Fx is
  // applied immediately after its event — the old inline behavior.
  struct Fx {
    int64_t attempts = 0;
    int64_t deliveries = 0;
    int64_t duplicates = 0;
    int64_t retransmissions = 0;
    int64_t acks_lost = 0;
    int64_t messages_abandoned = 0;
    int64_t epoch_rejected = 0;
    int64_t payload_bytes = 0;
    int64_t corrupt_frames = 0;
    int64_t spontaneous_duplicates = 0;
    int64_t reordered_deliveries = 0;
    /// Energy deltas, replayed with += in recorded order (floating-point
    /// addition does not commute; the order is part of the byte-identity
    /// contract).
    std::vector<double> energy_terms;
    /// Per-node energy attribution (mJ terms), recorded only when
    /// track_node_energy_ is on. Kept separate from `energy_terms` so the
    /// legacy total's accumulation order is untouched.
    std::vector<std::pair<NodeId, double>> node_energy_terms;
    std::vector<std::pair<NodeId, NodeId>> heard;
    struct MetricOp {
      enum class Kind : uint8_t { kAdd, kAddNode, kAddEdge, kObserve };
      Kind kind = Kind::kAdd;
      obs::MetricHandle handle;
      NodeId a = kInvalidNode;  ///< Node (kAddNode) or from (kAddEdge).
      NodeId b = kInvalidNode;  ///< To (kAddEdge).
      int64_t value = 0;
    };
    std::vector<MetricOp> metric_ops;
    struct TraceOp {
      bool give_up = false;
      int tick = 0;
      NodeId from = kInvalidNode;
      NodeId to = kInvalidNode;
      int message_id = 0;
      int attempt = 0;
      int payload = 0;
      obs::SendOutcome outcome = obs::SendOutcome::kRx;
      bool ack_lost = false;
      int drop_hop = 0;
    };
    std::vector<TraceOp> trace_ops;
    /// An emitted packet: becomes a new transfer plus its first transmit
    /// event at `tick`.
    struct Emission {
      NodeId sender = kInvalidNode;
      NodeRuntime::OutgoingPacket packet;
      uint32_t epoch = 0;
      int tick = 0;
    };
    /// Agenda appends and emissions interleave within one event (an
    /// arrival can emit packets before scheduling its ack), so they share
    /// one ordered op list.
    struct Op {
      bool emit = false;
      int tick = 0;
      Event event;        ///< !emit: appended verbatim at `tick`.
      Emission emission;  ///< emit: new transfer + first transmit.
    };
    std::vector<Op> ops;
  };

  auto collect = [&](NodeRuntime& node, int tick, Fx& fx) {
    for (NodeRuntime::OutgoingPacket& packet : node.DrainReadyPackets()) {
      Fx::Op op;
      op.emit = true;
      op.emission = Fx::Emission{node.id(), std::move(packet),
                                 node.plan_epoch(), tick};
      fx.ops.push_back(std::move(op));
    }
  };
  auto observe_message_done = [&](const Transfer& transfer, Fx& fx) {
    if (metrics_ != nullptr) {
      fx.metric_ops.push_back({Fx::MetricOp::Kind::kObserve,
                               handles_.attempts_per_message, kInvalidNode,
                               kInvalidNode, transfer.attempts_made});
    }
  };
  // Records the final verdict for a message exactly once, as soon as it is
  // known: acked, or retry budget spent with nothing left in flight.
  auto maybe_finalize = [&](size_t index, int tick, Fx& fx) {
    Transfer& t = transfers[index];
    if (t.done) return;
    if (t.acked) {
      t.done = true;
      observe_message_done(t, fx);
      return;
    }
    if (t.attempts_made >= retry.max_attempts && t.pending_events == 0 &&
        t.pending_retransmits == 0) {
      t.done = true;
      observe_message_done(t, fx);
      if (!t.delivered_once) {
        fx.messages_abandoned += 1;
        if (metrics_ != nullptr) {
          fx.metric_ops.push_back({Fx::MetricOp::Kind::kAddNode,
                                   handles_.messages_abandoned, t.sender,
                                   kInvalidNode, 1});
        }
        if (trace != nullptr) {
          Fx::TraceOp op;
          op.give_up = true;
          op.tick = tick;
          op.from = t.sender;
          op.to = t.packet.recipient;
          op.message_id = t.packet.local_message_id;
          fx.trace_ops.push_back(op);
        }
      }
    }
  };
  auto apply_ack = [&](size_t index, Fx& fx) {
    if (metrics_ != nullptr) {
      fx.metric_ops.push_back({Fx::MetricOp::Kind::kAddNode,
                               handles_.acks_delivered,
                               transfers[index].sender, kInvalidNode, 1});
    }
    transfers[index].acked = true;
  };

  // One copy of the message arriving at the recipient (inline when the
  // channel adds no delay, or as a popped kDeliver event): CRC gate, then
  // dedup/epoch-gated receive, then the reverse-path ack walk.
  auto process_arrival = [&](size_t index, int attempt, int arrival_tick,
                             bool corrupt, uint32_t corrupt_bit, bool is_dup,
                             Fx& fx) {
    const NodeId sender = transfers[index].sender;
    const int message_id = transfers[index].packet.local_message_id;
    const NodeId packet_recipient = transfers[index].packet.recipient;
    const int payload =
        static_cast<int>(transfers[index].packet.payload.size());
    const std::vector<NodeId>& segment =
        message_segments_[sender][message_id];

    if (corrupt) {
      // Bit-flip in transit: the CRC32 frame check rejects the packet
      // before any decoding. No ack — the sender's retry budget covers
      // corruption exactly like a drop, but the event is *counted*.
      std::vector<uint8_t> frame =
          wire::FrameWithCrc32(transfers[index].packet.payload);
      size_t bit = corrupt_bit % (frame.size() * 8);
      frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      std::optional<std::vector<uint8_t>> opened =
          wire::TryOpenCrc32Frame(frame);
      if (!opened.has_value()) {
        fx.corrupt_frames += 1;
        if (metrics_ != nullptr) {
          fx.metric_ops.push_back({Fx::MetricOp::Kind::kAddNode,
                                   handles_.chan_corrupt_frames,
                                   packet_recipient, kInvalidNode, 1});
        }
        if (trace != nullptr) {
          Fx::TraceOp op;
          op.tick = arrival_tick;
          op.from = sender;
          op.to = packet_recipient;
          op.message_id = message_id;
          op.attempt = attempt;
          op.payload = payload;
          op.outcome = obs::SendOutcome::kCorrupt;
          fx.trace_ops.push_back(op);
        }
        return;
      }
      // Unreachable for a genuine bit flip (CRC32 detects every single-bit
      // error); if the checksum somehow matched, the frame is intact.
    }

    fx.deliveries += 1;
    fx.payload_bytes += payload;
    if (is_dup) {
      fx.spontaneous_duplicates += 1;
      if (metrics_ != nullptr) {
        fx.metric_ops.push_back({Fx::MetricOp::Kind::kAdd,
                                 handles_.chan_duplicated, kInvalidNode,
                                 kInvalidNode, 1});
      }
    }
    if (attempt < transfers[index].last_arrival_attempt) {
      // A delayed copy landed after a newer attempt already arrived.
      fx.reordered_deliveries += 1;
      if (metrics_ != nullptr) {
        fx.metric_ops.push_back({Fx::MetricOp::Kind::kAdd,
                                 handles_.chan_reordered, kInvalidNode,
                                 kInvalidNode, 1});
      }
    } else {
      transfers[index].last_arrival_attempt = attempt;
    }
    NodeRuntime& recipient = nodes_[packet_recipient];
    if (metrics_ != nullptr) {
      fx.metric_ops.push_back({Fx::MetricOp::Kind::kAddNode,
                               handles_.rx_packets, packet_recipient,
                               kInvalidNode, 1});
      fx.metric_ops.push_back({Fx::MetricOp::Kind::kAddNode,
                               handles_.rx_bytes, packet_recipient,
                               kInvalidNode, payload});
    }
    obs::SendOutcome outcome = obs::SendOutcome::kRx;
    switch (recipient.OnReceiveOnce(sender, message_id,
                                    transfers[index].epoch,
                                    transfers[index].packet.payload,
                                    arrival_tick)) {
      case NodeRuntime::ReceiveOutcome::kFresh:
        transfers[index].delivered_once = true;
        collect(recipient, arrival_tick + 1, fx);
        outcome = obs::SendOutcome::kRx;
        break;
      case NodeRuntime::ReceiveOutcome::kDuplicate:
        fx.duplicates += 1;
        if (metrics_ != nullptr) {
          fx.metric_ops.push_back({Fx::MetricOp::Kind::kAddNode,
                                   handles_.dedup_hits, packet_recipient,
                                   kInvalidNode, 1});
        }
        outcome = obs::SendOutcome::kDuplicate;
        break;
      case NodeRuntime::ReceiveOutcome::kEpochMismatch:
        // Dropped whole, but still acked below: the mismatch is a plan
        // generation gap, not a link failure — retrying cannot help.
        transfers[index].delivered_once = true;
        fx.epoch_rejected += 1;
        if (metrics_ != nullptr) {
          fx.metric_ops.push_back({Fx::MetricOp::Kind::kAddNode,
                                   handles_.epoch_gate_drops,
                                   packet_recipient, kInvalidNode, 1});
        }
        outcome = obs::SendOutcome::kEpochRejected;
        break;
    }
    // Ack travels the segment in reverse; header-only payload. A delayed
    // ack arrives as a kAckArrive event — retransmissions it crosses in
    // flight are suppressed by the receiver dedup, and the sender stops
    // retrying the moment the ack lands.
    bool ack_ok = true;
    int ack_hops = 0;
    int ack_delay = 0;
    for (size_t h = segment.size() - 1; h > 0; --h) {
      if (!links.attempt_delivers(segment[h], segment[h - 1], attempt)) {
        ack_ok = false;
        break;
      }
      ++ack_hops;
      fx.heard.emplace_back(segment[h], segment[h - 1]);
      if (links.hop_effects != nullptr) {
        ack_delay +=
            links.hop_effects(segment[h], segment[h - 1], attempt)
                .delay_ticks;
      }
    }
    fx.energy_terms.push_back(ack_hops * energy.UnicastHopUj(0) / 1000.0);
    if (track_node_energy_) {
      // Replay the crossed ack hops for attribution: segment[h] transmitted
      // the header-only ack, segment[h - 1] received it.
      for (int crossed = 0; crossed < ack_hops; ++crossed) {
        const size_t h = segment.size() - 1 - crossed;
        fx.node_energy_terms.emplace_back(segment[h],
                                          energy.TxUj(0) / 1000.0);
        fx.node_energy_terms.emplace_back(segment[h - 1],
                                          energy.RxUj(0) / 1000.0);
      }
    }
    if (ack_ok) {
      ack_delay = std::min(ack_delay, links.max_delay_ticks);
      if (ack_delay <= 0) {
        apply_ack(index, fx);
      } else {
        transfers[index].pending_events += 1;
        Event event;
        event.kind = Event::Kind::kAckArrive;
        event.index = index;
        event.attempt = attempt;
        Fx::Op op;
        op.tick = arrival_tick + ack_delay;
        op.event = event;
        fx.ops.push_back(op);
      }
    } else {
      fx.energy_terms.push_back(energy.TxUj(0) / 1000.0);
      if (track_node_energy_) {
        // The failed ack attempt burned one header-only TX at the node the
        // reverse walk stalled at.
        fx.node_energy_terms.emplace_back(
            segment[segment.size() - 1 - ack_hops], energy.TxUj(0) / 1000.0);
      }
      fx.acks_lost += 1;
      if (metrics_ != nullptr) {
        fx.metric_ops.push_back({Fx::MetricOp::Kind::kAddNode,
                                 handles_.acks_lost, sender, kInvalidNode,
                                 1});
      }
    }
    if (trace != nullptr) {
      Fx::TraceOp op;
      op.tick = arrival_tick;
      op.from = sender;
      op.to = packet_recipient;
      op.message_id = message_id;
      op.attempt = attempt;
      op.payload = payload;
      op.outcome = outcome;
      op.ack_lost = !ack_ok;
      fx.trace_ops.push_back(op);
    }
  };

  auto process_transmit = [&](size_t index, int tick, Fx& fx) {
    const NodeId sender = transfers[index].sender;
    const int message_id = transfers[index].packet.local_message_id;
    const NodeId packet_recipient = transfers[index].packet.recipient;
    const std::vector<NodeId>& segment =
        message_segments_[sender][message_id];
    const int payload =
        static_cast<int>(transfers[index].packet.payload.size());
    const int attempt = ++transfers[index].attempts_made;
    fx.attempts += 1;
    if (attempt > 1) fx.retransmissions += 1;
    if (metrics_ != nullptr) {
      fx.metric_ops.push_back({Fx::MetricOp::Kind::kAddNode,
                               handles_.tx_attempts, sender, kInvalidNode,
                               1});
      fx.metric_ops.push_back({Fx::MetricOp::Kind::kAddNode,
                               handles_.tx_bytes, sender, kInvalidNode,
                               payload});
      if (attempt > 1) {
        fx.metric_ops.push_back({Fx::MetricOp::Kind::kAdd,
                                 handles_.retransmissions, kInvalidNode,
                                 kInvalidNode, 1});
      }
    }

    // Data crosses the segment hop by hop; the first dead hop burns one
    // transmit and stops the packet. Channel effects (delay, duplication,
    // corruption) accumulate along the hops actually crossed.
    int hops_crossed = 0;
    bool delivered = alive(packet_recipient);
    int data_delay = 0;
    bool dup = false;
    bool corrupt = false;
    uint32_t corrupt_bit = 0;
    if (delivered) {
      for (size_t h = 0; h + 1 < segment.size(); ++h) {
        if (!links.attempt_delivers(segment[h], segment[h + 1], attempt)) {
          delivered = false;
          break;
        }
        ++hops_crossed;
        if (metrics_ != nullptr) {
          fx.metric_ops.push_back({Fx::MetricOp::Kind::kAddEdge,
                                   handles_.hop_transmissions, segment[h],
                                   segment[h + 1], 1});
        }
        // Heartbeat evidence: segment[h+1] heard segment[h] transmit.
        fx.heard.emplace_back(segment[h], segment[h + 1]);
        if (links.hop_effects != nullptr) {
          HopEffects effects =
              links.hop_effects(segment[h], segment[h + 1], attempt);
          data_delay += effects.delay_ticks;
          if (effects.duplicate) dup = true;
          if (effects.corrupt && !corrupt) {
            corrupt = true;
            corrupt_bit = effects.corrupt_bit;
          }
        }
      }
    }
    fx.energy_terms.push_back(hops_crossed * energy.UnicastHopUj(payload) /
                              1000.0);
    if (track_node_energy_) {
      for (int h = 0; h < hops_crossed; ++h) {
        fx.node_energy_terms.emplace_back(segment[h],
                                          energy.TxUj(payload) / 1000.0);
        fx.node_energy_terms.emplace_back(segment[h + 1],
                                          energy.RxUj(payload) / 1000.0);
      }
    }
    if (!delivered && hops_crossed + 2 <= static_cast<int>(segment.size())) {
      fx.energy_terms.push_back(energy.TxUj(payload) / 1000.0);
      if (track_node_energy_) {
        // The failed (or dead-recipient) attempt burned one TX at the node
        // the forward walk stalled at.
        fx.node_energy_terms.emplace_back(segment[hops_crossed],
                                          energy.TxUj(payload) / 1000.0);
      }
    }

    if (delivered) {
      data_delay = std::min(data_delay, links.max_delay_ticks);
      if (data_delay <= 0) {
        process_arrival(index, attempt, tick, corrupt, corrupt_bit,
                        /*is_dup=*/false, fx);
      } else {
        transfers[index].pending_events += 1;
        Event event;
        event.kind = Event::Kind::kDeliver;
        event.index = index;
        event.attempt = attempt;
        event.corrupt = corrupt;
        event.corrupt_bit = corrupt_bit;
        Fx::Op op;
        op.tick = tick + data_delay;
        op.event = event;
        fx.ops.push_back(op);
      }
      if (dup) {
        // The spontaneous copy trails the original by one tick.
        transfers[index].pending_events += 1;
        Event event;
        event.kind = Event::Kind::kDeliver;
        event.index = index;
        event.attempt = attempt;
        event.corrupt = corrupt;
        event.corrupt_bit = corrupt_bit;
        event.is_dup = true;
        Fx::Op op;
        op.tick = tick + data_delay + 1;
        op.event = event;
        fx.ops.push_back(op);
      }
    } else {
      obs::SendOutcome outcome = alive(packet_recipient)
                                     ? obs::SendOutcome::kDropped
                                     : obs::SendOutcome::kDeadRecipient;
      if (trace != nullptr) {
        Fx::TraceOp op;
        op.tick = tick;
        op.from = sender;
        op.to = packet_recipient;
        op.message_id = message_id;
        op.attempt = attempt;
        op.payload = payload;
        op.outcome = outcome;
        op.drop_hop = outcome == obs::SendOutcome::kDropped
                          ? hops_crossed + 1
                          : 0;
        fx.trace_ops.push_back(op);
      }
    }

    // Retry decision at send time: if no ack has landed by the backoff
    // deadline the sender retransmits. A retransmission popped after a
    // delayed ack arrived is skipped, so late acks stop the retry chain.
    if (!transfers[index].acked && !transfers[index].done &&
        attempt < retry.max_attempts) {
      const int64_t timeout = retry.BackoffWaitTicks(attempt);
      transfers[index].pending_retransmits += 1;
      Event event;
      event.index = index;
      event.retransmit = true;
      Fx::Op op;
      op.tick = tick + static_cast<int>(timeout);
      op.event = event;
      fx.ops.push_back(op);
      if (metrics_ != nullptr) {
        fx.metric_ops.push_back({Fx::MetricOp::Kind::kAdd,
                                 handles_.backoff_wait_ticks, kInvalidNode,
                                 kInvalidNode, timeout});
      }
    }
    maybe_finalize(index, tick, fx);
  };

  // Dispatches one event. All transfer-state and recipient-node mutation
  // is inline (shard-exclusive: every kind touches only transfers[index]
  // and nodes_[recipient], and the recipient is fixed per transfer);
  // everything shared lands in `fx`.
  auto process_event = [&](const Event& event, int tick, Fx& fx) {
    switch (event.kind) {
      case Event::Kind::kTransmit:
        if (event.retransmit) {
          transfers[event.index].pending_retransmits -= 1;
          if (transfers[event.index].acked || transfers[event.index].done) {
            maybe_finalize(event.index, tick, fx);
            break;
          }
        }
        process_transmit(event.index, tick, fx);
        break;
      case Event::Kind::kDeliver:
        transfers[event.index].pending_events -= 1;
        process_arrival(event.index, event.attempt, tick, event.corrupt,
                        event.corrupt_bit, event.is_dup, fx);
        maybe_finalize(event.index, tick, fx);
        break;
      case Event::Kind::kAckArrive:
        transfers[event.index].pending_events -= 1;
        apply_ack(event.index, fx);
        maybe_finalize(event.index, tick, fx);
        break;
    }
  };

  // Replays one event's deferred shared-state writes, in recorded order.
  auto apply_fx = [&](Fx& fx) {
    result.attempts += fx.attempts;
    result.deliveries += fx.deliveries;
    result.duplicates += fx.duplicates;
    result.retransmissions += fx.retransmissions;
    result.acks_lost += fx.acks_lost;
    result.messages_abandoned += fx.messages_abandoned;
    result.epoch_rejected += fx.epoch_rejected;
    result.payload_bytes += fx.payload_bytes;
    result.corrupt_frames += fx.corrupt_frames;
    result.spontaneous_duplicates += fx.spontaneous_duplicates;
    result.reordered_deliveries += fx.reordered_deliveries;
    for (double term : fx.energy_terms) result.energy_mj += term;
    for (const auto& [node, term] : fx.node_energy_terms) {
      result.node_energy_mj[node] += term;
    }
    for (const auto& [from, to] : fx.heard) result.heard.emplace(from, to);
    if (metrics_ != nullptr) {
      for (const Fx::MetricOp& op : fx.metric_ops) {
        switch (op.kind) {
          case Fx::MetricOp::Kind::kAdd:
            metrics_->Add(op.handle, op.value);
            break;
          case Fx::MetricOp::Kind::kAddNode:
            metrics_->AddNode(op.handle, op.a, op.value);
            break;
          case Fx::MetricOp::Kind::kAddEdge:
            metrics_->AddEdge(op.handle, op.a, op.b, op.value);
            break;
          case Fx::MetricOp::Kind::kObserve:
            metrics_->Observe(op.handle, op.value);
            break;
        }
      }
    }
    if (trace != nullptr) {
      for (const Fx::TraceOp& op : fx.trace_ops) {
        if (op.give_up) {
          trace->GiveUp(op.tick, op.from, op.to, op.message_id);
        } else {
          trace->Send(op.tick, op.from, op.to, op.message_id, op.attempt,
                      op.payload, op.outcome, op.ack_lost, op.drop_hop);
        }
      }
    }
    for (Fx::Op& op : fx.ops) {
      if (op.emit) {
        transfers.push_back(Transfer{op.emission.sender,
                                     std::move(op.emission.packet),
                                     op.emission.epoch});
        Event event;
        event.index = transfers.size() - 1;
        agenda.Schedule(op.emission.tick, event);
      } else {
        agenda.Schedule(op.tick, op.event);
      }
    }
  };

  const int64_t node_count = static_cast<int64_t>(nodes_.size());
  {
    // Round start: per-node work shards over node-id ranges; emissions
    // merge in node-id order, reproducing the serial transfer/agenda
    // order.
    std::vector<std::vector<NodeRuntime::OutgoingPacket>> drained(
        nodes_.size());
    ParallelFor(node_count, [&](int64_t begin, int64_t end) {
      for (int64_t n = begin; n < end; ++n) {
        if (!alive(static_cast<NodeId>(n))) continue;
        nodes_[n].StartRound(readings[n]);
        drained[n] = nodes_[n].DrainReadyPackets();
      }
    });
    for (size_t n = 0; n < nodes_.size(); ++n) {
      for (NodeRuntime::OutgoingPacket& packet : drained[n]) {
        transfers.push_back(Transfer{static_cast<NodeId>(n),
                                     std::move(packet),
                                     nodes_[n].plan_epoch()});
        Event event;
        event.index = transfers.size() - 1;
        agenda.Schedule(0, event);
      }
    }
  }

  while (!agenda.empty()) {
    const int tick = static_cast<int>(*agenda.NextTime());
    result.final_tick = tick;
    // Dedup entries older than the (delay-extended) retry horizon can
    // never be duplicated again; drop them so the table stays
    // O(in-flight), not O(received). The boundary is exact: an entry
    // stamped t is retained through processing tick t + horizon, and the
    // last possible duplicate of its message arrives at
    // t + horizon - 1 (obs_test pins the clean-channel boundary, the
    // delayed-duplicate regression the extended one). Eviction is per-node
    // independent, so it shards over node ranges.
    if (tick > evict_horizon_ticks) {
      const int evict_before = tick - static_cast<int>(evict_horizon_ticks);
      ParallelFor(node_count, [&](int64_t begin, int64_t end) {
        for (int64_t n = begin; n < end; ++n) {
          nodes_[n].EvictSeenPacketsBefore(evict_before);
        }
      });
    }
    // Every event scheduled during processing lands at tick + 1 or later
    // (arrivals collect at arrival + 1; channel delays and backoffs are
    // >= 1), so one wave normally covers the whole tick; the wave loop
    // mirrors the serial index walk in case a schedule ever targets the
    // current tick (the queue's seq tie-break keeps any such stragglers in
    // append order). Entries may be added to this tick's list during the
    // merge — and a merged emission can push into `transfers`
    // (reallocation) — so go through indices, never held references.
    std::vector<Event> list;
    size_t processed = 0;
    while (true) {
      while (!agenda.empty() && agenda.NextTime() == tick) {
        list.push_back(std::move(agenda.Pop()->payload));
      }
      if (processed >= list.size()) break;
      const size_t wave_end = list.size();
      ThreadPool* pool = GlobalThreadPool();
      const int shard_count =
          pool == nullptr
              ? 1
              : static_cast<int>(
                    std::min<int64_t>(GlobalShardCount(), node_count));
      if (shard_count <= 1) {
        // Serial: apply each event's effects immediately after it — the
        // original inline behavior, byte for byte.
        for (size_t i = processed; i < wave_end; ++i) {
          const Event event = list[i];
          Fx fx;
          process_event(event, tick, fx);
          apply_fx(fx);
        }
      } else {
        // Parallel wave: events bucket by the recipient region of their
        // transfer, keeping every per-transfer and per-node mutation in
        // exactly one shard, in original event order. The per-event Fx
        // records are then merged serially in event order — identical
        // bytes to the serial walk for any shard count.
        std::vector<std::vector<size_t>> buckets(shard_count);
        for (size_t i = processed; i < wave_end; ++i) {
          buckets[ShardOfNode(transfers[list[i].index].packet.recipient,
                              shard_count, node_count)]
              .push_back(i);
        }
        std::vector<Fx> fx(wave_end - processed);
        pool->RunShards(shard_count, [&](int s) {
          for (size_t i : buckets[s]) {
            process_event(list[i], tick, fx[i - processed]);
          }
        });
        for (size_t i = processed; i < wave_end; ++i) {
          apply_fx(fx[i - processed]);
        }
      }
      processed = wave_end;
    }
  }
  if (metrics_ != nullptr) {
    metrics_->Observe(handles_.round_ticks, result.final_tick);
  }

  // Expected contributor sets per destination: the union of
  // pre-aggregation sites (source -> destination) over every node whose
  // tables are on the destination's plan epoch. Dead nodes keep their
  // tables, so a not-yet-repaired plan truthfully reports a dead source as
  // expected-but-uncovered; once a re-plan routes around it, the new-epoch
  // tables no longer expect it and coverage returns to 1.
  std::map<NodeId, std::set<NodeId>> expected_sources;
  std::map<NodeId, uint32_t> destination_epoch;
  for (const NodeRuntime& node : nodes_) {
    if (node.is_destination() && alive(node.id())) {
      destination_epoch[node.id()] = node.plan_epoch();
    }
  }
  for (const NodeRuntime& node : nodes_) {
    for (const PreAggTableEntry& entry : node.decoded().state.preagg_table) {
      auto it = destination_epoch.find(entry.destination);
      if (it == destination_epoch.end()) continue;
      if (node.plan_epoch() != it->second) continue;
      expected_sources[entry.destination].insert(entry.source);
    }
  }

  bool any_degraded = false;
  for (const NodeRuntime& node : nodes_) {
    if (!node.is_destination() || !alive(node.id())) continue;
    std::optional<double> value = node.FinalValue();
    if (value.has_value()) {
      result.destination_values[node.id()] = *value;
      result.destination_epochs[node.id()] = node.plan_epoch();
    } else {
      result.incomplete_destinations.push_back(node.id());
    }
    std::optional<NodeRuntime::CoverageReport> report =
        node.DestinationCoverage();
    if (!report.has_value()) continue;
    LossyResult::DestinationCoverage coverage;
    const std::set<NodeId>& expected = expected_sources[node.id()];
    coverage.expected = static_cast<int>(expected.size());
    coverage.covered = static_cast<int>(report->summary.count);
    coverage.coverage =
        coverage.expected > 0
            ? std::min(1.0, static_cast<double>(coverage.covered) /
                                coverage.expected)
            : 1.0;
    coverage.complete = coverage.covered == coverage.expected;
    coverage.exact_known = report->summary.exact_known;
    coverage.xor_fold = report->summary.xor_fold;
    coverage.sources = report->summary.sources;
    if (!value.has_value()) {
      any_degraded = true;
      if (report->degraded_value.has_value()) {
        result.degraded_values[node.id()] = *report->degraded_value;
      }
    }
    if (metrics_ != nullptr) {
      metrics_->Observe(
          handles_.coverage_per_destination,
          static_cast<int64_t>(coverage.coverage * 100.0 + 0.5));
    }
    result.destination_coverage[node.id()] = std::move(coverage);
  }
  if (any_degraded && metrics_ != nullptr) {
    metrics_->Add(handles_.coverage_degraded_rounds, 1);
  }
  return result;
}

}  // namespace m2m
