#include "runtime/network.h"

#include <algorithm>
#include <deque>
#include <map>

#include "common/check.h"
#include "plan/serialization.h"

namespace m2m {

int64_t RetryPolicy::BackoffWaitTicks(int attempt) const {
  M2M_CHECK_GE(attempt, 1);
  // The clamp doubles as the overflow guard: wait only grows while below
  // max_backoff_ticks, so the product never exceeds
  // max_backoff_ticks * backoff_factor, well inside int64.
  int64_t wait = ack_timeout_ticks;
  for (int k = 1; k < attempt && wait < max_backoff_ticks; ++k) {
    wait *= backoff_factor;
  }
  return std::min(wait, max_backoff_ticks);
}

int64_t RetryPolicy::RetryHorizonTicks() const {
  int64_t horizon = 1;
  int64_t wait = ack_timeout_ticks;
  for (int k = 1; k < max_attempts; ++k) {
    horizon += std::min(wait, max_backoff_ticks);
    if (wait < max_backoff_ticks) wait *= backoff_factor;
  }
  return horizon;
}

RuntimeNetwork::RuntimeNetwork(const CompiledPlan& compiled,
                               const FunctionSet& functions) {
  std::vector<std::vector<uint8_t>> images =
      EncodeAllNodeStates(compiled, functions);
  nodes_.reserve(images.size());
  message_hops_.resize(images.size());
  message_segments_.resize(images.size());
  for (NodeId n = 0; n < compiled.node_count(); ++n) {
    installed_image_bytes_ += static_cast<int64_t>(images[n].size());
    nodes_.emplace_back(n, images[n]);
    // Hop counts by node-local message id (images index outgoing messages
    // by their position in the outgoing table).
    for (const OutgoingMessageEntry& entry :
         compiled.state(n).outgoing_table) {
      message_hops_[n].push_back(
          static_cast<int>(entry.segment.size()) - 1);
      message_segments_[n].push_back(entry.segment);
    }
  }
}

void RuntimeNetwork::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  handles_.tx_attempts = metrics_->Counter("runtime.tx_attempts");
  handles_.tx_bytes = metrics_->Counter("runtime.tx_bytes");
  handles_.rx_packets = metrics_->Counter("runtime.rx_packets");
  handles_.rx_bytes = metrics_->Counter("runtime.rx_bytes");
  handles_.hop_transmissions = metrics_->Counter("runtime.hop_transmissions");
  handles_.retransmissions = metrics_->Counter("runtime.retransmissions");
  handles_.backoff_wait_ticks =
      metrics_->Counter("runtime.backoff_wait_ticks");
  handles_.acks_delivered = metrics_->Counter("runtime.acks_delivered");
  handles_.acks_lost = metrics_->Counter("runtime.acks_lost");
  handles_.dedup_hits = metrics_->Counter("runtime.dedup_hits");
  handles_.epoch_gate_drops = metrics_->Counter("runtime.epoch_gate_drops");
  handles_.messages_abandoned =
      metrics_->Counter("runtime.messages_abandoned");
  handles_.tx_packets = metrics_->Counter("runtime.tx_packets");
  handles_.delivery_passes = metrics_->Counter("runtime.delivery_passes");
  handles_.attempts_per_message =
      metrics_->Histogram("runtime.attempts_per_message");
  handles_.round_ticks = metrics_->Histogram("runtime.round_ticks");
  handles_.installs = metrics_->Counter("runtime.image_installs");
  handles_.install_bytes = metrics_->Counter("runtime.image_install_bytes");
}

void RuntimeNetwork::InstallNodeImage(NodeId node,
                                      const std::vector<uint8_t>& image,
                                      std::vector<std::vector<NodeId>> segments) {
  M2M_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
  nodes_[node].InstallImage(image);
  const size_t outgoing = nodes_[node].decoded().state.outgoing_table.size();
  M2M_CHECK_EQ(segments.size(), outgoing)
      << "node " << node << ": segment routes do not match outgoing table";
  message_hops_[node].clear();
  message_segments_[node] = std::move(segments);
  for (const std::vector<NodeId>& segment : message_segments_[node]) {
    M2M_CHECK_GE(segment.size(), 2u);
    message_hops_[node].push_back(static_cast<int>(segment.size()) - 1);
  }
  if (metrics_ != nullptr) {
    metrics_->AddNode(handles_.installs, node, 1);
    metrics_->AddNode(handles_.install_bytes, node,
                      static_cast<int64_t>(image.size()));
  }
}

uint32_t RuntimeNetwork::plan_epoch(NodeId node) const {
  M2M_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
  return nodes_[node].plan_epoch();
}

const NodeRuntime& RuntimeNetwork::node_runtime(NodeId node) const {
  M2M_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()));
  return nodes_[node];
}

RuntimeNetwork::Result RuntimeNetwork::RunRound(
    const std::vector<double>& readings, const EnergyModel& energy) {
  M2M_CHECK_EQ(readings.size(), nodes_.size());
  Result result;

  struct InFlight {
    NodeId sender;
    NodeRuntime::OutgoingPacket packet;
  };
  std::deque<InFlight> in_flight;
  auto collect = [&](NodeRuntime& node) {
    for (NodeRuntime::OutgoingPacket& packet : node.DrainReadyPackets()) {
      in_flight.push_back(InFlight{node.id(), std::move(packet)});
    }
  };

  for (NodeRuntime& node : nodes_) {
    node.StartRound(readings[node.id()]);
    collect(node);
  }
  while (!in_flight.empty()) {
    ++result.delivery_passes;
    std::deque<InFlight> batch;
    batch.swap(in_flight);
    while (!batch.empty()) {
      InFlight flight = std::move(batch.front());
      batch.pop_front();
      int payload = static_cast<int>(flight.packet.payload.size());
      int hops =
          message_hops_[flight.sender][flight.packet.local_message_id];
      result.packets += 1;
      result.payload_bytes += payload;
      result.energy_mj += hops * energy.UnicastHopUj(payload) / 1000.0;
      NodeRuntime& recipient = nodes_[flight.packet.recipient];
      if (metrics_ != nullptr) {
        metrics_->AddNode(handles_.tx_packets, flight.sender, 1);
        metrics_->AddNode(handles_.tx_bytes, flight.sender, payload);
        metrics_->AddNode(handles_.rx_packets, flight.packet.recipient, 1);
        metrics_->AddNode(handles_.rx_bytes, flight.packet.recipient,
                          payload);
      }
      recipient.OnReceive(flight.packet.payload);
      collect(recipient);
    }
  }
  if (metrics_ != nullptr) {
    metrics_->Add(handles_.delivery_passes, result.delivery_passes);
  }

  for (const NodeRuntime& node : nodes_) {
    if (!node.is_destination()) continue;
    std::optional<double> value = node.FinalValue();
    M2M_CHECK(value.has_value())
        << "destination " << node.id() << " never completed its aggregate";
    result.destination_values[node.id()] = *value;
  }
  return result;
}

RuntimeNetwork::LossyResult RuntimeNetwork::RunRoundLossy(
    const std::vector<double>& readings, const LossyLinkModel& links,
    const RetryPolicy& retry, const EnergyModel& energy, EventTrace* trace) {
  M2M_CHECK_EQ(readings.size(), nodes_.size());
  M2M_CHECK(links.attempt_delivers != nullptr);
  M2M_CHECK_GE(retry.max_attempts, 1);
  M2M_CHECK_GE(retry.ack_timeout_ticks, 1);
  M2M_CHECK_GE(retry.backoff_factor, 1);
  M2M_CHECK_GE(retry.max_backoff_ticks, retry.ack_timeout_ticks)
      << "max_backoff_ticks must not undercut the base ack timeout";
  // Ticks stay in int; the clamp bounds the horizon, but a pathological
  // policy (huge max_attempts * huge clamp) must fail loudly, not wrap.
  const int64_t retry_horizon_ticks = retry.RetryHorizonTicks();
  M2M_CHECK_LE(retry_horizon_ticks, int64_t{1} << 30)
      << "retry policy horizon overflows the tick domain";
  auto alive = [&](NodeId n) {
    return links.node_alive == nullptr || links.node_alive(n);
  };
  LossyResult result;

  // One in-flight message instance per emitted packet; retransmissions
  // reuse the instance with a bumped attempt counter.
  struct Transfer {
    NodeId sender = kInvalidNode;
    NodeRuntime::OutgoingPacket packet;
    uint32_t epoch = 0;  ///< Sender's plan epoch, stamped at emission.
    int attempts_made = 0;
    bool delivered_once = false;
  };
  std::vector<Transfer> transfers;
  // tick -> transfer indices scheduled for (re)transmission, FIFO per tick.
  std::map<int, std::vector<size_t>> agenda;
  auto collect = [&](NodeRuntime& node, int tick) {
    for (NodeRuntime::OutgoingPacket& packet : node.DrainReadyPackets()) {
      transfers.push_back(
          Transfer{node.id(), std::move(packet), node.plan_epoch()});
      agenda[tick].push_back(transfers.size() - 1);
    }
  };
  auto observe_message_done = [&](const Transfer& transfer) {
    if (metrics_ != nullptr) {
      metrics_->Observe(handles_.attempts_per_message,
                        transfer.attempts_made);
    }
  };

  for (NodeRuntime& node : nodes_) {
    if (!alive(node.id())) continue;
    node.StartRound(readings[node.id()]);
    collect(node, 0);
  }

  while (!agenda.empty()) {
    auto agenda_it = agenda.begin();
    const int tick = agenda_it->first;
    result.final_tick = tick;
    // Dedup entries older than the retry horizon can never be duplicated
    // again; drop them so the table stays O(in-flight), not O(received).
    // The boundary is exact: an entry stamped t is retained through
    // processing tick t + horizon, and the last possible retransmission
    // of its message arrives at t + horizon - 1 (obs_test pins this).
    if (tick > retry_horizon_ticks) {
      const int evict_before =
          tick - static_cast<int>(retry_horizon_ticks);
      for (NodeRuntime& node : nodes_) {
        node.EvictSeenPacketsBefore(evict_before);
      }
    }
    // Entries may be appended to this tick's list while we walk it (a
    // delivery can trigger a same-tick... it cannot: triggered sends land
    // at tick + 1 — but index-walk anyway so growth is safe).
    for (size_t i = 0; i < agenda_it->second.size(); ++i) {
      // A delivery below can push into `transfers` (reallocation), so go
      // through the index, never a held reference.
      const size_t index = agenda_it->second[i];
      const NodeId sender = transfers[index].sender;
      const int message_id = transfers[index].packet.local_message_id;
      const NodeId packet_recipient = transfers[index].packet.recipient;
      const std::vector<NodeId>& segment =
          message_segments_[sender][message_id];
      const int payload =
          static_cast<int>(transfers[index].packet.payload.size());
      const int attempt = ++transfers[index].attempts_made;
      result.attempts += 1;
      if (attempt > 1) result.retransmissions += 1;
      if (metrics_ != nullptr) {
        metrics_->AddNode(handles_.tx_attempts, sender, 1);
        metrics_->AddNode(handles_.tx_bytes, sender, payload);
        if (attempt > 1) metrics_->Add(handles_.retransmissions, 1);
      }

      // Data crosses the segment hop by hop; the first dead hop burns one
      // transmit and stops the packet.
      int hops_crossed = 0;
      bool delivered = alive(packet_recipient);
      if (delivered) {
        for (size_t h = 0; h + 1 < segment.size(); ++h) {
          if (!links.attempt_delivers(segment[h], segment[h + 1], attempt)) {
            delivered = false;
            break;
          }
          ++hops_crossed;
          if (metrics_ != nullptr) {
            metrics_->AddEdge(handles_.hop_transmissions, segment[h],
                              segment[h + 1], 1);
          }
          // Heartbeat evidence: segment[h+1] heard segment[h] transmit.
          result.heard.emplace(segment[h], segment[h + 1]);
        }
      }
      result.energy_mj += hops_crossed * energy.UnicastHopUj(payload) / 1000.0;
      if (!delivered && hops_crossed + 2 <= static_cast<int>(segment.size())) {
        result.energy_mj += energy.TxUj(payload) / 1000.0;
      }

      obs::SendOutcome outcome = obs::SendOutcome::kDeadRecipient;
      bool acked = false;
      if (delivered) {
        result.deliveries += 1;
        result.payload_bytes += payload;
        NodeRuntime& recipient = nodes_[packet_recipient];
        if (metrics_ != nullptr) {
          metrics_->AddNode(handles_.rx_packets, packet_recipient, 1);
          metrics_->AddNode(handles_.rx_bytes, packet_recipient, payload);
        }
        switch (recipient.OnReceiveOnce(sender, message_id,
                                        transfers[index].epoch,
                                        transfers[index].packet.payload,
                                        tick)) {
          case NodeRuntime::ReceiveOutcome::kFresh:
            transfers[index].delivered_once = true;
            collect(recipient, tick + 1);
            outcome = obs::SendOutcome::kRx;
            break;
          case NodeRuntime::ReceiveOutcome::kDuplicate:
            result.duplicates += 1;
            if (metrics_ != nullptr) {
              metrics_->AddNode(handles_.dedup_hits, packet_recipient, 1);
            }
            outcome = obs::SendOutcome::kDuplicate;
            break;
          case NodeRuntime::ReceiveOutcome::kEpochMismatch:
            // Dropped whole, but still acked below: the mismatch is a plan
            // generation gap, not a link failure — retrying cannot help.
            transfers[index].delivered_once = true;
            result.epoch_rejected += 1;
            if (metrics_ != nullptr) {
              metrics_->AddNode(handles_.epoch_gate_drops, packet_recipient,
                                1);
            }
            outcome = obs::SendOutcome::kEpochRejected;
            break;
        }
        // Ack travels the segment in reverse; header-only payload.
        acked = true;
        int ack_hops = 0;
        for (size_t h = segment.size() - 1; h > 0; --h) {
          if (!links.attempt_delivers(segment[h], segment[h - 1], attempt)) {
            acked = false;
            break;
          }
          ++ack_hops;
          result.heard.emplace(segment[h], segment[h - 1]);
        }
        result.energy_mj += ack_hops * energy.UnicastHopUj(0) / 1000.0;
        if (acked) {
          if (metrics_ != nullptr) {
            metrics_->AddNode(handles_.acks_delivered, sender, 1);
          }
        } else {
          result.energy_mj += energy.TxUj(0) / 1000.0;
          result.acks_lost += 1;
          if (metrics_ != nullptr) {
            metrics_->AddNode(handles_.acks_lost, sender, 1);
          }
        }
      } else if (alive(packet_recipient)) {
        outcome = obs::SendOutcome::kDropped;
      }

      if (trace != nullptr) {
        trace->Send(tick, sender, packet_recipient, message_id, attempt,
                    payload, outcome, delivered && !acked,
                    /*drop_hop=*/outcome == obs::SendOutcome::kDropped
                        ? hops_crossed + 1
                        : 0);
      }

      if (!acked) {
        if (attempt < retry.max_attempts) {
          const int64_t timeout = retry.BackoffWaitTicks(attempt);
          agenda[tick + static_cast<int>(timeout)].push_back(index);
          if (metrics_ != nullptr) {
            metrics_->Add(handles_.backoff_wait_ticks, timeout);
          }
        } else {
          observe_message_done(transfers[index]);
          if (!transfers[index].delivered_once) {
            result.messages_abandoned += 1;
            if (metrics_ != nullptr) {
              metrics_->AddNode(handles_.messages_abandoned, sender, 1);
            }
            if (trace != nullptr) {
              trace->GiveUp(tick, sender, packet_recipient, message_id);
            }
          }
        }
      } else {
        observe_message_done(transfers[index]);
      }
    }
    agenda.erase(agenda_it);
  }
  if (metrics_ != nullptr) {
    metrics_->Observe(handles_.round_ticks, result.final_tick);
  }

  for (const NodeRuntime& node : nodes_) {
    if (!node.is_destination() || !alive(node.id())) continue;
    std::optional<double> value = node.FinalValue();
    if (value.has_value()) {
      result.destination_values[node.id()] = *value;
      result.destination_epochs[node.id()] = node.plan_epoch();
    } else {
      result.incomplete_destinations.push_back(node.id());
    }
  }
  return result;
}

}  // namespace m2m
