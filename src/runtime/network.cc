#include "runtime/network.h"

#include <deque>

#include "common/check.h"
#include "plan/serialization.h"

namespace m2m {

RuntimeNetwork::RuntimeNetwork(const CompiledPlan& compiled,
                               const FunctionSet& functions) {
  std::vector<std::vector<uint8_t>> images =
      EncodeAllNodeStates(compiled, functions);
  nodes_.reserve(images.size());
  message_hops_.resize(images.size());
  for (NodeId n = 0; n < compiled.node_count(); ++n) {
    installed_image_bytes_ += static_cast<int64_t>(images[n].size());
    nodes_.emplace_back(n, images[n]);
    // Hop counts by node-local message id (images index outgoing messages
    // by their position in the outgoing table).
    for (const OutgoingMessageEntry& entry :
         compiled.state(n).outgoing_table) {
      message_hops_[n].push_back(
          static_cast<int>(entry.segment.size()) - 1);
    }
  }
}

RuntimeNetwork::Result RuntimeNetwork::RunRound(
    const std::vector<double>& readings, const EnergyModel& energy) {
  M2M_CHECK_EQ(readings.size(), nodes_.size());
  Result result;

  struct InFlight {
    NodeId sender;
    NodeRuntime::OutgoingPacket packet;
  };
  std::deque<InFlight> in_flight;
  auto collect = [&](NodeRuntime& node) {
    for (NodeRuntime::OutgoingPacket& packet : node.DrainReadyPackets()) {
      in_flight.push_back(InFlight{node.id(), std::move(packet)});
    }
  };

  for (NodeRuntime& node : nodes_) {
    node.StartRound(readings[node.id()]);
    collect(node);
  }
  while (!in_flight.empty()) {
    ++result.delivery_passes;
    std::deque<InFlight> batch;
    batch.swap(in_flight);
    while (!batch.empty()) {
      InFlight flight = std::move(batch.front());
      batch.pop_front();
      int payload = static_cast<int>(flight.packet.payload.size());
      int hops =
          message_hops_[flight.sender][flight.packet.local_message_id];
      result.packets += 1;
      result.payload_bytes += payload;
      result.energy_mj += hops * energy.UnicastHopUj(payload) / 1000.0;
      NodeRuntime& recipient = nodes_[flight.packet.recipient];
      recipient.OnReceive(flight.packet.payload);
      collect(recipient);
    }
  }

  for (const NodeRuntime& node : nodes_) {
    if (!node.is_destination()) continue;
    std::optional<double> value = node.FinalValue();
    M2M_CHECK(value.has_value())
        << "destination " << node.id() << " never completed its aggregate";
    result.destination_values[node.id()] = *value;
  }
  return result;
}

}  // namespace m2m
