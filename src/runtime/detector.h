#ifndef M2M_RUNTIME_DETECTOR_H_
#define M2M_RUNTIME_DETECTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "topology/topology.h"

namespace m2m {

/// Tuning knobs for the in-network failure detector.
struct DetectorOptions {
  /// Consecutive silent rounds (no heartbeat evidence and every probe
  /// exchange failed) before a monitor suspects the link to a neighbor.
  /// Higher values trade detection latency for fewer false suspicions under
  /// heavy transient loss.
  int suspicion_threshold = 2;
  /// Transmission attempts per probe and per probe reply each round. With
  /// per-attempt drop probability p, a live neighbor stays silent for a
  /// whole round only with probability ~2 p^probe_attempts.
  int probe_attempts = 8;
  /// Consecutive rounds of renewed evidence a suspected link must show
  /// before the suspicion is retracted (the link is *readmitted*). The
  /// hysteresis gap — raise after `suspicion_threshold` misses, retract
  /// only after `probation_rounds` consecutive proofs of life — keeps a
  /// flapping link from oscillating the plan.
  int probation_rounds = 2;
  /// Flap damping for mobile links: each re-suspicion that follows a
  /// recent readmission of the same link multiplies its next probation by
  /// this factor, so a link that keeps making and breaking (a node
  /// drifting along the range boundary) settles into a long quarantine
  /// instead of storming the planner with suspect/readmit cycles. 1 (the
  /// default) disables escalation and reproduces the legacy behavior
  /// byte for byte.
  int probation_backoff_factor = 1;
  /// Hard cap on any link's effective probation. The cap is what makes
  /// damping safe: suspicion may escalate but can never become sticky —
  /// once a flapping link genuinely stabilizes, it is readmitted within
  /// `max_probation_rounds` consecutive evidence rounds, never exiled
  /// permanently (pinned by the oscillating-link regression).
  int max_probation_rounds = 64;
  /// A link whose last readmission lies more than this many rounds in the
  /// past is forgiven: its next suspicion starts from the base probation
  /// again rather than the escalated one.
  int flap_forgiveness_rounds = 64;
};

/// One monitor's verdict about the directed link to a topology neighbor.
struct SuspectedLink {
  NodeId monitor = kInvalidNode;
  NodeId neighbor = kInvalidNode;
  /// Round at which the monitor's missed count crossed the threshold (for
  /// readmissions: the round probation completed).
  int round = -1;

  friend bool operator==(const SuspectedLink&, const SuspectedLink&) =
      default;
  friend auto operator<=>(const SuspectedLink&, const SuspectedLink&) =
      default;
};

/// Paper section 3's failure *detection* half, run in-network: every node
/// monitors its topology neighbors using two evidence sources and no oracle:
///
///   1. Piggybacked heartbeats — any transmission heard from a neighbor
///      during normal round traffic (data hop, ack hop) proves it alive.
///      This is free: it reuses the packets the aggregation already sends.
///   2. Explicit probes — when a neighbor was silent all round (it may
///      simply have no traffic routed this way), the monitor sends up to
///      `probe_attempts` probe packets; a live neighbor answers with a
///      probe reply (again up to `probe_attempts` attempts). Only when the
///      whole exchange fails does the round count as missed.
///
/// A neighbor missed `suspicion_threshold` consecutive rounds becomes a
/// suspicion. Suspicions are not sticky: monitors keep probing suspected
/// links, and a recovered neighbor works its way back through a *probation*
/// hysteresis — evidence of life moves the link into probation, and after
/// `probation_rounds` consecutive evidence rounds the suspicion is
/// retracted (a *readmission*, reported so the planner can re-admit the
/// node). A single silent round during probation falls back to full
/// suspicion, so flapping links stay quarantined. The link state machine:
///
///   trusted --threshold misses--> suspected --evidence--> probation
///     ^                              ^  |                    |
///     |                              |  +--- (stays) <-- silent round
///     +--- probation_rounds consecutive evidence rounds -----+
///
/// The class simulates the per-node monitors centrally but gives each
/// monitor only locally observable inputs: which neighbors it heard, and
/// the outcome of its own probe transmissions. It never reads the fault
/// schedule's event list.
class FailureDetector {
 public:
  FailureDetector(const Topology& topology, DetectorOptions options = {});

  /// Physical outcome of one probe-sized transmission attempt on a directed
  /// link (1-based attempt index). Must already account for dead endpoints:
  /// a transmission from or to a dead node never delivers. Must be pure for
  /// reproducibility. Attempt indices are drawn from a dedicated namespace
  /// (1000+ for probes, 1500+ for replies) so probe outcomes are
  /// independent of the round's data-traffic outcomes.
  using AttemptDelivers =
      std::function<bool(NodeId from, NodeId to, int attempt)>;

  struct RoundReport {
    /// Suspicions newly raised this round, ordered by (monitor, neighbor).
    /// A link re-suspected after a readmission appears again.
    std::vector<SuspectedLink> new_suspicions;
    /// Suspicions retracted this round — the neighbor completed probation.
    /// `round` is the round probation completed.
    std::vector<SuspectedLink> readmitted;
    /// Probe packets transmitted (attempts, both probes and replies) — the
    /// detector's traffic overhead for this round.
    int64_t probe_transmissions = 0;
    /// Probe exchanges that produced evidence of life.
    int64_t probe_confirmations = 0;
  };

  /// Feeds one round of observations to every live monitor. `heard` is the
  /// round's heartbeat evidence: directed pairs (from, to) where `to` heard
  /// at least one transmission by `from` (RuntimeNetwork::LossyResult::
  /// heard). `node_active` says whether a node ran this round at all (a
  /// physically dead node executes nothing, so it neither monitors nor
  /// probes); it models the node's own state, not knowledge of others.
  RoundReport ObserveRound(int round,
                           const std::set<std::pair<NodeId, NodeId>>& heard,
                           const AttemptDelivers& attempt_delivers,
                           const std::function<bool(NodeId)>& node_active);

  /// Current suspicions (suspected or in probation), ordered by
  /// (monitor, neighbor).
  std::vector<SuspectedLink> suspicions() const;

  /// True iff `monitor` currently suspects its link to `neighbor` —
  /// including links in probation, which stay quarantined until readmitted.
  bool Suspects(NodeId monitor, NodeId neighbor) const;

  /// True iff the suspected link is in probation (accumulating evidence
  /// toward readmission).
  bool InProbation(NodeId monitor, NodeId neighbor) const;

  /// Number of suspected links currently in probation.
  int probation_link_count() const;

  /// Consecutive missed rounds for a directed monitor->neighbor pair.
  int missed_rounds(NodeId monitor, NodeId neighbor) const;

  /// Effective probation the current suspicion of this link must serve
  /// (base probation escalated by flap damping); 0 if not suspected.
  int required_probation(NodeId monitor, NodeId neighbor) const;

  /// Re-suspicions of this link within the forgiveness window (its flap
  /// score); 0 for a link with no recent flap history.
  int flap_count(NodeId monitor, NodeId neighbor) const;

  const DetectorOptions& options() const { return options_; }

  /// First attempt index of the probe / probe-reply attempt namespaces.
  /// Data traffic uses small positive attempt indices; keeping probes in a
  /// disjoint range makes their outcomes independent draws from the same
  /// pure link function.
  static constexpr int kProbeAttemptBase = 1000;
  static constexpr int kProbeReplyAttemptBase = 1500;

 private:
  struct Suspicion {
    int raised_round = -1;
    /// Consecutive evidence rounds while suspected; readmit at
    /// `required_probation`. 0 = not in probation.
    int probation_progress = 0;
    /// Evidence rounds this suspicion must serve before readmission:
    /// `probation_rounds` escalated by the link's flap score, capped at
    /// `max_probation_rounds`.
    int required_probation = 0;
  };

  /// Flap-damping memory for one directed link.
  struct FlapRecord {
    int resuspicions = 0;       ///< Suspicions since the streak started.
    int last_readmit_round = -1;
  };

  /// Effective probation for a suspicion of `link` raised at `round`,
  /// updating (or forgiving) the link's flap record.
  int EscalatedProbation(const std::pair<NodeId, NodeId>& link, int round);

  const Topology* topology_;
  DetectorOptions options_;
  /// (monitor, neighbor) -> consecutive rounds without evidence of life.
  std::map<std::pair<NodeId, NodeId>, int> missed_;
  /// Active suspicions keyed (monitor, neighbor).
  std::map<std::pair<NodeId, NodeId>, Suspicion> suspected_;
  /// Flap history keyed (monitor, neighbor); entries are dropped when the
  /// forgiveness window elapses.
  std::map<std::pair<NodeId, NodeId>, FlapRecord> flaps_;
};

}  // namespace m2m

#endif  // M2M_RUNTIME_DETECTOR_H_
