#ifndef M2M_RUNTIME_CHANNEL_H_
#define M2M_RUNTIME_CHANNEL_H_

#include <cstdint>
#include <functional>

#include "common/ids.h"
#include "obs/metrics.h"
#include "runtime/network.h"

namespace m2m {

/// Knobs of the adversarial channel. All probabilities are in [0, 1].
///
/// Loss follows a Gilbert–Elliott two-state chain per directed link: the
/// link is either in a *good* state (loss = good_loss) or a *bad* burst
/// state (loss = bad_loss), with per-attempt transition probabilities
/// p_enter_bad / p_exit_bad. p_enter_bad = 0 collapses the model to
/// independent Bernoulli loss at good_loss, the legacy regime.
struct ChannelOptions {
  double good_loss = 0.0;      ///< Loss probability in the good state.
  double bad_loss = 0.9;       ///< Loss probability inside a burst.
  double p_enter_bad = 0.0;    ///< Good -> bad transition per attempt.
  double p_exit_bad = 0.25;    ///< Bad -> good transition per attempt.
  /// Extra loss applied only to "reverse" hops (from > to). Models
  /// asymmetric links where the uplink is cleaner than the downlink.
  double reverse_extra_loss = 0.0;
  /// Probability that a crossed hop spawns a spontaneous duplicate copy.
  double duplicate_probability = 0.0;
  /// Probability that a crossed hop flips one payload bit in transit.
  double corrupt_probability = 0.0;
  /// Probability that a crossed hop adds queueing delay (1..max_delay).
  double delay_probability = 0.0;
  /// Per-attempt, per-direction cap on accumulated channel delay, in
  /// ticks. 0 disables delay entirely (and keeps dedup eviction at the
  /// clean-channel horizon).
  int max_delay_ticks = 0;
  uint64_t seed = 1;
};

/// Deterministic adversarial channel. Every per-(round, link, attempt)
/// decision is a pure hash of (seed, round, from, to, attempt) — no mutable
/// RNG state — so a replay of the same seed over the same schedule is
/// byte-identical, and delivery queries commute with any evaluation order
/// the runtime chooses (delayed acks, reordered retransmissions, ...).
///
/// `Bind(round)` produces the LossyLinkModel the runtime consumes; the
/// ChannelModel must outlive every bound model.
class ChannelModel {
 public:
  explicit ChannelModel(const ChannelOptions& options);

  /// True iff the directed hop (from -> to) delivers on this attempt.
  bool AttemptDelivers(int round, NodeId from, NodeId to, int attempt) const;

  /// Side effects (delay/duplication/corruption) for a crossed hop.
  HopEffects EffectsFor(int round, NodeId from, NodeId to,
                        int attempt) const;

  /// True iff the Gilbert–Elliott chain is in the burst state for this
  /// attempt on this directed link.
  bool InBurst(int round, NodeId from, NodeId to, int attempt) const;

  /// Binds the channel to one round as a LossyLinkModel. `node_alive` may
  /// be null (everything alive).
  LossyLinkModel Bind(int round,
                      std::function<bool(NodeId)> node_alive = nullptr) const;

  /// Registers `chan.burst_transitions` (good -> bad entries observed by
  /// delivery queries). Counting is observational only — it never feeds
  /// back into channel decisions, so metrics on/off cannot change a run.
  void set_metrics(obs::MetricsRegistry* metrics);

  const ChannelOptions& options() const { return options_; }

 private:
  ChannelOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricHandle burst_transitions_{};
};

}  // namespace m2m

#endif  // M2M_RUNTIME_CHANNEL_H_
