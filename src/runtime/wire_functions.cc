#include "runtime/wire_functions.h"

#include <algorithm>
#include <cmath>

#include "agg/aggregate_function.h"
#include "common/check.h"

namespace m2m::wire {

namespace {

AggregateKind KindOf(uint8_t kind) {
  M2M_CHECK_LE(kind, static_cast<uint8_t>(AggregateKind::kArgMax))
      << "unknown wire function kind " << static_cast<int>(kind);
  return static_cast<AggregateKind>(kind);
}

}  // namespace

int FieldCountOf(uint8_t kind) {
  switch (KindOf(kind)) {
    case AggregateKind::kWeightedSum:
    case AggregateKind::kMin:
    case AggregateKind::kMax:
    case AggregateKind::kCount:
    case AggregateKind::kCountAbove:
      return 1;
    case AggregateKind::kWeightedAverage:
    case AggregateKind::kArgMax:
      return 2;
    case AggregateKind::kWeightedStdDev:
      return 3;
  }
  return 1;
}

PartialRecord PreAggregate(uint8_t kind, float weight, float param,
                           NodeId source, double value) {
  switch (KindOf(kind)) {
    case AggregateKind::kWeightedSum:
      return PartialRecord{{weight * value, 0.0, 0.0}};
    case AggregateKind::kWeightedAverage:
      return PartialRecord{{weight * value, 1.0, 0.0}};
    case AggregateKind::kWeightedStdDev: {
      double x = weight * value;
      return PartialRecord{{x, x * x, 1.0}};
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return PartialRecord{{value, 0.0, 0.0}};
    case AggregateKind::kCount:
      return PartialRecord{{1.0, 0.0, 0.0}};
    case AggregateKind::kCountAbove:
      return PartialRecord{{value > param ? 1.0 : 0.0, 0.0, 0.0}};
    case AggregateKind::kArgMax:
      return PartialRecord{{value, static_cast<double>(source), 0.0}};
  }
  return PartialRecord{};
}

PartialRecord Merge(uint8_t kind, const PartialRecord& a,
                    const PartialRecord& b) {
  switch (KindOf(kind)) {
    case AggregateKind::kWeightedSum:
    case AggregateKind::kWeightedAverage:
    case AggregateKind::kWeightedStdDev:
    case AggregateKind::kCount:
    case AggregateKind::kCountAbove:
      return AddFields(a, b);
    case AggregateKind::kMin:
      return PartialRecord{{std::min(a.fields[0], b.fields[0]), 0.0, 0.0}};
    case AggregateKind::kMax:
      return PartialRecord{{std::max(a.fields[0], b.fields[0]), 0.0, 0.0}};
    case AggregateKind::kArgMax:
      if (a.fields[0] != b.fields[0]) {
        return a.fields[0] > b.fields[0] ? a : b;
      }
      return a.fields[1] <= b.fields[1] ? a : b;
  }
  return a;
}

double Evaluate(uint8_t kind, const PartialRecord& record) {
  switch (KindOf(kind)) {
    case AggregateKind::kWeightedSum:
    case AggregateKind::kMin:
    case AggregateKind::kMax:
    case AggregateKind::kCount:
    case AggregateKind::kCountAbove:
      return record.fields[0];
    case AggregateKind::kWeightedAverage:
      M2M_CHECK_GT(record.fields[1], 0.0);
      return record.fields[0] / record.fields[1];
    case AggregateKind::kWeightedStdDev: {
      M2M_CHECK_GT(record.fields[2], 0.0);
      double n = record.fields[2];
      double mean = record.fields[0] / n;
      return std::sqrt(std::max(record.fields[1] / n - mean * mean, 0.0));
    }
    case AggregateKind::kArgMax:
      return record.fields[1];
  }
  return 0.0;
}

}  // namespace m2m::wire
