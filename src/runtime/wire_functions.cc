#include "runtime/wire_functions.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "agg/aggregate_function.h"
#include "common/bytes.h"
#include "common/check.h"
#include "common/crc32.h"
#include "plan/dissemination.h"

namespace m2m::wire {

namespace {

AggregateKind KindOf(uint8_t kind) {
  M2M_CHECK_LE(kind, static_cast<uint8_t>(AggregateKind::kArgMax))
      << "unknown wire function kind " << static_cast<int>(kind);
  return static_cast<AggregateKind>(kind);
}

}  // namespace

int FieldCountOf(uint8_t kind) {
  switch (KindOf(kind)) {
    case AggregateKind::kWeightedSum:
    case AggregateKind::kMin:
    case AggregateKind::kMax:
    case AggregateKind::kCount:
    case AggregateKind::kCountAbove:
      return 1;
    case AggregateKind::kWeightedAverage:
    case AggregateKind::kArgMax:
      return 2;
    case AggregateKind::kWeightedStdDev:
      return 3;
  }
  return 1;
}

PartialRecord PreAggregate(uint8_t kind, float weight, float param,
                           NodeId source, double value) {
  switch (KindOf(kind)) {
    case AggregateKind::kWeightedSum:
      return PartialRecord{{weight * value, 0.0, 0.0}};
    case AggregateKind::kWeightedAverage:
      return PartialRecord{{weight * value, 1.0, 0.0}};
    case AggregateKind::kWeightedStdDev: {
      double x = weight * value;
      return PartialRecord{{x, x * x, 1.0}};
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return PartialRecord{{value, 0.0, 0.0}};
    case AggregateKind::kCount:
      return PartialRecord{{1.0, 0.0, 0.0}};
    case AggregateKind::kCountAbove:
      return PartialRecord{{value > param ? 1.0 : 0.0, 0.0, 0.0}};
    case AggregateKind::kArgMax:
      return PartialRecord{{value, static_cast<double>(source), 0.0}};
  }
  return PartialRecord{};
}

PartialRecord Merge(uint8_t kind, const PartialRecord& a,
                    const PartialRecord& b) {
  switch (KindOf(kind)) {
    case AggregateKind::kWeightedSum:
    case AggregateKind::kWeightedAverage:
    case AggregateKind::kWeightedStdDev:
    case AggregateKind::kCount:
    case AggregateKind::kCountAbove:
      return AddFields(a, b);
    case AggregateKind::kMin:
      return PartialRecord{{std::min(a.fields[0], b.fields[0]), 0.0, 0.0}};
    case AggregateKind::kMax:
      return PartialRecord{{std::max(a.fields[0], b.fields[0]), 0.0, 0.0}};
    case AggregateKind::kArgMax:
      if (a.fields[0] != b.fields[0]) {
        return a.fields[0] > b.fields[0] ? a : b;
      }
      return a.fields[1] <= b.fields[1] ? a : b;
  }
  return a;
}

double Evaluate(uint8_t kind, const PartialRecord& record) {
  switch (KindOf(kind)) {
    case AggregateKind::kWeightedSum:
    case AggregateKind::kMin:
    case AggregateKind::kMax:
    case AggregateKind::kCount:
    case AggregateKind::kCountAbove:
      return record.fields[0];
    case AggregateKind::kWeightedAverage:
      M2M_CHECK_GT(record.fields[1], 0.0);
      return record.fields[0] / record.fields[1];
    case AggregateKind::kWeightedStdDev: {
      M2M_CHECK_GT(record.fields[2], 0.0);
      double n = record.fields[2];
      double mean = record.fields[0] / n;
      return std::sqrt(std::max(record.fields[1] / n - mean * mean, 0.0));
    }
    case AggregateKind::kArgMax:
      return record.fields[1];
  }
  return 0.0;
}

SourceSummary SingleSource(NodeId source) {
  SourceSummary summary;
  summary.count = 1;
  summary.xor_fold = static_cast<uint32_t>(source) + 1;
  summary.exact_known = true;
  summary.sources = {source};
  return summary;
}

SourceSummary MergeSummaries(const SourceSummary& a, const SourceSummary& b) {
  SourceSummary merged;
  if (a.exact_known && b.exact_known) {
    merged.sources.reserve(a.sources.size() + b.sources.size());
    std::set_union(a.sources.begin(), a.sources.end(), b.sources.begin(),
                   b.sources.end(), std::back_inserter(merged.sources));
    merged.count = static_cast<uint32_t>(merged.sources.size());
    merged.xor_fold = 0;
    for (NodeId s : merged.sources) {
      merged.xor_fold ^= static_cast<uint32_t>(s) + 1;
    }
    if (merged.sources.size() <=
        static_cast<size_t>(kCoverageExactThreshold)) {
      merged.exact_known = true;
      return merged;
    }
    merged.exact_known = false;
    merged.sources.clear();
    return merged;
  }
  // Count-only regime: contributor sets are disjoint along a consistent
  // plan's aggregation tree, so the sum is the union size.
  merged.count = a.count + b.count;
  merged.xor_fold = a.xor_fold ^ b.xor_fold;
  merged.exact_known = false;
  return merged;
}

void AppendSourceSummary(const SourceSummary& summary, ByteWriter& writer) {
  writer.WriteVarint((static_cast<uint64_t>(summary.count) << 1) |
                     (summary.exact_known ? 1u : 0u));
  writer.WriteVarint(summary.xor_fold);
  if (summary.exact_known) {
    for (NodeId source : summary.sources) {
      writer.WriteVarint(static_cast<uint64_t>(source));
    }
  }
}

SourceSummary ReadSourceSummary(ByteReader& reader) {
  SourceSummary summary;
  uint64_t header = reader.ReadVarint();
  summary.exact_known = (header & 1u) != 0;
  summary.count = static_cast<uint32_t>(header >> 1);
  summary.xor_fold = static_cast<uint32_t>(reader.ReadVarint());
  if (summary.exact_known) {
    summary.sources.reserve(summary.count);
    for (uint32_t i = 0; i < summary.count; ++i) {
      summary.sources.push_back(static_cast<NodeId>(reader.ReadVarint()));
    }
  }
  return summary;
}

namespace {

// Leading tag byte of each control message kind.
constexpr uint8_t kSuspicionReportTag = 0xA1;
constexpr uint8_t kEpochBumpTag = 0xA2;
constexpr uint8_t kInstallAckTag = 0xA3;

// Bounds-checked reads for Try-decoders (ByteReader CHECK-fails, which is
// right for locally produced plan images but not for network input).
struct SafeReader {
  const std::vector<uint8_t>& bytes;
  size_t cursor = 0;
  bool ok = true;

  uint8_t ReadU8() {
    if (cursor >= bytes.size()) {
      ok = false;
      return 0;
    }
    return bytes[cursor++];
  }
  uint64_t ReadVarint() {
    uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (cursor >= bytes.size() || shift > 63) {
        ok = false;
        return 0;
      }
      uint8_t byte = bytes[cursor++];
      value |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
  }
  uint32_t ReadU32() {
    if (cursor + 4 > bytes.size()) {
      ok = false;
      return 0;
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(bytes[cursor++]) << (8 * i);
    }
    return value;
  }
  bool AtEnd() const { return cursor == bytes.size(); }
};

}  // namespace

std::vector<uint8_t> EncodeSuspicionReport(const SuspicionReport& report) {
  ByteWriter writer;
  writer.WriteU8(kSuspicionReportTag);
  writer.WriteVarint(static_cast<uint64_t>(report.monitor));
  writer.WriteVarint(report.entries.size());
  for (const auto& [neighbor, round] : report.entries) {
    writer.WriteVarint(static_cast<uint64_t>(neighbor));
    writer.WriteVarint(static_cast<uint64_t>(round));
  }
  writer.WriteVarint(report.retractions.size());
  for (const auto& [neighbor, round] : report.retractions) {
    writer.WriteVarint(static_cast<uint64_t>(neighbor));
    writer.WriteVarint(static_cast<uint64_t>(round));
  }
  return writer.bytes();
}

std::optional<SuspicionReport> TryDecodeSuspicionReport(
    const std::vector<uint8_t>& bytes) {
  SafeReader reader{bytes};
  if (reader.ReadU8() != kSuspicionReportTag) return std::nullopt;
  SuspicionReport report;
  report.monitor = static_cast<NodeId>(reader.ReadVarint());
  uint64_t count = reader.ReadVarint();
  if (!reader.ok || count > bytes.size()) return std::nullopt;
  for (uint64_t i = 0; i < count; ++i) {
    NodeId neighbor = static_cast<NodeId>(reader.ReadVarint());
    int round = static_cast<int>(reader.ReadVarint());
    report.entries.emplace_back(neighbor, round);
  }
  uint64_t retraction_count = reader.ReadVarint();
  if (!reader.ok || retraction_count > bytes.size()) return std::nullopt;
  for (uint64_t i = 0; i < retraction_count; ++i) {
    NodeId neighbor = static_cast<NodeId>(reader.ReadVarint());
    int round = static_cast<int>(reader.ReadVarint());
    report.retractions.emplace_back(neighbor, round);
  }
  if (!reader.ok || !reader.AtEnd()) return std::nullopt;
  return report;
}

std::vector<uint8_t> EncodeEpochBump(uint32_t epoch) {
  ByteWriter writer;
  writer.WriteU8(kEpochBumpTag);
  writer.WriteU32(epoch);  // Fixed width: the bump is always 5 bytes.
  M2M_CHECK_EQ(writer.size(), static_cast<size_t>(kEpochBumpPayloadBytes));
  return writer.bytes();
}

std::optional<uint32_t> TryDecodeEpochBump(const std::vector<uint8_t>& bytes) {
  SafeReader reader{bytes};
  if (reader.ReadU8() != kEpochBumpTag) return std::nullopt;
  uint32_t epoch = reader.ReadU32();
  if (!reader.ok || !reader.AtEnd()) return std::nullopt;
  return epoch;
}

std::vector<uint8_t> EncodeInstallAck(NodeId node, uint32_t epoch) {
  ByteWriter writer;
  writer.WriteU8(kInstallAckTag);
  writer.WriteVarint(static_cast<uint64_t>(node));
  writer.WriteVarint(epoch);
  return writer.bytes();
}

std::optional<std::pair<NodeId, uint32_t>> TryDecodeInstallAck(
    const std::vector<uint8_t>& bytes) {
  SafeReader reader{bytes};
  if (reader.ReadU8() != kInstallAckTag) return std::nullopt;
  NodeId node = static_cast<NodeId>(reader.ReadVarint());
  uint64_t epoch = reader.ReadVarint();
  if (!reader.ok || !reader.AtEnd() || epoch > 0xffffffffull) {
    return std::nullopt;
  }
  return std::make_pair(node, static_cast<uint32_t>(epoch));
}

}  // namespace m2m::wire
