#include "runtime/channel.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace m2m {

namespace {

// Decision salts. Each per-(round, link, attempt) draw uses its own salt so
// the loss, duplication, corruption and delay coins are independent.
constexpr uint64_t kSaltBurstInit = 0xb1a5'0001;
constexpr uint64_t kSaltBurstStep = 0xb1a5'0002;
constexpr uint64_t kSaltLoss = 0xb1a5'0003;
constexpr uint64_t kSaltDuplicate = 0xb1a5'0004;
constexpr uint64_t kSaltCorrupt = 0xb1a5'0005;
constexpr uint64_t kSaltDelay = 0xb1a5'0006;

// Attempts within one block share a Gilbert–Elliott walk; blocks are
// independently reseeded from the stationary distribution. This bounds the
// per-query walk to the block size while keeping every decision a pure
// function of (seed, round, link, attempt).
constexpr int kBurstBlockBits = 6;

uint64_t Mix(uint64_t seed, uint64_t salt, int round, NodeId from, NodeId to,
             uint64_t attempt) {
  uint64_t h = SplitMix64(seed ^ SplitMix64(salt));
  h = SplitMix64(h ^ (static_cast<uint64_t>(round) << 42) ^
                 (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 21) ^
                 static_cast<uint64_t>(static_cast<uint32_t>(to)));
  return SplitMix64(h ^ attempt);
}

double UniformOf(uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

void CheckProbability(double p, const char* name) {
  M2M_CHECK(p >= 0.0 && p <= 1.0) << name << " outside [0, 1]";
}

}  // namespace

ChannelModel::ChannelModel(const ChannelOptions& options)
    : options_(options) {
  CheckProbability(options_.good_loss, "good_loss");
  CheckProbability(options_.bad_loss, "bad_loss");
  CheckProbability(options_.p_enter_bad, "p_enter_bad");
  CheckProbability(options_.p_exit_bad, "p_exit_bad");
  CheckProbability(options_.reverse_extra_loss, "reverse_extra_loss");
  CheckProbability(options_.duplicate_probability, "duplicate_probability");
  CheckProbability(options_.corrupt_probability, "corrupt_probability");
  CheckProbability(options_.delay_probability, "delay_probability");
  M2M_CHECK_GE(options_.max_delay_ticks, 0);
  if (options_.p_enter_bad > 0.0) {
    M2M_CHECK_GT(options_.p_exit_bad, 0.0)
        << "a burst the chain can enter must also be exitable";
  }
}

bool ChannelModel::InBurst(int round, NodeId from, NodeId to,
                           int attempt) const {
  if (options_.p_enter_bad <= 0.0) return false;
  const double p_bad =
      options_.p_enter_bad / (options_.p_enter_bad + options_.p_exit_bad);
  const uint64_t block = static_cast<uint64_t>(attempt) >> kBurstBlockBits;
  const int block_start = static_cast<int>(block << kBurstBlockBits);
  bool bad = UniformOf(Mix(options_.seed, kSaltBurstInit, round, from, to,
                           block)) < p_bad;
  for (int t = block_start + 1; t <= attempt; ++t) {
    const double u = UniformOf(Mix(options_.seed, kSaltBurstStep, round,
                                   from, to, static_cast<uint64_t>(t)));
    if (bad) {
      if (u < options_.p_exit_bad) bad = false;
    } else {
      if (u < options_.p_enter_bad) bad = true;
    }
  }
  return bad;
}

bool ChannelModel::AttemptDelivers(int round, NodeId from, NodeId to,
                                   int attempt) const {
  const bool burst = InBurst(round, from, to, attempt);
  if (burst && metrics_ != nullptr &&
      !InBurst(round, from, to, attempt - 1)) {
    // Observational only: never feeds back into a delivery decision, so a
    // run with metrics attached is byte-identical to one without.
    metrics_->Add(burst_transitions_, 1);
  }
  double loss = burst ? options_.bad_loss : options_.good_loss;
  if (from > to) {
    // Asymmetry convention: the higher-id -> lower-id direction is the
    // "reverse" one (acks mostly travel it on tree-shaped segments).
    loss = std::min(1.0, loss + options_.reverse_extra_loss);
  }
  if (loss <= 0.0) return true;
  return UniformOf(Mix(options_.seed, kSaltLoss, round, from, to,
                       static_cast<uint64_t>(attempt))) >= loss;
}

HopEffects ChannelModel::EffectsFor(int round, NodeId from, NodeId to,
                                    int attempt) const {
  HopEffects effects;
  const uint64_t a = static_cast<uint64_t>(attempt);
  if (options_.duplicate_probability > 0.0) {
    effects.duplicate =
        UniformOf(Mix(options_.seed, kSaltDuplicate, round, from, to, a)) <
        options_.duplicate_probability;
  }
  if (options_.corrupt_probability > 0.0) {
    const uint64_t h = Mix(options_.seed, kSaltCorrupt, round, from, to, a);
    if (UniformOf(h) < options_.corrupt_probability) {
      effects.corrupt = true;
      effects.corrupt_bit = static_cast<uint32_t>(h & 0xffffffffu);
    }
  }
  if (options_.max_delay_ticks > 0 && options_.delay_probability > 0.0) {
    const uint64_t h = Mix(options_.seed, kSaltDelay, round, from, to, a);
    if (UniformOf(h) < options_.delay_probability) {
      effects.delay_ticks =
          1 + static_cast<int>(h % static_cast<uint64_t>(
                                       options_.max_delay_ticks));
    }
  }
  return effects;
}

LossyLinkModel ChannelModel::Bind(
    int round, std::function<bool(NodeId)> node_alive) const {
  LossyLinkModel links;
  links.attempt_delivers = [this, round](NodeId from, NodeId to,
                                         int attempt) {
    return AttemptDelivers(round, from, to, attempt);
  };
  links.node_alive = std::move(node_alive);
  const bool has_effects = options_.duplicate_probability > 0.0 ||
                           options_.corrupt_probability > 0.0 ||
                           (options_.max_delay_ticks > 0 &&
                            options_.delay_probability > 0.0);
  if (has_effects) {
    links.hop_effects = [this, round](NodeId from, NodeId to, int attempt) {
      return EffectsFor(round, from, to, attempt);
    };
    links.max_delay_ticks = options_.max_delay_ticks;
  }
  return links;
}

void ChannelModel::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  burst_transitions_ = metrics_->Counter("chan.burst_transitions");
}

}  // namespace m2m
