#ifndef M2M_RUNTIME_WIRE_FUNCTIONS_H_
#define M2M_RUNTIME_WIRE_FUNCTIONS_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "agg/partial_record.h"
#include "common/bytes.h"
#include "common/crc32.h"
#include "common/ids.h"

namespace m2m::wire {

/// Operational forms of the aggregation functions, keyed by the kind byte
/// serialized in the node-state images (static_cast of AggregateKind).
/// These are what an installed mote executes; differential tests pin them
/// to the AggregateFunction implementations.

/// Number of meaningful PartialRecord fields for the kind (determines the
/// packet encoding of a partial unit).
int FieldCountOf(uint8_t kind);

/// w_{d,s}: raw reading -> partial record, given the serialized weight and
/// kind parameter.
PartialRecord PreAggregate(uint8_t kind, float weight, float param,
                           NodeId source, double value);

/// m_d: merge two partial records of this kind.
PartialRecord Merge(uint8_t kind, const PartialRecord& a,
                    const PartialRecord& b);

/// e_d: final value from a fully merged record.
double Evaluate(uint8_t kind, const PartialRecord& record);

// --- Link-layer framing (CRC32) ---
//
// Every frame that crosses a lossy link carries a 4-byte little-endian
// CRC32 trailer over its payload. A corrupted frame is *detected and
// counted* at the receiver — never decoded — so bit-flips on the channel
// can only cost a retransmission, not a wrong merge. The hostile-input
// Try-decoders (TryDecodeNodeState etc.) remain the second line of
// defense for frames an adversary crafts with a valid CRC. The primitive
// lives in common/crc32.h so the plan serializer (which the runtime links
// against) can frame dissemination images without a dependency cycle.

using ::m2m::Crc32;
using ::m2m::kCrc32FrameTrailerBytes;
using ::m2m::TryOpenCrc32Frame;

/// payload -> payload || crc32(payload), little-endian trailer.
inline std::vector<uint8_t> FrameWithCrc32(
    const std::vector<uint8_t>& payload) {
  return Crc32Frame(payload);
}

// --- Coverage summaries (contributing-source accounting) ---

/// Largest contributing-source set tracked exactly; beyond it the summary
/// degrades to (count, xor-fold) only. 16 keeps the wire cost of a partial
/// unit bounded while covering every workload in the test deployments.
inline constexpr int kCoverageExactThreshold = 16;

/// Compact summary of which sources contributed to a PartialRecord. Rides
/// with every partial unit so a destination can report per-round coverage
/// (covered / expected) and a degraded/complete verdict even when loss
/// starves some accumulators.
struct SourceSummary {
  /// Number of distinct contributing sources.
  uint32_t count = 0;
  /// XOR of (source id + 1) over contributors — order-independent
  /// fingerprint that survives the count-only regime (+1 so source 0 is
  /// not absorbed into the empty fold).
  uint32_t xor_fold = 0;
  /// When true, `sources` lists the exact contributor set (sorted).
  bool exact_known = true;
  std::vector<NodeId> sources;

  friend bool operator==(const SourceSummary&, const SourceSummary&) = default;
};

/// Summary of the single contributor `source` (a pre-aggregated reading).
SourceSummary SingleSource(NodeId source);

/// Union of two summaries. Contributor sets along an aggregation tree are
/// disjoint (plan consistency: one pre-aggregation site per (source,
/// destination)), but the union is computed set-wise so a duplicate
/// contributor can never double-count. Collapses to (count, xor-fold)
/// once the union exceeds kCoverageExactThreshold or either side is
/// already inexact.
SourceSummary MergeSummaries(const SourceSummary& a, const SourceSummary& b);

/// Wire format: varint((count << 1) | exact_known), varint(xor_fold),
/// then `count` varint source ids (sorted) when exact_known.
void AppendSourceSummary(const SourceSummary& summary, ByteWriter& writer);
SourceSummary ReadSourceSummary(ByteReader& reader);

// --- Control-plane wire formats (self-healing protocol) ---
//
// These messages ride the same lossy links as data traffic; the encodings
// give the control plane byte-accurate payload sizes for energy/overhead
// accounting. All Try-decoders return nullopt on malformed input instead of
// CHECK-failing (control packets cross a lossy network).

/// A monitor's accumulated suspicions, shipped to the base station.
struct SuspicionReport {
  NodeId monitor = kInvalidNode;
  /// (suspected neighbor, round the suspicion was raised), sorted by
  /// neighbor id.
  std::vector<std::pair<NodeId, int>> entries;
  /// (readmitted neighbor, round probation completed), sorted by neighbor
  /// id. A retraction tells the base a previously reported link healed and
  /// survived probation (detector hysteresis), so the ledger can readmit.
  std::vector<std::pair<NodeId, int>> retractions;

  friend bool operator==(const SuspicionReport&, const SuspicionReport&) =
      default;
};

std::vector<uint8_t> EncodeSuspicionReport(const SuspicionReport& report);
std::optional<SuspicionReport> TryDecodeSuspicionReport(
    const std::vector<uint8_t>& bytes);

/// Epoch-bump command: "re-stamp your installed tables with this epoch".
/// Sent to nodes whose table contents are unchanged by a re-plan, so the
/// full image need not travel (Corollary 1 keeps this the common case).
/// Always exactly kEpochBumpPayloadBytes (plan/dissemination.h) long.
std::vector<uint8_t> EncodeEpochBump(uint32_t epoch);
std::optional<uint32_t> TryDecodeEpochBump(const std::vector<uint8_t>& bytes);

/// Install acknowledgment: `node` confirms it runs plan epoch `epoch`.
std::vector<uint8_t> EncodeInstallAck(NodeId node, uint32_t epoch);
std::optional<std::pair<NodeId, uint32_t>> TryDecodeInstallAck(
    const std::vector<uint8_t>& bytes);

}  // namespace m2m::wire

#endif  // M2M_RUNTIME_WIRE_FUNCTIONS_H_
