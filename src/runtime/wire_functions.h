#ifndef M2M_RUNTIME_WIRE_FUNCTIONS_H_
#define M2M_RUNTIME_WIRE_FUNCTIONS_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "agg/partial_record.h"
#include "common/ids.h"

namespace m2m::wire {

/// Operational forms of the aggregation functions, keyed by the kind byte
/// serialized in the node-state images (static_cast of AggregateKind).
/// These are what an installed mote executes; differential tests pin them
/// to the AggregateFunction implementations.

/// Number of meaningful PartialRecord fields for the kind (determines the
/// packet encoding of a partial unit).
int FieldCountOf(uint8_t kind);

/// w_{d,s}: raw reading -> partial record, given the serialized weight and
/// kind parameter.
PartialRecord PreAggregate(uint8_t kind, float weight, float param,
                           NodeId source, double value);

/// m_d: merge two partial records of this kind.
PartialRecord Merge(uint8_t kind, const PartialRecord& a,
                    const PartialRecord& b);

/// e_d: final value from a fully merged record.
double Evaluate(uint8_t kind, const PartialRecord& record);

// --- Control-plane wire formats (self-healing protocol) ---
//
// These messages ride the same lossy links as data traffic; the encodings
// give the control plane byte-accurate payload sizes for energy/overhead
// accounting. All Try-decoders return nullopt on malformed input instead of
// CHECK-failing (control packets cross a lossy network).

/// A monitor's accumulated suspicions, shipped to the base station.
struct SuspicionReport {
  NodeId monitor = kInvalidNode;
  /// (suspected neighbor, round the suspicion was raised), sorted by
  /// neighbor id.
  std::vector<std::pair<NodeId, int>> entries;

  friend bool operator==(const SuspicionReport&, const SuspicionReport&) =
      default;
};

std::vector<uint8_t> EncodeSuspicionReport(const SuspicionReport& report);
std::optional<SuspicionReport> TryDecodeSuspicionReport(
    const std::vector<uint8_t>& bytes);

/// Epoch-bump command: "re-stamp your installed tables with this epoch".
/// Sent to nodes whose table contents are unchanged by a re-plan, so the
/// full image need not travel (Corollary 1 keeps this the common case).
/// Always exactly kEpochBumpPayloadBytes (plan/dissemination.h) long.
std::vector<uint8_t> EncodeEpochBump(uint32_t epoch);
std::optional<uint32_t> TryDecodeEpochBump(const std::vector<uint8_t>& bytes);

/// Install acknowledgment: `node` confirms it runs plan epoch `epoch`.
std::vector<uint8_t> EncodeInstallAck(NodeId node, uint32_t epoch);
std::optional<std::pair<NodeId, uint32_t>> TryDecodeInstallAck(
    const std::vector<uint8_t>& bytes);

}  // namespace m2m::wire

#endif  // M2M_RUNTIME_WIRE_FUNCTIONS_H_
