#ifndef M2M_RUNTIME_WIRE_FUNCTIONS_H_
#define M2M_RUNTIME_WIRE_FUNCTIONS_H_

#include <cstdint>

#include "agg/partial_record.h"
#include "common/ids.h"

namespace m2m::wire {

/// Operational forms of the aggregation functions, keyed by the kind byte
/// serialized in the node-state images (static_cast of AggregateKind).
/// These are what an installed mote executes; differential tests pin them
/// to the AggregateFunction implementations.

/// Number of meaningful PartialRecord fields for the kind (determines the
/// packet encoding of a partial unit).
int FieldCountOf(uint8_t kind);

/// w_{d,s}: raw reading -> partial record, given the serialized weight and
/// kind parameter.
PartialRecord PreAggregate(uint8_t kind, float weight, float param,
                           NodeId source, double value);

/// m_d: merge two partial records of this kind.
PartialRecord Merge(uint8_t kind, const PartialRecord& a,
                    const PartialRecord& b);

/// e_d: final value from a fully merged record.
double Evaluate(uint8_t kind, const PartialRecord& record);

}  // namespace m2m::wire

#endif  // M2M_RUNTIME_WIRE_FUNCTIONS_H_
