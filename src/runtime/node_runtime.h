#ifndef M2M_RUNTIME_NODE_RUNTIME_H_
#define M2M_RUNTIME_NODE_RUNTIME_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "agg/partial_record.h"
#include "common/ids.h"
#include "plan/serialization.h"
#include "runtime/wire_functions.h"

namespace m2m {

/// The per-mote implementation of paper section 3's node behavior: a state
/// machine constructed purely from a node's serialized table image (the
/// bytes dissemination ships), exchanging *encoded packets* with neighbors.
/// No global plan, forest, or function objects are visible to a node — only
/// its own four tables with their serialized function metadata.
///
/// Round protocol:
///   1. StartRound(reading): reset round state, inject the local reading.
///   2. OnReceive(packet): decode incoming units; raw values are forwarded
///      and/or pre-aggregated per the tables; partial records merge into
///      the node's accumulators.
///   3. DrainReadyPackets(): outgoing messages whose units are all ready,
///      encoded for the radio. Call after StartRound and after every
///      OnReceive.
///   4. FinalValue(): for destination nodes, the evaluated aggregate once
///      every expected contribution has arrived.
class NodeRuntime {
 public:
  /// `image` is the wire image produced by EncodeNodeState.
  NodeRuntime(NodeId id, const std::vector<uint8_t>& image);

  NodeRuntime(const NodeRuntime&) = default;
  NodeRuntime& operator=(const NodeRuntime&) = default;

  NodeId id() const { return id_; }
  bool is_destination() const { return state_.state.is_destination; }
  const DecodedNodeState& decoded() const { return state_; }
  /// Epoch of the installed plan image (stamped by EncodeNodeState).
  uint32_t plan_epoch() const { return state_.plan_epoch; }

  /// Installs a new plan image mid-deployment (epoch transition, paper
  /// section 3 failure handling). All in-progress round state — including
  /// partially merged accumulators of the previous epoch — is dropped: a
  /// partial record is only attributable to the plan that produced it, so
  /// carrying it into the new epoch could silently merge records from
  /// different plans. Re-installing the currently installed epoch is a
  /// no-op (idempotent against duplicated dissemination packets) that
  /// returns true; an image from an *older* epoch is rejected (returns
  /// false) — when two plan lineages meet after a partition heals, the
  /// higher epoch wins deterministically and the stale side must re-sync.
  bool InstallImage(const std::vector<uint8_t>& image);

  void StartRound(double reading);

  /// Processes one incoming packet (payload produced by another node's
  /// DrainReadyPackets). Every call is assumed to be a fresh packet; use
  /// OnReceiveOnce when the link layer may deliver duplicates.
  void OnReceive(const std::vector<uint8_t>& packet);

  /// Outcome of a duplicate-suppressing receive.
  enum class ReceiveOutcome {
    kFresh,          ///< New packet, decoded and merged.
    kDuplicate,      ///< Retransmission of an already-seen packet; ignored.
    kEpochMismatch,  ///< Sender runs a different plan epoch; dropped whole.
  };

  /// Duplicate-suppressing, epoch-gated receive for lossy links: a
  /// retransmission of a (sender, sender-local message id) pair already
  /// seen this round is ignored (the sender repeats a message when its ack
  /// is lost, so the receiver must treat packets idempotently), and a
  /// packet stamped with a plan epoch other than this node's is dropped
  /// without decoding — during a plan transition, units from the old and
  /// the new plan must never merge into one aggregate. `tick` timestamps
  /// the dedup entry so EvictSeenPacketsBefore can bound the table.
  ReceiveOutcome OnReceiveOnce(NodeId sender, int sender_message_id,
                               uint32_t sender_epoch,
                               const std::vector<uint8_t>& packet,
                               int tick);

  /// Back-compat shim: same-epoch receive at tick 0. Returns true iff the
  /// packet was fresh and processed.
  bool OnReceiveOnce(NodeId sender, int sender_message_id,
                     const std::vector<uint8_t>& packet);

  /// Drops dedup entries last refreshed before `tick`. Safe once `tick` is
  /// beyond the retry horizon (the latest tick at which a sender could
  /// still retransmit the message), which keeps the table at O(messages in
  /// flight) instead of O(messages ever received) in long lossy runs.
  void EvictSeenPacketsBefore(int tick);

  /// Current dedup-table size (regression guard for the eviction bound).
  size_t seen_packet_count() const { return seen_packets_.size(); }

  struct OutgoingPacket {
    int local_message_id = -1;
    NodeId recipient = kInvalidNode;
    std::vector<uint8_t> payload;
    int unit_count = 0;
  };

  /// Messages that became complete since the last drain.
  std::vector<OutgoingPacket> DrainReadyPackets();

  /// The destination's aggregate, once complete.
  std::optional<double> FinalValue() const;

  /// Diagnostics: local message ids that are not yet complete, and the
  /// received/expected contribution counts per destination accumulator.
  std::vector<int> IncompleteMessages() const;
  struct AccumulatorStatus {
    NodeId destination = kInvalidNode;
    int received = 0;
    int expected = 0;
  };
  std::vector<AccumulatorStatus> AccumulatorStatuses() const;

  /// Coverage accounting for a destination node: the contributing-source
  /// summary accumulated so far for this node's own aggregate, plus a
  /// best-effort ("degraded") evaluation of the partially merged record —
  /// what the destination would report if the round were cut off now.
  /// nullopt when this node is not a destination.
  struct CoverageReport {
    wire::SourceSummary summary;
    /// Evaluation of the partial merge; nullopt when nothing contributed
    /// yet (or the kind cannot be evaluated on an empty record).
    std::optional<double> degraded_value;
    int received = 0;
    int expected = 0;
  };
  std::optional<CoverageReport> DestinationCoverage() const;

 private:
  struct Accumulator {
    PartialRecord record;
    int received = 0;
    int expected = 0;
    int local_message = -1;  // -1: consumed at this node.
    uint8_t kind = 0;
    bool has_record = false;
    /// Which sources the merged record accounts for (coverage accounting;
    /// rides with every partial unit on the wire).
    wire::SourceSummary summary;
  };

  void AcceptRawValue(NodeId source, double value);
  void AcceptPartialRecord(NodeId destination, const PartialRecord& record);
  void MergeSummaryInto(NodeId destination,
                        const wire::SourceSummary& summary);
  void MarkUnitReady(int local_message);
  void CompleteAccumulator(NodeId destination, Accumulator& accumulator);

  NodeId id_;
  DecodedNodeState state_;

  // --- Round state ---
  bool round_active_ = false;
  std::map<NodeId, double> raw_values_;
  std::map<NodeId, Accumulator> accumulators_;
  std::map<int, int> ready_units_;  // local message -> ready unit count.
  std::set<int> complete_messages_;
  std::vector<int> pending_emits_;
  std::optional<double> final_value_;
  /// (sender, sender-local message id) -> tick last received. Entries are
  /// evicted once the sender's retry horizon has passed (EvictSeenPackets-
  /// Before), bounding the table in long-running lossy simulations.
  std::map<uint64_t, int> seen_packets_;
};

}  // namespace m2m

#endif  // M2M_RUNTIME_NODE_RUNTIME_H_
