#ifndef M2M_RUNTIME_NETWORK_H_
#define M2M_RUNTIME_NETWORK_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "agg/aggregate_function.h"
#include "plan/node_tables.h"
#include "runtime/node_runtime.h"
#include "sim/energy_model.h"

namespace m2m {

/// Drives a fleet of NodeRuntimes through one round: installs the wire
/// images a compiled plan serializes to, injects readings, and shuttles the
/// encoded packets between nodes until the network quiesces. The energy and
/// byte accounting uses the *actual encoded packet sizes* (varints, tags,
/// float fields), making this the byte-accurate counterpart of the analytic
/// executor.
class RuntimeNetwork {
 public:
  RuntimeNetwork(const CompiledPlan& compiled, const FunctionSet& functions);

  RuntimeNetwork(const RuntimeNetwork&) = default;
  RuntimeNetwork& operator=(const RuntimeNetwork&) = default;

  struct Result {
    std::unordered_map<NodeId, double> destination_values;
    int64_t packets = 0;        ///< Milestone-level packets exchanged.
    int64_t payload_bytes = 0;  ///< Encoded payload bytes (no headers).
    double energy_mj = 0.0;     ///< Hop-accurate TX+RX on encoded sizes.
    int delivery_passes = 0;    ///< Iterations until quiescence.
  };

  /// Runs one round; CHECK-fails if any destination fails to complete.
  Result RunRound(const std::vector<double>& readings,
                  const EnergyModel& energy = {});

  /// Total bytes of all installed node images (the dissemination payload).
  int64_t installed_image_bytes() const { return installed_image_bytes_; }

 private:
  std::vector<NodeRuntime> nodes_;
  /// Physical hop count per (node, local message id).
  std::vector<std::vector<int>> message_hops_;
  int64_t installed_image_bytes_ = 0;
};

}  // namespace m2m

#endif  // M2M_RUNTIME_NETWORK_H_
