#ifndef M2M_RUNTIME_NETWORK_H_
#define M2M_RUNTIME_NETWORK_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "agg/aggregate_function.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/node_tables.h"
#include "runtime/node_runtime.h"
#include "sim/energy_model.h"

namespace m2m {

/// Bounded-retransmission policy for lossy rounds: a sender retries an
/// unacked message up to `max_attempts` total attempts, waiting
/// `ack_timeout_ticks * backoff_factor^(attempt-1)` ticks between attempts
/// (per-edge exponential backoff), clamped to `max_backoff_ticks`.
struct RetryPolicy {
  int max_attempts = 4;
  int ack_timeout_ticks = 2;
  int backoff_factor = 2;
  /// Upper clamp on one backoff wait. Without the clamp, the exponential
  /// overflows `int` around attempt 33 (e.g. max_attempts = 40), turning
  /// timeouts negative and scheduling retransmissions in the past.
  int64_t max_backoff_ticks = int64_t{1} << 16;

  /// Ticks a sender waits after unacked attempt `attempt` (1-based) before
  /// retransmitting. Computed in int64 and clamped, so it is positive and
  /// monotone non-decreasing for every `max_attempts`.
  int64_t BackoffWaitTicks(int attempt) const;

  /// Latest lag (in ticks) between a receiver first seeing a message and
  /// the sender's final possible retransmission arriving, plus one: the
  /// sum of all backoff waits. A dedup entry older than this can never see
  /// another duplicate, so it is safe to evict — this single derivation is
  /// what both the retransmission scheduler and the receiver dedup
  /// eviction use, keeping the two sides of the boundary consistent.
  int64_t RetryHorizonTicks() const;
};

/// Append-only log of runtime events, backed by the structured
/// obs::RoundTrace: the runtime appends typed records (send/recv/ack/drop/
/// giveup/suspect/control/replan), and `ToString()` renders them to the
/// exact byte-identical text the legacy string trace produced. Replaying
/// the same fault schedule must reproduce this byte for byte — the
/// determinism contract the differential fault tests assert.
///
/// `set_capacity(n)` (inherited) bounds memory to a ring of the most
/// recent n records for multi-thousand-round runs; the default is the
/// legacy unbounded mode.
struct EventTrace : obs::RoundTrace {
  using obs::RoundTrace::Append;
  /// Legacy free-form append (schedule descriptions, round summaries).
  void Append(std::string line) { Text(std::move(line)); }
};

/// Channel-induced side effects on one hop crossing beyond plain delivery
/// (all decided per directed link and attempt, like `attempt_delivers`).
struct HopEffects {
  /// Extra ticks the packet (or ack) spends on this hop before arriving.
  int delay_ticks = 0;
  /// Spontaneous duplication: the hop delivers a second copy.
  bool duplicate = false;
  /// Payload bit-corruption in transit. The receiver's CRC32 frame check
  /// rejects the packet (counted, never decoded) and no ack is sent.
  bool corrupt = false;
  /// Which bit to flip when `corrupt` (taken modulo the frame size).
  uint32_t corrupt_bit = 0;
};

/// Link-layer behavior for one lossy round. `attempt_delivers` decides each
/// one-hop transmission attempt (1-based attempt index, directed link); it
/// must be a pure function for reproducibility. A null `node_alive` means
/// every node is alive; a null `hop_effects` means a clean channel (no
/// delay, duplication, or corruption).
struct LossyLinkModel {
  std::function<bool(NodeId from, NodeId to, int attempt)> attempt_delivers;
  std::function<bool(NodeId node)> node_alive;
  /// Adversarial channel effects, also a pure function. Effects apply per
  /// hop; delays accumulate along a multi-hop segment but the *total*
  /// added delay of any one attempt (data or ack direction) is clamped to
  /// `max_delay_ticks`.
  std::function<HopEffects(NodeId from, NodeId to, int attempt)> hop_effects;
  /// Upper bound on the accumulated extra delay of one attempt. Must cover
  /// anything `hop_effects` returns: the receiver dedup-eviction horizon is
  /// extended by exactly this much, which is what keeps late duplicates of
  /// evicted entries impossible (see RetryPolicy::RetryHorizonTicks).
  int max_delay_ticks = 0;
};

/// Drives a fleet of NodeRuntimes through one round: installs the wire
/// images a compiled plan serializes to, injects readings, and shuttles the
/// encoded packets between nodes until the network quiesces. The energy and
/// byte accounting uses the *actual encoded packet sizes* (varints, tags,
/// float fields), making this the byte-accurate counterpart of the analytic
/// executor.
class RuntimeNetwork {
 public:
  RuntimeNetwork(const CompiledPlan& compiled, const FunctionSet& functions);

  RuntimeNetwork(const RuntimeNetwork&) = default;
  RuntimeNetwork& operator=(const RuntimeNetwork&) = default;

  struct Result {
    std::unordered_map<NodeId, double> destination_values;
    int64_t packets = 0;        ///< Milestone-level packets exchanged.
    int64_t payload_bytes = 0;  ///< Encoded payload bytes (no headers).
    double energy_mj = 0.0;     ///< Hop-accurate TX+RX on encoded sizes.
    int delivery_passes = 0;    ///< Iterations until quiescence.
  };

  /// Runs one round; CHECK-fails if any destination fails to complete.
  Result RunRound(const std::vector<double>& readings,
                  const EnergyModel& energy = {});

  /// Outcome of one round over lossy links with ack/retry recovery.
  struct LossyResult {
    /// Destinations whose aggregate completed (alive destinations only).
    std::unordered_map<NodeId, double> destination_values;
    /// Plan epoch each completed value was computed under. The epoch gate
    /// makes every value attributable to exactly one epoch even when the
    /// round ran with nodes on mixed plan generations.
    std::unordered_map<NodeId, uint32_t> destination_epochs;
    /// Alive destinations that never completed (some contribution was lost
    /// after all retries).
    std::vector<NodeId> incomplete_destinations;
    int64_t attempts = 0;         ///< Data transmission attempts.
    int64_t deliveries = 0;       ///< Delivered data packets (incl. dups).
    int64_t duplicates = 0;       ///< Deliveries suppressed as retransmits.
    int64_t retransmissions = 0;  ///< Attempts beyond each message's first.
    int64_t acks_lost = 0;        ///< Delivered packets whose ack dropped.
    int64_t messages_abandoned = 0;  ///< Never delivered within the budget.
    /// Delivered packets dropped whole by the receiver's epoch gate (the
    /// sender ran a different plan generation; acked so retries stop).
    int64_t epoch_rejected = 0;
    int64_t payload_bytes = 0;       ///< Payload bytes of delivered copies.
    double energy_mj = 0.0;
    int final_tick = 0;
    /// Directed physical hops (from, to) over which `to` heard at least one
    /// transmission this round (data hops, ack hops, final deliveries).
    /// This is the piggybacked-heartbeat evidence the failure detector
    /// consumes: a neighbor heard this round is certainly alive.
    std::set<std::pair<NodeId, NodeId>> heard;

    // --- Adversarial-channel accounting ---
    /// Frames whose CRC32 check failed at the receiver (bit-corruption in
    /// transit). Rejected before any decoding; the sender retries.
    int64_t corrupt_frames = 0;
    /// Channel-duplicated deliveries (spontaneous copies, not retries).
    int64_t spontaneous_duplicates = 0;
    /// Arrivals that overtook a later attempt of the same message (delayed
    /// copy landing after a newer one already arrived).
    int64_t reordered_deliveries = 0;

    // --- Coverage accounting ---
    /// Per-destination verdict on which sources this round's aggregate
    /// actually accounts for (suppression-unaware: the raw runtime counts
    /// only contributions that arrived; the executor layers suppression
    /// semantics on top).
    struct DestinationCoverage {
      int covered = 0;   ///< Distinct sources the merged record accounts for.
      int expected = 0;  ///< Sources the installed plan routes to this
                         ///< destination (union over alive same-epoch
                         ///< pre-aggregation sites).
      double coverage = 1.0;  ///< covered / max(expected, 1), in [0, 1].
      bool complete = false;  ///< covered == expected (no loss visible).
      bool exact_known = true;  ///< `sources` lists the exact set.
      uint32_t xor_fold = 0;    ///< XOR of (source id + 1) fingerprint.
      std::vector<NodeId> sources;
    };
    /// Keyed by alive destination (complete and incomplete alike).
    std::unordered_map<NodeId, DestinationCoverage> destination_coverage;
    /// Best-effort evaluation for incomplete destinations: the value of the
    /// partially merged record (what a degraded readout would report).
    /// Absent when nothing contributed.
    std::unordered_map<NodeId, double> degraded_values;

    // --- Battery accounting ---
    /// Per-node radio energy (mJ), indexed by node id — populated only when
    /// `set_track_node_energy(true)` was called, else empty. Attribution:
    /// each crossed data hop pays TX at its transmitter and RX at its
    /// receiver; a failed or dead-recipient transmit burns TX at the
    /// stalling node; ack hops pay header-only TX/RX the same way. The sum
    /// over nodes equals `energy_mj` up to floating-point grouping (the
    /// total keeps its legacy term order untouched — byte-identity).
    std::vector<double> node_energy_mj;
  };

  /// Runs one round under `links` with stop-and-wait ack/retry per message
  /// (paper section 3 failure handling: transient losses are absorbed by
  /// the communication layer; only persistent changes require re-planning).
  /// Time advances in ticks: a transmission takes one tick, an unacked
  /// message retransmits after the policy's backoff. Dead nodes neither
  /// start the round nor receive. Incomplete destinations are reported, not
  /// CHECK-failed. Every event is appended to `trace` when non-null.
  LossyResult RunRoundLossy(const std::vector<double>& readings,
                            const LossyLinkModel& links,
                            const RetryPolicy& retry = {},
                            const EnergyModel& energy = {},
                            EventTrace* trace = nullptr);

  /// Attaches a metrics registry: subsequent rounds record per-node and
  /// per-edge counters (tx/rx packets and bytes, retries, backoff waits,
  /// acks, dedup hits, epoch-gate drops) plus per-round histograms.
  /// Pass nullptr to detach. The registry must outlive the network.
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Enables per-node energy attribution in RunRoundLossy results (the
  /// battery ledger's input). Off (default) leaves
  /// LossyResult::node_energy_mj empty and the round byte-identical to the
  /// legacy path: the per-node terms are recorded alongside the existing
  /// total-energy terms, never replacing them.
  void set_track_node_energy(bool track) { track_node_energy_ = track; }
  bool track_node_energy() const { return track_node_energy_; }

  /// Total bytes of all installed node images (the dissemination payload).
  int64_t installed_image_bytes() const { return installed_image_bytes_; }

  /// Installs a new plan image at one node mid-deployment (epoch
  /// transition). `segments` are the physical routes of the node's outgoing
  /// messages under the new plan, indexed by node-local message id — the
  /// communication-layer half of the state the image's tables reference.
  /// Idempotent for the already-installed epoch. Returns false (and leaves
  /// the node untouched) when the image's epoch is older than the node's
  /// current one: higher epoch wins when plan lineages reconcile.
  bool InstallNodeImage(NodeId node, const std::vector<uint8_t>& image,
                        std::vector<std::vector<NodeId>> segments);

  /// Plan epoch currently installed at `node`.
  uint32_t plan_epoch(NodeId node) const;

  const NodeRuntime& node_runtime(NodeId node) const;

  int node_count() const { return static_cast<int>(nodes_.size()); }

  /// Mutable node access for the event-driven engine (src/event), which
  /// drives this same fleet through event handlers instead of the round
  /// barrier. Installed images, epochs and round state stay shared between
  /// the two execution models.
  NodeRuntime& mutable_node_runtime(NodeId node);

  /// Physical segments (tail..head inclusive) of `node`'s outgoing
  /// messages, indexed by node-local message id.
  const std::vector<std::vector<NodeId>>& node_message_segments(
      NodeId node) const;

 private:
  /// Pre-resolved metric handles, registered once in set_metrics so the
  /// per-packet hot path is handle-indexed adds only.
  struct MetricHandles {
    obs::MetricHandle tx_attempts;
    obs::MetricHandle tx_bytes;
    obs::MetricHandle rx_packets;
    obs::MetricHandle rx_bytes;
    obs::MetricHandle hop_transmissions;
    obs::MetricHandle retransmissions;
    obs::MetricHandle backoff_wait_ticks;
    obs::MetricHandle acks_delivered;
    obs::MetricHandle acks_lost;
    obs::MetricHandle dedup_hits;
    obs::MetricHandle epoch_gate_drops;
    obs::MetricHandle messages_abandoned;
    obs::MetricHandle tx_packets;
    obs::MetricHandle delivery_passes;
    obs::MetricHandle attempts_per_message;
    obs::MetricHandle round_ticks;
    obs::MetricHandle installs;
    obs::MetricHandle install_bytes;
    obs::MetricHandle chan_corrupt_frames;
    obs::MetricHandle chan_duplicated;
    obs::MetricHandle chan_reordered;
    obs::MetricHandle coverage_per_destination;
    obs::MetricHandle coverage_degraded_rounds;
  };

  std::vector<NodeRuntime> nodes_;
  /// Physical hop count per (node, local message id).
  std::vector<std::vector<int>> message_hops_;
  /// Physical segment (tail..head inclusive) per (node, local message id).
  std::vector<std::vector<std::vector<NodeId>>> message_segments_;
  int64_t installed_image_bytes_ = 0;
  bool track_node_energy_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
  MetricHandles handles_;
};

}  // namespace m2m

#endif  // M2M_RUNTIME_NETWORK_H_
