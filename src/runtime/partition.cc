#include "runtime/partition.h"

#include <algorithm>
#include <queue>
#include <set>

namespace m2m {

std::vector<NodeId> ComponentMap::Members(int c) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < static_cast<NodeId>(component.size()); ++n) {
    if (component[static_cast<size_t>(n)] == c) out.push_back(n);
  }
  return out;
}

std::vector<int> ComponentMap::Sizes() const {
  std::vector<int> sizes(static_cast<size_t>(component_count), 0);
  for (int c : component) {
    if (c >= 0) ++sizes[static_cast<size_t>(c)];
  }
  return sizes;
}

ComponentMap BuildComponents(const Topology& topology) {
  return BuildComponents(topology, {}, {});
}

ComponentMap BuildComponents(
    const Topology& topology,
    const std::vector<std::pair<NodeId, NodeId>>& down_links,
    const std::vector<NodeId>& dead_nodes) {
  const int n = topology.node_count();
  std::set<std::pair<NodeId, NodeId>> down;
  for (const auto& [a, b] : down_links) {
    down.emplace(std::min(a, b), std::max(a, b));
  }
  std::vector<bool> dead(static_cast<size_t>(n), false);
  for (NodeId d : dead_nodes) dead[static_cast<size_t>(d)] = true;

  ComponentMap map;
  map.component.assign(static_cast<size_t>(n), -1);
  for (NodeId start = 0; start < n; ++start) {
    if (dead[static_cast<size_t>(start)] ||
        map.component[static_cast<size_t>(start)] >= 0) {
      continue;
    }
    const int label = map.component_count++;
    std::queue<NodeId> frontier;
    map.component[static_cast<size_t>(start)] = label;
    frontier.push(start);
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : topology.neighbors(u)) {
        if (dead[static_cast<size_t>(v)] ||
            map.component[static_cast<size_t>(v)] >= 0 ||
            down.contains({std::min(u, v), std::max(u, v)})) {
          continue;
        }
        map.component[static_cast<size_t>(v)] = label;
        frontier.push(v);
      }
    }
  }
  return map;
}

}  // namespace m2m
