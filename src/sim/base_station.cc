#include "sim/base_station.h"

#include <algorithm>
#include <map>
#include <set>

#include "agg/partial_record.h"
#include "common/check.h"
#include "runtime/partition.h"

namespace m2m {

NodeId PickBaseStation(const Topology& topology) {
  NodeId best = 0;
  double best_dist = DistanceSquared(topology.position(0), Point{0.0, 0.0});
  for (NodeId n = 1; n < topology.node_count(); ++n) {
    double d = DistanceSquared(topology.position(n), Point{0.0, 0.0});
    if (d < best_dist) {
      best_dist = d;
      best = n;
    }
  }
  return best;
}

BaseStationRoundResult SimulateBaseStationRound(const Topology& topology,
                                                const PathSystem& paths,
                                                const Workload& workload,
                                                NodeId base_station,
                                                const EnergyModel& energy) {
  M2M_CHECK(base_station >= 0 && base_station < topology.node_count());
  BaseStationRoundResult result;
  result.node_energy_mj.assign(topology.node_count(), 0.0);

  auto charge_hop = [&](NodeId from, NodeId to, int payload_bytes) {
    double tx_mj = energy.TxUj(payload_bytes) / 1000.0;
    double rx_mj = energy.RxUj(payload_bytes) / 1000.0;
    result.node_energy_mj[from] += tx_mj;
    result.node_energy_mj[to] += rx_mj;
    result.messages += 1;
    result.payload_bytes += payload_bytes;
    return tx_mj + rx_mj;
  };

  // --- Uplink: every distinct source ships its raw reading to the base
  // station once. The collection tree is the union of canonical paths, so
  // per physical edge we count the raw units of all sources whose route
  // crosses it and charge one merged message.
  std::map<DirectedEdge, int> uplink_units;
  for (NodeId s : workload.DistinctSources()) {
    if (s == base_station) continue;
    std::vector<NodeId> path = paths.Path(s, base_station);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      uplink_units[DirectedEdge{path[i], path[i + 1]}] += 1;
    }
  }
  for (const auto& [edge, units] : uplink_units) {
    result.uplink_mj +=
        charge_hop(edge.tail, edge.head, units * kRawUnitBytes);
  }

  // --- Downlink: one result value per destination, merged per edge of the
  // union of base->destination paths. Results are plain readings on the
  // wire (tag + value).
  std::map<DirectedEdge, int> downlink_units;
  for (const Task& task : workload.tasks) {
    if (task.destination == base_station) continue;
    std::vector<NodeId> path = paths.Path(base_station, task.destination);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      downlink_units[DirectedEdge{path[i], path[i + 1]}] += 1;
    }
  }
  for (const auto& [edge, units] : downlink_units) {
    result.downlink_mj +=
        charge_hop(edge.tail, edge.head, units * kRawUnitBytes);
  }

  result.energy_mj = result.uplink_mj + result.downlink_mj;
  return result;
}

SuspicionLedger::SuspicionLedger(const Topology* topology,
                                 NodeId base_station)
    : topology_(topology), base_(base_station) {
  M2M_CHECK(topology_ != nullptr);
  M2M_CHECK(base_ >= 0 && base_ < topology_->node_count());
}

bool SuspicionLedger::RecordSuspicion(NodeId monitor, NodeId neighbor) {
  M2M_CHECK(topology_->AreNeighbors(monitor, neighbor))
      << "suspicion for a non-link " << monitor << "-" << neighbor;
  std::pair<NodeId, NodeId> link{std::min(monitor, neighbor),
                                 std::max(monitor, neighbor)};
  if (!reported_.insert(link).second) return false;
  Recompute();
  ++revision_;
  return true;
}

bool SuspicionLedger::RecordReadmission(NodeId monitor, NodeId neighbor) {
  M2M_CHECK(topology_->AreNeighbors(monitor, neighbor))
      << "readmission for a non-link " << monitor << "-" << neighbor;
  std::pair<NodeId, NodeId> link{std::min(monitor, neighbor),
                                 std::max(monitor, neighbor)};
  if (reported_.erase(link) == 0) return false;
  Recompute();
  ++revision_;
  return true;
}

void SuspicionLedger::Recompute() {
  links_.assign(reported_.begin(), reported_.end());
  dead_.clear();
  partitioned_.clear();
  partition_regions_ = 0;
  if (!partition_aware_) {
    // Dead-node inference: mask only the believed links, then everything
    // the base station can no longer reach must be dead (survivors stay
    // connected by the deployment invariant).
    Topology masked = Topology::WithFailures(*topology_, links_, {});
    std::vector<int> distance = masked.HopDistancesFrom(base_);
    for (NodeId n = 0; n < topology_->node_count(); ++n) {
      if (distance[n] < 0) dead_.push_back(n);
    }
    return;
  }
  // Partition-aware classification: mobility voids the survivors-stay-
  // connected invariant, so an unreachable node may be alive. Component
  // analysis of the belief graph separates the cases: a singleton
  // unreachable component means every link of that node was independently
  // reported failed — radio-silent from all sides, believed dead. A
  // multi-node unreachable component is an island whose *internal* links
  // nobody reported; the conservative belief is a live partition.
  ComponentMap components = BuildComponents(*topology_, links_, {});
  const int base_component = components.ComponentOf(base_);
  std::vector<int> sizes = components.Sizes();
  std::set<int> partition_components;
  for (NodeId n = 0; n < topology_->node_count(); ++n) {
    const int c = components.ComponentOf(n);
    if (c == base_component) continue;
    if (sizes[static_cast<size_t>(c)] <= 1) {
      dead_.push_back(n);
    } else {
      partitioned_.push_back(n);
      partition_components.insert(c);
    }
  }
  partition_regions_ = static_cast<int>(partition_components.size());
}

Topology SuspicionLedger::BelievedTopology() const {
  std::vector<NodeId> masked_nodes = dead_;
  masked_nodes.insert(masked_nodes.end(), partitioned_.begin(),
                      partitioned_.end());
  std::sort(masked_nodes.begin(), masked_nodes.end());
  return Topology::WithFailures(*topology_, links_, masked_nodes);
}

}  // namespace m2m
