#ifndef M2M_SIM_FLOOD_H_
#define M2M_SIM_FLOOD_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "sim/energy_model.h"
#include "topology/topology.h"

namespace m2m {

/// Outcome of one flooding round.
struct FloodResult {
  double energy_mj = 0.0;
  int64_t messages = 0;
  int64_t payload_bytes = 0;
  std::vector<double> node_energy_mj;
};

/// The paper's Flood baseline: every source's raw value is disseminated to
/// the whole network by broadcast; no routing or aggregation state is kept.
/// Per the paper, each node delays and batches so all values it must forward
/// in one wave go out in a single message: we simulate synchronous waves in
/// which a node broadcasts once per wave, carrying every value it first
/// heard in the previous wave. Each broadcast is received by all radio
/// neighbors (energy charged to each).
FloodResult SimulateFloodRound(const Topology& topology,
                               const std::vector<NodeId>& sources,
                               const EnergyModel& energy);

}  // namespace m2m

#endif  // M2M_SIM_FLOOD_H_
