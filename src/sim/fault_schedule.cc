#include "sim/fault_schedule.h"

#include <algorithm>
#include <queue>
#include <set>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace m2m {

namespace {

// Node ids fit comfortably in 21 bits for every deployment we model; the
// packed keys below rely on that.
constexpr int kIdBits = 21;

uint64_t LinkKey(NodeId a, NodeId b) {
  NodeId lo = std::min(a, b);
  NodeId hi = std::max(a, b);
  return (static_cast<uint64_t>(lo) << kIdBits) | static_cast<uint64_t>(hi);
}

uint64_t RoundLinkKey(int round, NodeId a, NodeId b) {
  return (static_cast<uint64_t>(round) << (2 * kIdBits)) | LinkKey(a, b);
}

// Live-subgraph connectivity: BFS over `adjacency` restricted to alive
// nodes. Used to reject persistent faults that would partition survivors.
bool AliveSubgraphConnected(
    const std::vector<std::vector<NodeId>>& adjacency,
    const std::vector<bool>& alive,
    const std::unordered_set<uint64_t>& failed_links) {
  const int n = static_cast<int>(adjacency.size());
  NodeId start = kInvalidNode;
  int alive_count = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (!alive[u]) continue;
    ++alive_count;
    if (start == kInvalidNode) start = u;
  }
  if (alive_count <= 1) return true;
  std::vector<bool> seen(n, false);
  std::queue<NodeId> frontier;
  seen[start] = true;
  frontier.push(start);
  int reached = 1;
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adjacency[u]) {
      if (seen[v] || !alive[v] || failed_links.contains(LinkKey(u, v))) {
        continue;
      }
      seen[v] = true;
      ++reached;
      frontier.push(v);
    }
  }
  return reached == alive_count;
}

}  // namespace

std::string ToString(FaultType type) {
  switch (type) {
    case FaultType::kTransientLink:
      return "transient-link";
    case FaultType::kPersistentLink:
      return "persistent-link";
    case FaultType::kNodeDeath:
      return "node-death";
    case FaultType::kLinkHeal:
      return "link-heal";
    case FaultType::kNodeRecover:
      return "node-recover";
    case FaultType::kEnergyExhaustion:
      return "energy-exhaustion";
  }
  return "unknown";
}

FaultSchedule FaultSchedule::Generate(
    const Topology& topology, const std::vector<NodeId>& protected_nodes,
    const FaultScheduleOptions& options) {
  M2M_CHECK_GE(options.rounds, 2);
  FaultSchedule schedule;
  schedule.options_ = options;
  Rng rng(SplitMix64(options.seed ^ 0xfa017));

  std::vector<bool> is_protected(topology.node_count(), false);
  for (NodeId n : protected_nodes) is_protected[n] = true;

  // Candidate persistent events, each with a random activation round; we
  // walk them chronologically and accept one only if the alive subgraph
  // stays connected, so every intermediate state is recoverable.
  struct Candidate {
    FaultEvent event;
    uint64_t order;
  };
  std::vector<Candidate> candidates;
  std::vector<NodeId> death_pool;
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (!is_protected[n]) death_pool.push_back(n);
  }
  rng.Shuffle(death_pool);
  int deaths = std::min<int>(options.node_deaths,
                             static_cast<int>(death_pool.size()));
  for (int i = 0; i < deaths; ++i) {
    FaultEvent event;
    event.round = 1 + static_cast<int>(rng.UniformInt(options.rounds - 1));
    event.type = FaultType::kNodeDeath;
    event.a = death_pool[i];
    candidates.push_back(Candidate{event, rng.Next()});
  }
  std::vector<std::pair<NodeId, NodeId>> link_pool;
  for (NodeId a = 0; a < topology.node_count(); ++a) {
    for (NodeId b : topology.neighbors(a)) {
      if (a < b) link_pool.emplace_back(a, b);
    }
  }
  rng.Shuffle(link_pool);
  int failures = std::min<int>(options.persistent_link_failures,
                               static_cast<int>(link_pool.size()));
  for (int i = 0; i < failures; ++i) {
    FaultEvent event;
    event.round = 1 + static_cast<int>(rng.UniformInt(options.rounds - 1));
    event.type = FaultType::kPersistentLink;
    event.a = link_pool[i].first;
    event.b = link_pool[i].second;
    candidates.push_back(Candidate{event, rng.Next()});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.event.round != y.event.round) {
                return x.event.round < y.event.round;
              }
              return x.order < y.order;
            });

  std::vector<bool> alive(topology.node_count(), true);
  std::unordered_set<uint64_t> failed;
  std::vector<std::vector<NodeId>> adjacency(topology.node_count());
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    adjacency[n] = topology.neighbors(n);
  }
  for (const Candidate& candidate : candidates) {
    const FaultEvent& event = candidate.event;
    if (event.type == FaultType::kNodeDeath) {
      alive[event.a] = false;
      if (!AliveSubgraphConnected(adjacency, alive, failed)) {
        alive[event.a] = true;  // Would strand survivors; skip.
        continue;
      }
    } else {
      uint64_t key = LinkKey(event.a, event.b);
      failed.insert(key);
      if (!AliveSubgraphConnected(adjacency, alive, failed)) {
        failed.erase(key);
        continue;
      }
    }
    schedule.events_.push_back(event);
  }

  // Recoveries: the first `node_recoveries` accepted deaths and the first
  // `link_heals` accepted link failures come back after
  // `recovery_delay_rounds`. Recoveries only restore capacity, so the
  // connectivity invariant established above cannot be violated. A
  // recovery that would land past the schedule is dropped (the fault is
  // then effectively permanent).
  const int delay = std::max(1, options.recovery_delay_rounds);
  int recoveries_left = options.node_recoveries;
  int heals_left = options.link_heals;
  std::vector<FaultEvent> recoveries;
  for (const FaultEvent& event : schedule.events_) {
    const int recover_round = event.round + delay;
    if (recover_round >= options.rounds) continue;
    if (event.type == FaultType::kNodeDeath && recoveries_left > 0) {
      --recoveries_left;
      recoveries.push_back(FaultEvent{recover_round,
                                      FaultType::kNodeRecover, event.a,
                                      kInvalidNode});
    } else if (event.type == FaultType::kPersistentLink && heals_left > 0) {
      --heals_left;
      recoveries.push_back(FaultEvent{recover_round, FaultType::kLinkHeal,
                                      event.a, event.b});
    }
  }
  schedule.events_.insert(schedule.events_.end(), recoveries.begin(),
                          recoveries.end());

  // Transient flaky links, drawn per round from a forked stream so the
  // persistent draw above doesn't shift them.
  Rng transient_rng = rng.Fork(0x71a);
  for (int round = 0; round < options.rounds; ++round) {
    int flaky = 0;
    for (const auto& [a, b] : link_pool) {
      if (!transient_rng.Bernoulli(options.transient_link_fraction)) {
        continue;
      }
      schedule.transient_.insert(RoundLinkKey(round, a, b));
      FaultEvent event;
      event.round = round;
      event.type = FaultType::kTransientLink;
      event.a = std::min(a, b);
      event.b = std::max(a, b);
      schedule.events_.push_back(event);
      ++flaky;
    }
    (void)flaky;
  }

  std::sort(schedule.events_.begin(), schedule.events_.end(),
            [](const FaultEvent& x, const FaultEvent& y) {
              if (x.round != y.round) return x.round < y.round;
              if (x.type != y.type) return x.type < y.type;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return schedule;
}

std::vector<FaultEvent> FaultSchedule::PersistentEventsAt(int round) const {
  std::vector<FaultEvent> out;
  for (const FaultEvent& event : events_) {
    if (event.round == round && event.type != FaultType::kTransientLink) {
      out.push_back(event);
    }
  }
  return out;
}

bool FaultSchedule::NodeAliveAt(int round, NodeId n) const {
  // Interval semantics: the latest death/recovery at or before `round`
  // wins (events_ is sorted by round).
  bool alive = true;
  for (const FaultEvent& event : events_) {
    if (event.round > round) break;
    if (event.a != n) continue;
    if (event.type == FaultType::kNodeDeath) alive = false;
    if (event.type == FaultType::kNodeRecover) alive = true;
  }
  return alive;
}

std::vector<NodeId> FaultSchedule::DeadNodesThrough(int round) const {
  std::set<NodeId> dead;
  for (const FaultEvent& event : events_) {
    if (event.round > round) break;
    if (event.type == FaultType::kNodeDeath) dead.insert(event.a);
    if (event.type == FaultType::kNodeRecover) dead.erase(event.a);
  }
  return {dead.begin(), dead.end()};
}

std::vector<std::pair<NodeId, NodeId>> FaultSchedule::FailedLinksThrough(
    int round) const {
  std::set<std::pair<NodeId, NodeId>> failed;
  for (const FaultEvent& event : events_) {
    if (event.round > round) break;
    if (event.type == FaultType::kPersistentLink) {
      failed.emplace(event.a, event.b);
    }
    if (event.type == FaultType::kLinkHeal) {
      failed.erase({event.a, event.b});
    }
  }
  return {failed.begin(), failed.end()};
}

bool FaultSchedule::AttemptDelivers(int round, NodeId from, NodeId to,
                                    int attempt) const {
  bool from_alive = true;
  bool to_alive = true;
  bool link_up = true;
  for (const FaultEvent& event : events_) {
    if (event.round > round) break;
    switch (event.type) {
      case FaultType::kTransientLink:
        break;
      case FaultType::kNodeDeath:
        if (event.a == from) from_alive = false;
        if (event.a == to) to_alive = false;
        break;
      case FaultType::kNodeRecover:
        if (event.a == from) from_alive = true;
        if (event.a == to) to_alive = true;
        break;
      case FaultType::kPersistentLink:
        if (LinkKey(event.a, event.b) == LinkKey(from, to)) link_up = false;
        break;
      case FaultType::kLinkHeal:
        if (LinkKey(event.a, event.b) == LinkKey(from, to)) link_up = true;
        break;
    }
  }
  if (!from_alive || !to_alive || !link_up) return false;
  if (!transient_.contains(RoundLinkKey(round, from, to))) return true;
  // Stateless per-attempt draw: hash of (seed, round, directed link,
  // attempt) to a uniform double. Direction matters so data and ack
  // attempts over the same link draw independently.
  uint64_t h = SplitMix64(
      options_.seed ^
      (static_cast<uint64_t>(round) << 48) ^
      (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 26) ^
      (static_cast<uint64_t>(static_cast<uint32_t>(to)) << 5) ^
      static_cast<uint64_t>(attempt));
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u >= options_.transient_drop_probability;
}

std::string FaultSchedule::Describe() const {
  std::ostringstream os;
  os << "fault-schedule seed=" << options_.seed
     << " rounds=" << options_.rounds << " p_drop=";
  os << options_.transient_drop_probability << "\n";
  for (const FaultEvent& event : events_) {
    os << "  r" << event.round << " " << ToString(event.type) << " "
       << event.a;
    if (event.b != kInvalidNode) os << "-" << event.b;
    os << "\n";
  }
  return os.str();
}

}  // namespace m2m
