#include "sim/energy_model.h"

// Header-only; this file exists so the target has a translation unit and the
// header is compiled standalone at least once.
