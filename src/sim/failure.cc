#include "sim/failure.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace m2m {

namespace {

uint64_t LinkKey(NodeId a, NodeId b) {
  NodeId lo = std::min(a, b);
  NodeId hi = std::max(a, b);
  return (static_cast<uint64_t>(lo) << 32) | static_cast<uint32_t>(hi);
}

// BFS over live links; returns the path a..b inclusive, or empty if
// disconnected.
std::vector<NodeId> LivePath(const Topology& topology,
                             const LinkOutcome& links, NodeId a, NodeId b) {
  if (a == b) return {a};
  std::vector<NodeId> parent(topology.node_count(), kInvalidNode);
  std::queue<NodeId> frontier;
  parent[a] = a;
  frontier.push(a);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : topology.neighbors(u)) {
      if (parent[v] != kInvalidNode || !links.IsUp(u, v)) continue;
      parent[v] = u;
      if (v == b) {
        std::vector<NodeId> path;
        for (NodeId cursor = b; cursor != a; cursor = parent[cursor]) {
          path.push_back(cursor);
        }
        path.push_back(a);
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push(v);
    }
  }
  return {};
}

}  // namespace

LinkOutcome LinkOutcome::Sample(const Topology& topology,
                                const LinkStabilityModel& model, Rng& rng) {
  LinkOutcome outcome;
  for (NodeId a = 0; a < topology.node_count(); ++a) {
    for (NodeId b : topology.neighbors(a)) {
      if (b < a) continue;
      if (rng.Bernoulli(model.stability(a, b))) {
        outcome.up_.insert(LinkKey(a, b));
      }
    }
  }
  return outcome;
}

LinkOutcome LinkOutcome::AllUp(const Topology& topology) {
  LinkOutcome outcome;
  for (NodeId a = 0; a < topology.node_count(); ++a) {
    for (NodeId b : topology.neighbors(a)) {
      if (b < a) continue;
      outcome.up_.insert(LinkKey(a, b));
    }
  }
  return outcome;
}

bool LinkOutcome::IsUp(NodeId a, NodeId b) const {
  return up_.contains(LinkKey(a, b));
}

void LinkOutcome::TakeDown(NodeId a, NodeId b) {
  up_.erase(LinkKey(a, b));
}

void LinkOutcome::TakeDownNode(const Topology& topology, NodeId node) {
  for (NodeId neighbor : topology.neighbors(node)) {
    TakeDown(node, neighbor);
  }
}

std::vector<std::pair<NodeId, NodeId>> LinkOutcome::AliveLinks() const {
  std::vector<std::pair<NodeId, NodeId>> links;
  links.reserve(up_.size());
  for (uint64_t key : up_) {
    links.emplace_back(static_cast<NodeId>(key >> 32),
                       static_cast<NodeId>(key & 0xffffffffull));
  }
  std::sort(links.begin(), links.end());
  return links;
}

FailureRoundResult RunRoundWithFailures(const CompiledPlan& compiled,
                                        const FunctionSet& functions,
                                        const Topology& topology,
                                        const LinkOutcome& links,
                                        const EnergyModel& energy,
                                        const RedundancyOptions& redundancy) {
  const GlobalPlan& plan = compiled.plan();
  const MulticastForest& forest = plan.forest();
  const MessageSchedule& schedule = compiled.schedule();
  FailureRoundResult result;

  // Per forest edge: can this round's message cross, and at what hop cost?
  std::vector<bool> edge_delivered(forest.edges().size(), false);
  std::vector<int> edge_live_hops(forest.edges().size(), 0);
  for (size_t e = 0; e < forest.edges().size(); ++e) {
    const ForestEdge& edge = forest.edges()[e];
    if (edge.segment.size() == 2) {
      // Physical one-hop edge: pinned, no rerouting possible — unless a
      // backup relay is installed and its two links are up.
      edge_delivered[e] = links.IsUp(edge.edge.tail, edge.edge.head);
      edge_live_hops[e] = 1;
      if (!edge_delivered[e] && redundancy.backup_relay) {
        // Deterministic backup: the smallest-id common neighbor.
        for (NodeId k : topology.neighbors(edge.edge.tail)) {
          if (k == edge.edge.head) continue;
          if (topology.AreNeighbors(k, edge.edge.head) &&
              links.IsUp(edge.edge.tail, k) &&
              links.IsUp(k, edge.edge.head)) {
            edge_delivered[e] = true;
            edge_live_hops[e] = 2;
            break;
          }
        }
      }
    } else {
      std::vector<NodeId> path =
          LivePath(topology, links, edge.edge.tail, edge.edge.head);
      edge_delivered[e] = !path.empty();
      edge_live_hops[e] =
          path.empty() ? 1 : static_cast<int>(path.size()) - 1;
    }
  }

  // Charge messages. A message only exists if all upstream inputs arrived;
  // for the energy comparison we use the simpler pessimistic model where a
  // node still attempts its transmission with whatever it has.
  for (const MessageSchedule::Message& message : schedule.messages()) {
    int payload = 0;
    for (int u : message.unit_ids) {
      payload += schedule.units()[u].unit_bytes;
    }
    result.messages_attempted += 1;
    if (edge_delivered[message.edge_index]) {
      result.messages_delivered += 1;
      result.energy_mj += edge_live_hops[message.edge_index] *
                          energy.UnicastHopUj(payload) / 1000.0;
    } else {
      // One failed attempt: TX burned, nobody decodes.
      result.energy_mj += energy.TxUj(payload) / 1000.0;
    }
  }

  // A destination is complete iff every edge on every route to it delivered.
  (void)functions;
  for (const Task& task : forest.tasks()) {
    bool complete = true;
    for (NodeId s : task.sources) {
      if (s == task.destination) continue;
      bool route_ok = true;
      for (int e : forest.Route(SourceDestPair{s, task.destination})) {
        if (!edge_delivered[e]) {
          route_ok = false;
          break;
        }
      }
      result.contributions_total += 1;
      if (route_ok) {
        result.contributions_delivered += 1;
      } else {
        complete = false;
      }
    }
    result.destinations_total += 1;
    if (complete) result.destinations_complete += 1;
  }
  return result;
}

}  // namespace m2m
