#ifndef M2M_SIM_SELF_HEALING_H_
#define M2M_SIM_SELF_HEALING_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "routing/path_system.h"
#include "runtime/detector.h"
#include "runtime/network.h"
#include "sim/base_station.h"
#include "sim/battery.h"
#include "sim/energy_model.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {

/// Battery-aware runtime knobs (ROADMAP item 4). Off by default: every
/// default below leaves the control loop byte-identical to the legacy
/// battery-less runtime.
struct EnergyAwareOptions {
  /// Master switch. When on, the deployment runs on finite batteries: the
  /// physical link model is additionally gated on battery state (a
  /// depleted node neither transmits nor receives — energy exhaustion
  /// kills through the same in-band detection/suspicion/replan machinery
  /// as a crash), the base station predicts residuals from its own
  /// installed plans, replans route around depleted relays via
  /// residual-energy link costs, and rotation replans fire before
  /// bottleneck relays die.
  bool battery_aware = false;
  /// Initial charges / idle drain of the physical batteries. The base
  /// station node is always treated as wall-powered (immortal).
  BatteryOptions battery;
  /// Energy model batteries drain under (data-plane radio energy on actual
  /// encoded packet sizes).
  EnergyModel model;
  /// Penalty for ResidualEnergyLinkCost on battery-aware replans: how hard
  /// routes avoid depleted relays. With full batteries everywhere the cost
  /// is exactly 1.0 — identical paths to the legacy hop-count metric.
  double residual_cost_penalty = 8.0;
  /// Proactive relay rotation: when the minimum *predicted* residual
  /// fraction over plan-loaded mortal nodes crosses `rotation_threshold`,
  /// the base opens a rotation replan (residual costs shift load off the
  /// bottleneck) without waiting for the node to die. After each rotation
  /// the trigger re-arms `rotation_hysteresis` lower — batteries only
  /// drain, so a monotonically descending trigger cannot flap — and never
  /// refires within `rotation_cooldown_rounds` of the last rotation.
  bool proactive_rotation = true;
  double rotation_threshold = 0.35;
  double rotation_hysteresis = 0.10;
  int rotation_cooldown_rounds = 4;
  /// A believed-dead node whose *predicted* residual fraction is at or
  /// below this is classified energy-dead (vs crash/partition). In-band:
  /// the verdict uses only the base station's own drain predictions, never
  /// the physical ledger.
  double exhaustion_classify_fraction = 0.10;
};

/// Knobs for the self-healing control loop.
struct SelfHealingOptions {
  DetectorOptions detector;
  /// Data-plane ack/retry policy (RunRoundLossy).
  RetryPolicy retry;
  /// Transmission attempts per control-message hop per round. A control
  /// message (suspicion report, plan image, epoch bump, install ack)
  /// advances as many hops as deliver within a round and stalls at the
  /// first hop that exhausts its attempts, resuming next round.
  int control_hop_attempts = 8;
  /// Rounds a sender waits for an end-to-end acknowledgment before
  /// re-emitting a control message (covers holders dying mid-route).
  int resend_after_rounds = 3;
  /// Partition tolerance for mobile deployments. When on, the ledger
  /// classifies unreachable regions by component analysis (alive island vs
  /// dead node, see SuspicionLedger), the per-round result carries a
  /// partition-status overlay for every original destination (partitioned
  /// destinations report *degraded with a partition cause*, never a stale
  /// "complete"), and nodes returning from a believed partition are forced
  /// a full CRC-framed image on merge (both sides may have bumped epochs
  /// independently while split). Off (default) reproduces the legacy
  /// fail-stop behavior byte for byte.
  bool partition_aware = false;
  /// Battery-aware runtime (finite energy, exhaustion faults, residual-
  /// aware replans, proactive rotation). Off (default) reproduces the
  /// legacy infinite-energy behavior byte for byte.
  EnergyAwareOptions energy;
  /// Route the data round through the event-driven engine
  /// (event::EventNetwork::RunCompatRound over a RoundCompatTransport)
  /// instead of calling RunRoundLossy directly. Byte-identical either way
  /// — the compat mode reproduces the round barrier exactly — so this is
  /// a live A/B switch for the event core under the full control loop.
  bool use_event_runtime = false;
};

/// The base station's verdict on one *original-workload* destination under
/// partition awareness: what the configured query expects vs what the
/// current beliefs say is deliverable. This is the "never stale complete"
/// surface — a destination cut off from some sources is reported degraded
/// with its cause, even in rounds where the shrunken believed plan
/// completed perfectly.
struct DestinationPartitionStatus {
  /// False iff the destination itself is believed dead or partitioned away
  /// from the base station's region.
  bool destination_reachable = true;
  /// Sources the original workload configures for this destination.
  int expected_original = 0;
  /// Of those, sources believed reachable (not dead, not partitioned).
  int believed_covered = 0;
  /// believed_covered / max(expected_original, 1).
  double original_coverage = 1.0;
  /// Original sources currently believed alive but partitioned away.
  std::vector<NodeId> partitioned_sources;
  /// Original sources currently believed dead.
  std::vector<NodeId> dead_sources;
  /// True iff any original source (or the destination) is cut off.
  bool degraded = false;
  /// True iff the degradation involves a believed partition (as opposed to
  /// believed deaths only).
  bool degraded_by_partition = false;
};

/// Outcome of one self-healed round.
struct SelfHealingRoundResult {
  /// The data round itself (values, epochs, retry stats, heard evidence).
  RuntimeNetwork::LossyResult data;
  /// Failure-detector traffic this round.
  int64_t probe_transmissions = 0;
  int64_t probe_confirmations = 0;
  /// Suspicions newly raised by monitors this round.
  int new_suspicions = 0;
  /// Suspected links readmitted this round (probation completed).
  int readmissions = 0;
  /// Control-plane traffic this round (reports, images, bumps, acks).
  int64_t control_hop_attempts = 0;
  int64_t control_hops_crossed = 0;
  /// Payload bytes of control messages that reached their target.
  int64_t control_payload_bytes = 0;
  int64_t control_messages_delivered = 0;
  /// True iff the base station opened a new plan epoch this round.
  bool replanned = false;
  /// The base station's current plan epoch after this round.
  uint32_t base_epoch = 0;
  /// Dissemination targets whose install the base has not yet seen acked.
  int pending_installs = 0;
  /// Partition-status overlay, keyed by original-workload destination.
  /// Populated only when `partition_aware` is on.
  std::map<NodeId, DestinationPartitionStatus> partition_status;
  /// Nodes the base station currently believes partitioned (sorted).
  std::vector<NodeId> believed_partitioned;

  // --- Battery accounting (populated only when battery_aware) ---
  /// Physically depleted nodes after this round's drain (sorted). Ground
  /// truth — tests compare it against the base station's beliefs below.
  std::vector<NodeId> battery_depleted;
  /// Believed-dead nodes the base station classifies as energy-exhausted
  /// from its in-band residual predictions (sorted).
  std::vector<NodeId> believed_energy_dead;
  /// True iff this round's replan was opened (at least in part) by the
  /// proactive rotation trigger rather than a belief/workload change.
  bool energy_rotation = false;
  /// Minimum actual residual fraction over mortal nodes after this round.
  double min_residual_fraction = 1.0;
  /// Minimum *predicted* residual fraction over plan-loaded mortal nodes
  /// (what the rotation trigger watches).
  double predicted_min_residual_fraction = 1.0;
};

/// The tentpole self-healing loop: aggregation rounds run over lossy links
/// while the network detects persistent failures *in-band* and repairs its
/// own plan — no component ever reads the fault schedule's event list; the
/// only physical inputs are per-attempt delivery outcomes and each node's
/// own aliveness (LossyLinkModel), exactly what a deployed network observes.
///
/// Per round:
///   1. Data round over the installed (possibly mixed-epoch) plan images,
///      with ack/retry and the receiver-side epoch gate.
///   2. Failure detection: piggybacked heartbeats from the round's traffic
///      plus explicit probes for silent neighbors (runtime/detector.h);
///      monitors whose missed count crosses the threshold raise suspicions,
///      and keep probing suspected links so a recovered neighbor can earn
///      readmission through the detector's probation hysteresis.
///   3. Control plane: suspicion reports route hop-by-hop to the base
///      station, which folds them into its SuspicionLedger; plan images,
///      epoch bumps and install acks route the other way. Every message is
///      resumable across rounds and re-emitted if unacked.
///   4. Re-planning: on any ledger change the base station re-plans against
///      its believed topology (ReplanForTopology — Corollary 1 keeps the
///      patch local), opens a new plan epoch, and disseminates only the
///      diff: full images to content-changed nodes, 5-byte epoch bumps to
///      unchanged participants. Readmitted nodes always get a full image —
///      whatever stale-epoch tables they rebooted with, the install
///      reconciles their lineage with the base station's (higher epoch
///      wins).
///
/// Safe transitions fall out of the epoch protocol: a node installing an
/// image drops its old-epoch round state, and the runtime's epoch gate
/// keeps mixed rounds from merging records across plan generations, so
/// every converged value is attributable to exactly one epoch.
class SelfHealingRuntime {
 public:
  /// `base_station` must be a protected (never-dying) node.
  SelfHealingRuntime(const Topology& topology, const Workload& workload,
                     NodeId base_station,
                     const SelfHealingOptions& options = {});

  /// Runs one round. `physical.attempt_delivers` must be the physical link
  /// oracle for this round (false for dead endpoints and failed links —
  /// e.g. FaultSchedule::AttemptDelivers bound to `round`);
  /// `physical.node_alive` reports physical aliveness (a dead node runs
  /// nothing). Attempt indices beyond the data plane's small values are
  /// drawn from disjoint namespaces (probes 1000+, control 2000+), so the
  /// oracle must accept arbitrary attempt indices.
  SelfHealingRoundResult RunRound(int round,
                                  const std::vector<double>& readings,
                                  const LossyLinkModel& physical,
                                  EventTrace* trace = nullptr);

  /// Replaces the configured workload (query-lifecycle churn: queries
  /// admitted, retired, or modified at the base station). Takes effect at
  /// the next RunRound through the same replan / epoch / dissemination
  /// machinery as failure repair — the believed workload becomes this
  /// workload minus believed-dead sources — so churn composes with
  /// failures, loss, and rejoin.
  void SubmitWorkload(const Workload& workload);

  /// Attaches a metrics registry to the control loop and the underlying
  /// RuntimeNetwork: rounds then record detector traffic (probes,
  /// confirmations, suspicion raises), control-plane hop attempts and
  /// crossings, dissemination (images/bumps queued, install bytes), and
  /// replan activity (replans, epoch gauge, patch-locality edge counts)
  /// alongside the runtime.* data-plane counters. Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const { return metrics_; }

  uint32_t base_epoch() const { return epoch_; }
  const GlobalPlan& plan() const { return plan_; }
  const CompiledPlan& compiled() const { return *compiled_; }
  /// The believed workload: the original workload minus the sources of
  /// currently-believed-dead nodes. Recomputed from the original on every
  /// belief change, so a readmitted node's sources come back.
  const Workload& current_workload() const { return workload_; }
  const SuspicionLedger& ledger() const { return ledger_; }
  const FailureDetector& detector() const { return detector_; }
  const RuntimeNetwork& network() const { return network_; }
  /// Physical battery state (battery-aware mode; empty ledger otherwise).
  const BatteryLedger& battery() const { return battery_; }
  /// The base station's in-band residual prediction: an identically
  /// configured ledger charged with the analytic drain of each installed
  /// plan instead of executed packets. This — never `battery()` — is what
  /// classification, rotation, and residual-aware replans read.
  const BatteryLedger& predicted_battery() const { return predicted_; }
  /// Mutable network access for split-brain experiments: tests drive two
  /// runtimes over the two sides of a partition and cross-install the far
  /// side's images to model the island's independent epoch progress.
  RuntimeNetwork& mutable_network() { return network_; }
  /// Highest foreign plan epoch observed during installs (a node reporting
  /// a newer epoch than this base station ever opened — evidence the other
  /// side of a healed partition replanned independently). 0 if none.
  uint32_t foreign_epoch_max() const { return foreign_epoch_max_; }
  /// Dissemination targets not yet known-installed for the current epoch.
  int pending_installs() const;
  /// Round at which each epoch was opened (epoch -> round); epoch 0 maps
  /// to -1. Detection-latency measurements read this.
  const std::map<uint32_t, int>& epoch_opened_round() const {
    return epoch_opened_round_;
  }

 private:
  struct ControlMessage {
    enum class Kind { kReport, kReportAck, kImage, kBump, kAck };
    Kind kind;
    NodeId origin = kInvalidNode;
    NodeId target = kInvalidNode;
    NodeId holder = kInvalidNode;
    std::vector<uint8_t> payload;
    uint32_t epoch = 0;  ///< Plan epoch for kImage/kBump/kAck.
    int seq = 0;         ///< Decorrelates per-hop attempt indices.
    int last_advanced_round = -1;
  };

  void QueueControl(ControlMessage::Kind kind, NodeId origin, NodeId target,
                    std::vector<uint8_t> payload, uint32_t epoch);
  void AdvanceControlPlane(int round, const LossyLinkModel& physical,
                           SelfHealingRoundResult& result,
                           EventTrace* trace);
  void DeliverControl(const ControlMessage& message, int round,
                      EventTrace* trace);
  void MaybeReplan(int round, SelfHealingRoundResult& result,
                   EventTrace* trace);
  void RefreshControlPaths();
  std::vector<std::vector<NodeId>> SegmentsFor(NodeId node) const;
  /// Rebuilds the believed workload from the original under the current
  /// beliefs. Legacy mode removes believed-dead sources via
  /// WithSourceRemoved; partition-aware mode additionally drops tasks whose
  /// destination is unreachable and tasks left without any reachable source
  /// (a partition may swallow a task whole, which the legacy path cannot
  /// express).
  void RebuildBelievedWorkload();
  /// Fills `result`'s partition-status overlay and partition.* metrics.
  void ComputePartitionStatus(SelfHealingRoundResult& result);
  /// Records an install bouncing off a node holding a higher epoch (the
  /// far side of a healed split replanned on its own): remembers the
  /// foreign epoch and schedules a reconciliation replan.
  void RecordEpochDivergence(NodeId node);
  /// Battery mode: drains the physical ledger with the round's executed
  /// per-node energy and the predicted ledger with the installed plan's
  /// analytic drain; traces/counts newly depleted nodes.
  void ChargeBatteries(int round, const SelfHealingRoundResult& result,
                       EventTrace* trace);
  /// Battery mode: refreshes the ledger's energy-exhaustion candidate set
  /// from predicted residuals and arms the proactive-rotation trigger.
  void UpdateEnergyBeliefs(int round, SelfHealingRoundResult& result,
                           EventTrace* trace);
  /// Predicted residual fractions per node (1.0 for immortal nodes).
  std::vector<double> PredictedResidualFractions() const;

  /// Pre-resolved metric handles (see RuntimeNetwork::MetricHandles).
  struct MetricHandles {
    obs::MetricHandle probe_tx;
    obs::MetricHandle probe_confirms;
    obs::MetricHandle suspicions;
    obs::MetricHandle control_hop_attempts;
    obs::MetricHandle control_hops;
    obs::MetricHandle control_delivered;
    obs::MetricHandle control_bytes;
    obs::MetricHandle replans;
    obs::MetricHandle epoch_gauge;
    obs::MetricHandle images_queued;
    obs::MetricHandle bumps_queued;
    obs::MetricHandle edges_reused;
    obs::MetricHandle edges_reoptimized;
    obs::MetricHandle pending_installs;
    obs::MetricHandle readmissions;
    obs::MetricHandle probation_rounds;
    obs::MetricHandle epoch_reconciliations;
    obs::MetricHandle believed_partitioned;
    obs::MetricHandle partition_events;
    obs::MetricHandle merge_events;
    obs::MetricHandle merge_reconciliations;
    obs::MetricHandle epoch_divergences;
    obs::MetricHandle degraded_destination_rounds;
    obs::MetricHandle energy_rounds;
    obs::MetricHandle energy_drain;
    obs::MetricHandle energy_depleted;
    obs::MetricHandle energy_dead;
    obs::MetricHandle energy_rotations;
    obs::MetricHandle energy_min_residual;
    obs::MetricHandle energy_exhaustions;
  };

  const Topology* topology_;
  NodeId base_;
  SelfHealingOptions options_;
  /// The deployment's full workload, as configured. Never mutated.
  Workload original_workload_;
  /// The believed workload: original minus believed-dead sources.
  Workload workload_;
  uint32_t epoch_ = 0;
  GlobalPlan plan_;
  std::shared_ptr<CompiledPlan> compiled_;
  /// Current-epoch wire images per node.
  std::vector<std::vector<uint8_t>> images_;
  RuntimeNetwork network_;
  FailureDetector detector_;
  SuspicionLedger ledger_;
  int ledger_revision_applied_ = 0;
  /// Bumped by SubmitWorkload; a lagging applied counter triggers a replan
  /// exactly like a ledger revision change.
  int workload_revision_ = 0;
  int workload_revision_applied_ = 0;

  /// Paths control messages route over: the deployment topology minus
  /// every link any monitor suspects (suspicions propagate through the
  /// control plane itself; routing around them immediately is what lets a
  /// report escape a region whose primary path just failed).
  PathSystem control_paths_;
  std::set<std::pair<NodeId, NodeId>> control_paths_suspected_;
  /// Fallback routes over the full deployment graph, for messages whose
  /// believed route does not exist: a monitor sitting behind a healed cut
  /// is the only messenger that can correct the belief, and the believed
  /// topology routes around the very link its retraction would clear.
  /// Hops stay attempt-gated by the physical layer, so the fallback can
  /// only unstick wrongly-routed messages — a genuinely dead link still
  /// stalls them exactly as before.
  PathSystem deployment_paths_;

  std::vector<ControlMessage> in_flight_;
  int next_seq_ = 0;

  /// Monitor-side: suspicions raised but not yet acked by the base
  /// station, with the round their report was last emitted.
  struct MonitorOutbox {
    std::set<std::pair<NodeId, int>> pending;  // (neighbor, round raised).
    /// Readmissions not yet acked: (neighbor, round probation completed).
    std::set<std::pair<NodeId, int>> retractions;
    int last_sent_round = -1;
    bool report_in_flight = false;
  };
  std::map<NodeId, MonitorOutbox> monitor_outbox_;

  /// Base-side: per dissemination target of the current epoch.
  struct PendingInstall {
    bool is_bump = false;
    int last_sent_round = -1;
    bool in_flight = false;
    bool acked = false;
  };
  std::map<NodeId, PendingInstall> pending_installs_;

  std::map<uint32_t, int> epoch_opened_round_;

  /// believed_dead() as of the last applied replan; a node leaving this set
  /// is a readmission and is forced a full image (not a bump).
  std::vector<NodeId> believed_dead_applied_;
  /// believed_partitioned() as of the last applied replan; a node leaving
  /// this set is a partition *merge* and is forced a full CRC-framed image
  /// — its island may have run any number of rounds (and epochs) on its
  /// own, so nothing short of full reconciliation is sound.
  std::vector<NodeId> believed_partitioned_applied_;
  /// believed_partitioned() as of the last round, for partition/merge event
  /// metrics (tracked per round, not per replan).
  std::vector<NodeId> believed_partitioned_last_;
  /// Highest plan epoch seen from a node this base station did not issue —
  /// the healed far side of a split that replanned independently. A replan
  /// triggered while this exceeds `epoch_` opens max(ours, theirs) + 1, so
  /// the reconciling epoch supersedes both lineages.
  uint32_t foreign_epoch_max_ = 0;
  /// Set when an install bounced off a higher-epoch node (InstallNodeImage
  /// returned false); forces a reconciliation replan next round.
  bool epoch_divergence_pending_ = false;
  /// Nodes whose installs bounced since the last replan; each is forced a
  /// full image under the reconciling epoch.
  std::set<NodeId> diverged_nodes_;

  // --- Battery-aware state (battery_aware mode only) ---
  /// Physical batteries, drained by executed data rounds. Gates the link
  /// model; never read by the base station's decisions.
  BatteryLedger battery_;
  /// The base station's in-band twin: same initial charges, drained by the
  /// analytic per-round energy of whatever plan the base has installed.
  BatteryLedger predicted_;
  /// Analytic per-node drain (mJ/round) of the current believed plan;
  /// recomputed on every replan (CompiledRoundEnergyMj).
  std::vector<double> predicted_drain_mj_;
  /// Rotation trigger state: fires when the minimum predicted residual
  /// fraction of a plan-loaded mortal node crosses the descending trigger
  /// level (threshold, then hysteresis lower after each rotation).
  double rotation_trigger_level_ = 0.0;
  /// Finite sentinel (not INT_MIN: `round - last_rotation_round_` must not
  /// overflow) far enough back that the first trigger is never cooled down.
  int last_rotation_round_ = -1000000;
  bool energy_rotation_pending_ = false;

  obs::MetricsRegistry* metrics_ = nullptr;
  MetricHandles handles_;
};

}  // namespace m2m

#endif  // M2M_SIM_SELF_HEALING_H_
